// Package ssmp is a simulator and library reproducing "Architectural
// Primitives for a Scalable Shared Memory Multiprocessor" (Lee &
// Ramachandran, SPAA 1991): the buffered-consistency memory model,
// reader-initiated update coherence, cache-based queued locks, the hardware
// barrier, and the write-back-invalidation baseline the paper evaluates
// against — plus the workload models, analytical cost models, and
// experiment harness that regenerate the paper's tables and figures.
//
// # Quick start
//
//	cfg := ssmp.DefaultConfig(8)        // 8-node CBL machine, Table 4 parameters
//	m := ssmp.NewMachine(cfg)
//	progs := make([]ssmp.Program, 8)
//	for i := range progs {
//		progs[i] = func(p *ssmp.Proc) {
//			p.WriteLock(100)            // hardware queued lock; grant carries the data
//			p.Write(100, p.Read(100)+1) // served from the lock cache
//			p.Unlock(100)               // CP-Synch: flushes the write buffer first
//		}
//	}
//	res, err := m.Run(progs)
//
// Each processor program runs on its own goroutine, interlocked with the
// deterministic event loop: primitives block until the modeled operation
// completes, and two runs with the same configuration and seed are
// bit-identical.
//
// The subpackage layout mirrors the machine: the simulation kernel, the Ω
// network, caches with per-word dirty bits, the write buffer, the
// reader-initiated update protocol, the cache-based lock protocol, the WBI
// baseline, and the workload/analytics/harness layers. This package
// re-exports the surface a downstream user needs.
package ssmp

import (
	"context"

	"ssmp/internal/analytic"
	"ssmp/internal/core"
	"ssmp/internal/harness"
	"ssmp/internal/history"
	"ssmp/internal/kvapp"
	"ssmp/internal/mem"
	"ssmp/internal/metrics"
	"ssmp/internal/network"
	"ssmp/internal/sim"
	"ssmp/internal/syncprim"
	"ssmp/internal/synczoo"
	"ssmp/internal/trace"
	"ssmp/internal/workload"
)

// Machine construction and execution.
type (
	// Machine is a simulated shared-memory multiprocessor.
	Machine = core.Machine
	// Config parameterizes a machine; see DefaultConfig.
	Config = core.Config
	// Proc is a processor handle exposing the paper's hardware
	// primitives (Table 1) as blocking calls.
	Proc = core.Proc
	// Program is the code one simulated processor executes.
	Program = core.Program
	// Result summarizes a completed run.
	Result = core.Result
	// Protocol selects the machine type (CBL or WBI).
	Protocol = core.Protocol
	// Consistency selects the memory model (BC or SC).
	Consistency = core.Consistency
	// ErrDeadlock reports processors blocked forever.
	ErrDeadlock = core.ErrDeadlock
)

// Machine types and memory models.
const (
	// ProtoCBL is the paper's machine: reader-initiated coherence,
	// cache-based locks, hardware barrier, write buffer.
	ProtoCBL = core.ProtoCBL
	// ProtoWBI is the write-back invalidation baseline.
	ProtoWBI = core.ProtoWBI
	// BC is buffered consistency (§2 of the paper).
	BC = core.BC
	// SC is sequential consistency.
	SC = core.SC
)

// Address-space types.
type (
	// Addr is a global word address.
	Addr = mem.Addr
	// Word is one memory word.
	Word = mem.Word
	// Time is the simulation clock in cycles.
	Time = sim.Time
)

// Interconnect topologies.
const (
	// TopOmega is the paper's multistage Ω network.
	TopOmega = network.TopOmega
	// TopMesh is a 2-D mesh with dimension-ordered routing.
	TopMesh = network.TopMesh
	// TopBus is a single shared bus (the paper's non-scalable baseline).
	TopBus = network.TopBus
)

// NewMachine builds a machine from a configuration.
func NewMachine(cfg Config) *Machine { return core.NewMachine(cfg) }

// DefaultConfig returns the paper's Table 4 configuration for the given
// node count (a power of two).
func DefaultConfig(nodes int) Config { return core.DefaultConfig(nodes) }

// Synchronization algorithms (package syncprim).
type (
	// Locker is a mutual-exclusion lock algorithm.
	Locker = syncprim.Locker
	// Barrier is a barrier algorithm.
	Barrier = syncprim.Barrier
	// CBLLock is the hardware queued lock (exclusive mode).
	CBLLock = syncprim.CBLLock
	// CBLReadLock is the hardware queued lock (shared mode).
	CBLReadLock = syncprim.CBLReadLock
	// TestAndSetLock is the WBI software spin lock.
	TestAndSetLock = syncprim.TestAndSetLock
	// BackoffLock is test-and-set with exponential backoff.
	BackoffLock = syncprim.BackoffLock
	// TicketLock is a fair FIFO software lock.
	TicketLock = syncprim.TicketLock
	// MCSLock is a software queue lock with local spinning (extension).
	MCSLock = syncprim.MCSLock
	// Region associates a lock with a multi-block data structure (§4.3).
	Region = syncprim.Region
	// HWBarrier is the CBL machine's hardware barrier.
	HWBarrier = syncprim.HWBarrier
	// SWBarrier is a software sense-reversing barrier.
	SWBarrier = syncprim.SWBarrier
	// Semaphore is a counting semaphore over a Locker.
	Semaphore = syncprim.Semaphore
)

// NewCBLSemaphore returns a semaphore for the CBL machine whose count is
// colocated with its lock's block (the §4.3 colocation rule), so the lock
// grant carries the count.
func NewCBLSemaphore(blockAddr Addr) Semaphore { return syncprim.NewCBLSemaphore(blockAddr) }

// Synchronization-algorithm zoo (package synczoo): every software lock and
// barrier over the Table-1 primitives plus the hardware CBL lock and
// barrier, behind one registry, with remote-memory-reference accounting.
type (
	// SyncArena hands out disjoint cache blocks for a sync algorithm's
	// shared variables.
	SyncArena = synczoo.Arena
	// LockAlgo is one registered lock algorithm (key, protocol, factory).
	LockAlgo = synczoo.LockAlgo
	// BarrierAlgo is one registered barrier algorithm.
	BarrierAlgo = synczoo.BarrierAlgo
	// LockInstance is a constructed lock plus its protected data word.
	LockInstance = synczoo.LockInstance
	// TTASLock is test-and-test-and-set with bounded exponential backoff.
	TTASLock = synczoo.TTASLock
	// DisseminationBarrier is the log-round software barrier.
	DisseminationBarrier = synczoo.DisseminationBarrier
	// TreeBarrier is the 4-ary MCS-style tree barrier.
	TreeBarrier = synczoo.TreeBarrier
	// LockBenchPoint is one measured contention-sweep point (a
	// mutual-exclusion witness rides along).
	LockBenchPoint = synczoo.LockPoint
	// BarrierBenchPoint is one measured barrier-sweep point.
	BarrierBenchPoint = synczoo.BarrierPoint
)

// NewSyncArena returns an arena allocating from a machine's geometry
// (Machine.Geometry), starting above the reserved block.
func NewSyncArena(g mem.Geometry) *SyncArena { return synczoo.NewArena(g) }

// LockAlgos returns every registered lock algorithm; BarrierAlgos every
// registered barrier algorithm.
func LockAlgos() []LockAlgo { return synczoo.LockAlgos() }

// BarrierAlgos returns the registered barrier algorithms.
func BarrierAlgos() []BarrierAlgo { return synczoo.BarrierAlgos() }

// RunLockBench measures one lock algorithm under contention and verifies
// mutual exclusion; RunBarrierBench does the same for barriers.
func RunLockBench(a LockAlgo, o synczoo.LockBenchOptions) (LockBenchPoint, error) {
	return synczoo.RunLockBench(a, o)
}

// RunBarrierBench measures one barrier algorithm and verifies episode
// separation.
func RunBarrierBench(a BarrierAlgo, o synczoo.BarrierBenchOptions) (BarrierBenchPoint, error) {
	return synczoo.RunBarrierBench(a, o)
}

// In-sim key-value service (package kvapp): a sharded store whose server
// loops run on the simulated multiprocessor, driven by a seeded synthetic
// client population, with a per-key sequential-consistency oracle checked
// after every run.
type (
	// KVSpec parameterizes the store and its client population.
	KVSpec = kvapp.Spec
	// KVRunOptions carry the machine-level knobs for a KV run.
	KVRunOptions = kvapp.RunOptions
	// KVResult is a completed KV run (latency, counters, oracle verdict).
	KVResult = kvapp.Result
)

// DefaultKVSpec returns the read-mostly default population for the given
// machine size.
func DefaultKVSpec(procs int) KVSpec { return kvapp.DefaultSpec(procs) }

// RunKV executes a key-value service run; check Result.Check() for the
// oracle's verdict.
func RunKV(ctx context.Context, s KVSpec, o KVRunOptions) (*KVResult, error) {
	return kvapp.Run(ctx, s, o)
}

// Workload models (package workload).
type (
	// WorkloadParams holds the Table 4 simulation parameters.
	WorkloadParams = workload.Params
	// Layout is the workloads' simulated address map.
	Layout = workload.Layout
	// SyncKit supplies machine-appropriate lock/barrier implementations.
	SyncKit = workload.SyncKit
	// LinSolver is the §4.1 linear-equation-solver workload.
	LinSolver = workload.LinSolver
	// WorkDAG is the dependency-honoring (non-FIFO) work-queue model.
	WorkDAG = workload.WorkDAG
	// QueueStats is the work-queue model's task accounting.
	QueueStats = workload.QueueStats
	// StencilSpec parameterizes the 1-D Jacobi scaling workload, the
	// nearest-neighbour kernel used to benchmark the parallel (PDES)
	// simulation engine at 512+ nodes.
	StencilSpec = workload.StencilSpec
)

// Workload grain presets (references per task).
const (
	FineGrain   = workload.FineGrain
	MediumGrain = workload.MediumGrain
	CoarseGrain = workload.CoarseGrain
)

// DefaultWorkloadParams returns the paper's Table 4 values.
func DefaultWorkloadParams() WorkloadParams { return workload.DefaultParams() }

// NewLayout builds the workload address map for a machine geometry.
func NewLayout(cfg Config, p WorkloadParams) Layout {
	return workload.NewLayout(mem.Geometry{BlockWords: cfg.BlockWords, Nodes: cfg.Nodes}, p)
}

// CBLKit returns the hardware synchronization kit for the CBL machine.
func CBLKit(l Layout, procs int) SyncKit { return workload.CBLKit(l, procs) }

// WBIKit returns the software synchronization kit for the WBI machine.
func WBIKit(l Layout, procs int, backoff bool) SyncKit {
	return workload.WBIKit(l, procs, backoff)
}

// SyncModel builds the probabilistic sync-model programs (§5.2).
func SyncModel(procs, episodes int, p WorkloadParams, l Layout, kit SyncKit, seed uint64) []Program {
	return workload.SyncModel(procs, episodes, p, l, kit, seed)
}

// WorkQueue builds the work-queue-model programs (§5.2).
func WorkQueue(procs, tasks int, spawnProb float64, p WorkloadParams, l Layout, kit SyncKit, seed uint64) ([]Program, *workload.QueueStats) {
	return workload.WorkQueue(procs, tasks, spawnProb, p, l, kit, seed)
}

// Experiments (package harness).
type (
	// ExperimentOptions parameterize the figure/table sweeps.
	ExperimentOptions = harness.Options
	// FigureResult is one reproduced figure.
	FigureResult = harness.Figure
)

// DefaultExperimentOptions returns the committed experiment sweep.
func DefaultExperimentOptions() ExperimentOptions { return harness.DefaultOptions() }

// Analytical models (package analytic).
type (
	// SyncParams are Table 3's time parameters.
	SyncParams = analytic.SyncParams
	// SyncScenario names a Table 3 row.
	SyncScenario = analytic.Scenario
	// SyncCost is one Table 3 cell.
	SyncCost = analytic.Cost
	// ClassCosts weight Table 2's message classes.
	ClassCosts = analytic.ClassCosts
)

// Table2Analytic returns the paper's Table 2 model.
func Table2Analytic(n, B int) []analytic.Table2Row { return analytic.Table2(n, B) }

// Table3WBI and Table3CBL return the paper's Table 3 models.
func Table3WBI(s SyncScenario, p SyncParams) SyncCost { return analytic.WBI(s, p) }

// Table3CBL returns the CBL column of Table 3.
func Table3CBL(s SyncScenario, p SyncParams) SyncCost { return analytic.CBL(s, p) }

// Traces (package trace).
type (
	// Trace is a per-processor memory-reference trace.
	Trace = trace.Trace
	// TraceEvent is one trace record.
	TraceEvent = trace.Event
)

// CaptureTrace attaches a primitive-stream recorder to a machine (call
// before Run); the returned builder's Trace method yields a replayable
// trace after the run.
func CaptureTrace(m *Machine) *trace.Builder { return trace.Capture(m) }

// Series is a named (x, y) curve produced by the harness.
type Series = metrics.Series

// Evaluation counters (package metrics). Both types serialize to JSON —
// the same form the ssmpd daemon's /metrics endpoint and sim results use.
type (
	// MessageStats counts network messages by kind and cost class;
	// Machine.Messages returns the run's counters.
	MessageStats = metrics.Collector
	// Histogram is a power-of-two-bucket distribution.
	Histogram = metrics.Histogram
)

// Fault injection (chaos testing). Configure Config.Faults with a nonzero
// seed and rates to run the machine over a misbehaving interconnect; the
// fabric's reliable transport recovers, and Result.Faults reports both the
// injections and the recovery work.
type (
	// FaultConfig parameterizes the interconnect fault plane.
	FaultConfig = network.FaultConfig
	// FaultRates are per-message drop/duplicate/delay probabilities.
	FaultRates = network.FaultRates
	// FaultCounters reports injections and transport recovery.
	FaultCounters = metrics.FaultCounters
)

// Remote-memory-reference accounting. Every shared reference is classified
// at the cache/fabric layer as local (served within the issuing node) or
// remote (crossed the interconnect); Result.RMR carries the run's totals
// and Machine.RMRs the per-processor account.
type (
	// RMRCounters is a local/remote/writeback reference tally.
	RMRCounters = metrics.RMRCounters
	// RMRAccount attributes RMRCounters to each issuing processor.
	RMRAccount = metrics.RMRAccount
)

// History verification (package history).
type (
	// HistoryRecorder accumulates memory operations with real-time
	// intervals; obtain one with Machine.EnableHistory and call
	// CheckLinearizable after the run.
	HistoryRecorder = history.Recorder
	// HistoryOp is one recorded operation.
	HistoryOp = history.Op
)
