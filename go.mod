module ssmp

go 1.22
