// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablation benches for the design choices DESIGN.md calls out. Each
// benchmark reports the figure's headline metric (completion cycles or
// messages) via b.ReportMetric, so `go test -bench=.` doubles as the
// experiment runner.
package ssmp_test

import (
	"context"
	"fmt"
	"testing"

	"ssmp"
	"ssmp/internal/bccheck"
	"ssmp/internal/core"
	"ssmp/internal/harness"
	"ssmp/internal/litmus"
	"ssmp/internal/msg"
	"ssmp/internal/network"
	"ssmp/internal/syncprim"
	"ssmp/internal/synczoo"
	"ssmp/internal/workload"
)

// benchOptions is the sweep used inside benchmarks: large enough to show
// the contention effects, small enough to iterate.
func benchOptions() harness.Options {
	o := harness.DefaultOptions()
	o.Procs = []int{4, 16}
	o.Episodes = 4
	o.Tasks = 64
	return o
}

// --- Table 2: linear solver traffic -------------------------------------

func benchmarkTable2(b *testing.B, readUpdate, colocate bool) {
	b.ReportAllocs()
	var cycles, blocks uint64
	for i := 0; i < b.N; i++ {
		cfg := ssmp.DefaultConfig(16)
		if !readUpdate {
			cfg.Protocol = ssmp.ProtoWBI
		}
		m := core.NewMachine(cfg)
		ls := &ssmp.LinSolver{N: 16, Iters: 10, Colocate: colocate, ReadUpdate: readUpdate}
		res, err := m.Run(ls.Programs(m.Geometry()))
		if err != nil {
			b.Fatal(err)
		}
		cycles = uint64(res.Cycles)
		blocks = m.Messages().Class(msg.BlockXfer)
	}
	b.ReportMetric(float64(cycles), "cycles")
	b.ReportMetric(float64(blocks), "block-xfers")
}

func BenchmarkTable2ReadUpdate(b *testing.B) { benchmarkTable2(b, true, true) }
func BenchmarkTable2InvI(b *testing.B)       { benchmarkTable2(b, false, true) }
func BenchmarkTable2InvII(b *testing.B)      { benchmarkTable2(b, false, false) }

// --- Table 3: synchronization scenarios ---------------------------------

func benchmarkParallelLock(b *testing.B, procs int, mk func() syncprim.Locker, proto ssmp.Protocol) {
	var msgs uint64
	for i := 0; i < b.N; i++ {
		cfg := ssmp.DefaultConfig(procs)
		cfg.Protocol = proto
		m := ssmp.NewMachine(cfg)
		l := mk()
		progs := make([]ssmp.Program, procs)
		for j := 0; j < procs; j++ {
			progs[j] = func(p *ssmp.Proc) {
				l.Acquire(p)
				p.Think(50)
				l.Release(p)
			}
		}
		res, err := m.Run(progs)
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.Messages
	}
	b.ReportMetric(float64(msgs), "messages")
}

func BenchmarkTable3ParallelLockCBL(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchmarkParallelLock(b, n, func() syncprim.Locker {
				return ssmp.CBLLock{Addr: 400}
			}, ssmp.ProtoCBL)
		})
	}
}

func BenchmarkTable3ParallelLockWBI(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchmarkParallelLock(b, n, func() syncprim.Locker {
				return ssmp.TestAndSetLock{Addr: 400}
			}, ssmp.ProtoWBI)
		})
	}
}

func BenchmarkTable3SerialLock(b *testing.B) {
	for _, scheme := range []string{"CBL", "WBI"} {
		b.Run(scheme, func(b *testing.B) {
			var msgs uint64
			for i := 0; i < b.N; i++ {
				cfg := ssmp.DefaultConfig(4)
				var l syncprim.Locker = ssmp.CBLLock{Addr: 400}
				if scheme == "WBI" {
					cfg.Protocol = ssmp.ProtoWBI
					l = ssmp.TestAndSetLock{Addr: 400}
				}
				m := ssmp.NewMachine(cfg)
				progs := make([]ssmp.Program, 4)
				progs[0] = func(p *ssmp.Proc) {
					l.Acquire(p)
					p.Think(50)
					l.Release(p)
				}
				res, err := m.Run(progs)
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Messages
			}
			b.ReportMetric(float64(msgs), "messages")
		})
	}
}

func BenchmarkTable3Barrier(b *testing.B) {
	for _, scheme := range []string{"CBL", "WBI"} {
		b.Run(scheme, func(b *testing.B) {
			var msgs uint64
			const procs = 16
			for i := 0; i < b.N; i++ {
				cfg := ssmp.DefaultConfig(procs)
				var bar syncprim.Barrier = ssmp.HWBarrier{Addr: 800, Participants: procs}
				if scheme == "WBI" {
					cfg.Protocol = ssmp.ProtoWBI
					bar = ssmp.SWBarrier{CountAddr: 800, GenAddr: 808, Participants: procs}
				}
				m := ssmp.NewMachine(cfg)
				progs := make([]ssmp.Program, procs)
				for j := 0; j < procs; j++ {
					progs[j] = func(p *ssmp.Proc) { bar.Wait(p) }
				}
				res, err := m.Run(progs)
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Messages
			}
			b.ReportMetric(float64(msgs), "messages")
		})
	}
}

// --- Figures 4-7 ---------------------------------------------------------

func reportFigure(b *testing.B, f harness.Figure) {
	for _, s := range f.Series {
		for _, pt := range s.Points {
			b.ReportMetric(pt.Y, fmt.Sprintf("cycles-%s-p%g", s.Name, pt.X))
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	var f harness.Figure
	for i := 0; i < b.N; i++ {
		f = benchOptions().Figure4()
	}
	reportFigure(b, f)
}

func BenchmarkFigure5(b *testing.B) {
	var f harness.Figure
	for i := 0; i < b.N; i++ {
		f = benchOptions().Figure5()
	}
	reportFigure(b, f)
}

func BenchmarkFigure6(b *testing.B) {
	var f harness.Figure
	for i := 0; i < b.N; i++ {
		f = benchOptions().Figure6()
	}
	reportFigure(b, f)
}

func BenchmarkFigure7(b *testing.B) {
	var f harness.Figure
	for i := 0; i < b.N; i++ {
		f = benchOptions().Figure7()
	}
	reportFigure(b, f)
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblationNetworkContention compares the Ω network against an
// ideal contention-free network under the queue workload.
func BenchmarkAblationNetworkContention(b *testing.B) {
	for _, ideal := range []bool{false, true} {
		name := "omega"
		if ideal {
			name = "ideal"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := ssmp.DefaultConfig(16)
				cfg.IdealNetwork = ideal
				p := ssmp.DefaultWorkloadParams()
				layout := ssmp.NewLayout(cfg, p)
				progs, _ := ssmp.WorkQueue(16, 64, 0, p, layout, ssmp.CBLKit(layout, 16), 42)
				res, err := ssmp.NewMachine(cfg).Run(progs)
				if err != nil {
					b.Fatal(err)
				}
				cycles = uint64(res.Cycles)
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationWriteBufferDepth bounds the write buffer, showing the
// cost of losing the paper's infinite-buffer assumption.
func BenchmarkAblationWriteBufferDepth(b *testing.B) {
	for _, depth := range []int{0, 1, 4, 16} {
		name := fmt.Sprintf("depth=%d", depth)
		if depth == 0 {
			name = "unbounded"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := ssmp.DefaultConfig(8)
				cfg.Buf.Capacity = depth
				m := ssmp.NewMachine(cfg)
				progs := make([]ssmp.Program, 8)
				for j := 0; j < 8; j++ {
					j := j
					progs[j] = func(p *ssmp.Proc) {
						for k := 0; k < 200; k++ {
							p.WriteGlobal(ssmp.Addr(4096+32*j+k%8), ssmp.Word(k))
							p.Think(1)
						}
						p.FlushBuffer()
					}
				}
				res, err := m.Run(progs)
				if err != nil {
					b.Fatal(err)
				}
				cycles = uint64(res.Cycles)
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationLockBackoff sweeps backoff bounds for the WBI spin lock.
func BenchmarkAblationLockBackoff(b *testing.B) {
	for _, max := range []ssmp.Time{0, 256, 1024, 4096} {
		name := fmt.Sprintf("max=%d", max)
		if max == 0 {
			name = "none"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := ssmp.DefaultConfig(16)
				cfg.Protocol = ssmp.ProtoWBI
				m := ssmp.NewMachine(cfg)
				var l syncprim.Locker = ssmp.TestAndSetLock{Addr: 400}
				if max > 0 {
					l = ssmp.BackoffLock{Addr: 400, Max: max}
				}
				progs := make([]ssmp.Program, 16)
				for j := 0; j < 16; j++ {
					progs[j] = func(p *ssmp.Proc) {
						for k := 0; k < 4; k++ {
							l.Acquire(p)
							p.Think(50)
							l.Release(p)
						}
					}
				}
				res, err := m.Run(progs)
				if err != nil {
					b.Fatal(err)
				}
				cycles = uint64(res.Cycles)
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationConsistency isolates BC vs SC on a write-heavy kernel
// (the Figures 6-7 effect, amplified).
func BenchmarkAblationConsistency(b *testing.B) {
	for _, cons := range []ssmp.Consistency{ssmp.BC, ssmp.SC} {
		b.Run(cons.String(), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := ssmp.DefaultConfig(16)
				cfg.Consistency = cons
				m := ssmp.NewMachine(cfg)
				progs := make([]ssmp.Program, 16)
				for j := 0; j < 16; j++ {
					j := j
					progs[j] = func(p *ssmp.Proc) {
						for k := 0; k < 100; k++ {
							p.WriteGlobal(ssmp.Addr(4096+32*j+k%8), ssmp.Word(k))
							p.Think(2)
						}
						p.FlushBuffer()
					}
				}
				res, err := m.Run(progs)
				if err != nil {
					b.Fatal(err)
				}
				cycles = uint64(res.Cycles)
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationUpdateChainLength measures propagation cost as the
// subscriber chain grows (the (n-1)||C_B term of Table 2).
func BenchmarkAblationUpdateChainLength(b *testing.B) {
	for _, subs := range []int{1, 7, 15, 31} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			var cycles uint64
			procs := subs + 1
			if procs < 4 {
				procs = 4
			}
			// Round up to a power of two.
			n := 2
			for n < procs {
				n *= 2
			}
			for i := 0; i < b.N; i++ {
				cfg := ssmp.DefaultConfig(n)
				m := ssmp.NewMachine(cfg)
				progs := make([]ssmp.Program, n)
				bar := ssmp.Addr(8192)
				data := ssmp.Addr(4096)
				parts := subs + 1
				progs[0] = func(p *ssmp.Proc) {
					p.Barrier(bar, parts)
					for k := 0; k < 50; k++ {
						p.WriteGlobal(data, ssmp.Word(k))
					}
					p.FlushBuffer()
					p.Barrier(bar+64, parts)
				}
				for j := 1; j <= subs; j++ {
					progs[j] = func(p *ssmp.Proc) {
						p.ReadUpdate(data)
						p.Barrier(bar, parts)
						p.Barrier(bar+64, parts)
					}
				}
				res, err := m.Run(progs)
				if err != nil {
					b.Fatal(err)
				}
				cycles = uint64(res.Cycles)
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationDirectHandoff compares home-arbitrated lock handoff
// against the paper's structural fast path (grant passed straight down the
// distributed queue) on a writer convoy.
func BenchmarkAblationDirectHandoff(b *testing.B) {
	for _, direct := range []bool{false, true} {
		name := "via-home"
		if direct {
			name = "direct"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := ssmp.DefaultConfig(16)
				cfg.DirectHandoff = direct
				m := ssmp.NewMachine(cfg)
				l := ssmp.CBLLock{Addr: 400}
				progs := make([]ssmp.Program, 16)
				for j := 0; j < 16; j++ {
					progs[j] = func(p *ssmp.Proc) {
						for k := 0; k < 4; k++ {
							l.Acquire(p)
							p.Think(20)
							l.Release(p)
						}
					}
				}
				res, err := m.Run(progs)
				if err != nil {
					b.Fatal(err)
				}
				cycles = uint64(res.Cycles)
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationWriteUpdate compares reader-initiated coherence against
// classic sender-initiated write-update on a phased access pattern where
// reader interest expires (the §4.1 argument for the reader-initiated
// design).
func BenchmarkAblationWriteUpdate(b *testing.B) {
	// Pattern where reader interest expires: all 8 nodes read the block
	// once up front, then only node 1 keeps reading while node 0 writes.
	// Write-update keeps pushing to the 6 stale readers forever;
	// reader-initiated pays only for the one live subscriber.
	run := func(b *testing.B, writeUpdate bool) {
		var cycles, msgs uint64
		for i := 0; i < b.N; i++ {
			cfg := ssmp.DefaultConfig(8)
			cfg.WriteUpdate = writeUpdate
			m := ssmp.NewMachine(cfg)
			progs := make([]ssmp.Program, 8)
			data := ssmp.Addr(8192)
			bar := ssmp.Addr(4096)
			for j := 0; j < 8; j++ {
				j := j
				progs[j] = func(p *ssmp.Proc) {
					p.Read(data) // everyone reads once
					if !writeUpdate && j == 1 {
						p.ReadUpdate(data) // only node 1 stays interested
					}
					p.Barrier(bar, 8)
					switch j {
					case 0:
						for k := 0; k < 40; k++ {
							p.WriteGlobal(data, ssmp.Word(k))
							p.Think(4)
						}
						p.FlushBuffer()
					case 1:
						for k := 0; k < 40; k++ {
							p.Read(data)
							p.Think(4)
						}
					}
					p.Barrier(bar+64, 8)
				}
			}
			res, err := m.Run(progs)
			if err != nil {
				b.Fatal(err)
			}
			cycles = uint64(res.Cycles)
			msgs = res.Messages
		}
		b.ReportMetric(float64(cycles), "cycles")
		b.ReportMetric(float64(msgs), "messages")
	}
	b.Run("reader-initiated", func(b *testing.B) { run(b, false) })
	b.Run("write-update", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationLimitedDirectory compares the full-map WBI directory
// against Dir-2-B (two pointers, then broadcast) under wide sharing.
func BenchmarkAblationLimitedDirectory(b *testing.B) {
	for _, ptrs := range []int{0, 2} {
		name := "full-map"
		if ptrs > 0 {
			name = fmt.Sprintf("dir-%d-b", ptrs)
		}
		b.Run(name, func(b *testing.B) {
			var invs uint64
			for i := 0; i < b.N; i++ {
				cfg := ssmp.DefaultConfig(16)
				cfg.Protocol = ssmp.ProtoWBI
				cfg.DirMaxPointers = ptrs
				m := ssmp.NewMachine(cfg)
				progs := make([]ssmp.Program, 16)
				// Only 4 of the 16 nodes share the block: a full
				// map invalidates 3 copies per write; Dir-2-B has
				// overflowed and must broadcast to all 15.
				bar := ssmp.SWBarrier{CountAddr: 4096, GenAddr: 4104, Participants: 4}
				for j := 0; j < 4; j++ {
					j := j
					progs[j] = func(p *ssmp.Proc) {
						for round := 0; round < 4; round++ {
							p.Read(8192)
							bar.Wait(p)
							if j == round {
								p.Write(8192, ssmp.Word(round))
							}
							bar.Wait(p)
						}
					}
				}
				res, err := m.Run(progs)
				if err != nil {
					b.Fatal(err)
				}
				_ = res
				invs = m.Messages().Kind(msg.Inv)
			}
			b.ReportMetric(float64(invs), "invalidations")
		})
	}
}

// BenchmarkAblationDanceHall compares the distributed-memory organization
// against the dance-hall organization of the paper's Table 2 analysis.
func BenchmarkAblationDanceHall(b *testing.B) {
	for _, dance := range []bool{false, true} {
		name := "distributed"
		if dance {
			name = "dance-hall"
		}
		b.Run(name, func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := ssmp.DefaultConfig(16)
				cfg.DanceHall = dance
				p := ssmp.DefaultWorkloadParams()
				layout := ssmp.NewLayout(cfg, p)
				progs, _ := ssmp.WorkQueue(16, 32, 0, p, layout, ssmp.CBLKit(layout, 16), 42)
				res, err := ssmp.NewMachine(cfg).Run(progs)
				if err != nil {
					b.Fatal(err)
				}
				cycles = uint64(res.Cycles)
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkAblationTopology compares the Ω network against a 2-D mesh on
// the work-queue workload (the paper leaves the interconnect unspecified;
// the contention bottleneck should dominate either way).
func BenchmarkAblationTopology(b *testing.B) {
	for _, top := range []network.Topology{network.TopOmega, network.TopMesh} {
		b.Run(top.String(), func(b *testing.B) {
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := ssmp.DefaultConfig(16)
				cfg.Topology = top
				p := ssmp.DefaultWorkloadParams()
				layout := ssmp.NewLayout(cfg, p)
				progs, _ := ssmp.WorkQueue(16, 32, 0, p, layout, ssmp.CBLKit(layout, 16), 42)
				res, err := ssmp.NewMachine(cfg).Run(progs)
				if err != nil {
					b.Fatal(err)
				}
				cycles = uint64(res.Cycles)
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkSharingPatterns measures the traffic signature of the classic
// sharing patterns (Eggers & Katz) on both machines.
func BenchmarkSharingPatterns(b *testing.B) {
	type pat struct {
		name  string
		proto ssmp.Protocol
		build func(layout ssmp.Layout, kit ssmp.SyncKit) []ssmp.Program
	}
	pats := []pat{
		{"producer-consumer/CBL", ssmp.ProtoCBL, func(l ssmp.Layout, k ssmp.SyncKit) []ssmp.Program {
			return workload.ProducerConsumer(8, 20, l, true, k)
		}},
		{"producer-consumer/WBI", ssmp.ProtoWBI, func(l ssmp.Layout, k ssmp.SyncKit) []ssmp.Program {
			return workload.ProducerConsumer(8, 20, l, false, k)
		}},
		{"migratory/CBL", ssmp.ProtoCBL, func(l ssmp.Layout, k ssmp.SyncKit) []ssmp.Program {
			p, _ := workload.Migratory(8, 10, k, l)
			return p
		}},
		{"migratory/WBI", ssmp.ProtoWBI, func(l ssmp.Layout, k ssmp.SyncKit) []ssmp.Program {
			p, _ := workload.Migratory(8, 10, k, l)
			return p
		}},
		{"wide-shared/CBL", ssmp.ProtoCBL, func(l ssmp.Layout, k ssmp.SyncKit) []ssmp.Program {
			return workload.WideShared(8, 30, 5, l)
		}},
		{"wide-shared/WBI", ssmp.ProtoWBI, func(l ssmp.Layout, k ssmp.SyncKit) []ssmp.Program {
			return workload.WideShared(8, 30, 5, l)
		}},
	}
	for _, pt := range pats {
		b.Run(pt.name, func(b *testing.B) {
			var msgs, cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := ssmp.DefaultConfig(8)
				cfg.Protocol = pt.proto
				p := ssmp.DefaultWorkloadParams()
				layout := ssmp.NewLayout(cfg, p)
				var kit ssmp.SyncKit
				if pt.proto == ssmp.ProtoCBL {
					kit = ssmp.CBLKit(layout, 8)
				} else {
					kit = ssmp.WBIKit(layout, 8, false)
				}
				m := ssmp.NewMachine(cfg)
				res, err := m.Run(pt.build(layout, kit))
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Messages
				cycles = uint64(res.Cycles)
			}
			b.ReportMetric(float64(msgs), "messages")
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// cycles per wall-clock second on the queue workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	var total uint64
	for i := 0; i < b.N; i++ {
		cfg := ssmp.DefaultConfig(16)
		p := ssmp.DefaultWorkloadParams()
		layout := ssmp.NewLayout(cfg, p)
		progs, _ := ssmp.WorkQueue(16, 32, 0, p, layout, ssmp.CBLKit(layout, 16), uint64(i))
		res, err := ssmp.NewMachine(cfg).Run(progs)
		if err != nil {
			b.Fatal(err)
		}
		total += uint64(res.Cycles)
	}
	b.ReportMetric(float64(total)/float64(b.N), "sim-cycles/op")
}

var _ = workload.DefaultParams // the workload package parameterizes benchOptions

// BenchmarkBusVersusOmegaScaling streams cold block fetches at growing
// processor counts on the bus and the Ω network. The bus's aggregate
// bandwidth is constant, so its completion time grows with the total
// traffic (~N), while the Ω network's bisection grows with N — the §1
// premise that motivates the whole paper. (On latency-bound workloads the
// 1-hop bus actually wins; saturation is a bandwidth phenomenon.)
func BenchmarkBusVersusOmegaScaling(b *testing.B) {
	for _, top := range []network.Topology{network.TopBus, network.TopOmega} {
		for _, procs := range []int{4, 16, 64} {
			b.Run(fmt.Sprintf("%s/n=%d", top, procs), func(b *testing.B) {
				var cycles uint64
				for i := 0; i < b.N; i++ {
					cfg := ssmp.DefaultConfig(procs)
					cfg.Topology = top
					m := ssmp.NewMachine(cfg)
					progs := make([]ssmp.Program, procs)
					for j := 0; j < procs; j++ {
						j := j
						progs[j] = func(p *ssmp.Proc) {
							for k := 0; k < 50; k++ {
								p.Read(ssmp.Addr(65536 + (j*50+k)*4))
							}
						}
					}
					res, err := m.Run(progs)
					if err != nil {
						b.Fatal(err)
					}
					cycles = uint64(res.Cycles)
				}
				b.ReportMetric(float64(cycles), "cycles")
			})
		}
	}
}

// BenchmarkMCSVersusCBL puts the software queue lock next to the hardware
// one under a 16-way convoy.
func BenchmarkMCSVersusCBL(b *testing.B) {
	type cse struct {
		name  string
		proto ssmp.Protocol
		mk    func() syncprim.Locker
	}
	cases := []cse{
		{"CBL", ssmp.ProtoCBL, func() syncprim.Locker { return ssmp.CBLLock{Addr: 400} }},
		{"MCS", ssmp.ProtoWBI, func() syncprim.Locker { return ssmp.MCSLock{TailAddr: 400, NodeBase: 2048} }},
		{"test-and-set", ssmp.ProtoWBI, func() syncprim.Locker { return ssmp.TestAndSetLock{Addr: 400} }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var cycles, msgs uint64
			for i := 0; i < b.N; i++ {
				cfg := ssmp.DefaultConfig(16)
				cfg.Protocol = c.proto
				m := ssmp.NewMachine(cfg)
				l := c.mk()
				progs := make([]ssmp.Program, 16)
				for j := 0; j < 16; j++ {
					progs[j] = func(p *ssmp.Proc) {
						for k := 0; k < 4; k++ {
							l.Acquire(p)
							p.Think(50)
							l.Release(p)
						}
					}
				}
				res, err := m.Run(progs)
				if err != nil {
					b.Fatal(err)
				}
				cycles = uint64(res.Cycles)
				msgs = res.Messages
			}
			b.ReportMetric(float64(cycles), "cycles")
			b.ReportMetric(float64(msgs), "messages")
		})
	}
}

// BenchmarkSyncZoo runs the synchronization-zoo contention sweep: every
// registered lock algorithm at small and large machine sizes, reporting
// remote memory references per acquisition and acquisition throughput.
// The rmr/acq column is the Mellor-Crummey & Scott separation in benchmark
// form: mcs and cbl stay flat from n=4 to n=32 while tas grows.
func BenchmarkSyncZoo(b *testing.B) {
	for _, algo := range ssmp.LockAlgos() {
		for _, n := range []int{4, 32} {
			b.Run(fmt.Sprintf("%s/n=%d", algo.Key, n), func(b *testing.B) {
				var pt ssmp.LockBenchPoint
				for i := 0; i < b.N; i++ {
					var err error
					pt, err = ssmp.RunLockBench(algo, synczoo.LockBenchOptions{
						Procs: n, Iters: 8, Crit: 16, Delay: 32,
					})
					if err != nil {
						b.Fatal(err)
					}
					if !pt.Verified() {
						b.Fatalf("mutual exclusion violated: final %d, want %d", pt.Final, pt.Want)
					}
				}
				b.ReportMetric(pt.RMRPerAcq(), "rmr/acq")
				b.ReportMetric(pt.AcqPerKCycle(), "acq/kcycle")
				b.ReportMetric(float64(pt.Cycles), "cycles")
			})
		}
	}
}

// BenchmarkSyncZooBarriers sweeps the barrier zoo the same way, in remote
// references per participant per episode.
func BenchmarkSyncZooBarriers(b *testing.B) {
	for _, algo := range ssmp.BarrierAlgos() {
		for _, n := range []int{4, 32} {
			b.Run(fmt.Sprintf("%s/n=%d", algo.Key, n), func(b *testing.B) {
				var pt ssmp.BarrierBenchPoint
				for i := 0; i < b.N; i++ {
					var err error
					pt, err = ssmp.RunBarrierBench(algo, synczoo.BarrierBenchOptions{
						Procs: n, Episodes: 4, Work: 40,
					})
					if err != nil {
						b.Fatal(err)
					}
					if !pt.Verified() {
						b.Fatal("barrier separation violated")
					}
				}
				b.ReportMetric(pt.RMRPerEpisode(), "rmr/episode")
				b.ReportMetric(float64(pt.Cycles), "cycles")
			})
		}
	}
}

// BenchmarkEnumerate measures the raw exploration engine on three classic
// shapes: SB (wide 2-proc interleaving), message passing through update
// subscriptions (propagation multiset), and a 4-proc IRIW-style program
// whose reader pairs blow up the interleaving space.
func BenchmarkEnumerate(b *testing.B) {
	x := bccheck.Loc{Block: 0}
	y := bccheck.Loc{Block: 1}
	cases := []struct {
		name string
		prog bccheck.Program
		opts bccheck.Options
	}{
		{
			name: "sb",
			prog: bccheck.Program{
				{{Op: bccheck.OpWriteGlobal, Loc: x, Val: 1}, {Op: bccheck.OpReadGlobal, Loc: y}},
				{{Op: bccheck.OpWriteGlobal, Loc: y, Val: 1}, {Op: bccheck.OpReadGlobal, Loc: x}},
			},
		},
		{
			name: "mp-update",
			prog: bccheck.Program{
				{{Op: bccheck.OpWriteGlobal, Loc: x, Val: 1}, {Op: bccheck.OpWriteGlobal, Loc: y, Val: 1}, {Op: bccheck.OpFlush}},
				{{Op: bccheck.OpReadUpdate, Loc: y}, {Op: bccheck.OpReadUpdate, Loc: x}},
			},
		},
		{
			name: "iriw-update",
			prog: bccheck.Program{
				{{Op: bccheck.OpWriteGlobal, Loc: x, Val: 1}},
				{{Op: bccheck.OpWriteGlobal, Loc: y, Val: 1}},
				{{Op: bccheck.OpReadUpdate, Loc: x}, {Op: bccheck.OpReadGlobal, Loc: y}},
				{{Op: bccheck.OpReadUpdate, Loc: y}, {Op: bccheck.OpReadGlobal, Loc: x}},
			},
		},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			var states int
			for i := 0; i < b.N; i++ {
				res, err := bccheck.Enumerate(c.prog, c.opts)
				if err != nil {
					b.Fatal(err)
				}
				states = res.States
			}
			b.ReportMetric(float64(states), "states")
			b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
		})
	}
}

// BenchmarkLitmusCorpus enumerates the full embedded corpus — the
// axiomatic half of what `make litmus` and /v1/litmus pay per job. The
// sym=on/sym=off variants isolate the symmetry quotient: same verdicts
// (pinned by the differential tests), fewer states explored.
func BenchmarkLitmusCorpus(b *testing.B) {
	tests, err := litmus.Corpus()
	if err != nil {
		b.Fatal(err)
	}
	for _, bc := range []struct {
		name string
		tune bccheck.Tuning
	}{
		{"sym=on", bccheck.Tuning{}},
		{"sym=off", bccheck.Tuning{DisableSymmetry: true}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			var states int
			for i := 0; i < b.N; i++ {
				states = 0
				for _, t := range tests {
					rep, err := litmus.RunTuned(t, nil, bc.tune)
					if err != nil {
						b.Fatal(err)
					}
					states += rep.States
				}
			}
			b.ReportMetric(float64(states), "states")
			b.ReportMetric(float64(states)*float64(b.N)/b.Elapsed().Seconds(), "states/s")
		})
	}
}

// BenchmarkPDESStencil sweeps the parallel engine's worker count on a
// 512-node nearest-neighbour stencil — the PDES scaling workload. The
// workers=0 variant is the classic serial engine, i.e. the sequential
// simulator every PDES speedup curve is measured against; workers>=1 run
// the time-windowed lane engine. All variants produce bit-identical
// strips (checked against the sequential reference each run).
func BenchmarkPDESStencil(b *testing.B) {
	benchmarkPDESStencil(b, true, []int{0, 1, 2, 4, 8})
}

// BenchmarkPDESStencilContended is the same sweep on the real contended
// omega network: switch-port queueing on, window-barrier arbitration
// resolving contention at each merge. The speedup the lane engine keeps
// here — not the ideal-network one — is the number that says the PDES
// engine runs the machine the paper measures.
func BenchmarkPDESStencilContended(b *testing.B) {
	benchmarkPDESStencil(b, false, []int{0, 2, 4})
}

func benchmarkPDESStencil(b *testing.B, ideal bool, workerSet []int) {
	spec := workload.StencilSpec{Procs: 1024, CellsPer: 48, Iters: 6, Work: 8}
	want := spec.Reference()
	for _, w := range workerSet {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				cfg := ssmp.DefaultConfig(spec.Procs)
				cfg.IdealNetwork = ideal
				cfg.SimWorkers = w
				m := core.NewMachine(cfg)
				progs, strips := spec.Programs(m.Geometry())
				res, err := m.Run(progs)
				if err != nil {
					b.Fatal(err)
				}
				cycles = uint64(res.Cycles)
				for pid, strip := range strips {
					for c, v := range strip {
						if v != want[pid*spec.CellsPer+c] {
							b.Fatalf("workers=%d: cell (%d,%d) diverged from the sequential reference", w, pid, c)
						}
					}
				}
			}
			b.ReportMetric(float64(cycles), "sim-cycles/op")
		})
	}
}

// BenchmarkPDESKV drives the in-sim key-value service — closed control
// loops, retransmission timers and all — through the lane engine on the
// contended network, against the workers=0 serial baseline. Unlike the
// open-loop stencil, KV sessions react to replies, so this is the
// adversarial case for window-barrier arbitration: every window's merge
// replays contended sends before the next window's reactions are computed.
func BenchmarkPDESKV(b *testing.B) {
	spec := ssmp.DefaultKVSpec(64)
	spec.Keys = 256
	spec.Shards = 16
	spec.Sessions = 2
	spec.Ops = 64
	spec.SubCap = 32
	for _, w := range []int{0, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var res *ssmp.KVResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = ssmp.RunKV(context.Background(), spec, ssmp.KVRunOptions{SimWorkers: w})
				if err != nil {
					b.Fatal(err)
				}
				if err := res.Check(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Sim.Cycles), "sim-cycles/op")
			b.ReportMetric(res.ThroughputOpsPerKCycle(), "ops/kcycle")
		})
	}
}

// BenchmarkKVStore runs the in-sim key-value service across machine sizes
// for the write-invalidate (mcs-locked) and competitive-update (cbl-locked)
// configurations, reporting the latency quantiles and throughput that feed
// results/BENCH_8.json. The p50/p99 separation between cbl and mcs under a
// read-mostly mix is the KV-form of the paper's protocol comparison: cbl's
// READ-UPDATE fast path answers hot gets from the cache while mcs sends
// every read home.
func BenchmarkKVStore(b *testing.B) {
	for _, lock := range []string{"cbl", "mcs"} {
		for _, n := range []int{4, 8, 16, 32} {
			b.Run(fmt.Sprintf("lock=%s/procs=%d", lock, n), func(b *testing.B) {
				spec := ssmp.DefaultKVSpec(n)
				spec.Lock = lock
				spec.Keys = 256
				spec.Shards = 16
				spec.Sessions = 2
				spec.Ops = 96
				spec.SubCap = 32
				var res *ssmp.KVResult
				for i := 0; i < b.N; i++ {
					var err error
					res, err = ssmp.RunKV(context.Background(), spec, ssmp.KVRunOptions{})
					if err != nil {
						b.Fatal(err)
					}
					if err := res.Check(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(res.P50()), "p50-cycles")
				b.ReportMetric(float64(res.P99()), "p99-cycles")
				b.ReportMetric(res.ThroughputOpsPerKCycle(), "ops/kcycle")
				b.ReportMetric(float64(res.Sim.Cycles), "cycles")
			})
		}
	}
}
