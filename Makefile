# Single source of truth for the commands CI and humans run.

GO ?= go

.PHONY: build test race vet bench bench-json bench-smoke serve clean

# Extra flags for cmd/benchjson, e.g. BENCHJSON_FLAGS=-baseline=old.json
BENCHJSON_FLAGS ?=

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Machine-readable throughput record: best of 3 runs, written to
# results/BENCH_2.json (see cmd/benchjson).
bench-json:
	$(GO) test -bench=SimulatorThroughput -benchmem -benchtime=2s -count=3 -run=^$$ . \
		| $(GO) run ./cmd/benchjson $(BENCHJSON_FLAGS) -out results/BENCH_2.json
	@cat results/BENCH_2.json

# One-iteration benchmark smoke: proves the bench path builds and runs; used
# by CI, where timing numbers would be noise anyway.
bench-smoke:
	$(GO) test -bench=SimulatorThroughput -benchtime=1x -run=^$$ .

serve: build
	$(GO) run ./cmd/ssmpd -addr :8080

clean:
	$(GO) clean ./...
