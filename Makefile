# Single source of truth for the commands CI and humans run.

GO ?= go

.PHONY: build test race vet bench bench-json bench-smoke bench-sync bench-pdes bench-kv bench-litmus pdes litmus farm farm-grow synczoo chaos kv cover serve clean

# Extra flags for cmd/benchjson, e.g. BENCHJSON_FLAGS=-baseline=old.json
BENCHJSON_FLAGS ?=

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Machine-readable throughput record: best of 3 runs, written to
# results/BENCH_4.json with before-vs-after ratios against the pre-overhaul
# checker baseline, and mirrored to results/BENCH_latest.json (see
# cmd/benchjson).
bench-json:
	$(GO) test '-bench=SimulatorThroughput|Enumerate|LitmusCorpus' -benchmem -benchtime=2s -count=3 -run=^$$ . \
		| $(GO) run ./cmd/benchjson $(BENCHJSON_FLAGS) -baseline=results/BENCH_4_baseline.json \
			-out results/BENCH_4.json -latest results/BENCH_latest.json
	@cat results/BENCH_4.json

# One-iteration benchmark smoke: proves the bench paths (simulator kernel and
# exploration engine) build and run; used by CI, where timing numbers would be
# noise anyway.
bench-smoke:
	$(GO) test '-bench=SimulatorThroughput|Enumerate' -benchtime=1x -run=^$$ .

# Synchronization-zoo contention sweep as a committed benchmark record:
# rmr/acq and acq/kcycle per algorithm land in the extra map (see
# cmd/benchjson), written to results/BENCH_6.json.
bench-sync:
	$(GO) test '-bench=SyncZoo' -benchtime=1x -count=3 -run=^$$ . \
		| $(GO) run ./cmd/benchjson $(BENCHJSON_FLAGS) \
			-out results/BENCH_6.json -latest results/BENCH_latest.json
	@cat results/BENCH_6.json

# PDES scaling record: the 1024-node stencil swept across engine worker
# counts (workers=0 is the classic serial engine) on both the ideal and
# the contended network, plus the closed-loop KV service on the contended
# network, with within-report speedup ratios against each family's serial
# baseline annotated as vs_base (see cmd/benchjson -ratio-base). Written
# to results/BENCH_9.json. The report's "cpus" field matters when reading
# the curve: wall-clock speedup cannot exceed min(workers, cpus).
bench-pdes:
	$(GO) test '-bench=PDESStencil|PDESKV' -benchmem -benchtime=2x -count=3 -run=^$$ . \
		| $(GO) run ./cmd/benchjson $(BENCHJSON_FLAGS) -ratio-base=workers=0 \
			-out results/BENCH_9.json -latest results/BENCH_latest.json
	@cat results/BENCH_9.json

# Key-value service latency record: the in-sim KV store swept across
# machine sizes for cbl vs mcs shard locks, with p50/p99/throughput per
# node count assembled into scaling curves (see cmd/benchjson -curves).
# Written to results/BENCH_8.json. The curve to read: cbl's read-mostly
# p50/p99 stay low as procs grow (READ-UPDATE fast path) while mcs's climb.
bench-kv:
	$(GO) test '-bench=KVStore' -benchtime=1x -count=3 -run=^$$ . \
		| $(GO) run ./cmd/benchjson $(BENCHJSON_FLAGS) -curves=procs \
			-out results/BENCH_8.json -latest results/BENCH_latest.json
	@cat results/BENCH_8.json

# Symmetry-reduction record: the litmus corpus enumerated with the
# symmetry quotient on vs off, with the within-report speedup annotated
# against the sym=off variant (see cmd/benchjson -ratio-base). Written to
# results/BENCH_10.json. The states metric is the headline: the quotient
# must explore >= 1.5x fewer states at identical verdicts.
bench-litmus:
	$(GO) test '-bench=LitmusCorpus' -benchmem -benchtime=2s -count=3 -run=^$$ . \
		| $(GO) run ./cmd/benchjson $(BENCHJSON_FLAGS) -ratio-base=sym=off \
			-out results/BENCH_10.json -latest results/BENCH_latest.json
	@cat results/BENCH_10.json

# PDES determinism gate: the parallel engine's unit tests, the window-merge
# port-arbitration parity suite, and every workers=1-vs-N equality property
# (engine, network, workload, harness, daemon) under the race detector. The
# bench line runs both the ideal and the contended stencil (the PDESStencil
# pattern substring-matches PDESStencilContended).
pdes:
	$(GO) test -race ./internal/sim/
	$(GO) test -race -run 'PDES|Parallel|Stencil|SimWorkers|LaneArbitration' \
		./internal/core/ ./internal/network/ ./internal/workload/ ./internal/harness/ ./internal/server/
	$(GO) test '-bench=PDESStencil/workers=(0|2)$$' -benchtime=1x -run=^$$ .

# Synchronization-zoo litmus: the mutual-exclusion and barrier-separation
# witnesses for every zoo algorithm, swept across jitter seeds under the
# race detector, then across fault seeds on a misbehaving interconnect.
synczoo:
	$(GO) test -race ./internal/synczoo/
	$(GO) run ./cmd/ssmpsync litmus -seeds 8
	$(GO) run ./cmd/ssmpsync litmus -seeds 8 -faults

# Litmus cross-validation: the embedded corpus under the race detector,
# then a bounded fuzz of random programs against the axiomatic model.
litmus:
	$(GO) test -race -run 'TestCorpus|TestFuzz|TestShrink' ./internal/litmus/
	$(GO) run ./cmd/ssmplitmus fuzz -budget 30s

# Farm-corpus gate: the committed generated corpus (300+ canonical tests,
# every §2 axiom family covered) replayed end to end under the race
# detector — canonical-form fixpoint, recomputed coverage vectors, pinned
# allowed sets, simulator cross-validation, and engine-configuration
# agreement (POR/symmetry/worker-count) on every test.
farm:
	$(GO) test -race -run 'TestGeneratedCorpusReplay|TestDifferentialGenerated|TestFarm|TestCanonicalize' \
		./internal/litmus/

# Regenerate the committed farm corpus from scratch (deterministic: the
# output is a pure function of the campaign parameters, so this is a
# no-op unless the generator, model, or canonicalization changed).
farm-grow:
	$(GO) run ./cmd/ssmplitmus farm -n 7000 -rng 1 -report \
		-out internal/litmus/testdata/generated

# Chaos soak: fault-plane and reliable-transport unit tests under the race
# detector, then the litmus corpus swept across fault seeds — each run's
# fabric drops, duplicates and delays messages (seeded, deterministic) and
# every observed outcome must still be axiomatically allowed.
chaos:
	$(GO) test -race -run 'TestFault|TestTransport|TestChaos' \
		./internal/network/ ./internal/fabric/ ./internal/core/ ./internal/litmus/ ./internal/server/
	$(GO) run ./cmd/ssmplitmus run -faults -seeds 32

# Key-value service gate: the kvapp unit tests and sequential-consistency
# oracle under the race detector (including the chaos soak in -short form
# and the lane-safety bit-identical check), the harness/server/CLI surface,
# then a short chaos soak through the CLI across both protocols.
kv:
	$(GO) test -race -short ./internal/kvapp/ ./cmd/benchjson/
	$(GO) test -race -run 'KV|MetricsLatency' ./internal/harness/ ./internal/server/
	$(GO) run ./cmd/ssmpkv soak -seeds 4
	$(GO) test '-bench=KVStore/lock=(cbl|mcs)/procs=4$$' -benchtime=1x -run=^$$ .

# Per-package statement coverage, with a hard floor on the checker
# packages the litmus farm rests on (override: COVER_FLOOR=90 make cover).
COVER_FLOOR ?= 85
cover:
	@out=$$($(GO) test -cover ./...) || { echo "$$out"; exit 1; }; \
	echo "$$out"; \
	echo "$$out" | awk -v floor=$(COVER_FLOOR) ' \
		$$2 ~ /^ssmp\/internal\/(bccheck|litmus)$$/ { \
			for (i = 1; i <= NF; i++) if ($$i ~ /%$$/) { \
				p = $$i; sub(/%/, "", p); \
				if (p + 0 < floor) { printf "coverage gate: %s at %s%% is below the %s%% floor\n", $$2, p, floor; fail = 1 } \
			} \
		} \
		END { exit fail }'

serve: build
	$(GO) run ./cmd/ssmpd -addr :8080

clean:
	$(GO) clean ./...
