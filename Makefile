# Single source of truth for the commands CI and humans run.

GO ?= go

.PHONY: build test race vet bench serve clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

serve: build
	$(GO) run ./cmd/ssmpd -addr :8080

clean:
	$(GO) clean ./...
