// Command ssmpreport regenerates the complete evaluation in one run and
// emits a Markdown report: the analytical Tables 2 and 3, their simulated
// cross-checks, and Figures 4-7, with the paper's shape claims checked
// programmatically. This is the reproducibility entry point:
//
//	go run ./cmd/ssmpreport -procs 2,4,8,16,32,64 > report.md
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"ssmp/internal/analytic"
	"ssmp/internal/harness"
)

func main() {
	procsFlag := flag.String("procs", "2,4,8,16,32", "processor sweep for the figures")
	tableN := flag.Int("table-n", 16, "processor count for the tables")
	tasks := flag.Int("tasks", 128, "work-queue tasks")
	episodes := flag.Int("episodes", 8, "sync-model episodes")
	seed := flag.Uint64("seed", 42, "workload seed")
	verbose := flag.Bool("v", false, "log each run to stderr")
	flag.Parse()

	opt := harness.DefaultOptions()
	opt.Tasks = *tasks
	opt.Episodes = *episodes
	opt.Seed = *seed
	opt.Procs = opt.Procs[:0]
	for _, s := range strings.Split(*procsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad procs list: %v", err)
		}
		opt.Procs = append(opt.Procs, n)
	}
	if *verbose {
		opt.Log = os.Stderr
	}

	fmt.Println("# ssmp evaluation report")
	fmt.Println()
	fmt.Printf("Sweep: procs=%v, tables at n=%d, %d tasks, %d episodes, seed %d.\n",
		opt.Procs, *tableN, *tasks, *episodes, *seed)
	fmt.Println("All runs are deterministic; rerunning this command reproduces every number.")
	fmt.Println()

	fmt.Println("## Analytical models")
	fmt.Println()
	fmt.Println("```")
	fmt.Print(analytic.FormatTable2(*tableN, 4, analytic.DefaultClassCosts()))
	fmt.Println("```")
	fmt.Println()
	fmt.Println("```")
	fmt.Print(analytic.FormatTable3(analytic.DefaultSyncParams(*tableN)))
	fmt.Println("```")
	fmt.Println()

	fmt.Println("## Simulated cross-checks")
	fmt.Println()
	fmt.Println("```")
	fmt.Print(harness.FormatTable2Sim(*tableN, 20, opt.Table2Sim(*tableN, 20)))
	fmt.Println("```")
	fmt.Println()
	t3 := opt.Table3Sim(*tableN)
	fmt.Println("```")
	fmt.Print(harness.FormatTable3Sim(*tableN, t3))
	fmt.Println("```")
	fmt.Println()
	checkTable3(t3, *tableN)
	fmt.Println()

	fmt.Println("## Figures")
	for _, f := range opt.Figures() {
		fmt.Println()
		fmt.Printf("### %s\n\n", f.Name)
		fmt.Println("```")
		fmt.Print(f.Table())
		fmt.Println("```")
	}
	fmt.Println()
	checkFigures(opt)
}

// checkTable3 prints pass/fail lines for the Table 3 shape claims.
func checkTable3(rows []harness.Table3Measured, n int) {
	get := func(s analytic.Scenario, scheme string) harness.Table3Measured {
		for _, r := range rows {
			if r.Scenario == s && r.Scheme == scheme {
				return r
			}
		}
		log.Fatalf("missing %s/%s", s, scheme)
		return harness.Table3Measured{}
	}
	claim := func(name string, ok bool) {
		mark := "PASS"
		if !ok {
			mark = "FAIL"
		}
		fmt.Printf("- %s: **%s**\n", name, mark)
	}
	claim("CBL serial lock is exactly 3 messages",
		get(analytic.SerialLock, "CBL").Messages == 3)
	claim(fmt.Sprintf("CBL parallel lock is O(n): <= 6n = %d messages", 6*n),
		get(analytic.ParallelLock, "CBL").Messages <= uint64(6*n))
	claim("WBI parallel lock costs more than CBL (messages)",
		get(analytic.ParallelLock, "WBI").Messages > get(analytic.ParallelLock, "CBL").Messages)
	claim("WBI parallel lock costs more than CBL (time)",
		get(analytic.ParallelLock, "WBI").Cycles > get(analytic.ParallelLock, "CBL").Cycles)
	claim("CBL barrier request is exactly 2 messages per processor",
		get(analytic.BarrierRequest, "CBL").Messages == 2)
	claim("CBL barrier beats the software barrier (messages)",
		get(analytic.BarrierNotify, "CBL").Messages < get(analytic.BarrierNotify, "WBI").Messages)
}

// checkFigures prints pass/fail lines for the figure shape claims at the
// sweep's largest processor count.
func checkFigures(opt harness.Options) {
	nMax := float64(opt.Procs[len(opt.Procs)-1])
	f4 := opt.Figure4()
	y := func(f harness.Figure, name string, x float64) float64 {
		for _, s := range f.Series {
			if s.Name == name {
				if v, ok := s.Y(x); ok {
					return v
				}
			}
		}
		log.Fatalf("missing %s in %s", name, f.Name)
		return 0
	}
	claim := func(name string, ok bool) {
		mark := "PASS"
		if !ok {
			mark = "FAIL"
		}
		fmt.Printf("- %s: **%s**\n", name, mark)
	}
	fmt.Println("## Shape claims (largest sweep point)")
	fmt.Println()
	claim("Figure 4: Q-CBL beats Q-WBI under contention",
		y(f4, "Q-CBL", nMax) < y(f4, "Q-WBI", nMax))
	claim("Figure 4: backoff helps WBI but does not beat CBL",
		y(f4, "Q-backoff", nMax) < y(f4, "Q-WBI", nMax) &&
			y(f4, "Q-CBL", nMax) < y(f4, "Q-backoff", nMax))
	claim("Figure 4: sync-model CBL <= sync-model WBI",
		y(f4, "CBL", nMax) <= y(f4, "WBI", nMax))
	f6 := opt.Figure6()
	bcWins := true
	for _, p := range opt.Procs {
		if y(f6, "BC-CBL", float64(p)) > y(f6, "SC-CBL", float64(p)) {
			bcWins = false
		}
	}
	claim("Figures 6-7: buffered consistency never loses to SC", bcWins)
}
