package main

import (
	"reflect"
	"testing"
)

func TestSweepValue(t *testing.T) {
	cases := []struct {
		name, param, family string
		x                   int
		ok                  bool
	}{
		{"BenchmarkKVStore/lock=cbl/procs=16", "procs", "BenchmarkKVStore/lock=cbl", 16, true},
		{"BenchmarkKVStore/procs=4/lock=mcs", "procs", "BenchmarkKVStore/lock=mcs", 4, true},
		{"BenchmarkPDES/workers=8", "workers", "BenchmarkPDES", 8, true},
		{"BenchmarkKVStore/lock=cbl", "procs", "", 0, false},
		{"BenchmarkKVStore/procs=abc", "procs", "", 0, false},
	}
	for _, c := range cases {
		family, x, ok := sweepValue(c.name, c.param)
		if family != c.family || x != c.x || ok != c.ok {
			t.Errorf("sweepValue(%q, %q) = (%q, %d, %v), want (%q, %d, %v)",
				c.name, c.param, family, x, ok, c.family, c.x, c.ok)
		}
	}
}

func TestAssembleCurves(t *testing.T) {
	entries := []Entry{
		{Name: "BenchmarkKVStore/lock=cbl/procs=16", NsPerOp: 2e6,
			Extra: map[string]float64{"p50-cycles": 16, "p99-cycles": 64}},
		{Name: "BenchmarkKVStore/lock=cbl/procs=4", NsPerOp: 1e6,
			Extra: map[string]float64{"p50-cycles": 16, "p99-cycles": 32}},
		{Name: "BenchmarkKVStore/lock=mcs/procs=4", NsPerOp: 1.5e6,
			Extra: map[string]float64{"p50-cycles": 32}},
		{Name: "BenchmarkUnrelated", NsPerOp: 5}, // no sweep segment: dropped
	}
	curves := assembleCurves(entries, "procs")

	// Families and metrics come out sorted: cbl before mcs, ns/op before
	// p50-cycles before p99-cycles.
	var got []string
	for _, c := range curves {
		got = append(got, c.Name+" "+c.Metric)
	}
	want := []string{
		"BenchmarkKVStore/lock=cbl ns/op",
		"BenchmarkKVStore/lock=cbl p50-cycles",
		"BenchmarkKVStore/lock=cbl p99-cycles",
		"BenchmarkKVStore/lock=mcs ns/op",
		"BenchmarkKVStore/lock=mcs p50-cycles",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("curve set = %v, want %v", got, want)
	}

	// Points are sorted by the sweep parameter even when the input is not.
	p99 := curves[2]
	if p99.Param != "procs" {
		t.Fatalf("param = %q", p99.Param)
	}
	wantPts := []CurvePoint{{X: 4, Value: 32}, {X: 16, Value: 64}}
	if !reflect.DeepEqual(p99.Points, wantPts) {
		t.Fatalf("p99 points = %v, want %v", p99.Points, wantPts)
	}
}
