// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark record, so performance numbers are committed in a form scripts
// and later PRs can diff.
//
//	go test -bench=SimulatorThroughput -benchmem -count=3 -run='^$' . |
//	    go run ./cmd/benchjson -out results/BENCH_2.json
//
// When a benchmark appears multiple times (-count), the run with the lowest
// ns/op wins: minimum wall time is the least noisy estimator on a shared
// machine. A -baseline file (a previous benchjson output) embeds
// before-vs-after ratios next to the new numbers. -latest mirrors the
// report to a stable path (results/BENCH_latest.json) so scripts can read
// the newest record without knowing the PR numbering.
//
// -ratio-base computes within-report speedup curves: given a sub-benchmark
// suffix (e.g. "workers=1"), every entry "X/variant" is annotated with the
// ratio of its sibling "X/workers=1" — the shape scaling benchmarks want,
// where the interesting number is speedup over the same report's base
// variant, not over a previous commit.
//
// -curves assembles scaling curves from the report itself: given a sweep
// parameter (e.g. "procs"), entries named "X/procs=N" are grouped by the
// remaining name "X", and every custom metric (each b.ReportMetric unit)
// becomes one curve of (N, value) points sorted by N. This turns a
// latency benchmark family like BenchmarkKVStore/lock=cbl/procs={4..32}
// into ready-to-plot p50/p99/throughput-vs-node-count series.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Entry is one benchmark's result.
type Entry struct {
	Name    string  `json:"name"`
	Iters   int64   `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present with -benchmem.
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// SimCyclesPerOp is the benchmark's custom sim-cycles/op metric;
	// SimCyclesPerSec derives kernel throughput from it.
	SimCyclesPerOp  float64 `json:"sim_cycles_per_op,omitempty"`
	SimCyclesPerSec float64 `json:"sim_cycles_per_sec,omitempty"`
	// Extra carries every other custom b.ReportMetric unit verbatim
	// (e.g. "rmr/acq", "states/s"), so new benchmarks need no parser
	// change to land in the record.
	Extra map[string]float64 `json:"extra,omitempty"`

	// Baseline carries the matching entry of the -baseline file, plus
	// speedup ratios, when one was given.
	Baseline *Comparison `json:"baseline,omitempty"`
	// VsBase carries the within-report ratio against the -ratio-base
	// sibling variant, when one was given and the sibling exists.
	VsBase *BaseRatio `json:"vs_base,omitempty"`
}

// BaseRatio relates an entry to the same report's base variant.
type BaseRatio struct {
	// Base is the full name of the base entry ("X/workers=1").
	Base    string  `json:"base"`
	NsPerOp float64 `json:"ns_per_op"`
	// Speedup is base ns/op divided by this entry's ns/op (>1 is faster
	// than the base variant).
	Speedup float64 `json:"speedup"`
}

// Comparison relates an entry to its baseline counterpart.
type Comparison struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Speedup is baseline ns/op divided by current ns/op (>1 is faster).
	Speedup float64 `json:"speedup"`
	// AllocRatio is current allocs/op divided by baseline (<1 is leaner).
	AllocRatio float64 `json:"alloc_ratio,omitempty"`
}

// Curve is one metric of one benchmark family swept over a parameter:
// ready-to-plot (x, value) points, e.g. p99-cycles vs procs for
// BenchmarkKVStore/lock=cbl.
type Curve struct {
	// Name is the family with the sweep segment removed
	// ("BenchmarkKVStore/lock=cbl").
	Name string `json:"name"`
	// Param is the sweep parameter ("procs"); Metric is the unit string the
	// benchmark reported ("p50-cycles", "ops/kcycle", "ns/op").
	Param  string       `json:"param"`
	Metric string       `json:"metric"`
	Points []CurvePoint `json:"points"`
}

// CurvePoint is one (parameter value, metric value) sample.
type CurvePoint struct {
	X     int     `json:"x"`
	Value float64 `json:"value"`
}

// Report is the file benchjson writes.
type Report struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	// CPUs records the host's logical CPU count — essential context for
	// parallel-speedup records: a workers=N curve cannot show wall-clock
	// speedup beyond min(N, CPUs).
	CPUs    int     `json:"cpus"`
	Entries []Entry `json:"entries"`
	// Curves is present with -curves: per-family per-metric scaling series.
	Curves []Curve `json:"curves,omitempty"`
}

func main() {
	out := flag.String("out", "", "output path (default stdout)")
	baseline := flag.String("baseline", "", "previous benchjson report to compare against")
	latest := flag.String("latest", "", "stable path to mirror the report to (e.g. results/BENCH_latest.json)")
	ratioBase := flag.String("ratio-base", "", "sub-benchmark suffix to compute within-report speedups against (e.g. workers=1)")
	curveParam := flag.String("curves", "", "sweep parameter to assemble per-metric scaling curves over (e.g. procs)")
	flag.Parse()

	entries, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(entries) == 0 {
		fatal(fmt.Errorf("no benchmark lines on stdin"))
	}
	if *baseline != "" {
		if err := compare(entries, *baseline); err != nil {
			fatal(err)
		}
	}
	if *ratioBase != "" {
		ratioAgainstBase(entries, *ratioBase)
	}

	rep := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		Entries:     entries,
	}
	if *curveParam != "" {
		rep.Curves = assembleCurves(entries, *curveParam)
		if len(rep.Curves) == 0 {
			fatal(fmt.Errorf("-curves %s: no entry name contains a %q segment", *curveParam, *curveParam+"=N"))
		}
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := writeFile(*out, enc); err != nil {
		fatal(err)
	}
	if *latest != "" {
		if err := writeFile(*latest, enc); err != nil {
			fatal(err)
		}
	}
}

func writeFile(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse extracts benchmark lines, keeping the lowest-ns/op run per name.
func parse(r *os.File) ([]Entry, error) {
	best := map[string]Entry{}
	var order []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line) // echo raw output; stdout stays JSON
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		// Strip the -N GOMAXPROCS suffix from the name.
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		e := Entry{Name: name, Iters: iters}
		// The remainder alternates "value unit".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			case "sim-cycles/op":
				e.SimCyclesPerOp = v
			default:
				if e.Extra == nil {
					e.Extra = map[string]float64{}
				}
				e.Extra[fields[i+1]] = v
			}
		}
		if e.NsPerOp > 0 && e.SimCyclesPerOp > 0 {
			e.SimCyclesPerSec = e.SimCyclesPerOp / e.NsPerOp * 1e9
		}
		if prev, ok := best[name]; !ok {
			best[name] = e
			order = append(order, name)
		} else if e.NsPerOp < prev.NsPerOp {
			best[name] = e
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	sort.Strings(order)
	out := make([]Entry, 0, len(order))
	for _, name := range order {
		out = append(out, best[name])
	}
	return out, nil
}

// ratioAgainstBase annotates every entry whose sibling "<parent>/<base>"
// exists in the same report with its speedup over that sibling. The base
// entry itself is skipped (its ratio is 1 by construction), as are entries
// with no "/" (they have no variant structure to compare within).
func ratioAgainstBase(entries []Entry, base string) {
	bases := map[string]Entry{}
	for _, e := range entries {
		if i := strings.LastIndex(e.Name, "/"); i > 0 && e.Name[i+1:] == base {
			bases[e.Name[:i]] = e
		}
	}
	for i := range entries {
		j := strings.LastIndex(entries[i].Name, "/")
		if j <= 0 || entries[i].Name[j+1:] == base {
			continue
		}
		b, ok := bases[entries[i].Name[:j]]
		if !ok || b.NsPerOp == 0 || entries[i].NsPerOp == 0 {
			continue
		}
		entries[i].VsBase = &BaseRatio{
			Base:    b.Name,
			NsPerOp: b.NsPerOp,
			Speedup: b.NsPerOp / entries[i].NsPerOp,
		}
	}
}

// sweepValue extracts the "<param>=N" segment from a benchmark name,
// returning N and the name with that segment removed.
func sweepValue(name, param string) (family string, x int, ok bool) {
	segs := strings.Split(name, "/")
	for i, seg := range segs {
		rest, found := strings.CutPrefix(seg, param+"=")
		if !found {
			continue
		}
		n, err := strconv.Atoi(rest)
		if err != nil {
			continue
		}
		return strings.Join(append(segs[:i:i], segs[i+1:]...), "/"), n, true
	}
	return "", 0, false
}

// assembleCurves groups entries by family (name minus the "<param>=N"
// segment) and emits one curve per (family, metric) with points sorted by
// the parameter. ns/op and every custom unit become metrics; families and
// metrics are emitted in sorted order so the output is deterministic.
func assembleCurves(entries []Entry, param string) []Curve {
	type key struct{ family, metric string }
	series := map[key][]CurvePoint{}
	for _, e := range entries {
		family, x, ok := sweepValue(e.Name, param)
		if !ok {
			continue
		}
		add := func(metric string, v float64) {
			k := key{family, metric}
			series[k] = append(series[k], CurvePoint{X: x, Value: v})
		}
		add("ns/op", e.NsPerOp)
		if e.SimCyclesPerOp > 0 {
			add("sim-cycles/op", e.SimCyclesPerOp)
		}
		for metric, v := range e.Extra {
			add(metric, v)
		}
	}
	keys := make([]key, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].family != keys[j].family {
			return keys[i].family < keys[j].family
		}
		return keys[i].metric < keys[j].metric
	})
	out := make([]Curve, 0, len(keys))
	for _, k := range keys {
		pts := series[k]
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		out = append(out, Curve{Name: k.family, Param: param, Metric: k.metric, Points: pts})
	}
	return out
}

// compare annotates entries with ratios against a previous report.
func compare(entries []Entry, path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var prev Report
	if err := json.Unmarshal(raw, &prev); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	byName := map[string]Entry{}
	for _, e := range prev.Entries {
		byName[e.Name] = e
	}
	for i := range entries {
		b, ok := byName[entries[i].Name]
		if !ok || b.NsPerOp == 0 {
			continue
		}
		c := &Comparison{NsPerOp: b.NsPerOp, AllocsPerOp: b.AllocsPerOp}
		c.Speedup = b.NsPerOp / entries[i].NsPerOp
		if b.AllocsPerOp > 0 {
			c.AllocRatio = entries[i].AllocsPerOp / b.AllocsPerOp
		}
		entries[i].Baseline = c
	}
	return nil
}
