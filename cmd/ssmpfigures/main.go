// Command ssmpfigures regenerates the paper's simulation figures (4-7):
// completion time against processor count for the cache-scheme comparison
// (Figures 4-5) and the buffered-vs-sequential-consistency comparison
// (Figures 6-7). Output is an aligned text table per figure, optionally
// CSV files for plotting.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"ssmp/internal/harness"
	"ssmp/internal/plot"
)

func main() {
	fig := flag.Int("fig", 0, "figure number 4-7 (0 = all)")
	util := flag.Bool("util", false, "also produce the utilization extension figure")
	procsFlag := flag.String("procs", "2,4,8,16,32,64", "processor sweep")
	tasks := flag.Int("tasks", 128, "work-queue tasks")
	episodes := flag.Int("episodes", 8, "sync-model episodes")
	seed := flag.Uint64("seed", 42, "workload seed")
	csvDir := flag.String("csv", "", "directory to write CSV files into")
	svgDir := flag.String("svg", "", "directory to write SVG charts into")
	logY := flag.Bool("logy", false, "logarithmic Y axis for the SVG charts")
	verbose := flag.Bool("v", false, "log each run")
	flag.Parse()

	opt := harness.DefaultOptions()
	opt.Tasks = *tasks
	opt.Episodes = *episodes
	opt.Seed = *seed
	opt.Procs = opt.Procs[:0]
	for _, s := range strings.Split(*procsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad procs list: %v", err)
		}
		opt.Procs = append(opt.Procs, n)
	}
	if *verbose {
		opt.Log = os.Stderr
	}

	var figures []harness.Figure
	if *fig == 0 {
		figures = opt.Figures()
	} else {
		f, err := opt.FigureByNumber(*fig)
		if err != nil {
			log.Fatal(err)
		}
		figures = []harness.Figure{f}
	}
	if *util {
		figures = append(figures, opt.UtilizationFigure(128))
	}

	for _, f := range figures {
		fmt.Println(f.Table())
		base := strings.ToLower(strings.ReplaceAll(f.Name, " ", ""))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, base+".csv")
			if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
		if *svgDir != "" {
			yLabel := "completion time (cycles)"
			logY := *logY
			if f.Name == "Utilization" {
				yLabel = "mean utilization (%)"
				logY = false
			}
			svg := plot.SVG(plot.Options{
				Title: f.Name + ": " + f.Title, XLabel: f.XLabel,
				YLabel: yLabel, LogX: true, LogY: logY,
			}, f.Series)
			path := filepath.Join(*svgDir, base+".svg")
			if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}
