// Command ssmpd serves the simulator as a long-running HTTP daemon: a
// bounded worker pool runs simulation jobs, a content-addressed cache
// serves repeated configurations without re-simulating, and /metrics
// exposes the serving counters.
//
// Usage:
//
//	ssmpd -addr :8080 -workers 8 -queue 32 -cache 4096
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/sim -d '{"procs":16,"workload":"queue"}'
//	curl -s 'localhost:8080/v1/figure/4?procs=2,4,8'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drain gracefully: in-flight jobs finish (up to
// -drain-timeout), new jobs get 503.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ssmp/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "job queue depth (0 = 4x workers)")
	cacheEntries := flag.Int("cache", 4096, "result cache entries (negative disables)")
	defaultTimeout := flag.Duration("timeout", 60*time.Second, "default per-job timeout")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "cap on requested per-job timeouts")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "shutdown drain deadline")
	quiet := flag.Bool("quiet", false, "suppress request logging")
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	var srvLog *log.Logger
	if !*quiet {
		srvLog = logger
	}
	s := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		Log:            srvLog,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("ssmpd: listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		logger.Fatalf("ssmpd: %v", err)
	case got := <-sig:
		logger.Printf("ssmpd: %v, draining (deadline %s)", got, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections first, then drain the worker pool.
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("ssmpd: http shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		logger.Fatalf("ssmpd: drain incomplete: %v", err)
	}
	logger.Printf("ssmpd: bye")
}
