// Command ssmpd serves the simulator as a long-running HTTP daemon: a
// bounded worker pool runs simulation jobs, a content-addressed cache
// serves repeated configurations without re-simulating, and /metrics
// exposes the serving counters.
//
// Usage:
//
//	ssmpd -addr :8080 -workers 8 -queue 32 -cache 4096
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/sim -d '{"procs":16,"workload":"queue"}'
//	curl -s 'localhost:8080/v1/figure/4?procs=2,4,8'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drain gracefully: in-flight jobs finish (up to
// -drain-timeout), new jobs get 503.
//
// Profiling a live daemon: -debug-addr serves net/http/pprof on a separate
// listener (keep it off the service address — it is unauthenticated), and
// -cpuprofile/-memprofile write whole-process profiles on shutdown:
//
//	ssmpd -addr :8080 -debug-addr localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"ssmp/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "job queue depth (0 = 4x workers)")
	cacheEntries := flag.Int("cache", 4096, "result cache entries (negative disables)")
	defaultTimeout := flag.Duration("timeout", 60*time.Second, "default per-job timeout")
	maxTimeout := flag.Duration("max-timeout", 10*time.Minute, "cap on requested per-job timeouts")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "shutdown drain deadline")
	quiet := flag.Bool("quiet", false, "suppress request logging")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = off)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the daemon's lifetime to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on shutdown")
	flag.Parse()

	logger := log.New(os.Stderr, "", log.LstdFlags)
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			logger.Fatalf("ssmpd: cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			logger.Fatalf("ssmpd: cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *debugAddr != "" {
		// The pprof import registers on http.DefaultServeMux; serve that mux
		// only on the dedicated debug listener so the service address never
		// exposes it.
		go func() {
			logger.Printf("ssmpd: pprof on http://%s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, http.DefaultServeMux); err != nil {
				logger.Printf("ssmpd: debug listener: %v", err)
			}
		}()
	}
	var srvLog *log.Logger
	if !*quiet {
		srvLog = logger
	}
	s := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		Log:            srvLog,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("ssmpd: listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		logger.Fatalf("ssmpd: %v", err)
	case got := <-sig:
		logger.Printf("ssmpd: %v, draining (deadline %s)", got, *drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Stop accepting connections first, then drain the worker pool.
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("ssmpd: http shutdown: %v", err)
	}
	if err := s.Shutdown(ctx); err != nil {
		logger.Fatalf("ssmpd: drain incomplete: %v", err)
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			logger.Fatalf("ssmpd: memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			logger.Fatalf("ssmpd: memprofile: %v", err)
		}
	}
	logger.Printf("ssmpd: bye")
}
