// Command ssmpsim runs one simulation of the paper's machine (or the WBI
// baseline) under either workload model and prints the run's metrics.
//
// Usage:
//
//	ssmpsim -procs 16 -proto cbl -consistency bc -workload queue -grain 128
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ssmp"
	"ssmp/internal/network"
)

func main() {
	procs := flag.Int("procs", 16, "processor count (power of two)")
	proto := flag.String("proto", "cbl", "machine protocol: cbl | wbi")
	cons := flag.String("consistency", "bc", "memory model (cbl machine): bc | sc")
	wl := flag.String("workload", "queue", "workload model: sync | queue")
	grain := flag.Int("grain", ssmp.MediumGrain, "references per task (granularity)")
	episodes := flag.Int("episodes", 8, "sync model: episodes per processor")
	tasks := flag.Int("tasks", 128, "queue model: initial tasks")
	spawn := flag.Float64("spawn", 0.2, "queue model: task spawn probability")
	backoff := flag.Bool("backoff", false, "wbi: exponential backoff on locks")
	seed := flag.Uint64("seed", 42, "workload seed")
	ideal := flag.Bool("ideal-net", false, "contention-free network (ablation)")
	danceHall := flag.Bool("dance-hall", false, "all memory across the network (Table 2 organization)")
	directHandoff := flag.Bool("direct-handoff", false, "cbl: pass write-lock grants straight down the queue")
	writeUpdate := flag.Bool("write-update", false, "cbl: sender-initiated write-update coherence (ablation)")
	dirPtrs := flag.Int("dir-pointers", 0, "wbi: limited directory pointer count (0 = full map)")
	topology := flag.String("topology", "omega", "interconnect: omega | mesh | bus")
	msgTrace := flag.Bool("msgtrace", false, "dump every message to stderr")
	flag.Parse()

	cfg := ssmp.DefaultConfig(*procs)
	switch *proto {
	case "cbl":
		cfg.Protocol = ssmp.ProtoCBL
	case "wbi":
		cfg.Protocol = ssmp.ProtoWBI
	default:
		log.Fatalf("unknown protocol %q", *proto)
	}
	switch *cons {
	case "bc":
		cfg.Consistency = ssmp.BC
	case "sc":
		cfg.Consistency = ssmp.SC
	default:
		log.Fatalf("unknown consistency %q", *cons)
	}
	cfg.IdealNetwork = *ideal
	cfg.DanceHall = *danceHall
	cfg.DirectHandoff = *directHandoff
	cfg.WriteUpdate = *writeUpdate
	cfg.DirMaxPointers = *dirPtrs
	switch *topology {
	case "omega":
	case "mesh":
		cfg.Topology = network.TopMesh
	case "bus":
		cfg.Topology = network.TopBus
	default:
		log.Fatalf("unknown topology %q", *topology)
	}

	p := ssmp.DefaultWorkloadParams()
	p.Grain = *grain
	layout := ssmp.NewLayout(cfg, p)
	var kit ssmp.SyncKit
	if cfg.Protocol == ssmp.ProtoCBL {
		kit = ssmp.CBLKit(layout, *procs)
	} else {
		kit = ssmp.WBIKit(layout, *procs, *backoff)
	}

	var progs []ssmp.Program
	switch *wl {
	case "sync":
		progs = ssmp.SyncModel(*procs, *episodes, p, layout, kit, *seed)
	case "queue":
		progs, _ = ssmp.WorkQueue(*procs, *tasks, *spawn, p, layout, kit, *seed)
	default:
		log.Fatalf("unknown workload %q", *wl)
	}

	m := ssmp.NewMachine(cfg)
	if *msgTrace {
		m.TraceMessages(os.Stderr)
	}
	res, err := m.Run(progs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "run failed: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("machine:        %d-node %v (%v), %s workload, %s sync\n",
		*procs, cfg.Protocol, cfg.Consistency, *wl, kit.Name)
	fmt.Printf("completion:     %d cycles\n", res.Cycles)
	fmt.Printf("messages:       %d\n", res.Messages)
	fmt.Printf("net latency:    %.2f cycles mean, %.2f queueing\n", res.MeanNetLatency, res.MeanNetQueueing)
	fmt.Printf("by kind:        %s\n", m.Messages())
}
