// Command ssmpsim runs one simulation of the paper's machine (or the WBI
// baseline) under either workload model and prints the run's metrics.
//
// Usage:
//
//	ssmpsim -procs 16 -proto cbl -consistency bc -workload queue -grain 128
//
// The stencil workload plus -workers drives the parallel (PDES) engine,
// which is lane-safe on the contended omega and mesh networks (only the
// bus degrades to the serial engine):
//
//	ssmpsim -procs 512 -workload stencil -workers 8 -cpuprofile cpu.pb.gz
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"ssmp"
	"ssmp/internal/mem"
	"ssmp/internal/network"
)

func main() {
	procs := flag.Int("procs", 16, "processor count (power of two)")
	proto := flag.String("proto", "cbl", "machine protocol: cbl | wbi")
	cons := flag.String("consistency", "bc", "memory model (cbl machine): bc | sc")
	wl := flag.String("workload", "queue", "workload model: sync | queue | stencil")
	grain := flag.Int("grain", ssmp.MediumGrain, "references per task (granularity)")
	episodes := flag.Int("episodes", 8, "sync model: episodes per processor")
	tasks := flag.Int("tasks", 128, "queue model: initial tasks")
	spawn := flag.Float64("spawn", 0.2, "queue model: task spawn probability")
	backoff := flag.Bool("backoff", false, "wbi: exponential backoff on locks")
	seed := flag.Uint64("seed", 42, "workload seed")
	ideal := flag.Bool("ideal-net", false, "contention-free network (ablation)")
	danceHall := flag.Bool("dance-hall", false, "all memory across the network (Table 2 organization)")
	directHandoff := flag.Bool("direct-handoff", false, "cbl: pass write-lock grants straight down the queue")
	writeUpdate := flag.Bool("write-update", false, "cbl: sender-initiated write-update coherence (ablation)")
	dirPtrs := flag.Int("dir-pointers", 0, "wbi: limited directory pointer count (0 = full map)")
	topology := flag.String("topology", "omega", "interconnect: omega | mesh | bus")
	msgTrace := flag.Bool("msgtrace", false, "dump every message to stderr")
	workers := flag.Int("workers", 0, "parallel (PDES) engine workers; 0 = serial engine")
	jitter := flag.Uint64("jitter", 0, "schedule-jitter seed (0 = canonical schedule)")
	cells := flag.Int("cells", 64, "stencil: cells per processor strip")
	iters := flag.Int("iters", 20, "stencil: Jacobi iterations")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	cfg := ssmp.DefaultConfig(*procs)
	switch *proto {
	case "cbl":
		cfg.Protocol = ssmp.ProtoCBL
	case "wbi":
		cfg.Protocol = ssmp.ProtoWBI
	default:
		log.Fatalf("unknown protocol %q", *proto)
	}
	switch *cons {
	case "bc":
		cfg.Consistency = ssmp.BC
	case "sc":
		cfg.Consistency = ssmp.SC
	default:
		log.Fatalf("unknown consistency %q", *cons)
	}
	cfg.IdealNetwork = *ideal
	cfg.DanceHall = *danceHall
	cfg.DirectHandoff = *directHandoff
	cfg.WriteUpdate = *writeUpdate
	cfg.DirMaxPointers = *dirPtrs
	cfg.SimWorkers = *workers
	cfg.Jitter = *jitter
	switch *topology {
	case "omega":
	case "mesh":
		cfg.Topology = network.TopMesh
	case "bus":
		cfg.Topology = network.TopBus
	default:
		log.Fatalf("unknown topology %q", *topology)
	}
	if *workers > 0 && cfg.Topology == network.TopBus {
		fmt.Fprintln(os.Stderr, "note: the bus is a single shared medium; lane mode degrades to the serial engine")
	}

	var progs []ssmp.Program
	var stencilStrips [][]float64
	var stencilSpec ssmp.StencilSpec
	kitName := "none"
	switch *wl {
	case "sync", "queue":
		p := ssmp.DefaultWorkloadParams()
		p.Grain = *grain
		layout := ssmp.NewLayout(cfg, p)
		var kit ssmp.SyncKit
		if cfg.Protocol == ssmp.ProtoCBL {
			kit = ssmp.CBLKit(layout, *procs)
		} else {
			kit = ssmp.WBIKit(layout, *procs, *backoff)
		}
		kitName = kit.Name
		if *wl == "sync" {
			progs = ssmp.SyncModel(*procs, *episodes, p, layout, kit, *seed)
		} else {
			progs, _ = ssmp.WorkQueue(*procs, *tasks, *spawn, p, layout, kit, *seed)
		}
	case "stencil":
		if cfg.Protocol != ssmp.ProtoCBL {
			log.Fatalf("the stencil workload is CBL-only")
		}
		stencilSpec = ssmp.StencilSpec{Procs: *procs, CellsPer: *cells, Iters: *iters}
		kitName = "pairwise-HW-barrier"
		progs, stencilStrips = stencilSpec.Programs(
			mem.Geometry{BlockWords: cfg.BlockWords, Nodes: cfg.Nodes})
	default:
		log.Fatalf("unknown workload %q", *wl)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}

	m := ssmp.NewMachine(cfg)
	if *msgTrace {
		m.TraceMessages(os.Stderr)
	}
	res, err := m.Run(progs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "run failed: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("machine:        %d-node %v (%v), %s workload, %s sync\n",
		*procs, cfg.Protocol, cfg.Consistency, *wl, kitName)
	if m.Lanes() > 0 {
		fmt.Printf("engine:         parallel, %d lanes, %d workers\n", m.Lanes(), *workers)
	} else if reason := m.LaneFallback(); reason != "" {
		fmt.Printf("engine:         serial (lane fallback: %s)\n", reason)
	} else {
		fmt.Printf("engine:         serial\n")
	}
	fmt.Printf("completion:     %d cycles\n", res.Cycles)
	fmt.Printf("messages:       %d\n", res.Messages)
	fmt.Printf("net latency:    %.2f cycles mean, %.2f queueing\n", res.MeanNetLatency, res.MeanNetQueueing)
	fmt.Printf("by kind:        %s\n", m.Messages())
	if *wl == "stencil" {
		ref := stencilSpec.Reference()
		for pid, strip := range stencilStrips {
			for i, v := range strip {
				if v != ref[pid*stencilSpec.CellsPer+i] {
					fmt.Fprintf(os.Stderr, "stencil cell (%d,%d) diverged from the sequential reference\n", pid, i)
					os.Exit(1)
				}
			}
		}
		fmt.Printf("stencil:        %d cells x %d iterations, bit-exact vs sequential reference\n",
			*procs**cells, *iters)
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatalf("memprofile: %v", err)
		}
	}
}
