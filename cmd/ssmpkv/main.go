// Command ssmpkv runs the in-sim key-value service: a sharded store whose
// server loops execute on the simulated multiprocessor, serving a seeded
// synthetic client population (Zipfian keys, bursty arrivals, get/put/CAS).
//
// Usage:
//
//	ssmpkv run   [-procs 16] [-lock cbl] [-keys 1024] [-shards 16] [-ops 256] ...
//	ssmpkv sweep [-procs 4,8,16,32,64] [-locks cbl,mcs] [-workers N] [-csv] [-json]
//	ssmpkv soak  [-seeds 16] [-procs 4]
//
// run executes one population and prints the latency/throughput summary;
// sweep crosses processor counts with lock managers and prints the
// p50/p99/throughput curves (use -workers to push the sweep to hundreds or
// 1024 nodes on the PDES engine, which is lane-safe on the contended
// network); soak crosses a corpus of
// client populations with fault seeds on a misbehaving interconnect and
// checks the sequential-consistency oracle on every run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ssmp/internal/kvapp"
	"ssmp/internal/litmus"
	"ssmp/internal/network"
	"ssmp/internal/sim"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "soak":
		err = cmdSoak(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmpkv:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ssmpkv run   [-procs 16] [-lock cbl] [-keys 1024] [-shards 16] [-ops 256] [-json] ...
  ssmpkv sweep [-procs 4,8,16,32,64] [-locks cbl,mcs] [-workers N] [-csv] [-json]
  ssmpkv soak  [-seeds 16] [-procs 4] [-drop 0.03] [-dup 0.03] [-delay 0.1]`)
	os.Exit(2)
}

// specFlags registers the client-population knobs shared by run and sweep.
// The returned resolve func must run after fs.Parse to finish the spec.
func specFlags(fs *flag.FlagSet, def kvapp.Spec) (*kvapp.Spec, func()) {
	s := &kvapp.Spec{}
	fs.IntVar(&s.Keys, "keys", def.Keys, "key-space size")
	fs.IntVar(&s.Shards, "shards", def.Shards, "shard locks keys hash onto")
	fs.IntVar(&s.Sessions, "sessions", def.Sessions, "logical clients per processor")
	fs.IntVar(&s.Ops, "ops", def.Ops, "requests per processor")
	fs.Float64Var(&s.GetFrac, "get", def.GetFrac, "get fraction of the op mix")
	fs.Float64Var(&s.PutFrac, "put", def.PutFrac, "put fraction (remainder CAS)")
	fs.Float64Var(&s.Theta, "theta", def.Theta, "zipfian popularity skew (0 = uniform)")
	gap := fs.Int64("gap", int64(def.Arrival.MeanGap), "mean in-burst inter-arrival gap (cycles)")
	off := fs.Int64("off", int64(def.Arrival.MeanOff), "mean inter-burst silence (cycles)")
	fs.IntVar(&s.Arrival.MeanBurst, "burst", def.Arrival.MeanBurst, "mean arrivals per burst")
	closed := fs.Bool("closed", !def.OpenLoop, "closed-loop clients (default open-loop)")
	fs.IntVar(&s.SubCap, "subcap", def.SubCap, "READ-UPDATE subscription capacity (0 = fast path off)")
	fs.IntVar(&s.SubscribeAfter, "subafter", def.SubscribeAfter, "accesses before a key is subscribed")
	fs.Uint64Var(&s.Seed, "seed", def.Seed, "workload seed")
	return s, func() {
		s.Arrival.MeanGap = sim.Time(*gap)
		s.Arrival.MeanOff = sim.Time(*off)
		s.OpenLoop = !*closed
	}
}

func runOptFlags(fs *flag.FlagSet) *kvapp.RunOptions {
	o := &kvapp.RunOptions{}
	fs.Uint64Var(&o.Jitter, "jitter", 0, "schedule jitter seed")
	fs.IntVar(&o.SimWorkers, "workers", 0, "PDES engine workers (lane-safe on the contended network)")
	fs.BoolVar(&o.IdealNetwork, "ideal", false, "ideal (contention-free) network (ablation)")
	return o
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	procs := fs.Int("procs", 16, "machine size (a power of two)")
	lock := fs.String("lock", "cbl", "shard lock manager (cbl, mcs, tas, ...)")
	spec, resolve := specFlags(fs, kvapp.DefaultSpec(16))
	opts := runOptFlags(fs)
	asJSON := fs.Bool("json", false, "emit the full result as JSON")
	fs.Parse(args)
	resolve()
	spec.Procs, spec.Lock = *procs, *lock

	res, err := kvapp.Run(context.Background(), *spec, *opts)
	if err != nil {
		return err
	}
	if err := res.Check(); err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Print(res.Summary())
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	procsFlag := fs.String("procs", "4,8,16,32,64", "comma-separated processor counts (powers of two)")
	locksFlag := fs.String("locks", "cbl,mcs", "comma-separated lock managers")
	spec, resolve := specFlags(fs, kvapp.DefaultSpec(16))
	opts := runOptFlags(fs)
	asCSV := fs.Bool("csv", false, "emit CSV")
	asJSON := fs.Bool("json", false, "emit JSON points")
	fs.Parse(args)
	resolve()

	procs, err := parseProcs(*procsFlag)
	if err != nil {
		return err
	}
	type point struct {
		Lock       string  `json:"lock"`
		Procs      int     `json:"procs"`
		Cycles     uint64  `json:"cycles"`
		P50        uint64  `json:"p50_cycles"`
		P99        uint64  `json:"p99_cycles"`
		Mean       float64 `json:"mean_cycles"`
		Throughput float64 `json:"throughput_ops_per_kcycle"`
		FastReads  uint64  `json:"fast_reads"`
		RMRRemote  uint64  `json:"rmr_remote"`
	}
	var pts []point
	for _, lock := range strings.Split(*locksFlag, ",") {
		for _, n := range procs {
			s := *spec
			s.Procs, s.Lock = n, strings.TrimSpace(lock)
			res, err := kvapp.Run(context.Background(), s, *opts)
			if err != nil {
				return err
			}
			if err := res.Check(); err != nil {
				return err
			}
			pts = append(pts, point{
				Lock: s.Lock, Procs: n, Cycles: uint64(res.Sim.Cycles),
				P50: res.P50(), P99: res.P99(), Mean: res.Mean(),
				Throughput: res.ThroughputOpsPerKCycle(),
				FastReads:  res.FastReads, RMRRemote: res.Sim.RMR.Remote,
			})
		}
	}
	switch {
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(pts)
	case *asCSV:
		fmt.Println("lock,procs,cycles,p50_cycles,p99_cycles,mean_cycles,throughput_ops_per_kcycle,fast_reads,rmr_remote")
		for _, pt := range pts {
			fmt.Printf("%s,%d,%d,%d,%d,%.1f,%.3f,%d,%d\n",
				pt.Lock, pt.Procs, pt.Cycles, pt.P50, pt.P99, pt.Mean, pt.Throughput, pt.FastReads, pt.RMRRemote)
		}
	default:
		fmt.Printf("%-8s %6s %10s %8s %8s %10s %10s\n",
			"lock", "procs", "cycles", "p50", "p99", "ops/kcyc", "fastreads")
		for _, pt := range pts {
			fmt.Printf("%-8s %6d %10d %8d %8d %10.3f %10d\n",
				pt.Lock, pt.Procs, pt.Cycles, pt.P50, pt.P99, pt.Throughput, pt.FastReads)
		}
	}
	return nil
}

func cmdSoak(args []string) error {
	fs := flag.NewFlagSet("soak", flag.ExitOnError)
	seeds := fs.Int("seeds", 16, "fault seeds per population")
	procs := fs.Int("procs", 4, "machine size (a power of two)")
	drop := fs.Float64("drop", 0.03, "per-message drop probability")
	dup := fs.Float64("dup", 0.03, "per-message duplicate probability")
	delay := fs.Float64("delay", 0.1, "per-message extra-delay probability")
	fs.Parse(args)

	rates := network.FaultRates{Drop: *drop, Dup: *dup, Delay: *delay}
	corpus := soakCorpus(*procs)
	seedList := litmus.ChaosSeeds(*seeds)
	runs, faulted := 0, 0
	for ci, spec := range corpus {
		for _, seed := range seedList {
			res, err := kvapp.Run(context.Background(), spec, kvapp.RunOptions{
				Jitter: seed,
				Faults: network.FaultConfig{Seed: seed, Rates: rates},
			})
			if err != nil {
				return fmt.Errorf("population %d seed %d: %w", ci, seed, err)
			}
			if err := res.Check(); err != nil {
				return fmt.Errorf("population %d seed %d: %w", ci, seed, err)
			}
			runs++
			if res.Sim.Faults.Any() {
				faulted++
			}
		}
		fmt.Printf("population %d (%s, get=%.2f open=%v subcap=%d): %d seeds ok\n",
			ci, spec.Lock, spec.GetFrac, spec.OpenLoop, spec.SubCap, len(seedList))
	}
	if faulted == 0 {
		return fmt.Errorf("soak injected no faults over %d runs", runs)
	}
	fmt.Printf("soak: %d runs, %d with injected faults, oracle passed everywhere\n", runs, faulted)
	return nil
}

// soakCorpus mirrors the kvapp chaos-test corpus: both protocols, open and
// closed loop, read-mostly and write-heavy mixes, fast path on and off.
func soakCorpus(procs int) []kvapp.Spec {
	base := func(lock string) kvapp.Spec {
		s := kvapp.DefaultSpec(procs)
		s.Lock = lock
		s.Keys = 64
		s.Shards = 4
		s.Ops = 48
		s.SubCap = 8
		return s
	}
	writeHeavy := base("cbl")
	writeHeavy.GetFrac, writeHeavy.PutFrac = 0.2, 0.5
	closed := base("cbl")
	closed.OpenLoop = false
	noFast := base("cbl")
	noFast.SubCap = 0
	mcsClosed := base("mcs")
	mcsClosed.OpenLoop = false
	return []kvapp.Spec{base("cbl"), writeHeavy, closed, noFast, base("mcs"), mcsClosed}
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad processor count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
