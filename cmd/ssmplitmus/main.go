// Command ssmplitmus runs litmus tests against the machine's buffered
// consistency model: each test is enumerated axiomatically
// (internal/bccheck) and swept through the operational simulator under
// schedule jitter, and every observed outcome must be axiomatically
// allowed.
//
// Usage:
//
//	ssmplitmus list
//	ssmplitmus run [-seeds 64] [-v] [name ...]
//	ssmplitmus run -faults [-drop 0.03] [-dup 0.03] [-delay 0.1] [-delay-max 16] [name ...]
//	ssmplitmus show name
//	ssmplitmus explain [-seeds 64] name outcome
//	ssmplitmus fuzz [-budget 30s | -n 100] [-rng 1] [-seeds 16]
//	ssmplitmus farm [-budget 2m | -n 4000] [-rng 1] [-out dir] [-report]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ssmp/internal/bccheck"
	"ssmp/internal/litmus"
	"ssmp/internal/network"
	"ssmp/internal/sim"
)

// tuningFlags registers the exploration-engine knobs shared by run,
// explain, and fuzz.
func tuningFlags(fs *flag.FlagSet) func() (bccheck.Tuning, error) {
	por := fs.String("por", "on", "partial-order reduction: on or off")
	sym := fs.String("sym", "on", "symmetry reduction: on or off")
	workers := fs.Int("workers", 0, "exploration workers (0 = GOMAXPROCS)")
	return func() (bccheck.Tuning, error) {
		switch *por {
		case "on", "off":
		default:
			return bccheck.Tuning{}, fmt.Errorf("-por must be on or off, got %q", *por)
		}
		switch *sym {
		case "on", "off":
		default:
			return bccheck.Tuning{}, fmt.Errorf("-sym must be on or off, got %q", *sym)
		}
		return bccheck.Tuning{DisablePOR: *por == "off", DisableSymmetry: *sym == "off", Workers: *workers}, nil
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "run":
		err = cmdRun(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "explain":
		err = cmdExplain(os.Args[2:])
	case "fuzz":
		err = cmdFuzz(os.Args[2:])
	case "farm":
		err = cmdFarm(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "ssmplitmus: unknown subcommand %q\n", os.Args[1])
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ssmplitmus: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ssmplitmus list                              list the embedded corpus
  ssmplitmus run [-seeds N] [-v] [-por on|off] [-workers N] [name ...]
                                               cross-validate tests (default: all)
  ssmplitmus run -faults [-drop P] [-dup P] [-delay P] [-delay-max N] [name ...]
                                               chaos sweep: same check under fault injection
  ssmplitmus show name                         print a corpus test's JSON
  ssmplitmus explain [-seeds N] name outcome   show the execution graph of a run producing outcome
  ssmplitmus fuzz [-budget D | -n N] [-rng S] [-seeds N] [-por on|off] [-sym on|off] [-workers N]
                                               fuzz random programs against the model
  ssmplitmus farm [-budget D | -n N] [-rng S] [-seeds N] [-farm-workers N] [-out DIR] [-report]
                                               grow a deduplicated axiom-tagged corpus`)
	os.Exit(2)
}

func cmdList() error {
	tests, err := litmus.Corpus()
	if err != nil {
		return err
	}
	for _, t := range tests {
		fmt.Printf("%-14s %d procs  %s\n", t.Name, len(t.Procs), t.Doc)
	}
	gen, err := litmus.Generated()
	if err != nil {
		return err
	}
	if len(gen) > 0 {
		fmt.Printf("plus %d farm-generated tests (ssmplitmus show g... to inspect)\n", len(gen))
	}
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	seeds := fs.Int("seeds", 64, "jitter seeds to sweep per test")
	verbose := fs.Bool("v", false, "print each test's allowed and observed outcomes")
	defRates := litmus.DefaultChaosRates()
	faults := fs.Bool("faults", false, "inject interconnect faults (chaos sweep); seeds double as fault seeds")
	drop := fs.Float64("drop", defRates.Drop, "per-message drop probability (with -faults)")
	dup := fs.Float64("dup", defRates.Dup, "per-message duplicate probability (with -faults)")
	delay := fs.Float64("delay", defRates.Delay, "per-message delay probability (with -faults)")
	delayMax := fs.Int("delay-max", 0, "max injected delay in cycles (0 = default, with -faults)")
	tuning := tuningFlags(fs)
	_ = fs.Parse(args)
	tune, err := tuning()
	if err != nil {
		return err
	}
	chaos := litmus.ChaosConfig{
		Rates:    network.FaultRates{Drop: *drop, Dup: *dup, Delay: *delay},
		DelayMax: sim.Time(*delayMax),
	}

	var tests []*litmus.Test
	if fs.NArg() == 0 {
		var err error
		if tests, err = litmus.Corpus(); err != nil {
			return err
		}
	} else {
		for _, name := range fs.Args() {
			t, err := litmus.Load(name)
			if err != nil {
				return err
			}
			tests = append(tests, t)
		}
	}

	failures := 0
	for _, t := range tests {
		var rep *litmus.Report
		if *faults {
			rep, err = litmus.RunChaos(t, litmus.ChaosSeeds(*seeds), chaos)
		} else {
			rep, err = litmus.RunTuned(t, litmus.Seeds(*seeds), tune)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", t.Name, err)
		}
		fmt.Println(rep.Summary())
		if *verbose {
			for _, a := range rep.Allowed {
				mark := " "
				if _, ok := rep.Observed[a]; ok {
					mark = "*"
				}
				fmt.Printf("  %s allowed %q\n", mark, a)
			}
		}
		if !rep.Ok() {
			failures++
			for _, v := range rep.Violations {
				msg, err := litmus.ExplainViolation(t, rep, v)
				if err != nil {
					return err
				}
				fmt.Print(msg)
			}
			for _, f := range rep.AssertFailures {
				fmt.Printf("  assert: %s\n", f)
			}
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d of %d tests failed", failures, len(tests))
	}
	return nil
}

func cmdShow(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("show takes exactly one test name")
	}
	t, err := litmus.Load(args[0])
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

func cmdExplain(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ExitOnError)
	seeds := fs.Int("seeds", 64, "jitter seeds to sweep")
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("explain takes a test name and an outcome string")
	}
	t, err := litmus.Load(fs.Arg(0))
	if err != nil {
		return err
	}
	rep, err := litmus.Run(t, litmus.Seeds(*seeds))
	if err != nil {
		return err
	}
	msg, err := litmus.ExplainViolation(t, rep, fs.Arg(1))
	if err != nil {
		return fmt.Errorf("%w\nobserved outcomes:\n%s", err, observedList(rep))
	}
	fmt.Print(msg)
	return nil
}

func observedList(rep *litmus.Report) string {
	out := ""
	for o, seeds := range rep.Observed {
		out += fmt.Sprintf("  %q (%d seeds)\n", o, len(seeds))
	}
	return out
}

func cmdFuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ExitOnError)
	budget := fs.Duration("budget", 0, "wall-clock budget (overrides -n)")
	count := fs.Int("n", 100, "candidate count when no budget is set")
	rng := fs.Uint64("rng", 1, "generator seed")
	seeds := fs.Int("seeds", 16, "jitter seeds per candidate")
	tuning := tuningFlags(fs)
	_ = fs.Parse(args)
	tune, err := tuning()
	if err != nil {
		return err
	}

	// SIGINT/SIGTERM stop the run cleanly between candidates; stats for
	// the work done so far still print.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	st, err := litmus.Fuzz(ctx, litmus.FuzzOptions{
		Rng:    *rng,
		Seeds:  litmus.Seeds(*seeds),
		Budget: *budget,
		Count:  *count,
		Tuning: tune,
		Log: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("fuzz: %d candidates tested, %d skipped at the state limit, %s elapsed (%s)\n",
		st.Tested, st.Skipped, st.Elapsed.Round(time.Millisecond), st.Rates())
	if st.Failure == nil {
		return nil
	}
	f := st.Failure
	fmt.Println("\ncross-validation VIOLATION — simulator escaped the axiomatic allowed set")
	fmt.Println("minimized reproducer:")
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(f.Shrunk); err != nil {
		return err
	}
	for _, v := range f.ShrunkReport.Violations {
		msg, err := litmus.ExplainViolation(f.Shrunk, f.ShrunkReport, v)
		if err != nil {
			return err
		}
		fmt.Print(msg)
	}
	return fmt.Errorf("fuzzing found a violation")
}

func cmdFarm(args []string) error {
	fs := flag.NewFlagSet("farm", flag.ExitOnError)
	budget := fs.Duration("budget", 0, "wall-clock budget (overrides -n)")
	count := fs.Int("n", 4000, "candidate count when no budget is set")
	rng := fs.Uint64("rng", 1, "campaign seed")
	seeds := fs.Int("seeds", 16, "jitter seeds per candidate")
	farmWorkers := fs.Int("farm-workers", 8, "concurrent candidate pipelines")
	out := fs.String("out", "", "directory to (re)write the generated corpus into")
	report := fs.Bool("report", false, "print the axiom-coverage report over hand-written + accepted tests")
	tuning := tuningFlags(fs)
	_ = fs.Parse(args)
	tune, err := tuning()
	if err != nil {
		return err
	}

	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()

	st, tests, err := litmus.Farm(ctx, litmus.FarmOptions{
		Rng:     *rng,
		Count:   *count,
		Budget:  *budget,
		Workers: *farmWorkers,
		Seeds:   litmus.Seeds(*seeds),
		Tuning:  tune,
		Log: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	if st.Failure != nil {
		f := st.Failure
		fmt.Println("\ncross-validation VIOLATION — simulator escaped the axiomatic allowed set")
		fmt.Println("minimized reproducer:")
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(f.Shrunk); err != nil {
			return err
		}
		return fmt.Errorf("farm found a violation")
	}
	fmt.Println(st.Summary())
	if *report {
		if err := coverageReport(os.Stdout, tests); err != nil {
			return err
		}
	}
	if *out != "" {
		if err := litmus.WriteGeneratedCorpus(*out, tests); err != nil {
			return err
		}
		fmt.Printf("wrote %d tests to %s\n", len(tests), *out)
	}
	return nil
}

// coverageReport prints the per-axiom coverage table over the hand-written
// corpus (vectors recomputed) plus the given generated tests (stored tags).
func coverageReport(w io.Writer, gen []*litmus.Test) error {
	corpus, err := litmus.Corpus()
	if err != nil {
		return err
	}
	counts := map[string]int{}
	for _, t := range corpus {
		cov, err := litmus.CoverageVector(t)
		if err != nil {
			return err
		}
		for _, ax := range cov {
			counts[ax]++
		}
	}
	for _, t := range gen {
		for _, ax := range t.Coverage {
			counts[ax]++
		}
	}
	fmt.Fprintf(w, "axiom coverage over %d hand-written + %d generated tests:\n", len(corpus), len(gen))
	missing := 0
	for _, ax := range litmus.Axioms {
		mark := "ok"
		if counts[ax] == 0 {
			mark = "MISSING"
			missing++
		}
		fmt.Fprintf(w, "  %-10s %4d tests  %s\n", ax, counts[ax], mark)
	}
	if missing > 0 {
		return fmt.Errorf("%d axiom families have no covering test", missing)
	}
	return nil
}
