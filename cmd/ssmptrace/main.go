// Command ssmptrace replays a memory-reference trace file on a simulated
// machine — the trace-driven evaluation path the paper names as future
// work (§6). See internal/trace for the format.
//
//	ssmptrace -file run.trace -procs 8 -proto cbl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ssmp"
	"ssmp/internal/trace"
)

func main() {
	file := flag.String("file", "", "trace file (defaults to stdin)")
	procs := flag.Int("procs", 8, "machine size (power of two)")
	proto := flag.String("proto", "cbl", "machine protocol: cbl | wbi")
	cons := flag.String("consistency", "bc", "memory model: bc | sc")
	gen := flag.Bool("gen", false, "emit a synthetic sync-model trace to stdout instead of replaying")
	capture := flag.String("capture", "", "run a workload (sync | queue) and emit its captured trace")
	events := flag.Int("events", 200, "with -gen: events per processor")
	seed := flag.Uint64("seed", 42, "with -gen: generator seed")
	flag.Parse()

	if *capture != "" {
		cfg := ssmp.DefaultConfig(*procs)
		if *proto == "wbi" {
			cfg.Protocol = ssmp.ProtoWBI
		}
		wp := ssmp.DefaultWorkloadParams()
		layout := ssmp.NewLayout(cfg, wp)
		var kit ssmp.SyncKit
		if cfg.Protocol == ssmp.ProtoCBL {
			kit = ssmp.CBLKit(layout, *procs)
		} else {
			kit = ssmp.WBIKit(layout, *procs, false)
		}
		var progs []ssmp.Program
		switch *capture {
		case "sync":
			progs = ssmp.SyncModel(*procs, 4, wp, layout, kit, *seed)
		case "queue":
			progs, _ = ssmp.WorkQueue(*procs, 32, 0.2, wp, layout, kit, *seed)
		default:
			log.Fatalf("unknown workload %q", *capture)
		}
		m := ssmp.NewMachine(cfg)
		b := trace.Capture(m)
		if _, err := m.Run(progs); err != nil {
			log.Fatal(err)
		}
		if err := b.Trace().Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *gen {
		p := trace.DefaultSynthParams(*procs)
		p.Events = *events
		p.Seed = *seed
		p.WBI = *proto == "wbi"
		tr, err := trace.Synthesize(p)
		if err != nil {
			log.Fatal(err)
		}
		if err := tr.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	in := os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	tr, err := trace.Parse(in)
	if err != nil {
		log.Fatal(err)
	}

	cfg := ssmp.DefaultConfig(*procs)
	if *proto == "wbi" {
		cfg.Protocol = ssmp.ProtoWBI
	}
	if *cons == "sc" {
		cfg.Consistency = ssmp.SC
	}
	progs, err := tr.Programs(*procs)
	if err != nil {
		log.Fatal(err)
	}
	m := ssmp.NewMachine(cfg)
	res, err := m.Run(progs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replayed %d processor traces on %d-node %v (%v)\n",
		len(tr.Procs), *procs, cfg.Protocol, cfg.Consistency)
	fmt.Printf("completion: %d cycles\n", res.Cycles)
	fmt.Printf("messages:   %d\n", res.Messages)
	fmt.Printf("by kind:    %s\n", m.Messages())
}
