// Command ssmpsync runs the synchronization-algorithm zoo: software locks
// and barriers built from the machine's Table-1 primitives, benchmarked
// against the paper's hardware CBL lock and barrier and scored in remote
// memory references per operation.
//
// Usage:
//
//	ssmpsync list
//	ssmpsync locks   [-procs 2,4,8,16,32] [-iters 8] [-algos mcs,tas] [-csv] [-json]
//	ssmpsync barriers [-procs 2,4,8,16,32] [-episodes 4] [-algos dissem] [-csv] [-json]
//	ssmpsync litmus  [-seeds 16] [-procs 4] [-faults] [-drop 0.03] [-dup 0.03] [-delay 0.1]
//
// locks and barriers print the contention sweep (acquisitions per 1000
// cycles and RMRs per acquisition / episode); litmus sweeps the
// mutual-exclusion and barrier-separation witnesses across schedule-jitter
// seeds, optionally over a faulty interconnect.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ssmp/internal/litmus"
	"ssmp/internal/network"
	"ssmp/internal/synczoo"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList()
	case "locks":
		err = cmdLocks(os.Args[2:])
	case "barriers":
		err = cmdBarriers(os.Args[2:])
	case "litmus":
		err = cmdLitmus(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssmpsync:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ssmpsync list
  ssmpsync locks   [-procs 2,4,8,16,32] [-iters 8] [-algos keys] [-csv] [-json]
  ssmpsync barriers [-procs 2,4,8,16,32] [-episodes 4] [-algos keys] [-csv] [-json]
  ssmpsync litmus  [-seeds 16] [-procs 4] [-faults] [-drop 0.03] [-dup 0.03] [-delay 0.1]`)
	os.Exit(2)
}

func cmdList() error {
	fmt.Println("lock algorithms:")
	for _, a := range synczoo.LockAlgos() {
		fmt.Printf("  %-12s %s\n", a.Key, a.Proto)
	}
	fmt.Println("barrier algorithms:")
	for _, a := range synczoo.BarrierAlgos() {
		fmt.Printf("  %-12s %s\n", a.Key, a.Proto)
	}
	return nil
}

func parseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad processor count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func selectKeys(all, requested string) ([]string, error) {
	if requested == "" {
		return strings.Split(all, ","), nil
	}
	return strings.Split(requested, ","), nil
}

func cmdLocks(args []string) error {
	fs := flag.NewFlagSet("locks", flag.ExitOnError)
	procsFlag := fs.String("procs", "2,4,8,16,32", "comma-separated processor counts (powers of two)")
	iters := fs.Int("iters", 8, "acquisitions per processor")
	algosFlag := fs.String("algos", "", "comma-separated algorithm keys (default: all)")
	asCSV := fs.Bool("csv", false, "emit CSV")
	asJSON := fs.Bool("json", false, "emit JSON points")
	fs.Parse(args)
	procs, err := parseProcs(*procsFlag)
	if err != nil {
		return err
	}
	var allKeys []string
	for _, a := range synczoo.LockAlgos() {
		allKeys = append(allKeys, a.Key)
	}
	keys, err := selectKeys(strings.Join(allKeys, ","), *algosFlag)
	if err != nil {
		return err
	}

	var pts []synczoo.LockPoint
	for _, key := range keys {
		algo, err := synczoo.LockAlgoByKey(strings.TrimSpace(key))
		if err != nil {
			return err
		}
		for _, n := range procs {
			pt, err := synczoo.RunLockBench(algo, synczoo.LockBenchOptions{
				Procs: n, Iters: *iters, Crit: 16, Delay: 32,
			})
			if err != nil {
				return err
			}
			if !pt.Verified() {
				return fmt.Errorf("%s p=%d violated mutual exclusion (final %d, want %d)",
					algo.Key, n, pt.Final, pt.Want)
			}
			pts = append(pts, pt)
		}
	}
	switch {
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(pts)
	case *asCSV:
		fmt.Println("algo,procs,iters,cycles,acquisitions,rmr_local,rmr_remote,rmr_writebacks,rmr_per_acq,acq_per_kcycle")
		for _, pt := range pts {
			fmt.Printf("%s,%d,%d,%d,%d,%d,%d,%d,%.3f,%.3f\n",
				pt.Algo, pt.Procs, pt.Iters, pt.Cycles, pt.Acquisitions,
				pt.RMR.Local, pt.RMR.Remote, pt.RMR.Writebacks, pt.RMRPerAcq(), pt.AcqPerKCycle())
		}
	default:
		fmt.Printf("%-12s %6s %10s %12s %10s\n", "algo", "procs", "cycles", "rmr/acq", "acq/kcyc")
		for _, pt := range pts {
			fmt.Printf("%-12s %6d %10d %12.2f %10.2f\n",
				pt.Algo, pt.Procs, pt.Cycles, pt.RMRPerAcq(), pt.AcqPerKCycle())
		}
	}
	return nil
}

func cmdBarriers(args []string) error {
	fs := flag.NewFlagSet("barriers", flag.ExitOnError)
	procsFlag := fs.String("procs", "2,4,8,16,32", "comma-separated processor counts (powers of two)")
	episodes := fs.Int("episodes", 4, "barrier episodes")
	algosFlag := fs.String("algos", "", "comma-separated algorithm keys (default: all)")
	asCSV := fs.Bool("csv", false, "emit CSV")
	asJSON := fs.Bool("json", false, "emit JSON points")
	fs.Parse(args)
	procs, err := parseProcs(*procsFlag)
	if err != nil {
		return err
	}
	var allKeys []string
	for _, a := range synczoo.BarrierAlgos() {
		allKeys = append(allKeys, a.Key)
	}
	keys, err := selectKeys(strings.Join(allKeys, ","), *algosFlag)
	if err != nil {
		return err
	}

	var pts []synczoo.BarrierPoint
	for _, key := range keys {
		algo, err := synczoo.BarrierAlgoByKey(strings.TrimSpace(key))
		if err != nil {
			return err
		}
		for _, n := range procs {
			pt, err := synczoo.RunBarrierBench(algo, synczoo.BarrierBenchOptions{
				Procs: n, Episodes: *episodes, Work: 40,
			})
			if err != nil {
				return err
			}
			if !pt.Verified() {
				return fmt.Errorf("%s p=%d violated barrier separation", algo.Key, n)
			}
			pts = append(pts, pt)
		}
	}
	switch {
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(pts)
	case *asCSV:
		fmt.Println("algo,procs,episodes,cycles,rmr_local,rmr_remote,rmr_writebacks,rmr_per_episode")
		for _, pt := range pts {
			fmt.Printf("%s,%d,%d,%d,%d,%d,%d,%.3f\n",
				pt.Algo, pt.Procs, pt.Episodes, pt.Cycles,
				pt.RMR.Local, pt.RMR.Remote, pt.RMR.Writebacks, pt.RMRPerEpisode())
		}
	default:
		fmt.Printf("%-12s %6s %10s %14s\n", "algo", "procs", "cycles", "rmr/episode")
		for _, pt := range pts {
			fmt.Printf("%-12s %6d %10d %14.2f\n", pt.Algo, pt.Procs, pt.Cycles, pt.RMRPerEpisode())
		}
	}
	return nil
}

func cmdLitmus(args []string) error {
	fs := flag.NewFlagSet("litmus", flag.ExitOnError)
	seeds := fs.Int("seeds", 16, "jitter/fault seeds per algorithm")
	procs := fs.Int("procs", 4, "processor count (a power of two)")
	faults := fs.Bool("faults", false, "inject interconnect faults")
	drop := fs.Float64("drop", 0.03, "per-message drop probability (with -faults)")
	dup := fs.Float64("dup", 0.03, "per-message duplicate probability (with -faults)")
	delay := fs.Float64("delay", 0.1, "per-message extra-delay probability (with -faults)")
	fs.Parse(args)

	var rates network.FaultRates
	if *faults {
		rates = network.FaultRates{Drop: *drop, Dup: *dup, Delay: *delay}
	}
	seedList := litmus.ChaosSeeds(*seeds)
	fail := 0
	for _, algo := range synczoo.LockAlgos() {
		f, err := synczoo.SweepMutex(algo, *procs, 4, seedList, rates)
		status := "ok"
		if err != nil {
			status = err.Error()
			fail++
		}
		fmt.Printf("mutex      %-12s seeds=%d faults=%v: %s\n", algo.Key, len(seedList), f.Any(), status)
	}
	for _, algo := range synczoo.BarrierAlgos() {
		f, err := synczoo.SweepBarrier(algo, *procs, 3, seedList, rates)
		status := "ok"
		if err != nil {
			status = err.Error()
			fail++
		}
		fmt.Printf("separation %-12s seeds=%d faults=%v: %s\n", algo.Key, len(seedList), f.Any(), status)
	}
	if fail > 0 {
		return fmt.Errorf("%d algorithm(s) failed", fail)
	}
	return nil
}
