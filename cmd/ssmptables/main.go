// Command ssmptables regenerates the paper's analytical tables — Table 2
// (linear-solver traffic under read-update vs invalidation) and Table 3
// (synchronization scenario costs under WBI vs CBL) — and, with -sim,
// cross-checks them against the simulator.
package main

import (
	"flag"
	"fmt"
	"os"

	"ssmp/internal/analytic"
	"ssmp/internal/harness"
)

func main() {
	n := flag.Int("n", 16, "processor count")
	b := flag.Int("b", 4, "cache line size in words (Table 2)")
	sim := flag.Bool("sim", false, "also measure the scenarios on the simulator")
	iters := flag.Int("iters", 20, "solver iterations for -sim Table 2")
	flag.Parse()

	fmt.Println(analytic.FormatTable2(*n, *b, analytic.DefaultClassCosts()))
	fmt.Println(analytic.FormatTable3(analytic.DefaultSyncParams(*n)))

	if !*sim {
		fmt.Println("(run with -sim to cross-check against the simulator)")
		return
	}
	opt := harness.DefaultOptions()
	opt.Log = os.Stderr
	fmt.Println(harness.FormatTable2Sim(*n, *iters, opt.Table2Sim(*n, *iters)))
	fmt.Println(harness.FormatTable3Sim(*n, opt.Table3Sim(*n)))
	fmt.Println("Notes: simulated WBI costs differ from the paper's closed-form model in")
	fmt.Println("absolute terms (our baseline caches the lock line exclusively, so the")
	fmt.Println("serial case is cheap); the claims that reproduce are the asymptotics —")
	fmt.Println("CBL's O(n) parallel-lock traffic against WBI's superlinear growth, and")
	fmt.Println("the constant 2-message CBL barrier request.")
}
