// Quickstart: an 8-node CBL machine where every processor increments a
// lock-protected shared counter using the paper's hardware primitives —
// WRITE-LOCK brings the protected block into the lock cache, READ/WRITE hit
// it locally, and UNLOCK (a CP-Synch operation) publishes the data on the
// way out.
package main

import (
	"fmt"
	"log"

	"ssmp"
)

func main() {
	const (
		nodes   = 8
		perProc = 100
		counter = ssmp.Addr(100)
	)

	cfg := ssmp.DefaultConfig(nodes)
	m := ssmp.NewMachine(cfg)

	progs := make([]ssmp.Program, nodes)
	for i := range progs {
		progs[i] = func(p *ssmp.Proc) {
			for k := 0; k < perProc; k++ {
				p.WriteLock(counter)         // grant carries the block
				v := p.Read(counter)         // lock-cache hit
				p.Write(counter, v+1)        // dirty word travels home on unlock
				p.Unlock(counter)            // CP-Synch: flush, then release
				p.Think(ssmp.Time(10 + i%4)) // local work between sections
			}
		}
	}

	res, err := m.Run(progs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("machine:    %d-node %v, %v consistency\n", nodes, cfg.Protocol, cfg.Consistency)
	fmt.Printf("counter:    %d (want %d)\n", m.ReadMemory(counter), nodes*perProc)
	fmt.Printf("cycles:     %d\n", res.Cycles)
	fmt.Printf("messages:   %d\n", res.Messages)
	fmt.Printf("net latency: %.1f cycles mean (%.1f queueing)\n", res.MeanNetLatency, res.MeanNetQueueing)
	if m.ReadMemory(counter) != nodes*perProc {
		log.Fatal("increments lost: mutual exclusion broken")
	}
	fmt.Println("mutual exclusion verified: no increment lost")
}
