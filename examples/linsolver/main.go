// Linsolver: the paper's §4.1 motivating example. A diagonally dominant
// linear system Ax = b is solved by parallel Jacobi iteration on three
// machine configurations — the reader-initiated update scheme (READ-UPDATE
// subscriptions), and the write-back-invalidation baseline with the x
// vector colocated (inv-I) or one element per line (inv-II) — reproducing
// the traffic comparison of Table 2 with real data flowing through the
// simulated memory system.
package main

import (
	"flag"
	"fmt"
	"log"

	"ssmp"
	"ssmp/internal/core"
	"ssmp/internal/msg"
)

// scheme names one Table 2 machine configuration.
type scheme struct {
	name       string
	readUpdate bool
	colocate   bool
}

var schemes = []scheme{
	{"read-update", true, true},
	{"inv-I (colocated)", false, true},
	{"inv-II (separate)", false, false},
}

// run solves the system under one scheme. jitter seeds same-cycle
// tie-breaking (0 = canonical order) and simWorkers > 0 selects the
// parallel simulation engine.
func run(s scheme, procs, iters int, jitter uint64, simWorkers int) (*core.Machine, *ssmp.LinSolver, ssmp.Result, error) {
	cfg := ssmp.DefaultConfig(procs)
	if !s.readUpdate {
		cfg.Protocol = ssmp.ProtoWBI
	}
	cfg.Jitter = jitter
	cfg.SimWorkers = simWorkers
	m := core.NewMachine(cfg)
	ls := &ssmp.LinSolver{N: procs, Iters: iters, Colocate: s.colocate, ReadUpdate: s.readUpdate}
	res, err := m.Run(ls.Programs(m.Geometry()))
	return m, ls, res, err
}

func main() {
	procs := flag.Int("procs", 16, "processors / equations (power of two)")
	iters := flag.Int("iters", 30, "Jacobi iterations")
	flag.Parse()

	fmt.Printf("solving %dx%d system, %d iterations\n\n", *procs, *procs, *iters)
	fmt.Printf("%-20s %10s %10s %10s %10s %10s %12s\n",
		"scheme", "cycles", "C_B", "C_W", "C_I", "C_R", "residual")

	for _, s := range schemes {
		m, ls, res, err := run(s, *procs, *iters, 0, 0)
		if err != nil {
			log.Fatalf("%s: %v", s.name, err)
		}
		coll := m.Messages()
		fmt.Printf("%-20s %10d %10d %10d %10d %10d %12.2e\n",
			s.name, res.Cycles,
			coll.Class(msg.BlockXfer), coll.Class(msg.WordXfer),
			coll.Class(msg.Invalidation), coll.Class(msg.Control),
			ls.Verify(m))
	}

	fmt.Println("\nTable 2 shape check: read-update finishes far sooner. Its traffic is")
	fmt.Println("word-writes plus block propagations that pipeline down the subscriber")
	fmt.Println("chains (the paper's (n-1)||C_B), while its read phase is free — the")
	fmt.Println("invalidation schemes stall every reader re-fetching the x vector.")
}
