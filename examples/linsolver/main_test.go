package main

import (
	"math"
	"testing"

	"ssmp"
)

const (
	testProcs = 8
	testIters = 12
	// hostTol bounds the distance between the machine's solution and the
	// host reference. The machine runs *chaotic* Jacobi — the barrier
	// separates iterations, but within one iteration a slow reader may
	// observe a fast writer's fresh value — so its iterates track, and
	// converge at least as fast as, the synchronous host iteration
	// without being bit-identical to it.
	hostTol = 1e-3
)

// hostJacobi runs synchronous Jacobi on the host with the workload's
// coefficients (a_ii = n+1, a_ij = 1/(1+|i-j|), b_i = i+1), the
// reference the simulated solvers must agree with to within hostTol.
func hostJacobi(n, iters int) []float64 {
	a := func(i, j int) float64 {
		if i == j {
			return float64(n + 1)
		}
		d := i - j
		if d < 0 {
			d = -d
		}
		return 1.0 / float64(1+d)
	}
	x := make([]float64, n)
	for it := 0; it < iters; it++ {
		nx := make([]float64, n)
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				if j != i {
					sum += a(i, j) * x[j]
				}
			}
			nx[i] = (float64(i+1) - sum) / a(i, i)
		}
		x = nx
	}
	return x
}

// machineX reads the solved vector back out of simulated memory.
func machineX(m *ssmp.Machine, ls *ssmp.LinSolver) []float64 {
	ls.Verify(m) // binds the solver to the machine's geometry
	x := make([]float64, ls.N)
	for i := range x {
		x[i] = math.Float64frombits(uint64(m.ReadMemory(ls.XAddr(i))))
	}
	return x
}

func maxDiff(a, b []float64) float64 {
	worst := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestSchemesMatchHostReference: every Table 2 scheme solves the same
// system the host does — small residual, and elementwise agreement with
// the synchronous host iterates.
func TestSchemesMatchHostReference(t *testing.T) {
	want := hostJacobi(testProcs, testIters)
	for _, s := range schemes {
		m, ls, _, err := run(s, testProcs, testIters, 0, 0)
		if err != nil {
			t.Fatalf("%s: %v", s.name, err)
		}
		if r := ls.Verify(m); r > hostTol {
			t.Errorf("%s: residual %g, want < %g", s.name, r, hostTol)
		}
		if d := maxDiff(machineX(m, ls), want); d > hostTol {
			t.Errorf("%s: solution is %g from the host reference, want < %g", s.name, d, hostTol)
		}
	}
}

// TestJitterDeterminism: jitter permutes same-cycle event order, which
// may move cycle counts but never pushes the solution away from the
// reference; repeating a seed reproduces the run exactly.
func TestJitterDeterminism(t *testing.T) {
	want := hostJacobi(testProcs, testIters)
	var baseline ssmp.Result
	var baseX []float64
	for trial, jitter := range []uint64{5, 5, 99} {
		m, ls, res, err := run(schemes[0], testProcs, testIters, jitter, 0)
		if err != nil {
			t.Fatalf("jitter=%d: %v", jitter, err)
		}
		got := machineX(m, ls)
		if d := maxDiff(got, want); d > hostTol {
			t.Errorf("jitter=%d: solution is %g from the host reference, want < %g", jitter, d, hostTol)
		}
		switch trial {
		case 0:
			baseline, baseX = res, got
		case 1:
			if res.Cycles != baseline.Cycles || res.Messages != baseline.Messages {
				t.Errorf("same seed diverged: %d cycles/%d msgs vs %d cycles/%d msgs",
					res.Cycles, res.Messages, baseline.Cycles, baseline.Messages)
			}
			if maxDiff(got, baseX) != 0 {
				t.Errorf("same seed computed a different solution")
			}
		}
	}
}

// TestPDESWorkerEquality: under lane mode the run is bit-identical at
// every worker count — cycles, traffic, and the solution word-for-word.
// (The serial engine is a different scheduler; the reference is one lane
// worker.)
func TestPDESWorkerEquality(t *testing.T) {
	mRef, lsRef, rRef, err := run(schemes[0], testProcs, testIters, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	xRef := machineX(mRef, lsRef)
	if d := maxDiff(xRef, hostJacobi(testProcs, testIters)); d > hostTol {
		t.Errorf("lane mode solution is %g from the host reference, want < %g", d, hostTol)
	}
	for _, workers := range []int{2, 4} {
		m, ls, res, err := run(schemes[0], testProcs, testIters, 3, workers)
		if err != nil {
			t.Fatalf("SimWorkers=%d: %v", workers, err)
		}
		if res.Cycles != rRef.Cycles || res.Messages != rRef.Messages {
			t.Errorf("SimWorkers=%d: %d cycles/%d msgs, 1 worker %d cycles/%d msgs",
				workers, res.Cycles, res.Messages, rRef.Cycles, rRef.Messages)
		}
		x := machineX(m, ls)
		for i := range xRef {
			if x[i] != xRef[i] {
				t.Errorf("SimWorkers=%d: x[%d] = %v, 1 worker %v", workers, i, x[i], xRef[i])
			}
		}
	}
}
