// Litmus: the buffered-consistency model (§2) in four observations. A
// writer publishes x = 42 with WRITE-GLOBAL and completes it (FLUSH-BUFFER
// before a barrier); a reader that cached x beforehand then observes it
// through four different mechanisms:
//
//  1. plain READ            — stale: private reads never revalidate (weak!)
//  2. READ-GLOBAL           — fresh: bypasses the cache, reads memory
//  3. READ after READ-UPDATE — fresh: the subscription pushed the update
//  4. READ inside a lock     — fresh: the grant carried the current block
//
// The stale observation in case 1 is the model's deliberate weakness; the
// other three are the paper's mechanisms for getting consistency exactly
// where the software wants it.
package main

import (
	"fmt"
	"log"

	"ssmp"
)

const (
	nodes  = 4
	writer = 1
	reader = 0
	barA   = ssmp.Addr(4096)
)

// observe runs one writer/reader episode and returns what the reader saw.
func observe(mechanism string) ssmp.Word {
	cfg := ssmp.DefaultConfig(nodes)
	m := ssmp.NewMachine(cfg)
	x := ssmp.Addr(100) // plain data block
	lockBlk := ssmp.Addr(200)

	var seen ssmp.Word
	progs := make([]ssmp.Program, nodes)
	progs[reader] = func(p *ssmp.Proc) {
		switch mechanism {
		case "read-update":
			p.ReadUpdate(x) // subscribe before the write
		case "lock":
			// Cache the lock block's word through a first hold.
			p.WriteLock(lockBlk)
			p.Unlock(lockBlk)
		default:
			p.Read(x) // cache the stale block
		}
		p.Barrier(barA, 2)
		p.Barrier(barA+64, 2) // writer has flushed
		switch mechanism {
		case "plain-read":
			seen = p.Read(x)
		case "read-global":
			seen = p.ReadGlobal(x)
		case "read-update":
			seen = p.Read(x) // the propagation updated the line
		case "lock":
			p.WriteLock(lockBlk)
			seen = p.Read(lockBlk) // the grant carried the data
			p.Unlock(lockBlk)
		}
	}
	progs[writer] = func(p *ssmp.Proc) {
		p.Barrier(barA, 2)
		if mechanism == "lock" {
			p.WriteLock(lockBlk)
			p.Write(lockBlk, 42) // travels home with the unlock
			p.Unlock(lockBlk)
		} else {
			p.WriteGlobal(x, 42)
			p.FlushBuffer() // globally performed
		}
		p.Barrier(barA+64, 2)
	}
	if _, err := m.Run(progs); err != nil {
		log.Fatalf("%s: %v", mechanism, err)
	}
	return seen
}

func main() {
	fmt.Println("buffered consistency litmus: writer publishes x=42, then the reader looks")
	fmt.Println()
	fmt.Printf("%-34s %8s %s\n", "mechanism", "observed", "meaning")

	cases := []struct {
		name string
		want ssmp.Word
		note string
	}{
		{"plain-read", 0, "stale cached copy: reads are private (the model's weakness)"},
		{"read-global", 42, "READ-GLOBAL bypasses the cache"},
		{"read-update", 42, "the subscription pushed the new block"},
		{"lock", 42, "the lock grant carried the current data"},
	}
	for _, c := range cases {
		got := observe(c.name)
		fmt.Printf("%-34s %8d %s\n", c.name, got, c.note)
		if got != c.want {
			log.Fatalf("%s observed %d, want %d", c.name, got, c.want)
		}
	}
	fmt.Println()
	fmt.Println("one weak default, three explicit consistency mechanisms — the paper's")
	fmt.Println("point: the software picks where coherence is paid for (§2-§4).")
}
