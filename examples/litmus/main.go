// Litmus: the buffered-consistency model (§2) in four observations, run
// through the litmus engine. A writer publishes x = 42 (globally performed
// between two barriers); a reader that cached x beforehand then observes
// it through four different mechanisms:
//
//  1. plain READ             — stale: private reads never revalidate (weak!)
//  2. READ-GLOBAL            — fresh: bypasses the cache, reads memory
//  3. READ after READ-UPDATE — fresh: the subscription pushed the update
//  4. READ inside a lock     — fresh: the grant carried the current block
//
// Each observation is cross-validated: the axiomatic model
// (internal/bccheck) enumerates every outcome buffered consistency allows,
// the simulator is swept across jitter seeds, and the engine checks that
// what the machine did is exactly what the axioms permit. The stale
// observation in case 1 is the model's deliberate weakness; the other
// three are the paper's mechanisms for getting consistency exactly where
// the software wants it.
package main

import (
	"fmt"
	"log"
	"strings"

	"ssmp/internal/litmus"
)

// mechanism is one way for the reader to look at x after publication,
// expressed as a declarative litmus test.
type mechanism struct {
	name string
	want string // expected "seen=..." at the canonical seed-0 schedule
	note string
	test *litmus.Test
}

// writer is the publishing processor: the write happens strictly between
// the two barriers, so the reader's first look is always pre-write and its
// second always post-publication.
func writer(body ...litmus.Stmt) []litmus.Stmt {
	stmts := []litmus.Stmt{{Op: "barrier", Loc: "b1"}}
	stmts = append(stmts, body...)
	return append(stmts, litmus.Stmt{Op: "barrier", Loc: "b2"})
}

func publishGlobal() []litmus.Stmt {
	return writer(
		litmus.Stmt{Op: "write-global", Loc: "x", Val: 42},
		litmus.Stmt{Op: "flush"},
	)
}

func mechanisms() []mechanism {
	return []mechanism{
		{
			name: "plain-read",
			want: "seen=0",
			note: "stale cached copy: reads are private (the model's weakness)",
			test: &litmus.Test{
				Name: "example-plain-read",
				Procs: [][]litmus.Stmt{
					publishGlobal(),
					{
						{Op: "read", Loc: "x", Reg: "pre"},
						{Op: "barrier", Loc: "b1"},
						{Op: "barrier", Loc: "b2"},
						{Op: "read", Loc: "x", Reg: "seen"},
					},
				},
				MustAllow:  []string{"P1:pre=0 P1:seen=0"},
				MustForbid: []string{"P1:pre=0 P1:seen=42"},
			},
		},
		{
			name: "read-global",
			want: "seen=42",
			note: "READ-GLOBAL bypasses the cache",
			test: &litmus.Test{
				Name: "example-read-global",
				Procs: [][]litmus.Stmt{
					publishGlobal(),
					{
						{Op: "read", Loc: "x", Reg: "pre"},
						{Op: "barrier", Loc: "b1"},
						{Op: "barrier", Loc: "b2"},
						{Op: "read-global", Loc: "x", Reg: "seen"},
					},
				},
				MustAllow:  []string{"P1:pre=0 P1:seen=42"},
				MustForbid: []string{"P1:pre=0 P1:seen=0"},
			},
		},
		{
			name: "read-update",
			want: "seen=42",
			note: "the subscription pushed the new block",
			test: &litmus.Test{
				Name: "example-read-update",
				Procs: [][]litmus.Stmt{
					publishGlobal(),
					{
						{Op: "read-update", Loc: "x", Reg: "pre"},
						{Op: "barrier", Loc: "b1"},
						{Op: "barrier", Loc: "b2"},
						{Op: "read", Loc: "x", Reg: "seen"},
					},
				},
				// The propagation is asynchronous, so the axioms also admit
				// the not-yet-delivered read; the machine's timing delivers
				// it before the barrier release reaches the reader.
				MustAllow:  []string{"P1:pre=0 P1:seen=42", "P1:pre=0 P1:seen=0"},
				MustForbid: []string{"P1:pre=42 P1:seen=0"},
			},
		},
		{
			name: "lock",
			want: "seen=42",
			note: "the lock grant carried the current data",
			test: &litmus.Test{
				Name: "example-lock",
				Procs: [][]litmus.Stmt{
					writer(
						litmus.Stmt{Op: "write-lock", Loc: "l"},
						litmus.Stmt{Op: "write", Loc: "l", Val: 42},
						litmus.Stmt{Op: "unlock", Loc: "l"},
					),
					{
						// Cache the lock block through a first hold, so the
						// final value provably comes from the grant, not a miss.
						{Op: "write-lock", Loc: "l"},
						{Op: "unlock", Loc: "l"},
						{Op: "barrier", Loc: "b1"},
						{Op: "barrier", Loc: "b2"},
						{Op: "write-lock", Loc: "l"},
						{Op: "read", Loc: "l", Reg: "seen"},
						{Op: "unlock", Loc: "l"},
					},
				},
				MustAllow:  []string{"P1:seen=42"},
				MustForbid: []string{"P1:seen=0"},
			},
		},
	}
}

func main() {
	fmt.Println("buffered consistency litmus: writer publishes x=42, then the reader looks")
	fmt.Println()
	fmt.Printf("%-14s %-22s %-8s %s\n", "mechanism", "seed-0 outcome", "allowed", "meaning")

	for _, mech := range mechanisms() {
		rep, err := litmus.Run(mech.test, litmus.Seeds(16))
		if err != nil {
			log.Fatalf("%s: %v", mech.name, err)
		}
		if !rep.Ok() {
			log.Fatalf("%s: cross-validation failed:\n%s", mech.name, rep.Summary())
		}
		seen, err := mech.test.RunSim(0)
		if err != nil {
			log.Fatalf("%s: %v", mech.name, err)
		}
		fmt.Printf("%-14s %-22s %-8d %s\n", mech.name, seen, len(rep.Allowed), mech.note)
		if !strings.Contains(seen, mech.want) {
			log.Fatalf("%s observed %q, want %q", mech.name, seen, mech.want)
		}
	}

	fmt.Println()
	fmt.Println("one weak default, three explicit consistency mechanisms — the paper's")
	fmt.Println("point: the software picks where coherence is paid for (§2-§4). Every")
	fmt.Println("observation above was checked against the axiomatic model's allowed set.")
}
