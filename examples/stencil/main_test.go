package main

import (
	"math"
	"testing"
)

// TestStencilMatchesReference runs the parallel stencil on the simulated
// machine and checks it against the sequential reference: both execute the
// same arithmetic in the same per-cell order, so agreement must be exact.
func TestStencilMatchesReference(t *testing.T) {
	results, res, err := runParallel()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != nodes {
		t.Fatalf("got %d strips, want %d", len(results), nodes)
	}
	if worst := maxDeviation(results, reference()); worst != 0 {
		t.Fatalf("parallel result deviates from reference by %g (boundary exchange broken)", worst)
	}
	if res.Cycles == 0 || res.Messages == 0 {
		t.Fatalf("implausible run metrics: %+v", res)
	}
}

// TestStencilConverges checks the physics: diffusion with absorbing edges
// smooths and dissipates the field, so the hot spot's peak must shrink and
// no cell may exceed the initial maximum.
func TestStencilConverges(t *testing.T) {
	initMax := 0.0
	for i := 0; i < totalCell; i++ {
		if v := math.Abs(initial(i)); v > initMax {
			initMax = v
		}
	}
	final := reference()
	finalMax := 0.0
	for _, v := range final {
		if a := math.Abs(v); a > finalMax {
			finalMax = a
		}
	}
	if finalMax >= initMax {
		t.Fatalf("field grew: max |cell| %g -> %g", initMax, finalMax)
	}
	// The spike at the midpoint must have spread into its neighbourhood.
	mid := totalCell / 2
	if final[mid] >= initial(mid)/2 {
		t.Fatalf("hot spot did not diffuse: %g -> %g", initial(mid), final[mid])
	}
	for _, off := range []int{-2, -1, 1, 2} {
		if final[mid+off] <= initial(mid+off) {
			t.Fatalf("neighbour %+d did not warm: %g -> %g", off, initial(mid+off), final[mid+off])
		}
	}
}
