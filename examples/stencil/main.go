// Stencil: a 1-D Jacobi heat-diffusion kernel on the paper's machine. Each
// processor owns a contiguous strip of cells kept in private cache (READ /
// WRITE, no coherence traffic); only the strip's edge cells are shared.
// Neighbours subscribe to each other's boundary blocks with READ-UPDATE, so
// every iteration's boundary exchange is a single WRITE-GLOBAL per side —
// the update propagates to the neighbour's cache unsolicited — plus the
// barrier that separates iterations.
//
// The result is verified against a sequential reference computation: the
// parallel run's cells must match to the last bit, because both execute the
// same arithmetic in the same order per cell.
package main

import (
	"fmt"
	"log"
	"math"

	"ssmp"
)

const (
	nodes     = 8
	cellsPer  = 16 // cells per processor strip
	totalCell = nodes * cellsPer
	iters     = 50
	alpha     = 0.25
)

// Memory layout: each processor strip's edge cells live in their own
// blocks; boundary block for (proc, side) is dedicated.
func leftEdgeAddr(proc int) ssmp.Addr  { return ssmp.Addr(8192 + proc*64) }
func rightEdgeAddr(proc int) ssmp.Addr { return ssmp.Addr(8192 + proc*64 + 32) }

const barrierA = ssmp.Addr(4096)

func initial(i int) float64 {
	// A smooth bump plus a hot spot.
	return math.Sin(float64(i)*0.1)*10 + map[bool]float64{true: 100}[i == totalCell/2]
}

// reference computes the sequential result.
func reference() []float64 {
	cur := make([]float64, totalCell)
	next := make([]float64, totalCell)
	for i := range cur {
		cur[i] = initial(i)
	}
	for it := 0; it < iters; it++ {
		for i := range cur {
			l, r := 0.0, 0.0
			if i > 0 {
				l = cur[i-1]
			}
			if i < totalCell-1 {
				r = cur[i+1]
			}
			next[i] = cur[i] + alpha*(l-2*cur[i]+r)
		}
		cur, next = next, cur
	}
	return cur
}

// runParallel executes the stencil on the simulated machine and returns the
// per-processor final strips plus the run metrics.
func runParallel() ([][]float64, ssmp.Result, error) {
	cfg := ssmp.DefaultConfig(nodes)
	m := ssmp.NewMachine(cfg)

	results := make([][]float64, nodes)
	progs := make([]ssmp.Program, nodes)
	for pid := 0; pid < nodes; pid++ {
		pid := pid
		progs[pid] = func(p *ssmp.Proc) {
			cur := make([]float64, cellsPer)
			next := make([]float64, cellsPer)
			for i := range cur {
				cur[i] = initial(pid*cellsPer + i)
			}
			// Subscribe to the neighbours' boundary cells once.
			if pid > 0 {
				p.ReadUpdate(rightEdgeAddr(pid - 1))
			}
			if pid < nodes-1 {
				p.ReadUpdate(leftEdgeAddr(pid + 1))
			}
			// Publish initial edges, then synchronize.
			p.WriteGlobal(leftEdgeAddr(pid), ssmp.Word(math.Float64bits(cur[0])))
			p.WriteGlobal(rightEdgeAddr(pid), ssmp.Word(math.Float64bits(cur[cellsPer-1])))
			p.Barrier(barrierA, nodes)

			for it := 0; it < iters; it++ {
				// Fetch neighbour boundaries (local hits: the
				// subscription keeps them fresh).
				left, right := 0.0, 0.0
				if pid > 0 {
					left = math.Float64frombits(uint64(p.Read(rightEdgeAddr(pid - 1))))
				}
				if pid < nodes-1 {
					right = math.Float64frombits(uint64(p.Read(leftEdgeAddr(pid + 1))))
				}
				for i := 0; i < cellsPer; i++ {
					l := left
					if i > 0 {
						l = cur[i-1]
					}
					r := right
					if i < cellsPer-1 {
						r = cur[i+1]
					}
					// Global edges are fixed at 0 flux beyond the array.
					if pid == 0 && i == 0 {
						l = 0
					}
					if pid == nodes-1 && i == cellsPer-1 {
						r = 0
					}
					next[i] = cur[i] + alpha*(l-2*cur[i]+r)
					p.Think(1) // one cycle of FP work per cell
				}
				cur, next = next, cur
				// Publish the new edges; the barrier (CP-Synch)
				// flushes them and the subscriptions deliver them.
				p.WriteGlobal(leftEdgeAddr(pid), ssmp.Word(math.Float64bits(cur[0])))
				p.WriteGlobal(rightEdgeAddr(pid), ssmp.Word(math.Float64bits(cur[cellsPer-1])))
				p.Barrier(barrierA+ssmp.Addr((it%2+1)*64), nodes)
			}
			results[pid] = cur
		}
	}

	res, err := m.Run(progs)
	return results, res, err
}

// maxDeviation returns the worst |parallel - reference| over all cells.
func maxDeviation(results [][]float64, ref []float64) float64 {
	worst := 0.0
	for pid := range results {
		for i, v := range results[pid] {
			if d := math.Abs(v - ref[pid*cellsPer+i]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func main() {
	results, res, err := runParallel()
	if err != nil {
		log.Fatal(err)
	}
	worst := maxDeviation(results, reference())

	fmt.Printf("%d cells on %d processors, %d iterations\n", totalCell, nodes, iters)
	fmt.Printf("cycles: %d   messages: %d   utilization: %.0f%%\n",
		res.Cycles, res.Messages, 100*res.MeanUtilization)
	fmt.Printf("max deviation from sequential reference: %g\n", worst)
	if worst > 1e-12 {
		log.Fatal("parallel result diverged: boundary exchange broken")
	}
	fmt.Println("bit-exact agreement with the sequential reference")
}
