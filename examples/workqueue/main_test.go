package main

import "testing"

// TestWorkQueueAccounting runs every scheme and checks the queue's item
// accounting: exactly the initial tasks plus every spawned task execute,
// no item is lost or double-counted, and the run completes.
func TestWorkQueueAccounting(t *testing.T) {
	const (
		n     = 4
		tasks = 16
		grain = 32
		seed  = 7
	)
	for _, c := range schemes() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, stats, err := runScheme(c, n, tasks, grain, 0.2, seed)
			if err != nil {
				t.Fatal(err)
			}
			if stats.TasksExecuted != tasks+stats.Spawned {
				t.Fatalf("executed %d tasks, want %d initial + %d spawned",
					stats.TasksExecuted, tasks, stats.Spawned)
			}
			if res.Cycles == 0 || res.Messages == 0 {
				t.Fatalf("implausible run metrics: %+v", res)
			}
		})
	}
}

// TestWorkQueueNoSpawn pins the accounting corner case: with spawning off,
// exactly the initial tasks run.
func TestWorkQueueNoSpawn(t *testing.T) {
	_, stats, err := runScheme(schemes()[0], 2, 8, 16, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Spawned != 0 {
		t.Fatalf("spawned %d tasks with spawnProb=0", stats.Spawned)
	}
	if stats.TasksExecuted != 8 {
		t.Fatalf("executed %d tasks, want 8", stats.TasksExecuted)
	}
}

// TestWorkQueueLockAgnostic pins the pluggable-lock contract: the lock
// implementation must not change what the workload computes. With spawning
// off (spawn decisions are drawn from per-processor streams, so they are
// schedule-dependent and excluded from the contract) every scheme —
// hardware CBL, test-and-set, backoff, and the MCS queue lock plugged in
// through the common interface — must execute exactly the initial task set,
// no task lost to a broken handoff or double-drawn from a broken lock; only
// the cycle count may differ.
func TestWorkQueueLockAgnostic(t *testing.T) {
	const (
		n     = 4
		tasks = 16
		grain = 32
		seed  = 11
	)
	for _, c := range schemes() {
		res, stats, err := runScheme(c, n, tasks, grain, 0, seed)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if stats.TasksExecuted != tasks || stats.Spawned != 0 {
			t.Errorf("%s executed %d tasks (%d spawned), want exactly %d",
				c.name, stats.TasksExecuted, stats.Spawned, tasks)
		}
		if res.Cycles == 0 {
			t.Errorf("%s reported zero cycles", c.name)
		}
	}
}

// TestWorkQueueMCSDeterministic pins the MCS scheme's seed-stability.
func TestWorkQueueMCSDeterministic(t *testing.T) {
	mcs := schemes()[3]
	if mcs.name != "Q-MCS" {
		t.Fatalf("scheme 3 is %s, want Q-MCS", mcs.name)
	}
	r1, s1, err := runScheme(mcs, 4, 16, 32, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, err := runScheme(mcs, 4, 16, 32, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || s1.Spawned != s2.Spawned {
		t.Fatalf("same seed diverged: %d/%d cycles, %d/%d spawned",
			r1.Cycles, r2.Cycles, s1.Spawned, s2.Spawned)
	}
}

// TestWorkQueueDeterministic pins seed-stability: the same seed must give
// the same cycle count and the same spawn decisions on every run.
func TestWorkQueueDeterministic(t *testing.T) {
	r1, s1, err := runScheme(schemes()[0], 4, 16, 32, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	r2, s2, err := runScheme(schemes()[0], 4, 16, 32, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || s1.Spawned != s2.Spawned {
		t.Fatalf("same seed diverged: %d/%d cycles, %d/%d spawned",
			r1.Cycles, r2.Cycles, s1.Spawned, s2.Spawned)
	}
}
