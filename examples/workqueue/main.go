// Workqueue: the paper's §5.2 dynamic-scheduling kernel. Processors draw
// tasks from a central queue protected by a lock; the queue lock is the
// scalability bottleneck the paper's Figures 4-5 expose. This example runs
// the model on the CBL machine (hardware queued locks) and the WBI baseline
// (test-and-set, with and without exponential backoff) across processor
// counts and prints the completion-time comparison.
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"ssmp"
)

// scheme is one synchronization configuration under comparison. The queue
// lock is pluggable: any ssmp.Locker drops into the kit, so the same model
// runs over hardware queued locks, software spin locks, and the MCS queue
// lock without touching the workload.
type scheme struct {
	name    string
	proto   ssmp.Protocol
	backoff bool
	// queueLock, when non-nil, replaces the kit's queue lock.
	queueLock func(cfg ssmp.Config, n int) ssmp.Locker
}

// mcsBase is a block number above every address the workload layout hands
// out, so the MCS lock's tail and per-processor spin nodes collide with
// nothing.
const mcsBase = 8192

// mcsQueueLock builds the zoo's MCS queue lock: a tail word plus one
// cache-block-padded spin node per processor, so each waiter spins on a
// word homed with its own node.
func mcsQueueLock(cfg ssmp.Config, n int) ssmp.Locker {
	base := ssmp.Addr(mcsBase * cfg.BlockWords)
	return ssmp.MCSLock{
		TailAddr:   base,
		NodeBase:   base + ssmp.Addr(cfg.BlockWords),
		BlockWords: cfg.BlockWords,
	}
}

// schemes returns the three lock implementations the paper compares plus
// the MCS queue lock riding in through the pluggable interface.
func schemes() []scheme {
	return []scheme{
		{name: "Q-CBL", proto: ssmp.ProtoCBL},
		{name: "Q-WBI", proto: ssmp.ProtoWBI},
		{name: "Q-backoff", proto: ssmp.ProtoWBI, backoff: true},
		{name: "Q-MCS", proto: ssmp.ProtoWBI, queueLock: mcsQueueLock},
	}
}

// runScheme executes the work-queue model under one scheme and returns the
// run metrics plus the queue's task accounting.
func runScheme(c scheme, n, tasks, grain int, spawnProb float64, seed uint64) (ssmp.Result, *ssmp.QueueStats, error) {
	cfg := ssmp.DefaultConfig(n)
	cfg.Protocol = c.proto
	p := ssmp.DefaultWorkloadParams()
	p.Grain = grain
	layout := ssmp.NewLayout(cfg, p)
	var kit ssmp.SyncKit
	if c.proto == ssmp.ProtoCBL {
		kit = ssmp.CBLKit(layout, n)
	} else {
		kit = ssmp.WBIKit(layout, n, c.backoff)
	}
	if c.queueLock != nil {
		kit.Name = c.name
		kit.QueueLock = c.queueLock(cfg, n)
	}
	progs, stats := ssmp.WorkQueue(n, tasks, spawnProb, p, layout, kit, seed)
	res, err := ssmp.NewMachine(cfg).Run(progs)
	return res, stats, err
}

func main() {
	procsFlag := flag.String("procs", "2,4,8,16", "comma-separated processor counts")
	tasks := flag.Int("tasks", 64, "initial tasks in the queue")
	grain := flag.Int("grain", ssmp.MediumGrain, "references per task")
	seed := flag.Uint64("seed", 42, "workload seed")
	flag.Parse()

	var procs []int
	for _, s := range strings.Split(*procsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			log.Fatalf("bad procs list: %v", err)
		}
		procs = append(procs, n)
	}

	configs := schemes()

	fmt.Printf("work-queue model: %d tasks, grain %d refs/task\n\n", *tasks, *grain)
	fmt.Printf("%-8s", "procs")
	for _, c := range configs {
		fmt.Printf(" %14s", c.name+" cycles")
	}
	fmt.Println()

	for _, n := range procs {
		fmt.Printf("%-8d", n)
		for _, c := range configs {
			res, stats, err := runScheme(c, n, *tasks, *grain, 0.2, *seed)
			if err != nil {
				log.Fatalf("%s procs=%d: %v", c.name, n, err)
			}
			if stats.TasksExecuted < *tasks {
				log.Fatalf("%s procs=%d: only %d tasks ran", c.name, n, stats.TasksExecuted)
			}
			fmt.Printf(" %14d", res.Cycles)
		}
		fmt.Println()
	}

	fmt.Println("\nExpected shape (paper Figures 4-5): all schemes speed up at small")
	fmt.Println("processor counts; as contention on the queue lock grows, Q-WBI")
	fmt.Println("degrades first, backoff helps but does not scale, and Q-CBL's")
	fmt.Println("hardware queued lock stays ahead.")
}
