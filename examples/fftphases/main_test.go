package main

import (
	"testing"

	"ssmp/internal/msg"
)

// TestManagedSubscriptionsReduceTraffic is the example's claim as a test:
// RESET-UPDATE per phase must strictly cut update-propagation traffic
// versus keep-everything subscriptions, at equal computed results.
func TestManagedSubscriptionsReduceTraffic(t *testing.T) {
	mNaive, rNaive, err := run(false, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	mManaged, rManaged, err := run(true, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	propNaive := mNaive.Messages().Kind(msg.UpdateProp)
	propManaged := mManaged.Messages().Kind(msg.UpdateProp)
	if propManaged >= propNaive {
		t.Fatalf("managed %d update-props, naive %d; want a strict reduction", propManaged, propNaive)
	}
	if rNaive.Cycles == 0 || rManaged.Cycles == 0 {
		t.Fatalf("zero-cycle run: naive %d, managed %d", rNaive.Cycles, rManaged.Cycles)
	}
}

// TestRunDeterministic: with a fixed jitter seed the run is a pure
// function of its inputs — cycles and message counts repeat exactly.
func TestRunDeterministic(t *testing.T) {
	for _, jitter := range []uint64{0, 7} {
		m1, r1, err := run(true, jitter, 0)
		if err != nil {
			t.Fatal(err)
		}
		m2, r2, err := run(true, jitter, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Cycles != r2.Cycles || r1.Messages != r2.Messages {
			t.Errorf("jitter=%d: runs diverged: %d cycles/%d msgs vs %d cycles/%d msgs",
				jitter, r1.Cycles, r1.Messages, r2.Cycles, r2.Messages)
		}
		p1, p2 := m1.Messages().Kind(msg.UpdateProp), m2.Messages().Kind(msg.UpdateProp)
		if p1 != p2 {
			t.Errorf("jitter=%d: update-prop counts diverged: %d vs %d", jitter, p1, p2)
		}
	}
}

// TestPDESWorkerEquality: under the windowed parallel simulation engine
// (lane mode) timing and traffic are bit-identical at every worker
// count — the deterministic window merge, not the schedule, decides
// event order. The serial engine (SimWorkers=0) is a different scheduler
// and is allowed to differ in cycle counts, so the reference here is one
// lane worker.
func TestPDESWorkerEquality(t *testing.T) {
	mRef, rRef, err := run(true, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		mPar, rPar, err := run(true, 3, workers)
		if err != nil {
			t.Fatalf("SimWorkers=%d: %v", workers, err)
		}
		if rPar.Cycles != rRef.Cycles || rPar.Messages != rRef.Messages {
			t.Errorf("SimWorkers=%d: %d cycles/%d msgs, 1 worker %d cycles/%d msgs",
				workers, rPar.Cycles, rPar.Messages, rRef.Cycles, rRef.Messages)
		}
		if p, s := mPar.Messages().Kind(msg.UpdateProp), mRef.Messages().Kind(msg.UpdateProp); p != s {
			t.Errorf("SimWorkers=%d: %d update-props, 1 worker %d", workers, p, s)
		}
	}
	// Lane mode must still show the example's headline effect.
	mNaive, _, err := run(false, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p, n := mRef.Messages().Kind(msg.UpdateProp), mNaive.Messages().Kind(msg.UpdateProp); p >= n {
		t.Errorf("lane mode: managed %d update-props, naive %d; want a strict reduction", p, n)
	}
}
