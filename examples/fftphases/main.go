// FFT phases: the paper's §4.2 usage sketch for READ-UPDATE/RESET-UPDATE.
// In a phased computation (the butterfly stages of a parallel FFT), each
// phase reads a different region of a shared array. A processor subscribes
// with READ-UPDATE to exactly the blocks its next phase needs and cancels
// stale subscriptions with RESET-UPDATE — so update traffic follows the
// access pattern instead of accumulating forever, which is the scheme's
// advantage over sender-initiated write-update.
//
// This example runs the same phased computation twice — with per-phase
// subscription management, and with naive keep-everything subscriptions —
// and reports the propagation traffic of each.
package main

import (
	"fmt"
	"log"

	"ssmp"
	"ssmp/internal/core"
	"ssmp/internal/msg"
)

const (
	nodes  = 8
	phases = 6
	// regionBlocks is the number of data blocks each processor touches
	// per phase.
	regionBlocks = 4
	base         = ssmp.Addr(8 * 1024)
	barrierAddr  = ssmp.Addr(4 * 1024)
)

// regionAddr returns the address of region r's block b: the regions rotate
// across phases, modeling the changing butterfly partners.
func regionAddr(phase, proc, b int) ssmp.Addr {
	region := (proc + phase) % nodes
	return base + ssmp.Addr((region*regionBlocks+b)*4)
}

// run executes the phased computation. jitter seeds same-cycle
// tie-breaking (0 = canonical order) and simWorkers > 0 selects the
// parallel simulation engine.
func run(managed bool, jitter uint64, simWorkers int) (*core.Machine, ssmp.Result, error) {
	cfg := ssmp.DefaultConfig(nodes)
	cfg.Jitter = jitter
	cfg.SimWorkers = simWorkers
	m := core.NewMachine(cfg)
	progs := make([]ssmp.Program, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		progs[i] = func(p *ssmp.Proc) {
			for ph := 0; ph < phases; ph++ {
				// Subscribe to this phase's region.
				for b := 0; b < regionBlocks; b++ {
					p.ReadUpdate(regionAddr(ph, i, b))
				}
				// Butterfly-ish work: read the region, publish
				// one result word per block into the region one
				// phase ahead (someone else's next input).
				for b := 0; b < regionBlocks; b++ {
					v := p.Read(regionAddr(ph, i, b))
					p.WriteGlobal(regionAddr(ph+1, i, b), v+1)
				}
				// Drop subscriptions the next phase won't use.
				if managed {
					for b := 0; b < regionBlocks; b++ {
						p.ResetUpdate(regionAddr(ph, i, b))
					}
				}
				p.Barrier(barrierAddr, nodes)
			}
		}
	}
	res, err := m.Run(progs)
	return m, res, err
}

func main() {
	mNaive, rNaive, err := run(false, 0, 0)
	if err != nil {
		log.Fatal(err)
	}
	mManaged, rManaged, err := run(true, 0, 0)
	if err != nil {
		log.Fatal(err)
	}

	propNaive := mNaive.Messages().Kind(msg.UpdateProp)
	propManaged := mManaged.Messages().Kind(msg.UpdateProp)

	fmt.Printf("%d nodes, %d phases, %d blocks per region\n\n", nodes, phases, regionBlocks)
	fmt.Printf("%-28s %10s %12s %12s\n", "subscription policy", "cycles", "messages", "update-props")
	fmt.Printf("%-28s %10d %12d %12d\n", "keep everything (naive)", rNaive.Cycles, rNaive.Messages, propNaive)
	fmt.Printf("%-28s %10d %12d %12d\n", "reset-update per phase", rManaged.Cycles, rManaged.Messages, propManaged)

	if propManaged >= propNaive {
		log.Fatal("managed subscriptions did not reduce propagation traffic")
	}
	fmt.Printf("\nRESET-UPDATE cut propagation traffic by %.0f%% — the reader decides\n",
		100*(1-float64(propManaged)/float64(propNaive)))
	fmt.Println("which lines receive updates, phase by phase (§4.2).")
}
