package main

import "testing"

// Checksum bounds: each lookup sums three table words that start at
// 100+200+300 and each grow by 1 per writer update, so every lookup sees a
// sum in [600, 600+3*updates].
const (
	sumLo = 600
	sumHi = 600 + 3*updates
)

// TestRWTableChecksumBounds pins the table's semantic invariant under both
// disciplines: a lookup can never observe a torn update — every sum lies
// between the initial table and the fully-updated one, in multiples the
// lookup count allows.
func TestRWTableChecksumBounds(t *testing.T) {
	for _, shared := range []bool{true, false} {
		res, sum, err := run(shared)
		if err != nil {
			t.Fatal(err)
		}
		lo := uint64(sumLo * readers * lookups)
		hi := uint64(sumHi * readers * lookups)
		if uint64(sum) < lo || uint64(sum) > hi {
			t.Errorf("shared=%v: checksum %d outside [%d, %d]: a lookup saw a torn table",
				shared, sum, lo, hi)
		}
		if res.Cycles == 0 {
			t.Errorf("shared=%v: zero cycles", shared)
		}
	}
}

// TestRWTableSharedBeatsExclusive pins the example's headline: READ-LOCK
// readers batch compatible grants and must finish the identical workload in
// fewer cycles than WRITE-LOCK-everything serialization.
func TestRWTableSharedBeatsExclusive(t *testing.T) {
	shared, _, err := run(true)
	if err != nil {
		t.Fatal(err)
	}
	excl, _, err := run(false)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("shared=%d cycles, exclusive=%d cycles", shared.Cycles, excl.Cycles)
	if shared.Cycles >= excl.Cycles {
		t.Fatalf("shared read locks (%d cycles) did not beat serialization (%d cycles)",
			shared.Cycles, excl.Cycles)
	}
}

// TestRWTableDeterministic pins seed-0 stability for both disciplines.
func TestRWTableDeterministic(t *testing.T) {
	for _, shared := range []bool{true, false} {
		r1, s1, err := run(shared)
		if err != nil {
			t.Fatal(err)
		}
		r2, s2, err := run(shared)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Cycles != r2.Cycles || s1 != s2 {
			t.Fatalf("shared=%v diverged: %d/%d cycles, checksums %d/%d",
				shared, r1.Cycles, r2.Cycles, s1, s2)
		}
	}
}
