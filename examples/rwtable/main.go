// Rwtable: a read-mostly lookup table protected by the paper's cache-based
// lock, demonstrating the shared/exclusive lock modes of §4.3. Seven
// readers repeatedly consult the table under READ-LOCK — compatible grants
// batch, and a write-lock release wakes every consecutive read waiter in
// one grant wave — while one writer occasionally updates it under
// WRITE-LOCK. The same run with readers demoted to WRITE-LOCK serializes
// everything; the completion-time gap is the concurrency the read mode
// buys.
package main

import (
	"fmt"
	"log"

	"ssmp"
)

const (
	nodes      = 8
	readers    = 7
	lookups    = 30
	updates    = 6
	tableBlock = ssmp.Addr(1024 * 4) // lock block; table words colocated
)

func run(sharedReads bool) (ssmp.Result, ssmp.Word, error) {
	cfg := ssmp.DefaultConfig(nodes)
	m := ssmp.NewMachine(cfg)
	// Table: word 1..3 of the lock block hold the (tiny) table; the grant
	// carries it with the lock (§4.3 colocation).
	m.WriteMemory(tableBlock+1, 100)
	m.WriteMemory(tableBlock+2, 200)
	m.WriteMemory(tableBlock+3, 300)

	var checksum ssmp.Word
	progs := make([]ssmp.Program, nodes)
	for i := 0; i < readers; i++ {
		progs[i] = func(p *ssmp.Proc) {
			for k := 0; k < lookups; k++ {
				if sharedReads {
					p.ReadLock(tableBlock)
				} else {
					p.WriteLock(tableBlock)
				}
				sum := p.Read(tableBlock+1) + p.Read(tableBlock+2) + p.Read(tableBlock+3)
				p.Think(20) // compute with the looked-up values
				p.Unlock(tableBlock)
				checksum += sum
				p.Think(10)
			}
		}
	}
	progs[readers] = func(p *ssmp.Proc) {
		for u := 0; u < updates; u++ {
			p.Think(300)
			p.WriteLock(tableBlock)
			for w := ssmp.Addr(1); w <= 3; w++ {
				p.Write(tableBlock+w, p.Read(tableBlock+w)+1)
			}
			p.Think(15)
			p.Unlock(tableBlock)
		}
	}

	res, err := m.Run(progs)
	return res, checksum, err
}

func main() {
	shared, sharedSum, err := run(true)
	if err != nil {
		log.Fatal(err)
	}
	excl, exclSum, err := run(false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("lookup table on %d nodes: %d readers x %d lookups, %d writer updates\n\n",
		nodes, readers, lookups, updates)
	fmt.Printf("%-24s %10s %10s %12s\n", "locking discipline", "cycles", "messages", "checksum")
	fmt.Printf("%-24s %10d %10d %12d\n", "READ-LOCK readers", shared.Cycles, shared.Messages, sharedSum)
	fmt.Printf("%-24s %10d %10d %12d\n", "WRITE-LOCK everything", excl.Cycles, excl.Messages, exclSum)

	if shared.Cycles >= excl.Cycles {
		log.Fatal("shared read locks did not beat full serialization")
	}
	fmt.Printf("\nshared read locks finish %.1fx sooner: compatible grants batch and\n",
		float64(excl.Cycles)/float64(shared.Cycles))
	fmt.Println("the write-lock release wakes all queued readers in one grant wave.")
}
