// Boundedbuffer: a producer/consumer pipeline over semaphores — the P and V
// operations the paper's buffered-consistency model classifies (P is
// NP-Synch: it need not wait for preceding global writes; V is CP-Synch:
// built on an unlock, it publishes everything written before it).
//
// The example exercises the paper's §4.3 colocation rule twice over: each
// semaphore's count lives in its own lock's memory block (the grant carries
// the count), and the ring's head/tail indices live in the ring lock's
// block — so every piece of lock-protected state travels with its lock
// grant through the lock caches. Slot contents are published by the
// CP-Synch release (the unlock flushes the write buffer) before the
// matching V makes them claimable.
//
// Four producers push tagged items to four consumers; the consumers'
// checksum must equal the producers'.
package main

import (
	"fmt"
	"log"

	"ssmp"
)

const (
	nodes     = 8
	producers = 4
	slots     = 4 // ring capacity
	perProd   = 25
)

// Simulated-memory layout. Each lock block (4 words) colocates its
// protected state, per §4.3.
var (
	ringLock = ssmp.Addr(400) // block: [lock word, tail, head, -]
	tailA    = ringLock + 1
	headA    = ringLock + 2
	emptySem = ssmp.Addr(408) // semaphore block: count at word 0
	fullSem  = ssmp.Addr(416)
	ringBase = ssmp.Addr(424) // slot i in its own block
)

func slotAddr(i ssmp.Word) ssmp.Addr { return ringBase + ssmp.Addr(i%slots)*8 }

// run executes the pipeline and returns the machine result plus the
// producer- and consumer-side checksums.
func run() (res ssmp.Result, produced, consumed ssmp.Word, err error) {
	cfg := ssmp.DefaultConfig(nodes)
	m := ssmp.NewMachine(cfg)
	m.WriteMemory(emptySem, slots)

	empty := ssmp.NewCBLSemaphore(emptySem)
	full := ssmp.NewCBLSemaphore(fullSem)
	ring := ssmp.CBLLock{Addr: ringLock}

	progs := make([]ssmp.Program, nodes)

	for i := 0; i < producers; i++ {
		i := i
		progs[i] = func(p *ssmp.Proc) {
			for k := 0; k < perProd; k++ {
				item := ssmp.Word(1000*i + k + 1)
				empty.P(p) // NP-Synch: wait for a free slot
				ring.Acquire(p)
				tail := p.Read(tailA)               // travels with the grant
				p.WriteGlobal(slotAddr(tail), item) // buffered global write
				p.Write(tailA, tail+1)              // slot filled *before* tail moves
				ring.Release(p)                     // CP-Synch: publishes the slot
				full.V(p)
				produced += item
			}
		}
	}
	for i := producers; i < 2*producers; i++ {
		progs[i] = func(p *ssmp.Proc) {
			for k := 0; k < perProd; k++ {
				full.P(p) // a published slot exists
				ring.Acquire(p)
				head := p.Read(headA)
				item := p.ReadGlobal(slotAddr(head)) // fresh from memory
				p.Write(headA, head+1)
				ring.Release(p)
				empty.V(p)
				consumed += item
			}
		}
	}

	res, err = m.Run(progs)
	return res, produced, consumed, err
}

func main() {
	res, produced, consumed, err := run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d producers x %d items through a %d-slot ring on %d nodes\n",
		producers, perProd, slots, nodes)
	fmt.Printf("produced checksum: %d\n", produced)
	fmt.Printf("consumed checksum: %d\n", consumed)
	fmt.Printf("cycles: %d   messages: %d   utilization: %.0f%%\n",
		res.Cycles, res.Messages, 100*res.MeanUtilization)
	if produced != consumed {
		log.Fatal("checksum mismatch: an item was lost or duplicated in simulated memory")
	}
	fmt.Println("checksums match: every item crossed the machine intact")
}
