package main

import (
	"testing"

	"ssmp"
)

// wantChecksum is the sum of every item the producers inject: producer i
// pushes 1000*i+k+1 for k in [0, perProd).
func wantChecksum() ssmp.Word {
	var sum ssmp.Word
	for i := 0; i < producers; i++ {
		for k := 0; k < perProd; k++ {
			sum += ssmp.Word(1000*i + k + 1)
		}
	}
	return sum
}

// TestBoundedBufferConservation pins the pipeline's semantic invariant:
// every item a producer pushes is consumed exactly once — the consumer-side
// checksum equals the producer-side checksum, and both equal the closed-form
// sum of the injected items (so a lost item cannot hide behind a duplicated
// one).
func TestBoundedBufferConservation(t *testing.T) {
	res, produced, consumed, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if want := wantChecksum(); produced != want {
		t.Fatalf("produced checksum %d, want %d", produced, want)
	}
	if produced != consumed {
		t.Fatalf("consumed checksum %d != produced %d: an item was lost or duplicated", consumed, produced)
	}
	if res.Cycles == 0 || res.Messages == 0 {
		t.Fatalf("implausible run metrics: cycles=%d messages=%d", res.Cycles, res.Messages)
	}
}

// TestBoundedBufferDeterministic pins seed-0 stability: the example takes
// no seed, so two runs must agree bit-for-bit on cycles and messages.
func TestBoundedBufferDeterministic(t *testing.T) {
	r1, _, _, err := run()
	if err != nil {
		t.Fatal(err)
	}
	r2, _, _, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Messages != r2.Messages {
		t.Fatalf("identical runs diverged: %d/%d cycles, %d/%d messages",
			r1.Cycles, r2.Cycles, r1.Messages, r2.Messages)
	}
}
