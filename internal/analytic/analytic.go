// Package analytic implements the paper's closed-form cost models:
//
//   - Table 2: per-processor, per-iteration network traffic of a linear
//     equation solver under the read-update scheme versus two
//     invalidation-protocol allocations (inv-I: x-vector elements
//     colocated; inv-II: one element per line), in terms of the message
//     cost classes C_B (block transfer), C_W (word transfer), C_I
//     (invalidation) and C_R (control transaction).
//
//   - Table 3: message and time costs of four synchronization scenarios
//     (parallel lock, serial lock, barrier request, barrier notify) under
//     the WBI baseline and the cache-based lock scheme, in terms of n (the
//     number of processors), t_nw (network transit), t_cs (critical
//     section), t_D (directory check) and t_m (memory block read).
//
// Each cost is provided both numerically and as the paper's symbolic
// expression, so the tables can be regenerated verbatim.
package analytic

import (
	"fmt"
	"math"
	"strings"
)

// ClassCosts weight the four message classes for Table 2's numeric
// evaluation.
type ClassCosts struct {
	CB float64 // block transfer
	CW float64 // word transfer
	CI float64 // invalidation
	CR float64 // transaction carrying no data
}

// DefaultClassCosts reflects the simulator's network occupancies for
// 4-word blocks: a block transfer costs 4 flits, everything else one.
func DefaultClassCosts() ClassCosts {
	return ClassCosts{CB: 4, CW: 1, CI: 1, CR: 1}
}

// Traffic is one Table 2 cell: a linear combination of the class costs.
// Parallel transactions (the paper's p||X notation) contribute p messages;
// ParallelCB records how many of the CB units may proceed in parallel so a
// latency-oriented reading can discount them.
type Traffic struct {
	CB, CW, CI, CR float64
	// Parallel is the paper's p in p||transaction annotations (0 when no
	// parallel group is present).
	Parallel int
	// Symbolic is the cell exactly as printed in the paper.
	Symbolic string
}

// Eval returns the weighted message cost (parallel transactions counted
// individually, i.e. network traffic, which is what Table 2 measures).
func (t Traffic) Eval(c ClassCosts) float64 {
	return t.CB*c.CB + t.CW*c.CW + t.CI*c.CI + t.CR*c.CR
}

// EvalTime returns the weighted cost under the paper's time reading of the
// p||X notation: a group of p parallel transactions costs one X, because
// the transfers pipeline through disjoint network paths. With this reading,
// read-update's write cost is the constant C_W + C_B regardless of n, which
// is the source of its scalability claim.
func (t Traffic) EvalTime(c ClassCosts) float64 {
	if t.Parallel <= 1 {
		return t.Eval(c)
	}
	p := float64(t.Parallel)
	// Collapse the parallel group (p units of the dominant class) to one.
	switch {
	case t.CB >= p:
		return (t.CB-p+1)*c.CB + t.CW*c.CW + t.CI*c.CI + t.CR*c.CR
	case t.CI >= p:
		return t.CB*c.CB + t.CW*c.CW + (t.CI-p+1)*c.CI + t.CR*c.CR
	}
	return t.Eval(c)
}

// Table2Row holds the three cost-model rows for one scheme.
type Table2Row struct {
	Scheme      string
	InitialLoad Traffic
	Write       Traffic
	Read        Traffic
}

// Table2 returns the paper's Table 2 for n processors and line size B
// (the analysis assumes a dance-hall organization and focuses on the
// x-vector's global operations).
func Table2(n, B int) []Table2Row {
	nf, bf := float64(n), float64(B)
	ceilNB := math.Ceil(nf / bf)
	return []Table2Row{
		{
			Scheme:      "read-update",
			InitialLoad: Traffic{CB: ceilNB, Symbolic: "ceil(n/B)*C_B"},
			Write: Traffic{
				CW: 1, CB: nf - 1, Parallel: n - 1,
				Symbolic: "C_W + (n-1)||C_B",
			},
			Read: Traffic{Symbolic: "-"},
		},
		{
			Scheme:      "inv-I",
			InitialLoad: Traffic{CB: ceilNB, Symbolic: "ceil(n/B)*C_B"},
			// 1/B of writes are first-writers: C_R + (n-1)||C_I;
			// the rest fetch the line from the previous writer:
			// 2C_R + 2C_B.
			Write: Traffic{
				CR: 1.0/bf + (bf-1)/bf*2,
				CI: (nf - 1) / bf,
				CB: (bf - 1) / bf * 2,
				Symbolic: "1/B*(C_R + (n-1)||C_I) + " +
					"(B-1)/B*(2C_R + 2C_B)",
			},
			Read: Traffic{
				CB: (ceilNB-1)/bf + (bf-1)/bf*ceilNB,
				Symbolic: "1/B*(ceil(n/B)-1)*C_B + " +
					"(B-1)/B*ceil(n/B)*C_B",
			},
		},
		{
			Scheme:      "inv-II",
			InitialLoad: Traffic{CB: nf, Symbolic: "n*C_B"},
			Write: Traffic{
				CR: 1, CI: nf - 1, Parallel: n - 1,
				Symbolic: "C_R + (n-1)||C_I",
			},
			Read: Traffic{CB: nf - 1, Symbolic: "(n-1)*C_B"},
		},
	}
}

// SyncParams are the Table 3 time parameters.
type SyncParams struct {
	N   int     // processors
	Tnw float64 // network transit time
	Tcs float64 // time inside the critical section
	TD  float64 // directory / cache-directory check
	Tm  float64 // memory block read
}

// DefaultSyncParams matches the simulator's default timing for n
// processors: t_D = 1, t_m = 4, and t_nw = log2(n) unit-delay stages.
func DefaultSyncParams(n int) SyncParams {
	return SyncParams{N: n, Tnw: math.Log2(float64(n)), Tcs: 50, TD: 1, Tm: 4}
}

// Cost is one Table 3 cell.
type Cost struct {
	Messages float64
	Time     float64
	// MsgExpr and TimeExpr are the paper's symbolic entries.
	MsgExpr, TimeExpr string
}

// Scenario names a Table 3 row.
type Scenario string

// The four Table 3 scenarios. Costs for SerialLock and BarrierRequest are
// per processor; ParallelLock and BarrierNotify are totals.
const (
	ParallelLock   Scenario = "parallel lock"
	SerialLock     Scenario = "serial lock"
	BarrierRequest Scenario = "barrier request"
	BarrierNotify  Scenario = "barrier notify"
)

// Scenarios lists the Table 3 rows in paper order.
func Scenarios() []Scenario {
	return []Scenario{ParallelLock, SerialLock, BarrierRequest, BarrierNotify}
}

// WBI returns the Table 3 cost of a scenario under the write-back
// invalidation scheme with software synchronization.
func WBI(s Scenario, p SyncParams) Cost {
	n := float64(p.N)
	switch s {
	case ParallelLock:
		return Cost{
			Messages: 6*n*n + 4*n,
			Time:     n*p.Tcs + 10*n*p.Tnw + n*(n+1)/2*p.Tm + 5*n*(5*n-1)/2*p.TD,
			MsgExpr:  "6n^2 + 4n",
			TimeExpr: "n*t_cs + 10n*t_nw + n(n+1)/2*t_m + 5n(5n-1)/2*t_D",
		}
	case SerialLock:
		return Cost{
			Messages: 8,
			Time:     8*p.Tnw + 5*p.TD + p.Tm + p.Tcs,
			MsgExpr:  "8",
			TimeExpr: "8t_nw + 5t_D + t_m + t_cs",
		}
	case BarrierRequest:
		return Cost{
			Messages: 18,
			Time:     18*p.Tnw + 12*p.TD,
			MsgExpr:  "18",
			TimeExpr: "18t_nw + 12t_D",
		}
	case BarrierNotify:
		return Cost{
			Messages: 5*n - 3,
			Time:     4*p.Tnw + (2*n-1)*p.TD,
			MsgExpr:  "5n - 3",
			TimeExpr: "4t_nw + (2n-1)t_D",
		}
	}
	panic(fmt.Sprintf("analytic: unknown scenario %q", s))
}

// CBL returns the Table 3 cost of a scenario under the cache-based lock
// scheme.
func CBL(s Scenario, p SyncParams) Cost {
	n := float64(p.N)
	switch s {
	case ParallelLock:
		return Cost{
			Messages: 6*n - 3,
			Time:     n*p.Tcs + (2*n+1)*p.Tnw + (n+1)*p.TD + p.Tm,
			MsgExpr:  "6n - 3",
			TimeExpr: "n*t_cs + (2n+1)t_nw + (n+1)t_D + t_m",
		}
	case SerialLock:
		return Cost{
			Messages: 3,
			Time:     3*p.Tnw + p.TD + p.Tcs,
			MsgExpr:  "3",
			TimeExpr: "3t_nw + t_D + t_cs",
		}
	case BarrierRequest:
		return Cost{
			Messages: 2,
			Time:     2 * (p.Tnw + p.Tm),
			MsgExpr:  "2",
			TimeExpr: "2(t_nw + t_m)",
		}
	case BarrierNotify:
		return Cost{
			Messages: n,
			Time:     2*p.Tnw + (n-1)*p.TD,
			MsgExpr:  "n",
			TimeExpr: "2t_nw + (n-1)t_D",
		}
	}
	panic(fmt.Sprintf("analytic: unknown scenario %q", s))
}

// Table2TimeAdvantage returns the per-iteration steady-state cost
// (write + read phases) of the three schemes under the time reading of
// p||X, for n processors and line size B. The read-update scheme's cost is
// constant in n while both invalidation schemes grow — the asymptotic
// argument behind §4.1's comparison.
func Table2TimeAdvantage(n, B int, c ClassCosts) (readUpdate, invI, invII float64) {
	rows := Table2(n, B)
	cost := func(r Table2Row) float64 { return r.Write.EvalTime(c) + r.Read.EvalTime(c) }
	return cost(rows[0]), cost(rows[1]), cost(rows[2])
}

// FormatTable2 renders Table 2: symbolic cells plus a numeric evaluation.
func FormatTable2(n, B int, c ClassCosts) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: linear solver network traffic per processor (n=%d, B=%d; C_B=%g C_W=%g C_I=%g C_R=%g)\n",
		n, B, c.CB, c.CW, c.CI, c.CR)
	fmt.Fprintf(&b, "%-12s %-34s %10s\n", "scheme", "operation", "cost")
	for _, row := range Table2(n, B) {
		fmt.Fprintf(&b, "%-12s %-34s %10.1f   %s\n", row.Scheme, "initial load", row.InitialLoad.Eval(c), row.InitialLoad.Symbolic)
		fmt.Fprintf(&b, "%-12s %-34s %10.1f   %s\n", "", "write", row.Write.Eval(c), row.Write.Symbolic)
		if row.Read.Symbolic == "-" {
			fmt.Fprintf(&b, "%-12s %-34s %10s   %s\n", "", "read", "-", "-")
		} else {
			fmt.Fprintf(&b, "%-12s %-34s %10.1f   %s\n", "", "read", row.Read.Eval(c), row.Read.Symbolic)
		}
	}
	return b.String()
}

// FormatTable3 renders Table 3 for the given parameters.
func FormatTable3(p SyncParams) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: synchronization costs (n=%d, t_nw=%g, t_cs=%g, t_D=%g, t_m=%g)\n",
		p.N, p.Tnw, p.Tcs, p.TD, p.Tm)
	fmt.Fprintf(&b, "%-16s | %12s %12s | %12s %12s\n", "scenario", "WBI msgs", "WBI time", "CBL msgs", "CBL time")
	for _, s := range Scenarios() {
		w, c := WBI(s, p), CBL(s, p)
		fmt.Fprintf(&b, "%-16s | %12.0f %12.0f | %12.0f %12.0f\n",
			s, w.Messages, w.Time, c.Messages, c.Time)
	}
	return b.String()
}
