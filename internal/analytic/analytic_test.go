package analytic

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTable2ReadUpdateCells(t *testing.T) {
	rows := Table2(16, 4)
	ru := rows[0]
	if ru.Scheme != "read-update" {
		t.Fatalf("row 0 = %s", ru.Scheme)
	}
	// Initial load: ceil(16/4) = 4 block transfers.
	if !almost(ru.InitialLoad.CB, 4) {
		t.Fatalf("initial CB = %v", ru.InitialLoad.CB)
	}
	// Write: C_W + 15||C_B.
	if !almost(ru.Write.CW, 1) || !almost(ru.Write.CB, 15) || ru.Write.Parallel != 15 {
		t.Fatalf("write = %+v", ru.Write)
	}
	// Read: free.
	if ru.Read.CB != 0 || ru.Read.CW != 0 {
		t.Fatalf("read = %+v", ru.Read)
	}
}

func TestTable2InvICells(t *testing.T) {
	inv1 := Table2(16, 4)[1]
	// Write: 1/4*(C_R + 15 C_I) + 3/4*(2C_R + 2C_B)
	if !almost(inv1.Write.CR, 0.25+1.5) {
		t.Fatalf("inv-I write CR = %v", inv1.Write.CR)
	}
	if !almost(inv1.Write.CI, 15.0/4) {
		t.Fatalf("inv-I write CI = %v", inv1.Write.CI)
	}
	if !almost(inv1.Write.CB, 1.5) {
		t.Fatalf("inv-I write CB = %v", inv1.Write.CB)
	}
	// Read: 1/4*3*C_B + 3/4*4*C_B = 0.75 + 3 = 3.75 C_B.
	if !almost(inv1.Read.CB, 3.75) {
		t.Fatalf("inv-I read CB = %v", inv1.Read.CB)
	}
}

func TestTable2InvIICells(t *testing.T) {
	inv2 := Table2(16, 4)[2]
	if !almost(inv2.InitialLoad.CB, 16) {
		t.Fatalf("inv-II initial CB = %v", inv2.InitialLoad.CB)
	}
	if !almost(inv2.Write.CR, 1) || !almost(inv2.Write.CI, 15) {
		t.Fatalf("inv-II write = %+v", inv2.Write)
	}
	if !almost(inv2.Read.CB, 15) {
		t.Fatalf("inv-II read CB = %v", inv2.Read.CB)
	}
}

// Property: the read phase is where read-update wins — for all n, B >= 2 it
// costs strictly less than both invalidation variants.
func TestQuickReadUpdateWinsReadPhase(t *testing.T) {
	f := func(nRaw, bRaw uint8) bool {
		n := int(nRaw%63) + 2
		B := int(bRaw%7) + 2
		c := DefaultClassCosts()
		rows := Table2(n, B)
		ru := rows[0].Read.Eval(c)
		i1 := rows[1].Read.Eval(c)
		i2 := rows[2].Read.Eval(c)
		return ru < i1 && ru < i2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTable3WBIValues(t *testing.T) {
	p := SyncParams{N: 16, Tnw: 4, Tcs: 50, TD: 1, Tm: 4}
	pl := WBI(ParallelLock, p)
	if !almost(pl.Messages, 6*256+64) {
		t.Fatalf("WBI parallel messages = %v", pl.Messages)
	}
	wantTime := 16*50.0 + 10*16*4.0 + 16*17/2*4.0 + 5*16*(5*16-1)/2*1.0
	if !almost(pl.Time, wantTime) {
		t.Fatalf("WBI parallel time = %v, want %v", pl.Time, wantTime)
	}
	sl := WBI(SerialLock, p)
	if !almost(sl.Messages, 8) || !almost(sl.Time, 8*4+5+4+50) {
		t.Fatalf("WBI serial = %+v", sl)
	}
	br := WBI(BarrierRequest, p)
	if !almost(br.Messages, 18) || !almost(br.Time, 18*4+12) {
		t.Fatalf("WBI barrier request = %+v", br)
	}
	bn := WBI(BarrierNotify, p)
	if !almost(bn.Messages, 5*16-3) || !almost(bn.Time, 4*4+31) {
		t.Fatalf("WBI barrier notify = %+v", bn)
	}
}

func TestTable3CBLValues(t *testing.T) {
	p := SyncParams{N: 16, Tnw: 4, Tcs: 50, TD: 1, Tm: 4}
	pl := CBL(ParallelLock, p)
	if !almost(pl.Messages, 6*16-3) {
		t.Fatalf("CBL parallel messages = %v", pl.Messages)
	}
	if !almost(pl.Time, 16*50+33*4.0+17+4) {
		t.Fatalf("CBL parallel time = %v", pl.Time)
	}
	sl := CBL(SerialLock, p)
	if !almost(sl.Messages, 3) || !almost(sl.Time, 12+1+50) {
		t.Fatalf("CBL serial = %+v", sl)
	}
	br := CBL(BarrierRequest, p)
	if !almost(br.Messages, 2) || !almost(br.Time, 16) {
		t.Fatalf("CBL barrier request = %+v", br)
	}
	bn := CBL(BarrierNotify, p)
	if !almost(bn.Messages, 16) || !almost(bn.Time, 8+15) {
		t.Fatalf("CBL barrier notify = %+v", bn)
	}
}

// Property: CBL's parallel-lock cost is O(n) while WBI's is O(n^2): the
// ratio WBI/CBL grows with n for both messages and (t_cs = 0) time.
func TestQuickComplexitySeparation(t *testing.T) {
	prevMsgRatio, prevTimeRatio := 0.0, 0.0
	for _, n := range []int{4, 8, 16, 32, 64, 128} {
		p := DefaultSyncParams(n)
		p.Tcs = 0 // isolate the synchronization overhead
		w, c := WBI(ParallelLock, p), CBL(ParallelLock, p)
		mr := w.Messages / c.Messages
		tr := w.Time / c.Time
		if mr <= prevMsgRatio || tr <= prevTimeRatio {
			t.Fatalf("n=%d: ratios not growing (msg %v, time %v)", n, mr, tr)
		}
		prevMsgRatio, prevTimeRatio = mr, tr
	}
}

func TestCBLBeatsWBIEverywhere(t *testing.T) {
	for _, n := range []int{2, 4, 16, 64} {
		p := DefaultSyncParams(n)
		for _, s := range Scenarios() {
			w, c := WBI(s, p), CBL(s, p)
			if c.Messages >= w.Messages {
				t.Errorf("n=%d %s: CBL messages %v >= WBI %v", n, s, c.Messages, w.Messages)
			}
			if c.Time >= w.Time {
				t.Errorf("n=%d %s: CBL time %v >= WBI %v", n, s, c.Time, w.Time)
			}
		}
	}
}

func TestFormatters(t *testing.T) {
	t2 := FormatTable2(16, 4, DefaultClassCosts())
	for _, want := range []string{"read-update", "inv-I", "inv-II", "initial load", "C_W + (n-1)||C_B"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 output missing %q", want)
		}
	}
	t3 := FormatTable3(DefaultSyncParams(16))
	for _, want := range []string{"parallel lock", "serial lock", "barrier request", "barrier notify", "WBI msgs", "CBL msgs"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table 3 output missing %q", want)
		}
	}
}

func TestUnknownScenarioPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown scenario did not panic")
		}
	}()
	WBI(Scenario("bogus"), DefaultSyncParams(4))
}

func TestEvalTimeCollapsesParallelGroups(t *testing.T) {
	c := DefaultClassCosts()
	rows := Table2(16, 4)
	ru := rows[0].Write
	// Traffic reading: C_W + 15 C_B = 1 + 60 = 61.
	if !almost(ru.Eval(c), 61) {
		t.Fatalf("Eval = %v", ru.Eval(c))
	}
	// Time reading: C_W + 1 C_B = 5, constant in n.
	if !almost(ru.EvalTime(c), 5) {
		t.Fatalf("EvalTime = %v", ru.EvalTime(c))
	}
	inv2 := rows[2].Write
	// inv-II write: C_R + 15||C_I -> C_R + C_I = 2 under time reading.
	if !almost(inv2.EvalTime(c), 2) {
		t.Fatalf("inv-II EvalTime = %v", inv2.EvalTime(c))
	}
	// Non-parallel cells are unchanged.
	if !almost(rows[2].Read.EvalTime(c), rows[2].Read.Eval(c)) {
		t.Fatal("non-parallel cell changed under time reading")
	}
}

// Property: under the time reading, read-update's steady-state cost is
// constant in n while both invalidation schemes grow, so read-update wins
// for every n above the line size.
func TestQuickTimeAdvantageGrowsWithN(t *testing.T) {
	c := DefaultClassCosts()
	base, _, _ := Table2TimeAdvantage(8, 4, c)
	prevI, prevII := 0.0, 0.0
	for _, n := range []int{8, 16, 32, 64, 128} {
		ru, i1, i2 := Table2TimeAdvantage(n, 4, c)
		if !almost(ru, base) {
			t.Fatalf("read-update time cost varies with n: %v vs %v", ru, base)
		}
		if i1 <= prevI || i2 <= prevII {
			t.Fatalf("invalidation costs not growing at n=%d", n)
		}
		if ru >= i1 || ru >= i2 {
			t.Fatalf("read-update not winning at n=%d: %v vs %v/%v", n, ru, i1, i2)
		}
		prevI, prevII = i1, i2
	}
}
