// Package harness reproduces the paper's evaluation (§5): the four
// simulation figures and simulated counterparts of the two analytical
// tables.
//
//   - Figure 4: completion time vs processors, medium-granularity
//     parallelism — WBI and CBL under the sync workload model, and Q-WBI,
//     Q-backoff, Q-CBL under the work-queue model.
//   - Figure 5: the same at coarse granularity.
//   - Figure 6: BC-CBL vs SC-CBL (buffered vs sequential consistency),
//     fine granularity, work-queue model.
//   - Figure 7: the same at medium granularity.
//   - Table 2: linear-solver network traffic, measured by running the
//     solver on the simulated machines next to the closed-form model.
//   - Table 3: synchronization scenario costs, measured by running the
//     scenarios on the simulated machines next to the closed-form model.
package harness

import (
	"context"
	"fmt"
	"io"
	"sync"

	"ssmp/internal/core"
	"ssmp/internal/mem"
	"ssmp/internal/metrics"
	"ssmp/internal/network"
	"ssmp/internal/workload"
)

// Options parameterize the experiment sweeps.
type Options struct {
	// Procs is the processor-count sweep (powers of two).
	Procs []int
	// Episodes is the sync model's episodes per processor.
	Episodes int
	// Tasks is the work-queue model's initial task count.
	Tasks int
	// SpawnProb is the work-queue model's task-spawn probability.
	SpawnProb float64
	// Seed drives all workload randomness.
	Seed uint64
	// Params supplies Table 4 parameters; the grain is overridden per
	// figure.
	Params workload.Params
	// Faults configures interconnect fault injection for every simulation
	// in the sweep (zero = reliable fabric). The committed experiment runs
	// and their golden digests use the zero value; chaos sweeps set a
	// nonzero seed and rates to check that the figures survive a lossy
	// fabric.
	Faults network.FaultConfig
	// SimWorkers sets each simulated machine's PDES worker count
	// (core.Config.SimWorkers): 0 runs the classic serial engine, >= 1
	// runs the time-windowed parallel engine. Contended Ω and mesh
	// networks are lane-safe (window-barrier port arbitration); only the
	// bus topology degrades to the serial engine. The assembled figures
	// and tables are bit-identical at every worker count >= 1.
	SimWorkers int
	// IdealNetwork removes switch contention (core.Config.IdealNetwork;
	// ablation — no longer a precondition for SimWorkers).
	IdealNetwork bool
	// Topology selects the interconnect model (core.Config.Topology):
	// the paper's Ω network (default), a 2-D mesh, or the bus.
	Topology network.Topology
	// Jitter seeds same-cycle tie-breaking (core.Config.Jitter).
	Jitter uint64
	// Parallelism bounds how many simulations a sweep runs concurrently.
	// Zero means GOMAXPROCS; 1 forces the historic serial order. Each
	// simulation is self-contained (own engine, own RNG), so the assembled
	// figures and tables are bit-identical at any setting — the golden
	// digest test pins this.
	Parallelism int
	// Log, when non-nil, receives progress lines.
	Log io.Writer

	// ctx, when non-nil, cancels in-flight sweeps; see WithContext.
	ctx context.Context
}

// WithContext returns a copy of the options whose sweeps stop early when
// ctx is cancelled: the error-returning entry points (FigureByNumber)
// propagate the context error, and the simulated machine itself aborts
// mid-run, so even a single long simulation honors the deadline.
func (o Options) WithContext(ctx context.Context) Options {
	o.ctx = ctx
	return o
}

func (o Options) context() context.Context {
	if o.ctx != nil {
		return o.ctx
	}
	return context.Background()
}

// DefaultOptions returns the sweep used by the committed experiment runs.
func DefaultOptions() Options {
	return Options{
		Procs:     []int{2, 4, 8, 16, 32, 64},
		Episodes:  8,
		Tasks:     128,
		SpawnProb: 0.2,
		Seed:      42,
		Params:    workload.DefaultParams(),
	}
}

// logMu serializes progress lines: sweep cells run concurrently and share
// the options' writer.
var logMu sync.Mutex

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		logMu.Lock()
		defer logMu.Unlock()
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Figure is one reproduced figure: completion-time series over processor
// count.
type Figure struct {
	Name   string            `json:"name"`
	Title  string            `json:"title"`
	XLabel string            `json:"x_label"`
	Series []*metrics.Series `json:"series"`
}

// Table renders the figure as an aligned text table.
func (f Figure) Table() string {
	return fmt.Sprintf("%s: %s\n%s", f.Name, f.Title, metrics.FormatTable(f.XLabel, f.Series))
}

// CSV renders the figure as CSV.
func (f Figure) CSV() string { return metrics.FormatCSV(f.XLabel, f.Series) }

func (o Options) config(procs int, proto core.Protocol, cons core.Consistency) core.Config {
	cfg := core.DefaultConfig(procs)
	cfg.Protocol = proto
	cfg.Consistency = cons
	cfg.Faults = o.Faults
	cfg.SimWorkers = o.SimWorkers
	cfg.IdealNetwork = o.IdealNetwork
	cfg.Topology = o.Topology
	cfg.Jitter = o.Jitter
	return cfg
}

// runSync runs the sync workload model and returns completion cycles.
func (o Options) runSync(procs int, proto core.Protocol, cons core.Consistency, grain int) (float64, error) {
	p := o.Params
	p.Grain = grain
	cfg := o.config(procs, proto, cons)
	layout := workload.NewLayout(mem.Geometry{BlockWords: cfg.BlockWords, Nodes: procs}, p)
	var kit workload.SyncKit
	if proto == core.ProtoCBL {
		kit = workload.CBLKit(layout, procs)
	} else {
		kit = workload.WBIKit(layout, procs, false)
	}
	progs := workload.SyncModel(procs, o.Episodes, p, layout, kit, o.Seed)
	res, err := workload.RunContext(o.context(), cfg, progs)
	if err != nil {
		// Seed and fault config make the failing cell reproducible from
		// the message alone.
		return 0, fmt.Errorf("harness: sync model %v/%v p=%d seed=%d %s: %w",
			proto, cons, procs, o.Seed, o.Faults, err)
	}
	o.logf("  sync %v %v procs=%d grain=%d: %d cycles, %d msgs", proto, cons, procs, grain, res.Cycles, res.Messages)
	return float64(res.Cycles), nil
}

// runQueue runs the work-queue model and returns completion cycles.
func (o Options) runQueue(procs int, proto core.Protocol, cons core.Consistency, grain int, backoff bool) (float64, error) {
	p := o.Params
	p.Grain = grain
	cfg := o.config(procs, proto, cons)
	layout := workload.NewLayout(mem.Geometry{BlockWords: cfg.BlockWords, Nodes: procs}, p)
	var kit workload.SyncKit
	if proto == core.ProtoCBL {
		kit = workload.CBLKit(layout, procs)
	} else {
		kit = workload.WBIKit(layout, procs, backoff)
	}
	progs, _ := workload.WorkQueue(procs, o.Tasks, o.SpawnProb, p, layout, kit, o.Seed)
	res, err := workload.RunContext(o.context(), cfg, progs)
	if err != nil {
		return 0, fmt.Errorf("harness: work-queue %s p=%d seed=%d %s: %w",
			kit.Name, procs, o.Seed, o.Faults, err)
	}
	o.logf("  queue %s %v procs=%d grain=%d: %d cycles, %d msgs", kit.Name, cons, procs, grain, res.Cycles, res.Messages)
	return float64(res.Cycles), nil
}

// cacheSchemesFigure builds Figures 4 and 5: WBI vs CBL on both workload
// models, without buffered consistency (the paper runs these under SC).
func (o Options) cacheSchemesFigure(name, title string, grain int) (Figure, error) {
	wbiS := &metrics.Series{Name: "WBI"}
	cblS := &metrics.Series{Name: "CBL"}
	qWBI := &metrics.Series{Name: "Q-WBI"}
	qBack := &metrics.Series{Name: "Q-backoff"}
	qCBL := &metrics.Series{Name: "Q-CBL"}
	cells := []struct {
		s       *metrics.Series
		sync    bool
		proto   core.Protocol
		backoff bool
	}{
		{wbiS, true, core.ProtoWBI, false},
		{cblS, true, core.ProtoCBL, false},
		{qWBI, false, core.ProtoWBI, false},
		{qBack, false, core.ProtoWBI, true},
		{qCBL, false, core.ProtoCBL, false},
	}
	// The (procs x cell) grid fans out across the worker pool; every point
	// is an independent simulation. Results land in fixed slots and are
	// assembled serially below, so the series are identical at any
	// parallelism.
	ys := make([]float64, len(o.Procs)*len(cells))
	err := o.fan(len(ys), func(i int) error {
		n, c := o.Procs[i/len(cells)], cells[i%len(cells)]
		var y float64
		var err error
		if c.sync {
			y, err = o.runSync(n, c.proto, core.SC, grain)
		} else {
			y, err = o.runQueue(n, c.proto, core.SC, grain, c.backoff)
		}
		ys[i] = y
		return err
	})
	if err != nil {
		return Figure{}, err
	}
	for i, y := range ys {
		cells[i%len(cells)].s.Add(float64(o.Procs[i/len(cells)]), y)
	}
	return Figure{
		Name:   name,
		Title:  title,
		XLabel: "procs",
		Series: []*metrics.Series{wbiS, cblS, qWBI, qBack, qCBL},
	}, nil
}

// mustFigure preserves the historic panic-on-failure behaviour of the
// FigureN entry points, which predate the error-returning API.
func mustFigure(f Figure, err error) Figure {
	if err != nil {
		panic(err)
	}
	return f
}

// Figure4 reproduces Figure 4: cache schemes at medium granularity.
func (o Options) Figure4() Figure { return mustFigure(o.figure4()) }

func (o Options) figure4() (Figure, error) {
	return o.cacheSchemesFigure("Figure 4",
		"completion time of cache schemes, medium-granularity parallelism",
		workload.MediumGrain)
}

// Figure5 reproduces Figure 5: cache schemes at coarse granularity.
func (o Options) Figure5() Figure { return mustFigure(o.figure5()) }

func (o Options) figure5() (Figure, error) {
	return o.cacheSchemesFigure("Figure 5",
		"completion time of cache schemes, coarse-granularity parallelism",
		workload.CoarseGrain)
}

// consistencyFigure builds Figures 6 and 7: BC-CBL vs SC-CBL on the
// work-queue model.
func (o Options) consistencyFigure(name, title string, grain int) (Figure, error) {
	sc := &metrics.Series{Name: "SC-CBL"}
	bc := &metrics.Series{Name: "BC-CBL"}
	models := []core.Consistency{core.SC, core.BC}
	ys := make([]float64, len(o.Procs)*len(models))
	err := o.fan(len(ys), func(i int) error {
		n, cons := o.Procs[i/len(models)], models[i%len(models)]
		y, err := o.runQueue(n, core.ProtoCBL, cons, grain, false)
		ys[i] = y
		return err
	})
	if err != nil {
		return Figure{}, err
	}
	for i, y := range ys {
		s := sc
		if i%len(models) == 1 {
			s = bc
		}
		s.Add(float64(o.Procs[i/len(models)]), y)
	}
	return Figure{Name: name, Title: title, XLabel: "procs",
		Series: []*metrics.Series{sc, bc}}, nil
}

// Figure6 reproduces Figure 6: buffered vs sequential consistency at fine
// granularity.
func (o Options) Figure6() Figure { return mustFigure(o.figure6()) }

func (o Options) figure6() (Figure, error) {
	return o.consistencyFigure("Figure 6",
		"buffered vs sequential consistency, fine-granularity parallelism",
		workload.FineGrain)
}

// Figure7 reproduces Figure 7: buffered vs sequential consistency at
// medium granularity.
func (o Options) Figure7() Figure { return mustFigure(o.figure7()) }

func (o Options) figure7() (Figure, error) {
	return o.consistencyFigure("Figure 7",
		"buffered vs sequential consistency, medium-granularity parallelism",
		workload.MediumGrain)
}

// Figures runs every figure.
func (o Options) Figures() []Figure {
	return []Figure{o.Figure4(), o.Figure5(), o.Figure6(), o.Figure7()}
}

// UtilizationFigure is an extension beyond the paper: mean processor
// utilization (useful-computation fraction) against processor count on the
// work-queue model, for the same five configurations as Figure 4. The
// paper remarks that utilization can mislead — "synchronization activities
// may keep the processor busy without performing any useful computation"
// (§5.2) — and this figure quantifies it: the WBI spin-lock machines burn
// cycles re-reading the lock word, which our accounting splits out as
// stall, not useful work.
func (o Options) UtilizationFigure(grain int) Figure {
	type cfgRow struct {
		name    string
		proto   core.Protocol
		backoff bool
	}
	rows := []cfgRow{
		{"Q-CBL", core.ProtoCBL, false},
		{"Q-WBI", core.ProtoWBI, false},
		{"Q-backoff", core.ProtoWBI, true},
	}
	ys := make([]float64, len(rows)*len(o.Procs))
	o.fan(len(ys), func(i int) error {
		rw, n := rows[i/len(o.Procs)], o.Procs[i%len(o.Procs)]
		p := o.Params
		p.Grain = grain
		cfg := o.config(n, rw.proto, core.SC)
		layout := workload.NewLayout(mem.Geometry{BlockWords: cfg.BlockWords, Nodes: n}, p)
		var kit workload.SyncKit
		if rw.proto == core.ProtoCBL {
			kit = workload.CBLKit(layout, n)
		} else {
			kit = workload.WBIKit(layout, n, rw.backoff)
		}
		progs, _ := workload.WorkQueue(n, o.Tasks, o.SpawnProb, p, layout, kit, o.Seed)
		res, err := workload.RunContext(o.context(), cfg, progs)
		if err != nil {
			panic(fmt.Sprintf("harness: utilization %s p=%d: %v", rw.name, n, err))
		}
		ys[i] = 100 * res.MeanUtilization
		o.logf("  util %s procs=%d: %.1f%%", rw.name, n, ys[i])
		return nil
	})
	var series []*metrics.Series
	for ri, rw := range rows {
		s := &metrics.Series{Name: rw.name}
		for ni, n := range o.Procs {
			s.Add(float64(n), ys[ri*len(o.Procs)+ni])
		}
		series = append(series, s)
	}
	return Figure{
		Name:   "Utilization",
		Title:  "mean processor utilization (%), work-queue model (extension)",
		XLabel: "procs",
		Series: series,
	}
}

// FigureByNumber runs one figure (4-7). A simulation failure — including
// cancellation of a context installed with WithContext — is returned, not
// panicked.
func (o Options) FigureByNumber(n int) (Figure, error) {
	switch n {
	case 4:
		return o.figure4()
	case 5:
		return o.figure5()
	case 6:
		return o.figure6()
	case 7:
		return o.figure7()
	}
	return Figure{}, fmt.Errorf("harness: no figure %d (the paper has Figures 4-7)", n)
}
