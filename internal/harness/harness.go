// Package harness reproduces the paper's evaluation (§5): the four
// simulation figures and simulated counterparts of the two analytical
// tables.
//
//   - Figure 4: completion time vs processors, medium-granularity
//     parallelism — WBI and CBL under the sync workload model, and Q-WBI,
//     Q-backoff, Q-CBL under the work-queue model.
//   - Figure 5: the same at coarse granularity.
//   - Figure 6: BC-CBL vs SC-CBL (buffered vs sequential consistency),
//     fine granularity, work-queue model.
//   - Figure 7: the same at medium granularity.
//   - Table 2: linear-solver network traffic, measured by running the
//     solver on the simulated machines next to the closed-form model.
//   - Table 3: synchronization scenario costs, measured by running the
//     scenarios on the simulated machines next to the closed-form model.
package harness

import (
	"fmt"
	"io"

	"ssmp/internal/core"
	"ssmp/internal/mem"
	"ssmp/internal/metrics"
	"ssmp/internal/workload"
)

// Options parameterize the experiment sweeps.
type Options struct {
	// Procs is the processor-count sweep (powers of two).
	Procs []int
	// Episodes is the sync model's episodes per processor.
	Episodes int
	// Tasks is the work-queue model's initial task count.
	Tasks int
	// SpawnProb is the work-queue model's task-spawn probability.
	SpawnProb float64
	// Seed drives all workload randomness.
	Seed uint64
	// Params supplies Table 4 parameters; the grain is overridden per
	// figure.
	Params workload.Params
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// DefaultOptions returns the sweep used by the committed experiment runs.
func DefaultOptions() Options {
	return Options{
		Procs:     []int{2, 4, 8, 16, 32, 64},
		Episodes:  8,
		Tasks:     128,
		SpawnProb: 0.2,
		Seed:      42,
		Params:    workload.DefaultParams(),
	}
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// Figure is one reproduced figure: completion-time series over processor
// count.
type Figure struct {
	Name   string
	Title  string
	XLabel string
	Series []*metrics.Series
}

// Table renders the figure as an aligned text table.
func (f Figure) Table() string {
	return fmt.Sprintf("%s: %s\n%s", f.Name, f.Title, metrics.FormatTable(f.XLabel, f.Series))
}

// CSV renders the figure as CSV.
func (f Figure) CSV() string { return metrics.FormatCSV(f.XLabel, f.Series) }

func (o Options) config(procs int, proto core.Protocol, cons core.Consistency) core.Config {
	cfg := core.DefaultConfig(procs)
	cfg.Protocol = proto
	cfg.Consistency = cons
	return cfg
}

// runSync runs the sync workload model and returns completion cycles.
func (o Options) runSync(procs int, proto core.Protocol, cons core.Consistency, grain int) float64 {
	p := o.Params
	p.Grain = grain
	cfg := o.config(procs, proto, cons)
	layout := workload.NewLayout(mem.Geometry{BlockWords: cfg.BlockWords, Nodes: procs}, p)
	var kit workload.SyncKit
	if proto == core.ProtoCBL {
		kit = workload.CBLKit(layout, procs)
	} else {
		kit = workload.WBIKit(layout, procs, false)
	}
	progs := workload.SyncModel(procs, o.Episodes, p, layout, kit, o.Seed)
	res, err := workload.Run(cfg, progs)
	if err != nil {
		panic(fmt.Sprintf("harness: sync model %v/%v p=%d: %v", proto, cons, procs, err))
	}
	o.logf("  sync %v %v procs=%d grain=%d: %d cycles, %d msgs", proto, cons, procs, grain, res.Cycles, res.Messages)
	return float64(res.Cycles)
}

// runQueue runs the work-queue model and returns completion cycles.
func (o Options) runQueue(procs int, proto core.Protocol, cons core.Consistency, grain int, backoff bool) float64 {
	p := o.Params
	p.Grain = grain
	cfg := o.config(procs, proto, cons)
	layout := workload.NewLayout(mem.Geometry{BlockWords: cfg.BlockWords, Nodes: procs}, p)
	var kit workload.SyncKit
	if proto == core.ProtoCBL {
		kit = workload.CBLKit(layout, procs)
	} else {
		kit = workload.WBIKit(layout, procs, backoff)
	}
	progs, _ := workload.WorkQueue(procs, o.Tasks, o.SpawnProb, p, layout, kit, o.Seed)
	res, err := workload.Run(cfg, progs)
	if err != nil {
		panic(fmt.Sprintf("harness: work-queue %s p=%d: %v", kit.Name, procs, err))
	}
	o.logf("  queue %s %v procs=%d grain=%d: %d cycles, %d msgs", kit.Name, cons, procs, grain, res.Cycles, res.Messages)
	return float64(res.Cycles)
}

// cacheSchemesFigure builds Figures 4 and 5: WBI vs CBL on both workload
// models, without buffered consistency (the paper runs these under SC).
func (o Options) cacheSchemesFigure(name, title string, grain int) Figure {
	wbiS := &metrics.Series{Name: "WBI"}
	cblS := &metrics.Series{Name: "CBL"}
	qWBI := &metrics.Series{Name: "Q-WBI"}
	qBack := &metrics.Series{Name: "Q-backoff"}
	qCBL := &metrics.Series{Name: "Q-CBL"}
	for _, n := range o.Procs {
		x := float64(n)
		wbiS.Add(x, o.runSync(n, core.ProtoWBI, core.SC, grain))
		cblS.Add(x, o.runSync(n, core.ProtoCBL, core.SC, grain))
		qWBI.Add(x, o.runQueue(n, core.ProtoWBI, core.SC, grain, false))
		qBack.Add(x, o.runQueue(n, core.ProtoWBI, core.SC, grain, true))
		qCBL.Add(x, o.runQueue(n, core.ProtoCBL, core.SC, grain, false))
	}
	return Figure{
		Name:   name,
		Title:  title,
		XLabel: "procs",
		Series: []*metrics.Series{wbiS, cblS, qWBI, qBack, qCBL},
	}
}

// Figure4 reproduces Figure 4: cache schemes at medium granularity.
func (o Options) Figure4() Figure {
	return o.cacheSchemesFigure("Figure 4",
		"completion time of cache schemes, medium-granularity parallelism",
		workload.MediumGrain)
}

// Figure5 reproduces Figure 5: cache schemes at coarse granularity.
func (o Options) Figure5() Figure {
	return o.cacheSchemesFigure("Figure 5",
		"completion time of cache schemes, coarse-granularity parallelism",
		workload.CoarseGrain)
}

// consistencyFigure builds Figures 6 and 7: BC-CBL vs SC-CBL on the
// work-queue model.
func (o Options) consistencyFigure(name, title string, grain int) Figure {
	sc := &metrics.Series{Name: "SC-CBL"}
	bc := &metrics.Series{Name: "BC-CBL"}
	for _, n := range o.Procs {
		x := float64(n)
		sc.Add(x, o.runQueue(n, core.ProtoCBL, core.SC, grain, false))
		bc.Add(x, o.runQueue(n, core.ProtoCBL, core.BC, grain, false))
	}
	return Figure{Name: name, Title: title, XLabel: "procs",
		Series: []*metrics.Series{sc, bc}}
}

// Figure6 reproduces Figure 6: buffered vs sequential consistency at fine
// granularity.
func (o Options) Figure6() Figure {
	return o.consistencyFigure("Figure 6",
		"buffered vs sequential consistency, fine-granularity parallelism",
		workload.FineGrain)
}

// Figure7 reproduces Figure 7: buffered vs sequential consistency at
// medium granularity.
func (o Options) Figure7() Figure {
	return o.consistencyFigure("Figure 7",
		"buffered vs sequential consistency, medium-granularity parallelism",
		workload.MediumGrain)
}

// Figures runs every figure.
func (o Options) Figures() []Figure {
	return []Figure{o.Figure4(), o.Figure5(), o.Figure6(), o.Figure7()}
}

// UtilizationFigure is an extension beyond the paper: mean processor
// utilization (useful-computation fraction) against processor count on the
// work-queue model, for the same five configurations as Figure 4. The
// paper remarks that utilization can mislead — "synchronization activities
// may keep the processor busy without performing any useful computation"
// (§5.2) — and this figure quantifies it: the WBI spin-lock machines burn
// cycles re-reading the lock word, which our accounting splits out as
// stall, not useful work.
func (o Options) UtilizationFigure(grain int) Figure {
	type cfgRow struct {
		name    string
		proto   core.Protocol
		backoff bool
	}
	rows := []cfgRow{
		{"Q-CBL", core.ProtoCBL, false},
		{"Q-WBI", core.ProtoWBI, false},
		{"Q-backoff", core.ProtoWBI, true},
	}
	var series []*metrics.Series
	for _, rw := range rows {
		s := &metrics.Series{Name: rw.name}
		for _, n := range o.Procs {
			p := o.Params
			p.Grain = grain
			cfg := o.config(n, rw.proto, core.SC)
			layout := workload.NewLayout(mem.Geometry{BlockWords: cfg.BlockWords, Nodes: n}, p)
			var kit workload.SyncKit
			if rw.proto == core.ProtoCBL {
				kit = workload.CBLKit(layout, n)
			} else {
				kit = workload.WBIKit(layout, n, rw.backoff)
			}
			progs, _ := workload.WorkQueue(n, o.Tasks, o.SpawnProb, p, layout, kit, o.Seed)
			res, err := workload.Run(cfg, progs)
			if err != nil {
				panic(fmt.Sprintf("harness: utilization %s p=%d: %v", rw.name, n, err))
			}
			s.Add(float64(n), 100*res.MeanUtilization)
			o.logf("  util %s procs=%d: %.1f%%", rw.name, n, 100*res.MeanUtilization)
		}
		series = append(series, s)
	}
	return Figure{
		Name:   "Utilization",
		Title:  "mean processor utilization (%), work-queue model (extension)",
		XLabel: "procs",
		Series: series,
	}
}

// FigureByNumber runs one figure (4-7).
func (o Options) FigureByNumber(n int) (Figure, error) {
	switch n {
	case 4:
		return o.Figure4(), nil
	case 5:
		return o.Figure5(), nil
	case 6:
		return o.Figure6(), nil
	case 7:
		return o.Figure7(), nil
	}
	return Figure{}, fmt.Errorf("harness: no figure %d (the paper has Figures 4-7)", n)
}
