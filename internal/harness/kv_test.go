package harness

import (
	"testing"

	"ssmp/internal/litmus"
	"ssmp/internal/network"
)

// TestKVFiguresShowSeparation pins the KV sweep's headline: under the
// read-mostly default mix, the cbl-locked store (gets answered by the
// READ-UPDATE fast path) must sit at or below the mcs-locked store in both
// latency quantiles at the sweep's largest machine, and every series must
// carry a point per processor count.
func TestKVFiguresShowSeparation(t *testing.T) {
	o := zooOptions()
	p50, p99, thr, err := o.KVFigures()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Figure{p50, p99, thr} {
		if len(f.Series) != len(kvLocks) {
			t.Fatalf("%s: %d series, want %d", f.Name, len(f.Series), len(kvLocks))
		}
		for _, s := range f.Series {
			if len(s.Points) != len(o.Procs) {
				t.Fatalf("%s/%s: %d points, want %d", f.Name, s.Name, len(s.Points), len(o.Procs))
			}
		}
	}
	cbl50, mcs50 := lastY(t, p50, "cbl"), lastY(t, p50, "mcs")
	cbl99, mcs99 := lastY(t, p99, "cbl"), lastY(t, p99, "mcs")
	t.Logf("at p=%d: p50 cbl=%.0f mcs=%.0f; p99 cbl=%.0f mcs=%.0f",
		o.Procs[len(o.Procs)-1], cbl50, mcs50, cbl99, mcs99)
	if cbl50 > mcs50 {
		t.Errorf("cbl p50 (%.0f) above mcs (%.0f): fast path not separating", cbl50, mcs50)
	}
	if cbl99 > mcs99 {
		t.Errorf("cbl p99 (%.0f) above mcs (%.0f): fast path not separating", cbl99, mcs99)
	}
	if thrLast := lastY(t, thr, "cbl"); thrLast <= 0 {
		t.Errorf("cbl throughput %.3f not positive", thrLast)
	}
}

// TestKVFiguresSurviveChaos sweeps the KV service over a faulty
// interconnect: the per-key sequential-consistency oracle must hold in
// every cell (KVFigures checks it and fails the sweep otherwise).
func TestKVFiguresSurviveChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow; skipped in -short")
	}
	o := zooOptions()
	o.Procs = []int{4, 8}
	o.Faults = network.FaultConfig{Seed: 11, Rates: litmus.DefaultChaosRates()}
	if _, _, _, err := o.KVFigures(); err != nil {
		t.Fatal(err)
	}
}
