package harness

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// fan runs n independent jobs across a bounded worker pool sized by
// o.Parallelism (GOMAXPROCS when zero) and returns the first error any job
// reported. Job i is expected to write its result into slot i of a
// caller-owned slice, so the assembled output is identical regardless of
// scheduling; every simulation owns its machine, engine, and RNG, which is
// what makes the fan safe. A panicking job stops the pool and the panic is
// re-raised on the caller's goroutine, preserving the panic-on-failure
// contract of the historic entry points.
func (o Options) fan(n int, job func(i int) error) error {
	workers := o.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := job(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		wg       sync.WaitGroup
		next     atomic.Int64
		stop     atomic.Bool
		errOnce  sync.Once
		firstErr error
		panOnce  sync.Once
		panicked any
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							panOnce.Do(func() { panicked = r })
							stop.Store(true)
						}
					}()
					return job(i)
				}()
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return firstErr
}
