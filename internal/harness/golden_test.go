package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"ssmp/internal/network"
	"ssmp/internal/workload"
)

// updateGolden regenerates testdata/golden.json from the current kernel:
//
//	go test ./internal/harness -run TestGoldenDigests -update-golden
//
// The committed digests are the determinism contract: any change to the
// event kernel, the protocol controllers, or the workload models that
// perturbs a single message ordering shows up here as a digest mismatch.
// Kernel optimizations must keep every digest bit-identical.
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden digest fixture")

const goldenPath = "testdata/golden.json"

// goldenOptions is a reduced but representative sweep: both protocols, both
// consistency models, both workload models, sync primitives, and enough
// processors (16) for real network contention — small enough to run in a
// few seconds.
func goldenOptions() Options {
	return Options{
		Procs:     []int{2, 4, 8, 16},
		Episodes:  4,
		Tasks:     48,
		SpawnProb: 0.2,
		Seed:      42,
		Params:    workload.DefaultParams(),
	}
}

func digest(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}

// goldenDigests runs every table and figure the fixture covers and returns
// name -> SHA-256 of the serialized output.
func goldenDigests(t *testing.T, o Options) map[string]string {
	t.Helper()
	out := map[string]string{}
	for n := 4; n <= 7; n++ {
		f, err := o.FigureByNumber(n)
		if err != nil {
			t.Fatalf("figure %d: %v", n, err)
		}
		out[fmt.Sprintf("figure%d", n)] = digest(f.Table() + "\n" + f.CSV())
	}
	util := o.UtilizationFigure(workload.MediumGrain)
	out["utilization"] = digest(util.Table() + "\n" + util.CSV())
	t2 := o.Table2Sim(8, 10)
	out["table2"] = digest(FormatTable2Sim(8, 10, t2))
	t3 := o.Table3Sim(8)
	out["table3"] = digest(FormatTable3Sim(8, t3))
	rmr, thr, err := o.SyncZooLockFigures()
	if err != nil {
		t.Fatalf("synczoo lock figures: %v", err)
	}
	out["synczoo-rmr"] = digest(rmr.Table() + "\n" + rmr.CSV())
	out["synczoo-throughput"] = digest(thr.Table() + "\n" + thr.CSV())
	bar, err := o.SyncZooBarrierFigure()
	if err != nil {
		t.Fatalf("synczoo barrier figure: %v", err)
	}
	out["synczoo-barrier"] = digest(bar.Table() + "\n" + bar.CSV())
	p50, p99, thr, err := o.KVFigures()
	if err != nil {
		t.Fatalf("kv figures: %v", err)
	}
	out["kv-p50"] = digest(p50.Table() + "\n" + p50.CSV())
	out["kv-p99"] = digest(p99.Table() + "\n" + p99.CSV())
	out["kv-throughput"] = digest(thr.Table() + "\n" + thr.CSV())
	return out
}

// TestGoldenDigests locks the simulator's observable outputs. A mismatch
// means a semantics change: either revert it, or — if the change is an
// intentional model fix — regenerate with -update-golden and say why in the
// commit.
func TestGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("golden sweep is a few seconds; skipped in -short")
	}
	got := goldenDigests(t, goldenOptions())

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		enc, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(enc, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading fixture (generate with -update-golden): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}

	var names []string
	for name := range want {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if got[name] == "" {
			t.Errorf("%s: fixture entry has no generated counterpart", name)
			continue
		}
		if got[name] != want[name] {
			t.Errorf("%s: digest %s, want %s — simulator output changed", name, got[name][:16], want[name][:16])
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("%s: generated digest missing from fixture (regenerate with -update-golden)", name)
		}
	}
}

// TestPDESWorkerDigestEquality pins the parallel engine's determinism
// contract at the harness level: the fully assembled figure digests are
// bit-identical across SimWorkers {1, 2, 8}, for every combination of
// network model (ideal Ω, contended Ω, contended mesh — the contended
// models exercise the window-barrier port arbiter), jitter seed, and fault
// seed. Note the reference is workers=1, not the serial engine: the
// lane-keyed event discipline is a different (equally valid) tie-break
// order, deterministic in its own right.
func TestPDESWorkerDigestEquality(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed worker sweep is a few seconds; skipped in -short")
	}
	base := goldenOptions()
	base.Procs = []int{2, 4, 8}
	base.Tasks = 24
	nets := map[string]func(*Options){
		"ideal-omega":     func(o *Options) { o.IdealNetwork = true },
		"contended-omega": func(o *Options) {},
		"contended-mesh":  func(o *Options) { o.Topology = network.TopMesh },
	}
	for netName, netMod := range nets {
		for _, jitter := range []uint64{0, 7} {
			for _, faultSeed := range []uint64{0, 42} {
				o := base
				netMod(&o)
				o.Jitter = jitter
				if faultSeed != 0 {
					o.Faults = network.FaultConfig{
						Seed:  faultSeed,
						Rates: network.FaultRates{Drop: 0.01, Dup: 0.01, Delay: 0.03},
					}
				}
				var ref map[string]string
				for _, workers := range []int{1, 2, 8} {
					ow := o
					ow.SimWorkers = workers
					got := map[string]string{}
					for _, n := range []int{4, 6} {
						f, err := ow.FigureByNumber(n)
						if err != nil {
							t.Fatalf("net=%s jitter=%d faults=%d workers=%d figure %d: %v",
								netName, jitter, faultSeed, workers, n, err)
						}
						got[fmt.Sprintf("figure%d", n)] = digest(f.Table() + "\n" + f.CSV())
					}
					if ref == nil {
						ref = got
						continue
					}
					for name, w := range ref {
						if got[name] != w {
							t.Errorf("net=%s jitter=%d faults=%d workers=%d %s: digest %s, want %s — worker count leaked into results",
								netName, jitter, faultSeed, workers, name, got[name][:16], w[:16])
						}
					}
				}
			}
		}
	}
}

// TestParallelSweepMatchesSerial pins the fan's determinism contract: the
// same sweep assembled from a serial run (Parallelism=1, the historic order)
// and from a maximally concurrent run must be bit-identical.
func TestParallelSweepMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the golden sweep twice; skipped in -short")
	}
	serial := goldenOptions()
	serial.Parallelism = 1
	parallel := goldenOptions()
	parallel.Parallelism = 8

	want := goldenDigests(t, serial)
	got := goldenDigests(t, parallel)
	for name, w := range want {
		if got[name] != w {
			t.Errorf("%s: parallel digest %s, serial %s — fan is not order-independent",
				name, got[name][:16], w[:16])
		}
	}
}
