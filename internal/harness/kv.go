package harness

import (
	"ssmp/internal/kvapp"
	"ssmp/internal/metrics"
)

// The KV figure family is the north-star application workload (ROADMAP
// item 5): the in-sim key-value service under its default read-mostly
// client population, swept across the processor counts for the two lock
// managers the contention literature predicts apart — the paper's hardware
// CBL lock (with the READ-UPDATE fast path for gets) and software MCS on
// the WBI machine. Three figures come out of one sweep: p50 latency, p99
// latency, and operation throughput against node count. Every cell's
// sequential-consistency oracle is checked; a violation fails the sweep.

// kvLocks are the lock managers the KV sweep compares.
var kvLocks = []string{"cbl", "mcs"}

// kvSpec is one sweep cell's client population: the default read-mostly
// mix, sized so a full sweep stays in harness time budgets.
func (o Options) kvSpec(procs int, lock string) kvapp.Spec {
	s := kvapp.DefaultSpec(procs)
	s.Lock = lock
	s.Keys = 256
	s.Shards = 16
	s.Sessions = 2
	s.Ops = 96
	s.SubCap = 32
	s.Seed = o.Seed
	return s
}

// KVFigures sweeps the key-value service and returns the latency and
// throughput figures.
func (o Options) KVFigures() (p50, p99, thr Figure, err error) {
	results := make([]*kvapp.Result, len(o.Procs)*len(kvLocks))
	err = o.fan(len(results), func(i int) error {
		n, lock := o.Procs[i/len(kvLocks)], kvLocks[i%len(kvLocks)]
		res, err := kvapp.Run(o.context(), o.kvSpec(n, lock), kvapp.RunOptions{
			Jitter:       o.Jitter,
			Faults:       o.Faults,
			SimWorkers:   o.SimWorkers,
			IdealNetwork: o.IdealNetwork,
		})
		if err != nil {
			return err
		}
		if err := res.Check(); err != nil {
			return err
		}
		results[i] = res
		o.logf("  kv %s procs=%d: p50=%d p99=%d %.3f ops/kcycle",
			lock, n, res.P50(), res.P99(), res.ThroughputOpsPerKCycle())
		return nil
	})
	if err != nil {
		return Figure{}, Figure{}, Figure{}, err
	}
	p50S := make([]*metrics.Series, len(kvLocks))
	p99S := make([]*metrics.Series, len(kvLocks))
	thrS := make([]*metrics.Series, len(kvLocks))
	for i, lock := range kvLocks {
		p50S[i] = &metrics.Series{Name: lock}
		p99S[i] = &metrics.Series{Name: lock}
		thrS[i] = &metrics.Series{Name: lock}
	}
	for i, res := range results {
		x := float64(o.Procs[i/len(kvLocks)])
		p50S[i%len(kvLocks)].Add(x, float64(res.P50()))
		p99S[i%len(kvLocks)].Add(x, float64(res.P99()))
		thrS[i%len(kvLocks)].Add(x, res.ThroughputOpsPerKCycle())
	}
	p50 = Figure{
		Name:   "KV-P50",
		Title:  "key-value service p50 op latency (cycles) vs node count (extension)",
		XLabel: "procs",
		Series: p50S,
	}
	p99 = Figure{
		Name:   "KV-P99",
		Title:  "key-value service p99 op latency (cycles) vs node count (extension)",
		XLabel: "procs",
		Series: p99S,
	}
	thr = Figure{
		Name:   "KV-Throughput",
		Title:  "key-value service operations per 1000 cycles vs node count (extension)",
		XLabel: "procs",
		Series: thrS,
	}
	return p50, p99, thr, nil
}
