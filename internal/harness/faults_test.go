package harness

// Fault-plane integration: a sweep over a lossy fabric still assembles
// complete figures, and a failing cell's error names the seed and fault
// configuration so the run is reproducible from the message alone.

import (
	"context"
	"strings"
	"testing"

	"ssmp/internal/network"
)

func chaosOptions() Options {
	o := smallOptions()
	o.Procs = []int{2, 4}
	o.Faults = network.FaultConfig{
		Seed:  9,
		Rates: network.FaultRates{Drop: 0.02, Dup: 0.02, Delay: 0.05},
	}
	return o
}

// TestFigureSurvivesFaults runs Figure 4's sweep over a faulty
// interconnect: the reliable transport must deliver every cell, so the
// figure comes out complete and finite.
func TestFigureSurvivesFaults(t *testing.T) {
	f, err := chaosOptions().FigureByNumber(4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		if len(s.Points) != 2 {
			t.Fatalf("series %s incomplete under faults: %d points", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("series %s has non-positive cycles at procs=%v", s.Name, p.X)
			}
		}
	}
}

// TestSweepErrorNamesSeedAndFaults cancels a sweep and checks the error
// message carries the workload seed and the fault configuration.
func TestSweepErrorNamesSeedAndFaults(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := chaosOptions().WithContext(ctx)
	o.Seed = 123

	for _, n := range []int{4, 6} {
		_, err := o.FigureByNumber(n)
		if err == nil {
			t.Fatalf("figure %d: cancelled sweep did not fail", n)
		}
		msg := err.Error()
		if !strings.Contains(msg, "seed=123") {
			t.Fatalf("figure %d error lacks the failing seed: %q", n, msg)
		}
		if !strings.Contains(msg, "faults{seed=9") {
			t.Fatalf("figure %d error lacks the fault config: %q", n, msg)
		}
	}
}

// TestSweepErrorFaultsOff pins the fault-free rendering: errors from a
// reliable-fabric sweep say so rather than omitting the field.
func TestSweepErrorFaultsOff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := smallOptions().WithContext(ctx)
	_, err := o.FigureByNumber(4)
	if err == nil {
		t.Fatal("cancelled sweep did not fail")
	}
	if !strings.Contains(err.Error(), "faults=off") {
		t.Fatalf("fault-free sweep error should say faults=off: %q", err)
	}
}
