package harness

import (
	"fmt"
	"strings"

	"ssmp/internal/analytic"
	"ssmp/internal/core"
	"ssmp/internal/mem"
	"ssmp/internal/msg"
	"ssmp/internal/syncprim"
	"ssmp/internal/workload"
)

// Table2Measured holds per-scheme measured traffic for the linear solver,
// normalized per processor per iteration, next to the analytic prediction.
type Table2Measured struct {
	Scheme string
	// Blocks, Words, Invs, Controls are measured message counts per
	// processor per iteration.
	Blocks, Words, Invs, Controls float64
	// Analytic is the model's read+write traffic for the same scheme (in
	// weighted message-cost units).
	Analytic float64
	// Residual is the solver's final residual (solution correctness).
	Residual float64
}

// Table2Sim runs the linear solver on the three schemes of Table 2 and
// reports measured traffic next to the closed-form model.
func (o Options) Table2Sim(procs, iters int) []Table2Measured {
	type scheme struct {
		name       string
		readUpdate bool
		colocate   bool
	}
	schemes := []scheme{
		{"read-update", true, true},
		{"inv-I", false, true},
		{"inv-II", false, false},
	}
	costs := analytic.DefaultClassCosts()
	rows := analytic.Table2(procs, 4)
	out := make([]Table2Measured, len(schemes))
	o.fan(len(schemes), func(si int) error {
		s := schemes[si]
		cfg := core.DefaultConfig(procs)
		if !s.readUpdate {
			cfg.Protocol = core.ProtoWBI
		}
		m := core.NewMachine(cfg)
		ls := &workload.LinSolver{N: procs, Iters: iters, Colocate: s.colocate, ReadUpdate: s.readUpdate}
		if _, err := m.Run(ls.Programs(m.Geometry())); err != nil {
			panic(fmt.Sprintf("harness: Table 2 %s: %v", s.name, err))
		}
		coll := m.Messages()
		denom := float64(procs * iters)
		row := rows[si]
		out[si] = Table2Measured{
			Scheme:   s.name,
			Blocks:   float64(coll.Class(msg.BlockXfer)) / denom,
			Words:    float64(coll.Class(msg.WordXfer)) / denom,
			Invs:     float64(coll.Class(msg.Invalidation)) / denom,
			Controls: float64(coll.Class(msg.Control)) / denom,
			Analytic: row.Write.Eval(costs) + row.Read.Eval(costs),
			Residual: ls.Verify(m),
		}
		o.logf("  table2 %s: %s", s.name, coll)
		return nil
	})
	return out
}

// FormatTable2Sim renders the measured-vs-analytic comparison.
func FormatTable2Sim(procs, iters int, rows []Table2Measured) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 (simulated, n=%d, B=4, %d iterations; per processor per iteration)\n", procs, iters)
	fmt.Fprintf(&b, "%-12s %8s %8s %8s %8s %10s %12s\n",
		"scheme", "C_B", "C_W", "C_I", "C_R", "analytic", "residual")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8.2f %8.2f %8.2f %8.2f %10.1f %12.2e\n",
			r.Scheme, r.Blocks, r.Words, r.Invs, r.Controls, r.Analytic, r.Residual)
	}
	return b.String()
}

// Table3Measured is one measured synchronization scenario.
type Table3Measured struct {
	Scenario analytic.Scenario
	Scheme   string // "WBI" or "CBL"
	// Messages is the measured message count; Cycles the measured time.
	Messages uint64
	Cycles   uint64
	// Model is the paper's closed-form prediction.
	Model analytic.Cost
}

// Table3Sim measures the four Table 3 scenarios on the simulator:
// parallel lock (n simultaneous requesters), serial lock (one uncontended
// acquire/release), barrier request and barrier notify (one full barrier
// episode, with per-processor and total accounting respectively).
func (o Options) Table3Sim(procs int) []Table3Measured {
	params := analytic.DefaultSyncParams(procs)

	// measure only queues the scenario; the queued jobs fan out across the
	// worker pool at the end, each on its own machine, and land in
	// declaration order.
	type job struct {
		s      analytic.Scenario
		scheme string
		model  analytic.Cost
		run    func(cfg core.Config) (uint64, uint64)
	}
	var jobs []job
	measure := func(s analytic.Scenario, scheme string, model analytic.Cost, run func(cfg core.Config) (uint64, uint64)) {
		jobs = append(jobs, job{s, scheme, model, run})
	}

	lockAddr := mem.Addr(4 * 100)

	parallelLock := func(mk func(cfg core.Config) syncprim.Locker) func(core.Config) (uint64, uint64) {
		return func(cfg core.Config) (uint64, uint64) {
			m := core.NewMachine(cfg)
			l := mk(cfg)
			progs := make([]core.Program, procs)
			for i := 0; i < procs; i++ {
				progs[i] = func(p *core.Proc) {
					l.Acquire(p)
					p.Think(50) // t_cs
					l.Release(p)
				}
			}
			res, err := m.Run(progs)
			if err != nil {
				panic(err)
			}
			return res.Messages, uint64(res.Cycles)
		}
	}
	measure(analytic.ParallelLock, "WBI", analytic.WBI(analytic.ParallelLock, params),
		parallelLock(func(core.Config) syncprim.Locker { return syncprim.TestAndSetLock{Addr: lockAddr} }))
	measure(analytic.ParallelLock, "CBL", analytic.CBL(analytic.ParallelLock, params),
		parallelLock(func(core.Config) syncprim.Locker { return syncprim.CBLLock{Addr: lockAddr} }))

	serialLock := func(mk func() syncprim.Locker) func(core.Config) (uint64, uint64) {
		return func(cfg core.Config) (uint64, uint64) {
			m := core.NewMachine(cfg)
			l := mk()
			progs := make([]core.Program, procs)
			progs[0] = func(p *core.Proc) {
				l.Acquire(p)
				p.Think(50)
				l.Release(p)
			}
			res, err := m.Run(progs)
			if err != nil {
				panic(err)
			}
			return res.Messages, uint64(res.Cycles)
		}
	}
	measure(analytic.SerialLock, "WBI", analytic.WBI(analytic.SerialLock, params),
		serialLock(func() syncprim.Locker { return syncprim.TestAndSetLock{Addr: lockAddr} }))
	measure(analytic.SerialLock, "CBL", analytic.CBL(analytic.SerialLock, params),
		serialLock(func() syncprim.Locker { return syncprim.CBLLock{Addr: lockAddr} }))

	barrier := func(mk func() syncprim.Barrier) func(core.Config) (uint64, uint64) {
		return func(cfg core.Config) (uint64, uint64) {
			m := core.NewMachine(cfg)
			b := mk()
			progs := make([]core.Program, procs)
			for i := 0; i < procs; i++ {
				progs[i] = func(p *core.Proc) { b.Wait(p) }
			}
			res, err := m.Run(progs)
			if err != nil {
				panic(err)
			}
			return res.Messages, uint64(res.Cycles)
		}
	}
	// Barrier request (per-processor cost) and notify (release fan-out)
	// are two accountings of the same episode; we report the episode under
	// "barrier request" divided per processor and the total under
	// "barrier notify".
	count, gen := mem.Addr(4*200), mem.Addr(4*201)
	wbiBarrier := func() syncprim.Barrier {
		return syncprim.SWBarrier{CountAddr: count, GenAddr: gen, Participants: procs}
	}
	cblBarrier := func() syncprim.Barrier {
		return syncprim.HWBarrier{Addr: mem.Addr(4 * 202), Participants: procs}
	}
	reqPerProc := func(run func(core.Config) (uint64, uint64)) func(core.Config) (uint64, uint64) {
		return func(cfg core.Config) (uint64, uint64) {
			msgs, cyc := run(cfg)
			return msgs / uint64(procs), cyc
		}
	}
	measure(analytic.BarrierRequest, "WBI", analytic.WBI(analytic.BarrierRequest, params), reqPerProc(barrier(wbiBarrier)))
	measure(analytic.BarrierRequest, "CBL", analytic.CBL(analytic.BarrierRequest, params), reqPerProc(barrier(cblBarrier)))
	measure(analytic.BarrierNotify, "WBI", analytic.WBI(analytic.BarrierNotify, params), barrier(wbiBarrier))
	measure(analytic.BarrierNotify, "CBL", analytic.CBL(analytic.BarrierNotify, params), barrier(cblBarrier))

	out := make([]Table3Measured, len(jobs))
	o.fan(len(jobs), func(i int) error {
		j := jobs[i]
		cfg := core.DefaultConfig(procs)
		if j.scheme == "WBI" {
			cfg.Protocol = core.ProtoWBI
		}
		msgs, cycles := j.run(cfg)
		out[i] = Table3Measured{Scenario: j.s, Scheme: j.scheme, Messages: msgs, Cycles: cycles, Model: j.model}
		o.logf("  table3 %s %s: %d msgs, %d cycles", j.s, j.scheme, msgs, cycles)
		return nil
	})
	return out
}

// FormatTable3Sim renders the measured-vs-model comparison.
func FormatTable3Sim(procs int, rows []Table3Measured) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 (simulated, n=%d)\n", procs)
	fmt.Fprintf(&b, "%-16s %-6s %12s %12s %12s %12s\n",
		"scenario", "scheme", "msgs", "model msgs", "cycles", "model time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-6s %12d %12.0f %12d %12.0f\n",
			r.Scenario, r.Scheme, r.Messages, r.Model.Messages, r.Cycles, r.Model.Time)
	}
	return b.String()
}
