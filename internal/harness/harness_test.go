package harness

import (
	"strings"
	"testing"

	"ssmp/internal/analytic"
)

// smallOptions keeps the sweeps cheap for unit tests.
func smallOptions() Options {
	o := DefaultOptions()
	o.Procs = []int{2, 4, 8}
	o.Episodes = 3
	o.Tasks = 24
	o.SpawnProb = 0
	return o
}

func TestFigure4SeriesComplete(t *testing.T) {
	f := smallOptions().Figure4()
	if len(f.Series) != 5 {
		t.Fatalf("Figure 4 has %d series, want 5", len(f.Series))
	}
	names := map[string]bool{}
	for _, s := range f.Series {
		names[s.Name] = true
		if len(s.Points) != 3 {
			t.Fatalf("series %s has %d points, want 3", s.Name, len(s.Points))
		}
		for _, p := range s.Points {
			if p.Y <= 0 {
				t.Fatalf("series %s has nonpositive completion time at %v", s.Name, p.X)
			}
		}
	}
	for _, want := range []string{"WBI", "CBL", "Q-WBI", "Q-backoff", "Q-CBL"} {
		if !names[want] {
			t.Fatalf("missing series %s", want)
		}
	}
}

func TestFigure4QueueCBLBeatsWBIUnderContention(t *testing.T) {
	// The paper's headline: under the work-queue model the CBL scheme
	// outperforms WBI as the processor count grows.
	o := smallOptions()
	o.Procs = []int{16}
	f := o.Figure4()
	var qWBI, qCBL float64
	for _, s := range f.Series {
		y, ok := s.Y(16)
		if !ok {
			t.Fatalf("series %s missing point", s.Name)
		}
		switch s.Name {
		case "Q-WBI":
			qWBI = y
		case "Q-CBL":
			qCBL = y
		}
	}
	if qCBL >= qWBI {
		t.Fatalf("Q-CBL (%v) not faster than Q-WBI (%v) at 16 procs", qCBL, qWBI)
	}
}

func TestFigure6BCNotSlowerThanSC(t *testing.T) {
	o := smallOptions()
	o.Procs = []int{4, 8}
	f := o.Figure6()
	if len(f.Series) != 2 {
		t.Fatalf("Figure 6 has %d series", len(f.Series))
	}
	for _, x := range []float64{4, 8} {
		sc, _ := f.Series[0].Y(x)
		bc, _ := f.Series[1].Y(x)
		if bc > sc {
			t.Fatalf("BC (%v) slower than SC (%v) at %v procs", bc, sc, x)
		}
	}
}

func TestFigureByNumber(t *testing.T) {
	o := smallOptions()
	o.Procs = []int{2}
	o.Tasks = 8
	o.Episodes = 1
	for _, n := range []int{4, 5, 6, 7} {
		f, err := o.FigureByNumber(n)
		if err != nil {
			t.Fatalf("figure %d: %v", n, err)
		}
		if !strings.Contains(f.Name, "Figure") {
			t.Fatalf("figure %d name = %q", n, f.Name)
		}
		if f.Table() == "" || f.CSV() == "" {
			t.Fatal("empty rendering")
		}
	}
	if _, err := o.FigureByNumber(3); err == nil {
		t.Fatal("figure 3 accepted")
	}
}

func TestTable2SimShape(t *testing.T) {
	rows := smallOptions().Table2Sim(8, 10)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]Table2Measured{}
	for _, r := range rows {
		byName[r.Scheme] = r
		// Ten iterations with possibly one-iteration-stale reads
		// (buffered consistency) converge to ~1e-3; full convergence
		// is exercised in the workload package's solver tests.
		if r.Residual > 1e-2 {
			t.Fatalf("%s residual = %g", r.Scheme, r.Residual)
		}
	}
	// Shape: invalidation schemes move more blocks than read-update
	// (Table 2's read row dominates), and only they invalidate.
	if byName["read-update"].Blocks >= byName["inv-II"].Blocks {
		t.Fatalf("read-update blocks %v >= inv-II %v",
			byName["read-update"].Blocks, byName["inv-II"].Blocks)
	}
	if byName["read-update"].Invs != 0 {
		t.Fatal("read-update produced invalidations")
	}
	if byName["inv-I"].Invs == 0 && byName["inv-II"].Invs == 0 {
		t.Fatal("invalidation schemes produced no invalidations")
	}
	if byName["read-update"].Words == 0 {
		t.Fatal("read-update produced no word transfers (write-globals)")
	}
	out := FormatTable2Sim(8, 10, rows)
	if !strings.Contains(out, "read-update") || !strings.Contains(out, "inv-II") {
		t.Fatalf("format output: %q", out)
	}
}

func TestTable3SimShape(t *testing.T) {
	rows := smallOptions().Table3Sim(8)
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	get := func(s analytic.Scenario, scheme string) Table3Measured {
		for _, r := range rows {
			if r.Scenario == s && r.Scheme == scheme {
				return r
			}
		}
		t.Fatalf("missing %s/%s", s, scheme)
		return Table3Measured{}
	}
	// Serial CBL lock: exactly the model's 3 messages.
	if got := get(analytic.SerialLock, "CBL").Messages; got != 3 {
		t.Fatalf("serial CBL messages = %d, want 3", got)
	}
	// Parallel lock: CBL's message count is O(n), WBI's grows much
	// faster (the paper's O(n) vs O(n^2) claim).
	pc := get(analytic.ParallelLock, "CBL")
	pw := get(analytic.ParallelLock, "WBI")
	if pc.Messages >= pw.Messages {
		t.Fatalf("parallel CBL messages (%d) not below WBI (%d)", pc.Messages, pw.Messages)
	}
	if pc.Messages > 6*8 {
		t.Fatalf("parallel CBL messages = %d, want <= 6n = 48", pc.Messages)
	}
	// CBL barrier: 2 messages per processor, exactly as modeled.
	if got := get(analytic.BarrierRequest, "CBL").Messages; got != 2 {
		t.Fatalf("CBL barrier request per-proc messages = %d, want 2", got)
	}
	if got := get(analytic.BarrierNotify, "CBL").Messages; got != 16 {
		t.Fatalf("CBL barrier total messages = %d, want 2n = 16", got)
	}
	out := FormatTable3Sim(8, rows)
	if !strings.Contains(out, "parallel lock") {
		t.Fatalf("format output: %q", out)
	}
}

func TestParallelLockScalingIsLinearForCBL(t *testing.T) {
	o := smallOptions()
	m8 := func(rows []Table3Measured) uint64 {
		for _, r := range rows {
			if r.Scenario == analytic.ParallelLock && r.Scheme == "CBL" {
				return r.Messages
			}
		}
		return 0
	}
	a := m8(o.Table3Sim(4))
	b := m8(o.Table3Sim(16))
	// 4x the processors should cost ~4x the messages (not 16x).
	if b > a*6 {
		t.Fatalf("CBL parallel-lock messages grew superlinearly: %d -> %d", a, b)
	}
}

func TestUtilizationFigure(t *testing.T) {
	o := smallOptions()
	o.Procs = []int{2, 8}
	f := o.UtilizationFigure(64)
	if len(f.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(f.Series))
	}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Y <= 0 || p.Y > 100 {
				t.Fatalf("%s utilization %v%% out of range", s.Name, p.Y)
			}
		}
	}
	// More contention -> lower utilization for the hardware-lock machine,
	// whose waits are attributed to synchronization stall.
	for _, s := range f.Series {
		u2, _ := s.Y(2)
		u8, _ := s.Y(8)
		switch s.Name {
		case "Q-CBL":
			if u8 >= u2 {
				t.Fatalf("%s utilization did not drop with contention: %v -> %v", s.Name, u2, u8)
			}
		case "Q-backoff":
			// The paper's caveat (§5.2) made measurable: backoff
			// delays execute as local "computation", so the naive
			// utilization of the backoff machine *inflates* under
			// contention even as completion time worsens.
			if u8 <= u2 {
				t.Logf("note: backoff utilization did not inflate (%v -> %v); acceptable but unusual", u2, u8)
			}
		}
	}
}

func TestSerialLockLatencyNearModel(t *testing.T) {
	// Cross-validation: the measured serial-lock completion time should
	// land within a small factor of the paper's closed-form 3t_nw + t_D +
	// t_cs (the simulator adds the grant's memory read and cache access
	// costs the model folds into its constants).
	rows := smallOptions().Table3Sim(16)
	for _, r := range rows {
		if r.Scenario != analytic.SerialLock || r.Scheme != "CBL" {
			continue
		}
		model := r.Model.Time
		measured := float64(r.Cycles)
		if measured < model*0.5 || measured > model*2.5 {
			t.Fatalf("serial CBL lock: measured %v cycles vs model %v — shape broken", measured, model)
		}
		return
	}
	t.Fatal("serial CBL row missing")
}
