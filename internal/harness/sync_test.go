package harness

import (
	"testing"

	"ssmp/internal/litmus"
	"ssmp/internal/network"
	"ssmp/internal/workload"
)

func zooOptions() Options {
	return Options{
		Procs:    []int{4, 16, 32},
		Episodes: 6,
		Seed:     42,
		Params:   workload.DefaultParams(),
	}
}

// lastY returns the named series' final y value.
func lastY(t *testing.T, f Figure, name string) float64 {
	t.Helper()
	for _, s := range f.Series {
		if s.Name != name {
			continue
		}
		if len(s.Points) == 0 {
			t.Fatalf("%s: series %s is empty", f.Name, name)
		}
		return s.Points[len(s.Points)-1].Y
	}
	t.Fatalf("%s: no series %s", f.Name, name)
	return 0
}

// TestSyncZooFigureShowsSeparation pins the MCS flat-vs-queue separation in
// the harness output itself: at the sweep's largest machine the queue locks
// (mcs, cbl) must sit well below test-and-set in remote references per
// acquisition.
func TestSyncZooFigureShowsSeparation(t *testing.T) {
	rmr, _, err := zooOptions().SyncZooLockFigures()
	if err != nil {
		t.Fatal(err)
	}
	tas := lastY(t, rmr, "tas")
	mcs := lastY(t, rmr, "mcs")
	cbl := lastY(t, rmr, "cbl")
	t.Logf("rmr/acq at p=32: tas=%.2f mcs=%.2f cbl=%.2f", tas, mcs, cbl)
	if tas < 3*mcs {
		t.Errorf("tas (%.2f) does not separate from mcs (%.2f) in the figure", tas, mcs)
	}
	if tas < 3*cbl {
		t.Errorf("tas (%.2f) does not separate from cbl (%.2f) in the figure", tas, cbl)
	}
}

// TestSyncZooBarrierFigure checks the barrier sweep assembles a point for
// every algorithm at every processor count.
func TestSyncZooBarrierFigure(t *testing.T) {
	f, err := zooOptions().SyncZooBarrierFigure()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range f.Series {
		if len(s.Points) != len(zooOptions().Procs) {
			t.Errorf("series %s has %d points, want %d", s.Name, len(s.Points), len(zooOptions().Procs))
		}
	}
}

// TestSyncZooFiguresSurviveChaos runs the zoo sweep over a faulty
// interconnect: every witness must still hold (the transport makes faults
// invisible to the algorithms).
func TestSyncZooFiguresSurviveChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep is slow; skipped in -short")
	}
	o := zooOptions()
	o.Procs = []int{4, 8}
	o.Faults = network.FaultConfig{Seed: 7, Rates: litmus.DefaultChaosRates()}
	if _, _, err := o.SyncZooLockFigures(); err != nil {
		t.Fatal(err)
	}
	if _, err := o.SyncZooBarrierFigure(); err != nil {
		t.Fatal(err)
	}
}
