package harness

import (
	"fmt"

	"ssmp/internal/metrics"
	"ssmp/internal/synczoo"
)

// The synchronization-zoo sweeps are an extension beyond the paper's
// figures: every registered lock and barrier algorithm (software algorithms
// over the Table-1 primitives next to the paper's hardware CBL lock and
// barrier) runs the same contention workload across the processor sweep,
// and the results are scored in remote memory references per operation —
// the currency in which Mellor-Crummey & Scott's O(1)-remote-references
// claim for queue locks is stated. The RMR figure makes the claim visible:
// the mcs and cbl rows stay flat across the sweep while tas grows with the
// processor count.

// syncZooLockSweep runs the lock contention workload for every registered
// algorithm at every processor count and returns the points in
// (proc, algo) grid order.
func (o Options) syncZooLockSweep(iters int) ([]synczoo.LockPoint, error) {
	algos := synczoo.LockAlgos()
	pts := make([]synczoo.LockPoint, len(o.Procs)*len(algos))
	err := o.fan(len(pts), func(i int) error {
		n, algo := o.Procs[i/len(algos)], algos[i%len(algos)]
		pt, err := synczoo.RunLockBenchContext(o.context(), algo, synczoo.LockBenchOptions{
			Procs: n, Iters: iters, Crit: 16, Delay: 32, Faults: o.Faults,
		})
		if err != nil {
			return err
		}
		if !pt.Verified() {
			return &zooViolation{algo: algo.Key, procs: n, final: uint64(pt.Final), want: uint64(pt.Want)}
		}
		pts[i] = pt
		o.logf("  synczoo lock %s procs=%d: %.2f rmr/acq, %.2f acq/kcycle",
			algo.Key, n, pt.RMRPerAcq(), pt.AcqPerKCycle())
		return nil
	})
	return pts, err
}

type zooViolation struct {
	algo        string
	procs       int
	final, want uint64
}

func (v *zooViolation) Error() string {
	return fmt.Sprintf("harness: synczoo %s p=%d violated its witness (final %d, want %d)",
		v.algo, v.procs, v.final, v.want)
}

// SyncZooLockFigures reproduces the MCS separation as two figures over one
// sweep: remote memory references per acquisition, and acquisition
// throughput, against processor count for every lock algorithm in the zoo.
func (o Options) SyncZooLockFigures() (rmr Figure, throughput Figure, err error) {
	iters := o.Episodes
	if iters == 0 {
		iters = 8
	}
	pts, err := o.syncZooLockSweep(iters)
	if err != nil {
		return Figure{}, Figure{}, err
	}
	algos := synczoo.LockAlgos()
	rmrSeries := make([]*metrics.Series, len(algos))
	thrSeries := make([]*metrics.Series, len(algos))
	for i, algo := range algos {
		rmrSeries[i] = &metrics.Series{Name: algo.Key}
		thrSeries[i] = &metrics.Series{Name: algo.Key}
	}
	for i, pt := range pts {
		x := float64(o.Procs[i/len(algos)])
		rmrSeries[i%len(algos)].Add(x, pt.RMRPerAcq())
		thrSeries[i%len(algos)].Add(x, pt.AcqPerKCycle())
	}
	rmr = Figure{
		Name:   "SyncZoo-RMR",
		Title:  "remote memory references per lock acquisition (extension)",
		XLabel: "procs",
		Series: rmrSeries,
	}
	throughput = Figure{
		Name:   "SyncZoo-Throughput",
		Title:  "lock acquisitions per 1000 cycles (extension)",
		XLabel: "procs",
		Series: thrSeries,
	}
	return rmr, throughput, nil
}

// SyncZooBarrierFigure sweeps the barrier zoo: remote memory references per
// participant per episode against processor count.
func (o Options) SyncZooBarrierFigure() (Figure, error) {
	episodes := o.Episodes
	if episodes == 0 {
		episodes = 4
	}
	algos := synczoo.BarrierAlgos()
	pts := make([]synczoo.BarrierPoint, len(o.Procs)*len(algos))
	err := o.fan(len(pts), func(i int) error {
		n, algo := o.Procs[i/len(algos)], algos[i%len(algos)]
		pt, err := synczoo.RunBarrierBenchContext(o.context(), algo, synczoo.BarrierBenchOptions{
			Procs: n, Episodes: episodes, Work: 40, Faults: o.Faults,
		})
		if err != nil {
			return err
		}
		if !pt.Verified() {
			return &zooViolation{algo: algo.Key, procs: n}
		}
		pts[i] = pt
		o.logf("  synczoo barrier %s procs=%d: %.2f rmr/episode", algo.Key, n, pt.RMRPerEpisode())
		return nil
	})
	if err != nil {
		return Figure{}, err
	}
	series := make([]*metrics.Series, len(algos))
	for i, algo := range algos {
		series[i] = &metrics.Series{Name: algo.Key}
	}
	for i, pt := range pts {
		series[i%len(algos)].Add(float64(o.Procs[i/len(algos)]), pt.RMRPerEpisode())
	}
	return Figure{
		Name:   "SyncZoo-Barrier",
		Title:  "remote memory references per participant per barrier episode (extension)",
		XLabel: "procs",
		Series: series,
	}, nil
}
