// Package syncprim provides the synchronization algorithms used by the
// paper's evaluation, over the machine's hardware primitives:
//
//   - CBL locks: the hardware READ-LOCK/WRITE-LOCK/UNLOCK primitives of the
//     paper's machine (§4.3).
//   - Test-and-set spin locks on the WBI baseline, with busy-waiting on the
//     cached copy (Rudolph & Segall style), optionally with exponential
//     backoff — the paper's Q-WBI and Q-backoff configurations.
//   - A ticket lock (extension) for fairness comparisons.
//   - Barriers: the hardware barrier of the CBL machine, and a software
//     sense-reversing counter barrier for the WBI machine.
//   - A counting semaphore built on locks (the P/V operations named by the
//     buffered-consistency model).
//
// All algorithms are expressed against *core.Proc and are therefore
// simulated instruction by instruction, generating the coherence and
// synchronization traffic the paper measures.
package syncprim

import (
	"fmt"

	"ssmp/internal/core"
	"ssmp/internal/mem"
	"ssmp/internal/sim"
)

// spinRecheck is the modeled cost of one spin-loop iteration on a cached
// copy (load + test + branch). Spinners re-check at this granularity.
const spinRecheck = sim.Time(8)

// Locker is a mutual-exclusion lock usable from a processor program.
type Locker interface {
	// Acquire blocks until the calling processor holds the lock.
	Acquire(p *core.Proc)
	// Release releases the lock.
	Release(p *core.Proc)
	// Name identifies the algorithm in reports.
	Name() string
}

// CBLLock is the hardware cache-based lock in exclusive mode.
type CBLLock struct {
	// Addr names the lock's memory block; the protected data may share
	// the block (the grant carries it).
	Addr mem.Addr
}

// Acquire issues WRITE-LOCK.
func (l CBLLock) Acquire(p *core.Proc) { p.WriteLock(l.Addr) }

// Release issues UNLOCK (a CP-Synch operation: the write buffer flushes
// first).
func (l CBLLock) Release(p *core.Proc) { p.Unlock(l.Addr) }

// Name identifies the algorithm.
func (l CBLLock) Name() string { return "CBL" }

// CBLReadLock acquires the same hardware lock in shared mode.
type CBLReadLock struct {
	Addr mem.Addr
}

// Acquire issues READ-LOCK.
func (l CBLReadLock) Acquire(p *core.Proc) { p.ReadLock(l.Addr) }

// Release issues UNLOCK.
func (l CBLReadLock) Release(p *core.Proc) { p.Unlock(l.Addr) }

// Name identifies the algorithm.
func (l CBLReadLock) Name() string { return "CBL-read" }

// TestAndSetLock is the WBI software baseline: an atomic test-and-set with
// busy-waiting on the cached copy. When the holder releases, every
// spinner's copy is invalidated, causing the re-read and re-acquire storm
// of the paper's Figures 4 and 5.
type TestAndSetLock struct {
	Addr mem.Addr
}

// Acquire spins until the test-and-set succeeds.
func (l TestAndSetLock) Acquire(p *core.Proc) {
	for {
		if old := p.RMW(l.Addr, setOne); old == 0 {
			return
		}
		// Busy-wait on the cached copy until it is invalidated by the
		// release (or another acquirer).
		for p.Read(l.Addr) != 0 {
			p.Think(spinRecheck)
		}
	}
}

// Release clears the lock word, invalidating every spinner.
func (l TestAndSetLock) Release(p *core.Proc) { p.Write(l.Addr, 0) }

// Name identifies the algorithm.
func (l TestAndSetLock) Name() string { return "WBI-ts" }

func setOne(mem.Word) mem.Word { return 1 }

// BackoffLock is test-and-set with bounded exponential backoff between
// attempts (the paper's Q-backoff configuration).
type BackoffLock struct {
	Addr mem.Addr
	// Base and Max bound the backoff delay in cycles; zero values default
	// to 16 and 1024.
	Base, Max sim.Time
}

// Acquire spins with exponential backoff.
func (l BackoffLock) Acquire(p *core.Proc) {
	base, max := l.Base, l.Max
	if base == 0 {
		base = 16
	}
	if max == 0 {
		max = 1024
	}
	delay := base
	for {
		if old := p.RMW(l.Addr, setOne); old == 0 {
			return
		}
		p.Think(delay)
		if delay < max {
			delay *= 2
			if delay > max {
				delay = max
			}
		}
	}
}

// Release clears the lock word.
func (l BackoffLock) Release(p *core.Proc) { p.Write(l.Addr, 0) }

// Name identifies the algorithm.
func (l BackoffLock) Name() string { return "WBI-backoff" }

// TicketLock is a fair FIFO spin lock (extension beyond the paper's
// baselines): fetch-and-increment a ticket counter, spin on the now-serving
// word.
type TicketLock struct {
	// TicketAddr and ServingAddr must be words of *different* blocks so
	// ticket fetches do not invalidate spinners.
	TicketAddr, ServingAddr mem.Addr
}

// Acquire takes a ticket and waits for service.
func (l TicketLock) Acquire(p *core.Proc) {
	ticket := p.RMW(l.TicketAddr, func(w mem.Word) mem.Word { return w + 1 })
	for p.Read(l.ServingAddr) != ticket {
		p.Think(spinRecheck)
	}
}

// Release advances the serving counter.
func (l TicketLock) Release(p *core.Proc) {
	p.Write(l.ServingAddr, p.Read(l.ServingAddr)+1)
}

// Name identifies the algorithm.
func (l TicketLock) Name() string { return "WBI-ticket" }

// Barrier synchronizes a fixed set of participants.
type Barrier interface {
	// Wait blocks until every participant has arrived.
	Wait(p *core.Proc)
	// Name identifies the algorithm.
	Name() string
}

// HWBarrier is the CBL machine's hardware barrier (Table 3).
type HWBarrier struct {
	Addr         mem.Addr
	Participants int
}

// Wait arrives at the hardware barrier (a CP-Synch operation).
func (b HWBarrier) Wait(p *core.Proc) { p.Barrier(b.Addr, b.Participants) }

// Name identifies the algorithm.
func (b HWBarrier) Name() string { return "HW-barrier" }

// SWBarrier is a software sense-reversing central-counter barrier for the
// WBI machine: fetch-and-increment the count; the last arriver resets the
// count and bumps the generation word; everyone else spins on the
// generation.
type SWBarrier struct {
	// CountAddr and GenAddr must be words of different blocks.
	CountAddr, GenAddr mem.Addr
	Participants       int
}

// Wait arrives at the software barrier.
func (b SWBarrier) Wait(p *core.Proc) {
	if b.Participants < 1 {
		panic(fmt.Sprintf("syncprim: barrier participants = %d", b.Participants))
	}
	gen := p.Read(b.GenAddr)
	old := p.RMW(b.CountAddr, func(w mem.Word) mem.Word { return w + 1 })
	if int(old) == b.Participants-1 {
		p.Write(b.CountAddr, 0)
		p.Write(b.GenAddr, gen+1)
		return
	}
	for p.Read(b.GenAddr) == gen {
		p.Think(spinRecheck)
	}
}

// Name identifies the algorithm.
func (b SWBarrier) Name() string { return "SW-barrier" }

// Semaphore is a counting semaphore built on a Locker (the P and V
// operations of the buffered-consistency model: P is NP-Synch, V is
// CP-Synch — properties inherited from the underlying lock's acquire and
// release).
//
// On the CBL machine, CountAddr MUST lie in the lock's memory block: the
// lock grant then carries the count, and the holder's reads and writes hit
// the lock cache (the paper's §4.3 colocation rule — "when the size of the
// data structure to be governed by a lock fits within a memory block,
// acquiring the lock brings the associated data structure to the requesting
// processor"). With the count in a different block, plain READ/WRITE are
// private cache operations and each node would see its own stale copy.
// NewCBLSemaphore builds a correctly colocated instance. The WBI machine's
// coherent reads and writes have no such constraint.
type Semaphore struct {
	// CountAddr holds the semaphore's value.
	CountAddr mem.Addr
	// Lock guards the count.
	Lock Locker
	// PollDelay is the wait between availability checks (default 32).
	PollDelay sim.Time
}

// NewCBLSemaphore returns a semaphore for the CBL machine whose count is
// word 0 of the lock's own block, per the colocation rule above.
func NewCBLSemaphore(blockAddr mem.Addr) Semaphore {
	return Semaphore{CountAddr: blockAddr, Lock: CBLLock{Addr: blockAddr}}
}

// P decrements the semaphore, blocking while it is zero.
func (s Semaphore) P(p *core.Proc) {
	delay := s.PollDelay
	if delay == 0 {
		delay = 32
	}
	for {
		s.Lock.Acquire(p)
		v := p.Read(s.CountAddr)
		if v > 0 {
			p.Write(s.CountAddr, v-1)
			s.Lock.Release(p)
			return
		}
		s.Lock.Release(p)
		p.Think(delay)
	}
}

// V increments the semaphore.
func (s Semaphore) V(p *core.Proc) {
	s.Lock.Acquire(p)
	p.Write(s.CountAddr, p.Read(s.CountAddr)+1)
	s.Lock.Release(p)
}

// Region associates a lock with a shared data structure spanning several
// memory blocks — the case §4.3 assigns to the compiler: "If the data
// structure spans several memory blocks, it is the responsibility of the
// compiler to associate locks and regulate accesses to the shared data
// structure." Loads under the lock use READ-GLOBAL (the previous holder's
// release published its stores, so memory is current); stores use
// WRITE-GLOBAL and are published by the release, which on the CBL machine
// is a CP-Synch unlock that flushes the write buffer first.
type Region struct {
	// Lock guards the region.
	Lock Locker
	// Base is the region's first word; Words its length.
	Base  mem.Addr
	Words int
}

// Acquire takes the region's lock.
func (r Region) Acquire(p *core.Proc) { r.Lock.Acquire(p) }

// Release publishes the holder's stores and releases the lock.
func (r Region) Release(p *core.Proc) { r.Lock.Release(p) }

func (r Region) addr(i int) mem.Addr {
	if i < 0 || i >= r.Words {
		panic(fmt.Sprintf("syncprim: region index %d out of [0,%d)", i, r.Words))
	}
	return r.Base + mem.Addr(i)
}

// Load reads word i of the region; the caller must hold the lock.
func (r Region) Load(p *core.Proc, i int) mem.Word {
	return p.ReadGlobal(r.addr(i))
}

// Store writes word i of the region; the caller must hold the lock in
// exclusive mode. The write is globally performed no later than Release.
func (r Region) Store(p *core.Proc, i int, w mem.Word) {
	p.WriteGlobal(r.addr(i), w)
}

// MCSLock is a software queue lock (Mellor-Crummey & Scott) for the WBI
// machine — an extension beyond the paper, included because it is the
// software analogue of the paper's hardware CBL queue: waiters form a
// linked list and each spins on its *own* flag word, so a release
// invalidates exactly one cache. Comparing MCS with CBL and test-and-set
// shows how much of CBL's win is the queueing discipline (which software
// can replicate) versus the merged data transfer and hardware handoff
// (which it cannot).
//
// Layout: TailAddr holds the queue tail (a node id + 1; 0 = free).
// NodeBase is an array of per-processor queue nodes, one block per
// processor: word 0 = next (node id + 1), word 1 = locked flag.
type MCSLock struct {
	TailAddr mem.Addr
	NodeBase mem.Addr
	// BlockWords is the machine's block size (nodes are padded to block
	// boundaries so spinning stays node-local). Defaults to 4.
	BlockWords int
}

func (l MCSLock) node(id int) mem.Addr {
	bw := l.BlockWords
	if bw == 0 {
		bw = 4
	}
	return l.NodeBase + mem.Addr(id*bw)
}

// Acquire enqueues the caller and spins on its own flag.
func (l MCSLock) Acquire(p *core.Proc) {
	me := p.Id()
	my := l.node(me)
	p.Write(my+0, 0) // next = nil
	p.Write(my+1, 1) // locked = true (cleared by predecessor)
	// Swap ourselves in as the tail.
	pred := p.RMW(l.TailAddr, func(mem.Word) mem.Word { return mem.Word(me + 1) })
	if pred == 0 {
		return // lock was free
	}
	// Link behind the predecessor and spin locally.
	p.Write(l.node(int(pred-1))+0, mem.Word(me+1))
	for p.Read(my+1) != 0 {
		p.Think(spinRecheck)
	}
}

// Release hands the lock to the successor, or frees it if none.
func (l MCSLock) Release(p *core.Proc) {
	me := p.Id()
	my := l.node(me)
	if p.Read(my+0) == 0 {
		// No known successor: try to swing the tail back to free.
		old := p.RMW(l.TailAddr, func(w mem.Word) mem.Word {
			if w == mem.Word(me+1) {
				return 0
			}
			return w
		})
		if old == mem.Word(me+1) {
			return // freed
		}
		// A successor is mid-enqueue: wait for the link.
		for p.Read(my+0) == 0 {
			p.Think(spinRecheck)
		}
	}
	succ := int(p.Read(my+0) - 1)
	p.Write(l.node(succ)+1, 0) // release exactly one spinner
}

// Name identifies the algorithm.
func (l MCSLock) Name() string { return "WBI-mcs" }
