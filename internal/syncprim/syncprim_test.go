package syncprim

import (
	"sort"
	"testing"

	"ssmp/internal/core"
	"ssmp/internal/sim"
)

// spanSet records critical-section occupancy as intervals of simulated time.
// The core machine batches purely local delays (Think does not yield to the
// event loop), so host-side counters bracketing a Think cannot observe
// concurrency between programs; overlap in simulated time is the observable
// that matters, and it is what these primitives guarantee bounds on.
type spanSet struct {
	spans [][2]sim.Time
}

func (s *spanSet) add(start, end sim.Time) {
	s.spans = append(s.spans, [2]sim.Time{start, end})
}

// maxOverlap returns the maximum number of recorded intervals covering any
// simulated instant. Touching endpoints (one interval ending exactly where
// another starts) do not count as overlap.
func (s *spanSet) maxOverlap() int {
	type edge struct {
		t     sim.Time
		delta int
	}
	edges := make([]edge, 0, 2*len(s.spans))
	for _, sp := range s.spans {
		edges = append(edges, edge{sp[0], 1}, edge{sp[1], -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].delta < edges[j].delta
	})
	cur, max := 0, 0
	for _, e := range edges {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

func machine(t testing.TB, proto core.Protocol, nodes int) *core.Machine {
	t.Helper()
	cfg := core.DefaultConfig(nodes)
	cfg.Protocol = proto
	cfg.CacheSets = 16
	return core.NewMachine(cfg)
}

// exerciseLock runs n processors through timed critical sections and checks
// mutual exclusion (no two sections overlap in simulated time) and progress.
func exerciseLock(t *testing.T, proto core.Protocol, mk func() Locker, nodes, iters int) {
	t.Helper()
	m := machine(t, proto, nodes)
	var held spanSet
	total := 0
	progs := make([]core.Program, nodes)
	for i := 0; i < nodes; i++ {
		progs[i] = func(p *core.Proc) {
			l := mk()
			for k := 0; k < iters; k++ {
				l.Acquire(p)
				start := p.Now()
				p.Think(10) // critical section work
				total++
				held.add(start, p.Now())
				l.Release(p)
				p.Think(5)
			}
		}
	}
	if _, err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	if n := held.maxOverlap(); n != 1 {
		t.Fatalf("%s: mutual exclusion violated: %d concurrent holders", mk().Name(), n)
	}
	if total != nodes*iters {
		t.Fatalf("%s: total = %d, want %d", mk().Name(), total, nodes*iters)
	}
}

func TestCBLLockMutualExclusion(t *testing.T) {
	exerciseLock(t, core.ProtoCBL, func() Locker { return CBLLock{Addr: 100} }, 8, 10)
}

func TestTestAndSetLockMutualExclusion(t *testing.T) {
	exerciseLock(t, core.ProtoWBI, func() Locker { return TestAndSetLock{Addr: 100} }, 8, 10)
}

func TestBackoffLockMutualExclusion(t *testing.T) {
	exerciseLock(t, core.ProtoWBI, func() Locker { return BackoffLock{Addr: 100} }, 8, 10)
}

func TestTicketLockMutualExclusion(t *testing.T) {
	exerciseLock(t, core.ProtoWBI, func() Locker {
		return TicketLock{TicketAddr: 100, ServingAddr: 200}
	}, 8, 10)
}

func TestTicketLockIsFIFO(t *testing.T) {
	m := machine(t, core.ProtoWBI, 4)
	l := TicketLock{TicketAddr: 100, ServingAddr: 200}
	var order []int
	progs := make([]core.Program, 4)
	for i := 0; i < 4; i++ {
		i := i
		progs[i] = func(p *core.Proc) {
			p.Think(sim.Time(i*50) + 1) // stagger arrivals well apart
			l.Acquire(p)
			order = append(order, i)
			p.Think(200) // hold long enough that all others queue
			l.Release(p)
		}
	}
	if _, err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	for i, n := range order {
		if n != i {
			t.Fatalf("ticket order = %v, want FIFO", order)
		}
	}
}

func TestBackoffReducesTrafficUnderContention(t *testing.T) {
	run := func(mk func() Locker) uint64 {
		m := machine(t, core.ProtoWBI, 16)
		progs := make([]core.Program, 16)
		for i := 0; i < 16; i++ {
			progs[i] = func(p *core.Proc) {
				l := mk()
				for k := 0; k < 5; k++ {
					l.Acquire(p)
					p.Think(50)
					l.Release(p)
				}
			}
		}
		if _, err := m.Run(progs); err != nil {
			t.Fatal(err)
		}
		return m.Messages().Total()
	}
	plain := run(func() Locker { return TestAndSetLock{Addr: 100} })
	backoff := run(func() Locker { return BackoffLock{Addr: 100} })
	if backoff >= plain {
		t.Fatalf("backoff traffic (%d) not below plain test-and-set (%d)", backoff, plain)
	}
}

func TestCBLFewerMessagesThanTestAndSetUnderContention(t *testing.T) {
	// The paper's core claim (Table 3): CBL locks generate O(n) messages
	// under contention versus O(n^2)-ish for WBI spin locks.
	runCBL := func() uint64 {
		m := machine(t, core.ProtoCBL, 16)
		progs := make([]core.Program, 16)
		for i := 0; i < 16; i++ {
			progs[i] = func(p *core.Proc) {
				l := CBLLock{Addr: 100}
				for k := 0; k < 5; k++ {
					l.Acquire(p)
					p.Think(50)
					l.Release(p)
				}
			}
		}
		if _, err := m.Run(progs); err != nil {
			t.Fatal(err)
		}
		return m.Messages().Total()
	}
	runTS := func() uint64 {
		m := machine(t, core.ProtoWBI, 16)
		progs := make([]core.Program, 16)
		for i := 0; i < 16; i++ {
			progs[i] = func(p *core.Proc) {
				l := TestAndSetLock{Addr: 100}
				for k := 0; k < 5; k++ {
					l.Acquire(p)
					p.Think(50)
					l.Release(p)
				}
			}
		}
		if _, err := m.Run(progs); err != nil {
			t.Fatal(err)
		}
		return m.Messages().Total()
	}
	cblMsgs, tsMsgs := runCBL(), runTS()
	if cblMsgs*2 >= tsMsgs {
		t.Fatalf("CBL messages (%d) not well below test-and-set (%d)", cblMsgs, tsMsgs)
	}
}

func exerciseBarrier(t *testing.T, proto core.Protocol, mk func(n int) Barrier, nodes, phases int) {
	t.Helper()
	m := machine(t, proto, nodes)
	phase := make([]int, nodes)
	progs := make([]core.Program, nodes)
	violated := false
	for i := 0; i < nodes; i++ {
		i := i
		progs[i] = func(p *core.Proc) {
			b := mk(nodes)
			for ph := 0; ph < phases; ph++ {
				p.Think(sim.Time((i*7+ph*13)%50) + 1) // skew arrivals
				phase[i] = ph
				b.Wait(p)
				// After the barrier, nobody may still be in an
				// earlier phase.
				for j := 0; j < nodes; j++ {
					if phase[j] < ph {
						violated = true
					}
				}
			}
		}
	}
	if _, err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	if violated {
		t.Fatalf("%s: barrier separation violated", mk(nodes).Name())
	}
}

func TestHWBarrierPhases(t *testing.T) {
	exerciseBarrier(t, core.ProtoCBL, func(n int) Barrier {
		return HWBarrier{Addr: 300, Participants: n}
	}, 8, 5)
}

func TestSWBarrierPhases(t *testing.T) {
	exerciseBarrier(t, core.ProtoWBI, func(n int) Barrier {
		return SWBarrier{CountAddr: 300, GenAddr: 400, Participants: n}
	}, 8, 5)
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	m := machine(t, core.ProtoCBL, 8)
	sem := NewCBLSemaphore(100) // count colocated with the lock block
	m.WriteMemory(100, 3)       // 3 permits
	var held spanSet
	progs := make([]core.Program, 8)
	for i := 0; i < 8; i++ {
		progs[i] = func(p *core.Proc) {
			for k := 0; k < 4; k++ {
				sem.P(p)
				start := p.Now()
				p.Think(30)
				held.add(start, p.Now())
				sem.V(p)
			}
		}
	}
	if _, err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	n := held.maxOverlap()
	if n > 3 {
		t.Fatalf("semaphore admitted %d concurrent holders, limit 3", n)
	}
	if n < 2 {
		t.Fatalf("semaphore never reached concurrency (max %d); test too weak", n)
	}
	if got := m.ReadMemory(100); got != 3 {
		t.Fatalf("final permits = %d, want 3", got)
	}
}

func TestCBLReadLockAllowsConcurrentReaders(t *testing.T) {
	m := machine(t, core.ProtoCBL, 8)
	var held spanSet
	progs := make([]core.Program, 8)
	for i := 0; i < 8; i++ {
		progs[i] = func(p *core.Proc) {
			l := CBLReadLock{Addr: 100}
			l.Acquire(p)
			start := p.Now()
			p.Think(100)
			held.add(start, p.Now())
			l.Release(p)
		}
	}
	if _, err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	if n := held.maxOverlap(); n < 2 {
		t.Fatalf("read lock admitted only %d concurrent readers", n)
	}
}

func TestSemaphoreBinaryIsStrict(t *testing.T) {
	// With one permit, the semaphore is a mutex; any stale-count bug
	// (e.g. the count cached privately per node) admits two holders.
	m := machine(t, core.ProtoCBL, 8)
	sem := NewCBLSemaphore(100)
	m.WriteMemory(100, 1)
	var held spanSet
	progs := make([]core.Program, 8)
	for i := 0; i < 8; i++ {
		progs[i] = func(p *core.Proc) {
			for k := 0; k < 5; k++ {
				sem.P(p)
				start := p.Now()
				p.Think(25)
				held.add(start, p.Now())
				sem.V(p)
			}
		}
	}
	if _, err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	if n := held.maxOverlap(); n != 1 {
		t.Fatalf("binary semaphore admitted %d holders", n)
	}
	if got := m.ReadMemory(100); got != 1 {
		t.Fatalf("final permits = %d, want 1", got)
	}
}

func TestSemaphoreOnWBIWithSeparateBlocks(t *testing.T) {
	// The WBI machine's coherent accesses allow the count in any block.
	m := machine(t, core.ProtoWBI, 4)
	sem := Semaphore{CountAddr: 200, Lock: TestAndSetLock{Addr: 100}}
	m.WriteMemory(200, 2)
	var held spanSet
	bar := SWBarrier{CountAddr: 300, GenAddr: 400, Participants: 4}
	var finalPermits uint64
	progs := make([]core.Program, 4)
	for i := 0; i < 4; i++ {
		i := i
		progs[i] = func(p *core.Proc) {
			for k := 0; k < 4; k++ {
				sem.P(p)
				start := p.Now()
				p.Think(25)
				held.add(start, p.Now())
				sem.V(p)
			}
			bar.Wait(p)
			if i == 0 {
				// A coherent read inside the run sees the current
				// value even while another cache owns the line.
				finalPermits = uint64(p.Read(200))
			}
		}
	}
	if _, err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	if n := held.maxOverlap(); n > 2 {
		t.Fatalf("semaphore admitted %d holders, limit 2", n)
	}
	if finalPermits != 2 {
		t.Fatalf("final permits = %d, want 2", finalPermits)
	}
}

func TestRegionAtomicMultiBlockUpdate(t *testing.T) {
	// A 12-word record spans three 4-word blocks. Writers increment every
	// word under the region lock; readers under the lock must always see
	// a uniform vector — a torn (partially published) update would show
	// mixed values.
	for _, proto := range []core.Protocol{core.ProtoCBL, core.ProtoWBI} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			m := machine(t, proto, 8)
			var lock Locker = CBLLock{Addr: 1000}
			if proto == core.ProtoWBI {
				lock = TestAndSetLock{Addr: 1000}
			}
			reg := Region{Lock: lock, Base: 2000, Words: 12}
			torn := false
			progs := make([]core.Program, 8)
			for i := 0; i < 8; i++ {
				i := i
				progs[i] = func(p *core.Proc) {
					for k := 0; k < 6; k++ {
						reg.Acquire(p)
						if i < 4 {
							// Writer: increment all words.
							v := reg.Load(p, 0)
							for w := 0; w < reg.Words; w++ {
								reg.Store(p, w, v+1)
							}
						} else {
							// Reader: check uniformity.
							v := reg.Load(p, 0)
							for w := 1; w < reg.Words; w++ {
								if reg.Load(p, w) != v {
									torn = true
								}
							}
						}
						reg.Release(p)
					}
				}
			}
			if _, err := m.Run(progs); err != nil {
				t.Fatal(err)
			}
			if torn {
				t.Fatal("reader observed a torn multi-block update")
			}
			// All 24 writer sections happened: final value is 24.
			if got := m.ReadMemory(2000); proto == core.ProtoCBL && got != 24 {
				t.Fatalf("final region word = %d, want 24", got)
			}
		})
	}
}

func TestRegionBoundsPanic(t *testing.T) {
	m := machine(t, core.ProtoCBL, 2)
	reg := Region{Lock: CBLLock{Addr: 1000}, Base: 2000, Words: 4}
	progs := make([]core.Program, 2)
	progs[0] = func(p *core.Proc) {
		reg.Acquire(p)
		defer reg.Release(p)
		reg.Load(p, 4) // out of bounds
	}
	if _, err := m.Run(progs); err == nil {
		t.Fatal("out-of-bounds region access did not surface")
	}
}

func TestMCSLockMutualExclusion(t *testing.T) {
	exerciseLock(t, core.ProtoWBI, func() Locker {
		return MCSLock{TailAddr: 100, NodeBase: 2048}
	}, 8, 10)
}

func TestMCSLockIsFIFO(t *testing.T) {
	m := machine(t, core.ProtoWBI, 4)
	l := MCSLock{TailAddr: 100, NodeBase: 2048}
	var order []int
	progs := make([]core.Program, 4)
	for i := 0; i < 4; i++ {
		i := i
		progs[i] = func(p *core.Proc) {
			p.Think(sim.Time(i*60) + 1) // stagger arrivals well apart
			l.Acquire(p)
			order = append(order, i)
			p.Think(300)
			l.Release(p)
		}
	}
	if _, err := m.Run(progs); err != nil {
		t.Fatal(err)
	}
	for i, n := range order {
		if n != i {
			t.Fatalf("MCS order = %v, want FIFO", order)
		}
	}
}

func TestMCSBeatsTestAndSetUnderContention(t *testing.T) {
	// Local spinning: an MCS release invalidates one cache, not all of
	// them, so contention traffic is far below test-and-set.
	run := func(mk func() Locker) uint64 {
		m := machine(t, core.ProtoWBI, 16)
		progs := make([]core.Program, 16)
		for i := 0; i < 16; i++ {
			progs[i] = func(p *core.Proc) {
				l := mk()
				for k := 0; k < 5; k++ {
					l.Acquire(p)
					p.Think(50)
					l.Release(p)
				}
			}
		}
		if _, err := m.Run(progs); err != nil {
			t.Fatal(err)
		}
		return m.Messages().Total()
	}
	mcs := run(func() Locker { return MCSLock{TailAddr: 100, NodeBase: 2048} })
	ts := run(func() Locker { return TestAndSetLock{Addr: 100} })
	// MCS pays coherent node-setup writes per acquisition, so the win is
	// ~1.7x here rather than an order of magnitude; the complexity-class
	// difference shows in the scaling test below.
	if mcs*5 >= ts*4 {
		t.Fatalf("MCS messages (%d) not clearly below test-and-set (%d)", mcs, ts)
	}
}

func TestMCSVersusCBLMessages(t *testing.T) {
	// The hardware queue still wins: the grant carries the protected data
	// and the queue is maintained by the directory, not by extra atomic
	// operations. But MCS must land in the same complexity class (O(n)).
	runMCS := func(procs int) uint64 {
		m := machine(t, core.ProtoWBI, procs)
		l := MCSLock{TailAddr: 100, NodeBase: 2048}
		progs := make([]core.Program, procs)
		for i := 0; i < procs; i++ {
			progs[i] = func(p *core.Proc) {
				l.Acquire(p)
				p.Think(50)
				l.Release(p)
			}
		}
		if _, err := m.Run(progs); err != nil {
			t.Fatal(err)
		}
		return m.Messages().Total()
	}
	m8, m16 := runMCS(8), runMCS(16)
	// O(n): doubling processors should not quadruple messages.
	if m16 > m8*3 {
		t.Fatalf("MCS messages grew superlinearly: %d -> %d", m8, m16)
	}
}
