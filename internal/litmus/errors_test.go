package litmus

// Error-path and API-surface tests: spec validation, outcome
// canonicalization, the axiomatic enumerator wrapper, single-run entry
// points, corpus lookup, and violation explanation.

import (
	"strings"
	"testing"
)

// simpleTest is a two-proc message-passing skeleton used as a valid base.
func simpleTest() *Test {
	return &Test{
		Name: "mp",
		Procs: [][]Stmt{
			{{Op: "write-global", Loc: "x", Val: 1}, {Op: "write-global", Loc: "y", Val: 1}},
			{{Op: "read", Loc: "y"}, {Op: "read", Loc: "x"}},
		},
	}
}

// TestCompileRejections walks every validation error in compile and canon:
// each bad test must fail with a message naming the problem.
func TestCompileRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Test)
		want string
	}{
		{"no name", func(c *Test) { c.Name = "" }, "needs a name"},
		{"no procs", func(c *Test) { c.Procs = nil }, "need 1-8 procs"},
		{"too many procs", func(c *Test) {
			for len(c.Procs) <= 8 {
				c.Procs = append(c.Procs, []Stmt{{Op: "read", Loc: "x"}})
			}
		}, "need 1-8 procs"},
		{"unknown op", func(c *Test) { c.Procs[0][0].Op = "swizzle" }, `unknown op "swizzle"`},
		{"barrier without name", func(c *Test) {
			c.Procs[0] = append(c.Procs[0], Stmt{Op: "barrier"})
			c.Procs[1] = append(c.Procs[1], Stmt{Op: "barrier"})
		}, "barrier needs a name"},
		{"missing loc", func(c *Test) { c.Procs[0][0].Loc = "" }, "needs a loc"},
		{"word out of block", func(c *Test) {
			c.Locations = map[string]LocSpec{"x": {Block: 0, Word: machineBlockWords}}
		}, "outside block"},
		{"negative block", func(c *Test) {
			c.Locations = map[string]LocSpec{"x": {Block: -1}}
		}, "outside [0,"},
		{"block collides with barriers", func(c *Test) {
			c.Locations = map[string]LocSpec{"x": {Block: barrierBlockBase}}
		}, "outside [0,"},
		{"too many blocks", func(c *Test) {
			for i := 0; i < 17; i++ {
				c.Init = map[string]uint64{}
				for j := 0; j < 17; j++ {
					c.Init[strings.Repeat("v", j+1)] = 0
				}
			}
		}, "blocks (max 16)"},
		{"coinciding locations", func(c *Test) {
			c.Locations = map[string]LocSpec{"x": {Block: 1}, "y": {Block: 1}}
		}, "coincide"},
		{"register reuse", func(c *Test) {
			c.Procs[1][0].Reg = "r"
			c.Procs[1][1].Reg = "r"
		}, "reuses register"},
		{"register on write", func(c *Test) { c.Procs[0][0].Reg = "r9" }, "does not fill a register"},
		{"unbalanced lock", func(c *Test) {
			c.Procs[0] = append(c.Procs[0], Stmt{Op: "unlock", Loc: "l"})
		}, "litmus mp:"},
		{"assert bad token", func(c *Test) { c.MustAllow = []string{"nonsense"} }, "bad token"},
		{"assert bad value", func(c *Test) { c.MustAllow = []string{"P1:r0=ab P1:r1=0"} }, "bad value"},
		{"assert duplicate token", func(c *Test) {
			c.MustAllow = []string{"P1:r0=1 P1:r0=2"}
		}, "duplicate token"},
		{"assert missing register", func(c *Test) { c.MustAllow = []string{"P1:r0=1"} }, "missing P1:r1"},
		{"assert missing observed", func(c *Test) {
			c.Observe = []string{"x"}
			c.MustAllow = []string{"P1:r0=1 P1:r1=1"}
		}, "missing x"},
		{"assert extra token", func(c *Test) {
			c.MustAllow = []string{"P1:r0=1 P1:r1=1 q=3"}
		}, "test has 2"},
		{"must_forbid malformed", func(c *Test) { c.MustForbid = []string{"=1"} }, "must_forbid[0]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := simpleTest()
			tc.mut(c)
			_, _, err := c.Enumerate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestEnumerateWitnesses checks the exported enumerator wrapper: the
// message-passing test's allowed set is non-empty, every outcome carries a
// witness trace, and the stale read r0=1,r1=0 is admitted (BC allows it —
// the write buffer can hold x past y's update).
func TestEnumerateWitnesses(t *testing.T) {
	allowed, states, err := simpleTest().Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if states <= 0 || len(allowed) == 0 {
		t.Fatalf("empty enumeration: %d states, %d outcomes", states, len(allowed))
	}
	for out, wit := range allowed {
		if len(wit) == 0 {
			t.Fatalf("outcome %q has no witness", out)
		}
	}
	if _, ok := allowed["P1:r0=1 P1:r1=1"]; !ok {
		t.Fatalf("in-order outcome missing from allowed set: %v", allowed)
	}
}

// TestRunSimSingle runs one simulator execution through the exported entry
// point and checks the canonical outcome shape against the allowed set.
func TestRunSimSingle(t *testing.T) {
	tt := simpleTest()
	out, err := tt.RunSim(0)
	if err != nil {
		t.Fatal(err)
	}
	allowed, _, err := tt.Enumerate()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := allowed[out]; !ok {
		t.Fatalf("RunSim outcome %q not in allowed set %v", out, allowed)
	}
	// Compile failures surface through the same entry points.
	bad := simpleTest()
	bad.Name = ""
	if _, err := bad.RunSim(0); err == nil {
		t.Fatal("RunSim accepted an invalid test")
	}
	if _, _, err := bad.TraceSim(0); err == nil {
		t.Fatal("TraceSim accepted an invalid test")
	}
}

// TestLoadCorpus exercises corpus lookup by name, both arms.
func TestLoadCorpus(t *testing.T) {
	all, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("empty corpus")
	}
	got, err := Load(all[0].Name)
	if err != nil || got.Name != all[0].Name {
		t.Fatalf("Load(%q) = %v, %v", all[0].Name, got, err)
	}
	if _, err := Load("no-such-test"); err == nil || !strings.Contains(err.Error(), "no corpus test") {
		t.Fatalf("want lookup error, got %v", err)
	}
}

// TestSummaryFail checks the FAIL rendering arm of Report.Summary.
func TestSummaryFail(t *testing.T) {
	r := &Report{Name: "t", Violations: []string{"P0:r0=9"}}
	if s := r.Summary(); !strings.Contains(s, "FAIL") {
		t.Fatalf("summary of violating report lacks FAIL: %q", s)
	}
	if (&Report{Name: "t"}).Ok() != true {
		t.Fatal("empty report should be ok")
	}
}

// TestAssertFailuresReported checks the sweep's assertion arms: a
// must_allow outcome the model excludes and a must_forbid outcome it
// admits both surface as assertion failures, not violations.
func TestAssertFailuresReported(t *testing.T) {
	tt := simpleTest()
	tt.MustAllow = []string{"P1:r0=7 P1:r1=7"}  // never produced
	tt.MustForbid = []string{"P1:r0=1 P1:r1=1"} // always allowed
	rep, err := Run(tt, Seeds(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", rep.Violations)
	}
	if len(rep.AssertFailures) != 2 {
		t.Fatalf("want 2 assertion failures, got %v", rep.AssertFailures)
	}
	if rep.Ok() {
		t.Fatal("report with assertion failures must not be ok")
	}
	if !strings.Contains(rep.AssertFailures[0], "must_allow") ||
		!strings.Contains(rep.AssertFailures[1], "must_forbid") {
		t.Fatalf("assertion failures misattributed: %v", rep.AssertFailures)
	}
}

// TestExplainViolation renders an execution graph for an observed outcome
// and rejects outcomes the sweep never saw.
func TestExplainViolation(t *testing.T) {
	tt := simpleTest()
	rep, err := Run(tt, Seeds(4))
	if err != nil {
		t.Fatal(err)
	}
	var seen string
	for out := range rep.Observed {
		seen = out
		break
	}
	text, err := ExplainViolation(tt, rep, seen)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"seed", "allowed set", "execution graph"} {
		if !strings.Contains(text, want) {
			t.Fatalf("explanation missing %q:\n%s", want, text)
		}
	}
	if _, err := ExplainViolation(tt, rep, "P1:r0=42 P1:r1=42"); err == nil ||
		!strings.Contains(err.Error(), "was not observed") {
		t.Fatalf("want not-observed error, got %v", err)
	}
}

// TestFuzzStatsRates pins the throughput formatter, including the
// zero-elapsed guard.
func TestFuzzStatsRates(t *testing.T) {
	st := &FuzzStats{Tested: 10, States: 1000}
	if s := st.Rates(); !strings.Contains(s, "programs/sec") {
		t.Fatalf("bad rates string %q", s)
	}
}
