package litmus

import (
	"io/fs"
	"strings"
	"testing"
)

// TestCorpus cross-validates every embedded litmus test: the axiomatic
// enumerator provides the allowed set, the jittered simulator provides
// observations, and the two must agree per the test's assertions.
func TestCorpus(t *testing.T) {
	tests, err := Corpus()
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	if len(tests) < 10 {
		t.Fatalf("corpus has %d tests, want >= 10", len(tests))
	}
	seeds := Seeds(64)
	if testing.Short() {
		seeds = Seeds(8)
	}
	for _, lt := range tests {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			t.Parallel()
			rep, err := Run(lt, seeds)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !rep.Ok() {
				t.Fatalf("report not ok:\n%s", rep.Summary())
			}
			t.Log(rep.Summary())
		})
	}
}

// TestCorpusNamesMatchFiles makes sure the name field inside each JSON
// file agrees with its file name, so ssmplitmus run <name> finds it.
func TestCorpusNamesMatchFiles(t *testing.T) {
	entries, err := fs.ReadDir(corpusFS, "testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		want := strings.TrimSuffix(e.Name(), ".json")
		lt, err := Load(want)
		if err != nil {
			t.Errorf("file %s declares a name other than %q: %v", e.Name(), want, err)
			continue
		}
		if lt.Doc == "" {
			t.Errorf("test %s has no doc", want)
		}
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","procs":[[{"op":"read","loc":"x","bogus":1}]]}`))
	if err == nil {
		t.Fatal("expected error for unknown field")
	}
}

func TestParseRejectsBadOp(t *testing.T) {
	_, err := Parse([]byte(`{"name":"x","procs":[[{"op":"cas","loc":"x"}]]}`))
	if err == nil || !strings.Contains(err.Error(), "op") {
		t.Fatalf("expected op error, got %v", err)
	}
}

// TestCanonNormalizesAssertionOrder checks that must_allow strings written
// in any token order match the canonical formatting of outcomes.
func TestCanonNormalizesAssertionOrder(t *testing.T) {
	src := []byte(`{
		"name": "swap",
		"procs": [
			[{"op": "write-global", "loc": "x", "val": 1},
			 {"op": "flush"},
			 {"op": "read-global", "loc": "y"}],
			[{"op": "read-global", "loc": "x"}]
		],
		"must_allow": ["P1:r0=1 P0:r0=0"]
	}`)
	lt, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rep, err := Run(lt, Seeds(4))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !rep.Ok() {
		t.Fatalf("out-of-order assertion should normalize and pass:\n%s", rep.Summary())
	}
}

// TestViolationIsDetected feeds the runner a deliberately wrong must_forbid
// (an outcome the machine provably produces) and checks it is flagged, and
// that the flagged outcome can be explained with an execution graph.
func TestViolationIsDetected(t *testing.T) {
	src := []byte(`{
		"name": "bad",
		"procs": [
			[{"op": "write-global", "loc": "x", "val": 1},
			 {"op": "flush"},
			 {"op": "read-global", "loc": "x"}]
		],
		"must_forbid": ["P0:r0=1"]
	}`)
	lt, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rep, err := Run(lt, Seeds(4))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Ok() {
		t.Fatal("expected assertion failure for impossible must_forbid")
	}
	if len(rep.AssertFailures) == 0 {
		t.Fatalf("expected AssertFailures, got: %s", rep.Summary())
	}
	msg, err := ExplainViolation(lt, rep, "P0:r0=1")
	if err != nil {
		t.Fatalf("ExplainViolation: %v", err)
	}
	if !strings.Contains(msg, "execution graph") {
		t.Errorf("explanation missing graph section:\n%s", msg)
	}
}
