package litmus

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestGenerateWellFormed checks that every generated candidate passes
// validation — the generator's structural discipline (balanced locks, no
// write under read-lock, all-proc barriers) is load-bearing for the fuzz
// loop, which treats compile errors as fatal.
func TestGenerateWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		lt := generate(rng, i)
		if _, err := lt.compile(); err != nil {
			t.Fatalf("candidate %d does not compile: %v\n%+v", i, err, lt.Procs)
		}
	}
}

// TestFuzzSmoke cross-validates a fixed batch of candidates and expects a
// clean run: the simulator never escapes the axiomatic allowed set.
func TestFuzzSmoke(t *testing.T) {
	count := 60
	if testing.Short() {
		count = 15
	}
	st, err := Fuzz(context.Background(), FuzzOptions{Rng: 1, Count: count, Seeds: Seeds(8), Log: t.Logf})
	if err != nil {
		t.Fatalf("fuzz: %v", err)
	}
	if st.Failure != nil {
		msg, _ := ExplainViolation(st.Failure.Shrunk, st.Failure.ShrunkReport, st.Failure.ShrunkReport.Violations[0])
		t.Fatalf("fuzz found a cross-validation violation:\n%s", msg)
	}
	if st.Tested == 0 {
		t.Fatalf("no candidates tested (skipped %d)", st.Skipped)
	}
	t.Logf("fuzz: %d tested, %d skipped in %s", st.Tested, st.Skipped, st.Elapsed.Round(time.Millisecond))
}

// TestFuzzBudgetStops bounds a budgeted run's wall clock.
func TestFuzzBudgetStops(t *testing.T) {
	start := time.Now()
	st, err := Fuzz(context.Background(), FuzzOptions{Rng: 2, Budget: 200 * time.Millisecond, Seeds: Seeds(4)})
	if err != nil {
		t.Fatalf("fuzz: %v", err)
	}
	if st.Failure != nil {
		t.Fatalf("unexpected violation: %+v", st.Failure.ShrunkReport)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("budgeted fuzz ran %s", el)
	}
}

// TestFuzzCancelStops checks that a cancelled context stops the run
// cleanly between candidates: no error, and stats reflect the truncation.
func TestFuzzCancelStops(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := Fuzz(ctx, FuzzOptions{Rng: 3, Count: 1000, Seeds: Seeds(4)})
	if err != nil {
		t.Fatalf("cancelled fuzz returned error: %v", err)
	}
	if st.Tested+st.Skipped != 0 {
		t.Fatalf("pre-cancelled fuzz still ran %d candidates", st.Tested+st.Skipped)
	}
	if st.Rates() == "" {
		t.Fatal("Rates() empty")
	}
}

// TestShrinkMinimizes drives the shrinker with a synthetic predicate — "a
// read-update of x is present" — and expects everything else stripped.
func TestShrinkMinimizes(t *testing.T) {
	src := &Test{
		Name: "shrinkme",
		Procs: [][]Stmt{
			{
				{Op: "write-global", Loc: "y", Val: 1},
				{Op: "read-update", Loc: "x"},
				{Op: "flush"},
				{Op: "write-lock", Loc: "l"},
				{Op: "write", Loc: "l", Val: 2},
				{Op: "unlock", Loc: "l"},
				{Op: "barrier", Loc: "b"},
			},
			{
				{Op: "read", Loc: "y"},
				{Op: "barrier", Loc: "b"},
			},
		},
	}
	hasReadUpdate := func(c *Test) bool {
		if _, err := c.compile(); err != nil {
			return false
		}
		for _, stmts := range c.Procs {
			for _, s := range stmts {
				if s.Op == "read-update" && s.Loc == "x" {
					return true
				}
			}
		}
		return false
	}
	got := shrink(src, hasReadUpdate)
	total := 0
	for _, stmts := range got.Procs {
		total += len(stmts)
	}
	if len(got.Procs) != 1 || total != 1 {
		t.Fatalf("shrink left %d procs, %d stmts: %+v", len(got.Procs), total, got.Procs)
	}
	if got.Procs[0][0].Op != "read-update" {
		t.Fatalf("shrink kept the wrong statement: %+v", got.Procs[0][0])
	}
	// The original must be untouched.
	if len(src.Procs) != 2 || len(src.Procs[0]) != 7 {
		t.Fatal("shrink mutated its input")
	}
}
