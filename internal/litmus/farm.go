package litmus

// The litmus farm: a bulk campaign over the fuzzer's generator that grows
// a persisted, deduplicated, axiom-tagged corpus instead of hunting for a
// single violation. Each candidate is cross-validated (machine vs. model),
// tagged with its axiom-coverage vector, shrunk while preserving that
// vector, and canonicalized under processor permutation and location/value
// renaming — the same symmetry the checker quotients by — so the campaign
// keeps one representative per behavioral equivalence class. Accepted
// tests pin their exact allowed set, letting CI replay detect model drift
// in either direction.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ssmp/internal/bccheck"
)

// FarmOptions configures a farm campaign.
type FarmOptions struct {
	// Rng seeds the campaign; candidate i derives its own generator state
	// from (Rng, i), so results are independent of worker count.
	Rng uint64
	// Count bounds the number of candidates when Budget is zero
	// (default 400).
	Count int
	// Budget bounds the wall-clock time; when set it overrides Count.
	Budget time.Duration
	// Workers is the number of concurrent candidate pipelines (default 4).
	Workers int
	// Seeds is the jitter sweep for cross-validation (default Seeds(16)).
	Seeds []uint64
	// Tuning is passed to the enumerator for cross-validation runs.
	Tuning bccheck.Tuning
	// MaxStates caps the strict enumeration of an accepted test (default
	// 20000): candidates beyond it are skipped so replaying the corpus
	// stays cheap. Coverage ablations are separately capped by
	// coverageMaxStates.
	MaxStates int
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// FarmStats summarizes a campaign.
type FarmStats struct {
	// Candidates counts programs generated.
	Candidates int
	// Skipped counts candidates abandoned at a state limit (strict run,
	// acceptance cap, or a coverage ablation).
	Skipped int
	// Uncovered counts candidates discarded for an empty coverage vector:
	// no §2 axiom is load-bearing for their allowed set.
	Uncovered int
	// Duplicates counts candidates whose canonical form was already
	// accepted.
	Duplicates int
	// Accepted is the number of surviving tests.
	Accepted int
	// States totals abstract states across strict enumerations.
	States int
	// Elapsed is the campaign wall-clock time.
	Elapsed time.Duration
	// Coverage counts accepted tests per axiom family.
	Coverage map[string]int
	// Failure is set when a candidate's simulator run escaped the
	// axiomatic allowed set — a soundness bug, reported shrunk.
	Failure *FuzzFailure
}

// Summary renders the campaign's one-line result.
func (st *FarmStats) Summary() string {
	var cov []string
	for _, ax := range Axioms {
		cov = append(cov, fmt.Sprintf("%s:%d", ax, st.Coverage[ax]))
	}
	return fmt.Sprintf("farm: %d candidates -> %d accepted (%d skipped, %d uncovered, %d duplicates) in %s; coverage %s",
		st.Candidates, st.Accepted, st.Skipped, st.Uncovered, st.Duplicates,
		st.Elapsed.Round(time.Millisecond), strings.Join(cov, " "))
}

// farmSeed derives candidate i's generator seed from the campaign seed
// with a splitmix64 step, so neighboring candidates are uncorrelated and
// the derivation is independent of worker scheduling.
func farmSeed(campaign uint64, i int) int64 {
	z := campaign + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Farm runs a campaign and returns the accepted corpus sorted by name.
// The corpus content is a pure function of (Rng, Count, Seeds, MaxStates):
// worker count and scheduling affect only throughput, and under a Budget
// only how many candidates are reached.
func Farm(ctx context.Context, o FarmOptions) (*FarmStats, []*Test, error) {
	seeds := o.Seeds
	if len(seeds) == 0 {
		seeds = Seeds(16)
	}
	count := o.Count
	if o.Budget == 0 && count == 0 {
		count = 400
	}
	maxStates := o.MaxStates
	if maxStates == 0 {
		maxStates = 20_000
	}
	workers := o.Workers
	if workers <= 0 {
		workers = 4
	}
	logf := o.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}

	start := time.Now()
	st := &FarmStats{Coverage: map[string]int{}}
	byKey := map[string]*Test{}
	var (
		mu      sync.Mutex
		next    atomic.Int64
		stop    atomic.Bool
		failIdx = -1
		runErr  error
	)
	fctx, cancel := context.WithCancel(ctx)
	defer cancel()

	fail := func(i int, f *FuzzFailure, err error) {
		mu.Lock()
		if err != nil && runErr == nil {
			runErr = err
		}
		if f != nil && (failIdx < 0 || i < failIdx) {
			failIdx, st.Failure = i, f
		}
		mu.Unlock()
		stop.Store(true)
		cancel()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() && fctx.Err() == nil {
				i := int(next.Add(1) - 1)
				if o.Budget > 0 {
					if time.Since(start) >= o.Budget {
						return
					}
				} else if i >= count {
					return
				}
				res := farmOne(i, o.Rng, seeds, o.Tuning, maxStates)
				mu.Lock()
				st.Candidates++
				st.States += res.states
				switch {
				case res.err != nil:
					mu.Unlock()
					fail(i, res.failure, res.err)
					continue
				case res.failure != nil:
					mu.Unlock()
					fail(i, res.failure, nil)
					continue
				case res.skipped:
					st.Skipped++
				case res.uncovered:
					st.Uncovered++
				case byKey[res.key] != nil:
					st.Duplicates++
				default:
					byKey[res.key] = res.test
					st.Accepted++
					for _, ax := range res.test.Coverage {
						st.Coverage[ax]++
					}
				}
				if st.Candidates%100 == 0 {
					logf("farm: %d candidates, %d accepted, %d dup, %s elapsed",
						st.Candidates, st.Accepted, st.Duplicates, time.Since(start).Round(time.Millisecond))
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	st.Elapsed = time.Since(start)

	if runErr != nil {
		return st, nil, runErr
	}
	tests := make([]*Test, 0, len(byKey))
	for _, t := range byKey {
		tests = append(tests, t)
	}
	sort.Slice(tests, func(i, j int) bool { return tests[i].Name < tests[j].Name })
	logf("%s", st.Summary())
	return st, tests, nil
}

// farmResult is one candidate's pipeline outcome.
type farmResult struct {
	test      *Test
	key       string
	states    int
	skipped   bool
	uncovered bool
	failure   *FuzzFailure
	err       error
}

// farmOne runs the full per-candidate pipeline: generate, cross-validate,
// coverage-tag, shrink preserving the vector, canonicalize, pin.
func farmOne(i int, campaign uint64, seeds []uint64, tune bccheck.Tuning, maxStates int) farmResult {
	rng := rand.New(rand.NewSource(farmSeed(campaign, i)))
	t := generate(rng, i)
	rep, err := RunTuned(t, seeds, tune)
	if err != nil {
		if errors.Is(err, bccheck.ErrStateLimit) {
			return farmResult{skipped: true}
		}
		return farmResult{err: fmt.Errorf("farm candidate %d: %w", i, err)}
	}
	if len(rep.Violations) > 0 {
		shrunk := shrink(t, func(c *Test) bool {
			r, err := RunTuned(c, seeds, tune)
			return err == nil && len(r.Violations) > 0
		})
		srep, err := RunTuned(shrunk, seeds, tune)
		if err != nil {
			return farmResult{err: fmt.Errorf("farm: re-running shrunk candidate %d: %w", i, err)}
		}
		return farmResult{states: rep.States,
			failure: &FuzzFailure{Test: t, Report: rep, Shrunk: shrunk, ShrunkReport: srep}}
	}
	if rep.States > maxStates {
		return farmResult{states: rep.States, skipped: true}
	}
	cov, err := CoverageVector(t)
	if err != nil {
		if errors.Is(err, bccheck.ErrStateLimit) {
			return farmResult{states: rep.States, skipped: true}
		}
		return farmResult{err: fmt.Errorf("farm candidate %d coverage: %w", i, err)}
	}
	if len(cov) == 0 {
		return farmResult{states: rep.States, uncovered: true}
	}
	// Shrink while the coverage vector is preserved exactly: the minimal
	// program that still exercises the same axiom families.
	shrunk := shrink(t, func(c *Test) bool {
		cv, err := CoverageVector(c)
		return err == nil && equalCoverage(cv, cov)
	})
	canon, key, err := canonicalize(shrunk)
	if err != nil {
		return farmResult{err: fmt.Errorf("farm candidate %d canonicalize: %w", i, err)}
	}
	// Re-validate the canonical form and pin its exact allowed set. Its
	// coverage vector equals the shrunk test's by symmetry, but it is
	// recomputed so the stored tag is self-consistent by construction.
	crep, err := RunTuned(canon, seeds, tune)
	if err != nil {
		return farmResult{err: fmt.Errorf("farm candidate %d canonical run: %w", i, err)}
	}
	if len(crep.Violations) > 0 {
		return farmResult{states: rep.States,
			failure: &FuzzFailure{Test: canon, Report: crep, Shrunk: canon, ShrunkReport: crep}}
	}
	ccov, err := CoverageVector(canon)
	if err != nil {
		return farmResult{err: fmt.Errorf("farm candidate %d canonical coverage: %w", i, err)}
	}
	canon.Coverage = ccov
	canon.Allowed = crep.Allowed
	canon.Doc = fmt.Sprintf("Farm-generated; canonical under proc permutation and renaming. Axioms: %s.",
		strings.Join(ccov, ", "))
	return farmResult{test: canon, key: key, states: rep.States}
}

// canonNames is the renaming vocabulary for canonical forms, matching the
// generator's so canonical tests read like hand-written ones.
var canonDataNames = []string{"x", "y", "z", "w", "v", "u"}

// canonicalize rewrites a generated test into the lexicographically least
// member of its equivalence class under (a) processor permutation, (b)
// renaming of data/lock/barrier locations by first occurrence, and (c)
// renaming of written values by first occurrence. The returned key
// identifies the class; the test's deterministic name is derived from it.
// Only structure the generator emits is considered (no Locations pinning,
// Init, or Observe).
func canonicalize(t *Test) (*Test, string, error) {
	if len(t.Locations) > 0 || len(t.Init) > 0 || len(t.Observe) > 0 {
		return nil, "", fmt.Errorf("litmus %s: canonicalize requires a plain generated test", t.Name)
	}
	// Classify locations: any name touched by a lock op is a lock block
	// (it may also carry plain reads/writes — the lock-data pattern);
	// barrier names are disjoint by construction.
	lockLoc := map[string]bool{}
	barLoc := map[string]bool{}
	for _, stmts := range t.Procs {
		for _, s := range stmts {
			switch s.Op {
			case "read-lock", "write-lock", "unlock":
				lockLoc[s.Loc] = true
			case "barrier":
				barLoc[s.Loc] = true
			}
		}
	}

	perms := permutations(len(t.Procs))
	var best *Test
	var bestKey string
	for _, perm := range perms {
		cand, key := renameUnder(t, perm, lockLoc, barLoc)
		if best == nil || key < bestKey {
			best, bestKey = cand, key
		}
	}
	best.Name = "g" + hashName(bestKey)
	if _, err := best.compile(); err != nil {
		return nil, "", err
	}
	return best, bestKey, nil
}

// renameUnder builds the candidate for one processor order: procs are
// emitted in perm order, and locations/values are renamed in order of
// first occurrence in that emission.
func renameUnder(t *Test, perm []int, lockLoc, barLoc map[string]bool) (*Test, string) {
	locMap := map[string]string{}
	valMap := map[uint64]uint64{}
	nData, nLock, nBar := 0, 0, 0
	renLoc := func(name string) string {
		if name == "" {
			return ""
		}
		if r, ok := locMap[name]; ok {
			return r
		}
		var r string
		switch {
		case barLoc[name]:
			r = "b"
			if nBar > 0 {
				r = "b" + strconv.Itoa(nBar)
			}
			nBar++
		case lockLoc[name]:
			r = "l"
			if nLock > 0 {
				r = "l" + strconv.Itoa(nLock)
			}
			nLock++
		default:
			if nData < len(canonDataNames) {
				r = canonDataNames[nData]
			} else {
				r = "d" + strconv.Itoa(nData)
			}
			nData++
		}
		locMap[name] = r
		return r
	}
	renVal := func(v uint64) uint64 {
		if v == 0 {
			return 0
		}
		if r, ok := valMap[v]; ok {
			return r
		}
		r := uint64(len(valMap) + 1)
		valMap[v] = r
		return r
	}

	c := &Test{Procs: make([][]Stmt, len(perm))}
	var key strings.Builder
	for out, in := range perm {
		stmts := make([]Stmt, len(t.Procs[in]))
		for j, s := range t.Procs[in] {
			ns := Stmt{Op: s.Op, Loc: renLoc(s.Loc)}
			if s.Op == "write" || s.Op == "write-global" {
				ns.Val = renVal(s.Val)
			}
			stmts[j] = ns
			key.WriteString(ns.Op)
			key.WriteByte(' ')
			key.WriteString(ns.Loc)
			key.WriteByte(' ')
			key.WriteString(strconv.FormatUint(ns.Val, 10))
			key.WriteByte(';')
		}
		c.Procs[out] = stmts
		key.WriteByte('|')
	}
	return c, key.String()
}

// hashName folds a canonical key to the 12-hex-digit content name used
// for generated corpus files.
func hashName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])[:12]
}

// permutations returns all orderings of 0..n-1 (n <= 8 in any litmus
// test; the generator emits at most 4 processors).
func permutations(n int) [][]int {
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(k int)
	rec = func(k int) {
		if k == n {
			out = append(out, append([]int(nil), base...))
			return
		}
		for i := k; i < n; i++ {
			base[k], base[i] = base[i], base[k]
			rec(k + 1)
			base[k], base[i] = base[i], base[k]
		}
	}
	rec(0)
	return out
}
