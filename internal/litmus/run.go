package litmus

// Running a test on the concrete machine, and the seed sweep that
// cross-validates the simulator against the axiomatic model.

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ssmp/internal/bccheck"
	"ssmp/internal/core"
	"ssmp/internal/mem"
	"ssmp/internal/metrics"
	"ssmp/internal/network"
	"ssmp/internal/sim"
)

// addr maps a bccheck data location onto the machine's address space.
func dataAddr(l bccheck.Loc) mem.Addr {
	return mem.Addr(l.Block*machineBlockWords + l.Word)
}

// barAddr maps a barrier id onto an address far from any data block.
func barAddr(id int) mem.Addr {
	return mem.Addr((barrierBlockBase + id) * machineBlockWords)
}

// runSim executes the test once on a fresh machine with the given jitter
// seed (0 = the canonical deterministic schedule) and fault configuration
// (zero = a reliable fabric) and returns the outcome in canonical syntax
// plus the run's fault counters. With trace set, the run records a history
// and the returned graph renders it.
func (c *compiled) runSim(seed uint64, faults network.FaultConfig, trace bool) (string, *bccheck.Graph, metrics.FaultCounters, error) {
	nproc := len(c.prog)
	nodes := 2
	for nodes < nproc {
		nodes <<= 1
	}
	cfg := core.DefaultConfig(nodes)
	cfg.Jitter = seed
	cfg.Faults = faults
	m := core.NewMachine(cfg)
	var graph *bccheck.Graph
	rec := m.EnableHistory()
	for n, v := range c.t.Init {
		m.WriteMemory(dataAddr(c.locOf[n]), mem.Word(v))
	}
	regs := make([][]uint64, nproc)
	progs := make([]core.Program, nodes)
	for p := 0; p < nproc; p++ {
		p := p
		progs[p] = func(pr *core.Proc) {
			for _, in := range c.prog[p] {
				switch in.Op {
				case bccheck.OpRead:
					regs[p] = append(regs[p], uint64(pr.Read(dataAddr(in.Loc))))
				case bccheck.OpWrite:
					pr.Write(dataAddr(in.Loc), mem.Word(in.Val))
				case bccheck.OpReadGlobal:
					regs[p] = append(regs[p], uint64(pr.ReadGlobal(dataAddr(in.Loc))))
				case bccheck.OpWriteGlobal:
					pr.WriteGlobal(dataAddr(in.Loc), mem.Word(in.Val))
				case bccheck.OpReadUpdate:
					regs[p] = append(regs[p], uint64(pr.ReadUpdate(dataAddr(in.Loc))))
				case bccheck.OpResetUpdate:
					pr.ResetUpdate(dataAddr(in.Loc))
				case bccheck.OpFlush:
					pr.FlushBuffer()
				case bccheck.OpReadLock:
					pr.ReadLock(dataAddr(in.Loc))
				case bccheck.OpWriteLock:
					pr.WriteLock(dataAddr(in.Loc))
				case bccheck.OpUnlock:
					pr.Unlock(dataAddr(in.Loc))
				case bccheck.OpBarrier:
					pr.Barrier(barAddr(in.Loc.Block), nproc)
				}
			}
		}
	}
	res, err := m.Run(progs)
	if err != nil {
		// The seed and fault config make the failure reproducible from the
		// message alone.
		return "", nil, metrics.FaultCounters{}, fmt.Errorf("litmus %s: jitter seed %d, %s: %w",
			c.t.Name, seed, faults, err)
	}
	o := bccheck.Outcome{Regs: regs}
	for _, n := range c.t.Observe {
		o.Mem = append(o.Mem, uint64(m.ReadMemory(dataAddr(c.locOf[n]))))
	}
	if trace {
		graph = rec.Graph(machineBlockWords)
		graph.Names = c.opts.LocName
	}
	return c.format(o), graph, res.Faults, nil
}

// RunSim executes the test once on the simulator under the given jitter
// seed and returns the canonical outcome.
func (t *Test) RunSim(seed uint64) (string, error) {
	c, err := t.compile()
	if err != nil {
		return "", err
	}
	out, _, _, err := c.runSim(seed, network.FaultConfig{}, false)
	return out, err
}

// TraceSim is RunSim with history recording; the returned graph is the
// run's execution graph (for explaining a violation).
func (t *Test) TraceSim(seed uint64) (string, *bccheck.Graph, error) {
	c, err := t.compile()
	if err != nil {
		return "", nil, err
	}
	out, graph, _, err := c.runSim(seed, network.FaultConfig{}, true)
	return out, graph, err
}

// Report is the result of cross-validating one test.
type Report struct {
	Name string `json:"name"`
	// Allowed is the axiomatic allowed set (canonical, sorted).
	Allowed []string `json:"allowed"`
	// Observed maps each simulator outcome to the jitter seeds that
	// produced it.
	Observed map[string][]uint64 `json:"observed"`
	// Violations are observed outcomes outside the allowed set — a
	// soundness failure of machine or model.
	Violations []string `json:"violations,omitempty"`
	// AssertFailures report must_allow entries missing from the allowed
	// set and must_forbid entries present in it.
	AssertFailures []string `json:"assert_failures,omitempty"`
	// Coverage is |observed ∩ allowed| / |allowed|.
	Coverage float64 `json:"coverage"`
	// States is the number of abstract states the enumerator visited.
	States int `json:"states"`
	// Pruned is the number of transitions partial-order reduction skipped.
	Pruned int `json:"pruned,omitempty"`
	// EnumNS is the wall-clock nanoseconds spent in the enumerator.
	EnumNS int64 `json:"enum_ns"`
	// Seeds is how many jitter seeds were swept.
	Seeds int `json:"seeds"`
	// FaultConfig describes the fault rates a chaos sweep injected
	// (empty for a fault-free sweep).
	FaultConfig string `json:"fault_config,omitempty"`
	// Faults aggregates the fault and recovery counters over a chaos
	// sweep's runs (nil for a fault-free sweep).
	Faults *metrics.FaultCounters `json:"faults,omitempty"`
}

// Ok reports whether the test passed: no violation and no assertion
// failure.
func (r *Report) Ok() bool { return len(r.Violations) == 0 && len(r.AssertFailures) == 0 }

// Summary renders a one-line result.
func (r *Report) Summary() string {
	status := "ok"
	if !r.Ok() {
		status = "FAIL"
	}
	s := fmt.Sprintf("%-22s %-4s allowed %2d, observed %2d, coverage %3.0f%% (%d seeds, %d states)",
		r.Name, status, len(r.Allowed), len(r.Observed), r.Coverage*100, r.Seeds, r.States)
	if r.Faults != nil {
		s += fmt.Sprintf(" [chaos: %d dropped, %d dup, %d delayed, %d retries]",
			r.Faults.Dropped, r.Faults.Duplicated, r.Faults.Delayed, r.Faults.Retries)
	}
	return s
}

// Seeds returns the default sweep seed list: 0 (the canonical schedule)
// through n-1.
func Seeds(n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = uint64(i)
	}
	return s
}

// Run cross-validates the test: it enumerates the axiomatic allowed set,
// sweeps the simulator across the given jitter seeds, and checks
// observed ⊆ allowed plus the test's own must_allow/must_forbid
// assertions.
func Run(t *Test, seeds []uint64) (*Report, error) {
	return RunTuned(t, seeds, bccheck.Tuning{})
}

// RunTuned is Run with explicit exploration-engine tuning (POR off,
// forced worker count). Tuning never changes verdicts, only cost.
func RunTuned(t *Test, seeds []uint64, tune bccheck.Tuning) (*Report, error) {
	return runSweep(t, seeds, tune, ChaosConfig{})
}

// ChaosConfig parameterizes a chaos sweep: the fault rates injected into
// every run. The sweep's seed list supplies the fault seeds.
type ChaosConfig struct {
	// Rates are the per-link fault probabilities; zero rates make the
	// sweep equivalent to the fault-free RunTuned.
	Rates network.FaultRates
	// DelayMax bounds injected extra delays (0 = network.DefaultDelayMax).
	DelayMax sim.Time
}

// DefaultChaosRates are the soak's standard fault probabilities: frequent
// enough to exercise drop, duplicate and delay recovery in a handful of
// runs, rare enough that retransmission converges quickly.
func DefaultChaosRates() network.FaultRates {
	return network.FaultRates{Drop: 0.03, Dup: 0.03, Delay: 0.1}
}

// ChaosSeeds returns n nonzero fault seeds (1..n). Seed 0 would disable
// the fault plane, so the chaos sweep starts at 1.
func ChaosSeeds(n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = uint64(i + 1)
	}
	return s
}

// RunChaos cross-validates the test under fault injection: every sweep run
// uses its seed both as the schedule-jitter seed and as the fault-plane
// seed, so the sweep explores adversarial schedules and an adversarial
// fabric together. Every observed outcome must still be axiomatically
// allowed — the reliable transport must make faults invisible to the
// memory model. A seed of 0 runs the canonical fault-free schedule.
func RunChaos(t *Test, seeds []uint64, chaos ChaosConfig) (*Report, error) {
	return runSweep(t, seeds, bccheck.Tuning{}, chaos)
}

func runSweep(t *Test, seeds []uint64, tune bccheck.Tuning, chaos ChaosConfig) (*Report, error) {
	c, err := t.compile()
	if err != nil {
		return nil, err
	}
	opts := c.opts
	opts.Tuning = tune
	enumStart := time.Now()
	res, err := bccheck.Enumerate(c.prog, opts)
	if err != nil {
		return nil, fmt.Errorf("litmus %s: %w", t.Name, err)
	}
	allowed := map[string]bool{}
	r := &Report{Name: t.Name, Observed: map[string][]uint64{}, States: res.States,
		Pruned: res.Pruned, EnumNS: int64(time.Since(enumStart)), Seeds: len(seeds)}
	for _, o := range res.Outcomes {
		key := c.format(o)
		allowed[key] = true
		r.Allowed = append(r.Allowed, key)
	}
	sort.Strings(r.Allowed)

	injecting := chaos.Rates != (network.FaultRates{})
	if injecting {
		r.Faults = &metrics.FaultCounters{}
	}
	for _, seed := range seeds {
		var faults network.FaultConfig
		if injecting {
			faults = network.FaultConfig{Seed: seed, Rates: chaos.Rates, DelayMax: chaos.DelayMax}
			if r.FaultConfig == "" && seed != 0 {
				r.FaultConfig = faults.String()
			}
		}
		out, _, fc, err := c.runSim(seed, faults, false)
		if err != nil {
			return nil, err
		}
		if r.Faults != nil {
			r.Faults.Add(fc)
		}
		r.Observed[out] = append(r.Observed[out], seed)
	}
	covered := 0
	for out := range r.Observed {
		if allowed[out] {
			covered++
		} else {
			r.Violations = append(r.Violations, out)
		}
	}
	sort.Strings(r.Violations)
	if len(allowed) > 0 {
		r.Coverage = float64(covered) / float64(len(allowed))
	}

	for _, s := range t.MustAllow {
		if !allowed[s] {
			r.AssertFailures = append(r.AssertFailures, fmt.Sprintf("must_allow %q not in allowed set", s))
		}
	}
	for _, s := range t.MustForbid {
		if allowed[s] {
			r.AssertFailures = append(r.AssertFailures, fmt.Sprintf("must_forbid %q is in allowed set", s))
		}
	}
	if t.Allowed != nil && !equalKeys(t.Allowed, r.Allowed) {
		r.AssertFailures = append(r.AssertFailures,
			fmt.Sprintf("allowed-set snapshot mismatch: pinned %d outcomes, model admits %d", len(t.Allowed), len(r.Allowed)))
	}
	return r, nil
}

// ExplainViolation renders a violating run: the seed that produced the
// outcome, its execution graph, and the allowed set it escaped.
func ExplainViolation(t *Test, r *Report, outcome string) (string, error) {
	seeds, ok := r.Observed[outcome]
	if !ok || len(seeds) == 0 {
		return "", fmt.Errorf("litmus %s: outcome %q was not observed", t.Name, outcome)
	}
	_, graph, err := t.TraceSim(seeds[0])
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "test %s, seed %d produced %q\n", t.Name, seeds[0], outcome)
	fmt.Fprintf(&b, "allowed set (%d outcomes):\n", len(r.Allowed))
	for _, a := range r.Allowed {
		fmt.Fprintf(&b, "  %s\n", a)
	}
	b.WriteString("execution graph of the run:\n")
	b.WriteString(graph.String())
	return b.String(), nil
}
