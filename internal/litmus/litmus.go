// Package litmus is the declarative litmus-test engine: a small JSON test
// format over the machine's Table 1 primitives, an embedded corpus of the
// weak-memory classics adapted to buffered consistency, and the
// cross-validation harness that runs each test both through the axiomatic
// enumerator (internal/bccheck) and the operational simulator
// (internal/core) under schedule jitter, asserting that every observed
// outcome is axiomatically allowed.
package litmus

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"ssmp/internal/bccheck"
)

// LocSpec pins a named location to a (block, word) pair; by default each
// name gets word 0 of its own block. Colocating two names in one block
// exercises false sharing and per-word coherence.
type LocSpec struct {
	Block int `json:"block"`
	Word  int `json:"word"`
}

// Stmt is one instruction. Op is the lower-case primitive name ("read",
// "write", "read-global", "write-global", "read-update", "reset-update",
// "flush", "read-lock", "write-lock", "unlock", "barrier"). Loc names a
// location (for "barrier", a barrier; omitted for "flush"). Val is the
// value written. Reg optionally names the register a reading op fills
// (default r0, r1, ... per processor).
type Stmt struct {
	Op  string `json:"op"`
	Loc string `json:"loc,omitempty"`
	Val uint64 `json:"val,omitempty"`
	Reg string `json:"reg,omitempty"`
}

// Test is one litmus test.
type Test struct {
	Name string `json:"name"`
	Doc  string `json:"doc,omitempty"`
	// Locations optionally pins names to blocks/words.
	Locations map[string]LocSpec `json:"locations,omitempty"`
	// Init gives initial memory values by location name.
	Init map[string]uint64 `json:"init,omitempty"`
	// Procs is the per-processor instruction lists.
	Procs [][]Stmt `json:"procs"`
	// Observe lists locations whose final memory value joins the outcome.
	Observe []string `json:"observe,omitempty"`
	// MustAllow asserts outcomes the axiomatic model must admit (documents
	// the model's weakness); MustForbid asserts outcomes it must exclude
	// (documents its guarantees). Both use the canonical outcome syntax:
	// space-separated "P<p>:<reg>=<val>" and "<loc>=<val>" tokens.
	MustAllow  []string `json:"must_allow,omitempty"`
	MustForbid []string `json:"must_forbid,omitempty"`
	// Allowed, when present, pins the EXACT axiomatic allowed set (sorted
	// canonical outcome keys). Farm-generated tests carry it so replaying
	// the corpus detects any model drift — weakening (new outcomes) as
	// well as strengthening (lost outcomes).
	Allowed []string `json:"allowed,omitempty"`
	// Coverage tags the test with the §2 axiom families that constrain
	// its allowed set, computed by CoverageVector's per-axiom ablations
	// and checked against a recomputation in CI.
	Coverage []string `json:"coverage,omitempty"`
}

// Parse decodes a test, rejecting unknown fields.
func Parse(data []byte) (*Test, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var t Test
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("litmus: %w", err)
	}
	if _, err := t.compile(); err != nil {
		return nil, err
	}
	return &t, nil
}

var opByName = map[string]bccheck.Op{
	"read":         bccheck.OpRead,
	"write":        bccheck.OpWrite,
	"read-global":  bccheck.OpReadGlobal,
	"write-global": bccheck.OpWriteGlobal,
	"read-update":  bccheck.OpReadUpdate,
	"reset-update": bccheck.OpResetUpdate,
	"flush":        bccheck.OpFlush,
	"read-lock":    bccheck.OpReadLock,
	"write-lock":   bccheck.OpWriteLock,
	"unlock":       bccheck.OpUnlock,
	"barrier":      bccheck.OpBarrier,
}

// machineBlockWords is the block size litmus tests run under (the paper's
// default); explicit word indices must fit in it.
const machineBlockWords = 4

// barrierBlockBase keeps barrier addresses far above any data block.
const barrierBlockBase = 64

// compiled is a validated test lowered to the bccheck vocabulary plus the
// bookkeeping to format outcomes and drive the simulator.
type compiled struct {
	t        *Test
	prog     bccheck.Program
	opts     bccheck.Options
	locOf    map[string]bccheck.Loc // data locations
	barOf    map[string]int         // barrier name -> barrier id
	nameOf   map[bccheck.Loc]string
	regNames [][]string // per proc, per read
}

// compile resolves locations, lowers statements, and validates through
// bccheck.Validate.
func (t *Test) compile() (*compiled, error) {
	if t.Name == "" {
		return nil, fmt.Errorf("litmus: test needs a name")
	}
	if len(t.Procs) < 1 || len(t.Procs) > 8 {
		return nil, fmt.Errorf("litmus %s: need 1-8 procs, got %d", t.Name, len(t.Procs))
	}
	c := &compiled{
		t:      t,
		locOf:  map[string]bccheck.Loc{},
		barOf:  map[string]int{},
		nameOf: map[bccheck.Loc]string{},
	}

	// Collect names: barriers from barrier ops, data locations from
	// everything else plus observe/init.
	dataNames := map[string]bool{}
	barNames := map[string]bool{}
	for p, stmts := range t.Procs {
		for i, st := range stmts {
			op, ok := opByName[st.Op]
			if !ok {
				return nil, fmt.Errorf("litmus %s: P%d[%d]: unknown op %q", t.Name, p, i, st.Op)
			}
			switch op {
			case bccheck.OpFlush:
			case bccheck.OpBarrier:
				if st.Loc == "" {
					return nil, fmt.Errorf("litmus %s: P%d[%d]: barrier needs a name", t.Name, p, i)
				}
				barNames[st.Loc] = true
			default:
				if st.Loc == "" {
					return nil, fmt.Errorf("litmus %s: P%d[%d]: %s needs a loc", t.Name, p, i, st.Op)
				}
				dataNames[st.Loc] = true
			}
		}
	}
	for _, n := range t.Observe {
		dataNames[n] = true
	}
	for n := range t.Init {
		dataNames[n] = true
	}

	// Assign locations: explicit pins first, then fresh blocks.
	nextBlock := 0
	for _, spec := range t.Locations {
		if spec.Block >= nextBlock {
			nextBlock = spec.Block + 1
		}
	}
	var names []string
	for n := range dataNames {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if spec, ok := t.Locations[n]; ok {
			if spec.Word < 0 || spec.Word >= machineBlockWords {
				return nil, fmt.Errorf("litmus %s: location %s word %d outside block of %d words", t.Name, n, spec.Word, machineBlockWords)
			}
			if spec.Block < 0 || spec.Block >= barrierBlockBase {
				return nil, fmt.Errorf("litmus %s: location %s block %d outside [0,%d)", t.Name, n, spec.Block, barrierBlockBase)
			}
			c.locOf[n] = bccheck.Loc{Block: spec.Block, Word: spec.Word}
		} else {
			c.locOf[n] = bccheck.Loc{Block: nextBlock}
			nextBlock++
		}
		c.nameOf[c.locOf[n]] = n
	}
	if nextBlock > 16 {
		return nil, fmt.Errorf("litmus %s: %d blocks (max 16)", t.Name, nextBlock)
	}
	for n, l := range c.locOf {
		for n2, l2 := range c.locOf {
			if n < n2 && l == l2 {
				return nil, fmt.Errorf("litmus %s: locations %s and %s coincide at %+v", t.Name, n, n2, l)
			}
		}
	}
	var bars []string
	for n := range barNames {
		bars = append(bars, n)
	}
	sort.Strings(bars)
	for i, n := range bars {
		c.barOf[n] = i
	}

	// Lower.
	c.regNames = make([][]string, len(t.Procs))
	for p, stmts := range t.Procs {
		var instrs []bccheck.Instr
		for i, st := range stmts {
			op := opByName[st.Op]
			in := bccheck.Instr{Op: op, Val: st.Val}
			switch op {
			case bccheck.OpFlush:
			case bccheck.OpBarrier:
				in.Loc = bccheck.Loc{Block: c.barOf[st.Loc]}
			default:
				in.Loc = c.locOf[st.Loc]
			}
			if op.Reads() {
				reg := st.Reg
				if reg == "" {
					reg = fmt.Sprintf("r%d", len(c.regNames[p]))
				}
				for _, prev := range c.regNames[p] {
					if prev == reg {
						return nil, fmt.Errorf("litmus %s: P%d reuses register %s", t.Name, p, reg)
					}
				}
				c.regNames[p] = append(c.regNames[p], reg)
			} else if st.Reg != "" {
				return nil, fmt.Errorf("litmus %s: P%d[%d]: %s does not fill a register", t.Name, p, i, st.Op)
			}
			instrs = append(instrs, in)
		}
		c.prog = append(c.prog, instrs)
	}

	c.opts = bccheck.Options{
		LocName: func(l bccheck.Loc) string {
			if n, ok := c.nameOf[l]; ok {
				return n
			}
			return fmt.Sprintf("b%dw%d", l.Block, l.Word)
		},
	}
	for _, n := range t.Observe {
		c.opts.Observe = append(c.opts.Observe, c.locOf[n])
	}
	if len(t.Init) > 0 {
		c.opts.Init = map[bccheck.Loc]uint64{}
		for n, v := range t.Init {
			c.opts.Init[c.locOf[n]] = v
		}
	}
	if err := bccheck.Validate(c.prog, c.opts); err != nil {
		return nil, fmt.Errorf("litmus %s: %w", t.Name, err)
	}

	// Canonicalize the assertions early so malformed ones fail at parse.
	for i, s := range t.MustAllow {
		cs, err := c.canon(s)
		if err != nil {
			return nil, fmt.Errorf("litmus %s: must_allow[%d]: %w", t.Name, i, err)
		}
		t.MustAllow[i] = cs
	}
	for i, s := range t.MustForbid {
		cs, err := c.canon(s)
		if err != nil {
			return nil, fmt.Errorf("litmus %s: must_forbid[%d]: %w", t.Name, i, err)
		}
		t.MustForbid[i] = cs
	}
	// An outcome asserted both ways can never pass; reject it at parse.
	for _, a := range t.MustAllow {
		for _, f := range t.MustForbid {
			if a == f {
				return nil, fmt.Errorf("litmus %s: outcome %q is in both must_allow and must_forbid", t.Name, a)
			}
		}
	}
	return c, nil
}

// format renders a bccheck outcome in the test's canonical syntax:
// register tokens in processor and program order, then observed memory in
// observe order.
func (c *compiled) format(o bccheck.Outcome) string {
	var tok []string
	for p, regs := range o.Regs {
		for i, v := range regs {
			tok = append(tok, fmt.Sprintf("P%d:%s=%d", p, c.regNames[p][i], v))
		}
	}
	for i, v := range o.Mem {
		tok = append(tok, fmt.Sprintf("%s=%d", c.t.Observe[i], v))
	}
	return strings.Join(tok, " ")
}

// canon parses a user-written outcome string (tokens in any order) and
// re-renders it canonically, requiring exactly the tokens the test's
// structure defines.
func (c *compiled) canon(s string) (string, error) {
	vals := map[string]uint64{}
	for _, tok := range strings.Fields(s) {
		eq := strings.IndexByte(tok, '=')
		if eq < 1 {
			return "", fmt.Errorf("bad token %q", tok)
		}
		var v uint64
		if _, err := fmt.Sscanf(tok[eq+1:], "%d", &v); err != nil {
			return "", fmt.Errorf("bad value in token %q", tok)
		}
		if _, dup := vals[tok[:eq]]; dup {
			return "", fmt.Errorf("duplicate token %q", tok[:eq])
		}
		vals[tok[:eq]] = v
	}
	var tok []string
	want := 0
	for p, regs := range c.regNames {
		for _, reg := range regs {
			key := fmt.Sprintf("P%d:%s", p, reg)
			v, ok := vals[key]
			if !ok {
				return "", fmt.Errorf("missing %s", key)
			}
			tok = append(tok, fmt.Sprintf("%s=%d", key, v))
			want++
		}
	}
	for _, n := range c.t.Observe {
		v, ok := vals[n]
		if !ok {
			return "", fmt.Errorf("missing %s", n)
		}
		tok = append(tok, fmt.Sprintf("%s=%d", n, v))
		want++
	}
	if len(vals) != want {
		return "", fmt.Errorf("outcome %q names %d registers/locations, test has %d", s, len(vals), want)
	}
	return strings.Join(tok, " "), nil
}

// Enumerate runs the axiomatic enumerator, returning the allowed outcomes
// in canonical syntax together with their witnesses.
func (t *Test) Enumerate() (allowed map[string][]string, states int, err error) {
	c, err := t.compile()
	if err != nil {
		return nil, 0, err
	}
	opts := c.opts
	opts.Witnesses = true
	res, err := bccheck.Enumerate(c.prog, opts)
	if err != nil {
		return nil, 0, fmt.Errorf("litmus %s: %w", t.Name, err)
	}
	allowed = map[string][]string{}
	for _, o := range res.Outcomes {
		allowed[c.format(o)] = o.Witness
	}
	return allowed, res.States, nil
}
