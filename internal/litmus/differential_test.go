package litmus

// Differential regression for the exploration-engine overhaul: the
// reduced, parallel engine must produce exactly the verdicts of the
// old semantics — which survive as the POR-off serial configuration —
// on the whole corpus plus a seeded batch of generated programs.

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"ssmp/internal/bccheck"
)

// oldSemantics mirrors the pre-overhaul engine: full interleaving graph,
// one worker.
var oldSemantics = bccheck.Tuning{DisablePOR: true, Workers: 1}

// diffOne enumerates t under both configurations and compares outcome
// key sets. It returns false when the state limit truncated either run
// (no verdict to compare).
func diffOne(t *testing.T, lt *Test) bool {
	t.Helper()
	c, err := lt.compile()
	if err != nil {
		t.Fatalf("%s: compile: %v", lt.Name, err)
	}
	ref := c.opts
	ref.Tuning = oldSemantics
	want, err := bccheck.Enumerate(c.prog, ref)
	if err != nil {
		if errors.Is(err, bccheck.ErrStateLimit) {
			return false
		}
		t.Fatalf("%s: reference enumerate: %v", lt.Name, err)
	}
	got, err := bccheck.Enumerate(c.prog, c.opts)
	if err != nil {
		if errors.Is(err, bccheck.ErrStateLimit) {
			return false
		}
		t.Fatalf("%s: enumerate: %v", lt.Name, err)
	}
	if !reflect.DeepEqual(got.Keys(), want.Keys()) {
		t.Errorf("%s: outcome sets differ\n new: %v\n old: %v", lt.Name, got.Keys(), want.Keys())
	}
	return true
}

// TestDifferentialCorpus runs the full embedded corpus through the old
// semantics and the new engine and demands identical outcome sets and
// identical allowed/forbidden verdicts.
func TestDifferentialCorpus(t *testing.T) {
	tests, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, lt := range tests {
		if !diffOne(t, lt) {
			t.Errorf("%s: corpus test hit the state limit", lt.Name)
		}
		// Verdicts, not just raw keys: the assertion machinery must agree.
		oldRep, err := RunTuned(lt, Seeds(4), oldSemantics)
		if err != nil {
			t.Fatalf("%s: RunTuned(old): %v", lt.Name, err)
		}
		newRep, err := Run(lt, Seeds(4))
		if err != nil {
			t.Fatalf("%s: Run: %v", lt.Name, err)
		}
		if !reflect.DeepEqual(newRep.Allowed, oldRep.Allowed) {
			t.Errorf("%s: allowed sets differ\n new: %v\n old: %v", lt.Name, newRep.Allowed, oldRep.Allowed)
		}
		if newRep.Ok() != oldRep.Ok() {
			t.Errorf("%s: verdict differs: new ok=%v, old ok=%v", lt.Name, newRep.Ok(), oldRep.Ok())
		}
	}
}

// TestDifferentialFuzzed feeds ~200 seeded generator programs through
// both configurations. Together with the corpus this is the regression
// net for POR soundness and parallel-merge determinism.
func TestDifferentialFuzzed(t *testing.T) {
	count := 200
	if testing.Short() {
		count = 40
	}
	rng := rand.New(rand.NewSource(20260806))
	compared, limited := 0, 0
	for i := 0; i < count; i++ {
		lt := generate(rng, i)
		if diffOne(t, lt) {
			compared++
		} else {
			limited++
		}
	}
	if compared < count/2 {
		t.Errorf("only %d of %d generated programs were comparable (%d hit the state limit)",
			compared, count, limited)
	}
	t.Logf("differential: %d compared, %d at state limit", compared, limited)
}
