package litmus

// Differential regression for the exploration-engine overhaul: the
// reduced, parallel engine must produce exactly the verdicts of the
// old semantics — which survive as the POR-off serial configuration —
// on the whole corpus plus a seeded batch of generated programs.

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"ssmp/internal/bccheck"
)

// oldSemantics mirrors the pre-overhaul engine: full interleaving graph,
// one worker, no symmetry quotient.
var oldSemantics = bccheck.Tuning{DisablePOR: true, DisableSymmetry: true, Workers: 1}

// diffConfigs is every engine configuration that must agree on verdicts:
// the reductions (POR, symmetry) and the parallel frontier change cost,
// never outcomes.
var diffConfigs = []struct {
	name string
	tune bccheck.Tuning
}{
	{"reference", oldSemantics},
	{"default", bccheck.Tuning{}},
	{"serial", bccheck.Tuning{Workers: 1}},
	{"workers-3", bccheck.Tuning{Workers: 3}},
	{"sym-off", bccheck.Tuning{DisableSymmetry: true}},
	{"por-off", bccheck.Tuning{DisablePOR: true}},
}

// diffOne enumerates t under every configuration and demands identical
// outcome key sets; configurations differing only in worker count must
// also report identical States/Pruned (the reduced graph is a function
// of the state, not the schedule). It returns false when the state limit
// truncated a run (no verdict to compare).
func diffOne(t *testing.T, lt *Test) bool {
	t.Helper()
	c, err := lt.compile()
	if err != nil {
		t.Fatalf("%s: compile: %v", lt.Name, err)
	}
	results := make([]*bccheck.Result, len(diffConfigs))
	for i, cfg := range diffConfigs {
		opts := c.opts
		opts.Tuning = cfg.tune
		res, err := bccheck.Enumerate(c.prog, opts)
		if err != nil {
			if errors.Is(err, bccheck.ErrStateLimit) {
				return false
			}
			t.Fatalf("%s: enumerate (%s): %v", lt.Name, cfg.name, err)
		}
		results[i] = res
	}
	want := results[0].Keys()
	for i, cfg := range diffConfigs[1:] {
		if got := results[i+1].Keys(); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: outcome sets differ under %s\n got: %v\n ref: %v", lt.Name, cfg.name, got, want)
		}
	}
	// default, serial, and workers-3 share a tuning modulo worker count:
	// their state and prune counters must be bit-identical.
	for _, i := range []int{2, 3} {
		if results[i].States != results[1].States || results[i].Pruned != results[1].Pruned {
			t.Errorf("%s: %s explored %d states / %d pruned, default %d / %d",
				lt.Name, diffConfigs[i].name, results[i].States, results[i].Pruned,
				results[1].States, results[1].Pruned)
		}
	}
	// The symmetry quotient never explores MORE states than the full graph.
	if symOff, def := results[4].States, results[1].States; def > symOff {
		t.Errorf("%s: symmetry-on explored %d states, symmetry-off %d", lt.Name, def, symOff)
	}
	return true
}

// TestDifferentialCorpus runs the full embedded corpus through the old
// semantics and the new engine and demands identical outcome sets and
// identical allowed/forbidden verdicts.
func TestDifferentialCorpus(t *testing.T) {
	tests, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, lt := range tests {
		if !diffOne(t, lt) {
			t.Errorf("%s: corpus test hit the state limit", lt.Name)
		}
		// Verdicts, not just raw keys: the assertion machinery must agree.
		oldRep, err := RunTuned(lt, Seeds(4), oldSemantics)
		if err != nil {
			t.Fatalf("%s: RunTuned(old): %v", lt.Name, err)
		}
		newRep, err := Run(lt, Seeds(4))
		if err != nil {
			t.Fatalf("%s: Run: %v", lt.Name, err)
		}
		if !reflect.DeepEqual(newRep.Allowed, oldRep.Allowed) {
			t.Errorf("%s: allowed sets differ\n new: %v\n old: %v", lt.Name, newRep.Allowed, oldRep.Allowed)
		}
		if newRep.Ok() != oldRep.Ok() {
			t.Errorf("%s: verdict differs: new ok=%v, old ok=%v", lt.Name, newRep.Ok(), oldRep.Ok())
		}
	}
}

// TestDifferentialGenerated runs the committed farm corpus through every
// engine configuration. These programs were selected for having an axiom
// family load-bearing in their allowed set, so they are exactly the ones
// where an unsound reduction would flip a verdict.
func TestDifferentialGenerated(t *testing.T) {
	tests, err := Generated()
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) < 200 {
		t.Fatalf("generated corpus has %d tests, want >= 200", len(tests))
	}
	if testing.Short() {
		tests = tests[:40]
	}
	for _, lt := range tests {
		if !diffOne(t, lt) {
			t.Errorf("%s: generated test hit the state limit", lt.Name)
		}
	}
}

// TestDifferentialFuzzed feeds ~200 seeded generator programs through
// both configurations. Together with the corpus this is the regression
// net for POR soundness and parallel-merge determinism.
func TestDifferentialFuzzed(t *testing.T) {
	count := 200
	if testing.Short() {
		count = 40
	}
	rng := rand.New(rand.NewSource(20260806))
	compared, limited := 0, 0
	for i := 0; i < count; i++ {
		lt := generate(rng, i)
		if diffOne(t, lt) {
			compared++
		} else {
			limited++
		}
	}
	if compared < count/2 {
		t.Errorf("only %d of %d generated programs were comparable (%d hit the state limit)",
			compared, count, limited)
	}
	t.Logf("differential: %d compared, %d at state limit", compared, limited)
}
