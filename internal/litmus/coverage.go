package litmus

// Axiom-coverage vectors. A litmus test is only worth keeping if some
// axiom of the §2 model is load-bearing for its verdict: relax (or, for
// NP-Synch, strengthen) that axiom and the allowed set must change.
// CoverageVector runs one enumeration per axiom family with bccheck's
// corresponding model mutation and reports the families whose ablation
// moves the allowed set. The farm uses the vector three ways: to discard
// candidates that exercise nothing, to preserve what a reproducer
// exercises while shrinking it, and to tag the persisted corpus so CI
// can assert every axiom family stays covered.

import (
	"fmt"

	"ssmp/internal/bccheck"
)

// Axioms lists the §2 axiom families a coverage vector ranges over, in
// report order. Each name matches the bccheck.Mutation that ablates it.
var Axioms = []string{
	"fifo", "np-synch", "cp-synch", "lock-data", "coherence", "freshness",
	"barrier",
}

var axiomMut = map[string]bccheck.Mutation{
	"fifo":      bccheck.MutFIFO,
	"np-synch":  bccheck.MutNPSynch,
	"cp-synch":  bccheck.MutCPSynch,
	"lock-data": bccheck.MutLockData,
	"coherence": bccheck.MutCoherence,
	"freshness": bccheck.MutFresh,
	"barrier":   bccheck.MutBarrier,
}

// coverageMaxStates bounds each ablation enumeration. Mutated models
// explore the full graph (mutations force POR and symmetry off), so the
// farm skips candidates whose ablations blow past this instead of
// stalling a campaign.
const coverageMaxStates = 400_000

// CoverageVector reports which axiom families constrain the test's
// allowed set: family A is in the vector iff enumerating under A's
// ablation yields a different allowed set than the real model. The
// order follows Axioms.
func CoverageVector(t *Test) ([]string, error) {
	c, err := t.compile()
	if err != nil {
		return nil, err
	}
	opts := c.opts
	opts.MaxStates = coverageMaxStates
	strict, err := bccheck.Enumerate(c.prog, opts)
	if err != nil {
		return nil, fmt.Errorf("litmus %s: %w", t.Name, err)
	}
	sk := strict.Keys()
	var cov []string
	for _, ax := range Axioms {
		mopts := opts
		mopts.Mutate = axiomMut[ax]
		mres, err := bccheck.Enumerate(c.prog, mopts)
		if err != nil {
			return nil, fmt.Errorf("litmus %s (%s ablation): %w", t.Name, ax, err)
		}
		if !equalKeys(sk, mres.Keys()) {
			cov = append(cov, ax)
		}
	}
	return cov, nil
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalCoverage(a, b []string) bool { return equalKeys(a, b) }
