package litmus

import (
	"embed"
	"fmt"
	"io/fs"
	"sort"
)

// The seed corpus ships inside the binary so the CLI, the daemon, and the
// tests all run the same tests without a working directory.
//
//go:embed testdata/*.json
var corpusFS embed.FS

// Corpus returns the embedded tests, sorted by name.
func Corpus() ([]*Test, error) {
	entries, err := fs.ReadDir(corpusFS, "testdata")
	if err != nil {
		return nil, err
	}
	var tests []*Test
	for _, e := range entries {
		data, err := fs.ReadFile(corpusFS, "testdata/"+e.Name())
		if err != nil {
			return nil, err
		}
		t, err := Parse(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		tests = append(tests, t)
	}
	sort.Slice(tests, func(i, j int) bool { return tests[i].Name < tests[j].Name })
	return tests, nil
}

// Load returns the embedded test with the given name.
func Load(name string) (*Test, error) {
	tests, err := Corpus()
	if err != nil {
		return nil, err
	}
	for _, t := range tests {
		if t.Name == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("litmus: no corpus test named %q", name)
}
