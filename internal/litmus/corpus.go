package litmus

import (
	"embed"
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The seed corpus ships inside the binary so the CLI, the daemon, and the
// tests all run the same tests without a working directory.
//
//go:embed testdata/*.json
var corpusFS embed.FS

// Corpus returns the embedded tests, sorted by name.
func Corpus() ([]*Test, error) {
	entries, err := fs.ReadDir(corpusFS, "testdata")
	if err != nil {
		return nil, err
	}
	var tests []*Test
	for _, e := range entries {
		data, err := fs.ReadFile(corpusFS, "testdata/"+e.Name())
		if err != nil {
			return nil, err
		}
		t, err := Parse(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		tests = append(tests, t)
	}
	sort.Slice(tests, func(i, j int) bool { return tests[i].Name < tests[j].Name })
	return tests, nil
}

// The farm-generated corpus ships alongside the hand-written one: each
// file is the canonical representative of one behavioral equivalence
// class, tagged with its axiom-coverage vector and pinned allowed set.
//
//go:embed testdata/generated
var generatedFS embed.FS

// Generated returns the embedded farm-generated tests, sorted by name.
func Generated() ([]*Test, error) {
	entries, err := fs.ReadDir(generatedFS, "testdata/generated")
	if err != nil {
		return nil, err
	}
	var tests []*Test
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := fs.ReadFile(generatedFS, "testdata/generated/"+e.Name())
		if err != nil {
			return nil, err
		}
		t, err := Parse(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.Name(), err)
		}
		tests = append(tests, t)
	}
	sort.Slice(tests, func(i, j int) bool { return tests[i].Name < tests[j].Name })
	return tests, nil
}

// WriteGeneratedCorpus replaces the generated corpus in dir: stale
// g*.json files are removed, and each test is written to <name>.json.
func WriteGeneratedCorpus(dir string, tests []*Test) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	old, err := filepath.Glob(filepath.Join(dir, "g*.json"))
	if err != nil {
		return err
	}
	for _, f := range old {
		if err := os.Remove(f); err != nil {
			return err
		}
	}
	for _, t := range tests {
		data, err := json.MarshalIndent(t, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if err := os.WriteFile(filepath.Join(dir, t.Name+".json"), data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// Load returns the embedded test with the given name, searching the
// hand-written corpus first and the generated corpus second.
func Load(name string) (*Test, error) {
	tests, err := Corpus()
	if err != nil {
		return nil, err
	}
	for _, t := range tests {
		if t.Name == name {
			return t, nil
		}
	}
	if strings.HasPrefix(name, "g") {
		gen, err := Generated()
		if err != nil {
			return nil, err
		}
		for _, t := range gen {
			if t.Name == name {
				return t, nil
			}
		}
	}
	return nil, fmt.Errorf("litmus: no corpus test named %q", name)
}
