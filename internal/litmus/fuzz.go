package litmus

// Random litmus-test generation and shrinking. The fuzzer generates small
// random programs over the Table 1 primitives, cross-validates each one
// (axiomatic allowed set vs. jittered simulator sweep), and when a
// violation appears shrinks the program to a minimal reproducer before
// reporting it.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"ssmp/internal/bccheck"
)

// FuzzOptions configures a fuzzing run.
type FuzzOptions struct {
	// Rng seeds the program generator (deterministic per seed).
	Rng uint64
	// Seeds is the jitter sweep applied to every candidate (default
	// Seeds(16)).
	Seeds []uint64
	// Budget bounds the wall-clock time; when zero, Count bounds the run
	// instead.
	Budget time.Duration
	// Count is the number of candidates when Budget is zero (default 100).
	Count int
	// Tuning is passed through to the enumerator for every candidate.
	Tuning bccheck.Tuning
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)
}

// FuzzFailure is a cross-validation violation found by the fuzzer.
type FuzzFailure struct {
	// Test and Report are the original failing candidate.
	Test   *Test
	Report *Report
	// Shrunk and ShrunkReport are the minimized reproducer.
	Shrunk       *Test
	ShrunkReport *Report
}

// FuzzStats summarizes a fuzzing run.
type FuzzStats struct {
	// Tested counts candidates fully cross-validated.
	Tested int
	// Skipped counts candidates abandoned at the enumerator state limit.
	Skipped int
	// States totals the abstract states enumerated across all candidates.
	States int
	// Elapsed is the wall-clock time spent.
	Elapsed time.Duration
	// Failure is the first violation found (after shrinking), nil if the
	// run was clean.
	Failure *FuzzFailure
}

// Rates renders the run's throughput (programs/sec, states/sec).
func (st *FuzzStats) Rates() string {
	secs := st.Elapsed.Seconds()
	if secs <= 0 {
		secs = 1e-9
	}
	return fmt.Sprintf("%.1f programs/sec, %.0f states/sec",
		float64(st.Tested+st.Skipped)/secs, float64(st.States)/secs)
}

// Fuzz runs the generator until the budget or count is exhausted, the
// context is cancelled, or a violation is found. Cancellation is checked
// between candidates and stops the run cleanly (no error, stats reflect
// work done). A violation means the simulator produced an outcome the
// axiomatic model forbids — a soundness bug in machine or model — so the
// run stops and returns it shrunk.
func Fuzz(ctx context.Context, o FuzzOptions) (*FuzzStats, error) {
	seeds := o.Seeds
	if len(seeds) == 0 {
		seeds = Seeds(16)
	}
	count := o.Count
	if o.Budget == 0 && count == 0 {
		count = 100
	}
	logf := o.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	rng := rand.New(rand.NewSource(int64(o.Rng)))
	start := time.Now()
	st := &FuzzStats{}
	defer func() {
		st.Elapsed = time.Since(start)
		logf("fuzz: done: %d tested, %d skipped, %s elapsed, %s",
			st.Tested, st.Skipped, st.Elapsed.Round(time.Millisecond), st.Rates())
	}()

	for i := 0; ; i++ {
		if ctx.Err() != nil {
			logf("fuzz: cancelled after %d candidates", st.Tested+st.Skipped)
			break
		}
		if o.Budget > 0 {
			if time.Since(start) >= o.Budget {
				break
			}
		} else if i >= count {
			break
		}
		t := generate(rng, i)
		rep, err := RunTuned(t, seeds, o.Tuning)
		if err != nil {
			if errors.Is(err, bccheck.ErrStateLimit) {
				st.Skipped++
				continue
			}
			return st, fmt.Errorf("fuzz candidate %d: %w", i, err)
		}
		st.Tested++
		st.States += rep.States
		if st.Tested%50 == 0 {
			logf("fuzz: %d tested, %d skipped, %s elapsed", st.Tested, st.Skipped, time.Since(start).Round(time.Millisecond))
		}
		if len(rep.Violations) == 0 {
			continue
		}
		logf("fuzz: candidate %d VIOLATES (%d outcomes outside allowed set), shrinking", i, len(rep.Violations))
		shrunk := shrink(t, func(c *Test) bool {
			r, err := RunTuned(c, seeds, o.Tuning)
			return err == nil && len(r.Violations) > 0
		})
		srep, err := RunTuned(shrunk, seeds, o.Tuning)
		if err != nil {
			return st, fmt.Errorf("fuzz: re-running shrunk candidate: %w", err)
		}
		st.Failure = &FuzzFailure{Test: t, Report: rep, Shrunk: shrunk, ShrunkReport: srep}
		return st, nil
	}
	return st, nil
}

// Generator vocabulary: a few data locations, one lock block, one barrier.
// Plain WRITEs are only emitted under a WRITE-LOCK — the paper's
// programming discipline for lock-protected data — and lock sections are
// generated as balanced blocks so every candidate passes validation.
var fuzzLocs = []string{"x", "y", "z"}

const (
	fuzzLock = "l"
	fuzzBar  = "b"
)

// atom is a generation unit: one statement, or a whole lock block that is
// only ever inserted or removed atomically.
type atom []Stmt

// generate builds a random well-formed test.
func generate(rng *rand.Rand, id int) *Test {
	nproc := 2 + rng.Intn(3)
	val := uint64(0)
	nextVal := func() uint64 { val++; return val }
	loc := func() string { return fuzzLocs[rng.Intn(len(fuzzLocs))] }

	simple := func() Stmt {
		switch rng.Intn(9) {
		case 0, 1:
			return Stmt{Op: "read", Loc: loc()}
		case 2:
			return Stmt{Op: "read-global", Loc: loc()}
		case 3, 4:
			return Stmt{Op: "write-global", Loc: loc(), Val: nextVal()}
		case 5:
			return Stmt{Op: "read-update", Loc: loc()}
		case 6:
			return Stmt{Op: "reset-update", Loc: loc()}
		case 7:
			// Private write: dirties a word of the local copy, which an
			// update propagation must NOT clobber (coherence of the
			// per-word merge).
			return Stmt{Op: "write", Loc: loc(), Val: nextVal()}
		default:
			return Stmt{Op: "flush"}
		}
	}
	lockBlock := func() atom {
		write := rng.Intn(2) == 0
		op := "read-lock"
		if write {
			op = "write-lock"
		}
		blk := atom{{Op: op, Loc: fuzzLock}}
		for n := rng.Intn(3); n > 0; n-- {
			switch {
			case write && rng.Intn(2) == 0:
				blk = append(blk, Stmt{Op: "write", Loc: fuzzLock, Val: nextVal()})
			case rng.Intn(2) == 0:
				blk = append(blk, Stmt{Op: "read", Loc: fuzzLock})
			default:
				blk = append(blk, Stmt{Op: "read-global", Loc: loc()})
			}
		}
		return append(blk, Stmt{Op: "unlock", Loc: fuzzLock})
	}

	procs := make([][]atom, nproc)
	for p := range procs {
		for n := 1 + rng.Intn(4); n > 0; n-- {
			if rng.Intn(4) == 0 {
				procs[p] = append(procs[p], lockBlock())
			} else {
				procs[p] = append(procs[p], atom{simple()})
			}
		}
	}
	// A barrier must be joined by every processor, so it is an
	// all-or-nothing insertion at a random atom boundary in each.
	if rng.Intn(3) == 0 {
		for p := range procs {
			at := rng.Intn(len(procs[p]) + 1)
			procs[p] = append(procs[p][:at:at], append([]atom{{Stmt{Op: "barrier", Loc: fuzzBar}}}, procs[p][at:]...)...)
		}
	}

	t := &Test{Name: fmt.Sprintf("fuzz-%d", id)}
	for _, ats := range procs {
		var stmts []Stmt
		for _, a := range ats {
			stmts = append(stmts, a...)
		}
		t.Procs = append(t.Procs, stmts)
	}
	return t
}

// shrink minimizes a failing test while the predicate keeps holding. The
// reductions — drop a processor, drop the barrier everywhere, drop a lock
// block, drop a single non-structural statement — each preserve
// well-formedness, and the loop runs them to a fixpoint.
func shrink(t *Test, failing func(*Test) bool) *Test {
	cur := t
	for {
		next, ok := shrinkStep(cur, failing)
		if !ok {
			return cur
		}
		cur = next
	}
}

// shrinkStep tries every single reduction and returns the first that still
// fails.
func shrinkStep(t *Test, failing func(*Test) bool) (*Test, bool) {
	// Drop a whole processor.
	for p := range t.Procs {
		if len(t.Procs) < 2 {
			break
		}
		c := cloneTest(t)
		c.Procs = append(c.Procs[:p:p], c.Procs[p+1:]...)
		if failing(c) {
			return c, true
		}
	}
	// Drop the barrier from every processor at once.
	if c := cloneTest(t); dropOps(c, "barrier") && failing(c) {
		return c, true
	}
	// Drop a lock block (acquire through matching unlock).
	for p, stmts := range t.Procs {
		for i, s := range stmts {
			if s.Op != "read-lock" && s.Op != "write-lock" {
				continue
			}
			end := i
			for end < len(stmts) && stmts[end].Op != "unlock" {
				end++
			}
			if end == len(stmts) {
				continue
			}
			c := cloneTest(t)
			c.Procs[p] = append(c.Procs[p][:i:i], c.Procs[p][end+1:]...)
			if failing(c) {
				return c, true
			}
		}
	}
	// Drop one non-structural statement.
	for p, stmts := range t.Procs {
		for i, s := range stmts {
			switch s.Op {
			case "read-lock", "write-lock", "unlock", "barrier":
				continue
			}
			c := cloneTest(t)
			c.Procs[p] = append(c.Procs[p][:i:i], c.Procs[p][i+1:]...)
			if failing(c) {
				return c, true
			}
		}
	}
	return nil, false
}

// dropOps removes every statement with the given op; reports whether any
// was removed.
func dropOps(t *Test, op string) bool {
	dropped := false
	for p, stmts := range t.Procs {
		var keep []Stmt
		for _, s := range stmts {
			if s.Op == op {
				dropped = true
				continue
			}
			keep = append(keep, s)
		}
		t.Procs[p] = keep
	}
	return dropped
}

// cloneTest deep-copies the parts shrinking mutates.
func cloneTest(t *Test) *Test {
	c := *t
	c.Procs = make([][]Stmt, len(t.Procs))
	for p, stmts := range t.Procs {
		c.Procs[p] = append([]Stmt(nil), stmts...)
	}
	c.MustAllow = nil
	c.MustForbid = nil
	return &c
}
