package litmus

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"ssmp/internal/bccheck"
)

// TestCanonicalizeInvariance: permuting processors and renaming locations
// and values must land every member of the equivalence class on the same
// canonical form and name.
func TestCanonicalizeInvariance(t *testing.T) {
	base := &Test{Name: "a", Procs: [][]Stmt{
		{{Op: "write-global", Loc: "x", Val: 7}, {Op: "flush"}, {Op: "read-global", Loc: "y"}},
		{{Op: "write-global", Loc: "y", Val: 3}, {Op: "flush"}, {Op: "read-global", Loc: "x"}},
	}}
	// The same program with procs swapped, locations swapped, and values
	// relabeled.
	twin := &Test{Name: "b", Procs: [][]Stmt{
		{{Op: "write-global", Loc: "q", Val: 100}, {Op: "flush"}, {Op: "read-global", Loc: "p"}},
		{{Op: "write-global", Loc: "p", Val: 42}, {Op: "flush"}, {Op: "read-global", Loc: "q"}},
	}}
	c1, k1, err := canonicalize(base)
	if err != nil {
		t.Fatal(err)
	}
	c2, k2, err := canonicalize(twin)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 || c1.Name != c2.Name {
		t.Fatalf("equivalence class split: %q vs %q (keys %q vs %q)", c1.Name, c2.Name, k1, k2)
	}
	if !reflect.DeepEqual(c1.Procs, c2.Procs) {
		t.Fatalf("canonical programs differ:\n%v\n%v", c1.Procs, c2.Procs)
	}
	// Canonicalization is a fixpoint.
	c3, k3, err := canonicalize(c1)
	if err != nil {
		t.Fatal(err)
	}
	if k3 != k1 || !reflect.DeepEqual(c3.Procs, c1.Procs) {
		t.Fatalf("canonical form is not a fixpoint")
	}
}

// TestCanonicalizeClassifiesLocks: a block touched by lock ops keeps one
// identity even when it also carries plain reads/writes (the lock-data
// pattern), and barriers stay barriers.
func TestCanonicalizeClassifiesLocks(t *testing.T) {
	lt := &Test{Name: "a", Procs: [][]Stmt{
		{{Op: "write-lock", Loc: "m"}, {Op: "write", Loc: "m", Val: 5}, {Op: "unlock", Loc: "m"}, {Op: "barrier", Loc: "bb"}},
		{{Op: "barrier", Loc: "bb"}, {Op: "read-lock", Loc: "m"}, {Op: "read", Loc: "m"}, {Op: "unlock", Loc: "m"}},
	}}
	c, _, err := canonicalize(lt)
	if err != nil {
		t.Fatal(err)
	}
	for _, stmts := range c.Procs {
		for _, s := range stmts {
			switch s.Op {
			case "read-lock", "write-lock", "unlock", "write", "read":
				if s.Loc != "l" {
					t.Fatalf("lock block renamed to %q, want l", s.Loc)
				}
			case "barrier":
				if s.Loc != "b" {
					t.Fatalf("barrier renamed to %q, want b", s.Loc)
				}
			}
		}
	}
}

// TestCanonicalizeRejectsPinned: tests with explicit placement, init, or
// observes are outside the generator's shape and must be refused rather
// than silently mangled.
func TestCanonicalizeRejectsPinned(t *testing.T) {
	lt := &Test{Name: "a", Init: map[string]uint64{"x": 1},
		Procs: [][]Stmt{{{Op: "read-global", Loc: "x"}}}}
	if _, _, err := canonicalize(lt); err == nil {
		t.Fatal("canonicalize accepted a test with Init")
	}
}

// TestFarmDeterministic: the accepted corpus is a pure function of the
// campaign parameters — worker count must not change a single byte.
func TestFarmDeterministic(t *testing.T) {
	opts := FarmOptions{Rng: 99, Count: 40}
	opts.Workers = 1
	_, corpus1, err := Farm(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	_, corpus4, err := Farm(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(corpus1)
	j4, _ := json.Marshal(corpus4)
	if string(j1) != string(j4) {
		t.Fatalf("farm output depends on worker count:\n1 worker: %d tests\n4 workers: %d tests",
			len(corpus1), len(corpus4))
	}
	if len(corpus1) == 0 {
		t.Fatal("40-candidate campaign accepted nothing")
	}
	for _, lt := range corpus1 {
		if len(lt.Coverage) == 0 {
			t.Errorf("%s: accepted with empty coverage vector", lt.Name)
		}
		if len(lt.Allowed) == 0 {
			t.Errorf("%s: accepted without a pinned allowed set", lt.Name)
		}
	}
}

// TestWriteGeneratedCorpus: writing replaces stale generated files and
// the written files round-trip through Parse.
func TestWriteGeneratedCorpus(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "gdeadbeef0000.json")
	if err := os.WriteFile(stale, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	tests := []*Test{{Name: "gtest00000000", Procs: [][]Stmt{{{Op: "read-global", Loc: "x"}}}}}
	if err := WriteGeneratedCorpus(dir, tests); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale generated file survived: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "gtest00000000.json"))
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Name != "gtest00000000" {
		t.Fatalf("round-trip name %q", rt.Name)
	}
}

// TestGeneratedCorpusReplay is the CI gate on the committed farm corpus:
// at least 200 canonical tests, every §2 axiom family covered, and each
// test still (a) canonical under today's canonicalization, (b) pinned to
// today's allowed set (checked inside RunTuned), (c) tagged with today's
// coverage vector, and (d) clean under simulator cross-validation.
func TestGeneratedCorpusReplay(t *testing.T) {
	gen, err := Generated()
	if err != nil {
		t.Fatal(err)
	}
	if len(gen) < 200 {
		t.Fatalf("generated corpus has %d tests, want >= 200", len(gen))
	}

	// Axiom coverage over the whole corpus: hand-written vectors are
	// recomputed, generated ones recomputed below per test.
	counts := map[string]int{}
	hand, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	for _, lt := range hand {
		cov, err := CoverageVector(lt)
		if err != nil {
			t.Fatalf("%s: coverage: %v", lt.Name, err)
		}
		if !equalCoverage(cov, lt.Coverage) {
			t.Errorf("%s: stored coverage %v, computed %v", lt.Name, lt.Coverage, cov)
		}
		for _, ax := range cov {
			counts[ax]++
		}
	}

	replay := gen
	if testing.Short() {
		replay = gen[:40]
	}
	for _, lt := range gen {
		for _, ax := range lt.Coverage {
			counts[ax]++
		}
	}
	for _, ax := range Axioms {
		if counts[ax] == 0 {
			t.Errorf("axiom family %q has no covering test in the corpus", ax)
		}
	}

	for _, lt := range replay {
		canon, _, err := canonicalize(lt)
		if err != nil {
			t.Errorf("%s: canonicalize: %v", lt.Name, err)
			continue
		}
		if canon.Name != lt.Name || !reflect.DeepEqual(canon.Procs, lt.Procs) {
			t.Errorf("%s: not in canonical form (canonicalizes to %s)", lt.Name, canon.Name)
		}
		cov, err := CoverageVector(lt)
		if err != nil {
			t.Errorf("%s: coverage: %v", lt.Name, err)
			continue
		}
		if !equalCoverage(cov, lt.Coverage) {
			t.Errorf("%s: stored coverage %v, computed %v", lt.Name, lt.Coverage, cov)
		}
		rep, err := RunTuned(lt, Seeds(8), bccheck.Tuning{})
		if err != nil {
			t.Errorf("%s: run: %v", lt.Name, err)
			continue
		}
		if !rep.Ok() {
			t.Errorf("%s: replay failed: violations=%v asserts=%v", lt.Name, rep.Violations, rep.AssertFailures)
		}
	}
}
