package litmus

import (
	"strings"
	"sync"
	"testing"

	"ssmp/internal/metrics"
)

// TestChaosSoakCorpus is the chaos soak: every corpus test is swept across
// >= 32 fault seeds with drop, duplicate and delay injection enabled, and
// every observed outcome must still be in the axiomatic allowed set — the
// reliable transport has to make the faulty fabric invisible to the memory
// model. The aggregated counters must show the recovery path actually ran.
func TestChaosSoakCorpus(t *testing.T) {
	tests, err := Corpus()
	if err != nil {
		t.Fatal(err)
	}
	seeds := ChaosSeeds(32)
	if testing.Short() {
		seeds = ChaosSeeds(8)
	}
	var mu sync.Mutex
	var total metrics.FaultCounters
	t.Run("corpus", func(t *testing.T) {
		for _, tc := range tests {
			tc := tc
			t.Run(tc.Name, func(t *testing.T) {
				t.Parallel()
				r, err := RunChaos(tc, seeds, ChaosConfig{Rates: DefaultChaosRates()})
				if err != nil {
					t.Fatal(err)
				}
				if !r.Ok() {
					t.Fatalf("chaos sweep failed (%s):\n  violations: %v\n  assert failures: %v",
						r.FaultConfig, r.Violations, r.AssertFailures)
				}
				if r.Faults == nil {
					t.Fatal("chaos report has no fault counters")
				}
				mu.Lock()
				total.Add(*r.Faults)
				mu.Unlock()
			})
		}
	})
	if !total.Any() {
		t.Fatal("chaos soak injected no faults at all")
	}
	if total.Retries == 0 {
		t.Fatal("chaos soak never exercised the retransmission path")
	}
	t.Logf("chaos soak: %d dropped, %d duplicated, %d delayed, %d retries, %d dup-suppressed, %d reordered",
		total.Dropped, total.Duplicated, total.Delayed, total.Retries, total.DupSuppressed, total.Reordered)
}

func TestRunChaosZeroRatesMatchesRun(t *testing.T) {
	tc, err := Load("mp")
	if err != nil {
		t.Fatal(err)
	}
	seeds := Seeds(6)
	plain, err := Run(tc, seeds)
	if err != nil {
		t.Fatal(err)
	}
	chaos, err := RunChaos(tc, seeds, ChaosConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if chaos.Faults != nil || chaos.FaultConfig != "" {
		t.Fatalf("zero-rate chaos sweep recorded fault state: %+v", chaos)
	}
	if len(plain.Observed) != len(chaos.Observed) {
		t.Fatalf("zero-rate chaos observed %d outcomes, plain run %d",
			len(chaos.Observed), len(plain.Observed))
	}
	for out := range plain.Observed {
		if _, ok := chaos.Observed[out]; !ok {
			t.Fatalf("outcome %q missing from zero-rate chaos sweep", out)
		}
	}
}

func TestChaosSeeds(t *testing.T) {
	s := ChaosSeeds(3)
	if len(s) != 3 || s[0] != 1 || s[2] != 3 {
		t.Fatalf("ChaosSeeds(3) = %v, want [1 2 3]", s)
	}
}

func TestChaosSummaryMentionsFaults(t *testing.T) {
	tc, err := Load("sb")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunChaos(tc, ChaosSeeds(4), ChaosConfig{Rates: DefaultChaosRates()})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Summary(), "chaos") {
		t.Fatalf("Summary() = %q, expected a chaos section", r.Summary())
	}
	if r.FaultConfig == "" || !strings.Contains(r.FaultConfig, "drop=") {
		t.Fatalf("FaultConfig = %q, want a rendered fault config", r.FaultConfig)
	}
}

func TestMustAllowForbidIntersectionRejected(t *testing.T) {
	_, err := Parse([]byte(`{
		"name": "bad-asserts",
		"procs": [[{"op": "write-global", "loc": "x", "val": 1}]],
		"observe": ["x"],
		"must_allow": ["x=1"],
		"must_forbid": ["x=1"]
	}`))
	if err == nil || !strings.Contains(err.Error(), "both must_allow and must_forbid") {
		t.Fatalf("intersecting assertions accepted: %v", err)
	}
}
