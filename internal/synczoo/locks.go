package synczoo

import (
	"ssmp/internal/core"
	"ssmp/internal/mem"
	"ssmp/internal/sim"
)

// spinRecheck is the modeled cost of one spin-loop iteration on a cached
// copy (load + test + branch), matching syncprim's constant.
const spinRecheck = sim.Time(8)

// TTASLock is test-and-test-and-set with bounded exponential backoff: the
// acquire path spins on the *cached* copy of the lock word (a local hit
// until the holder's release invalidates it) and only issues the RMW when
// the word reads free, backing off between failed attempts. Compared with
// plain test-and-set, the RMW storm after a release is the only remaining
// remote traffic; compared with pure backoff, an uncontended acquire does
// not sleep.
type TTASLock struct {
	Addr mem.Addr
	// Base and Max bound the backoff delay in cycles; zero values default
	// to 16 and 1024.
	Base, Max sim.Time
}

// Acquire spins on the cached copy, then attempts the test-and-set.
func (l TTASLock) Acquire(p *core.Proc) {
	base, max := l.Base, l.Max
	if base == 0 {
		base = 16
	}
	if max == 0 {
		max = 1024
	}
	delay := base
	for {
		for p.Read(l.Addr) != 0 {
			p.Think(spinRecheck)
		}
		if p.RMW(l.Addr, func(mem.Word) mem.Word { return 1 }) == 0 {
			return
		}
		// Lost the race to another spinner: back off before re-testing.
		p.Think(delay)
		if delay < max {
			delay *= 2
			if delay > max {
				delay = max
			}
		}
	}
}

// Release clears the lock word, invalidating the spinners' cached copies.
func (l TTASLock) Release(p *core.Proc) { p.Write(l.Addr, 0) }

// Name identifies the algorithm.
func (l TTASLock) Name() string { return "WBI-ttas" }
