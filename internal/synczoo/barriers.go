package synczoo

import (
	"fmt"

	"ssmp/internal/core"
	"ssmp/internal/mem"
)

// DisseminationBarrier is the classic O(P log P)-message, O(log P)-latency
// barrier: in round r, processor i signals processor (i + 2^r) mod P and
// waits for the signal from (i - 2^r) mod P. Every (processor, round) flag
// occupies a block of its own and has a single writer, so each spinner
// busy-waits on its own cached line — one invalidation per round per
// episode. Flags carry a generation count instead of a sense bit, so the
// barrier is reusable without reset traffic.
//
// Participants are processors 0..P-1. The per-processor generation counters
// are host-side bookkeeping (the simulator runs one processor goroutine at
// a time, so no synchronization is needed); the signalled state itself
// lives entirely in simulated memory.
type DisseminationBarrier struct {
	flags        mem.Addr
	blockWords   int
	participants int
	rounds       int
	gen          []uint64
}

// NewDisseminationBarrier lays out a dissemination barrier for procs
// participants in the arena.
func NewDisseminationBarrier(a *Arena, procs int) *DisseminationBarrier {
	if procs < 1 {
		panic(fmt.Sprintf("synczoo: dissemination barrier with %d participants", procs))
	}
	rounds := 0
	for 1<<rounds < procs {
		rounds++
	}
	b := &DisseminationBarrier{
		blockWords:   a.Geometry().BlockWords,
		participants: procs,
		rounds:       rounds,
		gen:          make([]uint64, procs),
	}
	if rounds > 0 {
		b.flags = a.Blocks(procs * rounds)
	}
	return b
}

// flag returns the address processor i spins on in round r.
func (b *DisseminationBarrier) flag(i, r int) mem.Addr {
	return b.flags + mem.Addr((i*b.rounds+r)*b.blockWords)
}

// Wait runs the log-P signalling rounds.
func (b *DisseminationBarrier) Wait(p *core.Proc) {
	me := p.Id()
	b.gen[me]++
	g := mem.Word(b.gen[me])
	for r := 0; r < b.rounds; r++ {
		peer := (me + 1<<r) % b.participants
		p.Write(b.flag(peer, r), g)
		for p.Read(b.flag(me, r)) < g {
			p.Think(spinRecheck)
		}
	}
}

// Name identifies the algorithm.
func (b *DisseminationBarrier) Name() string { return "WBI-dissem" }

// TreeBarrier is a 4-ary arrival/wakeup tree barrier in the style of
// Mellor-Crummey & Scott: processor i's parent is (i-1)/4 and its children
// are 4i+1..4i+4. On arrival a processor waits for its children, then sets
// its own arrival flag (spun on only by its parent); the root then releases
// its children by writing their wake flags, and the wakeup fans back down
// the tree. Every flag lives in its own block with a single writer and —
// for the wake flags — a single spinner, so each release invalidates
// exactly one cache. Generation counts make the barrier reusable.
type TreeBarrier struct {
	arriveBase   mem.Addr
	wakeBase     mem.Addr
	blockWords   int
	participants int
	gen          []uint64
}

// NewTreeBarrier lays out a 4-ary tree barrier for procs participants.
func NewTreeBarrier(a *Arena, procs int) *TreeBarrier {
	if procs < 1 {
		panic(fmt.Sprintf("synczoo: tree barrier with %d participants", procs))
	}
	return &TreeBarrier{
		arriveBase:   a.Blocks(procs),
		wakeBase:     a.Blocks(procs),
		blockWords:   a.Geometry().BlockWords,
		participants: procs,
		gen:          make([]uint64, procs),
	}
}

func (b *TreeBarrier) arrive(i int) mem.Addr {
	return b.arriveBase + mem.Addr(i*b.blockWords)
}

func (b *TreeBarrier) wake(i int) mem.Addr {
	return b.wakeBase + mem.Addr(i*b.blockWords)
}

func (b *TreeBarrier) children(i int) []int {
	var c []int
	for k := 4*i + 1; k <= 4*i+4 && k < b.participants; k++ {
		c = append(c, k)
	}
	return c
}

// Wait gathers arrivals up the tree and fans the wakeup back down.
func (b *TreeBarrier) Wait(p *core.Proc) {
	me := p.Id()
	b.gen[me]++
	g := mem.Word(b.gen[me])
	for _, c := range b.children(me) {
		for p.Read(b.arrive(c)) < g {
			p.Think(spinRecheck)
		}
	}
	if me != 0 {
		p.Write(b.arrive(me), g)
		for p.Read(b.wake(me)) < g {
			p.Think(spinRecheck)
		}
	}
	for _, c := range b.children(me) {
		p.Write(b.wake(c), g)
	}
}

// Name identifies the algorithm.
func (b *TreeBarrier) Name() string { return "WBI-tree4" }

// RUCDisseminationBarrier is the dissemination barrier restated in the CBL
// machine's Table-1 primitives: signals are WRITE-GLOBALs and each spinner
// subscribes to its own flag line with READ-UPDATE, so the home's update
// propagation refreshes the cached copy in place and the spin loop runs as
// local hits — the reader-initiated analogue of invalidate-and-refetch.
// Arrival flushes the write buffer first (a CP-Synch operation, like the
// hardware barrier), so every global write issued before the barrier is
// performed before any signal is observable.
type RUCDisseminationBarrier struct {
	flags        mem.Addr
	blockWords   int
	participants int
	rounds       int
	gen          []uint64
}

// NewRUCDisseminationBarrier lays out the CBL dissemination barrier.
func NewRUCDisseminationBarrier(a *Arena, procs int) *RUCDisseminationBarrier {
	if procs < 1 {
		panic(fmt.Sprintf("synczoo: ruc dissemination barrier with %d participants", procs))
	}
	rounds := 0
	for 1<<rounds < procs {
		rounds++
	}
	b := &RUCDisseminationBarrier{
		blockWords:   a.Geometry().BlockWords,
		participants: procs,
		rounds:       rounds,
		gen:          make([]uint64, procs),
	}
	if rounds > 0 {
		b.flags = a.Blocks(procs * rounds)
	}
	return b
}

func (b *RUCDisseminationBarrier) flag(i, r int) mem.Addr {
	return b.flags + mem.Addr((i*b.rounds+r)*b.blockWords)
}

// Wait flushes the write buffer, then runs the signalling rounds over
// READ-UPDATE-subscribed lines.
func (b *RUCDisseminationBarrier) Wait(p *core.Proc) {
	p.FlushBuffer()
	me := p.Id()
	b.gen[me]++
	g := mem.Word(b.gen[me])
	for r := 0; r < b.rounds; r++ {
		peer := (me + 1<<r) % b.participants
		p.WriteGlobal(b.flag(peer, r), g)
		for p.ReadUpdate(b.flag(me, r)) < g {
			p.Think(spinRecheck)
		}
	}
}

// Name identifies the algorithm.
func (b *RUCDisseminationBarrier) Name() string { return "CBL-ruc-dissem" }
