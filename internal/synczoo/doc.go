// Package synczoo is a zoo of software synchronization algorithms built
// only from the machine's Table-1 primitives, benchmarked on equal footing
// with the paper's hardware mechanisms and scored in the currency of the
// RMR-complexity literature: remote memory references per operation.
//
// Spin locks: test-and-set, test-and-set with bounded exponential backoff,
// test-and-test-and-set (spin on the cached copy, backoff between RMW
// attempts), ticket, and the MCS queue lock — plus the paper's hardware
// cache-based queued lock (CBL). Barriers: sense-reversing centralized,
// dissemination, 4-ary arrival/wakeup tree (MCS style) — plus the paper's
// hardware barrier and a reader-initiated-update dissemination variant for
// the CBL machine that spins on READ-UPDATE-subscribed lines.
//
// Every algorithm is registered behind the common Lock/Barrier interfaces
// with a machine-protocol tag and an allocator-driven constructor, so the
// same contention-sweep harness, litmus checks, and chaos soak run over all
// of them. The headline reproduction is Mellor-Crummey & Scott's claim that
// a queue lock performs O(1) remote references per acquisition while
// test-and-set grows with the processor count; see bench.go and the pinning
// test in zoo_test.go.
package synczoo
