package synczoo

import (
	"testing"

	"ssmp/internal/core"
	"ssmp/internal/network"
)

// noopLock grants everyone the lock immediately — a deliberately broken
// algorithm for checking the witnesses detect violations.
type noopLock struct{}

func (noopLock) Acquire(*core.Proc) {}
func (noopLock) Release(*core.Proc) {}
func (noopLock) Name() string       { return "broken" }

// noopBarrier separates nothing and skews processor 0 far behind, so the
// phase witness is guaranteed to observe an unseparated neighbour.
type noopBarrier struct{}

func (noopBarrier) Wait(p *core.Proc) {
	if p.Id() == 0 {
		p.Think(100_000)
	}
}
func (noopBarrier) Name() string { return "broken" }

func jitterSeeds(t *testing.T) []uint64 {
	if testing.Short() {
		return []uint64{0, 1, 2}
	}
	return []uint64{0, 1, 2, 3, 4, 5, 6, 7}
}

// TestLockAlgosMutex sweeps every lock algorithm across jitter seeds: every
// legal schedule must uphold mutual exclusion exactly (observed final count
// ⊆ the single allowed outcome).
func TestLockAlgosMutex(t *testing.T) {
	for _, algo := range LockAlgos() {
		algo := algo
		t.Run(algo.Key, func(t *testing.T) {
			for _, seed := range jitterSeeds(t) {
				if _, err := CheckMutex(algo, LockBenchOptions{
					Procs: 4, Iters: 6, Crit: 16, Delay: 32, Jitter: seed,
				}); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestBarrierAlgosSeparation sweeps every barrier algorithm across jitter
// seeds: every schedule must separate the phases.
func TestBarrierAlgosSeparation(t *testing.T) {
	for _, algo := range BarrierAlgos() {
		algo := algo
		t.Run(algo.Key, func(t *testing.T) {
			for _, seed := range jitterSeeds(t) {
				if _, err := CheckBarrierSeparation(algo, BarrierBenchOptions{
					Procs: 4, Episodes: 3, Work: 40, Jitter: seed,
				}); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestLockBenchDeterministic pins seed-0 bit-identity: two fresh machines
// running the same lock workload must produce identical measurements, RMR
// counters included.
func TestLockBenchDeterministic(t *testing.T) {
	for _, algo := range LockAlgos() {
		algo := algo
		t.Run(algo.Key, func(t *testing.T) {
			o := LockBenchOptions{Procs: 4, Iters: 5, Crit: 16, Delay: 32}
			a, err := RunLockBench(algo, o)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunLockBench(algo, o)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("nondeterministic bench:\n  %+v\n  %+v", a, b)
			}
		})
	}
}

// TestBarrierBenchDeterministic pins the barrier measurements the same way.
func TestBarrierBenchDeterministic(t *testing.T) {
	for _, algo := range BarrierAlgos() {
		algo := algo
		t.Run(algo.Key, func(t *testing.T) {
			o := BarrierBenchOptions{Procs: 4, Episodes: 3, Work: 40}
			a, err := RunBarrierBench(algo, o)
			if err != nil {
				t.Fatal(err)
			}
			b, err := RunBarrierBench(algo, o)
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("nondeterministic bench:\n  %+v\n  %+v", a, b)
			}
		})
	}
}

// TestMCSFlatVsTASGrowth pins the zoo's headline reproduction — the MCS
// queue lock's O(1) remote references per acquisition against test-and-
// set's growth with the processor count (Mellor-Crummey & Scott).
func TestMCSFlatVsTASGrowth(t *testing.T) {
	rmrPerAcq := func(key string, procs int) float64 {
		algo, err := LockAlgoByKey(key)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := RunLockBench(algo, LockBenchOptions{Procs: procs, Iters: 6, Crit: 16, Delay: 32})
		if err != nil {
			t.Fatal(err)
		}
		if !pt.Verified() {
			t.Fatalf("%s p=%d: exclusion violated (%+v)", key, procs, pt)
		}
		return pt.RMRPerAcq()
	}

	small, large := 4, 32
	mcsSmall, mcsLarge := rmrPerAcq("mcs", small), rmrPerAcq("mcs", large)
	tasSmall, tasLarge := rmrPerAcq("tas", small), rmrPerAcq("tas", large)
	t.Logf("rmr/acq: mcs %d->%d: %.2f -> %.2f; tas %d->%d: %.2f -> %.2f",
		small, large, mcsSmall, mcsLarge, small, large, tasSmall, tasLarge)

	// MCS stays O(1)-flat: growing the machine 8x may not even double the
	// per-acquisition remote traffic.
	if mcsLarge > 2*mcsSmall {
		t.Errorf("mcs rmr/acq grew with procs: %.2f at p=%d vs %.2f at p=%d",
			mcsLarge, large, mcsSmall, small)
	}
	// Test-and-set grows with the processor count: every release triggers a
	// re-read and re-acquire storm across all spinners.
	if tasLarge < 2*tasSmall {
		t.Errorf("tas rmr/acq did not grow with procs: %.2f at p=%d vs %.2f at p=%d",
			tasLarge, large, tasSmall, small)
	}
	// And at scale the two algorithms separate clearly.
	if tasLarge < 3*mcsLarge {
		t.Errorf("tas (%.2f) does not separate from mcs (%.2f) at p=%d",
			tasLarge, mcsLarge, large)
	}
}

// TestSweepsRejectBrokenAlgorithms checks the witnesses have teeth: a lock
// that does nothing must fail the mutex sweep, and a barrier that does
// nothing must fail separation.
func TestSweepsRejectBrokenAlgorithms(t *testing.T) {
	broken := LockAlgo{Key: "broken", Proto: core.ProtoWBI, New: func(a *Arena, procs int) LockInstance {
		return LockInstance{Lock: noopLock{}, Data: a.Block()}
	}}
	if _, err := SweepMutex(broken, 4, 4, []uint64{0}, network.FaultRates{}); err == nil {
		t.Fatal("no-op lock passed the mutual-exclusion sweep")
	}
	brokenBar := BarrierAlgo{Key: "broken", Proto: core.ProtoWBI, New: func(a *Arena, procs int) Barrier {
		return noopBarrier{}
	}}
	if _, err := SweepBarrier(brokenBar, 4, 3, []uint64{0}, network.FaultRates{}); err == nil {
		t.Fatal("no-op barrier passed the separation sweep")
	}
}
