package synczoo

import (
	"fmt"

	"ssmp/internal/core"
	"ssmp/internal/mem"
	"ssmp/internal/syncprim"
)

// Lock is the zoo's common mutual-exclusion interface; it is the syncprim
// Locker, so the paper's hardware CBL lock and the software algorithms all
// satisfy it.
type Lock = syncprim.Locker

// Barrier is the zoo's common barrier interface (syncprim's Barrier).
type Barrier = syncprim.Barrier

// Arena hands out whole memory blocks of a machine's address space, so
// algorithm constructors can lay out their words without false sharing:
// every flag a processor spins on gets a block of its own unless the
// algorithm deliberately shares (the centralized barrier's counter, a
// test-and-set word). Consecutive blocks are homed round-robin across the
// nodes, spreading directory load.
type Arena struct {
	geom mem.Geometry
	next mem.Block
}

// NewArena returns an allocator over geom starting at block 1 (block 0 is
// left free for caller-owned words).
func NewArena(geom mem.Geometry) *Arena {
	return &Arena{geom: geom, next: 1}
}

// Block allocates one fresh block and returns the address of its word 0.
func (a *Arena) Block() mem.Addr {
	addr := a.geom.BaseAddr(a.next)
	a.next++
	return addr
}

// Blocks allocates n consecutive blocks and returns the first word's
// address.
func (a *Arena) Blocks(n int) mem.Addr {
	if n < 1 {
		panic(fmt.Sprintf("synczoo: Blocks(%d)", n))
	}
	addr := a.geom.BaseAddr(a.next)
	a.next += mem.Block(n)
	return addr
}

// Geometry returns the arena's address-space geometry.
func (a *Arena) Geometry() mem.Geometry { return a.geom }

// LockInstance is a constructed lock plus one word of protected data. On
// the CBL machine Data lies inside the lock's own block (the §4.3
// colocation rule: the grant carries the data into the lock cache, and a
// plain read of any other shared block could be stale); on the WBI machine
// coherent reads have no such constraint and Data gets its own block.
type LockInstance struct {
	Lock Lock
	Data mem.Addr
}

// LockAlgo is a registered lock algorithm: a stable key for reports and
// benchmarks, the machine protocol it runs on, and a constructor that lays
// the lock out in a fresh arena for the given processor count.
type LockAlgo struct {
	Key   string
	Proto core.Protocol
	New   func(a *Arena, procs int) LockInstance
}

// BarrierAlgo is a registered barrier algorithm.
type BarrierAlgo struct {
	Key   string
	Proto core.Protocol
	New   func(a *Arena, procs int) Barrier
}

// LockAlgos returns the lock zoo. Keys are stable; order is the reporting
// order.
func LockAlgos() []LockAlgo {
	return []LockAlgo{
		{Key: "tas", Proto: core.ProtoWBI, New: func(a *Arena, procs int) LockInstance {
			return LockInstance{Lock: syncprim.TestAndSetLock{Addr: a.Block()}, Data: a.Block()}
		}},
		{Key: "tas-backoff", Proto: core.ProtoWBI, New: func(a *Arena, procs int) LockInstance {
			return LockInstance{Lock: syncprim.BackoffLock{Addr: a.Block()}, Data: a.Block()}
		}},
		{Key: "ttas", Proto: core.ProtoWBI, New: func(a *Arena, procs int) LockInstance {
			return LockInstance{Lock: TTASLock{Addr: a.Block()}, Data: a.Block()}
		}},
		{Key: "ticket", Proto: core.ProtoWBI, New: func(a *Arena, procs int) LockInstance {
			return LockInstance{
				Lock: syncprim.TicketLock{TicketAddr: a.Block(), ServingAddr: a.Block()},
				Data: a.Block(),
			}
		}},
		{Key: "mcs", Proto: core.ProtoWBI, New: func(a *Arena, procs int) LockInstance {
			return LockInstance{
				Lock: syncprim.MCSLock{
					TailAddr:   a.Block(),
					NodeBase:   a.Blocks(procs),
					BlockWords: a.geom.BlockWords,
				},
				Data: a.Block(),
			}
		}},
		{Key: "cbl", Proto: core.ProtoCBL, New: func(a *Arena, procs int) LockInstance {
			b := a.Block()
			return LockInstance{Lock: syncprim.CBLLock{Addr: b}, Data: b + 1}
		}},
	}
}

// BarrierAlgos returns the barrier zoo.
func BarrierAlgos() []BarrierAlgo {
	return []BarrierAlgo{
		{Key: "central", Proto: core.ProtoWBI, New: func(a *Arena, procs int) Barrier {
			return syncprim.SWBarrier{CountAddr: a.Block(), GenAddr: a.Block(), Participants: procs}
		}},
		{Key: "dissem", Proto: core.ProtoWBI, New: func(a *Arena, procs int) Barrier {
			return NewDisseminationBarrier(a, procs)
		}},
		{Key: "tree4", Proto: core.ProtoWBI, New: func(a *Arena, procs int) Barrier {
			return NewTreeBarrier(a, procs)
		}},
		{Key: "hw", Proto: core.ProtoCBL, New: func(a *Arena, procs int) Barrier {
			return syncprim.HWBarrier{Addr: a.Block(), Participants: procs}
		}},
		{Key: "ruc-dissem", Proto: core.ProtoCBL, New: func(a *Arena, procs int) Barrier {
			return NewRUCDisseminationBarrier(a, procs)
		}},
	}
}

// LockAlgoByKey returns the registered lock algorithm with the given key.
func LockAlgoByKey(key string) (LockAlgo, error) {
	for _, al := range LockAlgos() {
		if al.Key == key {
			return al, nil
		}
	}
	return LockAlgo{}, fmt.Errorf("synczoo: unknown lock algorithm %q", key)
}

// BarrierAlgoByKey returns the registered barrier algorithm with the given
// key.
func BarrierAlgoByKey(key string) (BarrierAlgo, error) {
	for _, al := range BarrierAlgos() {
		if al.Key == key {
			return al, nil
		}
	}
	return BarrierAlgo{}, fmt.Errorf("synczoo: unknown barrier algorithm %q", key)
}
