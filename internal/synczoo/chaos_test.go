package synczoo

import (
	"testing"

	"ssmp/internal/litmus"
	"ssmp/internal/metrics"
)

func chaosSeeds(t *testing.T) []uint64 {
	if testing.Short() {
		return litmus.ChaosSeeds(4)
	}
	return litmus.ChaosSeeds(12)
}

// TestChaosSoakLocks drives the mutual-exclusion witness for every lock
// algorithm over a misbehaving interconnect (drops, duplicates, delays at
// the soak's standard rates), each seed jittering the schedule and the
// fault plane together. The reliable transport must keep every algorithm
// correct, and the sweep must actually have injected faults and recovered.
func TestChaosSoakLocks(t *testing.T) {
	seeds := chaosSeeds(t)
	rates := litmus.DefaultChaosRates()
	var total metrics.FaultCounters
	for _, algo := range LockAlgos() {
		f, err := SweepMutex(algo, 4, 4, seeds, rates)
		if err != nil {
			t.Fatal(err)
		}
		total.Add(f)
	}
	if !total.Any() {
		t.Fatal("chaos soak injected no faults")
	}
	if total.Retries == 0 {
		t.Fatal("chaos soak exercised no retransmissions")
	}
}

// TestChaosSoakBarriers runs the phase-separation witness for every barrier
// algorithm under the same fault plane.
func TestChaosSoakBarriers(t *testing.T) {
	seeds := chaosSeeds(t)
	rates := litmus.DefaultChaosRates()
	var total metrics.FaultCounters
	for _, algo := range BarrierAlgos() {
		f, err := SweepBarrier(algo, 4, 3, seeds, rates)
		if err != nil {
			t.Fatal(err)
		}
		total.Add(f)
	}
	if !total.Any() {
		t.Fatal("chaos soak injected no faults")
	}
}
