package synczoo

import (
	"fmt"

	"ssmp/internal/metrics"
	"ssmp/internal/network"
)

// The zoo's litmus checks are simulation-level sweeps, not axiomatic
// enumerations: the algorithms busy-wait, and an unbounded spin loop has no
// finite interleaving set for the bccheck enumerator to explore. Instead
// each run carries its own witness — a non-atomic lock-protected increment
// for mutual exclusion, a published-phase read for barrier separation — and
// the sweep drives it across schedule-jitter and fault seeds. The observed
// outcome set must stay inside the single allowed outcome (the exact
// final count, every phase separated), mirroring the observed ⊆ allowed
// discipline of the axiomatic litmus engine.

// CheckMutex runs the mutual-exclusion witness for one lock algorithm and
// returns an error describing any violation.
func CheckMutex(algo LockAlgo, o LockBenchOptions) (LockPoint, error) {
	pt, err := RunLockBench(algo, o)
	if err != nil {
		return pt, err
	}
	if pt.MutexViolations > 0 {
		return pt, fmt.Errorf("synczoo: %s p=%d jitter=%d: %d overlapping critical sections",
			algo.Key, o.Procs, o.Jitter, pt.MutexViolations)
	}
	if pt.Final != pt.Want {
		return pt, fmt.Errorf("synczoo: %s p=%d jitter=%d: lost updates — final %d, want %d",
			algo.Key, o.Procs, o.Jitter, pt.Final, pt.Want)
	}
	return pt, nil
}

// CheckBarrierSeparation runs the phase-separation witness for one barrier
// algorithm.
func CheckBarrierSeparation(algo BarrierAlgo, o BarrierBenchOptions) (BarrierPoint, error) {
	pt, err := RunBarrierBench(algo, o)
	if err != nil {
		return pt, err
	}
	if pt.SeparationViolations > 0 {
		return pt, fmt.Errorf("synczoo: %s p=%d jitter=%d: %d unseparated phases",
			algo.Key, o.Procs, o.Jitter, pt.SeparationViolations)
	}
	return pt, nil
}

// SweepMutex drives the mutual-exclusion witness across seeds, using each
// seed as both the schedule-jitter seed and the fault-plane seed (the same
// convention as the axiomatic engine's chaos sweep). With zero rates the
// sweep explores alternative legal schedules only. It returns the
// accumulated fault counters.
func SweepMutex(algo LockAlgo, procs, iters int, seeds []uint64, rates network.FaultRates) (metrics.FaultCounters, error) {
	var total metrics.FaultCounters
	for _, seed := range seeds {
		o := LockBenchOptions{Procs: procs, Iters: iters, Jitter: seed}
		if rates != (network.FaultRates{}) && seed != 0 {
			o.Faults = network.FaultConfig{Seed: seed, Rates: rates}
		}
		pt, err := CheckMutex(algo, o)
		total.Add(pt.Faults)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// SweepBarrier drives the phase-separation witness across seeds, with the
// same seed convention as SweepMutex.
func SweepBarrier(algo BarrierAlgo, procs, episodes int, seeds []uint64, rates network.FaultRates) (metrics.FaultCounters, error) {
	var total metrics.FaultCounters
	for _, seed := range seeds {
		o := BarrierBenchOptions{Procs: procs, Episodes: episodes, Jitter: seed}
		if rates != (network.FaultRates{}) && seed != 0 {
			o.Faults = network.FaultConfig{Seed: seed, Rates: rates}
		}
		pt, err := CheckBarrierSeparation(algo, o)
		total.Add(pt.Faults)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
