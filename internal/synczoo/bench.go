package synczoo

import (
	"context"
	"fmt"

	"ssmp/internal/core"
	"ssmp/internal/mem"
	"ssmp/internal/metrics"
	"ssmp/internal/network"
	"ssmp/internal/sim"
)

// LockBenchOptions parameterize one contention measurement of a lock
// algorithm.
type LockBenchOptions struct {
	// Procs is the processor count (a power of two >= 2); every processor
	// contends for the one lock.
	Procs int
	// Iters is the number of acquisitions per processor (default 8).
	Iters int
	// Crit and Delay are the cycles spent inside the critical section and
	// between acquisitions.
	Crit, Delay sim.Time
	// Jitter seeds schedule tie-breaking (0 = canonical schedule).
	Jitter uint64
	// Faults parameterizes the interconnect fault plane (zero = fault-free).
	Faults network.FaultConfig
}

// LockPoint is one measured point of the lock contention sweep. Every run
// doubles as a mutual-exclusion witness: the critical section performs a
// non-atomic read-think-write increment of the protected word, so any
// exclusion failure destroys increments and Final falls short of Want.
type LockPoint struct {
	Algo  string `json:"algo"`
	Procs int    `json:"procs"`
	Iters int    `json:"iters"`
	// Cycles is the completion time of the whole contention run.
	Cycles sim.Time `json:"cycles"`
	// Acquisitions counts the measured acquisitions (Procs * Iters; the
	// final verification acquisition is excluded).
	Acquisitions uint64 `json:"acquisitions"`
	// Final is the protected counter read under the lock after all workers
	// finished; Want is Procs*Iters.
	Final mem.Word `json:"final"`
	Want  mem.Word `json:"want"`
	// MutexViolations counts overlapping critical sections observed by the
	// host-side occupancy check (0 for a correct lock).
	MutexViolations int `json:"mutexViolations"`
	// RMR is the remote-memory-reference total snapshotted when the last
	// worker finished, before the verification acquisition.
	RMR metrics.RMRCounters `json:"rmr"`
	// Faults reports fault injection and recovery (zero when disabled).
	Faults metrics.FaultCounters `json:"faults"`
}

// RMRPerAcq is the headline metric: remote references per acquisition.
func (pt LockPoint) RMRPerAcq() float64 {
	if pt.Acquisitions == 0 {
		return 0
	}
	return float64(pt.RMR.Remote) / float64(pt.Acquisitions)
}

// AcqPerKCycle is the throughput metric: acquisitions per thousand cycles.
func (pt LockPoint) AcqPerKCycle() float64 {
	if pt.Cycles == 0 {
		return 0
	}
	return float64(pt.Acquisitions) * 1000 / float64(pt.Cycles)
}

// Verified reports whether the run upheld mutual exclusion.
func (pt LockPoint) Verified() bool {
	return pt.MutexViolations == 0 && pt.Final == pt.Want
}

// benchConfig builds the machine configuration an algorithm runs on.
func benchConfig(proto core.Protocol, procs int, jitter uint64, faults network.FaultConfig) core.Config {
	cfg := core.DefaultConfig(procs)
	cfg.Protocol = proto
	cfg.Jitter = jitter
	cfg.Faults = faults
	return cfg
}

// readShared reads a word of lock-protected or barrier-published data in
// the machine-appropriate, guaranteed-fresh way: under the CBL machine a
// plain READ of an unlocked block could serve a stale private copy, so
// fresh reads outside a held lock use READ-GLOBAL.
func readShared(p *core.Proc, proto core.Protocol, a mem.Addr) mem.Word {
	if proto == core.ProtoCBL && !p.HoldsLock(a) {
		return p.ReadGlobal(a)
	}
	return p.Read(a)
}

// RunLockBench runs the contention workload for one lock algorithm: every
// processor performs Iters lock-protected increments of the shared counter,
// and the last worker to finish snapshots the RMR account and verifies the
// counter under the lock.
func RunLockBench(algo LockAlgo, o LockBenchOptions) (LockPoint, error) {
	return RunLockBenchContext(context.Background(), algo, o)
}

// RunLockBenchContext is RunLockBench with cancellation: the simulated
// machine aborts at the next interrupt poll when ctx ends.
func RunLockBenchContext(ctx context.Context, algo LockAlgo, o LockBenchOptions) (LockPoint, error) {
	if o.Iters == 0 {
		o.Iters = 8
	}
	cfg := benchConfig(algo.Proto, o.Procs, o.Jitter, o.Faults)
	m := core.NewMachine(cfg)
	inst := algo.New(NewArena(m.Geometry()), o.Procs)

	pt := LockPoint{
		Algo: algo.Key, Procs: o.Procs, Iters: o.Iters,
		Acquisitions: uint64(o.Procs * o.Iters),
		Want:         mem.Word(o.Procs * o.Iters),
	}
	var inCS, finished int
	progs := make([]core.Program, o.Procs)
	for i := range progs {
		progs[i] = func(p *core.Proc) {
			for it := 0; it < o.Iters; it++ {
				inst.Lock.Acquire(p)
				inCS++
				if inCS != 1 {
					pt.MutexViolations++
				}
				v := p.Read(inst.Data)
				if o.Crit > 0 {
					p.Think(o.Crit)
				}
				p.Write(inst.Data, v+1)
				inCS--
				inst.Lock.Release(p)
				if o.Delay > 0 {
					p.Think(o.Delay)
				}
			}
			finished++
			if finished == o.Procs {
				// All measured work is done: snapshot the RMR account
				// before the verification traffic, then read the counter
				// under the lock (the grant carries fresh data on CBL; a
				// coherent read is fresh on WBI).
				pt.RMR = m.RMRs().Total()
				inst.Lock.Acquire(p)
				pt.Final = p.Read(inst.Data)
				inst.Lock.Release(p)
			}
		}
	}
	res, err := m.RunContext(ctx, progs)
	if err != nil {
		return pt, fmt.Errorf("synczoo: lock bench %s p=%d: %w", algo.Key, o.Procs, err)
	}
	pt.Cycles = res.Cycles
	pt.Faults = res.Faults
	return pt, nil
}

// BarrierBenchOptions parameterize one barrier measurement.
type BarrierBenchOptions struct {
	// Procs is the participant count (a power of two >= 2).
	Procs int
	// Episodes is the number of barrier episodes (default 4).
	Episodes int
	// Work is the cycles of computation per episode before arrival.
	Work sim.Time
	// Jitter seeds schedule tie-breaking; Faults enables the fault plane.
	Jitter uint64
	Faults network.FaultConfig
}

// BarrierPoint is one measured point of the barrier sweep. Every run
// doubles as a separation witness: each participant publishes its phase
// number before arriving and, after release, reads its neighbour's phase —
// which must have reached the current episode if the barrier actually
// separated the phases.
type BarrierPoint struct {
	Algo     string   `json:"algo"`
	Procs    int      `json:"procs"`
	Episodes int      `json:"episodes"`
	Cycles   sim.Time `json:"cycles"`
	// SeparationViolations counts neighbour phases observed behind the
	// episode number (0 for a correct barrier).
	SeparationViolations int `json:"separationViolations"`
	// RMR is the run's remote-memory-reference total (including the
	// witness's phase publishes and neighbour reads, identical work for
	// every algorithm).
	RMR    metrics.RMRCounters   `json:"rmr"`
	Faults metrics.FaultCounters `json:"faults"`
}

// RMRPerEpisode is remote references per participant per episode.
func (pt BarrierPoint) RMRPerEpisode() float64 {
	n := pt.Procs * pt.Episodes
	if n == 0 {
		return 0
	}
	return float64(pt.RMR.Remote) / float64(n)
}

// Verified reports whether every episode was separated.
func (pt BarrierPoint) Verified() bool { return pt.SeparationViolations == 0 }

// RunBarrierBench runs the episode workload for one barrier algorithm with
// the phase-separation witness.
func RunBarrierBench(algo BarrierAlgo, o BarrierBenchOptions) (BarrierPoint, error) {
	return RunBarrierBenchContext(context.Background(), algo, o)
}

// RunBarrierBenchContext is RunBarrierBench with cancellation.
func RunBarrierBenchContext(ctx context.Context, algo BarrierAlgo, o BarrierBenchOptions) (BarrierPoint, error) {
	if o.Episodes == 0 {
		o.Episodes = 4
	}
	cfg := benchConfig(algo.Proto, o.Procs, o.Jitter, o.Faults)
	m := core.NewMachine(cfg)
	arena := NewArena(m.Geometry())
	bar := algo.New(arena, o.Procs)
	// One phase word per participant, each in its own block.
	phase := make([]mem.Addr, o.Procs)
	for i := range phase {
		phase[i] = arena.Block()
	}

	pt := BarrierPoint{Algo: algo.Key, Procs: o.Procs, Episodes: o.Episodes}
	progs := make([]core.Program, o.Procs)
	for i := range progs {
		me := i
		progs[i] = func(p *core.Proc) {
			for e := 1; e <= o.Episodes; e++ {
				if o.Work > 0 {
					p.Think(o.Work)
				}
				p.SharedWrite(phase[me], mem.Word(e))
				bar.Wait(p)
				if readShared(p, algo.Proto, phase[(me+1)%o.Procs]) < mem.Word(e) {
					pt.SeparationViolations++
				}
			}
		}
	}
	res, err := m.RunContext(ctx, progs)
	if err != nil {
		return pt, fmt.Errorf("synczoo: barrier bench %s p=%d: %w", algo.Key, o.Procs, err)
	}
	pt.Cycles = res.Cycles
	pt.RMR = res.RMR
	pt.Faults = res.Faults
	return pt, nil
}
