package cbl

import (
	"errors"
	"fmt"

	"ssmp/internal/cache"
	"ssmp/internal/fabric"
	"ssmp/internal/mem"
	"ssmp/internal/msg"
)

// ErrLockCacheFull is returned when every lock-cache entry is pinned by an
// active lock; software is expected to map locks conservatively so this does
// not occur (§4.3).
var ErrLockCacheFull = errors.New("cbl: lock cache full")

// ErrAlreadyHeld is returned when a node re-requests a lock it already
// holds or is already waiting for.
var ErrAlreadyHeld = errors.New("cbl: lock already held or requested by this node")

// ErrNotHeld is returned when a node unlocks a lock it does not hold.
var ErrNotHeld = errors.New("cbl: unlock of a lock not held")

// nextInfo identifies a node's queue successor and its requested mode.
type nextInfo struct {
	node int
	mode msg.LockMode
}

// Unit is the node-side lock controller: the fully-associative lock cache
// plus the request/grant state machine.
type Unit struct {
	f       *fabric.Fabric
	id      int
	geom    mem.Geometry
	lc      *cache.LockCache
	station *fabric.Station

	// DirectHandoff enables the paper's structural fast path: a write
	// holder that knows its queue successor passes the grant (with the
	// line's data) straight down the list — one network transit per
	// handoff instead of a release-to-home plus grant. The home still
	// serializes queue membership; it learns of the handoff from the
	// release notification.
	DirectHandoff bool

	// waiting maps a block with an outstanding request to its completion
	// callback (invoked when the grant arrives).
	waiting map[mem.Block]func()
	// next records this node's queue successor and its requested mode,
	// learned from the LockFwd that linked it. Unlike the structural
	// l.Next pointer (which late splice messages from an earlier queue
	// epoch may overwrite), this map is maintained only by the
	// LockFwd/Unlock pair and is therefore safe to key handoffs on.
	next map[mem.Block]nextInfo
	// epoch counts this node's lock acquisitions per block; LockReq
	// carries it and the home echoes it in LockFwd, so a forward that was
	// aimed at an earlier tenure of this node on the queue is ignored
	// rather than poisoning the current line's successor info.
	epoch map[mem.Block]uint64

	// Grants and Waits count grant receipts and enqueued waits;
	// DirectHandoffs counts grants passed holder-to-holder.
	Grants         uint64
	Waits          uint64
	DirectHandoffs uint64
}

// NewUnit builds the node-side lock controller with the given lock-cache
// capacity.
func NewUnit(f *fabric.Fabric, id int, geom mem.Geometry, lockEntries int) *Unit {
	return &Unit{
		f: f, id: id, geom: geom,
		lc:      cache.NewLockCache(geom, lockEntries),
		station: fabric.NewStation(f),
		waiting: make(map[mem.Block]func()),
		next:    make(map[mem.Block]nextInfo),
		epoch:   make(map[mem.Block]uint64),
	}
}

// LockCache exposes the underlying lock cache for inspection.
func (u *Unit) LockCache() *cache.LockCache { return u.lc }

// Line returns the lock line for the block containing a, or nil. The
// machine layer uses this to route ordinary reads and writes of a locked
// block to the lock cache (the grant brought the data here).
func (u *Unit) Line(a mem.Addr) *cache.Line {
	return u.lc.Lookup(u.geom.BlockOf(a))
}

// Holds reports whether this node currently holds a lock (in any mode) on
// the block containing a.
func (u *Unit) Holds(a mem.Addr) bool {
	l := u.lc.Lookup(u.geom.BlockOf(a))
	return l != nil && l.Held
}

// ReadLocked reads a word of a block this node holds a lock on; the grant
// brought the data into the lock cache, so the access is a local hit.
func (u *Unit) ReadLocked(a mem.Addr) (mem.Word, error) {
	l := u.lc.Lookup(u.geom.BlockOf(a))
	if l == nil || !l.Held {
		return 0, ErrNotHeld
	}
	u.f.RMR.LocalHit(u.id)
	return l.Data[u.geom.WordIndex(a)], nil
}

// WriteLocked writes a word of a block this node holds a write lock on. The
// dirty word travels back to the home with the release.
func (u *Unit) WriteLocked(a mem.Addr, w mem.Word) error {
	l := u.lc.Lookup(u.geom.BlockOf(a))
	if l == nil || !l.Held {
		return ErrNotHeld
	}
	if l.Mode != msg.LockWrite {
		return fmt.Errorf("cbl: write under %v", l.Mode)
	}
	wi := u.geom.WordIndex(a)
	u.f.RMR.LocalHit(u.id)
	l.Data[wi] = w
	l.Dirty.Set(wi)
	return nil
}

// Lock issues READ-LOCK or WRITE-LOCK for the block containing a. done runs
// when the grant (carrying the block's data) arrives. Lock returns an error
// synchronously if the lock cache is full or the lock is already held or
// requested by this node.
func (u *Unit) Lock(a mem.Addr, mode msg.LockMode, done func()) error {
	if mode != msg.LockRead && mode != msg.LockWrite {
		panic(fmt.Sprintf("cbl: invalid lock mode %v", mode))
	}
	b := u.geom.BlockOf(a)
	if u.lc.Lookup(b) != nil {
		return ErrAlreadyHeld
	}
	l, err := u.lc.Allocate(b)
	if err != nil {
		return ErrLockCacheFull
	}
	l.Mode = mode
	l.Held = false
	u.waiting[b] = done
	u.epoch[b]++
	u.f.RMR.RemoteRef(u.id)
	u.f.Send(&msg.Msg{Kind: msg.LockReq, Src: u.id, Dst: u.geom.Home(b), Block: b, Mode: mode, Seq: u.epoch[b]})
	return nil
}

// Unlock releases the lock on the block containing a. The processor
// continues immediately (§4.3: the unlocking processor does not wait for
// the unlock to be globally performed); done fires after the local
// cache-directory access. A write holder's dirty words travel back to the
// home with the release.
func (u *Unit) Unlock(a mem.Addr, done func()) error {
	b := u.geom.BlockOf(a)
	l := u.lc.Lookup(b)
	if l == nil || !l.Held {
		return ErrNotHeld
	}
	home := u.geom.Home(b)
	u.f.RMR.RemoteRef(u.id)
	if ni, ok := u.next[b]; u.DirectHandoff && ok && l.Mode == msg.LockWrite &&
		ni.mode == msg.LockWrite {
		// Fast path (§4.3's structural description): the grant — and
		// the current data — pass straight to the waiting writer; the
		// home only updates its queue bookkeeping. Memory stays stale
		// until a release finds no waiting writer, which is safe: a
		// write holder's copy is authoritative while it exists.
		u.DirectHandoffs++
		u.f.Send(&msg.Msg{
			Kind: msg.LockGrant, Src: u.id, Dst: u.next[b].node, Block: b,
			Data: append([]mem.Word(nil), l.Data...), Mode: msg.LockWrite,
			Mask: l.Dirty,
		})
		u.f.Send(&msg.Msg{Kind: msg.LockDequeue, Src: u.id, Dst: home, Block: b, Mode: l.Mode, Aux: 1})
		delete(u.next, b)
		u.lc.Release(b)
		u.f.Eng.After(u.f.Time.CacheHit, done)
		return nil
	}
	if l.Dirty.Any() {
		u.f.Send(&msg.Msg{
			Kind: msg.UnlockToHome, Src: u.id, Dst: home, Block: b,
			Data: append([]mem.Word(nil), l.Data...), Mask: l.Dirty, Mode: l.Mode,
		})
	} else {
		u.f.Send(&msg.Msg{Kind: msg.LockDequeue, Src: u.id, Dst: home, Block: b, Mode: l.Mode})
	}
	delete(u.next, b)
	u.lc.Release(b)
	u.f.Eng.After(u.f.Time.CacheHit, done)
	return nil
}

// Handles reports whether the unit consumes this message kind.
func (u *Unit) Handles(k msg.Kind) bool {
	switch k {
	case msg.LockGrant, msg.LockFwd, msg.LockLinked:
		return true
	}
	return false
}

// Handle processes an inbound lock message after the cache-directory check.
func (u *Unit) Handle(m *msg.Msg) {
	u.station.Process(func() { u.process(m) })
}

func (u *Unit) process(m *msg.Msg) {
	switch m.Kind {
	case msg.LockGrant:
		l := u.lc.Lookup(m.Block)
		if l == nil {
			panic(fmt.Sprintf("cbl: node %d granted lock on %d without a line", u.id, m.Block))
		}
		copy(l.Data, m.Data)
		// A grant from the home carries memory-fresh data (Mask 0); a
		// direct handoff carries the predecessor's dirty words, whose
		// responsibility transfers to us — they reach memory with our
		// eventual release.
		l.Dirty = m.Mask
		l.Held = true
		u.Grants++
		done := u.waiting[m.Block]
		delete(u.waiting, m.Block)
		if done == nil {
			panic(fmt.Sprintf("cbl: node %d grant on %d with no waiter", u.id, m.Block))
		}
		done()

	case msg.LockFwd:
		// The home forwarded a new requester to us as the previous
		// queue tail: record our next pointer and tell the requester
		// it is linked. If our line is already gone (we released
		// concurrently), still notify the requester; arbitration at
		// the home is unaffected.
		if l := u.lc.Lookup(m.Block); l != nil && u.epoch[m.Block] == m.Seq {
			l.Next = m.Requester
			u.next[m.Block] = nextInfo{node: m.Requester, mode: m.Mode}
		}
		u.f.Send(&msg.Msg{Kind: msg.LockLinked, Src: u.id, Dst: m.Requester, Block: m.Block})

	case msg.LockLinked:
		if l := u.lc.Lookup(m.Block); l != nil && !l.Held {
			l.Prev = m.Src
			u.Waits++
		}

	case msg.SetPrevPtr:
		if l := u.lc.Lookup(m.Block); l != nil {
			l.Prev = m.Requester
		}

	case msg.SetNextPtr:
		if l := u.lc.Lookup(m.Block); l != nil {
			l.Next = m.Requester
		}

	default:
		panic(fmt.Sprintf("cbl: node %d cannot handle %v", u.id, m.Kind))
	}
}
