package cbl

import (
	"testing"

	"ssmp/internal/mem"
	"ssmp/internal/msg"
)

// handoffRig builds a rig with DirectHandoff enabled on every unit.
func handoffRig(t testing.TB, n int) *rig {
	r := newRig(t, n)
	for _, u := range r.units {
		u.DirectHandoff = true
	}
	return r
}

func TestDirectHandoffPassesGrantAndData(t *testing.T) {
	r := handoffRig(t, 4)
	a := mem.Addr(17)
	// Node 1 takes the write lock; nodes 2 and 3 queue behind it.
	r.lock(t, 1, a, msg.LockWrite)
	granted2, granted3 := false, false
	if err := r.units[2].Lock(a, msg.LockWrite, func() { granted2 = true }); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	if err := r.units[3].Lock(a, msg.LockWrite, func() { granted3 = true }); err != nil {
		t.Fatal(err)
	}
	r.run(t)

	if err := r.units[1].WriteLocked(a, 42); err != nil {
		t.Fatal(err)
	}
	r.unlock(t, 1, a) // direct handoff 1 -> 2
	if !granted2 || granted3 {
		t.Fatalf("after first release granted2=%v granted3=%v", granted2, granted3)
	}
	if r.units[1].DirectHandoffs != 1 {
		t.Fatalf("DirectHandoffs = %d, want 1", r.units[1].DirectHandoffs)
	}
	// The data travelled with the handoff, not through memory.
	if w, err := r.units[2].ReadLocked(a); err != nil || w != 42 {
		t.Fatalf("successor sees %d (%v), want 42", w, err)
	}
	if got := r.homes[r.geom.Home(r.geom.BlockOf(a))].store.ReadWord(a); got == 42 {
		t.Fatal("memory updated during handoff; data should stay in the chain")
	}

	// Second handoff 2 -> 3, then a final release writes everything home.
	if err := r.units[2].WriteLocked(a+1, 7); err != nil {
		t.Fatal(err)
	}
	r.unlock(t, 2, a)
	if !granted3 {
		t.Fatal("second handoff did not grant node 3")
	}
	r.unlock(t, 3, a) // no waiter: UnlockToHome carries the chain's dirty words
	home := r.homes[r.geom.Home(r.geom.BlockOf(a))]
	if got := home.store.ReadWord(a); got != 42 {
		t.Fatalf("memory word a = %d, want 42 (handed-off dirty word lost)", got)
	}
	if got := home.store.ReadWord(a + 1); got != 7 {
		t.Fatalf("memory word a+1 = %d, want 7", got)
	}
	if home.Locked(r.geom.BlockOf(a)) {
		t.Fatal("queue not empty at end")
	}
}

func TestDirectHandoffSkippedForReaderSuccessor(t *testing.T) {
	// A read-lock successor must be granted through the home (the home
	// runs the read wave and needs current memory), so no direct handoff.
	r := handoffRig(t, 4)
	a := mem.Addr(17)
	r.lock(t, 1, a, msg.LockWrite)
	granted := 0
	for _, n := range []int{2, 3} {
		if err := r.units[n].Lock(a, msg.LockRead, func() { granted++ }); err != nil {
			t.Fatal(err)
		}
		r.run(t)
	}
	if err := r.units[1].WriteLocked(a, 9); err != nil {
		t.Fatal(err)
	}
	r.unlock(t, 1, a)
	if r.units[1].DirectHandoffs != 0 {
		t.Fatal("direct handoff used for a reader successor")
	}
	if granted != 2 {
		t.Fatalf("read wave granted %d, want 2", granted)
	}
	// Readers must see the writer's data (via memory).
	for _, n := range []int{2, 3} {
		if w, err := r.units[n].ReadLocked(a); err != nil || w != 9 {
			t.Fatalf("reader %d sees %d (%v), want 9", n, w, err)
		}
	}
}

func TestDirectHandoffCutsHandoffLatency(t *testing.T) {
	// A convoy of writers: the direct grant travels one network transit
	// instead of release-to-home plus grant, so the convoy completes
	// sooner (message count is comparable; latency is the win).
	run := func(direct bool) uint64 {
		r := newRig(t, 8)
		for _, u := range r.units {
			u.DirectHandoff = direct
		}
		a := mem.Addr(17)
		granted := 0
		for i := 0; i < 8; i++ {
			i := i
			if err := r.units[i].Lock(a, msg.LockWrite, func() {
				granted++
				if err := r.units[i].Unlock(a, func() {}); err != nil {
					t.Error(err)
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		r.run(t)
		if granted != 8 {
			t.Fatalf("granted = %d", granted)
		}
		return uint64(r.eng.Now())
	}
	withHome, withDirect := run(false), run(true)
	if withDirect >= withHome {
		t.Fatalf("direct handoff (%d cycles) not faster than home arbitration (%d)", withDirect, withHome)
	}
}

func TestDirectHandoffMutualExclusionCounter(t *testing.T) {
	// The full counter torture test with handoffs enabled: no lost
	// increments, and the final value reaches memory.
	r := handoffRig(t, 8)
	a := mem.Addr(17)
	const k = 10
	remaining := make([]int, 8)
	var pump func(node int)
	pump = func(node int) {
		if remaining[node] == 0 {
			return
		}
		remaining[node]--
		err := r.units[node].Lock(a, msg.LockWrite, func() {
			v, err := r.units[node].ReadLocked(a)
			if err != nil {
				t.Error(err)
			}
			if err := r.units[node].WriteLocked(a, v+1); err != nil {
				t.Error(err)
			}
			if err := r.units[node].Unlock(a, func() { pump(node) }); err != nil {
				t.Error(err)
			}
		})
		if err != nil {
			t.Error(err)
		}
	}
	for n := 0; n < 8; n++ {
		remaining[n] = k
		pump(n)
	}
	r.run(t)
	if got := r.homes[r.geom.Home(r.geom.BlockOf(a))].store.ReadWord(a); got != 8*k {
		t.Fatalf("counter = %d, want %d", got, 8*k)
	}
	var handoffs uint64
	for _, u := range r.units {
		handoffs += u.DirectHandoffs
	}
	if handoffs == 0 {
		t.Fatal("no direct handoffs occurred under a writer convoy")
	}
}

// TestDeferredReleaseReordering drives the reordering path deterministically
// by injecting the messages at the home out of order: a successor's release
// and re-request arrive before the predecessor's handoff notification.
func TestDeferredReleaseReordering(t *testing.T) {
	r := handoffRig(t, 4)
	a := mem.Addr(17)
	b := r.geom.BlockOf(a)
	home := r.homes[r.geom.Home(b)]

	// Queue: node 1 holds, node 2 waits (write).
	r.lock(t, 1, a, msg.LockWrite)
	granted2 := false
	if err := r.units[2].Lock(a, msg.LockWrite, func() { granted2 = true }); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	if granted2 {
		t.Fatal("premature grant")
	}

	// Simulate the reordering: node 2's release (it WILL hold via the
	// direct handoff) reaches the home first...
	home.Handle(&msg.Msg{Kind: msg.LockDequeue, Src: 2, Block: b, Mode: msg.LockWrite})
	// ...followed by a re-request from node 2...
	home.Handle(&msg.Msg{Kind: msg.LockReq, Src: 2, Block: b, Mode: msg.LockWrite, Seq: 99})
	r.run(t)
	// Both must be deferred: node 2 is still a waiter in the home's view.
	q := home.Queue(b)
	if len(q) != 2 || q[1].Holding {
		t.Fatalf("queue disturbed by premature messages: %+v", q)
	}

	// Now the handoff notification lands: node 1 releases directly.
	home.Handle(&msg.Msg{Kind: msg.LockDequeue, Src: 1, Block: b, Mode: msg.LockWrite, Aux: 1})
	r.run(t)
	// Drain order: node 2 becomes holder, its deferred release applies,
	// then its deferred re-request re-enters and is granted from memory.
	q = home.Queue(b)
	if len(q) != 1 || q[0].Node != 2 || !q[0].Holding {
		t.Fatalf("after drain queue = %+v, want node 2 holding via re-request", q)
	}
}
