// Package cbl implements the paper's cache-based lock scheme (§4.3):
// READ-LOCK, WRITE-LOCK and UNLOCK primitives whose waiting queue is a
// distributed doubly-linked list threaded through the participating cache
// lines, with the central directory's queue-pointer tracking the tail. A
// lock grant carries the protected memory block, merging data transfer with
// synchronization. Lock lines live in a small fully-associative lock cache
// so they can never be evicted while queued.
//
// # Inferred details
//
// The paper elides the detailed queue-maintenance algorithms (citing the
// first author's thesis [14]). This implementation serializes lock-state
// transitions at the block's home directory, which is consistent with the
// paper's own Table 3 cost model:
//
//   - serial lock: 3 messages (request, grant, release) and 3 t_nw + t_D +
//     t_cs — exactly Table 3's CBL row;
//   - parallel lock: per handoff one release to the home plus one grant to
//     the next waiter, i.e. ~2 t_nw per critical section, matching
//     Table 3's (2n+1) t_nw time term and O(n) message count.
//
// The distributed queue structure is still built faithfully: a request that
// must wait is forwarded by the home to the current tail (LockFwd), the tail
// records its new next pointer and notifies the requester (LockLinked), and
// releases of non-tail readers splice the list with pointer-rewrite
// messages. Grants and data, however, always flow through the home, which
// keeps the protocol free of the distributed race conditions the thesis
// algorithms address; message and time costs match the paper's model either
// way because the home's directory check (t_D) serializes both variants.
//
// Read-lock release of a non-sole owner fixes the list up like deleting a
// node from a doubly-linked list (§4.3); releasing a write lock wakes every
// consecutive read-lock waiter behind it (the grant wave).
//
// # Direct handoff
//
// With Unit.DirectHandoff enabled, a write holder that knows its queue
// successor is a waiting writer passes the grant — and custody of its dirty
// words — straight down the list, one network transit per handoff, exactly
// the structural fast path of Figure 3. Two distributed races this opens
// are handled explicitly (randomized stress tests caught both):
//
//   - a fast successor's release can reach the home before the
//     predecessor's handoff notification (messages from different sources
//     are unordered); the home defers such releases — and re-requests from
//     nodes it still believes queued — until the enabling dequeue lands;
//   - a LockFwd aimed at a node's earlier tenure on the queue can arrive
//     after that node released and re-requested; requests therefore carry a
//     per-block acquisition epoch that the home echoes in LockFwd, and a
//     forward whose epoch mismatches is recorded structurally but never
//     used for a handoff.
package cbl
