package cbl

import (
	"fmt"

	"ssmp/internal/fabric"
	"ssmp/internal/mem"
	"ssmp/internal/msg"
)

// waiter is one member of a lock queue: either holding the lock or waiting
// for it. Holders always form a prefix of the queue (grants are FIFO with
// read batching, so no requester ever overtakes an earlier one).
type waiter struct {
	node    int
	mode    msg.LockMode
	holding bool
	// seq is the requester's per-block acquisition epoch, echoed in the
	// LockFwd that links its successor so stale forwards are ignorable.
	seq uint64
}

// Home is the directory-side lock controller for the blocks homed at one
// node. It owns the queue-pointer state of the central directory (here the
// full queue mirror — see doc.go) and serializes every lock-state
// transition through the directory's service resource.
type Home struct {
	f       *fabric.Fabric
	id      int
	geom    mem.Geometry
	store   *mem.Store
	station *fabric.Station
	queues  map[mem.Block][]waiter
	// deferred holds releases that arrived before the direct-handoff
	// notification that makes their sender a holder in the home's view
	// (messages from different sources are not mutually ordered). They
	// re-apply as soon as the enabling dequeue lands.
	deferred map[mem.Block][]*msg.Msg

	// Grants counts grants issued; Handoffs counts grants issued as a
	// result of a release (as opposed to immediate grants on request).
	Grants   uint64
	Handoffs uint64
}

// NewHome builds the home-side lock controller over the node's memory
// module (shared with the RUC home controller).
func NewHome(f *fabric.Fabric, id int, geom mem.Geometry, store *mem.Store) *Home {
	return &Home{
		f: f, id: id, geom: geom, store: store,
		station:  fabric.NewStation(f),
		queues:   make(map[mem.Block][]waiter),
		deferred: make(map[mem.Block][]*msg.Msg),
	}
}

// Queue returns (node, mode, holding) triples for the block's lock queue,
// front first. Intended for tests and invariant checks.
func (h *Home) Queue(b mem.Block) []struct {
	Node    int
	Mode    msg.LockMode
	Holding bool
} {
	q := h.queues[b]
	out := make([]struct {
		Node    int
		Mode    msg.LockMode
		Holding bool
	}, len(q))
	for i, w := range q {
		out[i] = struct {
			Node    int
			Mode    msg.LockMode
			Holding bool
		}{w.node, w.mode, w.holding}
	}
	return out
}

// Locked reports whether the block currently has holders or waiters.
func (h *Home) Locked(b mem.Block) bool { return len(h.queues[b]) > 0 }

// Handles reports whether the home controller consumes this message kind.
func (h *Home) Handles(k msg.Kind) bool {
	switch k {
	case msg.LockReq, msg.UnlockToHome, msg.LockDequeue:
		return true
	}
	return false
}

// Handle processes an inbound lock message after the central-directory
// check.
func (h *Home) Handle(m *msg.Msg) {
	h.station.Process(func() { h.process(m) })
}

func (h *Home) process(m *msg.Msg) {
	if h.geom.Home(m.Block) != h.id {
		panic(fmt.Sprintf("cbl: block %d handled by wrong home %d", m.Block, h.id))
	}
	switch m.Kind {
	case msg.LockReq:
		if h.inQueue(m.Block, m.Src) {
			// The node's previous release is still in flight behind a
			// direct-handoff notification: defer the new request too.
			h.deferred[m.Block] = append(h.deferred[m.Block], m)
			return
		}
		h.request(m.Block, m.Src, m.Mode, m.Seq)
	case msg.UnlockToHome, msg.LockDequeue:
		if !h.holdingHere(m.Block, m.Src) {
			// The sender holds the lock via a direct handoff whose
			// notification is still in flight: defer until it lands.
			h.deferred[m.Block] = append(h.deferred[m.Block], m)
			return
		}
		h.applyRelease(m)
		h.drainDeferred(m.Block)
	default:
		panic(fmt.Sprintf("cbl: home %d cannot handle %v", h.id, m.Kind))
	}
}

// allHoldingReaders reports whether every queue member is a holding reader.
func allHoldingReaders(q []waiter) bool {
	for _, w := range q {
		if !w.holding || w.mode != msg.LockRead {
			return false
		}
	}
	return true
}

func (h *Home) request(b mem.Block, node int, mode msg.LockMode, seq uint64) {
	q := h.queues[b]
	for _, w := range q {
		if w.node == node {
			panic(fmt.Sprintf("cbl: node %d re-requested lock on block %d", node, b))
		}
	}
	grant := len(q) == 0 || (mode == msg.LockRead && allHoldingReaders(q))
	if len(q) > 0 {
		// Build the distributed queue: forward the requester to the
		// current tail, which records its next pointer and notifies
		// the requester (§4.3, Figure 3). Seq carries the tail's own
		// acquisition epoch so a late forward cannot attach to a later
		// tenure of the same node.
		tail := q[len(q)-1]
		h.f.Send(&msg.Msg{Kind: msg.LockFwd, Src: h.id, Dst: tail.node, Block: b, Requester: node, Mode: mode, Seq: tail.seq})
	}
	h.queues[b] = append(q, waiter{node: node, mode: mode, holding: grant, seq: seq})
	if grant {
		h.grant(b, node, mode)
	}
}

// grant sends the lock plus the protected block's data after the memory
// read time.
func (h *Home) grant(b mem.Block, node int, mode msg.LockMode) {
	h.Grants++
	h.f.Eng.After(h.f.Time.TMem, func() {
		h.f.Send(&msg.Msg{
			Kind: msg.LockGrant, Src: h.id, Dst: node, Block: b,
			Data: h.store.ReadBlock(b), Mode: mode,
		})
	})
}

// holdingHere reports whether the home currently records node as a holder.
func (h *Home) holdingHere(b mem.Block, node int) bool {
	for _, w := range h.queues[b] {
		if w.node == node {
			return w.holding
		}
	}
	return false
}

// inQueue reports whether node is a queue member (holding or waiting).
func (h *Home) inQueue(b mem.Block, node int) bool {
	for _, w := range h.queues[b] {
		if w.node == node {
			return true
		}
	}
	return false
}

// applyRelease performs an applicable release message.
func (h *Home) applyRelease(m *msg.Msg) {
	if m.Kind == msg.UnlockToHome {
		h.store.Merge(m.Block, m.Data, m.Mask)
	}
	// Aux == 1 marks a direct handoff: the releaser already passed the
	// grant (and data custody) to its successor.
	h.release(m.Block, m.Src, m.Aux == 1)
}

// drainDeferred re-applies deferred messages enabled by a state change.
func (h *Home) drainDeferred(b mem.Block) {
	for {
		q := h.deferred[b]
		applied := false
		for i, m := range q {
			ok := false
			switch m.Kind {
			case msg.UnlockToHome, msg.LockDequeue:
				ok = h.holdingHere(b, m.Src)
			case msg.LockReq:
				ok = !h.inQueue(b, m.Src)
			}
			if !ok {
				continue
			}
			h.deferred[b] = append(append([]*msg.Msg(nil), q[:i]...), q[i+1:]...)
			if len(h.deferred[b]) == 0 {
				delete(h.deferred, b)
			}
			if m.Kind == msg.LockReq {
				h.request(m.Block, m.Src, m.Mode, m.Seq)
			} else {
				h.applyRelease(m)
			}
			applied = true
			break
		}
		if !applied {
			return
		}
	}
}

func (h *Home) release(b mem.Block, node int, handedOff bool) {
	q := h.queues[b]
	idx := -1
	for i, w := range q {
		if w.node == node {
			idx = i
			break
		}
	}
	if idx < 0 || !q[idx].holding {
		panic(fmt.Sprintf("cbl: release from node %d not holding block %d", node, b))
	}
	if handedOff {
		// Direct handoff: the releaser was a sole write holder (head)
		// and its successor — necessarily the next queue member, a
		// waiting writer — already received the grant.
		if idx != 0 || len(q) < 2 || q[1].holding || q[1].mode != msg.LockWrite {
			panic(fmt.Sprintf("cbl: inconsistent direct handoff from node %d on block %d", node, b))
		}
		q[1].holding = true
		h.Handoffs++
		h.queues[b] = q[1:]
		// Pointer fidelity: the new head's prev becomes nil.
		h.f.Send(&msg.Msg{Kind: msg.SetPrevPtr, Src: h.id, Dst: q[1].node, Block: b, Requester: msg.NoNeighbor, Mode: msg.LockRead})
		return
	}

	// Fix the distributed list up like deleting a node from a
	// doubly-linked list (§4.3). Mode LockRead on the splice messages
	// routes them to the lock cache rather than the data cache.
	prev, next := msg.NoNeighbor, msg.NoNeighbor
	if idx > 0 {
		prev = q[idx-1].node
	}
	if idx < len(q)-1 {
		next = q[idx+1].node
	}
	if prev != msg.NoNeighbor {
		h.f.Send(&msg.Msg{Kind: msg.SetNextPtr, Src: h.id, Dst: prev, Block: b, Requester: next, Mode: msg.LockRead})
	}
	if next != msg.NoNeighbor {
		h.f.Send(&msg.Msg{Kind: msg.SetPrevPtr, Src: h.id, Dst: next, Block: b, Requester: prev, Mode: msg.LockRead})
	}

	q = append(q[:idx], q[idx+1:]...)
	if len(q) == 0 {
		delete(h.queues, b)
		return
	}
	h.queues[b] = q

	// Grant wave: if no holders remain, grant the head waiter; a read
	// head pulls every consecutive read waiter with it ("the lock release
	// notification goes down the linked list until it meets a write-lock
	// requester").
	if q[0].holding {
		return
	}
	headMode := q[0].mode
	for i := range q {
		if q[i].holding {
			break
		}
		if i > 0 && (headMode != msg.LockRead || q[i].mode != msg.LockRead) {
			break
		}
		q[i].holding = true
		h.Handoffs++
		h.grant(b, q[i].node, q[i].mode)
		if headMode == msg.LockWrite {
			break
		}
	}
}
