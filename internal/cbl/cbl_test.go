package cbl

import (
	"testing"
	"testing/quick"

	"ssmp/internal/fabric"
	"ssmp/internal/mem"
	"ssmp/internal/msg"
	"ssmp/internal/network"
	"ssmp/internal/sim"
)

type rig struct {
	eng   *sim.Engine
	f     *fabric.Fabric
	geom  mem.Geometry
	units []*Unit
	homes []*Home
}

func newRig(t testing.TB, n int) *rig {
	t.Helper()
	eng := sim.NewEngine()
	nw := network.New(eng, network.DefaultConfig(n))
	f := fabric.New(eng, nw, fabric.DefaultTiming())
	geom := mem.Geometry{BlockWords: 4, Nodes: n}
	r := &rig{eng: eng, f: f, geom: geom}
	for i := 0; i < n; i++ {
		r.units = append(r.units, NewUnit(f, i, geom, 8))
		r.homes = append(r.homes, NewHome(f, i, geom, mem.NewStore(geom)))
		i := i
		nw.Attach(i, func(p any) {
			m := p.(*msg.Msg)
			switch {
			case r.homes[i].Handles(m.Kind):
				r.homes[i].Handle(m)
			default:
				r.units[i].Handle(m)
			}
		})
	}
	return r
}

func (r *rig) run(t testing.TB) {
	t.Helper()
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) lock(t testing.TB, node int, a mem.Addr, mode msg.LockMode) {
	t.Helper()
	got := false
	if err := r.units[node].Lock(a, mode, func() { got = true }); err != nil {
		t.Fatalf("node %d lock: %v", node, err)
	}
	r.run(t)
	if !got {
		t.Fatalf("node %d lock on %d never granted", node, a)
	}
}

func (r *rig) unlock(t testing.TB, node int, a mem.Addr) {
	t.Helper()
	if err := r.units[node].Unlock(a, func() {}); err != nil {
		t.Fatalf("node %d unlock: %v", node, err)
	}
	r.run(t)
}

func TestSerialWriteLockMessageCount(t *testing.T) {
	// Table 3, serial lock, CBL: 3 messages (request, grant, release).
	r := newRig(t, 4)
	a := mem.Addr(17)
	r.lock(t, 2, a, msg.LockWrite)
	r.unlock(t, 2, a)
	c := r.f.Coll
	if c.Kind(msg.LockReq) != 1 || c.Kind(msg.LockGrant) != 1 || c.Kind(msg.LockDequeue) != 1 {
		t.Fatalf("message counts: %s", c)
	}
	if c.Total() != 3 {
		t.Fatalf("total messages = %d, want 3 (Table 3 serial lock)", c.Total())
	}
}

func TestLockCarriesData(t *testing.T) {
	r := newRig(t, 4)
	a := mem.Addr(17)
	r.homes[r.geom.Home(r.geom.BlockOf(a))].store.WriteWord(a, 88)
	r.lock(t, 1, a, msg.LockRead)
	w, err := r.units[1].ReadLocked(a)
	if err != nil || w != 88 {
		t.Fatalf("ReadLocked = %d, %v; want 88", w, err)
	}
	r.unlock(t, 1, a)
}

func TestWriteUnderLockTravelsToNextHolder(t *testing.T) {
	r := newRig(t, 4)
	a := mem.Addr(17)
	r.lock(t, 1, a, msg.LockWrite)
	if err := r.units[1].WriteLocked(a, 42); err != nil {
		t.Fatal(err)
	}
	r.unlock(t, 1, a)
	r.lock(t, 2, a, msg.LockWrite)
	w, err := r.units[2].ReadLocked(a)
	if err != nil || w != 42 {
		t.Fatalf("next holder read = %d, %v; want 42", w, err)
	}
	r.unlock(t, 2, a)
	// The final release wrote the data home.
	if got := r.homes[r.geom.Home(r.geom.BlockOf(a))].store.ReadWord(a); got != 42 {
		t.Fatalf("memory = %d, want 42", got)
	}
}

func TestWriteUnderReadLockRejected(t *testing.T) {
	r := newRig(t, 4)
	a := mem.Addr(17)
	r.lock(t, 1, a, msg.LockRead)
	if err := r.units[1].WriteLocked(a, 1); err == nil {
		t.Fatal("write under read lock succeeded")
	}
	r.unlock(t, 1, a)
}

func TestReadersShareTheLock(t *testing.T) {
	r := newRig(t, 4)
	a := mem.Addr(17)
	b := r.geom.BlockOf(a)
	granted := 0
	for _, n := range []int{1, 2, 3} {
		if err := r.units[n].Lock(a, msg.LockRead, func() { granted++ }); err != nil {
			t.Fatal(err)
		}
	}
	r.run(t)
	if granted != 3 {
		t.Fatalf("granted = %d, want 3 concurrent readers", granted)
	}
	q := r.homes[r.geom.Home(b)].Queue(b)
	for _, w := range q {
		if !w.Holding || w.Mode != msg.LockRead {
			t.Fatalf("queue member %+v should be a holding reader", w)
		}
	}
}

func TestWriterExcludedWhileReadersHold(t *testing.T) {
	r := newRig(t, 4)
	a := mem.Addr(17)
	r.lock(t, 1, a, msg.LockRead)
	r.lock(t, 2, a, msg.LockRead)
	writerIn := false
	if err := r.units[3].Lock(a, msg.LockWrite, func() { writerIn = true }); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	if writerIn {
		t.Fatal("writer granted while readers hold")
	}
	r.unlock(t, 1, a)
	if writerIn {
		t.Fatal("writer granted with one reader still holding")
	}
	r.unlock(t, 2, a)
	if !writerIn {
		t.Fatal("writer not granted after last reader released")
	}
}

func TestGrantWaveWakesConsecutiveReaders(t *testing.T) {
	r := newRig(t, 8)
	a := mem.Addr(17)
	r.lock(t, 1, a, msg.LockWrite)
	grants := map[int]bool{}
	for _, n := range []int{2, 3, 4} {
		n := n
		if err := r.units[n].Lock(a, msg.LockRead, func() { grants[n] = true }); err != nil {
			t.Fatal(err)
		}
	}
	writer5 := false
	if err := r.units[5].Lock(a, msg.LockWrite, func() { writer5 = true }); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	if len(grants) != 0 || writer5 {
		t.Fatal("waiters granted while writer holds")
	}
	r.unlock(t, 1, a)
	if len(grants) != 3 {
		t.Fatalf("grant wave woke %d readers, want 3", len(grants))
	}
	if writer5 {
		t.Fatal("trailing writer woken by read wave")
	}
	for _, n := range []int{2, 3, 4} {
		r.unlock(t, n, a)
	}
	if !writer5 {
		t.Fatal("writer not granted after read batch drained")
	}
	r.unlock(t, 5, a)
}

func TestFIFONoReaderBarging(t *testing.T) {
	// A reader arriving behind a waiting writer must not join the current
	// read batch.
	r := newRig(t, 4)
	a := mem.Addr(17)
	r.lock(t, 1, a, msg.LockRead)
	writerIn, readerIn := false, false
	if err := r.units[2].Lock(a, msg.LockWrite, func() { writerIn = true }); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	if err := r.units[3].Lock(a, msg.LockRead, func() { readerIn = true }); err != nil {
		t.Fatal(err)
	}
	r.run(t)
	if writerIn || readerIn {
		t.Fatal("waiters granted while incompatible holder present")
	}
	r.unlock(t, 1, a)
	if !writerIn || readerIn {
		t.Fatalf("after reader release: writer=%v reader=%v, want writer only", writerIn, readerIn)
	}
	r.unlock(t, 2, a)
	if !readerIn {
		t.Fatal("reader not granted after writer released")
	}
	r.unlock(t, 3, a)
}

func TestQueuePointersMirrorQueue(t *testing.T) {
	r := newRig(t, 8)
	a := mem.Addr(17)
	b := r.geom.BlockOf(a)
	r.lock(t, 1, a, msg.LockWrite)
	for _, n := range []int{2, 3, 4} {
		if err := r.units[n].Lock(a, msg.LockWrite, func() {}); err != nil {
			t.Fatal(err)
		}
		r.run(t)
	}
	q := r.homes[r.geom.Home(b)].Queue(b)
	if len(q) != 4 {
		t.Fatalf("queue length = %d", len(q))
	}
	// Each queued line's prev/next must thread the same order.
	for i, w := range q {
		l := r.units[w.Node].LockCache().Lookup(b)
		if l == nil {
			t.Fatalf("node %d missing lock line", w.Node)
		}
		if i > 0 && l.Prev != q[i-1].Node {
			t.Fatalf("node %d prev = %d, want %d", w.Node, l.Prev, q[i-1].Node)
		}
		if i < len(q)-1 && l.Next != q[i+1].Node {
			t.Fatalf("node %d next = %d, want %d", w.Node, l.Next, q[i+1].Node)
		}
	}
}

func TestLockErrors(t *testing.T) {
	r := newRig(t, 4)
	a := mem.Addr(17)
	r.lock(t, 1, a, msg.LockWrite)
	if err := r.units[1].Lock(a, msg.LockWrite, func() {}); err != ErrAlreadyHeld {
		t.Fatalf("re-lock = %v, want ErrAlreadyHeld", err)
	}
	if err := r.units[2].Unlock(a, func() {}); err != ErrNotHeld {
		t.Fatalf("unlock by non-holder = %v, want ErrNotHeld", err)
	}
	if _, err := r.units[2].ReadLocked(a); err != ErrNotHeld {
		t.Fatalf("ReadLocked by non-holder = %v, want ErrNotHeld", err)
	}
	r.unlock(t, 1, a)
}

func TestLockCacheExhaustion(t *testing.T) {
	eng := sim.NewEngine()
	nw := network.New(eng, network.DefaultConfig(2))
	f := fabric.New(eng, nw, fabric.DefaultTiming())
	geom := mem.Geometry{BlockWords: 4, Nodes: 2}
	u := NewUnit(f, 0, geom, 2)
	h := NewHome(f, 0, geom, mem.NewStore(geom))
	h1 := NewHome(f, 1, geom, mem.NewStore(geom))
	nw.Attach(0, func(p any) {
		m := p.(*msg.Msg)
		if h.Handles(m.Kind) {
			h.Handle(m)
		} else {
			u.Handle(m)
		}
	})
	nw.Attach(1, func(p any) { h1.Handle(p.(*msg.Msg)) })

	// Two locks fill the two-entry lock cache (blocks homed at node 0:
	// even block numbers).
	if err := u.Lock(geom.BaseAddr(0), msg.LockWrite, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := u.Lock(geom.BaseAddr(2), msg.LockWrite, func() {}); err != nil {
		t.Fatal(err)
	}
	if err := u.Lock(geom.BaseAddr(4), msg.LockWrite, func() {}); err != ErrLockCacheFull {
		t.Fatalf("third lock = %v, want ErrLockCacheFull", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Releasing one frees a slot.
	if err := u.Unlock(geom.BaseAddr(0), func() {}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := u.Lock(geom.BaseAddr(4), msg.LockWrite, func() {}); err != nil {
		t.Fatalf("lock after release = %v", err)
	}
}

func TestMutualExclusionCounter(t *testing.T) {
	// n nodes each increment a lock-protected counter k times; the final
	// value must be n*k. Increments interleave through the grant queue.
	r := newRig(t, 8)
	a := mem.Addr(17)
	const k = 10
	remaining := make([]int, 8)
	var pump func(node int)
	pump = func(node int) {
		if remaining[node] == 0 {
			return
		}
		remaining[node]--
		err := r.units[node].Lock(a, msg.LockWrite, func() {
			v, err := r.units[node].ReadLocked(a)
			if err != nil {
				t.Error(err)
			}
			if err := r.units[node].WriteLocked(a, v+1); err != nil {
				t.Error(err)
			}
			if err := r.units[node].Unlock(a, func() { pump(node) }); err != nil {
				t.Error(err)
			}
		})
		if err != nil {
			t.Error(err)
		}
	}
	for n := 0; n < 8; n++ {
		remaining[n] = k
		pump(n)
	}
	r.run(t)
	if got := r.homes[r.geom.Home(r.geom.BlockOf(a))].store.ReadWord(a); got != 8*k {
		t.Fatalf("counter = %d, want %d (lost increments under contention)", got, 8*k)
	}
}

func TestParallelLockMessageComplexityIsLinear(t *testing.T) {
	// Table 3 parallel lock: CBL message count is O(n) (paper: 6n-3).
	for _, n := range []int{4, 8, 16} {
		r := newRig(t, n)
		a := mem.Addr(1) // block homed at node 1
		granted := 0
		for i := 0; i < n; i++ {
			i := i
			if err := r.units[i].Lock(a, msg.LockWrite, func() {
				granted++
				if err := r.units[i].Unlock(a, func() {}); err != nil {
					t.Error(err)
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		r.run(t)
		if granted != n {
			t.Fatalf("granted = %d, want %d", granted, n)
		}
		total := int(r.f.Coll.Total())
		if total > 6*n {
			t.Fatalf("n=%d: %d messages, want O(n) <= %d", n, total, 6*n)
		}
		if total < 3*n {
			t.Fatalf("n=%d: %d messages suspiciously few", n, total)
		}
	}
}

// Property: any interleaving of lock/unlock requests maintains the queue
// invariants: holders form a prefix, concurrent holders are compatible, and
// every request is eventually granted exactly once.
func TestQuickLockSafetyAndLiveness(t *testing.T) {
	f := func(ops []uint8) bool {
		r := newRig(t, 8)
		a := mem.Addr(17)
		b := r.geom.BlockOf(a)
		granted := make([]int, 8)
		requested := make([]int, 8)
		held := make([]bool, 8)
		for _, op := range ops {
			node := int(op % 8)
			mode := msg.LockRead
			if (op>>3)%2 == 0 {
				mode = msg.LockWrite
			}
			u := r.units[node]
			if held[node] || u.LockCache().Lookup(b) != nil {
				// Holding or waiting: release if holding.
				if held[node] {
					held[node] = false
					if err := u.Unlock(a, func() {}); err != nil {
						return false
					}
				}
			} else {
				node := node
				requested[node]++
				if err := u.Lock(a, mode, func() { granted[node]++; held[node] = true }); err != nil {
					return false
				}
			}
			if err := r.eng.Run(); err != nil {
				return false
			}
			// Invariant: queue holders form a prefix and are
			// mutually compatible.
			q := r.homes[r.geom.Home(b)].Queue(b)
			sawWaiter := false
			writers := 0
			readers := 0
			for _, w := range q {
				if w.Holding {
					if sawWaiter {
						return false
					}
					if w.Mode == msg.LockWrite {
						writers++
					} else {
						readers++
					}
				} else {
					sawWaiter = true
				}
			}
			if writers > 1 || (writers == 1 && readers > 0) {
				return false
			}
		}
		// Drain: release all holders repeatedly until every request
		// has been granted.
		for pass := 0; pass < len(ops)+8; pass++ {
			progress := false
			for n := 0; n < 8; n++ {
				if held[n] {
					held[n] = false
					if err := r.units[n].Unlock(a, func() {}); err != nil {
						return false
					}
					progress = true
				}
			}
			if err := r.eng.Run(); err != nil {
				return false
			}
			if !progress && !r.homes[r.geom.Home(b)].Locked(b) {
				break
			}
		}
		for n := 0; n < 8; n++ {
			if granted[n] != requested[n] {
				return false
			}
		}
		return !r.homes[r.geom.Home(b)].Locked(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUnitAccessors(t *testing.T) {
	r := newRig(t, 4)
	a := mem.Addr(17)
	if r.units[1].Holds(a) || r.units[1].Line(a) != nil {
		t.Fatal("accessors nonempty before lock")
	}
	r.lock(t, 1, a, msg.LockWrite)
	if !r.units[1].Holds(a) || r.units[1].Line(a) == nil {
		t.Fatal("accessors empty while holding")
	}
	if !r.units[1].Handles(msg.LockGrant) || r.units[1].Handles(msg.LockReq) {
		t.Fatal("Handles wrong")
	}
	r.unlock(t, 1, a)
}
