package bccheck

// Execution graphs: the event-set view of one concrete run, used to render
// a violating execution for humans and to give internal/history's recorder
// and this package a shared event vocabulary.

import (
	"fmt"
	"sort"
	"strings"
)

// GEvent is one event of a recorded execution. Start/End are the simulation
// times the operation was issued and completed; Pending marks an operation
// that never completed (End would be sim.Infinity).
type GEvent struct {
	Proc    int
	Op      Op
	Loc     Loc
	Value   uint64 // value read or written
	Prev    uint64 // for RMW-style events: the value read
	RMW     bool
	Start   uint64
	End     uint64
	Pending bool
}

// Graph is a set of events ordered per processor by Start (program order).
type Graph struct {
	Events []GEvent
	// Names renders locations (defaults to "b<B>w<W>").
	Names func(Loc) string
}

// name renders a location.
func (g *Graph) name(l Loc) string {
	if g.Names != nil {
		return g.Names(l)
	}
	return fmt.Sprintf("b%dw%d", l.Block, l.Word)
}

// RF infers reads-from: for each read event, the index of a write event to
// the same location with the same value whose Start is latest but not after
// the read's End — or -1 when the read can only have seen the initial
// value, and -2 for non-read events. When several writes carry the value
// the choice is a heuristic; the graph stays useful for explanation even if
// the true run linked another equal-valued write.
func (g *Graph) RF() []int {
	rf := make([]int, len(g.Events))
	for i := range rf {
		rf[i] = -2
	}
	for i, e := range g.Events {
		reads := e.Op.Reads() || e.RMW
		if !reads {
			continue
		}
		want := e.Value
		if e.RMW {
			want = e.Prev
		}
		rf[i] = -1
		bestStart := uint64(0)
		for j, w := range g.Events {
			if j == i || w.Loc != e.Loc {
				continue
			}
			writes := w.Op == OpWrite || w.Op == OpWriteGlobal || w.RMW
			if !writes || w.Value != want {
				continue
			}
			if !e.Pending && w.Start > e.End {
				continue
			}
			if rf[i] == -1 || w.Start >= bestStart {
				rf[i] = j
				bestStart = w.Start
			}
		}
	}
	return rf
}

// String renders the graph as one line per event, sorted by Start with
// program order preserved, with reads-from annotations.
func (g *Graph) String() string {
	idx := make([]int, len(g.Events))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ea, eb := g.Events[idx[a]], g.Events[idx[b]]
		if ea.Start != eb.Start {
			return ea.Start < eb.Start
		}
		return ea.Proc < eb.Proc
	})
	rf := g.RF()
	var b strings.Builder
	for _, i := range idx {
		e := g.Events[i]
		end := fmt.Sprint(e.End)
		if e.Pending {
			end = "∞"
		}
		fmt.Fprintf(&b, "[%3d..%4s] P%d %v %s", e.Start, end, e.Proc, e.Op, g.name(e.Loc))
		if e.RMW {
			fmt.Fprintf(&b, " read %d wrote %d", e.Prev, e.Value)
		} else if e.Op.Reads() {
			fmt.Fprintf(&b, " = %d", e.Value)
		} else if e.Op == OpWrite || e.Op == OpWriteGlobal {
			fmt.Fprintf(&b, " := %d", e.Value)
		}
		switch {
		case rf[i] == -1:
			b.WriteString("   (rf: initial value)")
		case rf[i] >= 0:
			w := g.Events[rf[i]]
			fmt.Fprintf(&b, "   (rf: P%d %v @%d)", w.Proc, w.Op, w.Start)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
