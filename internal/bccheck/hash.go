package bccheck

// State interning. Encoded states are folded to 128-bit keys so the
// visited set stores 16 bytes per state instead of the whole encoding.
// The hash is a fixed-seed wyhash-style construction over two mixing
// lanes; with a fixed seed any collision would at least be deterministic
// across runs, and at the default 2M-state cap the collision probability
// of a well-mixed 128-bit hash is ~2^-87 — far below the chance of a
// memory fault corrupting the search.

import (
	"encoding/binary"
	"math/bits"
	"sync"
)

type hkey struct{ hi, lo uint64 }

const (
	hm1 = 0xa0761d6478bd642f
	hm2 = 0xe7037ed1a0b428db
	hm3 = 0x8ebc6af09c88c6e3
	hm4 = 0x589965cc75374cc3
)

// mum is the wyhash mixing primitive: a 64x64->128 multiply folded back
// to 64 bits.
func mum(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return hi ^ lo
}

// hash128 folds an encoded state to a 128-bit key.
func hash128(p []byte) hkey {
	a := uint64(len(p))*hm4 ^ hm1
	b := uint64(len(p))*hm3 ^ hm2
	for len(p) >= 16 {
		x := binary.LittleEndian.Uint64(p)
		y := binary.LittleEndian.Uint64(p[8:])
		a = mum(x^a, y^hm1)
		b = mum(y^b, x^hm2)
		p = p[16:]
	}
	if len(p) > 0 {
		var tail [16]byte
		copy(tail[:], p)
		x := binary.LittleEndian.Uint64(tail[:8])
		y := binary.LittleEndian.Uint64(tail[8:])
		a = mum(x^a, y^hm3)
		b = mum(y^b, x^hm4)
	}
	return hkey{hi: mum(a^hm3, b^hm1), lo: mum(a^hm4, b^hm2)}
}

// visitedSet is the sharded insert-only set of explored state keys.
// Shards keep lock contention negligible under parallel exploration; the
// serial engine pays one uncontended lock per insert.
const visShards = 64

type visitedSet struct {
	shards [visShards]visShard
}

type visShard struct {
	mu sync.Mutex
	m  map[hkey]struct{}
	_  [40]byte // keep shards off each other's cache lines
}

func newVisitedSet() *visitedSet {
	v := &visitedSet{}
	for i := range v.shards {
		v.shards[i].m = make(map[hkey]struct{})
	}
	return v
}

// add inserts k and reports whether it was absent.
func (v *visitedSet) add(k hkey) bool {
	sh := &v.shards[k.lo&(visShards-1)]
	sh.mu.Lock()
	if _, ok := sh.m[k]; ok {
		sh.mu.Unlock()
		return false
	}
	sh.m[k] = struct{}{}
	sh.mu.Unlock()
	return true
}
