package bccheck

import (
	"errors"
	"strings"
	"testing"
)

var x = Loc{Block: 0, Word: 0}
var y = Loc{Block: 1, Word: 0}

func enumerate(t *testing.T, prog Program, opts Options) *Result {
	t.Helper()
	res, err := Enumerate(prog, opts)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	return res
}

func TestStoreBufferingAllowsBothZero(t *testing.T) {
	prog := Program{
		{{Op: OpWriteGlobal, Loc: x, Val: 1}, {Op: OpReadGlobal, Loc: y}},
		{{Op: OpWriteGlobal, Loc: y, Val: 1}, {Op: OpReadGlobal, Loc: x}},
	}
	res := enumerate(t, prog, Options{})
	if !res.Has("0:r0=0 1:r0=0") {
		t.Errorf("SB: both-zero missing from allowed set %v", res.Keys())
	}
	if !res.Has("0:r0=1 1:r0=1") {
		t.Errorf("SB: both-one missing from allowed set %v", res.Keys())
	}
}

func TestStoreBufferingWithFlushForbidsBothZero(t *testing.T) {
	prog := Program{
		{{Op: OpWriteGlobal, Loc: x, Val: 1}, {Op: OpFlush}, {Op: OpReadGlobal, Loc: y}},
		{{Op: OpWriteGlobal, Loc: y, Val: 1}, {Op: OpFlush}, {Op: OpReadGlobal, Loc: x}},
	}
	res := enumerate(t, prog, Options{})
	if res.Has("0:r0=0 1:r0=0") {
		t.Errorf("SB+FLUSH: both-zero should be forbidden; allowed %v", res.Keys())
	}
}

func TestStalePlainReadSurvivesFlush(t *testing.T) {
	// Reader caches x, writer publishes with a flush; the plain re-read must
	// still be able to (indeed, must) see the stale copy.
	prog := Program{
		{{Op: OpWriteGlobal, Loc: x, Val: 42}, {Op: OpFlush}},
		{{Op: OpRead, Loc: x}, {Op: OpRead, Loc: x}},
	}
	res := enumerate(t, prog, Options{})
	if !res.Has("1:r0=0 1:r1=0") {
		t.Errorf("stale plain read missing from allowed set %v", res.Keys())
	}
	if res.Has("1:r0=0 1:r1=42") {
		t.Errorf("plain read got fresher without update machinery: %v", res.Keys())
	}
}

func TestReadUpdateSeesPropagation(t *testing.T) {
	prog := Program{
		{{Op: OpWriteGlobal, Loc: x, Val: 42}, {Op: OpFlush}},
		{{Op: OpReadUpdate, Loc: x}, {Op: OpRead, Loc: x}},
	}
	res := enumerate(t, prog, Options{})
	// Subscribe before the write performs, then the propagation lands (or
	// not) before the plain re-read.
	for _, want := range []string{"1:r0=0 1:r1=0", "1:r0=0 1:r1=42", "1:r0=42 1:r1=42"} {
		if !res.Has(want) {
			t.Errorf("READ-UPDATE: %q missing from allowed set %v", want, res.Keys())
		}
	}
	if res.Has("1:r0=42 1:r1=0") {
		t.Errorf("READ-UPDATE: copy regressed: %v", res.Keys())
	}
}

func TestLockCarriedData(t *testing.T) {
	l := Loc{Block: 2, Word: 0}
	prog := Program{
		{{Op: OpWriteLock, Loc: l}, {Op: OpWrite, Loc: l, Val: 42}, {Op: OpUnlock, Loc: l}},
		{{Op: OpWriteLock, Loc: l}, {Op: OpRead, Loc: l}, {Op: OpUnlock, Loc: l}},
	}
	res := enumerate(t, prog, Options{Observe: []Loc{l}})
	if !res.Has("1:r0=0 m0=42") || !res.Has("1:r0=42 m0=42") {
		t.Errorf("lock-carried data: want {0,42} with final mem 42, got %v", res.Keys())
	}
	if len(res.Outcomes) != 2 {
		t.Errorf("lock-carried data: want exactly 2 outcomes, got %v", res.Keys())
	}
}

func TestBarrierPublishes(t *testing.T) {
	b := Loc{Block: 9}
	prog := Program{
		{{Op: OpWriteGlobal, Loc: x, Val: 1}, {Op: OpBarrier, Loc: b}},
		{{Op: OpBarrier, Loc: b}, {Op: OpReadGlobal, Loc: x}},
	}
	res := enumerate(t, prog, Options{})
	if len(res.Outcomes) != 1 || !res.Has("1:r0=1") {
		t.Errorf("barrier publication: want exactly {1}, got %v", res.Keys())
	}
}

func TestWitnessRecorded(t *testing.T) {
	prog := Program{
		{{Op: OpWriteGlobal, Loc: x, Val: 1}, {Op: OpReadGlobal, Loc: y}},
		{{Op: OpWriteGlobal, Loc: y, Val: 1}, {Op: OpReadGlobal, Loc: x}},
	}
	res := enumerate(t, prog, Options{Witnesses: true})
	for _, o := range res.Outcomes {
		if len(o.Witness) == 0 {
			t.Fatalf("outcome %q has no witness", o.Key())
		}
	}
	plain := enumerate(t, prog, Options{})
	for _, o := range plain.Outcomes {
		if len(o.Witness) != 0 {
			t.Fatalf("outcome %q has a witness without Witnesses set", o.Key())
		}
	}
}

func TestValidateRejectsIllFormed(t *testing.T) {
	l := Loc{Block: 2}
	cases := map[string]Program{
		"unbalanced lock": {{{Op: OpWriteLock, Loc: l}}},
		"unlock not held": {{{Op: OpUnlock, Loc: l}}},
		"write under read lock": {{
			{Op: OpReadLock, Loc: l}, {Op: OpWrite, Loc: l, Val: 1}, {Op: OpUnlock, Loc: l},
		}},
		"nested locks": {{
			{Op: OpWriteLock, Loc: l}, {Op: OpWriteLock, Loc: x}, {Op: OpUnlock, Loc: x}, {Op: OpUnlock, Loc: l},
		}},
		"barrier mismatch": {
			{{Op: OpBarrier, Loc: Loc{Block: 9}}},
			{{Op: OpRead, Loc: x}},
		},
		"barrier under lock": {{
			{Op: OpWriteLock, Loc: l}, {Op: OpBarrier, Loc: Loc{Block: 9}}, {Op: OpUnlock, Loc: l},
		}},
	}
	for name, prog := range cases {
		if err := Validate(prog, Options{}); err == nil {
			t.Errorf("%s: Validate accepted an ill-formed program", name)
		}
	}
}

func TestStateLimit(t *testing.T) {
	prog := Program{
		{{Op: OpWriteGlobal, Loc: x, Val: 1}, {Op: OpReadGlobal, Loc: y}},
		{{Op: OpWriteGlobal, Loc: y, Val: 1}, {Op: OpReadGlobal, Loc: x}},
	}
	_, err := Enumerate(prog, Options{MaxStates: 3})
	if !errors.Is(err, ErrStateLimit) {
		t.Fatalf("want ErrStateLimit, got %v", err)
	}
	var sle *StateLimitError
	if !errors.As(err, &sle) {
		t.Fatalf("want *StateLimitError, got %T", err)
	}
	if sle.Limit != 3 || sle.States <= 3 {
		t.Errorf("StateLimitError fields: states=%d limit=%d", sle.States, sle.Limit)
	}
	if len(sle.Prefix) == 0 {
		t.Errorf("StateLimitError has no canonical prefix")
	}
}

func TestGraphString(t *testing.T) {
	g := &Graph{Events: []GEvent{
		{Proc: 0, Op: OpWriteGlobal, Loc: x, Value: 1, Start: 5, End: 9},
		{Proc: 1, Op: OpRead, Loc: x, Value: 1, Start: 20, End: 21},
		{Proc: 1, Op: OpRead, Loc: y, Value: 0, Start: 22, End: 23},
	}}
	s := g.String()
	if !strings.Contains(s, "WRITE-GLOBAL") || !strings.Contains(s, "rf: P0 WRITE-GLOBAL @5") {
		t.Errorf("graph rendering missing rf annotation:\n%s", s)
	}
	if !strings.Contains(s, "rf: initial value") {
		t.Errorf("graph rendering missing initial-value rf:\n%s", s)
	}
}
