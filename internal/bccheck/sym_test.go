package bccheck

import (
	"errors"
	"reflect"
	"regexp"
	"testing"
)

// symProgs returns programs with known automorphism-group orders.
func symProgs() map[string]struct {
	prog Program
	syms int // non-identity group elements
} {
	x := Loc{Block: 0}
	y := Loc{Block: 1}
	return map[string]struct {
		prog Program
		syms int
	}{
		"sb-swap": {Program{
			{{Op: OpWriteGlobal, Loc: x, Val: 1}, {Op: OpReadGlobal, Loc: y}},
			{{Op: OpWriteGlobal, Loc: y, Val: 1}, {Op: OpReadGlobal, Loc: x}},
		}, 1},
		"three-writers": {Program{
			{{Op: OpWriteGlobal, Loc: x, Val: 1}, {Op: OpReadGlobal, Loc: x}},
			{{Op: OpWriteGlobal, Loc: x, Val: 1}, {Op: OpReadGlobal, Loc: x}},
			{{Op: OpWriteGlobal, Loc: x, Val: 1}, {Op: OpReadGlobal, Loc: x}},
		}, 5},
		"iriw-pairs": {Program{
			{{Op: OpWriteGlobal, Loc: x, Val: 1}},
			{{Op: OpWriteGlobal, Loc: y, Val: 1}},
			{{Op: OpReadGlobal, Loc: x}, {Op: OpReadGlobal, Loc: y}},
			{{Op: OpReadGlobal, Loc: y}, {Op: OpReadGlobal, Loc: x}},
		}, 1},
		"asymmetric-values": {Program{
			{{Op: OpWriteGlobal, Loc: x, Val: 1}, {Op: OpReadGlobal, Loc: y}},
			{{Op: OpWriteGlobal, Loc: y, Val: 2}, {Op: OpReadGlobal, Loc: x}},
		}, 0},
	}
}

// TestComputeSymsGroupOrder pins the automorphism groups of known shapes.
func TestComputeSymsGroupOrder(t *testing.T) {
	for name, tc := range symProgs() {
		c, err := compile(tc.prog, Options{})
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		if len(c.syms) != tc.syms {
			t.Errorf("%s: computed %d non-identity automorphisms, want %d", name, len(c.syms), tc.syms)
		}
	}
}

// TestObserveBreaksSymmetry: observing one of two otherwise-swappable
// locations must kill the automorphism — the outcome vocabulary is not
// invariant under the swap.
func TestObserveBreaksSymmetry(t *testing.T) {
	prog := symProgs()["sb-swap"].prog
	c, err := compile(prog, Options{Observe: []Loc{{Block: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.syms) != 0 {
		t.Errorf("observe {x} left %d automorphisms, want 0", len(c.syms))
	}
	// Observing BOTH swapped locations restores it: the observe multiset
	// is preserved (positions permute).
	c, err = compile(prog, Options{Observe: []Loc{{Block: 0}, {Block: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.syms) != 1 {
		t.Errorf("observe {x,y} computed %d automorphisms, want 1", len(c.syms))
	}
}

// TestSymmetryMatrix is the combos net: every DisablePOR × DisableSymmetry
// × Workers configuration agrees on outcome keys, and configurations that
// differ only in worker count agree on States/Pruned exactly.
func TestSymmetryMatrix(t *testing.T) {
	for name, tc := range symProgs() {
		type snap struct {
			keys           []string
			states, pruned int
		}
		var ref *snap
		for _, por := range []bool{false, true} {
			for _, sym := range []bool{false, true} {
				var serial *snap
				for _, workers := range []int{1, 2, 4} {
					opts := Options{Tuning: Tuning{DisablePOR: por, DisableSymmetry: sym, Workers: workers}}
					res, err := Enumerate(tc.prog, opts)
					if err != nil {
						t.Fatalf("%s por=%v sym=%v w=%d: %v", name, por, sym, workers, err)
					}
					s := &snap{res.Keys(), res.States, res.Pruned}
					if ref == nil {
						ref = s
					} else if !reflect.DeepEqual(s.keys, ref.keys) {
						t.Errorf("%s por=%v sym=%v w=%d: keys %v, want %v", name, por, sym, workers, s.keys, ref.keys)
					}
					if serial == nil {
						serial = s
					} else if s.states != serial.states || s.pruned != serial.pruned {
						t.Errorf("%s por=%v sym=%v w=%d: states/pruned %d/%d, want %d/%d",
							name, por, sym, workers, s.states, s.pruned, serial.states, serial.pruned)
					}
				}
			}
		}
	}
}

// TestSymmetryReduces pins the win: on a fully symmetric 3-writer program
// the quotient explores at least 2x fewer states (the orbit order is 6).
func TestSymmetryReduces(t *testing.T) {
	prog := symProgs()["three-writers"].prog
	on, err := Enumerate(prog, Options{Tuning: Tuning{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Enumerate(prog, Options{Tuning: Tuning{Workers: 1, DisableSymmetry: true}})
	if err != nil {
		t.Fatal(err)
	}
	if on.States*2 > off.States {
		t.Errorf("symmetry reduced %d states only to %d; want >= 2x", off.States, on.States)
	}
	t.Logf("three-writers: %d states full, %d under symmetry", off.States, on.States)
}

// TestStateLimitPrefixUnderSymmetry: the canonical prefix attached to a
// state-limit error renders in the program's own numbering whether or not
// symmetry renamed states internally, and is identical across worker
// counts (it is recomputed by a deterministic serial walk).
func TestStateLimitPrefixUnderSymmetry(t *testing.T) {
	prog := symProgs()["three-writers"].prog
	label := regexp.MustCompile(`^P[0-2][:']`)
	var prefixes [][]string
	for _, tune := range []Tuning{
		{Workers: 1},
		{Workers: 4},
		{Workers: 1, DisableSymmetry: true},
	} {
		_, err := Enumerate(prog, Options{MaxStates: 4, Tuning: tune})
		if !errors.Is(err, ErrStateLimit) {
			t.Fatalf("%+v: want ErrStateLimit, got %v", tune, err)
		}
		var sle *StateLimitError
		if !errors.As(err, &sle) {
			t.Fatalf("%+v: want *StateLimitError, got %T", tune, err)
		}
		if len(sle.Prefix) == 0 {
			t.Fatalf("%+v: empty canonical prefix", tune)
		}
		for _, l := range sle.Prefix {
			if !label.MatchString(l) {
				t.Errorf("%+v: prefix label %q not in original numbering", tune, l)
			}
		}
		prefixes = append(prefixes, sle.Prefix)
	}
	// Same tuning modulo workers: identical prefix.
	if !reflect.DeepEqual(prefixes[0], prefixes[1]) {
		t.Errorf("prefix differs across worker counts:\n%v\n%v", prefixes[0], prefixes[1])
	}
}

// TestOrigDescInverseMapping: rendering a canonical-numbering descriptor
// through a cumulative permutation view must name the ORIGINAL proc and
// block. Exercises origDesc's inverse-map path directly.
func TestOrigDescInverseMapping(t *testing.T) {
	prog := symProgs()["sb-swap"].prog
	c, err := compile(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.syms) != 1 {
		t.Fatalf("want 1 automorphism, got %d", len(c.syms))
	}
	g := &c.syms[0]
	// The automorphism swaps P0<->P1 and blocks 0<->1.
	if g.pp[0] != 1 || g.pp[1] != 0 {
		t.Fatalf("unexpected proc map %v", g.pp[:2])
	}
	cv := c.composeView(0, identView())
	// A canonical-numbering step by "P0 on block 0" happened, in original
	// numbering, on P1 and block 1.
	d := sdesc{kind: sdProc, proc: 0, op: OpReadGlobal, loc: Loc{Block: 0}}
	od := c.origDesc(d, cv)
	if od.proc != 1 {
		t.Errorf("origDesc proc = %d, want 1", od.proc)
	}
	if od.loc.Block != 1 {
		t.Errorf("origDesc block = %d, want 1", od.loc.Block)
	}
	// Identity view: descriptor passes through unchanged.
	od = c.origDesc(d, identView())
	if od.proc != 0 || od.loc.Block != 0 {
		t.Errorf("identity view mangled descriptor: %+v", od)
	}
}

// TestWitnessModeDisablesSymmetry: witness requests force the full
// (unquotiented) canonical DFS, so state counts match symmetry-off and
// every outcome carries a witness.
func TestWitnessModeDisablesSymmetry(t *testing.T) {
	prog := symProgs()["sb-swap"].prog
	wit, err := Enumerate(prog, Options{Witnesses: true})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Enumerate(prog, Options{Tuning: Tuning{Workers: 1, DisableSymmetry: true}})
	if err != nil {
		t.Fatal(err)
	}
	if wit.States != off.States {
		t.Errorf("witness mode explored %d states, symmetry-off %d", wit.States, off.States)
	}
	for _, o := range wit.Outcomes {
		if len(o.Witness) == 0 {
			t.Errorf("outcome %q missing witness", o.Key())
		}
	}
}

// TestSymmetryOrbitClosure: the symmetric store-buffer program has the
// asymmetric outcomes (0,1)/(1,0) in one orbit; the quotient exploration
// records one representative and result() must restore both.
func TestSymmetryOrbitClosure(t *testing.T) {
	prog := symProgs()["sb-swap"].prog
	res, err := Enumerate(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keys := map[string]bool{}
	for _, k := range res.Keys() {
		keys[k] = true
	}
	// Both asymmetric outcomes must be present in the closed set.
	if !keys["0:r0=0 1:r0=1"] || !keys["0:r0=1 1:r0=0"] {
		t.Errorf("orbit closure lost an asymmetric outcome: %v", res.Keys())
	}
}
