// Package bccheck is the axiomatic model of buffered consistency (BC), the
// memory model of the paper's §2, together with an exhaustive enumerator of
// the final-state outcomes the model allows for small programs.
//
// An execution is a set of events — READ, WRITE, READ-GLOBAL, WRITE-GLOBAL,
// READ-UPDATE, RESET-UPDATE, FLUSH-BUFFER, READ-LOCK, WRITE-LOCK, UNLOCK,
// BARRIER (Table 1) — related by program order (po) and reads-from (rf). An
// execution is BC-consistent when it satisfies the axioms below; a final
// outcome (the values returned by each processor's reads plus the final
// memory contents of observed words) is *allowed* when some BC-consistent
// execution produces it.
//
// # Axioms
//
//  1. Program order. Each processor executes its instructions in order.
//     BC relaxes *global visibility*, never local execution: the only
//     asynchronous operation is WRITE-GLOBAL, whose global performance is
//     decoupled from its issue.
//  2. Write-buffer FIFO. The WRITE-GLOBALs of one processor are globally
//     performed (reach memory) in issue order, after an arbitrary finite
//     delay. At issue, the writing processor's own cached copy of the word,
//     if present, is updated immediately.
//  3. Single memory timeline. Globally performed writes to a word are
//     totally ordered, and READ-GLOBAL returns the current memory value at
//     the moment it executes. Hence two READ-GLOBALs in program order can
//     never observe two writes in the opposite of their memory order.
//  4. CP-Synch / FLUSH-BUFFER. FLUSH-BUFFER completes only once every
//     WRITE-GLOBAL previously issued by that processor is globally
//     performed; no later instruction of that processor executes before it
//     completes. UNLOCK and BARRIER issue an implicit FLUSH-BUFFER before
//     taking effect (they are CP-Synch operations: work published before
//     the synch is globally visible after it).
//  5. NP-Synch. READ-LOCK and WRITE-LOCK are NP-Synch operations: acquiring
//     a lock orders nothing — it neither flushes the buffer nor invalidates
//     the private cache. (The data protected by the lock is safe anyway,
//     by axiom 6.)
//  6. Lock-carried data. Lock grants are FIFO per lock block with reader
//     batching (consecutive readers at the head are granted together;
//     writers are exclusive). A grant carries the lock block's memory
//     contents as of grant time; an UNLOCK by a write holder merges the
//     words it dirtied back to memory before any successor is granted.
//     Data accessed only under a lock is therefore sequentially consistent
//     among lock holders.
//  7. Private cache weakness, per-word coherence. Plain READ returns the
//     value of the local copy, installing it from memory on a miss;
//     staleness is unbounded (nothing invalidates it). Plain WRITE dirties
//     the local copy only and is never written back. All installs and
//     update propagations merge per word, refreshing only words the local
//     copy has not dirtied.
//  8. READ-UPDATE freshness. READ-UPDATE subscribes the local copy to the
//     word's block and returns a value at least as fresh as memory at
//     subscription time. After each globally performed write to a
//     subscribed block, an update propagation carrying the block's memory
//     contents at that instant is delivered to each subscriber after an
//     arbitrary finite delay (delivery is asynchronous: a flush does not
//     wait for it). RESET-UPDATE cancels the subscription, again
//     asynchronously.
//  9. Cache monotonicity. Between consecutive update propagations (and
//     absent local writes), the local copy of a word is constant: two
//     program-ordered plain READs of a word cannot observe an older value
//     after a newer one for a single globally performed write (CoRR holds
//     per word within a copy).
//  10. Barrier. A BARRIER episode releases no participant until every
//     participant has arrived — and, by axiom 4, has drained its write
//     buffer. All pre-barrier global writes are visible to all post-barrier
//     READ-GLOBALs (but NOT necessarily to post-barrier plain READs of
//     previously cached copies — axiom 7 — nor instantly to READ-UPDATE
//     subscribers — axiom 8).
//
// # Enumeration
//
// Enumerate realizes the axioms operationally: a small-step abstract
// machine whose nondeterministic choices are exactly the freedoms the
// axioms leave open — the interleaving of processor steps, the retirement
// point of each buffered write, the delivery point of each update
// propagation, and the application point of each unsubscription. A
// depth-first search over this machine with memoized states visits every
// reachable quiescent final state; the set of their outcomes is the allowed
// set. Where the concrete machine's network makes some delivery orders
// impossible, the abstract machine still explores them: the enumerated set
// is a sound over-approximation of the concrete machine's behaviors, which
// is the direction the litmus harness needs (observed ⊆ allowed).
//
// The model covers the default CBL/BC configuration: reader-initiated
// update coherence, unbounded non-coalescing write buffer, no direct lock
// handoff, and working sets small enough that no cache eviction occurs.
//
// # Exploration engine
//
// The search is built for throughput without giving up determinism.
// States live in pooled flat arrays (a clone is a few memcpys) and are
// interned by a 128-bit hash of a canonical encoding in a sharded visited
// set — no per-state strings, and at the default 2M-state cap the
// collision probability of the fixed-seed 128-bit hash is negligible
// (~2^-87). Successor labels are small structured descriptors rendered to
// text only when a witness (Options.Witnesses) or a deadlock report is
// emitted. Partial-order reduction prunes interleavings of
// retire/propagation/unsubscription transitions that provably commute
// invisibly (see por.go for the soundness argument); Result.Pruned counts
// what it skipped, and Tuning.DisablePOR restores the full graph.
// Exploration fans out across Tuning.Workers work-stealing workers; the
// reduced graph is a deterministic subgraph and outcomes merge by
// canonical key, so outcome set, States, and Pruned are bit-identical at
// any worker count. Witness mode forces the serial canonical
// depth-first engine, which also defines the canonical deadlock report.
//
// Symmetry reduction (sym.go) quotients the state space by the program's
// automorphism group: processor/block/barrier renamings under which the
// compiled system is invariant, computed once at compile time. Each
// successor is replaced by its orbit representative (least encoding, via
// a fused permuted encoder that never materializes non-winning orbit
// members), terminal outcomes are closed under the group again, and
// deadlock/state-limit labels are mapped back through the accumulated
// permutation — so Result keys and error reports are exactly the
// symmetry-off ones at a fraction of the states. Tuning.DisableSymmetry
// turns the quotient off; witness mode and model mutations disable it
// automatically.
//
// Model mutations (mutate.go) are single-axiom ablations used by
// internal/litmus to compute axiom-coverage vectors: a mutated model
// explores the full graph (both reductions are proved against the real
// semantics only) and a test covers an axiom iff its outcome-key set
// changes under that axiom's mutation.
package bccheck
