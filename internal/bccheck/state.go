package bccheck

// Flat machine-state representation. The old engine held a tree of small
// slices per state (lines, regs, buffers, lock queues) and paid dozens of
// allocations per clone; here every component lives in one of a few flat
// arrays whose sizes are fixed at compile time, so a clone is a handful
// of memcpys into a pooled state and encoding writes into a reusable
// scratch buffer.

import (
	"encoding/binary"
	"strconv"
)

// Processor status.
const (
	stRun   uint8 = iota // executing; runnable if pc < len(prog)
	stLock               // waiting for a lock grant
	stFlush              // waiting for the write buffer to drain
	stBar                // waiting for a barrier release
)

// Line flags (per proc, per block, data and lock kinds).
const (
	lfPresent uint8 = 1 << 0
	lfUpdate  uint8 = 1 << 1
)

// Lock-queue entry layout: proc in bits 0-2 (nproc <= 8), then flags.
const (
	lqProc  uint8 = 0x07
	lqWrite uint8 = 1 << 3
	lqHold  uint8 = 1 << 4
)

type pmeta struct {
	pc     int16
	stage  int8
	status uint8
	nregs  int16
	// bufLo/bufHi delimit the live FIFO window of this proc's buffer
	// segment. Each WRITE-GLOBAL uses a fresh slot (the segment is sized
	// to the proc's WRITE-GLOBAL count), so the head only ever advances.
	bufLo int16
	bufHi int16
}

type bufent struct {
	val uint64
	wrd int16
	blk int8
	wi  int8
}

// propm is an update propagation in flight: a snapshot of one block's
// memory image addressed to one subscriber. Values are inline (blocks
// have at most 8 words) so the props slice needs no per-entry backing.
type propm struct {
	vals [8]uint64
	dst  int8
	blk  int8
	n    int8
}

type unsubm struct{ proc, blk int8 }

// mstate is one abstract machine state. All slices have compile-time
// fixed lengths except props/unsubs, which reuse pooled capacity.
type mstate struct {
	mem   []uint64 // nwords
	regs  []uint64 // per-proc segments at compiled.regOff
	lineV []uint64 // (2*nproc)*nwords line values; data then lock per proc
	lineF []uint8  // (2*nproc)*nblocks line flags
	lineD []uint8  // (2*nproc)*nblocks dirty bitmasks (bit = word index)
	buf   []bufent // per-proc segments at compiled.bufOff
	procs []pmeta  // nproc
	lockQ []uint8  // nblocks*nproc FIFO grant-queue entries
	lockN []uint8  // per block: queue length
	subs  []uint8  // per block: subscriber bitmask (home's chain)
	bars  []uint8  // per barrier: arrived bitmask
	props []propm
	unsub []unsubm
}

// li indexes lineF/lineD: kind 0 is the data cache, kind 1 the lock cache.
func (c *compiled) li(p, kind, blk int) int { return (p*2+kind)*len(c.blocks) + blk }

// lv is the lineV offset of the first word of a line.
func (c *compiled) lv(p, kind, blk int) int { return (p*2+kind)*c.nwords + c.blocks[blk].base }

func (c *compiled) newState() *mstate {
	np, nb := c.nproc, len(c.blocks)
	return &mstate{
		mem:   make([]uint64, c.nwords),
		regs:  make([]uint64, c.regCap),
		lineV: make([]uint64, 2*np*c.nwords),
		lineF: make([]uint8, 2*np*nb),
		lineD: make([]uint8, 2*np*nb),
		buf:   make([]bufent, c.bufCap),
		procs: make([]pmeta, np),
		lockQ: make([]uint8, nb*np),
		lockN: make([]uint8, nb),
		subs:  make([]uint8, nb),
		bars:  make([]uint8, c.nbar),
	}
}

// worker is one exploration context: a state free list, the encode
// scratch buffer, and a local outcome map merged at the end of the run.
type worker struct {
	e         *engine
	free      []*mstate
	scratch   []byte
	encBest   []byte // canonical encoding of the last canonicalize()
	sortIdx   []int32
	keybuf    []byte
	permProps []propm  // encodePerm scratch
	permUnsub []unsubm // encodePerm scratch
	outcomes  map[string]*Outcome
}

func newWorker(e *engine) *worker {
	return &worker{e: e, outcomes: make(map[string]*Outcome)}
}

func (w *worker) get() *mstate {
	if n := len(w.free); n > 0 {
		s := w.free[n-1]
		w.free = w.free[:n-1]
		return s
	}
	return w.e.c.newState()
}

func (w *worker) put(s *mstate) { w.free = append(w.free, s) }

// clone copies s into a pooled state. Segments beyond their live windows
// carry stale bytes; they are never read and never encoded.
func (w *worker) clone(s *mstate) *mstate {
	n := w.get()
	copy(n.mem, s.mem)
	copy(n.regs, s.regs)
	copy(n.lineV, s.lineV)
	copy(n.lineF, s.lineF)
	copy(n.lineD, s.lineD)
	copy(n.buf, s.buf)
	copy(n.procs, s.procs)
	copy(n.lockQ, s.lockQ)
	copy(n.lockN, s.lockN)
	copy(n.subs, s.subs)
	copy(n.bars, s.bars)
	n.props = append(n.props[:0], s.props...)
	n.unsub = append(n.unsub[:0], s.unsub...)
	return n
}

// initial resets a pooled state to the program's start configuration.
func (c *compiled) initial(w *worker) *mstate {
	s := w.get()
	copy(s.mem, c.init)
	for i := range s.procs {
		s.procs[i] = pmeta{}
	}
	for i := range s.lineF {
		s.lineF[i] = 0
		s.lineD[i] = 0
	}
	for i := range s.lockN {
		s.lockN[i] = 0
		s.subs[i] = 0
	}
	for i := range s.bars {
		s.bars[i] = 0
	}
	s.props = s.props[:0]
	s.unsub = s.unsub[:0]
	return s
}

// encode serializes a state into the worker's scratch buffer. In-flight
// message multisets are emitted in sorted order so states differing only
// in bookkeeping order coincide, exactly like the old string-key scheme
// — but with zero allocations on the steady path.
func (c *compiled) encode(w *worker, s *mstate) []byte {
	b := w.scratch[:0]
	for _, v := range s.mem {
		b = binary.AppendUvarint(b, v)
	}
	for p := range s.procs {
		ps := &s.procs[p]
		b = append(b, uint8(ps.pc), uint8(ps.stage), ps.status, uint8(ps.nregs))
		off := int(c.regOff[p])
		for _, v := range s.regs[off : off+int(ps.nregs)] {
			b = binary.AppendUvarint(b, v)
		}
		b = append(b, uint8(ps.bufHi-ps.bufLo))
		boff := int(c.bufOff[p])
		for _, e := range s.buf[boff+int(ps.bufLo) : boff+int(ps.bufHi)] {
			b = append(b, uint8(e.wrd))
			b = binary.AppendUvarint(b, e.val)
		}
	}
	for p := range s.procs {
		for kind := 0; kind < 2; kind++ {
			for blk := range c.blocks {
				f := s.lineF[c.li(p, kind, blk)]
				b = append(b, f)
				if f&lfPresent == 0 {
					continue
				}
				b = append(b, s.lineD[c.li(p, kind, blk)])
				v0 := c.lv(p, kind, blk)
				for _, v := range s.lineV[v0 : v0+len(c.blocks[blk].words)] {
					b = binary.AppendUvarint(b, v)
				}
			}
		}
	}
	for blk := range c.blocks {
		qn := int(s.lockN[blk])
		b = append(b, uint8(qn))
		b = append(b, s.lockQ[blk*c.nproc:blk*c.nproc+qn]...)
	}
	b = append(b, s.subs...)
	b = append(b, s.bars...)

	idx := w.sortIdx[:0]
	for i := range s.props {
		idx = append(idx, int32(i))
	}
	// Insertion sort: the multiset is tiny and usually nearly sorted.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && propLess(&s.props[idx[j]], &s.props[idx[j-1]]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	b = append(b, uint8(len(idx)))
	for _, i := range idx {
		pr := &s.props[i]
		b = append(b, uint8(pr.dst), uint8(pr.blk))
		for _, v := range pr.vals[:pr.n] {
			b = binary.AppendUvarint(b, v)
		}
	}
	w.sortIdx = idx[:0]

	b = append(b, uint8(len(s.unsub)))
	idx2 := w.sortIdx[:0]
	for i := range s.unsub {
		idx2 = append(idx2, int32(i))
	}
	for i := 1; i < len(idx2); i++ {
		for j := i; j > 0 && unsubLess(s.unsub[idx2[j]], s.unsub[idx2[j-1]]); j-- {
			idx2[j], idx2[j-1] = idx2[j-1], idx2[j]
		}
	}
	for _, i := range idx2 {
		b = append(b, uint8(s.unsub[i].proc), uint8(s.unsub[i].blk))
	}
	w.sortIdx = idx2[:0]

	w.scratch = b
	return b
}

func propLess(a, b *propm) bool {
	if a.dst != b.dst {
		return a.dst < b.dst
	}
	if a.blk != b.blk {
		return a.blk < b.blk
	}
	for i := 0; i < int(a.n) && i < int(b.n); i++ {
		if a.vals[i] != b.vals[i] {
			return a.vals[i] < b.vals[i]
		}
	}
	return false
}

func unsubLess(a, b unsubm) bool {
	if a.proc != b.proc {
		return a.proc < b.proc
	}
	return a.blk < b.blk
}

// hash encodes and folds a state to its interning key.
func (w *worker) hash(s *mstate) hkey {
	return hash128(w.e.c.encode(w, s))
}

// quiescent reports whether the machine has finished cleanly: every
// processor past its last instruction, buffers drained, no messages in
// flight.
func (c *compiled) quiescent(s *mstate) bool {
	for p := range s.procs {
		ps := &s.procs[p]
		if ps.status != stRun || int(ps.pc) < len(c.prog[p]) || ps.bufLo != ps.bufHi {
			return false
		}
	}
	return len(s.props) == 0 && len(s.unsub) == 0
}

func (c *compiled) outcome(s *mstate) Outcome {
	o := Outcome{Regs: make([][]uint64, c.nproc)}
	for p := range s.procs {
		off := int(c.regOff[p])
		o.Regs[p] = append([]uint64(nil), s.regs[off:off+int(s.procs[p].nregs)]...)
	}
	for _, wrd := range c.observe {
		o.Mem = append(o.Mem, s.mem[wrd])
	}
	return o
}

// appendOutcomeKey renders the outcome key of a terminal state directly
// from the flat representation, byte-identical to Outcome.Key, without
// materializing the Outcome.
func (c *compiled) appendOutcomeKey(dst []byte, s *mstate) []byte {
	for p := range s.procs {
		off := int(c.regOff[p])
		for i, v := range s.regs[off : off+int(s.procs[p].nregs)] {
			if len(dst) > 0 {
				dst = append(dst, ' ')
			}
			dst = strconv.AppendInt(dst, int64(p), 10)
			dst = append(dst, ':', 'r')
			dst = strconv.AppendInt(dst, int64(i), 10)
			dst = append(dst, '=')
			dst = strconv.AppendUint(dst, v, 10)
		}
	}
	for i, wrd := range c.observe {
		if len(dst) > 0 {
			dst = append(dst, ' ')
		}
		dst = append(dst, 'm')
		dst = strconv.AppendInt(dst, int64(i), 10)
		dst = append(dst, '=')
		dst = strconv.AppendUint(dst, s.mem[wrd], 10)
	}
	return dst
}

// record notes a terminal state's outcome in the worker-local map. When
// the engine runs in witness mode (serial canonical DFS), the first path
// reaching each outcome is rendered as its witness.
func (w *worker) record(s *mstate, path []sdesc) {
	c := w.e.c
	w.keybuf = c.appendOutcomeKey(w.keybuf[:0], s)
	if _, ok := w.outcomes[string(w.keybuf)]; ok {
		return
	}
	o := c.outcome(s)
	if c.wit {
		o.Witness = make([]string, len(path))
		for i := range path {
			o.Witness[i] = c.render(&path[i])
		}
	}
	w.outcomes[string(w.keybuf)] = &o
}
