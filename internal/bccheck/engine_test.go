package bccheck

import (
	"reflect"
	"testing"
)

// enginePrograms is a small spread of shapes: racing global writes,
// update subscriptions, locks, barriers, and the IRIW family that
// stresses propagation interleavings.
func enginePrograms() map[string]Program {
	x := Loc{Block: 0}
	y := Loc{Block: 1}
	l := Loc{Block: 2}
	return map[string]Program{
		"sb": {
			{{Op: OpWriteGlobal, Loc: x, Val: 1}, {Op: OpReadGlobal, Loc: y}},
			{{Op: OpWriteGlobal, Loc: y, Val: 1}, {Op: OpReadGlobal, Loc: x}},
		},
		"mp-update": {
			{{Op: OpWriteGlobal, Loc: x, Val: 1}, {Op: OpWriteGlobal, Loc: y, Val: 1}, {Op: OpFlush}},
			{{Op: OpReadUpdate, Loc: y}, {Op: OpReadUpdate, Loc: x}},
		},
		"iriw-update": {
			{{Op: OpWriteGlobal, Loc: x, Val: 1}},
			{{Op: OpWriteGlobal, Loc: y, Val: 1}},
			{{Op: OpReadUpdate, Loc: x}, {Op: OpReadGlobal, Loc: y}},
			{{Op: OpReadUpdate, Loc: y}, {Op: OpReadGlobal, Loc: x}},
		},
		"locked-counter": {
			{{Op: OpWriteLock, Loc: l}, {Op: OpRead, Loc: l}, {Op: OpWrite, Loc: l, Val: 1}, {Op: OpUnlock, Loc: l}},
			{{Op: OpWriteLock, Loc: l}, {Op: OpRead, Loc: l}, {Op: OpWrite, Loc: l, Val: 2}, {Op: OpUnlock, Loc: l}},
		},
		"barrier-mp": {
			{{Op: OpWriteGlobal, Loc: x, Val: 7}, {Op: OpBarrier, Loc: Loc{Block: 9}}},
			{{Op: OpBarrier, Loc: Loc{Block: 9}}, {Op: OpReadGlobal, Loc: x}, {Op: OpRead, Loc: x}},
		},
		"reset-race": {
			{{Op: OpWriteGlobal, Loc: x, Val: 1}, {Op: OpFlush}},
			{{Op: OpReadUpdate, Loc: x}, {Op: OpResetUpdate, Loc: x}, {Op: OpRead, Loc: x}},
		},
	}
}

func snapshot(t *testing.T, prog Program, opts Options) (keys []string, states, pruned int) {
	t.Helper()
	res, err := Enumerate(prog, opts)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	return res.Keys(), res.States, res.Pruned
}

// TestParallelMatchesSerial pins the determinism contract: for every
// worker count, with POR on and off, outcome keys, state counts, and
// pruned counts are bit-identical to the serial engine.
func TestParallelMatchesSerial(t *testing.T) {
	for name, prog := range enginePrograms() {
		for _, por := range []bool{false, true} {
			base := Options{Tuning: Tuning{Workers: 1, DisablePOR: !por}}
			wantK, wantS, wantP := snapshot(t, prog, base)
			for _, workers := range []int{2, 4, 8} {
				opts := base
				opts.Tuning.Workers = workers
				gotK, gotS, gotP := snapshot(t, prog, opts)
				if !reflect.DeepEqual(gotK, wantK) {
					t.Errorf("%s por=%v workers=%d: keys %v, want %v", name, por, workers, gotK, wantK)
				}
				if gotS != wantS || gotP != wantP {
					t.Errorf("%s por=%v workers=%d: states/pruned %d/%d, want %d/%d",
						name, por, workers, gotS, gotP, wantS, wantP)
				}
			}
		}
	}
}

// TestPORPreservesOutcomes pins POR soundness on the program spread:
// identical outcome sets, never more states than the full graph, and
// States+Pruned as a sanity bound on the work saved.
func TestPORPreservesOutcomes(t *testing.T) {
	for name, prog := range enginePrograms() {
		full := Options{Tuning: Tuning{Workers: 1, DisablePOR: true}}
		red := Options{Tuning: Tuning{Workers: 1}}
		fullK, fullS, fullP := snapshot(t, prog, full)
		redK, redS, redP := snapshot(t, prog, red)
		if !reflect.DeepEqual(redK, fullK) {
			t.Errorf("%s: POR changed outcomes: %v, want %v", name, redK, fullK)
		}
		if fullP != 0 {
			t.Errorf("%s: DisablePOR still pruned %d transitions", name, fullP)
		}
		if redS > fullS {
			t.Errorf("%s: reduced graph larger than full: %d > %d", name, redS, fullS)
		}
		if redP > 0 && redS >= fullS {
			t.Errorf("%s: pruned %d transitions but explored %d >= %d states", name, redP, redS, fullS)
		}
	}
}

// TestPORReducesIRIW pins the headline win: IRIW-class propagation
// interleavings collapse measurably under POR.
func TestPORReducesIRIW(t *testing.T) {
	prog := enginePrograms()["iriw-update"]
	_, fullS, _ := snapshot(t, prog, Options{Tuning: Tuning{Workers: 1, DisablePOR: true}})
	_, redS, redP := snapshot(t, prog, Options{Tuning: Tuning{Workers: 1}})
	// Most IRIW interleavings are genuinely observable — that is the
	// test's point — so the reduction trims the invisible tail (post-read
	// retires and deliveries), not the core diamond.
	if redS >= fullS*95/100 {
		t.Errorf("IRIW: POR explored %d of %d states; want a measurable reduction", redS, fullS)
	}
	if redP == 0 {
		t.Errorf("IRIW: POR pruned nothing")
	}
	t.Logf("IRIW: %d states full, %d reduced, %d pruned", fullS, redS, redP)
}

// TestWitnessStableAcrossTunings pins the canonical-witness contract:
// witness mode forces the serial canonical engine, so traces don't vary
// with the Workers setting.
func TestWitnessStableAcrossTunings(t *testing.T) {
	prog := enginePrograms()["sb"]
	a, err := Enumerate(prog, Options{Witnesses: true, Tuning: Tuning{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Enumerate(prog, Options{Witnesses: true, Tuning: Tuning{Workers: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Outcomes, b.Outcomes) {
		t.Errorf("witnesses differ across worker settings")
	}
	for _, o := range a.Outcomes {
		if len(o.Witness) == 0 {
			t.Errorf("outcome %q missing witness", o.Key())
		}
	}
}

func TestHash128(t *testing.T) {
	seen := make(map[hkey][]byte)
	var inputs [][]byte
	for n := 0; n < 40; n++ {
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(i * 7)
		}
		inputs = append(inputs, buf)
		if n > 0 {
			alt := append([]byte(nil), buf...)
			alt[n-1] ^= 1
			inputs = append(inputs, alt)
		}
	}
	for _, in := range inputs {
		k := hash128(in)
		if prev, ok := seen[k]; ok {
			t.Fatalf("collision between %v and %v", prev, in)
		}
		seen[k] = in
		if k2 := hash128(in); k2 != k {
			t.Fatalf("hash not deterministic for %v", in)
		}
	}
}
