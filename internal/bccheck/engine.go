package bccheck

// The exploration drivers. Two engines share the transition semantics,
// the POR filter, the hash-interned visited set, and the pooled state
// representation:
//
//   - a serial depth-first engine that maintains the canonical path, used
//     when Workers == 1, when witnesses are requested, and to produce
//     deterministic deadlock reports;
//   - a parallel work-stealing frontier engine across N workers with
//     worker-local outcome maps merged at the end.
//
// Both explore the same reduced graph (the ample choice is a function of
// the state), so outcome set, state count, and pruned count are
// bit-identical between them at any worker count.

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

type engine struct {
	c      *compiled
	vis    *visitedSet
	limit  int64
	states atomic.Int64
	pruned atomic.Int64

	// Parallel-run coordination.
	pending     atomic.Int64
	stop        atomic.Bool
	sawDeadlock atomic.Bool
	failMu      sync.Mutex
	fail        error
}

func newEngine(c *compiled) *engine {
	return &engine{c: c, vis: newVisitedSet(), limit: int64(c.max)}
}

func (e *engine) limitError() error {
	return &StateLimitError{
		States: int(e.states.Load()),
		Limit:  e.c.max,
		Prefix: e.canonicalPrefix(16),
	}
}

// deadlockError renders the serial path to a stuck state. Under symmetry
// reduction the path's states live in canonicalized numbering; each label
// is mapped back through the cumulative permutation recorded when it was
// emitted, so reports always read in the program's own numbering.
func (e *engine) deadlockError(path []sdesc, views []permView) error {
	labels := make([]string, len(path))
	for i := range path {
		d := e.c.origDesc(path[i], views[i])
		labels[i] = e.c.render(&d)
	}
	return fmt.Errorf("bccheck: deadlock after: %s", strings.Join(labels, "; "))
}

// canonicalPrefix walks the reduced graph from the initial state taking
// the first transition at every step, rendering up to n labels. It is a
// deterministic sketch of where the exploration's branching lives,
// attached to state-limit errors regardless of which worker tripped the
// cap. Error path only; prune accounting from the walk is discarded by
// the caller.
func (e *engine) canonicalPrefix(n int) []string {
	w := newWorker(e)
	s := e.c.initial(w)
	cv := identView()
	if len(e.c.syms) > 0 {
		var gi int
		s, gi = w.canonicalize(s)
		cv = e.c.composeView(gi, cv)
	}
	var out []string
	for len(out) < n {
		var first *mstate
		var fd sdesc
		e.expandReduced(w, s, func(d sdesc, ns *mstate) {
			if first == nil {
				fd, first = d, ns
			} else {
				w.put(ns)
			}
		})
		if first == nil {
			break
		}
		od := e.c.origDesc(fd, cv)
		out = append(out, e.c.render(&od))
		w.put(s)
		s = first
		if len(e.c.syms) > 0 {
			var gi int
			s, gi = w.canonicalize(s)
			cv = e.c.composeView(gi, cv)
		}
	}
	w.put(s)
	return out
}

// runSerial explores depth-first with an explicit canonical path. The
// first terminal reaching each outcome key defines its witness; the
// first stuck state in canonical order defines the deadlock report.
func (e *engine) runSerial() (map[string]*Outcome, error) {
	w := newWorker(e)
	s0 := e.c.initial(w)
	cv0 := identView()
	if len(e.c.syms) > 0 {
		var gi int
		s0, gi = w.canonicalize(s0)
		cv0 = e.c.composeView(gi, cv0)
		e.vis.add(hash128(w.encBest))
	} else {
		e.vis.add(w.hash(s0))
	}
	e.states.Store(1)
	var path []sdesc
	var views []permView
	var dfs func(s *mstate, cv permView) error
	dfs = func(s *mstate, cv permView) error {
		emitted := 0
		var ferr error
		e.expandReduced(w, s, func(d sdesc, ns *mstate) {
			emitted++
			if ferr != nil {
				w.put(ns)
				return
			}
			nc, gi, fresh := w.canonAdd(ns)
			if !fresh {
				w.put(nc)
				return
			}
			if e.states.Add(1) > e.limit {
				w.put(nc)
				ferr = e.limitError()
				return
			}
			path = append(path, d)
			views = append(views, cv)
			ferr = dfs(nc, e.c.composeView(gi, cv))
			path = path[:len(path)-1]
			views = views[:len(views)-1]
			w.put(nc)
		})
		if ferr != nil {
			return ferr
		}
		if emitted == 0 {
			if !e.c.quiescent(s) {
				return e.deadlockError(path, views)
			}
			w.record(s, path)
		}
		return nil
	}
	err := dfs(s0, cv0)
	w.put(s0)
	if err != nil {
		return nil, err
	}
	return w.outcomes, nil
}

// pworker is a parallel worker: an exploration context plus a mutex-
// guarded ring deque. The owner pushes and pops at the back (depth-first
// locally, keeping the frontier small); thieves steal from the front,
// taking the shallowest — widest — subtrees.
type pworker struct {
	worker
	mu   sync.Mutex
	ring []item
	head int
	tail int // tail-head = live count; indices are logical, mod len(ring)
}

type item struct{ s *mstate }

func (p *pworker) grow() {
	old := len(p.ring)
	next := make([]item, max(64, old*2))
	for i := p.head; i < p.tail; i++ {
		next[i%len(next)] = p.ring[i%old]
	}
	p.ring = next
}

func (p *pworker) pushBack(it item) {
	p.mu.Lock()
	if len(p.ring) == 0 || p.tail-p.head == len(p.ring) {
		p.grow()
	}
	p.ring[p.tail%len(p.ring)] = it
	p.tail++
	p.mu.Unlock()
}

func (p *pworker) popBack() (item, bool) {
	p.mu.Lock()
	if p.tail == p.head {
		p.mu.Unlock()
		return item{}, false
	}
	p.tail--
	it := p.ring[p.tail%len(p.ring)]
	p.mu.Unlock()
	return it, true
}

func (p *pworker) popFront() (item, bool) {
	p.mu.Lock()
	if p.tail == p.head {
		p.mu.Unlock()
		return item{}, false
	}
	it := p.ring[p.head%len(p.ring)]
	p.head++
	p.mu.Unlock()
	return it, true
}

func (e *engine) failWith(err error) {
	e.failMu.Lock()
	if e.fail == nil {
		e.fail = err
	}
	e.failMu.Unlock()
	e.stop.Store(true)
}

// runParallel explores the frontier across nw workers. Workers expand
// from their own deque backs and steal from others' fronts; a global
// pending counter (items pushed but not yet fully expanded) detects
// termination. Outcome maps are worker-local and merged by key, which is
// deterministic because an outcome's content is exactly its key.
func (e *engine) runParallel(nw int) (map[string]*Outcome, error) {
	ws := make([]*pworker, nw)
	for i := range ws {
		ws[i] = &pworker{worker: worker{e: e, outcomes: make(map[string]*Outcome)}}
	}
	s0 := e.c.initial(&ws[0].worker)
	s0, _, _ = ws[0].canonAdd(s0)
	e.states.Store(1)
	e.pending.Store(1)
	ws[0].pushBack(item{s: s0})

	var wg sync.WaitGroup
	for i := range ws {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			e.workLoop(self, ws)
		}(i)
	}
	wg.Wait()
	if e.fail != nil {
		return nil, e.fail
	}
	merged := ws[0].outcomes
	for _, w := range ws[1:] {
		for k, o := range w.outcomes {
			if _, ok := merged[k]; !ok {
				merged[k] = o
			}
		}
	}
	return merged, nil
}

func (e *engine) workLoop(self int, ws []*pworker) {
	w := ws[self]
	idle := 0
	for {
		if e.stop.Load() {
			return
		}
		it, ok := w.popBack()
		for j := 1; !ok && j < len(ws); j++ {
			it, ok = ws[(self+j)%len(ws)].popFront()
		}
		if !ok {
			if e.pending.Load() == 0 {
				return
			}
			if idle++; idle > 64 {
				time.Sleep(20 * time.Microsecond)
			} else {
				runtime.Gosched()
			}
			continue
		}
		idle = 0
		e.expandItem(w, it.s)
		e.pending.Add(-1)
	}
}

func (e *engine) expandItem(w *pworker, s *mstate) {
	emitted := 0
	e.expandReduced(&w.worker, s, func(d sdesc, ns *mstate) {
		emitted++
		if e.stop.Load() {
			w.put(ns)
			return
		}
		nc, _, fresh := w.canonAdd(ns)
		if !fresh {
			w.put(nc)
			return
		}
		if e.states.Add(1) > e.limit {
			w.put(nc)
			e.failWith(e.limitError())
			return
		}
		e.pending.Add(1)
		w.pushBack(item{s: nc})
	})
	if emitted == 0 {
		if !e.c.quiescent(s) {
			// Record that a deadlock exists and let the caller rerun the
			// serial engine for the canonical, deterministic report.
			e.sawDeadlock.Store(true)
			e.stop.Store(true)
		} else {
			w.record(s, nil)
		}
	}
	w.put(s)
}

func (e *engine) result(out map[string]*Outcome) *Result {
	// Close the terminal outcome set under the automorphism group: the
	// quotient exploration records one representative per outcome orbit,
	// and g·o is allowed whenever o is, so a single pass over each group
	// element restores exactly the symmetry-off key set.
	if c := e.c; len(c.syms) > 0 {
		base := make([]*Outcome, 0, len(out))
		for _, o := range out {
			base = append(base, o)
		}
		for _, o := range base {
			for gi := range c.syms {
				po := c.permOutcome(&c.syms[gi], o)
				if k := po.Key(); out[k] == nil {
					out[k] = po
				}
			}
		}
	}
	res := &Result{
		States: int(e.states.Load()),
		Pruned: int(e.pruned.Load()),
	}
	for _, o := range out {
		res.Outcomes = append(res.Outcomes, *o)
	}
	sortOutcomes(res.Outcomes)
	return res
}

// enumerate runs the exploration engine per the compiled tuning. Witness
// mode forces the serial engine: witnesses are defined as the canonical
// DFS's first path to each outcome, so they are identical however the
// non-witness exploration was parallelized.
func (c *compiled) enumerate() (*Result, error) {
	nw := c.tune.Workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	if c.wit {
		nw = 1
	}
	if nw > 1 {
		e := newEngine(c)
		out, err := e.runParallel(nw)
		if e.sawDeadlock.Load() {
			// Fall through to a fresh serial run for the canonical error.
		} else if err != nil {
			return nil, err
		} else {
			return e.result(out), nil
		}
	}
	e := newEngine(c)
	out, err := e.runSerial()
	if err != nil {
		return nil, err
	}
	return e.result(out), nil
}
