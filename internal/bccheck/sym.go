package bccheck

// Symmetry reduction.
//
// The §2 axioms never mention a concrete processor index, block address,
// or barrier identity: every rule is stated "for each processor", "for
// each block". So any renaming of processors/blocks/barriers under which
// the *program system* (instruction sequences, initial memory, observed
// locations) is invariant is an automorphism of the transition system:
// it maps states to states, transitions to transitions, and terminal
// outcomes to terminal outcomes. Exploring one representative per orbit
// is therefore sound, provided the final outcome set is closed under the
// group again (result() does that), so Result keys are exactly the
// symmetry-off keys.
//
// The group is computed once at compile time (computeSyms): processor
// permutations are enumerated within program-shape classes — two procs
// can swap only if their lowered instruction sequences agree
// op-for-op, word-index-for-word-index and value-for-value — and each
// candidate forces a block/barrier unification instruction by
// instruction. A candidate survives if the forced block map is
// injective, maps blocks onto structurally identical blocks (same word
// lists), preserves initial memory, and permutes the observe list onto
// itself. The surviving set is the full automorphism group (minus the
// identity): block maps are forced by unification, so the set is closed
// under composition and inverse.
//
// Canonicalization picks, per state, the orbit member with the
// lexicographically least encoding (materialize each g·s with applyPerm,
// encode, compare). The engine then explores *from the representative*,
// which is what makes the reduction compose with POR and the parallel
// frontier: the representative — including the order of its in-flight
// prop/unsub slices, normalized by normInflight — is a pure function of
// the orbit, so the ample choice and the successor set are the same
// whichever orbit member arrived first, and States/Pruned stay
// bit-identical at any worker count.
//
// Witness mode and model mutations disable symmetry (compile() skips
// computeSyms), exactly as witness mode already forces the serial
// engine.

import "encoding/binary"

// symPerm is one non-identity automorphism of the compiled system. All
// maps send original indices to renamed indices over compiled (dense)
// numbering; wmap/omap are derived from the block map. The i-prefixed
// inverse maps let encodePerm emit the encoding of g·s by walking s in
// target order without materializing the permuted state.
type symPerm struct {
	pp    [8]int8 // processor map
	ipp   [8]int8 // inverse processor map
	bp    []int8  // compiled block map
	ibp   []int8  // inverse block map
	barp  []int8  // compiled barrier map
	ibarp []int8  // inverse barrier map
	wmap  []int32 // global word map
	iwmap []int32 // inverse global word map
	omap  []int32 // observe-position map
}

// computeSyms enumerates the automorphism group and stores every
// non-identity element in c.syms.
func (c *compiled) computeSyms() {
	// Shape signature: everything about a proc's program except which
	// blocks/barriers it names. Two procs are swappable only if equal.
	sig := make([]string, c.nproc)
	{
		var b []byte
		for p, instrs := range c.prog {
			b = b[:0]
			for _, in := range instrs {
				b = append(b, byte(in.op), byte(in.wi))
				b = binary.AppendUvarint(b, in.val)
			}
			sig[p] = string(b)
		}
	}
	nb, nbar := len(c.blocks), c.nbar
	pp := make([]int8, c.nproc)
	used := make([]bool, c.nproc)
	bmap := make([]int8, nb)
	binv := make([]int8, nb)
	barm := make([]int8, nbar)
	barinv := make([]int8, nbar)
	for i := range bmap {
		bmap[i], binv[i] = -1, -1
	}
	for i := range barm {
		barm[i], barinv[i] = -1, -1
	}
	var rec func(p int)
	rec = func(p int) {
		if p == c.nproc {
			c.trySym(pp, bmap, barm)
			return
		}
		for q := 0; q < c.nproc; q++ {
			if used[q] || sig[q] != sig[p] {
				continue
			}
			// Unify p's program with q's: instruction k of p names block
			// B, instruction k of q names block B', so the map must send
			// B to B' (and likewise for barriers). Record assignments for
			// backtracking.
			var undoB, undoBar []int8
			ok := true
			for k := range c.prog[p] {
				a, b := &c.prog[p][k], &c.prog[q][k]
				if a.op == OpFlush {
					continue
				}
				m, inv, undo := bmap, binv, &undoB
				if a.op == OpBarrier {
					m, inv, undo = barm, barinv, &undoBar
				}
				if m[a.blk] == -1 {
					if inv[b.blk] != -1 {
						ok = false
						break
					}
					m[a.blk], inv[b.blk] = int8(b.blk), int8(a.blk)
					*undo = append(*undo, int8(a.blk))
				} else if m[a.blk] != int8(b.blk) {
					ok = false
					break
				}
			}
			if ok {
				pp[p], used[q] = int8(q), true
				rec(p + 1)
				used[q] = false
			}
			for _, x := range undoB {
				binv[bmap[x]], bmap[x] = -1, -1
			}
			for _, x := range undoBar {
				barinv[barm[x]], barm[x] = -1, -1
			}
		}
	}
	rec(0)
	if len(c.syms) > 0 {
		c.blkByID = make(map[int]int, nb)
		for i := range c.blocks {
			c.blkByID[c.blocks[i].id] = i
		}
		c.barByID = make(map[int]int, nbar)
		for i, id := range c.barName {
			c.barByID[id] = i
		}
	}
}

// trySym completes a fully-unified candidate (blocks/barriers not forced
// by any instruction map identically), validates the structural side
// conditions, and appends the automorphism.
func (c *compiled) trySym(pp, bmap, barm []int8) {
	nb, nbar := len(c.blocks), c.nbar
	bm := make([]int8, nb)
	copy(bm, bmap)
	tgt := make([]bool, nb)
	for _, t := range bm {
		if t >= 0 {
			tgt[t] = true
		}
	}
	for b := range bm {
		if bm[b] == -1 {
			if tgt[b] {
				return
			}
			bm[b], tgt[b] = int8(b), true
		}
	}
	brm := make([]int8, nbar)
	copy(brm, barm)
	btgt := make([]bool, nbar)
	for _, t := range brm {
		if t >= 0 {
			btgt[t] = true
		}
	}
	for b := range brm {
		if brm[b] == -1 {
			if btgt[b] {
				return
			}
			brm[b], btgt[b] = int8(b), true
		}
	}
	// Mapped blocks must be structurally identical (same user word list,
	// so word indices line up) and carry the same initial memory.
	for b := range c.blocks {
		src, dst := &c.blocks[b], &c.blocks[bm[b]]
		if len(src.words) != len(dst.words) {
			return
		}
		for i := range src.words {
			if src.words[i] != dst.words[i] || c.init[src.base+i] != c.init[dst.base+i] {
				return
			}
		}
	}
	id := true
	for p := 0; p < c.nproc; p++ {
		if pp[p] != int8(p) {
			id = false
		}
	}
	for b := range bm {
		if bm[b] != int8(b) {
			id = false
		}
	}
	for b := range brm {
		if brm[b] != int8(b) {
			id = false
		}
	}
	if id {
		return
	}
	wmap := make([]int32, c.nwords)
	for b := range c.blocks {
		src, dst := &c.blocks[b], &c.blocks[bm[b]]
		for i := range src.words {
			wmap[src.base+i] = int32(dst.base + i)
		}
	}
	// The observed word multiset must be invariant, and we need the
	// position map to translate outcomes.
	omap := make([]int32, len(c.observe))
	usedObs := make([]bool, len(c.observe))
	for i, w := range c.observe {
		t := int(wmap[w])
		found := false
		for j, w2 := range c.observe {
			if !usedObs[j] && w2 == t {
				omap[i], usedObs[j], found = int32(j), true, true
				break
			}
		}
		if !found {
			return
		}
	}
	g := symPerm{bp: bm, barp: brm, wmap: wmap, omap: omap}
	copy(g.pp[:c.nproc], pp)
	for p := 0; p < c.nproc; p++ {
		g.ipp[g.pp[p]] = int8(p)
	}
	g.ibp = make([]int8, nb)
	for b, t := range bm {
		g.ibp[t] = int8(b)
	}
	g.ibarp = make([]int8, nbar)
	for b, t := range brm {
		g.ibarp[t] = int8(b)
	}
	g.iwmap = make([]int32, c.nwords)
	for w, t := range wmap {
		g.iwmap[t] = int32(w)
	}
	c.syms = append(c.syms, g)
}

// applyPerm materializes t = g·s. Dead regions (registers beyond nregs,
// buffer slots outside the live window, values of absent lines) are not
// copied; they are never read and never encoded.
func (c *compiled) applyPerm(g *symPerm, s, t *mstate) {
	nb := len(c.blocks)
	for w, v := range s.mem {
		t.mem[g.wmap[w]] = v
	}
	for p := 0; p < c.nproc; p++ {
		q := int(g.pp[p])
		ps := s.procs[p]
		t.procs[q] = ps
		ro, rq := int(c.regOff[p]), int(c.regOff[q])
		copy(t.regs[rq:rq+int(ps.nregs)], s.regs[ro:ro+int(ps.nregs)])
		bo, bq := int(c.bufOff[p]), int(c.bufOff[q])
		for j := int(ps.bufLo); j < int(ps.bufHi); j++ {
			e := s.buf[bo+j]
			e.wrd = int16(g.wmap[e.wrd])
			e.blk = g.bp[e.blk]
			t.buf[bq+j] = e
		}
		for kind := 0; kind < 2; kind++ {
			for b := 0; b < nb; b++ {
				tb := int(g.bp[b])
				si, ti := c.li(p, kind, b), c.li(q, kind, tb)
				f := s.lineF[si]
				t.lineF[ti] = f
				t.lineD[ti] = s.lineD[si]
				if f&lfPresent != 0 {
					sv, tv := c.lv(p, kind, b), c.lv(q, kind, tb)
					copy(t.lineV[tv:tv+len(c.blocks[b].words)], s.lineV[sv:sv+len(c.blocks[b].words)])
				}
			}
		}
	}
	for b := 0; b < nb; b++ {
		tb := int(g.bp[b])
		qn := int(s.lockN[b])
		t.lockN[tb] = s.lockN[b]
		for j := 0; j < qn; j++ {
			e := s.lockQ[b*c.nproc+j]
			t.lockQ[tb*c.nproc+j] = e&^lqProc | uint8(g.pp[e&lqProc])
		}
		var m uint8
		for p := 0; p < c.nproc; p++ {
			if s.subs[b]&(1<<uint(p)) != 0 {
				m |= 1 << uint(g.pp[p])
			}
		}
		t.subs[tb] = m
	}
	for k := 0; k < c.nbar; k++ {
		var m uint8
		for p := 0; p < c.nproc; p++ {
			if s.bars[k]&(1<<uint(p)) != 0 {
				m |= 1 << uint(g.pp[p])
			}
		}
		t.bars[int(g.barp[k])] = m
	}
	t.props = t.props[:0]
	for i := range s.props {
		pr := s.props[i]
		pr.dst = g.pp[pr.dst]
		pr.blk = g.bp[pr.blk]
		t.props = append(t.props, pr)
	}
	t.unsub = t.unsub[:0]
	for _, un := range s.unsub {
		t.unsub = append(t.unsub, unsubm{proc: g.pp[un.proc], blk: g.bp[un.blk]})
	}
}

// normInflight sorts a representative's in-flight multisets into the
// order encode() would emit them. Two orbit-equal states then behave
// identically — the ample choice and the emission order of prop/unsub
// steps are functions of slice order — which is what makes the reduced
// graph a pure function of the canonical encoding.
func normInflight(s *mstate) {
	pr := s.props
	for i := 1; i < len(pr); i++ {
		for j := i; j > 0 && propLess(&pr[j], &pr[j-1]); j-- {
			pr[j], pr[j-1] = pr[j-1], pr[j]
		}
	}
	un := s.unsub
	for i := 1; i < len(un); i++ {
		for j := i; j > 0 && unsubLess(un[j], un[j-1]); j-- {
			un[j], un[j-1] = un[j-1], un[j]
		}
	}
}

// encodePerm emits the byte encoding of g·s — byte-identical to
// encode(applyPerm(g, s, ·)) — by walking s in target order through g's
// inverse maps, so orbit comparison never materializes the permuted
// state. Uses w.scratch; the sections mirror encode() exactly.
func (c *compiled) encodePerm(w *worker, s *mstate, g *symPerm) []byte {
	b := w.scratch[:0]
	for wp := range s.mem {
		b = binary.AppendUvarint(b, s.mem[g.iwmap[wp]])
	}
	nb := len(c.blocks)
	for q := 0; q < c.nproc; q++ {
		p := int(g.ipp[q])
		ps := &s.procs[p]
		b = append(b, uint8(ps.pc), uint8(ps.stage), ps.status, uint8(ps.nregs))
		off := int(c.regOff[p])
		for _, v := range s.regs[off : off+int(ps.nregs)] {
			b = binary.AppendUvarint(b, v)
		}
		b = append(b, uint8(ps.bufHi-ps.bufLo))
		boff := int(c.bufOff[p])
		for _, e := range s.buf[boff+int(ps.bufLo) : boff+int(ps.bufHi)] {
			b = append(b, uint8(g.wmap[e.wrd]))
			b = binary.AppendUvarint(b, e.val)
		}
	}
	for q := 0; q < c.nproc; q++ {
		p := int(g.ipp[q])
		for kind := 0; kind < 2; kind++ {
			for tb := 0; tb < nb; tb++ {
				sb := int(g.ibp[tb])
				f := s.lineF[c.li(p, kind, sb)]
				b = append(b, f)
				if f&lfPresent == 0 {
					continue
				}
				b = append(b, s.lineD[c.li(p, kind, sb)])
				v0 := c.lv(p, kind, sb)
				for _, v := range s.lineV[v0 : v0+len(c.blocks[sb].words)] {
					b = binary.AppendUvarint(b, v)
				}
			}
		}
	}
	for tb := 0; tb < nb; tb++ {
		sb := int(g.ibp[tb])
		qn := int(s.lockN[sb])
		b = append(b, uint8(qn))
		for _, e := range s.lockQ[sb*c.nproc : sb*c.nproc+qn] {
			b = append(b, e&^lqProc|uint8(g.pp[e&lqProc]))
		}
	}
	for tb := 0; tb < nb; tb++ {
		var m uint8
		for p := 0; p < c.nproc; p++ {
			if s.subs[g.ibp[tb]]&(1<<uint(p)) != 0 {
				m |= 1 << uint(g.pp[p])
			}
		}
		b = append(b, m)
	}
	for tk := 0; tk < c.nbar; tk++ {
		var m uint8
		for p := 0; p < c.nproc; p++ {
			if s.bars[g.ibarp[tk]]&(1<<uint(p)) != 0 {
				m |= 1 << uint(g.pp[p])
			}
		}
		b = append(b, m)
	}

	// In-flight multisets: map, then emit in the sorted order encode()
	// would use for the materialized state.
	pp := w.permProps[:0]
	for i := range s.props {
		pr := s.props[i]
		pr.dst = g.pp[pr.dst]
		pr.blk = g.bp[pr.blk]
		pp = append(pp, pr)
	}
	w.permProps = pp
	for i := 1; i < len(pp); i++ {
		for j := i; j > 0 && propLess(&pp[j], &pp[j-1]); j-- {
			pp[j], pp[j-1] = pp[j-1], pp[j]
		}
	}
	b = append(b, uint8(len(pp)))
	for i := range pp {
		b = append(b, uint8(pp[i].dst), uint8(pp[i].blk))
		for _, v := range pp[i].vals[:pp[i].n] {
			b = binary.AppendUvarint(b, v)
		}
	}

	un := w.permUnsub[:0]
	for _, u := range s.unsub {
		un = append(un, unsubm{proc: g.pp[u.proc], blk: g.bp[u.blk]})
	}
	w.permUnsub = un
	for i := 1; i < len(un); i++ {
		for j := i; j > 0 && unsubLess(un[j], un[j-1]); j-- {
			un[j], un[j-1] = un[j-1], un[j]
		}
	}
	b = append(b, uint8(len(un)))
	for _, u := range un {
		b = append(b, uint8(u.proc), uint8(u.blk))
	}

	w.scratch = b
	return b
}

// canonicalize replaces ns with its orbit representative — the member
// with the lexicographically least encoding — and returns the group
// element that produced it (-1 for the identity). The representative's
// encoding is left in w.encBest for interning. ns is consumed: either
// returned or released to the pool. Orbit members are compared through
// encodePerm (no state copies); only the winning element, if any, is
// materialized once at the end.
func (w *worker) canonicalize(ns *mstate) (*mstate, int) {
	c := w.e.c
	w.encBest = append(w.encBest[:0], c.encode(w, ns)...)
	bestG := -1
	for gi := range c.syms {
		e2 := c.encodePerm(w, ns, &c.syms[gi])
		if bytesLess(e2, w.encBest) {
			w.encBest = append(w.encBest[:0], e2...)
			bestG = gi
		}
	}
	if bestG >= 0 {
		tmp := w.get()
		c.applyPerm(&c.syms[bestG], ns, tmp)
		w.put(ns)
		ns = tmp
	}
	normInflight(ns)
	return ns, bestG
}

func bytesLess(a, b []byte) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// canonAdd canonicalizes a successor, interns it, and reports the
// representative, the applied group element, and whether it was fresh.
func (w *worker) canonAdd(ns *mstate) (*mstate, int, bool) {
	if len(w.e.c.syms) == 0 {
		return ns, -1, w.e.vis.add(w.hash(ns))
	}
	nc, gi := w.canonicalize(ns)
	return nc, gi, w.e.vis.add(hash128(w.encBest))
}

// permView is a cumulative permutation accumulated along a serial
// exploration path: it sends original indices to the numbering the
// current representative uses. Deadlock and state-limit reports map
// their step labels back through the inverse so they always render in
// the program's own processor/location numbering.
type permView struct {
	pp   [8]int8
	bp   [16]int8
	barp [8]int8
}

func identView() permView {
	var v permView
	for i := range v.pp {
		v.pp[i] = int8(i)
	}
	for i := range v.bp {
		v.bp[i] = int8(i)
	}
	for i := range v.barp {
		v.barp[i] = int8(i)
	}
	return v
}

// composeView applies group element gi after the cumulative view cv.
func (c *compiled) composeView(gi int, cv permView) permView {
	if gi < 0 {
		return cv
	}
	g := &c.syms[gi]
	nv := identView()
	for p := 0; p < c.nproc; p++ {
		nv.pp[p] = g.pp[cv.pp[p]]
	}
	for b := 0; b < len(c.blocks); b++ {
		nv.bp[b] = g.bp[cv.bp[b]]
	}
	for k := 0; k < c.nbar; k++ {
		nv.barp[k] = g.barp[cv.barp[k]]
	}
	return nv
}

// origDesc maps a step descriptor emitted in cumulative-permuted
// numbering back to the program's original numbering.
func (c *compiled) origDesc(d sdesc, cv permView) sdesc {
	if len(c.syms) == 0 {
		return d
	}
	var iv permView
	for p := 0; p < c.nproc; p++ {
		iv.pp[cv.pp[p]] = int8(p)
	}
	for b := 0; b < len(c.blocks); b++ {
		iv.bp[cv.bp[b]] = int8(b)
	}
	for k := 0; k < c.nbar; k++ {
		iv.barp[cv.barp[k]] = int8(k)
	}
	d.proc = iv.pp[d.proc]
	mapBlk := func(userID int) int {
		return c.blocks[iv.bp[c.blkByID[userID]]].id
	}
	switch d.kind {
	case sdRetire:
		d.loc.Block = mapBlk(d.loc.Block)
	case sdProp, sdUnsub:
		d.aux = int32(mapBlk(int(d.aux)))
	case sdProc:
		switch d.op {
		case OpFlush:
		case OpBarrier:
			d.loc.Block = c.barName[iv.barp[c.barByID[d.loc.Block]]]
		default:
			d.loc.Block = mapBlk(d.loc.Block)
		}
	}
	return d
}

// permOutcome translates an outcome through g: processor register files
// and observed-memory positions move to their renamed slots. Used to
// close the terminal outcome set under the group, which restores exactly
// the symmetry-off Result keys.
func (c *compiled) permOutcome(g *symPerm, o *Outcome) *Outcome {
	po := &Outcome{Regs: make([][]uint64, c.nproc)}
	for p := 0; p < c.nproc; p++ {
		po.Regs[g.pp[p]] = append([]uint64(nil), o.Regs[p]...)
	}
	if len(o.Mem) > 0 {
		po.Mem = make([]uint64, len(o.Mem))
		for i, v := range o.Mem {
			po.Mem[g.omap[i]] = v
		}
	}
	return po
}
