package bccheck

import (
	"reflect"
	"testing"
)

// keySet enumerates prog under the given mutation (full graph, serial)
// and returns its outcome keys plus the result.
func mutKeys(t *testing.T, prog Program, m Mutation) (*Result, []string) {
	t.Helper()
	res, err := Enumerate(prog, Options{Mutate: m, Tuning: Tuning{Workers: 1}})
	if err != nil {
		t.Fatalf("enumerate mutate=%v: %v", m, err)
	}
	return res, res.Keys()
}

func TestMutationString(t *testing.T) {
	want := map[Mutation]string{
		MutNone:      "none",
		MutFIFO:      "fifo",
		MutNPSynch:   "np-synch",
		MutCPSynch:   "cp-synch",
		MutLockData:  "lock-data",
		MutCoherence: "coherence",
		MutFresh:     "freshness",
		MutBarrier:   "barrier",
		mutCount:     "Mutation(8)",
	}
	for m, s := range want {
		if got := m.String(); got != s {
			t.Errorf("Mutation(%d).String() = %q, want %q", m, got, s)
		}
	}
}

func TestUnknownMutationRejected(t *testing.T) {
	prog := Program{{{Op: OpReadGlobal, Loc: Loc{Block: 0}}}}
	if _, err := Enumerate(prog, Options{Mutate: mutCount}); err == nil {
		t.Fatal("Enumerate accepted an out-of-range mutation")
	}
	if _, err := Enumerate(prog, Options{Mutate: Mutation(200)}); err == nil {
		t.Fatal("Enumerate accepted Mutation(200)")
	}
}

// TestMutationsDisableReductions: a mutated model explores the full
// interleaving graph — POR pruning and the symmetry quotient are both
// proved against the real semantics only.
func TestMutationsDisableReductions(t *testing.T) {
	prog := enginePrograms()["sb"]
	full, err := Enumerate(prog, Options{Tuning: Tuning{DisablePOR: true, DisableSymmetry: true, Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for m := MutFIFO; m < mutCount; m++ {
		res, _ := mutKeys(t, prog, m)
		if res.Pruned != 0 {
			t.Errorf("mutate=%v pruned %d transitions, want 0", m, res.Pruned)
		}
		if res.States < full.States {
			t.Errorf("mutate=%v explored %d states, fewer than the full graph's %d", m, res.States, full.States)
		}
	}
}

// TestMutFIFOWeakens: message-passing through two buffered global writes
// is ordered only by the FIFO axiom; ablating it lets the flag overtake
// the data.
func TestMutFIFOWeakens(t *testing.T) {
	x, f := Loc{Block: 0}, Loc{Block: 1}
	prog := Program{
		{{Op: OpWriteGlobal, Loc: x, Val: 1}, {Op: OpWriteGlobal, Loc: f, Val: 1}},
		{{Op: OpReadGlobal, Loc: f}, {Op: OpReadGlobal, Loc: x}},
	}
	_, strict := mutKeys(t, prog, MutNone)
	_, mutated := mutKeys(t, prog, MutFIFO)
	if reflect.DeepEqual(strict, mutated) {
		t.Fatal("MutFIFO did not change the allowed set of buffered MP")
	}
	if !subset(strict, mutated) {
		t.Fatalf("MutFIFO removed outcomes:\nstrict  %v\nmutated %v", strict, mutated)
	}
	if !contains(mutated, "0:. 1:r0=1 1:r1=0") && !contains(mutated, "1:r0=1 1:r1=0") {
		t.Fatalf("MutFIFO failed to admit the reordered outcome: %v", mutated)
	}
}

// TestMutBarrierWeakens: barrier-separated MP loses its ordering when the
// rendezvous is ablated.
func TestMutBarrierWeakens(t *testing.T) {
	prog := enginePrograms()["barrier-mp"]
	_, strict := mutKeys(t, prog, MutNone)
	_, mutated := mutKeys(t, prog, MutBarrier)
	if reflect.DeepEqual(strict, mutated) {
		t.Fatal("MutBarrier did not change the allowed set of barrier-mp")
	}
	if !subset(strict, mutated) {
		t.Fatalf("MutBarrier removed outcomes:\nstrict  %v\nmutated %v", strict, mutated)
	}
}

// TestMutNPSynchStrengthens is the one inverted mutation: NP-Synch is an
// axiom of weakness (lock grants synchronize nothing), so its ablation
// REMOVES outcomes. A reader that acquires a lock after a remote buffered
// write can miss the write under the real model; with acquisition
// strengthened into a synch point the acquiring proc's own buffer drains
// first, ordering its earlier global write before the critical section.
func TestMutNPSynchStrengthens(t *testing.T) {
	x, l := Loc{Block: 0}, Loc{Block: 2}
	// P0 buffers a write to x, acquires l, and reads x globally INSIDE the
	// critical section (before the unlock's CP-Synch drain). Strict model:
	// the buffered write may still be in flight at the read, so r0=0 is
	// allowed. Strengthened: acquisition drained it, forcing r0=1.
	prog := Program{
		{
			{Op: OpWriteGlobal, Loc: x, Val: 1},
			{Op: OpWriteLock, Loc: l},
			{Op: OpReadGlobal, Loc: x},
			{Op: OpUnlock, Loc: l},
		},
	}
	_, strict := mutKeys(t, prog, MutNone)
	_, mutated := mutKeys(t, prog, MutNPSynch)
	if reflect.DeepEqual(strict, mutated) {
		t.Fatal("MutNPSynch did not change the allowed set")
	}
	if !subset(mutated, strict) {
		t.Fatalf("MutNPSynch added outcomes (it must only remove):\nstrict  %v\nmutated %v", strict, mutated)
	}
	if contains(mutated, "0:r0=0") {
		t.Fatalf("strengthened acquisition still allows the stale read: %v", mutated)
	}
	if !contains(strict, "0:r0=0") {
		t.Fatalf("strict model lost the NP-Synch-licensed stale read: %v", strict)
	}
}

// TestMutCoherenceWeakens: an update propagation clobbering a dirty word
// lets a locally-written value be overwritten by a stale remote update.
func TestMutCoherenceWeakens(t *testing.T) {
	x := Loc{Block: 0}
	prog := Program{
		{{Op: OpReadUpdate, Loc: x}, {Op: OpWrite, Loc: x, Val: 9}, {Op: OpRead, Loc: x}},
		{{Op: OpWriteGlobal, Loc: x, Val: 1}, {Op: OpFlush}},
	}
	_, strict := mutKeys(t, prog, MutNone)
	_, mutated := mutKeys(t, prog, MutCoherence)
	if reflect.DeepEqual(strict, mutated) {
		t.Fatal("MutCoherence did not change the allowed set")
	}
	if !subset(strict, mutated) {
		t.Fatalf("MutCoherence removed outcomes:\nstrict  %v\nmutated %v", strict, mutated)
	}
}

func subset(a, b []string) bool {
	set := map[string]bool{}
	for _, k := range b {
		set[k] = true
	}
	for _, k := range a {
		if !set[k] {
			return false
		}
	}
	return true
}

func contains(ks []string, k string) bool {
	for _, x := range ks {
		if x == k {
			return true
		}
	}
	return false
}
