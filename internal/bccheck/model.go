package bccheck

// The abstract BC machine. State is tiny (a handful of words per litmus
// program), so exploration clones eagerly and memoizes on an encoded key.

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

const defaultMaxStates = 2_000_000

// compiled is a validated program with its location layout resolved: blocks
// are renumbered densely, each block's referenced words become a dense
// word-index list, and every data word gets a global index into the flat
// memory image.
type compiled struct {
	prog    [][]cinstr
	nproc   int
	blocks  []blockInfo
	nwords  int
	observe []int // global word indices
	init    []uint64
	nbar    int
	barName []int // compiled barrier index -> user barrier id
	max     int
	locName func(Loc) string
}

type blockInfo struct {
	id    int   // user block id
	words []int // user word ids, sorted
	base  int   // global index of words[0]
}

type cinstr struct {
	op  Op
	blk int // compiled block index; for OpBarrier, compiled barrier index
	wi  int // word index within block
	wrd int // global word index
	val uint64
	loc Loc // original, for labels
}

// compile lays out locations, lowers instructions, and validates.
func compile(prog Program, opts Options) (*compiled, error) {
	if len(prog) < 1 || len(prog) > 8 {
		return nil, fmt.Errorf("bccheck: need 1-8 processors, got %d", len(prog))
	}
	words := map[int]map[int]bool{} // block -> word set
	bars := map[int]bool{}
	note := func(l Loc) {
		if words[l.Block] == nil {
			words[l.Block] = map[int]bool{}
		}
		words[l.Block][l.Word] = true
	}
	for p, instrs := range prog {
		if len(instrs) > 64 {
			return nil, fmt.Errorf("bccheck: P%d has %d instructions (max 64)", p, len(instrs))
		}
		for _, in := range instrs {
			switch in.Op {
			case OpFlush:
			case OpBarrier:
				bars[in.Loc.Block] = true
			case OpRead, OpWrite, OpReadGlobal, OpWriteGlobal,
				OpReadUpdate, OpResetUpdate, OpReadLock, OpWriteLock, OpUnlock:
				if in.Loc.Block < 0 || in.Loc.Word < 0 {
					return nil, fmt.Errorf("bccheck: P%d: negative location %+v", p, in.Loc)
				}
				note(in.Loc)
			default:
				return nil, fmt.Errorf("bccheck: P%d: unknown op %d", p, in.Op)
			}
		}
	}
	for _, l := range opts.Observe {
		note(l)
	}
	for l := range opts.Init {
		note(l)
	}
	if len(words) > 16 {
		return nil, fmt.Errorf("bccheck: %d blocks referenced (max 16)", len(words))
	}

	c := &compiled{nproc: len(prog), max: opts.MaxStates, locName: opts.LocName}
	if c.max <= 0 {
		c.max = defaultMaxStates
	}
	if c.locName == nil {
		c.locName = func(l Loc) string { return fmt.Sprintf("b%dw%d", l.Block, l.Word) }
	}
	blockIdx := map[int]int{}
	var blockIDs []int
	for id := range words {
		blockIDs = append(blockIDs, id)
	}
	sort.Ints(blockIDs)
	for _, id := range blockIDs {
		var ws []int
		for w := range words[id] {
			ws = append(ws, w)
		}
		sort.Ints(ws)
		if len(ws) > 8 {
			return nil, fmt.Errorf("bccheck: block %d has %d words (max 8)", id, len(ws))
		}
		blockIdx[id] = len(c.blocks)
		c.blocks = append(c.blocks, blockInfo{id: id, words: ws, base: c.nwords})
		c.nwords += len(ws)
	}
	wordIdx := func(l Loc) (blk, wi, wrd int) {
		blk = blockIdx[l.Block]
		b := &c.blocks[blk]
		wi = sort.SearchInts(b.words, l.Word)
		return blk, wi, b.base + wi
	}

	barIdx := map[int]int{}
	var barIDs []int
	for id := range bars {
		barIDs = append(barIDs, id)
	}
	sort.Ints(barIDs)
	for _, id := range barIDs {
		barIdx[id] = len(c.barName)
		c.barName = append(c.barName, id)
	}
	c.nbar = len(c.barName)

	c.init = make([]uint64, c.nwords)
	for l, v := range opts.Init {
		_, _, wrd := wordIdx(l)
		c.init[wrd] = v
	}
	for _, l := range opts.Observe {
		_, _, wrd := wordIdx(l)
		c.observe = append(c.observe, wrd)
	}

	// Lower and validate per processor: lock balance, no write under a read
	// lock, each barrier joined exactly once.
	for p, instrs := range prog {
		held := map[int]Op{} // compiled block -> lock op
		seen := map[int]int{}
		var low []cinstr
		for i, in := range instrs {
			ci := cinstr{op: in.Op, val: in.Val, loc: in.Loc}
			switch in.Op {
			case OpFlush:
			case OpBarrier:
				ci.blk = barIdx[in.Loc.Block]
				seen[ci.blk]++
			default:
				ci.blk, ci.wi, ci.wrd = wordIdx(in.Loc)
			}
			switch in.Op {
			case OpReadLock, OpWriteLock:
				if len(held) > 0 {
					return nil, fmt.Errorf("bccheck: P%d[%d]: nested lock acquisition (can deadlock)", p, i)
				}
				held[ci.blk] = in.Op
			case OpBarrier:
				if len(held) > 0 {
					return nil, fmt.Errorf("bccheck: P%d[%d]: barrier while holding a lock (can deadlock)", p, i)
				}
			case OpUnlock:
				if _, ok := held[ci.blk]; !ok {
					return nil, fmt.Errorf("bccheck: P%d[%d]: UNLOCK of block %d not held", p, i, in.Loc.Block)
				}
				delete(held, ci.blk)
			case OpWrite, OpWriteGlobal:
				if held[ci.blk] == OpReadLock {
					return nil, fmt.Errorf("bccheck: P%d[%d]: %v to block %d held under READ-LOCK", p, i, in.Op, in.Loc.Block)
				}
			}
			low = append(low, ci)
		}
		if len(held) > 0 {
			return nil, fmt.Errorf("bccheck: P%d ends holding %d lock(s)", p, len(held))
		}
		for b := 0; b < c.nbar; b++ {
			if seen[b] != 1 {
				return nil, fmt.Errorf("bccheck: P%d joins barrier %d %d times (want exactly 1)", p, c.barName[b], seen[b])
			}
		}
		c.prog = append(c.prog, low)
	}
	return c, nil
}

// Processor status.
const (
	stRun   uint8 = iota // executing; runnable if pc < len(prog)
	stLock               // waiting for a lock grant
	stFlush              // waiting for the write buffer to drain
	stBar                // waiting for a barrier release
)

type line struct {
	present bool
	update  bool
	vals    []uint64
	dirty   []bool
}

type bufent struct {
	blk, wi, wrd int
	val          uint64
}

type lockw struct {
	proc    int
	write   bool
	holding bool
}

type prop struct {
	dst, blk int
	vals     []uint64
}

type unsub struct {
	proc, blk int
}

type pstate struct {
	pc, stage int
	status    uint8
	regs      []uint64
	lines     []line // data cache, per block
	locklns   []line // lock cache, per block; present == holding
	buf       []bufent
}

type mstate struct {
	mem    []uint64
	procs  []pstate
	locks  [][]lockw // per block: FIFO grant queue
	subs   []uint32  // per block: subscriber bitmask (home's chain)
	props  []prop    // update propagations in flight
	unsubs []unsub   // unsubscriptions in flight
	bars   []uint32  // per barrier: arrived bitmask
}

func (c *compiled) initial() *mstate {
	s := &mstate{
		mem:   append([]uint64(nil), c.init...),
		procs: make([]pstate, c.nproc),
		locks: make([][]lockw, len(c.blocks)),
		subs:  make([]uint32, len(c.blocks)),
		bars:  make([]uint32, c.nbar),
	}
	for p := range s.procs {
		s.procs[p].lines = make([]line, len(c.blocks))
		s.procs[p].locklns = make([]line, len(c.blocks))
	}
	return s
}

func cloneLine(l line) line {
	return line{
		present: l.present,
		update:  l.update,
		vals:    append([]uint64(nil), l.vals...),
		dirty:   append([]bool(nil), l.dirty...),
	}
}

func (s *mstate) clone() *mstate {
	n := &mstate{
		mem:    append([]uint64(nil), s.mem...),
		procs:  make([]pstate, len(s.procs)),
		locks:  make([][]lockw, len(s.locks)),
		subs:   append([]uint32(nil), s.subs...),
		props:  make([]prop, len(s.props)),
		unsubs: append([]unsub(nil), s.unsubs...),
		bars:   append([]uint32(nil), s.bars...),
	}
	for i, q := range s.locks {
		n.locks[i] = append([]lockw(nil), q...)
	}
	for i, pr := range s.props {
		n.props[i] = prop{pr.dst, pr.blk, append([]uint64(nil), pr.vals...)}
	}
	for i := range s.procs {
		p := &s.procs[i]
		np := &n.procs[i]
		np.pc, np.stage, np.status = p.pc, p.stage, p.status
		np.regs = append([]uint64(nil), p.regs...)
		np.buf = append([]bufent(nil), p.buf...)
		np.lines = make([]line, len(p.lines))
		np.locklns = make([]line, len(p.locklns))
		for b := range p.lines {
			np.lines[b] = cloneLine(p.lines[b])
			np.locklns[b] = cloneLine(p.locklns[b])
		}
	}
	return n
}

// encode serializes a state into a memoization key. Message multisets are
// sorted so states differing only in bookkeeping order coincide.
func (c *compiled) encode(s *mstate) string {
	var b []byte
	u := func(v uint64) { b = binary.AppendUvarint(b, v) }
	for _, v := range s.mem {
		u(v)
	}
	for i := range s.procs {
		p := &s.procs[i]
		u(uint64(p.pc))
		u(uint64(p.stage))
		u(uint64(p.status))
		u(uint64(len(p.regs)))
		for _, v := range p.regs {
			u(v)
		}
		u(uint64(len(p.buf)))
		for _, e := range p.buf {
			u(uint64(e.wrd))
			u(e.val)
		}
		enc := func(l *line) {
			if !l.present {
				u(0)
				return
			}
			flags := uint64(1)
			if l.update {
				flags |= 2
			}
			u(flags)
			for i, v := range l.vals {
				u(v)
				if l.dirty[i] {
					u(1)
				} else {
					u(0)
				}
			}
		}
		for bi := range p.lines {
			enc(&p.lines[bi])
			enc(&p.locklns[bi])
		}
	}
	for _, q := range s.locks {
		u(uint64(len(q)))
		for _, w := range q {
			u(uint64(w.proc))
			if w.write {
				u(1)
			} else {
				u(0)
			}
			if w.holding {
				u(1)
			} else {
				u(0)
			}
		}
	}
	for _, m := range s.subs {
		u(uint64(m))
	}
	for _, m := range s.bars {
		u(uint64(m))
	}
	props := make([]string, len(s.props))
	for i, pr := range s.props {
		props[i] = fmt.Sprint(pr.dst, pr.blk, pr.vals)
	}
	sort.Strings(props)
	u(uint64(len(props)))
	for _, ps := range props {
		b = append(b, ps...)
	}
	us := make([]string, len(s.unsubs))
	for i, un := range s.unsubs {
		us[i] = fmt.Sprint(un.proc, un.blk)
	}
	sort.Strings(us)
	u(uint64(len(us)))
	for _, s := range us {
		b = append(b, s...)
	}
	return string(b)
}

type succ struct {
	label string
	next  *mstate
}

// installLine fills a data-cache line from memory (a read-miss fill: whole
// block, clean, unsubscribed).
func (c *compiled) installLine(s *mstate, p, blk int) {
	b := &c.blocks[blk]
	ln := &s.procs[p].lines[blk]
	ln.present = true
	ln.update = false
	ln.vals = append(ln.vals[:0], s.mem[b.base:b.base+len(b.words)]...)
	ln.dirty = make([]bool, len(b.words))
}

// refreshClean merges memory into the clean words of a present line (the
// per-word merge of installs and update propagations).
func (c *compiled) refreshClean(s *mstate, p, blk int) {
	b := &c.blocks[blk]
	ln := &s.procs[p].lines[blk]
	for i := range b.words {
		if !ln.dirty[i] {
			ln.vals[i] = s.mem[b.base+i]
		}
	}
}

// grant installs the lock line from current memory and resumes the waiter.
func (c *compiled) grant(s *mstate, p, blk int) {
	b := &c.blocks[blk]
	ll := &s.procs[p].locklns[blk]
	ll.present = true
	ll.vals = append(ll.vals[:0], s.mem[b.base:b.base+len(b.words)]...)
	ll.dirty = make([]bool, len(b.words))
	if s.procs[p].status == stLock {
		s.procs[p].status = stRun
		s.procs[p].pc++
	}
}

// release merges dirty lock-line words to memory, leaves the queue, and
// grants the next wave (a writer alone, or the run of readers at the head).
func (c *compiled) release(s *mstate, p, blk int) {
	b := &c.blocks[blk]
	ll := &s.procs[p].locklns[blk]
	for i := range b.words {
		if ll.dirty[i] {
			s.mem[b.base+i] = ll.vals[i]
		}
	}
	*ll = line{}
	q := s.locks[blk]
	for i, w := range q {
		if w.proc == p {
			q = append(q[:i], q[i+1:]...)
			break
		}
	}
	s.locks[blk] = q
	if len(q) == 0 || q[0].holding {
		return
	}
	headWrite := q[0].write
	for i := 0; i < len(q); i++ {
		if q[i].holding || (i > 0 && (headWrite || q[i].write)) {
			break
		}
		q[i].holding = true
		c.grant(s, q[i].proc, blk)
		if headWrite {
			break
		}
	}
}

// unblockFlush resumes a processor whose buffer just drained, advancing it
// past the flush (or into the release/arrive stage of UNLOCK/BARRIER).
func (c *compiled) unblockFlush(s *mstate, p int) {
	ps := &s.procs[p]
	if ps.status != stFlush || len(ps.buf) != 0 {
		return
	}
	ps.status = stRun
	switch c.prog[p][ps.pc].op {
	case OpFlush:
		ps.pc++
	case OpUnlock, OpBarrier:
		ps.stage = 1
	}
}

func (c *compiled) name(in cinstr) string { return c.locName(in.loc) }

// procSuccs returns the successor states from processor p taking its next
// architectural step.
func (c *compiled) procSuccs(s *mstate, p int) []succ {
	ps := &s.procs[p]
	in := c.prog[p][ps.pc]
	one := func(label string, n *mstate) []succ { return []succ{{label, n}} }
	switch in.op {
	case OpRead:
		n := s.clone()
		np := &n.procs[p]
		var v uint64
		src := "cache"
		if np.locklns[in.blk].present {
			v = np.locklns[in.blk].vals[in.wi]
			src = "lock line"
		} else {
			if !np.lines[in.blk].present {
				c.installLine(n, p, in.blk)
				src = "miss fill"
			}
			v = np.lines[in.blk].vals[in.wi]
		}
		np.regs = append(np.regs, v)
		np.pc++
		return one(fmt.Sprintf("P%d: READ %s = %d (%s)", p, c.name(in), v, src), n)

	case OpWrite:
		n := s.clone()
		np := &n.procs[p]
		tgt := "private"
		if np.locklns[in.blk].present {
			np.locklns[in.blk].vals[in.wi] = in.val
			np.locklns[in.blk].dirty[in.wi] = true
			tgt = "lock line"
		} else {
			if !np.lines[in.blk].present {
				c.installLine(n, p, in.blk)
			}
			np.lines[in.blk].vals[in.wi] = in.val
			np.lines[in.blk].dirty[in.wi] = true
		}
		np.pc++
		return one(fmt.Sprintf("P%d: WRITE %s = %d (%s)", p, c.name(in), in.val, tgt), n)

	case OpReadGlobal:
		n := s.clone()
		np := &n.procs[p]
		v := n.mem[in.wrd]
		np.regs = append(np.regs, v)
		np.pc++
		return one(fmt.Sprintf("P%d: READ-GLOBAL %s = %d", p, c.name(in), v), n)

	case OpWriteGlobal:
		n := s.clone()
		np := &n.procs[p]
		if np.locklns[in.blk].present {
			// Under a write lock the store goes to the lock line, not the
			// buffer (the concrete machine's WriteLocked path).
			np.locklns[in.blk].vals[in.wi] = in.val
			np.locklns[in.blk].dirty[in.wi] = true
			np.pc++
			return one(fmt.Sprintf("P%d: WRITE-GLOBAL %s = %d (lock line)", p, c.name(in), in.val), n)
		}
		if np.lines[in.blk].present {
			// Issue-time self-update of the local copy (dirty bits as-is).
			np.lines[in.blk].vals[in.wi] = in.val
		}
		np.buf = append(np.buf, bufent{in.blk, in.wi, in.wrd, in.val})
		np.pc++
		return one(fmt.Sprintf("P%d: WRITE-GLOBAL %s = %d (buffered)", p, c.name(in), in.val), n)

	case OpReadUpdate:
		ln := &ps.lines[in.blk]
		if ln.present && ln.update {
			n := s.clone()
			np := &n.procs[p]
			v := np.lines[in.blk].vals[in.wi]
			np.regs = append(np.regs, v)
			np.pc++
			return one(fmt.Sprintf("P%d: READ-UPDATE %s = %d (subscribed hit)", p, c.name(in), v), n)
		}
		subscribe := func(n *mstate) uint64 {
			np := &n.procs[p]
			n.subs[in.blk] |= 1 << uint(p)
			if np.lines[in.blk].present {
				c.refreshClean(n, p, in.blk)
			} else {
				c.installLine(n, p, in.blk)
			}
			np.lines[in.blk].update = true
			v := np.lines[in.blk].vals[in.wi]
			np.regs = append(np.regs, v)
			np.pc++
			return v
		}
		var out []succ
		n := s.clone()
		v := subscribe(n)
		out = append(out, succ{fmt.Sprintf("P%d: READ-UPDATE %s = %d (subscribe)", p, c.name(in), v), n})
		// A still-pending RESET-UPDATE may be processed before or after the
		// re-subscription; the late ordering silently cancels it.
		for i, un := range s.unsubs {
			if un.proc == p && un.blk == in.blk {
				n2 := s.clone()
				n2.unsubs = append(n2.unsubs[:i], n2.unsubs[i+1:]...)
				n2.subs[in.blk] &^= 1 << uint(p)
				v2 := subscribe(n2)
				out = append(out, succ{fmt.Sprintf("P%d: READ-UPDATE %s = %d (subscribe after pending reset)", p, c.name(in), v2), n2})
				break
			}
		}
		return out

	case OpResetUpdate:
		n := s.clone()
		np := &n.procs[p]
		label := fmt.Sprintf("P%d: RESET-UPDATE %s (no-op)", p, c.name(in))
		if np.lines[in.blk].present && np.lines[in.blk].update {
			np.lines[in.blk].update = false
			n.unsubs = append(n.unsubs, unsub{p, in.blk})
			label = fmt.Sprintf("P%d: RESET-UPDATE %s", p, c.name(in))
		}
		np.pc++
		return one(label, n)

	case OpFlush:
		n := s.clone()
		np := &n.procs[p]
		if len(np.buf) == 0 {
			np.pc++
			return one(fmt.Sprintf("P%d: FLUSH-BUFFER (empty)", p), n)
		}
		np.status = stFlush
		return one(fmt.Sprintf("P%d: FLUSH-BUFFER (stall, %d pending)", p, len(np.buf)), n)

	case OpReadLock, OpWriteLock:
		n := s.clone()
		np := &n.procs[p]
		write := in.op == OpWriteLock
		q := n.locks[in.blk]
		grantable := len(q) == 0
		if !grantable && !write {
			grantable = true
			for _, w := range q {
				if !w.holding || w.write {
					grantable = false
					break
				}
			}
		}
		q = append(q, lockw{proc: p, write: write, holding: grantable})
		n.locks[in.blk] = q
		if grantable {
			c.grant(n, p, in.blk)
			np.pc++ // grant() only advances stLock waiters
			return one(fmt.Sprintf("P%d: %v %s (granted)", p, in.op, c.name(in)), n)
		}
		np.status = stLock
		return one(fmt.Sprintf("P%d: %v %s (queued)", p, in.op, c.name(in)), n)

	case OpUnlock:
		n := s.clone()
		np := &n.procs[p]
		if ps.stage == 0 {
			if len(np.buf) > 0 {
				np.status = stFlush
				return one(fmt.Sprintf("P%d: UNLOCK %s (flushing first)", p, c.name(in)), n)
			}
			np.stage = 1
			return one(fmt.Sprintf("P%d: UNLOCK %s (buffer empty)", p, c.name(in)), n)
		}
		c.release(n, p, in.blk)
		np.pc++
		np.stage = 0
		return one(fmt.Sprintf("P%d: UNLOCK %s (released)", p, c.name(in)), n)

	case OpBarrier:
		n := s.clone()
		np := &n.procs[p]
		if ps.stage == 0 {
			if len(np.buf) > 0 {
				np.status = stFlush
				return one(fmt.Sprintf("P%d: BARRIER %d (flushing first)", p, c.barName[in.blk]), n)
			}
			np.stage = 1
			return one(fmt.Sprintf("P%d: BARRIER %d (buffer empty)", p, c.barName[in.blk]), n)
		}
		mask := n.bars[in.blk] | 1<<uint(p)
		if bits.OnesCount32(mask) == c.nproc {
			for q := 0; q < c.nproc; q++ {
				qs := &n.procs[q]
				qs.status = stRun
				qs.stage = 0
				qs.pc++
			}
			n.bars[in.blk] = 0
			return one(fmt.Sprintf("P%d: BARRIER %d (last arrival, release all)", p, c.barName[in.blk]), n)
		}
		n.bars[in.blk] = mask
		np.status = stBar
		return one(fmt.Sprintf("P%d: BARRIER %d (arrived, waiting)", p, c.barName[in.blk]), n)
	}
	panic("unreachable")
}

// successors enumerates every enabled transition: processor steps, buffered
// writes retiring at memory, update propagations delivering, and
// unsubscriptions taking effect.
func (c *compiled) successors(s *mstate) []succ {
	var out []succ
	for p := range s.procs {
		ps := &s.procs[p]
		if ps.status == stRun && ps.pc < len(c.prog[p]) {
			out = append(out, c.procSuccs(s, p)...)
		}
		if len(ps.buf) > 0 {
			n := s.clone()
			np := &n.procs[p]
			e := np.buf[0]
			np.buf = np.buf[1:]
			n.mem[e.wrd] = e.val
			b := &c.blocks[e.blk]
			if m := n.subs[e.blk]; m != 0 {
				snap := append([]uint64(nil), n.mem[b.base:b.base+len(b.words)]...)
				for q := 0; q < c.nproc; q++ {
					if m&(1<<uint(q)) != 0 {
						n.props = append(n.props, prop{q, e.blk, snap})
					}
				}
			}
			c.unblockFlush(n, p)
			out = append(out, succ{fmt.Sprintf("P%d's WRITE-GLOBAL %s = %d performs at memory", p, c.locName(Loc{b.id, b.words[e.wi]}), e.val), n})
		}
	}
	for i := range s.props {
		n := s.clone()
		pr := n.props[i]
		n.props = append(n.props[:i], n.props[i+1:]...)
		ln := &n.procs[pr.dst].lines[pr.blk]
		applied := "dropped, no copy"
		if ln.present {
			for wi := range pr.vals {
				if !ln.dirty[wi] {
					ln.vals[wi] = pr.vals[wi]
				}
			}
			applied = "applied"
		}
		out = append(out, succ{fmt.Sprintf("update for block %d reaches P%d (%s)", c.blocks[pr.blk].id, pr.dst, applied), n})
	}
	for i := range s.unsubs {
		n := s.clone()
		un := n.unsubs[i]
		n.unsubs = append(n.unsubs[:i], n.unsubs[i+1:]...)
		n.subs[un.blk] &^= 1 << uint(un.proc)
		out = append(out, succ{fmt.Sprintf("P%d's RESET-UPDATE for block %d reaches home", un.proc, c.blocks[un.blk].id), n})
	}
	return out
}

// quiescent reports whether the machine has finished cleanly: every
// processor past its last instruction, buffers drained, no messages in
// flight.
func (c *compiled) quiescent(s *mstate) bool {
	for p := range s.procs {
		ps := &s.procs[p]
		if ps.status != stRun || ps.pc < len(c.prog[p]) || len(ps.buf) > 0 {
			return false
		}
	}
	return len(s.props) == 0 && len(s.unsubs) == 0
}

func (c *compiled) outcome(s *mstate) Outcome {
	o := Outcome{Regs: make([][]uint64, c.nproc)}
	for p := range s.procs {
		o.Regs[p] = append([]uint64(nil), s.procs[p].regs...)
	}
	for _, wrd := range c.observe {
		o.Mem = append(o.Mem, s.mem[wrd])
	}
	return o
}

func (c *compiled) enumerate() (*Result, error) {
	visited := map[string]struct{}{}
	found := map[string]*Outcome{}
	var path []string
	states := 0
	var dfs func(s *mstate) error
	dfs = func(s *mstate) error {
		key := c.encode(s)
		if _, ok := visited[key]; ok {
			return nil
		}
		visited[key] = struct{}{}
		if states++; states > c.max {
			return ErrStateLimit
		}
		succs := c.successors(s)
		if len(succs) == 0 {
			if !c.quiescent(s) {
				return fmt.Errorf("bccheck: deadlock after: %s", strings.Join(path, "; "))
			}
			o := c.outcome(s)
			k := o.Key()
			if _, ok := found[k]; !ok {
				o.Witness = append([]string(nil), path...)
				found[k] = &o
			}
			return nil
		}
		for _, sc := range succs {
			path = append(path, sc.label)
			if err := dfs(sc.next); err != nil {
				return err
			}
			path = path[:len(path)-1]
		}
		return nil
	}
	if err := dfs(c.initial()); err != nil {
		return nil, err
	}
	res := &Result{States: states}
	for _, o := range found {
		res.Outcomes = append(res.Outcomes, *o)
	}
	sortOutcomes(res.Outcomes)
	return res, nil
}
