package bccheck

// The abstract BC machine: program compilation and the transition
// semantics. States are the flat pooled representation of state.go;
// successors are generated through an emit callback carrying a small
// structured step descriptor (sdesc) that is rendered to text only when
// a witness or deadlock report actually needs it.

import (
	"fmt"
	"math/bits"
	"sort"
)

const defaultMaxStates = 2_000_000

// compiled is a validated program with its location layout resolved: blocks
// are renumbered densely, each block's referenced words become a dense
// word-index list, and every data word gets a global index into the flat
// memory image.
type compiled struct {
	prog    [][]cinstr
	nproc   int
	blocks  []blockInfo
	nwords  int
	observe []int // global word indices
	init    []uint64
	nbar    int
	barName []int // compiled barrier index -> user barrier id
	max     int
	locName func(Loc) string
	tune    Tuning
	wit     bool
	mut     Mutation

	// Symmetry reduction (sym.go): the non-identity automorphisms of the
	// program system, plus user-id lookup tables for mapping report
	// labels back to original numbering. Empty when symmetry is off or
	// the group is trivial.
	syms    []symPerm
	blkByID map[int]int
	barByID map[int]int

	// Flat-state layout: per-proc segment offsets into mstate.regs/buf.
	regOff []int32
	regCap int
	bufOff []int32
	bufCap int

	// Partial-order-reduction lookahead masks, per proc, indexed by pc in
	// [0, len(prog[p])]: bit b is set iff some instruction at index >= pc
	// touches block b in the stated way. Blocks are capped at 16, so a
	// uint16 holds a block set. See por.go for how they are used.
	futMemNoWG   [][]uint16 // memory-observing ops other than WRITE-GLOBAL
	futWG        [][]uint16 // WRITE-GLOBAL
	futPlainRead [][]uint16 // plain READ
	futLineRead  [][]uint16 // ops that read the data cache line (READ, READ-UPDATE)
}

type blockInfo struct {
	id    int   // user block id
	words []int // user word ids, sorted
	base  int   // global index of words[0]
}

type cinstr struct {
	op  Op
	blk int // compiled block index; for OpBarrier, compiled barrier index
	wi  int // word index within block
	wrd int // global word index
	val uint64
	loc Loc // original, for labels
}

// compile lays out locations, lowers instructions, and validates.
func compile(prog Program, opts Options) (*compiled, error) {
	if len(prog) < 1 || len(prog) > 8 {
		return nil, fmt.Errorf("bccheck: need 1-8 processors, got %d", len(prog))
	}
	words := map[int]map[int]bool{} // block -> word set
	bars := map[int]bool{}
	note := func(l Loc) {
		if words[l.Block] == nil {
			words[l.Block] = map[int]bool{}
		}
		words[l.Block][l.Word] = true
	}
	for p, instrs := range prog {
		if len(instrs) > 64 {
			return nil, fmt.Errorf("bccheck: P%d has %d instructions (max 64)", p, len(instrs))
		}
		for _, in := range instrs {
			switch in.Op {
			case OpFlush:
			case OpBarrier:
				bars[in.Loc.Block] = true
			case OpRead, OpWrite, OpReadGlobal, OpWriteGlobal,
				OpReadUpdate, OpResetUpdate, OpReadLock, OpWriteLock, OpUnlock:
				if in.Loc.Block < 0 || in.Loc.Word < 0 {
					return nil, fmt.Errorf("bccheck: P%d: negative location %+v", p, in.Loc)
				}
				note(in.Loc)
			default:
				return nil, fmt.Errorf("bccheck: P%d: unknown op %d", p, in.Op)
			}
		}
	}
	for _, l := range opts.Observe {
		note(l)
	}
	for l := range opts.Init {
		note(l)
	}
	if len(words) > 16 {
		return nil, fmt.Errorf("bccheck: %d blocks referenced (max 16)", len(words))
	}

	if opts.Mutate >= mutCount {
		return nil, fmt.Errorf("bccheck: unknown mutation %d", opts.Mutate)
	}
	c := &compiled{
		nproc:   len(prog),
		max:     opts.MaxStates,
		locName: opts.LocName,
		tune:    opts.Tuning,
		wit:     opts.Witnesses,
		mut:     opts.Mutate,
	}
	if c.mut != MutNone {
		// Mutated semantics invalidate the POR commutation argument and
		// the automorphism group; explore the full graph.
		c.tune.DisablePOR = true
		c.tune.DisableSymmetry = true
	}
	if c.max <= 0 {
		c.max = defaultMaxStates
	}
	if c.locName == nil {
		c.locName = func(l Loc) string { return fmt.Sprintf("b%dw%d", l.Block, l.Word) }
	}
	blockIdx := map[int]int{}
	var blockIDs []int
	for id := range words {
		blockIDs = append(blockIDs, id)
	}
	sort.Ints(blockIDs)
	for _, id := range blockIDs {
		var ws []int
		for w := range words[id] {
			ws = append(ws, w)
		}
		sort.Ints(ws)
		if len(ws) > 8 {
			return nil, fmt.Errorf("bccheck: block %d has %d words (max 8)", id, len(ws))
		}
		blockIdx[id] = len(c.blocks)
		c.blocks = append(c.blocks, blockInfo{id: id, words: ws, base: c.nwords})
		c.nwords += len(ws)
	}
	wordIdx := func(l Loc) (blk, wi, wrd int) {
		blk = blockIdx[l.Block]
		b := &c.blocks[blk]
		wi = sort.SearchInts(b.words, l.Word)
		return blk, wi, b.base + wi
	}

	barIdx := map[int]int{}
	var barIDs []int
	for id := range bars {
		barIDs = append(barIDs, id)
	}
	sort.Ints(barIDs)
	for _, id := range barIDs {
		barIdx[id] = len(c.barName)
		c.barName = append(c.barName, id)
	}
	c.nbar = len(c.barName)

	c.init = make([]uint64, c.nwords)
	for l, v := range opts.Init {
		_, _, wrd := wordIdx(l)
		c.init[wrd] = v
	}
	for _, l := range opts.Observe {
		_, _, wrd := wordIdx(l)
		c.observe = append(c.observe, wrd)
	}

	// Lower and validate per processor: lock balance, no write under a read
	// lock, each barrier joined exactly once.
	for p, instrs := range prog {
		held := map[int]Op{} // compiled block -> lock op
		seen := map[int]int{}
		var low []cinstr
		for i, in := range instrs {
			ci := cinstr{op: in.Op, val: in.Val, loc: in.Loc}
			switch in.Op {
			case OpFlush:
			case OpBarrier:
				ci.blk = barIdx[in.Loc.Block]
				seen[ci.blk]++
			default:
				ci.blk, ci.wi, ci.wrd = wordIdx(in.Loc)
			}
			switch in.Op {
			case OpReadLock, OpWriteLock:
				if len(held) > 0 {
					return nil, fmt.Errorf("bccheck: P%d[%d]: nested lock acquisition (can deadlock)", p, i)
				}
				held[ci.blk] = in.Op
			case OpBarrier:
				if len(held) > 0 {
					return nil, fmt.Errorf("bccheck: P%d[%d]: barrier while holding a lock (can deadlock)", p, i)
				}
			case OpUnlock:
				if _, ok := held[ci.blk]; !ok {
					return nil, fmt.Errorf("bccheck: P%d[%d]: UNLOCK of block %d not held", p, i, in.Loc.Block)
				}
				delete(held, ci.blk)
			case OpWrite, OpWriteGlobal:
				if held[ci.blk] == OpReadLock {
					return nil, fmt.Errorf("bccheck: P%d[%d]: %v to block %d held under READ-LOCK", p, i, in.Op, in.Loc.Block)
				}
			}
			low = append(low, ci)
		}
		if len(held) > 0 {
			return nil, fmt.Errorf("bccheck: P%d ends holding %d lock(s)", p, len(held))
		}
		for b := 0; b < c.nbar; b++ {
			if seen[b] != 1 {
				return nil, fmt.Errorf("bccheck: P%d joins barrier %d %d times (want exactly 1)", p, c.barName[b], seen[b])
			}
		}
		c.prog = append(c.prog, low)
	}

	c.layout()
	c.computeMasks()
	// Witness labels are rendered in the numbering of the explored
	// states, so witness mode keeps the identity numbering by skipping
	// symmetry entirely (it already forces the serial engine).
	if !c.wit && !c.tune.DisableSymmetry {
		c.computeSyms()
	}
	return c, nil
}

// layout sizes the flat register and buffer arenas: a proc reads at most
// once per reading instruction and buffers at most once per WRITE-GLOBAL,
// so fixed per-proc segments hold any execution.
func (c *compiled) layout() {
	c.regOff = make([]int32, c.nproc)
	c.bufOff = make([]int32, c.nproc)
	for p, instrs := range c.prog {
		c.regOff[p] = int32(c.regCap)
		c.bufOff[p] = int32(c.bufCap)
		for _, in := range instrs {
			if in.op.Reads() {
				c.regCap++
			}
			if in.op == OpWriteGlobal {
				c.bufCap++
			}
		}
	}
}

// installLine fills a cache line from memory (whole block, clean; for the
// data cache this is a read-miss fill, for the lock cache a grant).
func (c *compiled) installLine(s *mstate, p, kind, blk int) {
	b := &c.blocks[blk]
	i := c.li(p, kind, blk)
	s.lineF[i] = lfPresent
	s.lineD[i] = 0
	v0 := c.lv(p, kind, blk)
	copy(s.lineV[v0:v0+len(b.words)], s.mem[b.base:b.base+len(b.words)])
}

// refreshClean merges memory into the clean words of a present data line
// (the per-word merge of installs and update propagations).
func (c *compiled) refreshClean(s *mstate, p, blk int) {
	b := &c.blocks[blk]
	d := s.lineD[c.li(p, 0, blk)]
	v0 := c.lv(p, 0, blk)
	for i := range b.words {
		if d&(1<<uint(i)) == 0 {
			s.lineV[v0+i] = s.mem[b.base+i]
		}
	}
}

// grant installs the lock line from current memory and resumes the waiter.
func (c *compiled) grant(s *mstate, p, blk int) {
	c.installLine(s, p, 1, blk)
	if c.mut == MutNPSynch {
		// Strengthened NP-Synch: acquisition acts as a synch point,
		// refreshing every present data line's clean words from memory.
		for b := range c.blocks {
			if s.lineF[c.li(p, 0, b)]&lfPresent != 0 {
				c.refreshClean(s, p, b)
			}
		}
	}
	ps := &s.procs[p]
	if ps.status == stLock {
		ps.status = stRun
		ps.pc++
	}
}

// release merges dirty lock-line words to memory, leaves the queue, and
// grants the next wave (a writer alone, or the run of readers at the head).
func (c *compiled) release(s *mstate, p, blk int) {
	b := &c.blocks[blk]
	i := c.li(p, 1, blk)
	d := s.lineD[i]
	v0 := c.lv(p, 1, blk)
	if c.mut != MutLockData {
		for wi := range b.words {
			if d&(1<<uint(wi)) != 0 {
				s.mem[b.base+wi] = s.lineV[v0+wi]
			}
		}
	}
	s.lineF[i] = 0
	s.lineD[i] = 0
	q0 := blk * c.nproc
	qn := int(s.lockN[blk])
	for j := 0; j < qn; j++ {
		if int(s.lockQ[q0+j]&lqProc) == p {
			copy(s.lockQ[q0+j:q0+qn-1], s.lockQ[q0+j+1:q0+qn])
			qn--
			break
		}
	}
	s.lockN[blk] = uint8(qn)
	if qn == 0 || s.lockQ[q0]&lqHold != 0 {
		return
	}
	headWrite := s.lockQ[q0]&lqWrite != 0
	for j := 0; j < qn; j++ {
		e := s.lockQ[q0+j]
		if e&lqHold != 0 || (j > 0 && (headWrite || e&lqWrite != 0)) {
			break
		}
		s.lockQ[q0+j] = e | lqHold
		c.grant(s, int(e&lqProc), blk)
		if headWrite {
			break
		}
	}
}

// unblockFlush resumes a processor whose buffer just drained, advancing it
// past the flush (or into the release/arrive stage of UNLOCK/BARRIER).
func (c *compiled) unblockFlush(s *mstate, p int) {
	ps := &s.procs[p]
	if ps.status != stFlush || ps.bufLo != ps.bufHi {
		return
	}
	ps.status = stRun
	switch c.prog[p][ps.pc].op {
	case OpFlush:
		ps.pc++
	case OpUnlock, OpBarrier:
		ps.stage = 1
	}
}

func (c *compiled) pushReg(s *mstate, p int, v uint64) {
	ps := &s.procs[p]
	s.regs[int(c.regOff[p])+int(ps.nregs)] = v
	ps.nregs++
}

// Step descriptors: enough structure to render the old engine's witness
// labels on demand.
const (
	sdProc uint8 = iota
	sdRetire
	sdProp
	sdUnsub
)

const (
	vCache uint8 = iota
	vLockLine
	vMissFill
	vPrivate
	vBuffered
	vSubHit
	vSubscribe
	vSubAfterReset
	vNoop
	vReset
	vEmpty
	vStall
	vGranted
	vQueued
	vFlushFirst
	vBufEmpty
	vReleased
	vLastArrival
	vWaiting
	vApplied
	vDropped
)

type sdesc struct {
	kind    uint8
	variant uint8
	proc    int8
	op      Op
	loc     Loc
	val     uint64
	aux     int32 // stall depth, or prop/unsub user block id
}

// render turns a descriptor into the human-readable step label.
func (c *compiled) render(d *sdesc) string {
	switch d.kind {
	case sdRetire:
		return fmt.Sprintf("P%d's WRITE-GLOBAL %s = %d performs at memory", d.proc, c.locName(d.loc), d.val)
	case sdProp:
		how := "applied"
		if d.variant == vDropped {
			how = "dropped, no copy"
		}
		return fmt.Sprintf("update for block %d reaches P%d (%s)", d.aux, d.proc, how)
	case sdUnsub:
		return fmt.Sprintf("P%d's RESET-UPDATE for block %d reaches home", d.proc, d.aux)
	}
	name := c.locName(d.loc)
	switch d.op {
	case OpRead:
		src := map[uint8]string{vCache: "cache", vLockLine: "lock line", vMissFill: "miss fill"}[d.variant]
		return fmt.Sprintf("P%d: READ %s = %d (%s)", d.proc, name, d.val, src)
	case OpWrite:
		tgt := "private"
		if d.variant == vLockLine {
			tgt = "lock line"
		}
		return fmt.Sprintf("P%d: WRITE %s = %d (%s)", d.proc, name, d.val, tgt)
	case OpReadGlobal:
		return fmt.Sprintf("P%d: READ-GLOBAL %s = %d", d.proc, name, d.val)
	case OpWriteGlobal:
		how := "buffered"
		if d.variant == vLockLine {
			how = "lock line"
		}
		return fmt.Sprintf("P%d: WRITE-GLOBAL %s = %d (%s)", d.proc, name, d.val, how)
	case OpReadUpdate:
		how := map[uint8]string{vSubHit: "subscribed hit", vSubscribe: "subscribe", vSubAfterReset: "subscribe after pending reset"}[d.variant]
		return fmt.Sprintf("P%d: READ-UPDATE %s = %d (%s)", d.proc, name, d.val, how)
	case OpResetUpdate:
		if d.variant == vNoop {
			return fmt.Sprintf("P%d: RESET-UPDATE %s (no-op)", d.proc, name)
		}
		return fmt.Sprintf("P%d: RESET-UPDATE %s", d.proc, name)
	case OpFlush:
		if d.variant == vEmpty {
			return fmt.Sprintf("P%d: FLUSH-BUFFER (empty)", d.proc)
		}
		return fmt.Sprintf("P%d: FLUSH-BUFFER (stall, %d pending)", d.proc, d.aux)
	case OpReadLock, OpWriteLock:
		how := "granted"
		if d.variant == vQueued {
			how = "queued"
		}
		return fmt.Sprintf("P%d: %v %s (%s)", d.proc, d.op, name, how)
	case OpUnlock:
		how := map[uint8]string{vFlushFirst: "flushing first", vBufEmpty: "buffer empty", vReleased: "released"}[d.variant]
		return fmt.Sprintf("P%d: UNLOCK %s (%s)", d.proc, name, how)
	case OpBarrier:
		how := map[uint8]string{vFlushFirst: "flushing first", vBufEmpty: "buffer empty", vLastArrival: "last arrival, release all", vWaiting: "arrived, waiting"}[d.variant]
		return fmt.Sprintf("P%d: BARRIER %d (%s)", d.proc, d.loc.Block, how)
	}
	return fmt.Sprintf("P%d: %v", d.proc, d.op)
}

type emitFn func(d sdesc, n *mstate)

// subscribeRU performs READ-UPDATE's subscribe action on a clone: join the
// home chain, fold memory into the line's clean words (or fill it), mark
// it update-mode, and read.
func (c *compiled) subscribeRU(n *mstate, p int, in *cinstr) uint64 {
	n.subs[in.blk] |= 1 << uint(p)
	i := c.li(p, 0, in.blk)
	if n.lineF[i]&lfPresent != 0 {
		if c.mut != MutFresh {
			c.refreshClean(n, p, in.blk)
		}
	} else {
		c.installLine(n, p, 0, in.blk)
	}
	n.lineF[i] |= lfUpdate
	v := n.lineV[c.lv(p, 0, in.blk)+in.wi]
	c.pushReg(n, p, v)
	n.procs[p].pc++
	return v
}

// procStep emits the successor state(s) of processor p taking its next
// architectural step.
func (c *compiled) procStep(w *worker, s *mstate, p int, emit emitFn) {
	ps := &s.procs[p]
	in := &c.prog[p][ps.pc]
	p8 := int8(p)
	switch in.op {
	case OpRead:
		n := w.clone(s)
		var v uint64
		variant := vCache
		if n.lineF[c.li(p, 1, in.blk)]&lfPresent != 0 {
			v = n.lineV[c.lv(p, 1, in.blk)+in.wi]
			variant = vLockLine
		} else {
			if n.lineF[c.li(p, 0, in.blk)]&lfPresent == 0 {
				c.installLine(n, p, 0, in.blk)
				variant = vMissFill
			}
			v = n.lineV[c.lv(p, 0, in.blk)+in.wi]
		}
		c.pushReg(n, p, v)
		n.procs[p].pc++
		emit(sdesc{kind: sdProc, proc: p8, op: OpRead, variant: variant, loc: in.loc, val: v}, n)

	case OpWrite:
		n := w.clone(s)
		variant := vPrivate
		kind := 0
		if n.lineF[c.li(p, 1, in.blk)]&lfPresent != 0 {
			kind = 1
			variant = vLockLine
		} else if n.lineF[c.li(p, 0, in.blk)]&lfPresent == 0 {
			c.installLine(n, p, 0, in.blk)
		}
		n.lineV[c.lv(p, kind, in.blk)+in.wi] = in.val
		n.lineD[c.li(p, kind, in.blk)] |= 1 << uint(in.wi)
		n.procs[p].pc++
		emit(sdesc{kind: sdProc, proc: p8, op: OpWrite, variant: variant, loc: in.loc, val: in.val}, n)

	case OpReadGlobal:
		n := w.clone(s)
		v := n.mem[in.wrd]
		c.pushReg(n, p, v)
		n.procs[p].pc++
		emit(sdesc{kind: sdProc, proc: p8, op: OpReadGlobal, loc: in.loc, val: v}, n)

	case OpWriteGlobal:
		n := w.clone(s)
		np := &n.procs[p]
		if n.lineF[c.li(p, 1, in.blk)]&lfPresent != 0 {
			// Under a write lock the store goes to the lock line, not the
			// buffer (the concrete machine's WriteLocked path).
			n.lineV[c.lv(p, 1, in.blk)+in.wi] = in.val
			n.lineD[c.li(p, 1, in.blk)] |= 1 << uint(in.wi)
			np.pc++
			emit(sdesc{kind: sdProc, proc: p8, op: OpWriteGlobal, variant: vLockLine, loc: in.loc, val: in.val}, n)
			return
		}
		if n.lineF[c.li(p, 0, in.blk)]&lfPresent != 0 {
			// Issue-time self-update of the local copy (dirty bits as-is).
			n.lineV[c.lv(p, 0, in.blk)+in.wi] = in.val
		}
		n.buf[int(c.bufOff[p])+int(np.bufHi)] = bufent{val: in.val, wrd: int16(in.wrd), blk: int8(in.blk), wi: int8(in.wi)}
		np.bufHi++
		np.pc++
		emit(sdesc{kind: sdProc, proc: p8, op: OpWriteGlobal, variant: vBuffered, loc: in.loc, val: in.val}, n)

	case OpReadUpdate:
		if f := s.lineF[c.li(p, 0, in.blk)]; f&lfPresent != 0 && f&lfUpdate != 0 {
			n := w.clone(s)
			v := n.lineV[c.lv(p, 0, in.blk)+in.wi]
			c.pushReg(n, p, v)
			n.procs[p].pc++
			emit(sdesc{kind: sdProc, proc: p8, op: OpReadUpdate, variant: vSubHit, loc: in.loc, val: v}, n)
			return
		}
		n := w.clone(s)
		v := c.subscribeRU(n, p, in)
		emit(sdesc{kind: sdProc, proc: p8, op: OpReadUpdate, variant: vSubscribe, loc: in.loc, val: v}, n)
		// A still-pending RESET-UPDATE may be processed before or after the
		// re-subscription; the late ordering silently cancels it.
		for i, un := range s.unsub {
			if int(un.proc) == p && int(un.blk) == in.blk {
				n2 := w.clone(s)
				n2.unsub = append(n2.unsub[:i], n2.unsub[i+1:]...)
				n2.subs[in.blk] &^= 1 << uint(p)
				v2 := c.subscribeRU(n2, p, in)
				emit(sdesc{kind: sdProc, proc: p8, op: OpReadUpdate, variant: vSubAfterReset, loc: in.loc, val: v2}, n2)
				break
			}
		}

	case OpResetUpdate:
		n := w.clone(s)
		variant := vNoop
		i := c.li(p, 0, in.blk)
		if f := n.lineF[i]; f&lfPresent != 0 && f&lfUpdate != 0 {
			n.lineF[i] &^= lfUpdate
			n.unsub = append(n.unsub, unsubm{proc: p8, blk: int8(in.blk)})
			variant = vReset
		}
		n.procs[p].pc++
		emit(sdesc{kind: sdProc, proc: p8, op: OpResetUpdate, variant: variant, loc: in.loc}, n)

	case OpFlush:
		n := w.clone(s)
		np := &n.procs[p]
		if np.bufLo == np.bufHi || c.mut == MutCPSynch {
			np.pc++
			emit(sdesc{kind: sdProc, proc: p8, op: OpFlush, variant: vEmpty}, n)
			return
		}
		np.status = stFlush
		emit(sdesc{kind: sdProc, proc: p8, op: OpFlush, variant: vStall, aux: int32(np.bufHi - np.bufLo)}, n)

	case OpReadLock, OpWriteLock:
		n := w.clone(s)
		if c.mut == MutNPSynch && ps.stage == 0 && ps.bufLo != ps.bufHi {
			// Strengthened NP-Synch: acquisition drains the buffer first,
			// like a CP-Synch point. The drained proc re-executes the
			// acquire (unblockFlush only resets status for lock ops).
			n.procs[p].status = stFlush
			emit(sdesc{kind: sdProc, proc: p8, op: in.op, variant: vQueued, loc: in.loc}, n)
			return
		}
		write := in.op == OpWriteLock
		q0 := in.blk * c.nproc
		qn := int(n.lockN[in.blk])
		grantable := qn == 0
		if !grantable && !write {
			grantable = true
			for j := 0; j < qn; j++ {
				if e := n.lockQ[q0+j]; e&lqHold == 0 || e&lqWrite != 0 {
					grantable = false
					break
				}
			}
		}
		e := uint8(p)
		if write {
			e |= lqWrite
		}
		if grantable {
			e |= lqHold
		}
		n.lockQ[q0+qn] = e
		n.lockN[in.blk]++
		if grantable {
			c.grant(n, p, in.blk)
			n.procs[p].pc++ // grant() only advances stLock waiters
			emit(sdesc{kind: sdProc, proc: p8, op: in.op, variant: vGranted, loc: in.loc}, n)
			return
		}
		n.procs[p].status = stLock
		emit(sdesc{kind: sdProc, proc: p8, op: in.op, variant: vQueued, loc: in.loc}, n)

	case OpUnlock:
		n := w.clone(s)
		np := &n.procs[p]
		if ps.stage == 0 {
			if np.bufLo != np.bufHi && c.mut != MutCPSynch {
				np.status = stFlush
				emit(sdesc{kind: sdProc, proc: p8, op: OpUnlock, variant: vFlushFirst, loc: in.loc}, n)
				return
			}
			np.stage = 1
			emit(sdesc{kind: sdProc, proc: p8, op: OpUnlock, variant: vBufEmpty, loc: in.loc}, n)
			return
		}
		c.release(n, p, in.blk)
		np.pc++
		np.stage = 0
		emit(sdesc{kind: sdProc, proc: p8, op: OpUnlock, variant: vReleased, loc: in.loc}, n)

	case OpBarrier:
		n := w.clone(s)
		np := &n.procs[p]
		if ps.stage == 0 {
			if np.bufLo != np.bufHi && c.mut != MutCPSynch {
				np.status = stFlush
				emit(sdesc{kind: sdProc, proc: p8, op: OpBarrier, variant: vFlushFirst, loc: in.loc}, n)
				return
			}
			np.stage = 1
			emit(sdesc{kind: sdProc, proc: p8, op: OpBarrier, variant: vBufEmpty, loc: in.loc}, n)
			return
		}
		if c.mut == MutBarrier {
			// No rendezvous: the arriving processor continues alone.
			np.stage = 0
			np.pc++
			emit(sdesc{kind: sdProc, proc: p8, op: OpBarrier, variant: vLastArrival, loc: in.loc}, n)
			return
		}
		mask := n.bars[in.blk] | 1<<uint(p)
		if bits.OnesCount8(mask) == c.nproc {
			for q := 0; q < c.nproc; q++ {
				qs := &n.procs[q]
				qs.status = stRun
				qs.stage = 0
				qs.pc++
			}
			n.bars[in.blk] = 0
			emit(sdesc{kind: sdProc, proc: p8, op: OpBarrier, variant: vLastArrival, loc: in.loc}, n)
			return
		}
		n.bars[in.blk] = mask
		np.status = stBar
		emit(sdesc{kind: sdProc, proc: p8, op: OpBarrier, variant: vWaiting, loc: in.loc}, n)
	}
}

// retireStep emits the state where p's oldest buffered write performs at
// memory, generating update propagations to the block's subscribers.
func (c *compiled) retireStep(w *worker, s *mstate, p int, emit emitFn) {
	c.retireStepAt(w, s, p, int(s.procs[p].bufLo), emit)
}

// retireStepAt retires the buffered entry at window index j: the head in
// the real model, any live entry under MutFIFO.
func (c *compiled) retireStepAt(w *worker, s *mstate, p, j int, emit emitFn) {
	off := int(c.bufOff[p])
	e := s.buf[off+j]
	n := w.clone(s)
	np := &n.procs[p]
	if j == int(np.bufLo) {
		np.bufLo++
	} else {
		copy(n.buf[off+j:off+int(np.bufHi)-1], n.buf[off+j+1:off+int(np.bufHi)])
		np.bufHi--
	}
	n.mem[e.wrd] = e.val
	b := &c.blocks[e.blk]
	if m := n.subs[e.blk]; m != 0 && c.mut != MutFresh {
		var pr propm
		pr.blk = e.blk
		pr.n = int8(len(b.words))
		copy(pr.vals[:len(b.words)], n.mem[b.base:b.base+len(b.words)])
		for q := 0; q < c.nproc; q++ {
			if m&(1<<uint(q)) != 0 {
				pr.dst = int8(q)
				n.props = append(n.props, pr)
			}
		}
	}
	c.unblockFlush(n, p)
	emit(sdesc{kind: sdRetire, proc: int8(p), loc: Loc{Block: b.id, Word: b.words[e.wi]}, val: e.val}, n)
}

// propStep emits the state where in-flight propagation i is delivered:
// its snapshot merges into the clean words of the destination's line if
// present, and is dropped otherwise.
func (c *compiled) propStep(w *worker, s *mstate, i int, emit emitFn) {
	pr := s.props[i]
	n := w.clone(s)
	n.props = append(n.props[:i], n.props[i+1:]...)
	li := c.li(int(pr.dst), 0, int(pr.blk))
	variant := vDropped
	if n.lineF[li]&lfPresent != 0 {
		d := n.lineD[li]
		v0 := c.lv(int(pr.dst), 0, int(pr.blk))
		for wi := 0; wi < int(pr.n); wi++ {
			if d&(1<<uint(wi)) == 0 || c.mut == MutCoherence {
				n.lineV[v0+wi] = pr.vals[wi]
			}
		}
		variant = vApplied
	}
	emit(sdesc{kind: sdProp, proc: pr.dst, variant: variant, aux: int32(c.blocks[pr.blk].id)}, n)
}

// unsubStep emits the state where in-flight unsubscription i reaches the
// home node and clears the subscriber bit.
func (c *compiled) unsubStep(w *worker, s *mstate, i int, emit emitFn) {
	un := s.unsub[i]
	n := w.clone(s)
	n.unsub = append(n.unsub[:i], n.unsub[i+1:]...)
	n.subs[un.blk] &^= 1 << uint(un.proc)
	emit(sdesc{kind: sdUnsub, proc: un.proc, aux: int32(c.blocks[un.blk].id)}, n)
}

// expand emits every enabled transition of s in canonical order:
// processor steps and buffer retires interleaved per proc, then
// propagation deliveries, then unsubscriptions.
func (c *compiled) expand(w *worker, s *mstate, emit emitFn) {
	for p := 0; p < c.nproc; p++ {
		ps := &s.procs[p]
		if ps.status == stRun && int(ps.pc) < len(c.prog[p]) {
			c.procStep(w, s, p, emit)
		}
		if ps.bufLo != ps.bufHi {
			if c.mut == MutFIFO {
				for j := int(ps.bufLo); j < int(ps.bufHi); j++ {
					c.retireStepAt(w, s, p, j, emit)
				}
			} else {
				c.retireStep(w, s, p, emit)
			}
		}
	}
	for i := range s.props {
		c.propStep(w, s, i, emit)
	}
	for i := range s.unsub {
		c.unsubStep(w, s, i, emit)
	}
}

// enabledCount counts the transitions expand would emit, without cloning.
// Used for POR's Pruned accounting.
func (c *compiled) enabledCount(s *mstate) int {
	n := len(s.props) + len(s.unsub)
	for p := 0; p < c.nproc; p++ {
		ps := &s.procs[p]
		if ps.bufLo != ps.bufHi {
			n++
		}
		if ps.status == stRun && int(ps.pc) < len(c.prog[p]) {
			n++
			in := &c.prog[p][ps.pc]
			if in.op == OpReadUpdate {
				if f := s.lineF[c.li(p, 0, in.blk)]; f&lfPresent == 0 || f&lfUpdate == 0 {
					for _, un := range s.unsub {
						if int(un.proc) == p && int(un.blk) == in.blk {
							n++
							break
						}
					}
				}
			}
		}
	}
	return n
}
