package bccheck

// Partial-order reduction.
//
// The exploration graph interleaves three kinds of "background"
// transitions — buffered writes retiring at memory, update propagations
// delivering, unsubscriptions reaching home — with processor steps. Most
// of those interleavings are equivalent: the transitions commute and
// their relative order is invisible in any outcome. When a state has
// such an invisible transition, the engine explores *only* it (a
// singleton ample set) and prunes the siblings.
//
// Soundness here means outcome-set preservation, not state-graph
// preservation: Enumerate answers "which terminal register/memory
// valuations are reachable", so the reduced graph must reach exactly the
// same outcome set (and the same deadlocks). Three facts carry the
// argument:
//
//  1. The graph is acyclic — every transition strictly decreases the
//     progress measure (remaining instructions + buffered writes +
//     in-flight messages), so no cycle/ignoring condition is needed.
//  2. Reduced paths are a subset of full paths, so the reduction can
//     never invent an outcome.
//  3. Each ample transition below commutes with every other enabled
//     transition and its effect is invisible to all future observations,
//     so any full path can be reordered to take the ample transition
//     first without changing its outcome — the reduction loses nothing.
//     Two load-bearing model invariants: data-cache lines are never
//     evicted (present stays present, so a proc whose line holds a block
//     never touches memory for it again), and in-flight deliveries may
//     be deferred arbitrarily (so "the prop exists earlier" never forces
//     an observation that the unreduced order could avoid).
//  4. Deadlocks are preserved: a stuck state has no retire/prop/unsub
//     pending (those are always enabled), and lock/barrier wait cycles
//     are unaffected by their timing.
//
// The per-transition conditions consult compile-time lookahead masks:
// futX[p][pc] has bit b set iff P's instructions at index >= pc touch
// block b in way X. A stalled or mid-instruction proc indexes at its
// current pc, so the current instruction is always included.

// computeMasks builds the lookahead masks from the lowered program.
func (c *compiled) computeMasks() {
	c.futMemNoWG = make([][]uint16, c.nproc)
	c.futWG = make([][]uint16, c.nproc)
	c.futPlainRead = make([][]uint16, c.nproc)
	c.futLineRead = make([][]uint16, c.nproc)
	for p, instrs := range c.prog {
		n := len(instrs)
		mem := make([]uint16, n+1)
		wg := make([]uint16, n+1)
		pr := make([]uint16, n+1)
		lr := make([]uint16, n+1)
		for i := n - 1; i >= 0; i-- {
			mem[i], wg[i], pr[i], lr[i] = mem[i+1], wg[i+1], pr[i+1], lr[i+1]
			in := &instrs[i]
			if in.op == OpFlush || in.op == OpBarrier {
				continue
			}
			bit := uint16(1) << uint(in.blk)
			switch in.op {
			case OpReadGlobal, OpReadUpdate, OpReadLock, OpWriteLock, OpUnlock:
				mem[i] |= bit
			case OpWriteGlobal:
				wg[i] |= bit
			}
			switch in.op {
			case OpRead:
				pr[i] |= bit
				lr[i] |= bit
			case OpReadUpdate:
				lr[i] |= bit
			}
		}
		c.futMemNoWG[p] = mem
		c.futWG[p] = wg
		c.futPlainRead[p] = pr
		c.futLineRead[p] = lr
	}
}

// Ample-transition kinds, in scan order.
const (
	ampUnsub uint8 = iota
	ampProp
	ampRetire
)

// ample returns the first invisible-tail transition of s, if any. The
// scan order is a fixed function of the state, so the reduced graph is a
// deterministic subgraph — serial and parallel exploration agree on it.
func (c *compiled) ample(s *mstate) (kind uint8, idx int, ok bool) {
	// An unsubscription delivery only clears a subscriber bit; that is
	// visible solely through the destination's future line reads (the
	// READ-UPDATE cancel branch, or line content via suppressed props —
	// and a suppressed prop matters only if the line is read again).
	for i, un := range s.unsub {
		if c.futLineRead[un.proc][s.procs[un.proc].pc]&(1<<uint(un.blk)) == 0 {
			return ampUnsub, i, true
		}
	}
	// A propagation delivery only rewrites clean words of the (private)
	// destination line; if the destination never reads that line again,
	// the delivery commutes with everything and observes nothing.
	for i := range s.props {
		pr := &s.props[i]
		if c.futLineRead[pr.dst][s.procs[pr.dst].pc]&(1<<uint(pr.blk)) == 0 {
			return ampProp, i, true
		}
	}
	// A retire of p's oldest write to block b is invisible iff no one can
	// still observe memory ordering on b: see retireAmple.
	for p := 0; p < c.nproc; p++ {
		ps := &s.procs[p]
		if ps.bufLo == ps.bufHi {
			continue
		}
		if c.retireAmple(s, p, int(s.buf[int(c.bufOff[p])+int(ps.bufLo)].blk)) {
			return ampRetire, p, true
		}
	}
	return 0, 0, false
}

// retireAmple reports whether retiring p's buffered head write to block b
// commutes invisibly with every other enabled transition:
//   - no other proc has a buffered write to b (memory order between
//     different writers is observable), and no proc can still observe
//     memory for b (READ-GLOBAL / READ-UPDATE subscribe snapshot / lock
//     grant or release — futMem), except p's own later WRITE-GLOBALs,
//     whose order p's FIFO fixes anyway;
//   - any proc with a future plain READ of b already holds the line
//     (lines are never evicted, so the read can't miss to memory; props
//     the retire generates remain freely deferrable past those reads).
func (c *compiled) retireAmple(s *mstate, p, b int) bool {
	bit := uint16(1) << uint(b)
	for q := 0; q < c.nproc; q++ {
		qs := &s.procs[q]
		pc := qs.pc
		if q == p {
			if c.futMemNoWG[q][pc]&bit != 0 {
				return false
			}
		} else {
			if (c.futMemNoWG[q][pc]|c.futWG[q][pc])&bit != 0 {
				return false
			}
			off := int(c.bufOff[q])
			for j := off + int(qs.bufLo); j < off+int(qs.bufHi); j++ {
				if int(s.buf[j].blk) == b {
					return false
				}
			}
		}
		if c.futPlainRead[q][pc]&bit != 0 && s.lineF[c.li(q, 0, b)]&lfPresent == 0 {
			return false
		}
	}
	return true
}

// expandReduced is expand with POR applied: when an ample transition
// exists, only it is emitted and the pruned siblings are counted.
func (e *engine) expandReduced(w *worker, s *mstate, emit emitFn) {
	c := e.c
	if !c.tune.DisablePOR {
		if kind, idx, ok := c.ample(s); ok {
			if skipped := c.enabledCount(s) - 1; skipped > 0 {
				e.pruned.Add(int64(skipped))
			}
			switch kind {
			case ampUnsub:
				c.unsubStep(w, s, idx, emit)
			case ampProp:
				c.propStep(w, s, idx, emit)
			case ampRetire:
				c.retireStep(w, s, idx, emit)
			}
			return
		}
	}
	c.expand(w, s, emit)
}
