package bccheck

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Op is an event kind: one of the hardware primitives of Table 1, plus
// BARRIER.
type Op uint8

const (
	OpRead Op = iota
	OpWrite
	OpReadGlobal
	OpWriteGlobal
	OpReadUpdate
	OpResetUpdate
	OpFlush
	OpReadLock
	OpWriteLock
	OpUnlock
	OpBarrier
	opCount
)

var opNames = [...]string{
	"READ", "WRITE", "READ-GLOBAL", "WRITE-GLOBAL", "READ-UPDATE",
	"RESET-UPDATE", "FLUSH-BUFFER", "READ-LOCK", "WRITE-LOCK", "UNLOCK",
	"BARRIER",
}

// String names the op as the paper spells it.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Reads reports whether the op returns a value into a register.
func (o Op) Reads() bool {
	return o == OpRead || o == OpReadGlobal || o == OpReadUpdate
}

// Loc is an abstract memory location: a block and a word within it.
// Locations in the same block share a cache line, a subscription, and a
// lock. For OpBarrier, Block is the barrier's identity and Word is ignored.
type Loc struct {
	Block int
	Word  int
}

// Instr is one instruction of a litmus program. Val is the value written
// (write ops only). Loc is ignored for OpFlush.
type Instr struct {
	Op  Op
	Loc Loc
	Val uint64
}

// Program is one instruction sequence per processor.
type Program [][]Instr

// Options parameterizes Enumerate.
type Options struct {
	// Observe lists locations whose final memory value is part of the
	// outcome.
	Observe []Loc
	// Init gives initial memory values; unmentioned locations start at 0.
	Init map[Loc]uint64
	// MaxStates aborts the search beyond this many distinct states
	// (default 2,000,000).
	MaxStates int
	// LocName renders locations in witness labels (default "b<B>w<W>").
	LocName func(Loc) string
	// Witnesses asks for one witness trace per outcome. Witness mode
	// forces the serial canonical engine and disables symmetry reduction
	// (see Tuning).
	Witnesses bool
	// Mutate ablates one axiom family of the model (see Mutation). Used
	// by axiom-coverage analysis; a non-zero mutation forces DisablePOR
	// and DisableSymmetry, since both reductions are proved against the
	// unmutated semantics.
	Mutate Mutation
	// Tuning selects exploration-engine variants. The zero value — POR
	// on, symmetry on, workers = GOMAXPROCS — is correct for all
	// programs; Tuning only trades time for reproduction of the
	// unreduced state count.
	Tuning Tuning
}

// Tuning selects exploration strategies. Every setting preserves the
// outcome set; DisablePOR and DisableSymmetry additionally preserve the
// unreduced state count, and any Workers value yields results
// bit-identical to Workers=1.
type Tuning struct {
	// DisablePOR turns off partial-order reduction, exploring the full
	// interleaving graph (the pre-reduction semantics).
	DisablePOR bool
	// DisableSymmetry turns off symmetry reduction: states are no longer
	// canonicalized under the program's processor/block/barrier
	// automorphisms, so States counts orbit members individually.
	DisableSymmetry bool
	// Workers caps exploration parallelism. 0 means GOMAXPROCS; 1 forces
	// the serial engine.
	Workers int
}

// ErrStateLimit is returned when the search exceeds Options.MaxStates.
// The concrete error is a *StateLimitError; errors.Is(err, ErrStateLimit)
// matches it.
var ErrStateLimit = errors.New("bccheck: state limit exceeded")

// StateLimitError reports an aborted search: how many states were
// explored, the configured cap, and a canonical prefix of the exploration
// (the first-successor walk from the initial state) to show where the
// blow-up lives.
type StateLimitError struct {
	States int
	Limit  int
	Prefix []string
}

func (e *StateLimitError) Error() string {
	msg := fmt.Sprintf("bccheck: state limit exceeded: %d states explored, cap %d", e.States, e.Limit)
	if len(e.Prefix) > 0 {
		msg += "; deepest canonical prefix: " + strings.Join(e.Prefix, "; ")
	}
	return msg
}

// Is makes errors.Is(err, ErrStateLimit) work for wrapped limit errors.
func (e *StateLimitError) Is(target error) bool { return target == ErrStateLimit }

// Outcome is one allowed final state: the values each processor's reads
// returned, in program order, plus the final memory values of the observed
// locations.
type Outcome struct {
	Regs [][]uint64 // per processor, per read
	Mem  []uint64   // per Options.Observe entry

	// Witness is one sequence of machine steps that produces this outcome.
	Witness []string
}

// Key is the outcome's canonical form: "p:rN=v" tokens in processor and
// read order, then "mI=v" tokens in observe order.
func (o Outcome) Key() string {
	var b strings.Builder
	for p, regs := range o.Regs {
		for i, v := range regs {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d:r%d=%d", p, i, v)
		}
	}
	for i, v := range o.Mem {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "m%d=%d", i, v)
	}
	return b.String()
}

// Result is the full answer for one program.
type Result struct {
	// Outcomes is the allowed set, sorted by Key.
	Outcomes []Outcome
	// States is the number of distinct abstract-machine states visited.
	// With partial-order reduction and symmetry reduction on (the
	// default) this counts the reduced quotient graph; with
	// Tuning.DisablePOR and Tuning.DisableSymmetry it matches the full
	// graph.
	States int
	// Pruned counts enabled transitions skipped by partial-order
	// reduction. Zero when Tuning.DisablePOR is set.
	Pruned int
}

// Has reports whether the allowed set contains an outcome with the given
// canonical key.
func (r *Result) Has(key string) bool {
	for _, o := range r.Outcomes {
		if o.Key() == key {
			return true
		}
	}
	return false
}

// Keys returns the sorted canonical keys of the allowed set.
func (r *Result) Keys() []string {
	out := make([]string, len(r.Outcomes))
	for i, o := range r.Outcomes {
		out[i] = o.Key()
	}
	return out
}

// Enumerate computes the allowed outcome set of a program under the BC
// axioms. It returns an error for ill-formed programs (unbalanced locks,
// writes under a read lock, mismatched barriers), for programs whose
// exploration exceeds MaxStates, and for programs that can deadlock.
func Enumerate(prog Program, opts Options) (*Result, error) {
	c, err := compile(prog, opts)
	if err != nil {
		return nil, err
	}
	return c.enumerate()
}

// Validate checks program well-formedness without enumerating: every lock
// acquired is released (and not re-acquired while held), no plain or global
// write targets a block the processor holds under a READ-LOCK, and every
// barrier is joined exactly once by every processor.
func Validate(prog Program, opts Options) error {
	_, err := compile(prog, opts)
	return err
}

// sortOutcomes orders outcomes by canonical key.
func sortOutcomes(outs []Outcome) {
	sort.Slice(outs, func(i, j int) bool { return outs[i].Key() < outs[j].Key() })
}
