package bccheck

// Model mutations: single-axiom ablations of the §2 model, used to
// compute axiom-coverage vectors for litmus tests (internal/litmus).
// Each mutation perturbs exactly one axiom family — relaxing it where
// the axiom is a constraint, strengthening it where the axiom asserts a
// weakness (NP-Synch) — so that a test's allowed set changes under the
// mutation iff that axiom family constrains (or licenses) one of the
// test's outcomes.
//
// A mutated model is not the BC model: the POR soundness argument and
// the symmetry automorphisms are proved against the real semantics, so
// compile() forces DisablePOR and DisableSymmetry whenever a mutation is
// active. Mutated enumerations are only ever run on small (shrunk)
// programs, where the full graph is cheap.

import "fmt"

// Mutation selects one axiom-family ablation. The zero value is the
// unmutated model.
type Mutation uint8

const (
	MutNone Mutation = iota
	// MutFIFO lets the write buffer retire any buffered entry, not just
	// the head (ablates write-buffer FIFO order).
	MutFIFO
	// MutNPSynch strengthens lock acquisition into a synchronization
	// point: a grant refreshes the clean words of every present data
	// line from memory. Tests whose allowed set shrinks witness the
	// NP-Synch axiom — an outcome they allow exists only because locks
	// order nothing.
	MutNPSynch
	// MutCPSynch removes the buffer drain from FLUSH-BUFFER, UNLOCK and
	// BARRIER (ablates the CP-Synch axiom).
	MutCPSynch
	// MutLockData makes UNLOCK discard dirty lock-line words instead of
	// merging them to memory (ablates lock-carried data).
	MutLockData
	// MutCoherence makes update propagations clobber dirty words
	// (ablates the per-word coherence merge).
	MutCoherence
	// MutFresh removes READ-UPDATE freshness: subscribing over a present
	// line skips the memory refresh, and retiring writes generate no
	// propagations to subscribers.
	MutFresh
	// MutBarrier removes the barrier rendezvous: an arriving processor
	// continues immediately (the pre-arrival buffer flush remains).
	MutBarrier
	mutCount
)

var mutNames = [...]string{
	"none", "fifo", "np-synch", "cp-synch", "lock-data", "coherence",
	"freshness", "barrier",
}

// String names the mutated axiom family.
func (m Mutation) String() string {
	if int(m) < len(mutNames) {
		return mutNames[m]
	}
	return fmt.Sprintf("Mutation(%d)", uint8(m))
}
