// Conservative time-windowed parallel discrete-event simulation (PDES).
//
// A Parallel run partitions the event population into lanes — one Engine per
// machine node — and repeats a barrier-synchronized window loop:
//
//  1. GVT is the minimum next-event time across lanes. The window is
//     [GVT, GVT+lookahead), where lookahead is the minimum latency of any
//     cross-lane interaction (for this machine: the minimum uncontended
//     link latency, see network.MinCrossLatency).
//  2. Every lane independently fires all of its events with t < window end.
//     Effects on other lanes may not be applied directly; they are buffered
//     as posts in a per-source-lane FIFO outbox. Because any cross-lane
//     effect is at least one link latency away, every post lands at or
//     beyond the window end — the destination lane cannot have passed it.
//  3. At the barrier, outboxes are merged into the destination heaps in the
//     fixed order (time, jitter, source lane, source sequence). The key is
//     drawn by the source lane at Post time, so it is a pure function of
//     that lane's own schedule — no interleaving of lane execution, worker
//     count, or merge order can change it.
//
// Models with globally-ordered shared state that lanes must not touch during
// a window — contended network ports, for this machine — hook the barrier
// with SetArbiter: lanes record their intent during the window (drawing the
// same injection key via DrawKey), and the arbiter replays the recorded work
// in global key order on the coordinator, posting the resulting deliveries
// with PostKeyed before the merge. See network.NewParallel.
//
// The result is a simulation whose outcome is bit-identical at any worker
// count: workers only size the thread pool that drains the per-window lane
// list; the partition (one lane per node) and every ordering key are fixed
// by the configuration alone. This is the conservative (Chandy-Misra-style
// windowed) flavor of PDES — lanes never execute past the horizon of what
// other lanes could still affect, so there is no rollback machinery and no
// state saving, at the cost of requiring a positive lookahead.
package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// post is one buffered cross-lane effect: a message delivery drawn from the
// source lane's schedule, carrying the full ordering key assigned at Post
// time.
type post struct {
	at      Time
	jit     uint64
	seq     uint64
	src     int32
	dst     int32
	rcv     Receiver
	payload any
}

// Parallel coordinates a set of lane engines through the window loop. The
// zero value is not usable; call NewParallel.
type Parallel struct {
	lanes  []*Engine
	out    [][]post // outboxes, indexed by source lane
	la     Time     // lookahead (window width); at least 1
	limit  Time     // horizon; Infinity when unset
	clock  Time     // max event time fired so far (GVT on ErrHorizon)
	wend   Time     // current window end (exclusive), read by lanes in Post
	inter  func() error
	arb    func()    // window-barrier arbitration hook (SetArbiter)
	active []*Engine // lanes with work in the current window
	scr    []post    // merge scratch
	nt     []Time    // cached per-lane next-event time (see Run)

	idx    atomic.Int64 // next active-lane index to drain
	wg     sync.WaitGroup
	wake   chan struct{} // worker wake channel; non-nil only while Run runs
	panics []any         // per-lane captured panic values
}

// NewParallel returns a coordinator over n lane engines with the clock at
// zero and a lookahead of 1 cycle (the degenerate lockstep window; callers
// should install the real model lookahead with SetLookahead).
func NewParallel(n int) *Parallel {
	if n < 1 {
		panic("sim: parallel run needs at least one lane")
	}
	p := &Parallel{
		lanes:  make([]*Engine, n),
		out:    make([][]post, n),
		la:     1,
		limit:  Infinity,
		panics: make([]any, n),
		nt:     make([]Time, n),
	}
	for i := range p.lanes {
		e := NewEngine()
		e.lane = int32(i)
		p.lanes[i] = e
	}
	return p
}

// Lanes returns the number of lanes.
func (p *Parallel) Lanes() int { return len(p.lanes) }

// Lane returns lane i's engine. Components owned by node i schedule their
// local events through it exactly as they would through a serial engine.
func (p *Parallel) Lane(i int) *Engine { return p.lanes[i] }

// SetLookahead installs the window width: the minimum simulated latency of
// any cross-lane interaction, in cycles. It must be at least 1 — a zero
// lookahead means cross-lane effects can land inside the current window,
// which the conservative window loop cannot simulate (use the serial
// engine for such models).
func (p *Parallel) SetLookahead(d Time) {
	if d < 1 {
		panic("sim: lookahead must be >= 1")
	}
	p.la = d
}

// Lookahead returns the installed window width.
func (p *Parallel) Lookahead() Time { return p.la }

// SetHorizon establishes a hard time limit with the same inclusive
// semantics as Engine.SetHorizon: events at t <= horizon fire, and Run
// returns ErrHorizon when the next event anywhere lies strictly beyond it.
func (p *Parallel) SetHorizon(t Time) { p.limit = t }

// SetInterrupt installs a poll function consulted once per window during
// Run; a non-nil return stops the loop, which returns that error. As with
// the serial engine, interrupts only end a run early — they never reorder
// events.
func (p *Parallel) SetInterrupt(fn func() error) { p.inter = fn }

// SetJitter enables seeded schedule jitter on every lane. Each lane derives
// its own splitmix64 stream from (seed, lane), so the jitter key a lane
// assigns to an event is a pure function of that lane's schedule — the same
// property that makes the rest of the ordering worker-count-independent.
// Seed 0 disables jitter. Note the streams intentionally differ from the
// single global stream a serial Engine draws from: a Parallel run explores
// its own (deterministic) schedule permutation per seed.
func (p *Parallel) SetJitter(seed uint64) {
	for i, e := range p.lanes {
		if seed == 0 {
			e.SetJitter(0)
			continue
		}
		s := splitmix(seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
		if s == 0 {
			s = 1
		}
		e.jitterOn = true
		e.jrng = s
	}
}

// splitmix is the splitmix64 output function, used to derive per-lane
// jitter streams.
func splitmix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Now returns the maximum event time fired so far, or the GVT that tripped
// the horizon after Run returned ErrHorizon. It is only meaningful between
// windows (after Run returns or from an interrupt poll).
func (p *Parallel) Now() Time { return p.clock }

// Fired returns the total number of events executed across all lanes.
func (p *Parallel) Fired() uint64 {
	var n uint64
	for _, e := range p.lanes {
		n += e.fired
	}
	return n
}

// Pending returns the number of events still scheduled across all lanes.
func (p *Parallel) Pending() int {
	n := 0
	for _, e := range p.lanes {
		n += e.Pending()
	}
	return n
}

// Post buffers a cross-lane event delivery: rcv.OnDeliver(payload) on lane
// dst at absolute time at. It must be called from lane src while that lane
// is executing a window (i.e. from inside one of its events). The ordering
// key — jitter draw and sequence number — comes from the source lane's own
// schedule, making it independent of how lanes interleave in wall time.
//
// Post panics if at lies inside the current window: that is a lookahead
// violation, meaning the model has a cross-lane interaction faster than the
// installed lookahead, and the destination lane may already have executed
// past at.
func (p *Parallel) Post(src, dst int32, at Time, rcv Receiver, payload any) {
	jit, seq := p.DrawKey(src)
	p.PostKeyed(src, dst, at, jit, seq, rcv, payload)
}

// DrawKey draws a cross-lane ordering key — jitter draw and sequence
// number — from lane src's own schedule state, exactly as Post does. It
// must be called from lane src while that lane is executing a window. Use
// it when the delivery time is not yet known (it will be fixed by the
// barrier arbiter) but the injection order must be pinned at send time;
// pass the key to PostKeyed once the time is resolved.
func (p *Parallel) DrawKey(src int32) (jit, seq uint64) {
	e := p.lanes[src]
	if e.jitterOn {
		jit = e.nextJit()
	}
	seq = e.seq
	e.seq++
	return jit, seq
}

// PostKeyed buffers a cross-lane delivery whose ordering key was already
// drawn with DrawKey. Unlike Post it may also be called from the barrier
// arbiter (on the coordinator, between lane execution and the merge) —
// the posts it appends flow into the same window's merge. The lookahead
// rule is unchanged: at must lie at or beyond the current window end.
func (p *Parallel) PostKeyed(src, dst int32, at Time, jit, seq uint64, rcv Receiver, payload any) {
	if rcv == nil {
		panic("sim: nil receiver")
	}
	if at < p.wend {
		panic(fmt.Sprintf("sim: cross-lane post at %d inside window ending %d (lookahead violation)", at, p.wend))
	}
	p.out[src] = append(p.out[src], post{at: at, jit: jit, seq: seq, src: src, dst: dst, rcv: rcv, payload: payload})
}

// SetArbiter installs a hook the coordinator calls once per window at the
// barrier — after every lane has finished executing the window (and any
// lane panic has been re-raised), before the outbox merge. The hook runs
// single-threaded on the coordinator goroutine; it is where a model
// resolves globally-ordered shared state that lanes recorded intent
// against during the window (e.g. contended switch-port occupancy),
// posting the resulting deliveries with PostKeyed so they join the same
// merge. The hook must be deterministic: it may depend only on the
// recorded intents and its own state, never on wall-clock interleaving.
func (p *Parallel) SetArbiter(fn func()) { p.arb = fn }

// Run executes the window loop with the given number of worker threads
// until every lane's queue drains, any lane calls Stop, the horizon is
// exceeded, or the interrupt poll reports an error. workers is clamped to
// [1, lanes]; every worker count produces bit-identical results, and
// workers=1 runs the same loop on the calling goroutine alone. Stop is
// honored at the window boundary: the window in which Stop was called
// completes (every lane fires its remaining in-window events) before Run
// returns nil. A panic on any lane is re-raised on the caller, from the
// lowest panicking lane for determinism.
func (p *Parallel) Run(workers int) error {
	if workers < 1 {
		workers = 1
	}
	if workers > len(p.lanes) {
		workers = len(p.lanes)
	}
	for _, e := range p.lanes {
		e.stopped = false
	}
	if workers > 1 {
		wake := make(chan struct{})
		p.wake = wake
		for i := 1; i < workers; i++ {
			go func() {
				for range wake {
					p.drain()
					p.wg.Done()
				}
			}()
		}
		defer func() {
			close(wake)
			p.wake = nil
		}()
	}

	// nt caches every lane's next-event time between windows, so the
	// per-window GVT reduction and active-lane selection scan a flat Time
	// array instead of probing each lane's heap top through the record
	// pool (two pointer-chasing nextTime calls per lane per window — the
	// dominant coordinator cost at 512-1024 lanes). The cache is refreshed
	// where it can change: by the worker that ran the lane's window, and
	// by merge for lanes that received cross-lane posts.
	for i, e := range p.lanes {
		p.nt[i] = e.nextTime()
	}
	for {
		if p.inter != nil {
			if err := p.inter(); err != nil {
				return err
			}
		}
		gvt := Infinity
		for _, t := range p.nt {
			if t < gvt {
				gvt = t
			}
		}
		if gvt == Infinity {
			return nil // drained (outboxes are empty between windows)
		}
		if gvt > p.limit {
			p.clock = gvt
			return ErrHorizon
		}
		wend := gvt + p.la
		if wend < gvt {
			wend = Infinity // overflow
		}
		if p.limit != Infinity && wend > p.limit+1 {
			wend = p.limit + 1 // events at exactly the horizon still fire
		}
		p.wend = wend
		p.active = p.active[:0]
		for i, e := range p.lanes {
			if p.nt[i] < wend {
				p.active = append(p.active, e)
			}
		}
		if workers == 1 || len(p.active) == 1 {
			for _, e := range p.active {
				p.runLane(e)
			}
		} else {
			k := workers
			if k > len(p.active) {
				k = len(p.active)
			}
			p.idx.Store(0)
			p.wg.Add(k - 1)
			for i := 1; i < k; i++ {
				p.wake <- struct{}{}
			}
			p.drain()
			p.wg.Wait()
		}
		for i := range p.panics {
			if v := p.panics[i]; v != nil {
				panic(v)
			}
		}
		if p.arb != nil {
			p.arb()
		}
		stopped := false
		for _, e := range p.lanes {
			if e.now > p.clock {
				p.clock = e.now
			}
			if e.stopped {
				stopped = true
			}
		}
		if stopped {
			return nil
		}
		p.merge()
	}
}

// drain pulls active lanes off the shared index until none remain. Each
// lane is executed by exactly one worker; which worker is immaterial,
// because every ordering decision is keyed by lane-local state.
func (p *Parallel) drain() {
	for {
		i := int(p.idx.Add(1)) - 1
		if i >= len(p.active) {
			return
		}
		p.runLane(p.active[i])
	}
}

// runLane executes one lane's window, capturing a panic into the lane's
// slot so the coordinator can re-raise it deterministically. It refreshes
// the lane's nt cache slot; each lane is run by exactly one worker per
// window, so concurrent workers write disjoint elements.
func (p *Parallel) runLane(e *Engine) {
	defer func() {
		if v := recover(); v != nil {
			p.panics[e.lane] = v
		}
	}()
	e.runWindow(p.wend)
	p.nt[e.lane] = e.nextTime()
}

// merge drains every outbox into the destination heaps in the fixed order
// (time, jitter, source lane, source sequence). The heap comparator itself
// orders by exactly this key, so insertion order cannot affect pop order;
// sorting here additionally fixes arena slot assignment, keeping even
// internal state identical across worker counts.
func (p *Parallel) merge() {
	m := p.scr[:0]
	for src := range p.out {
		m = append(m, p.out[src]...)
		p.out[src] = p.out[src][:0]
	}
	if len(m) == 0 {
		p.scr = m
		return
	}
	sort.Slice(m, func(i, j int) bool {
		a, b := &m[i], &m[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.jit != b.jit {
			return a.jit < b.jit
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for i := range m {
		q := &m[i]
		e := p.lanes[q.dst]
		_, r := e.scheduleKeyed(q.at, q.jit, q.src, q.seq, evDeliver)
		r.recv, r.payload = q.rcv, q.payload
		if q.at < p.nt[q.dst] {
			p.nt[q.dst] = q.at
		}
		q.rcv, q.payload = nil, nil
	}
	p.scr = m[:0]
}

// nextTime returns the timestamp of the earliest live event, discarding
// cancelled entries from the top of the heap, or Infinity when drained.
func (e *Engine) nextTime() Time {
	for len(e.heap) > 0 {
		top := e.heap[0]
		r := &e.pool[top]
		if !r.dead {
			return r.at
		}
		e.pop()
		e.dead--
		e.release(top)
	}
	return Infinity
}

// runWindow fires every live event with at < end, in key order. Horizon
// and interrupt handling belong to the coordinator; Stop is honored at
// event granularity as in Run, and ends the whole Parallel run at the
// next window boundary.
func (e *Engine) runWindow(end Time) {
	for len(e.heap) > 0 && !e.stopped {
		top := e.heap[0]
		r := &e.pool[top]
		if r.dead {
			e.pop()
			e.dead--
			e.release(top)
			continue
		}
		if r.at >= end {
			return
		}
		e.pop()
		e.now = r.at
		e.fire(top)
	}
}

// scheduleKeyed inserts an event carrying an explicit (jitter, lane, seq)
// ordering key instead of drawing one from this engine — the cross-lane
// merge path, where the key was assigned by the source lane at Post time.
func (e *Engine) scheduleKeyed(t Time, jit uint64, lane int32, seq uint64, kind eventKind) (int32, *record) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	var id int32
	if n := len(e.free); n > 0 {
		id = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.pool = append(e.pool, record{})
		id = int32(len(e.pool) - 1)
	}
	r := &e.pool[id]
	r.at, r.seq, r.kind, r.dead = t, seq, kind, false
	r.lane = lane
	r.jit = jit
	e.heap = append(e.heap, id)
	e.siftUp(len(e.heap) - 1)
	return id, r
}
