package sim

import (
	"reflect"
	"testing"
)

// fireOrder schedules n same-cycle events plus a few spread across later
// cycles and returns the order in which the same-cycle batch fired.
func fireOrder(t *testing.T, seed uint64) []int {
	t.Helper()
	e := NewEngine()
	e.SetJitter(seed)
	var order []int
	for i := 0; i < 16; i++ {
		i := i
		e.At(10, func() { order = append(order, i) })
	}
	// Later-cycle events must still fire strictly after the batch.
	late := false
	e.At(11, func() { late = true })
	e.At(12, func() {
		if !late {
			t.Error("cycle-12 event fired before cycle-11 event")
		}
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 16 {
		t.Fatalf("fired %d of 16 same-cycle events", len(order))
	}
	return order
}

func TestJitterOffKeepsInsertionOrder(t *testing.T) {
	got := fireOrder(t, 0)
	for i, v := range got {
		if v != i {
			t.Fatalf("jitter off: order %v, want insertion order", got)
		}
	}
}

func TestJitterPermutesSameCycleEvents(t *testing.T) {
	base := fireOrder(t, 0)
	permuted := false
	for seed := uint64(1); seed <= 8; seed++ {
		if !reflect.DeepEqual(fireOrder(t, seed), base) {
			permuted = true
			break
		}
	}
	if !permuted {
		t.Fatal("no seed in 1..8 permuted the same-cycle order")
	}
}

func TestJitterIsDeterministicPerSeed(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		a := fireOrder(t, seed)
		b := fireOrder(t, seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: order differs between runs: %v vs %v", seed, a, b)
		}
	}
}

func TestJitterSeedsDiffer(t *testing.T) {
	distinct := map[string]bool{}
	for seed := uint64(1); seed <= 8; seed++ {
		key := ""
		for _, v := range fireOrder(t, seed) {
			key += string(rune('a' + v))
		}
		distinct[key] = true
	}
	if len(distinct) < 2 {
		t.Fatal("seeds 1..8 all produced the same schedule")
	}
}

func TestJitterNeverReordersAcrossCycles(t *testing.T) {
	e := NewEngine()
	e.SetJitter(12345)
	var times []Time
	for i := 0; i < 64; i++ {
		at := Time(i % 7)
		e.At(at, func() { times = append(times, at) })
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("time regressed: %v", times)
		}
	}
}
