package sim

import (
	"errors"
	"reflect"
	"testing"
)

// ringModel is a deterministic multi-lane kernel workload: each lane
// receives tokens, does some local work, and forwards them around the ring
// with a cross-lane latency >= the lookahead. Every delivery is folded into
// a per-lane log keyed by (time, payload), so two runs agree iff their
// full delivery schedules agree.
type ringModel struct {
	p     *Parallel
	lanes int32
	la    Time
	logs  [][]uint64
	live  []int // tokens still circulating, per lane-of-origin
}

type ringNode struct {
	m  *ringModel
	id int32
}

func (rn *ringNode) OnDeliver(payload any) {
	m := rn.m
	v := payload.(uint64)
	e := m.p.Lane(int(rn.id))
	m.logs[rn.id] = append(m.logs[rn.id], v*0x9e3779b97f4a7c15+uint64(e.Now()))
	hops := v & 0xffff
	if hops == 0 {
		return
	}
	id := rn.id
	// Local compute before forwarding: exercises same-window local events.
	e.After(3, func() {
		dst := (id + 1) % m.lanes
		m.p.Post(id, dst, e.Now()+m.la, &ringNode{m, dst}, v-1)
	})
}

func runRing(t *testing.T, lanes, workers int, jitter uint64, horizon Time) (*ringModel, error) {
	t.Helper()
	p := NewParallel(lanes)
	p.SetLookahead(7)
	if horizon != 0 {
		p.SetHorizon(horizon)
	}
	if jitter != 0 {
		p.SetJitter(jitter)
	}
	m := &ringModel{p: p, lanes: int32(lanes), la: 7, logs: make([][]uint64, lanes)}
	for i := 0; i < lanes; i++ {
		i := int32(i)
		e := p.Lane(int(i))
		// Each lane launches two tokens with different hop budgets and
		// staggered start times.
		e.At(Time(i), func() {
			dst := (i + 1) % m.lanes
			m.p.Post(i, dst, e.Now()+m.la, &ringNode{m, dst}, uint64(40+i))
		})
		e.At(Time(2*i+1), func() {
			dst := (i + 2) % m.lanes
			m.p.Post(i, dst, e.Now()+m.la, &ringNode{m, dst}, uint64(25))
		})
	}
	err := p.Run(workers)
	return m, err
}

// fingerprint captures everything observable about a run.
func fingerprint(m *ringModel) (logs [][]uint64, fired uint64, now Time) {
	return m.logs, m.p.Fired(), m.p.Now()
}

// TestParallelWorkerCountIdentical is the core PDES guarantee: the same
// configuration produces bit-identical results at every worker count, with
// and without jitter.
func TestParallelWorkerCountIdentical(t *testing.T) {
	for _, jitter := range []uint64{0, 1, 0xdecafbad} {
		ref, err := runRing(t, 8, 1, jitter, 0)
		if err != nil {
			t.Fatalf("jitter %d workers 1: %v", jitter, err)
		}
		refLogs, refFired, refNow := fingerprint(ref)
		if refFired == 0 {
			t.Fatalf("jitter %d: no events fired", jitter)
		}
		for _, workers := range []int{2, 3, 8, 64} {
			m, err := runRing(t, 8, workers, jitter, 0)
			if err != nil {
				t.Fatalf("jitter %d workers %d: %v", jitter, workers, err)
			}
			logs, fired, now := fingerprint(m)
			if fired != refFired || now != refNow {
				t.Fatalf("jitter %d workers %d: fired/now %d/%d, want %d/%d",
					jitter, workers, fired, now, refFired, refNow)
			}
			if !reflect.DeepEqual(logs, refLogs) {
				t.Fatalf("jitter %d workers %d: delivery logs diverge", jitter, workers)
			}
		}
	}
}

// TestParallelJitterPermutes checks that a nonzero jitter seed actually
// yields a different (but still deterministic) schedule.
func TestParallelJitterPermutes(t *testing.T) {
	a, err := runRing(t, 8, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runRing(t, 8, 2, 12345, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Same physics — same event count — but tie-breaks may reorder
	// same-cycle deliveries. (With this model most deliveries are alone at
	// their cycle, so only assert the runs are internally consistent and
	// event-count-equal; worker-count equality per seed is the real bar,
	// covered above.)
	if a.p.Fired() != b.p.Fired() {
		t.Fatalf("jitter changed event count: %d vs %d", a.p.Fired(), b.p.Fired())
	}
}

// TestParallelHorizonComposition pins the satellite regression: horizon +
// interrupt + jitter compose identically under the window loop at
// workers=1 and workers=N. The horizon cuts the ring mid-flight; the
// interrupt counts windows; jitter permutes same-cycle ties.
func TestParallelHorizonComposition(t *testing.T) {
	type outcome struct {
		logs    [][]uint64
		fired   uint64
		now     Time
		windows int
		err     string
	}
	run := func(workers int) outcome {
		p := NewParallel(6)
		p.SetLookahead(7)
		p.SetHorizon(500)
		p.SetJitter(99)
		m := &ringModel{p: p, lanes: 6, la: 7, logs: make([][]uint64, 6)}
		windows := 0
		p.SetInterrupt(func() error { windows++; return nil })
		for i := 0; i < 6; i++ {
			i := int32(i)
			e := p.Lane(int(i))
			e.At(Time(i), func() {
				dst := (i + 1) % m.lanes
				// Huge hop budget: only the horizon ends the run.
				m.p.Post(i, dst, e.Now()+m.la, &ringNode{m, dst}, uint64(1_000_000))
			})
		}
		err := p.Run(workers)
		o := outcome{logs: m.logs, fired: p.Fired(), now: p.Now(), windows: windows}
		if err != nil {
			o.err = err.Error()
		}
		return o
	}
	ref := run(1)
	if ref.err != ErrHorizon.Error() {
		t.Fatalf("expected horizon error, got %q", ref.err)
	}
	if ref.now <= 500 {
		t.Fatalf("horizon GVT should be past the limit, got %d", ref.now)
	}
	for _, workers := range []int{2, 6} {
		got := run(workers)
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers %d: outcome diverges from workers=1:\n got %+v\nwant %+v",
				workers, got, ref)
		}
	}
}

// TestParallelInterruptStops checks an interrupt error ends the run with
// the same partial state at any worker count (windows are the poll
// granularity, and the window sequence is worker-independent).
func TestParallelInterruptStops(t *testing.T) {
	boom := errors.New("boom")
	run := func(workers int) (uint64, Time, string) {
		p := NewParallel(4)
		p.SetLookahead(7)
		m := &ringModel{p: p, lanes: 4, la: 7, logs: make([][]uint64, 4)}
		polls := 0
		p.SetInterrupt(func() error {
			polls++
			if polls > 10 {
				return boom
			}
			return nil
		})
		for i := 0; i < 4; i++ {
			i := int32(i)
			e := p.Lane(int(i))
			e.At(0, func() {
				dst := (i + 1) % m.lanes
				m.p.Post(i, dst, e.Now()+m.la, &ringNode{m, dst}, uint64(1_000_000))
			})
		}
		err := p.Run(workers)
		if !errors.Is(err, boom) {
			t.Fatalf("workers %d: want boom, got %v", workers, err)
		}
		return p.Fired(), p.Now(), fingerprintLogs(m.logs)
	}
	f1, n1, l1 := run(1)
	f4, n4, l4 := run(4)
	if f1 != f4 || n1 != n4 || l1 != l4 {
		t.Fatalf("interrupted runs diverge: (%d,%d,%s) vs (%d,%d,%s)", f1, n1, l1, f4, n4, l4)
	}
}

func fingerprintLogs(logs [][]uint64) string {
	var h uint64 = 1469598103934665603
	for _, l := range logs {
		for _, v := range l {
			h = (h ^ v) * 1099511628211
		}
		h = (h ^ 0xff) * 1099511628211
	}
	return string(rune(h%26+'a')) + string(rune((h>>8)%26+'a')) + string(rune((h>>16)%26+'a'))
}

// TestParallelStop checks Stop ends the run cleanly at a window boundary
// with identical state at any worker count.
func TestParallelStop(t *testing.T) {
	run := func(workers int) (uint64, Time) {
		p := NewParallel(4)
		p.SetLookahead(7)
		m := &ringModel{p: p, lanes: 4, la: 7, logs: make([][]uint64, 4)}
		for i := 0; i < 4; i++ {
			i := int32(i)
			e := p.Lane(int(i))
			e.At(0, func() {
				dst := (i + 1) % m.lanes
				m.p.Post(i, dst, e.Now()+m.la, &ringNode{m, dst}, uint64(1_000_000))
			})
		}
		p.Lane(2).At(200, func() { p.Lane(2).Stop() })
		if err := p.Run(workers); err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		return p.Fired(), p.Now()
	}
	f1, n1 := run(1)
	f4, n4 := run(4)
	if f1 != f4 || n1 != n4 {
		t.Fatalf("stopped runs diverge: (%d,%d) vs (%d,%d)", f1, n1, f4, n4)
	}
	if n1 < 200 {
		t.Fatalf("run stopped before the Stop event: now %d", n1)
	}
}

// TestPostLookaheadViolationPanics: posting inside the current window is a
// model bug (the destination lane may already be past the post time) and
// must fail loudly.
func TestPostLookaheadViolationPanics(t *testing.T) {
	p := NewParallel(2)
	p.SetLookahead(10)
	rn := &ringNode{}
	p.Lane(0).At(5, func() {
		// Window is [0+?,..): by the time this fires, wend >= 10+... — a
		// post at now+1 is always inside it.
		p.Post(0, 1, p.Lane(0).Now()+1, rn, uint64(0))
	})
	defer func() {
		if recover() == nil {
			t.Fatal("expected lookahead-violation panic")
		}
	}()
	_ = p.Run(2)
}

// TestParallelDrainedOutcome checks the drained return: nil error, clock at
// the last fired event.
func TestParallelDrainedOutcome(t *testing.T) {
	m, err := runRing(t, 4, 2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.p.Pending() != 0 {
		t.Fatalf("%d events still pending after drain", m.p.Pending())
	}
	if m.p.Now() == 0 {
		t.Fatal("clock did not advance")
	}
}

// TestRunUntilHorizonIdleAdvance pins the documented Engine behavior the
// doc-drift fix clarified: the horizon bounds event execution, not idle
// time, so RunUntil past the horizon with no out-of-horizon events returns
// nil with the clock at the target — while an actual event beyond the
// horizon yields ErrHorizon.
func TestRunUntilHorizonIdleAdvance(t *testing.T) {
	e := NewEngine()
	e.SetHorizon(100)
	fired := false
	e.At(50, func() { fired = true })
	n, err := e.RunUntil(200)
	if err != nil || n != 1 || !fired {
		t.Fatalf("idle advance: n=%d err=%v fired=%v", n, err, fired)
	}
	if e.Now() != 200 {
		t.Fatalf("clock should idle-advance to 200, got %d", e.Now())
	}

	e2 := NewEngine()
	e2.SetHorizon(100)
	e2.At(150, func() {})
	if _, err := e2.RunUntil(200); !errors.Is(err, ErrHorizon) {
		t.Fatalf("event beyond horizon: want ErrHorizon, got %v", err)
	}
	// Events at exactly the horizon still fire (inclusive limit).
	e3 := NewEngine()
	e3.SetHorizon(100)
	atLimit := false
	e3.At(100, func() { atLimit = true })
	if err := e3.Run(); err != nil || !atLimit {
		t.Fatalf("event at horizon: err=%v fired=%v", err, atLimit)
	}
}
