package sim

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 0} {
		at := at
		e.At(at, func() { got = append(got, at) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 10, 10, 20, 30}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("event order %v, want %v", got, want)
		}
	}
}

func TestSameCycleEventsFireInInsertionOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("insertion order violated at %d: got %d", i, v)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(7, func() {
		e.After(3, func() { at = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 10 {
		t.Fatalf("After(3) from t=7 fired at %d, want 10", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNilEventPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil event did not panic")
		}
	}()
	NewEngine().At(0, nil)
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.At(5, func() { fired = true })
	if !h.Pending() {
		t.Fatal("handle not pending after schedule")
	}
	if !h.Cancel() {
		t.Fatal("Cancel returned false for pending event")
	}
	if h.Cancel() {
		t.Fatal("second Cancel returned true")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := NewEngine()
	h := e.At(1, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if h.Cancel() {
		t.Fatal("Cancel after fire returned true")
	}
	if h.Pending() {
		t.Fatal("fired event reports pending")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++; e.Stop() })
	e.At(2, func() { count++ })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("fired %d events, want 1 (Stop should halt)", count)
	}
	// The remaining event is still queued and runs on the next Run.
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("fired %d events after resume, want 2", count)
	}
}

func TestHorizon(t *testing.T) {
	e := NewEngine()
	e.SetHorizon(100)
	e.At(50, func() {})
	e.At(101, func() {})
	if err := e.Run(); err != ErrHorizon {
		t.Fatalf("Run() = %v, want ErrHorizon", err)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{1, 5, 10, 15} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	n, err := e.RunUntil(10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("RunUntil(10) fired %d, want 3", n)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %d, want 10", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	// Clock advances to the target even when the queue empties early.
	e2 := NewEngine()
	e2.RunUntil(42)
	if e2.Now() != 42 {
		t.Fatalf("empty RunUntil: Now() = %d, want 42", e2.Now())
	}
}

// RunUntil must enforce the same limits as Run: the horizon and the
// interrupt poll. Regression test — it used to honor neither.
func TestRunUntilHonorsHorizon(t *testing.T) {
	e := NewEngine()
	e.SetHorizon(100)
	fired := 0
	e.At(50, func() { fired++ })
	e.At(101, func() { fired++ })
	n, err := e.RunUntil(200)
	if err != ErrHorizon {
		t.Fatalf("RunUntil(200) err = %v, want ErrHorizon", err)
	}
	if n != 1 || fired != 1 {
		t.Fatalf("fired %d/%d events, want 1 (the beyond-horizon event must not run)", n, fired)
	}
}

func TestRunUntilHonorsInterrupt(t *testing.T) {
	e := NewEngine()
	stop := errors.New("stop")
	e.SetInterrupt(func() error { return stop })
	e.At(1, func() { t.Fatal("event fired past a failing interrupt") })
	if _, err := e.RunUntil(10); err != stop {
		t.Fatalf("RunUntil err = %v, want the interrupt error", err)
	}
}

func TestRunUntilHonorsStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func() { count++; e.Stop() })
	e.At(2, func() { count++ })
	if _, err := e.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("fired %d events, want 1 (Stop should halt RunUntil)", count)
	}
	if e.Now() != 1 {
		t.Fatalf("Now() = %d, want 1 (no clamp to target after Stop)", e.Now())
	}
}

// stepRecorder implements Stepper for typed-event tests.
type stepRecorder struct {
	args []uint64
	at   []Time
	e    *Engine
}

func (s *stepRecorder) OnStep(arg uint64) {
	s.args = append(s.args, arg)
	s.at = append(s.at, s.e.Now())
}

// deliverRecorder implements Receiver for typed-event tests.
type deliverRecorder struct {
	got []any
}

func (d *deliverRecorder) OnDeliver(p any) { d.got = append(d.got, p) }

func TestTypedEvents(t *testing.T) {
	e := NewEngine()
	s := &stepRecorder{e: e}
	d := &deliverRecorder{}
	e.AtStep(5, s, 7)
	e.AfterStep(2, s, 9)
	e.AtDeliver(3, d, "msg")
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.args) != 2 || s.args[0] != 9 || s.args[1] != 7 {
		t.Fatalf("step args = %v, want [9 7] (time order)", s.args)
	}
	if s.at[0] != 2 || s.at[1] != 5 {
		t.Fatalf("step times = %v, want [2 5]", s.at)
	}
	if len(d.got) != 1 || d.got[0] != "msg" {
		t.Fatalf("delivered = %v, want [msg]", d.got)
	}
}

// Typed events interleave with closures in strict (time, insertion) order.
func TestTypedAndClosureEventsInterleave(t *testing.T) {
	e := NewEngine()
	var order []string
	s := &stepRecorder{e: e}
	e.At(5, func() { order = append(order, "fn") })
	e.AtStep(5, s, 0)
	e.At(5, func() { order = append(order, "fn2") })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.at) != 1 || len(order) != 2 {
		t.Fatalf("typed=%d closures=%d, want 1 and 2", len(s.at), len(order))
	}
}

// Cancelled typed events must not fire, and their handles behave like
// closure handles.
func TestCancelTypedEvent(t *testing.T) {
	e := NewEngine()
	s := &stepRecorder{e: e}
	h := e.AtStep(5, s, 1)
	if !h.Cancel() {
		t.Fatal("Cancel returned false")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(s.args) != 0 {
		t.Fatal("cancelled typed event fired")
	}
}

// A handle to a fired event whose arena slot was recycled must not cancel
// the new occupant (generation check).
func TestStaleHandleAfterReuse(t *testing.T) {
	e := NewEngine()
	h1 := e.At(1, func() {})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	fired := false
	e.At(2, func() { fired = true }) // recycles h1's slot
	if h1.Cancel() {
		t.Fatal("stale handle cancelled a recycled slot")
	}
	if h1.Pending() {
		t.Fatal("stale handle reports pending")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

// The arena must actually recycle: a long chain of one-at-a-time events
// should not grow the pool beyond a handful of records.
func TestEventPoolRecycles(t *testing.T) {
	e := NewEngine()
	n := 0
	var step func()
	step = func() {
		n++
		if n < 10000 {
			e.After(1, step)
		}
	}
	e.At(0, step)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(e.pool); got > 4 {
		t.Fatalf("arena grew to %d records for a 1-deep chain, want <= 4", got)
	}
}

// Mass cancellation triggers the eager sweep so the heap shrinks instead of
// carrying dead entries to the end of the run.
func TestSweepDropsCancelledEntries(t *testing.T) {
	e := NewEngine()
	var handles []Handle
	for i := 0; i < 1000; i++ {
		handles = append(handles, e.At(Time(i+1), func() {}))
	}
	for _, h := range handles[:900] {
		h.Cancel()
	}
	if got := e.Pending(); got > 200 {
		t.Fatalf("Pending() = %d after cancelling 900 of 1000, want sweep to have dropped them", got)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Fired() != 100 {
		t.Fatalf("Fired() = %d, want the 100 live events", e.Fired())
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := Time(0); i < 10; i++ {
		e.At(i, func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Fired() != 10 {
		t.Fatalf("Fired() = %d, want 10", e.Fired())
	}
}

func TestCascadingEvents(t *testing.T) {
	// An event chain where each event schedules the next must run to
	// completion and keep the clock monotonic.
	e := NewEngine()
	var prev Time
	var steps int
	var step func()
	step = func() {
		if e.Now() < prev {
			t.Fatalf("clock went backwards: %d < %d", e.Now(), prev)
		}
		prev = e.Now()
		steps++
		if steps < 1000 {
			e.After(1, step)
		}
	}
	e.At(0, step)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != 1000 {
		t.Fatalf("steps = %d, want 1000", steps)
	}
	if e.Now() != 999 {
		t.Fatalf("final clock = %d, want 999", e.Now())
	}
}

// Property: for any set of timestamps, events fire in nondecreasing time
// order and all fire exactly once.
func TestQuickTimeOrdering(t *testing.T) {
	f := func(stamps []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, s := range stamps {
			at := Time(s)
			e.At(at, func() { fired = append(fired, at) })
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(fired) != len(stamps) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleavings of schedule/cancel never fire a cancelled
// event and always fire every non-cancelled one.
func TestQuickCancelSoundness(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		e := NewEngine()
		fired := make(map[int]bool)
		cancelled := make(map[int]bool)
		handles := make(map[int]Handle)
		for i := 0; i < int(n); i++ {
			i := i
			handles[i] = e.At(Time(rng.IntN(50)), func() { fired[i] = true })
		}
		for i := 0; i < int(n); i++ {
			if rng.IntN(2) == 0 {
				if handles[i].Cancel() {
					cancelled[i] = true
				}
			}
		}
		if err := e.Run(); err != nil {
			return false
		}
		for i := 0; i < int(n); i++ {
			if cancelled[i] == fired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Time {
		e := NewEngine()
		rng := rand.New(rand.NewPCG(1, 2))
		var log []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			log = append(log, e.Now())
			if depth < 6 {
				for i := 0; i < 3; i++ {
					e.After(Time(rng.IntN(10)), func() { spawn(depth + 1) })
				}
			}
		}
		e.At(0, func() { spawn(0) })
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestResourceNoContention(t *testing.T) {
	var r Resource
	done := r.Acquire(10, 5)
	if done != 15 {
		t.Fatalf("Acquire(10,5) = %d, want 15", done)
	}
	if r.Waited != 0 {
		t.Fatalf("Waited = %d, want 0", r.Waited)
	}
}

func TestResourceSerializes(t *testing.T) {
	var r Resource
	r.Acquire(0, 10)
	done := r.Acquire(3, 10)
	if done != 20 {
		t.Fatalf("second Acquire = %d, want 20", done)
	}
	if r.Waited != 7 {
		t.Fatalf("Waited = %d, want 7", r.Waited)
	}
	if r.Busy != 20 {
		t.Fatalf("Busy = %d, want 20", r.Busy)
	}
	if r.Served != 2 {
		t.Fatalf("Served = %d, want 2", r.Served)
	}
}

func TestResourceIdleGap(t *testing.T) {
	var r Resource
	r.Acquire(0, 5)
	done := r.Acquire(100, 5)
	if done != 105 {
		t.Fatalf("Acquire after idle gap = %d, want 105", done)
	}
	if r.Waited != 0 {
		t.Fatalf("Waited = %d, want 0", r.Waited)
	}
}

func TestResourceUtilization(t *testing.T) {
	var r Resource
	r.Acquire(0, 25)
	r.Acquire(50, 25)
	if u := r.Utilization(100); u != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Fatalf("Utilization(0) = %v, want 0", u)
	}
}

func TestResourceReset(t *testing.T) {
	var r Resource
	r.Acquire(0, 5)
	r.Reset()
	if r.FreeAt() != 0 || r.Busy != 0 || r.Served != 0 {
		t.Fatal("Reset did not clear resource")
	}
}

// Property: completion times returned by a Resource are nondecreasing when
// requests arrive in nondecreasing order, and completion >= arrival + hold.
func TestQuickResourceMonotone(t *testing.T) {
	f := func(arrivals []uint8, hold uint8) bool {
		var r Resource
		at := Time(0)
		last := Time(0)
		h := Time(hold%16) + 1
		for _, a := range arrivals {
			at += Time(a % 8)
			done := r.Acquire(at, h)
			if done < at+h || done < last {
				return false
			}
			last = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		var step func()
		n := 0
		step = func() {
			n++
			if n < 1000 {
				e.After(1, step)
			}
		}
		e.At(0, step)
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
