package sim

// Resource models a serially-reusable hardware resource (a switch output
// port, a memory module's service port, a directory controller). Requests
// are served in arrival order; each occupies the resource for a fixed or
// per-request duration. Because the paper assumes infinite buffering at
// every switch (§5.2), a Resource never rejects work — it only delays it.
type Resource struct {
	free Time // instant the resource next becomes idle

	// Busy accumulates total occupied cycles, for utilization metrics.
	Busy Time
	// Waited accumulates total queueing delay imposed on requests.
	Waited Time
	// Served counts requests.
	Served uint64
}

// Acquire reserves the resource for hold cycles starting no earlier than
// `at`, and returns the time at which the request *completes* (queueing
// delay included). The caller is responsible for scheduling whatever happens
// at the returned instant.
func (r *Resource) Acquire(at, hold Time) Time {
	start := at
	if r.free > start {
		start = r.free
	}
	r.Waited += start - at
	r.Busy += hold
	r.Served++
	r.free = start + hold
	return r.free
}

// FreeAt returns the instant the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.free }

// Reset clears both the reservation horizon and the statistics.
func (r *Resource) Reset() { *r = Resource{} }

// Utilization returns Busy divided by the elapsed horizon (0 if horizon is
// zero).
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon == 0 {
		return 0
	}
	return float64(r.Busy) / float64(horizon)
}
