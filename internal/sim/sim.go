// Package sim provides the discrete-event simulation kernel underlying the
// multiprocessor model.
//
// The kernel is deliberately minimal and deterministic: a single logical
// clock measured in machine cycles, a binary-heap event queue ordered by
// (time, insertion sequence), and no goroutines. All simulated components
// (processors, caches, directories, network switches) are passive state
// machines that interact exclusively by scheduling events. Two runs with the
// same seed and configuration produce bit-identical results, which the test
// suite verifies.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is the simulation clock, measured in processor cycles.
type Time uint64

// Infinity is a sentinel Time greater than any reachable simulation instant.
const Infinity Time = math.MaxUint64

// Event is a scheduled callback. Events carry no payload of their own;
// closures capture whatever state they need.
type Event func()

// item is a heap entry. seq breaks ties so that events scheduled for the same
// cycle fire in insertion order, keeping the simulation deterministic.
type item struct {
	at   Time
	seq  uint64
	fn   Event
	dead bool // cancelled
	idx  int  // heap index, maintained by eventHeap
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	it := x.(*item)
	it.idx = len(*h)
	*h = append(*h, it)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.idx = -1
	*h = old[:n-1]
	return it
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ it *item }

// Cancel removes the event from the schedule. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel reports whether the event was
// still pending.
func (h Handle) Cancel() bool {
	if h.it == nil || h.it.dead || h.it.idx < 0 {
		return false
	}
	h.it.dead = true
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h Handle) Pending() bool {
	return h.it != nil && !h.it.dead && h.it.idx >= 0
}

// Engine is the event loop. The zero value is not usable; call NewEngine.
type Engine struct {
	now       Time
	seq       uint64
	queue     eventHeap
	fired     uint64
	stopped   bool
	limit     Time // horizon; Infinity when unset
	interrupt func() error
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{limit: Infinity}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still scheduled (including cancelled
// entries not yet drained).
func (e *Engine) Pending() int { return len(e.queue) }

// SetHorizon establishes a hard time limit; Run returns ErrHorizon when the
// clock would pass it. A horizon of Infinity (the default) disables the
// limit.
func (e *Engine) SetHorizon(t Time) { e.limit = t }

// ErrHorizon is returned by Run when the simulation horizon is exceeded,
// which almost always indicates livelock (for example a lock that is never
// released).
var ErrHorizon = errors.New("sim: horizon exceeded")

// interruptEvery is how many fired events pass between interrupt polls.
// Polling per event would put a function call (and, for context-backed
// interrupts, a channel select) on the hot path; every 1024 events keeps
// the overhead unmeasurable while still bounding cancellation latency to
// well under a millisecond of wall time.
const interruptEvery = 1024

// SetInterrupt installs a poll function consulted periodically during Run;
// a non-nil return stops the loop and Run returns that error. The poll is
// deliberately coarse (every 1024 events) so it stays off the hot path.
// Pass nil to remove the interrupt. Interrupts do not affect determinism:
// they can only end a run early, never reorder events.
func (e *Engine) SetInterrupt(fn func() error) { e.interrupt = fn }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug, never a recoverable condition.
func (e *Engine) At(t Time, fn Event) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	if fn == nil {
		panic("sim: nil event")
	}
	it := &item{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, it)
	return Handle{it}
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn Event) Handle {
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the current event completes. Intended for use
// from inside event callbacks (for example when a workload detects
// completion).
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains, Stop is called, the horizon
// is exceeded, or an installed interrupt reports an error. It returns nil
// on a drained queue or explicit Stop.
func (e *Engine) Run() error {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.interrupt != nil && e.fired%interruptEvery == 0 {
			if err := e.interrupt(); err != nil {
				return err
			}
		}
		it := heap.Pop(&e.queue).(*item)
		if it.dead {
			continue
		}
		if it.at > e.limit {
			e.now = it.at
			return ErrHorizon
		}
		e.now = it.at
		e.fired++
		it.fn()
	}
	return nil
}

// RunUntil executes events with timestamps <= t, leaving later events queued
// and advancing the clock to exactly t if the queue empties earlier. It
// returns the number of events fired.
func (e *Engine) RunUntil(t Time) uint64 {
	start := e.fired
	for len(e.queue) > 0 {
		top := e.queue[0]
		if top.dead {
			heap.Pop(&e.queue)
			continue
		}
		if top.at > t {
			break
		}
		heap.Pop(&e.queue)
		e.now = top.at
		e.fired++
		top.fn()
	}
	if e.now < t {
		e.now = t
	}
	return e.fired - start
}
