// Package sim provides the discrete-event simulation kernel underlying the
// multiprocessor model.
//
// The kernel is deliberately minimal and deterministic: a single logical
// clock measured in machine cycles, a binary-heap event queue ordered by
// (time, insertion sequence), and no goroutines. All simulated components
// (processors, caches, directories, network switches) are passive state
// machines that interact exclusively by scheduling events. Two runs with the
// same seed and configuration produce bit-identical results, which the test
// suite verifies.
//
// The queue is built for throughput: event records live in a pooled arena
// and are recycled through a free list, the heap itself is a slice of arena
// indices (no per-event allocation, no interface boxing), and the two event
// shapes that dominate a simulation — resuming a processor and delivering a
// network message — are typed (Stepper, Receiver) so the hot path allocates
// no closures. Cancelled entries are dropped lazily at pop time, with an
// eager sweep once they outnumber live ones.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// Time is the simulation clock, measured in processor cycles.
type Time uint64

// Infinity is a sentinel Time greater than any reachable simulation instant.
const Infinity Time = math.MaxUint64

// Event is a scheduled callback. Events carry no payload of their own;
// closures capture whatever state they need. For the hot event shapes,
// prefer the typed AtStep/AtDeliver, which allocate nothing.
type Event func()

// Stepper is the typed form of the "resume processor" event shape: the
// kernel calls OnStep with the argument given at scheduling time instead of
// invoking a closure.
type Stepper interface {
	OnStep(arg uint64)
}

// Receiver is the typed form of the "deliver message" event shape: the
// kernel calls OnDeliver with the payload given at scheduling time.
type Receiver interface {
	OnDeliver(payload any)
}

// eventKind discriminates the union held in a record.
type eventKind uint8

const (
	evFunc eventKind = iota
	evStep
	evDeliver
)

// record is one pooled event. Records live in the engine's arena and are
// recycled through a free list; gen invalidates Handles to recycled slots.
// seq breaks (at) ties so that events scheduled for the same cycle fire in
// insertion order, keeping the simulation deterministic. lane is the
// scheduling lane of a Parallel run (see pdes.go): a standalone engine
// leaves it 0, so the legacy order (time, jitter, sequence) is unchanged.
type record struct {
	at      Time
	seq     uint64
	jit     uint64
	fn      Event
	step    Stepper
	recv    Receiver
	payload any
	arg     uint64
	lane    int32
	gen     uint32
	kind    eventKind
	dead    bool
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct {
	e   *Engine
	id  int32
	gen uint32
}

// Cancel removes the event from the schedule. Cancelling an already-fired or
// already-cancelled event is a no-op. Cancel reports whether the event was
// still pending. The entry is dropped lazily; once dead entries outnumber
// live ones the queue is swept eagerly.
func (h Handle) Cancel() bool {
	if h.e == nil {
		return false
	}
	r := &h.e.pool[h.id]
	if r.gen != h.gen || r.dead {
		return false
	}
	r.dead = true
	r.fn, r.step, r.recv, r.payload = nil, nil, nil, nil
	h.e.dead++
	h.e.maybeSweep()
	return true
}

// Pending reports whether the event has neither fired nor been cancelled.
func (h Handle) Pending() bool {
	if h.e == nil {
		return false
	}
	r := &h.e.pool[h.id]
	return r.gen == h.gen && !r.dead
}

// Engine is the event loop. The zero value is not usable; call NewEngine.
type Engine struct {
	now  Time
	seq  uint64
	pool []record // event arena; heap and free hold indices into it
	heap []int32  // binary min-heap ordered by (at, seq)
	free []int32  // recycled arena slots
	dead int      // cancelled entries still in heap

	fired     uint64
	stopped   bool
	limit     Time // horizon; Infinity when unset
	interrupt func() error

	jitterOn bool
	jrng     uint64 // splitmix64 state; advanced once per scheduled event

	// lane is this engine's lane id when it belongs to a Parallel run
	// (pdes.go); every locally scheduled record is stamped with it. A
	// standalone engine keeps lane 0, which sorts like the legacy
	// (time, jitter, sequence) key.
	lane int32
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{limit: Infinity}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still scheduled (including cancelled
// entries not yet swept).
func (e *Engine) Pending() int { return len(e.heap) }

// SetHorizon establishes a hard time limit. The horizon is inclusive:
// events with timestamps <= t still fire, and Run or RunUntil return
// ErrHorizon only when the next live *event* lies strictly beyond it.
// RunUntil's trailing idle advance (moving the clock to its target time
// when the queue empties early) is not horizon-checked — a horizon bounds
// event execution, not the passage of idle time — so RunUntil(u) with
// u > t can leave the clock past the horizon without an error if no event
// beyond t was actually scheduled. A horizon of Infinity (the default)
// disables the limit.
func (e *Engine) SetHorizon(t Time) { e.limit = t }

// ErrHorizon is returned when the simulation horizon is exceeded, which
// almost always indicates livelock (for example a lock that is never
// released).
var ErrHorizon = errors.New("sim: horizon exceeded")

// interruptEvery is how many fired events pass between interrupt polls.
// Polling per event would put a function call (and, for context-backed
// interrupts, a channel select) on the hot path; every 1024 events keeps
// the overhead unmeasurable while still bounding cancellation latency to
// well under a millisecond of wall time.
const interruptEvery = 1024

// SetInterrupt installs a poll function consulted periodically during Run
// and RunUntil; a non-nil return stops the loop, which returns that error.
// The poll is deliberately coarse (every 1024 events) so it stays off the
// hot path. Pass nil to remove the interrupt. Interrupts do not affect
// determinism: they can only end a run early, never reorder events.
func (e *Engine) SetInterrupt(fn func() error) { e.interrupt = fn }

// SetJitter enables seeded schedule jitter: every event scheduled from now
// on gets a pseudo-random tie-break key that orders it among events with the
// same timestamp. Time ordering is untouched — jitter only permutes
// same-cycle events, exploring schedules the (time, insertion order) default
// never reaches. A given seed yields one fixed, reproducible permutation;
// seed 0 disables jitter, restoring the exact default order, so golden
// digests recorded without jitter stay bit-identical.
//
// Call SetJitter before scheduling: events already queued keep a zero jitter
// key and sort ahead of any jittered event at the same cycle.
func (e *Engine) SetJitter(seed uint64) {
	e.jitterOn = seed != 0
	e.jrng = seed
}

// nextJit advances the jitter PRNG (splitmix64) one step.
func (e *Engine) nextJit() uint64 {
	e.jrng += 0x9e3779b97f4a7c15
	z := e.jrng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// less orders heap entries by (time, jitter, lane, sequence). With jitter
// off every jit is zero, and in a standalone engine every lane is zero, so
// the order degenerates to the legacy (time, seq). Under a Parallel run the
// (lane, seq) pair is the scheduling lane and that lane's local sequence
// counter, which makes the key a total order that no interleaving of lane
// execution can perturb. seq keeps the key unique within a lane, so the pop
// order is independent of the heap's internal arrangement.
func (e *Engine) less(a, b int32) bool {
	ra, rb := &e.pool[a], &e.pool[b]
	if ra.at != rb.at {
		return ra.at < rb.at
	}
	if ra.jit != rb.jit {
		return ra.jit < rb.jit
	}
	if ra.lane != rb.lane {
		return ra.lane < rb.lane
	}
	return ra.seq < rb.seq
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	id := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !e.less(id, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = id
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	id := h[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && e.less(h[r], h[c]) {
			c = r
		}
		if !e.less(h[c], id) {
			break
		}
		h[i] = h[c]
		i = c
	}
	h[i] = id
}

// pop removes and returns the earliest entry's arena index.
func (e *Engine) pop() int32 {
	h := e.heap
	n := len(h) - 1
	id := h[0]
	h[0] = h[n]
	e.heap = h[:n]
	if n > 0 {
		e.siftDown(0)
	}
	return id
}

// schedule allocates a record (recycling a free slot when one exists),
// stamps it, and pushes it onto the heap. The returned pointer is valid
// until the next arena append; callers fill the payload immediately.
func (e *Engine) schedule(t Time, kind eventKind) (int32, *record) {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %d before now %d", t, e.now))
	}
	var id int32
	if n := len(e.free); n > 0 {
		id = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.pool = append(e.pool, record{})
		id = int32(len(e.pool) - 1)
	}
	r := &e.pool[id]
	r.at, r.seq, r.kind, r.dead = t, e.seq, kind, false
	r.lane = e.lane
	r.jit = 0
	if e.jitterOn {
		r.jit = e.nextJit()
	}
	e.seq++
	e.heap = append(e.heap, id)
	e.siftUp(len(e.heap) - 1)
	return id, r
}

// release recycles a record's arena slot and invalidates its handles.
func (e *Engine) release(id int32) {
	r := &e.pool[id]
	r.gen++
	r.fn, r.step, r.recv, r.payload = nil, nil, nil, nil
	e.free = append(e.free, id)
}

// maybeSweep eagerly drops cancelled entries once they outnumber live ones,
// so a cancel-heavy workload cannot grow the heap without bound. The sweep
// filters the index slice and re-heapifies; (at, seq) keys are unique, so
// the pop order is unchanged.
func (e *Engine) maybeSweep() {
	if e.dead <= len(e.heap)/2 || e.dead < 64 {
		return
	}
	live := e.heap[:0]
	for _, id := range e.heap {
		if e.pool[id].dead {
			e.release(id)
			continue
		}
		live = append(live, id)
	}
	e.heap = live
	for i := len(live)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
	e.dead = 0
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a model bug, never a recoverable condition.
func (e *Engine) At(t Time, fn Event) Handle {
	if fn == nil {
		panic("sim: nil event")
	}
	id, r := e.schedule(t, evFunc)
	r.fn = fn
	return Handle{e, id, r.gen}
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn Event) Handle {
	return e.At(e.now+d, fn)
}

// AtStep schedules s.OnStep(arg) at absolute time t without allocating: the
// typed form of the resume-processor event shape.
func (e *Engine) AtStep(t Time, s Stepper, arg uint64) Handle {
	if s == nil {
		panic("sim: nil stepper")
	}
	id, r := e.schedule(t, evStep)
	r.step, r.arg = s, arg
	return Handle{e, id, r.gen}
}

// AfterStep schedules s.OnStep(arg) d cycles from now.
func (e *Engine) AfterStep(d Time, s Stepper, arg uint64) Handle {
	return e.AtStep(e.now+d, s, arg)
}

// AtDeliver schedules rcv.OnDeliver(payload) at absolute time t without
// allocating a closure: the typed form of the message-delivery event shape.
func (e *Engine) AtDeliver(t Time, rcv Receiver, payload any) Handle {
	if rcv == nil {
		panic("sim: nil receiver")
	}
	id, r := e.schedule(t, evDeliver)
	r.recv, r.payload = rcv, payload
	return Handle{e, id, r.gen}
}

// Stop makes Run (or RunUntil) return after the current event completes.
// Intended for use from inside event callbacks (for example when a workload
// detects completion).
func (e *Engine) Stop() { e.stopped = true }

// fire executes one live event. The record is released before the callback
// runs, so events scheduled by the callback can recycle its slot.
func (e *Engine) fire(id int32) {
	r := &e.pool[id]
	kind := r.kind
	fn, step, recv := r.fn, r.step, r.recv
	payload, arg := r.payload, r.arg
	e.release(id)
	e.fired++
	switch kind {
	case evFunc:
		fn()
	case evStep:
		step.OnStep(arg)
	default:
		recv.OnDeliver(payload)
	}
}

// Run executes events until the queue drains, Stop is called, the horizon
// is exceeded, or an installed interrupt reports an error. It returns nil
// on a drained queue or explicit Stop.
func (e *Engine) Run() error {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		if e.interrupt != nil && e.fired%interruptEvery == 0 {
			if err := e.interrupt(); err != nil {
				return err
			}
		}
		id := e.pop()
		r := &e.pool[id]
		if r.dead {
			e.dead--
			e.release(id)
			continue
		}
		if r.at > e.limit {
			e.now = r.at
			e.release(id)
			return ErrHorizon
		}
		e.now = r.at
		e.fire(id)
	}
	return nil
}

// RunUntil executes events with timestamps <= t, leaving later events queued
// and advancing the clock to exactly t if the queue empties earlier. It
// returns the number of events fired. RunUntil stops on Stop, polls any
// installed interrupt, and returns ErrHorizon when the next event within its
// window lies strictly beyond the horizon. The final idle advance to t is
// exempt from the horizon check (see SetHorizon): only firing an event past
// the limit is an error, so RunUntil(t) with t beyond the horizon returns
// nil as long as every queued event up to t is within it.
func (e *Engine) RunUntil(t Time) (uint64, error) {
	e.stopped = false
	start := e.fired
	for len(e.heap) > 0 && !e.stopped {
		if e.interrupt != nil && e.fired%interruptEvery == 0 {
			if err := e.interrupt(); err != nil {
				return e.fired - start, err
			}
		}
		top := e.heap[0]
		r := &e.pool[top]
		if r.dead {
			e.pop()
			e.dead--
			e.release(top)
			continue
		}
		if r.at > t {
			break
		}
		if r.at > e.limit {
			e.pop()
			e.now = r.at
			e.release(top)
			return e.fired - start, ErrHorizon
		}
		e.pop()
		e.now = r.at
		e.fire(top)
	}
	if e.now < t && t != Infinity && !e.stopped {
		e.now = t
	}
	return e.fired - start, nil
}
