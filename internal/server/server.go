package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ssmp/internal/metrics"
)

// Config parameterizes the daemon.
type Config struct {
	// Workers is the worker-pool size; 0 means GOMAXPROCS. Each worker
	// runs one simulation at a time (a simulation is itself a set of
	// goroutines, but only one is runnable at any instant, so a worker
	// occupies roughly one core).
	Workers int
	// QueueDepth bounds the number of accepted-but-not-running jobs;
	// 0 means 4x workers. Beyond it, submissions get 429.
	QueueDepth int
	// CacheEntries bounds the result cache; 0 means 4096. Negative
	// disables caching.
	CacheEntries int
	// DefaultTimeout applies to jobs that specify none; 0 means 60s.
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested timeout; 0 means 10m.
	MaxTimeout time.Duration
	// Log, when non-nil, receives request and lifecycle lines.
	Log *log.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	return c
}

// inflight tracks one running job so identical concurrent requests share a
// single simulation instead of racing duplicates through the pool.
type inflight struct {
	done chan struct{}
	res  any
	err  error
}

// Server is the ssmpd daemon: HTTP handlers over a worker pool and a
// content-addressed result cache.
type Server struct {
	cfg   Config
	pool  *pool
	cache *resultCache
	mux   *http.ServeMux
	start time.Time

	mu       sync.RWMutex // guards draining and inflight
	draining bool
	inflight map[string]*inflight

	accepted  atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	timedOut  atomic.Uint64
	rejected  atomic.Uint64

	// Simulation-throughput observability. simEvents and simBusyNS cover
	// executed sim jobs only (figures do not report event counts), so
	// their quotient is the kernel's simulated-events-per-wall-second.
	// jobAllocs is a process-wide heap-allocation (Mallocs) delta sampled
	// around each executed job; with overlapping jobs it attributes
	// concurrent allocations to whichever job is being sampled, so the
	// per-job mean is approximate under load.
	simEvents   atomic.Uint64
	simBusyNS   atomic.Int64
	jobAllocs   atomic.Uint64
	jobsSampled atomic.Uint64

	// Litmus-endpoint observability. litmusStates and litmusBusyNS cover
	// executed (non-cached) litmus jobs only, so their quotient is the
	// exploration engine's states-per-wall-second as this daemon sees it.
	litmusJobs      atomic.Uint64
	litmusCacheHits atomic.Uint64
	litmusExecuted  atomic.Uint64
	litmusStates    atomic.Uint64
	litmusBusyNS    atomic.Int64

	statsMu sync.Mutex
	latency metrics.Histogram     // wall milliseconds per executed job
	msgs    metrics.Collector     // simulated messages, aggregated over runs
	faults  metrics.FaultCounters // fault/recovery counters, aggregated over runs
	rmr     metrics.RMRCounters   // remote-memory-reference counters, aggregated over runs
}

// New builds a Server and its routes.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		pool:     newPool(cfg.Workers, cfg.QueueDepth),
		cache:    newResultCache(cfg.CacheEntries),
		mux:      http.NewServeMux(),
		start:    time.Now(),
		inflight: make(map[string]*inflight),
	}
	s.mux.HandleFunc("POST /v1/sim", s.handleSim)
	s.mux.HandleFunc("POST /v1/figure", s.handleFigurePost)
	s.mux.HandleFunc("GET /v1/figure/{n}", s.handleFigureGet)
	s.mux.HandleFunc("POST /v1/kv", s.handleKV)
	s.mux.HandleFunc("POST /v1/litmus", s.handleLitmusPost)
	s.mux.HandleFunc("GET /v1/litmus", s.handleLitmusList)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// Shutdown drains the daemon: new jobs are refused with 503, queued and
// running jobs finish, and the worker pool exits. It returns ctx.Err() if
// the drain outlives ctx (workers keep draining in the background).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if already {
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.pool.close()
		close(done)
	}()
	select {
	case <-done:
		s.logf("ssmpd: drained, all workers idle")
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// JobResponse is the envelope every job endpoint returns.
type JobResponse struct {
	// Key is the job's content address; resubmitting the same spec hits
	// the cache under this key.
	Key string `json:"key"`
	// Cached reports whether the payload was served from the cache.
	Cached bool `json:"cached"`
	// ElapsedMS is this request's service time (0 is possible for hits).
	ElapsedMS int64 `json:"elapsed_ms"`
	// Result is set for sim jobs, Figure for figure jobs.
	Result any `json:"result,omitempty"`
	Figure any `json:"figure,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// timeout resolves a request's timeout_ms against the server's bounds.
func (s *Server) timeout(ms int64) time.Duration {
	d := s.cfg.DefaultTimeout
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d
}

// execute resolves one job: cache, then in-flight dedup, then the pool.
// It returns the payload, whether it came from the cache, and the HTTP
// status to use on error.
func (s *Server) execute(ctx context.Context, key string, run func(context.Context) (any, error)) (any, bool, int, error) {
	if res, ok := s.cache.get(key); ok {
		return res, true, 0, nil
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.rejected.Add(1)
		return nil, false, http.StatusServiceUnavailable, errors.New("server draining")
	}
	if fl, ok := s.inflight[key]; ok {
		// Identical job already running: share its outcome.
		s.mu.Unlock()
		select {
		case <-fl.done:
			if fl.err != nil {
				return nil, false, errStatus(fl.err), fl.err
			}
			return fl.res, false, 0, nil
		case <-ctx.Done():
			return nil, false, errStatus(ctx.Err()), ctx.Err()
		}
	}
	fl := &inflight{done: make(chan struct{})}
	s.inflight[key] = fl
	t := &task{ctx: ctx, run: run, done: make(chan struct{})}
	// Submit under the same critical section that checked draining: the
	// pool's queue must not be closed between the check and the send.
	err := s.pool.submit(t)
	if err != nil {
		delete(s.inflight, key)
	}
	s.mu.Unlock()
	if err != nil {
		s.rejected.Add(1)
		return nil, false, http.StatusTooManyRequests, err
	}
	s.accepted.Add(1)

	started := time.Now()
	<-t.done
	s.mu.Lock()
	delete(s.inflight, key)
	s.mu.Unlock()
	fl.res, fl.err = t.res, t.err
	close(fl.done)

	if t.err != nil {
		if errors.Is(t.err, context.DeadlineExceeded) || errors.Is(t.err, context.Canceled) {
			s.timedOut.Add(1)
		} else {
			s.failed.Add(1)
		}
		return nil, false, errStatus(t.err), t.err
	}
	s.completed.Add(1)
	s.statsMu.Lock()
	s.latency.Observe(uint64(time.Since(started).Milliseconds()))
	s.statsMu.Unlock()
	s.cache.put(key, t.res)
	return t.res, false, 0, nil
}

// errStatus maps a job error to an HTTP status: deadline and cancellation
// to 504, anything else (deadlock, horizon) to 422 — the request was
// well-formed, the simulation it named failed.
func errStatus(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	return http.StatusUnprocessableEntity
}

// SimRequest is the POST /v1/sim body: a spec plus request-level options
// that do not participate in the cache key.
type SimRequest struct {
	SimSpec
	// TimeoutMS bounds this job's execution (capped by the server's
	// MaxTimeout). It addresses the request, not the result, so it is
	// excluded from the cache key.
	TimeoutMS int64 `json:"timeout_ms"`
}

func (s *Server) handleSim(w http.ResponseWriter, r *http.Request) {
	var req SimRequest
	if err := decodeBody(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if err := req.SimSpec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	key := req.SimSpec.Key()
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()

	started := time.Now()
	res, cached, status, err := s.execute(ctx, key, func(ctx context.Context) (any, error) {
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		jobStart := time.Now()
		out, coll, err := req.SimSpec.run(ctx)
		elapsed := time.Since(jobStart)
		runtime.ReadMemStats(&m1)
		if err != nil {
			return nil, err
		}
		s.simEvents.Add(out.Events)
		s.simBusyNS.Add(int64(elapsed))
		s.jobAllocs.Add(m1.Mallocs - m0.Mallocs)
		s.jobsSampled.Add(1)
		s.statsMu.Lock()
		s.msgs.Add(coll)
		if out.Faults != nil {
			s.faults.Add(*out.Faults)
		}
		if out.RMR != nil {
			s.rmr.Add(*out.RMR)
		}
		s.statsMu.Unlock()
		return out, nil
	})
	if err != nil {
		s.jobError(w, r, status, key, err)
		return
	}
	s.logf("ssmpd: sim %s cached=%v elapsed=%s", key[:22], cached, time.Since(started))
	writeJSON(w, http.StatusOK, JobResponse{
		Key:       key,
		Cached:    cached,
		ElapsedMS: time.Since(started).Milliseconds(),
		Result:    res,
	})
}

func (s *Server) handleFigurePost(w http.ResponseWriter, r *http.Request) {
	var req struct {
		FigureSpec
		TimeoutMS int64 `json:"timeout_ms"`
	}
	if err := decodeBody(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	s.serveFigure(w, r, req.FigureSpec, req.TimeoutMS)
}

// handleFigureGet serves GET /v1/figure/{n}?procs=2,4,8&episodes=3&...
// so a figure is one curl away.
func (s *Server) handleFigureGet(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "figure number %q is not an integer", r.PathValue("n"))
		return
	}
	spec := FigureSpec{Figure: n}
	q := r.URL.Query()
	var timeoutMS int64
	for param, set := range map[string]func(string) error{
		"procs": func(v string) error {
			for _, part := range strings.Split(v, ",") {
				p, err := strconv.Atoi(strings.TrimSpace(part))
				if err != nil {
					return err
				}
				spec.Procs = append(spec.Procs, p)
			}
			return nil
		},
		"episodes": func(v string) (err error) { spec.Episodes, err = strconv.Atoi(v); return },
		"tasks":    func(v string) (err error) { spec.Tasks, err = strconv.Atoi(v); return },
		"spawn_prob": func(v string) error {
			p, err := strconv.ParseFloat(v, 64)
			spec.SpawnProb = &p
			return err
		},
		"seed": func(v string) error {
			sd, err := strconv.ParseUint(v, 10, 64)
			spec.Seed = &sd
			return err
		},
		"timeout_ms": func(v string) (err error) { timeoutMS, err = strconv.ParseInt(v, 10, 64); return },
	} {
		if v := q.Get(param); v != "" {
			if err := set(v); err != nil {
				writeError(w, http.StatusBadRequest, "bad %s %q", param, v)
				return
			}
		}
	}
	s.serveFigure(w, r, spec, timeoutMS)
}

func (s *Server) serveFigure(w http.ResponseWriter, r *http.Request, spec FigureSpec, timeoutMS int64) {
	if err := spec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	key := spec.Key()
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(timeoutMS))
	defer cancel()

	started := time.Now()
	res, cached, status, err := s.execute(ctx, key, func(ctx context.Context) (any, error) {
		return spec.run(ctx)
	})
	if err != nil {
		s.jobError(w, r, status, key, err)
		return
	}
	s.logf("ssmpd: figure %d %s cached=%v elapsed=%s", spec.Figure, key[:22], cached, time.Since(started))
	writeJSON(w, http.StatusOK, JobResponse{
		Key:       key,
		Cached:    cached,
		ElapsedMS: time.Since(started).Milliseconds(),
		Figure:    res,
	})
}

func (s *Server) jobError(w http.ResponseWriter, r *http.Request, status int, key string, err error) {
	if status == http.StatusTooManyRequests {
		// The queue is full of simulations; a second is a reasonable
		// spacing for the next attempt.
		w.Header().Set("Retry-After", "1")
	}
	s.logf("ssmpd: %s %s -> %d: %v", r.Method, r.URL.Path, status, err)
	writeJSON(w, status, errorResponse{Error: err.Error()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	status := http.StatusOK
	state := "ok"
	if draining {
		// Draining means "stop sending traffic here": load balancers
		// read 503 as unhealthy while in-flight work completes.
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, map[string]any{"status": state, "uptime_s": time.Since(s.start).Seconds()})
}

// MetricsSnapshot is the GET /metrics payload.
type MetricsSnapshot struct {
	UptimeS float64 `json:"uptime_s"`
	Queue   struct {
		Depth    int `json:"depth"`
		Capacity int `json:"capacity"`
	} `json:"queue"`
	Workers struct {
		Count int   `json:"count"`
		Busy  int64 `json:"busy"`
	} `json:"workers"`
	Cache cacheStats `json:"cache"`
	Jobs  struct {
		Accepted  uint64 `json:"accepted"`
		Completed uint64 `json:"completed"`
		Failed    uint64 `json:"failed"`
		TimedOut  uint64 `json:"timed_out"`
		Rejected  uint64 `json:"rejected"`
	} `json:"jobs"`
	// Sim summarizes kernel throughput over executed sim jobs.
	Sim struct {
		// EventsTotal is the number of simulation events executed.
		EventsTotal uint64 `json:"events_total"`
		// BusyWallS is wall-clock time spent inside sim runs.
		BusyWallS float64 `json:"busy_wall_s"`
		// EventsPerWallSecond is the kernel's aggregate throughput.
		EventsPerWallSecond float64 `json:"events_per_wall_second"`
		// JobsSampled counts the executed jobs behind MeanJobAllocs.
		JobsSampled uint64 `json:"jobs_sampled"`
		// MeanJobAllocs is the mean process-wide heap-allocation delta
		// per executed job (approximate when jobs overlap).
		MeanJobAllocs float64 `json:"mean_job_allocs"`
	} `json:"sim"`
	// Litmus summarizes the /v1/litmus endpoint and its exploration
	// engine.
	Litmus struct {
		// Jobs counts litmus requests resolved (cache hits included).
		Jobs uint64 `json:"jobs"`
		// Executed counts jobs that ran the checker (cache misses).
		Executed uint64 `json:"executed"`
		// CacheHits counts jobs served from the result cache.
		CacheHits uint64 `json:"cache_hits"`
		// StatesTotal is the number of abstract states enumerated.
		StatesTotal uint64 `json:"states_total"`
		// EnumBusyWallS is wall-clock time spent in the enumerator.
		EnumBusyWallS float64 `json:"enum_busy_wall_s"`
		// StatesPerWallSecond is the engine's aggregate throughput.
		StatesPerWallSecond float64 `json:"states_per_wall_second"`
	} `json:"litmus"`
	// Latency summarizes executed-job wall time: count, mean, and the
	// p50/p99 quantiles (upper bounds at the histogram's power-of-two
	// bucket resolution). Cache hits are not samples.
	Latency LatencySummary `json:"latency"`
	// LatencyMS is the executed-job wall-time histogram
	// (metrics.Histogram's JSON form; cache hits are not samples).
	LatencyMS json.RawMessage `json:"latency_ms"`
	// SimMessages aggregates simulated network messages over every run
	// (metrics.Collector's JSON form).
	SimMessages json.RawMessage `json:"sim_messages"`
	// Faults aggregates fault-plane injections and transport recovery
	// over executed sim jobs that enabled fault injection.
	Faults metrics.FaultCounters `json:"faults"`
	// RMR aggregates remote-memory-reference classification (local vs
	// remote shared references, plus writebacks) over executed sim jobs.
	RMR metrics.RMRCounters `json:"rmr"`
}

// LatencySummary is the quantile summary of a latency histogram.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  uint64  `json:"p50_ms"`
	P99MS  uint64  `json:"p99_ms"`
	MaxMS  uint64  `json:"max_ms"`
}

// summarize reduces a histogram to its headline quantiles.
func summarize(h *metrics.Histogram) LatencySummary {
	return LatencySummary{
		Count:  h.Count(),
		MeanMS: h.Mean(),
		P50MS:  h.Quantile(0.50),
		P99MS:  h.Quantile(0.99),
		MaxMS:  h.Max(),
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var snap MetricsSnapshot
	snap.UptimeS = time.Since(s.start).Seconds()
	snap.Queue.Depth = s.pool.depth()
	snap.Queue.Capacity = s.pool.capacity()
	snap.Workers.Count = s.pool.workers
	snap.Workers.Busy = s.pool.busy.Load()
	snap.Cache = s.cache.stats()
	snap.Jobs.Accepted = s.accepted.Load()
	snap.Jobs.Completed = s.completed.Load()
	snap.Jobs.Failed = s.failed.Load()
	snap.Jobs.TimedOut = s.timedOut.Load()
	snap.Jobs.Rejected = s.rejected.Load()
	snap.Sim.EventsTotal = s.simEvents.Load()
	snap.Sim.BusyWallS = float64(s.simBusyNS.Load()) / float64(time.Second)
	if snap.Sim.BusyWallS > 0 {
		snap.Sim.EventsPerWallSecond = float64(snap.Sim.EventsTotal) / snap.Sim.BusyWallS
	}
	snap.Sim.JobsSampled = s.jobsSampled.Load()
	if n := snap.Sim.JobsSampled; n > 0 {
		snap.Sim.MeanJobAllocs = float64(s.jobAllocs.Load()) / float64(n)
	}
	snap.Litmus.Jobs = s.litmusJobs.Load()
	snap.Litmus.Executed = s.litmusExecuted.Load()
	snap.Litmus.CacheHits = s.litmusCacheHits.Load()
	snap.Litmus.StatesTotal = s.litmusStates.Load()
	snap.Litmus.EnumBusyWallS = float64(s.litmusBusyNS.Load()) / float64(time.Second)
	if snap.Litmus.EnumBusyWallS > 0 {
		snap.Litmus.StatesPerWallSecond = float64(snap.Litmus.StatesTotal) / snap.Litmus.EnumBusyWallS
	}

	s.statsMu.Lock()
	snap.Faults = s.faults
	snap.RMR = s.rmr
	snap.Latency = summarize(&s.latency)
	lat, err := json.Marshal(&s.latency)
	if err == nil {
		snap.LatencyMS = lat
		snap.SimMessages, err = json.Marshal(&s.msgs)
	}
	s.statsMu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "marshaling metrics: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// decodeBody decodes a JSON request body, rejecting unknown fields so that
// a typoed parameter fails loudly instead of silently hitting defaults
// (and caching under an unintended key). An empty body means "all
// defaults".
func decodeBody(body io.Reader, v any) error {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return err
	}
	return nil
}
