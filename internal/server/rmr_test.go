package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// TestSimReturnsRMRCounters checks the daemon threads the remote-memory-
// reference account through: the sim result carries a classified rmr block
// and /metrics aggregates it across executed jobs.
func TestSimReturnsRMRCounters(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/sim", smallSim)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var jr struct {
		Result *SimResult `json:"result"`
	}
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Result == nil || jr.Result.RMR == nil {
		t.Fatalf("sim result has no rmr block: %s", body)
	}
	if jr.Result.RMR.Remote == 0 {
		t.Fatalf("a work-queue run crossed the interconnect zero times: %+v", jr.Result.RMR)
	}
	if jr.Result.RMR.Local == 0 {
		t.Fatalf("a work-queue run had zero cache hits: %+v", jr.Result.RMR)
	}

	// /metrics aggregates the account over executed jobs.
	respM, bodyM := getJSON(t, ts.URL+"/metrics")
	if respM.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", respM.StatusCode)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(bodyM, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.RMR != *jr.Result.RMR {
		t.Fatalf("metrics rmr %+v != job rmr %+v", snap.RMR, *jr.Result.RMR)
	}
}

// TestRMRSpecKeyStability pins that adding the rmr result field changed no
// request cache keys: rmr is a result field, not a spec field, so the
// canonical spec encoding must not mention it.
func TestRMRSpecKeyStability(t *testing.T) {
	var s SimSpec
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(enc), "rmr") {
		t.Fatalf("canonical spec mentions rmr: %s", enc)
	}
}
