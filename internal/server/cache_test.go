package server

import "testing"

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	c.put("a", 1)
	c.put("b", 2)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", 3) // evicts b, the least recently used
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if v, ok := c.get("a"); !ok || v.(int) != 1 {
		t.Fatalf("a = %v, %v; want 1, true", v, ok)
	}
	if v, ok := c.get("c"); !ok || v.(int) != 3 {
		t.Fatalf("c = %v, %v; want 3, true", v, ok)
	}
	st := c.stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
	// get(a) hit, get(b) miss, get(a) hit, get(c) hit.
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 3/1", st.Hits, st.Misses)
	}
}

func TestResultCacheUpdateExisting(t *testing.T) {
	c := newResultCache(2)
	c.put("a", 1)
	c.put("a", 2)
	if v, _ := c.get("a"); v.(int) != 2 {
		t.Fatalf("a = %v, want 2", v)
	}
	if st := c.stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

func TestResultCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.put("a", 1)
	if _, ok := c.get("a"); ok {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestSpecKeyStability(t *testing.T) {
	a := SimSpec{Procs: 8, Protocol: "CBL"}
	b := SimSpec{Procs: 8} // cbl is the default; case is normalized
	for _, s := range []*SimSpec{&a, &b} {
		if err := s.Normalize(); err != nil {
			t.Fatal(err)
		}
	}
	if a.Key() != b.Key() {
		t.Fatalf("equivalent specs hash differently:\n %s\n %s", a.Key(), b.Key())
	}
	c := SimSpec{Procs: 8, Protocol: "wbi"}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Key() == a.Key() {
		t.Fatal("different specs share a key")
	}
	// Sim and figure keys must never collide even on equal encodings.
	f := FigureSpec{Figure: 4}
	if err := f.Normalize(); err != nil {
		t.Fatal(err)
	}
	if f.Key() == a.Key() {
		t.Fatal("figure and sim specs share a key")
	}
}

func TestSimSpecValidation(t *testing.T) {
	bad := []SimSpec{
		{Procs: 3},
		{Procs: 512},
		{Protocol: "mesi"},
		{Protocol: "wbi", Consistency: "bc"},
		{Workload: "matrix"},
		{Topology: "torus"},
		{Grain: -1},
	}
	for i, s := range bad {
		s := s
		if err := s.Normalize(); err == nil {
			t.Errorf("spec %d (%+v) should not validate", i, s)
		}
	}
}
