package server

import (
	"container/list"
	"sync"
)

// resultCache is a thread-safe LRU map from content-addressed job keys to
// finished result payloads. Because the simulator is deterministic, cached
// entries are exact — never stale — so the only eviction policy needed is
// capacity-based LRU.
type resultCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	entries  map[string]*list.Element

	hits      uint64
	misses    uint64
	evictions uint64
}

type cacheEntry struct {
	key string
	val any
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// get returns the cached payload for key, refreshing its recency.
func (c *resultCache) get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// put stores a payload, evicting the least recently used entry when full.
func (c *resultCache) put(key string, val any) {
	if c.capacity <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.order.MoveToFront(el)
		return
	}
	for c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, val: val})
}

// cacheStats is the /metrics view of the cache.
type cacheStats struct {
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

func (c *resultCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := cacheStats{
		Entries:   c.order.Len(),
		Capacity:  c.capacity,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
	if total := c.hits + c.misses; total > 0 {
		s.HitRate = float64(c.hits) / float64(total)
	}
	return s
}
