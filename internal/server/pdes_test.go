package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

func TestSimWorkersSpecValidation(t *testing.T) {
	bad := []SimSpec{
		{SimWorkers: -1},
		{SimWorkers: maxSpecProcs + 1},
	}
	for i, s := range bad {
		s := s
		if err := s.Normalize(); err == nil {
			t.Errorf("spec %d (%+v) should not validate", i, s)
		}
	}
	// Lane mode no longer requires the ideal network: the window-barrier
	// arbiter makes the contended models lane-safe.
	for _, ok := range []SimSpec{
		{SimWorkers: 8, IdealNetwork: true},
		{SimWorkers: 8},
	} {
		if err := ok.Normalize(); err != nil {
			t.Fatalf("lane spec %+v should validate: %v", ok, err)
		}
	}
}

// TestSimWorkersEndToEnd: the daemon accepts lane-mode specs — contended
// networks included — and returns bit-identical results at every worker
// count (under distinct cache keys: the worker count is part of the spec).
func TestSimWorkersEndToEnd(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2})
	_ = s

	spec := func(workers int) string {
		return fmt.Sprintf(`{"procs":4,"workload":"queue","grain":32,"tasks":8,"seed":7,
			"sim_workers":%d}`, workers)
	}
	type reply struct {
		Key    string          `json:"key"`
		Result json.RawMessage `json:"result"`
	}
	var ref reply
	keys := map[string]bool{}
	for _, workers := range []int{1, 2, 4} {
		resp, body := postJSON(t, ts.URL+"/v1/sim", spec(workers))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers %d: status %d: %s", workers, resp.StatusCode, body)
		}
		var jr reply
		if err := json.Unmarshal(body, &jr); err != nil {
			t.Fatal(err)
		}
		keys[jr.Key] = true
		if ref.Key == "" {
			ref = jr
			continue
		}
		if string(jr.Result) != string(ref.Result) {
			t.Fatalf("workers %d result diverges:\n got %s\nwant %s", workers, jr.Result, ref.Result)
		}
	}
	if len(keys) != 3 {
		t.Fatalf("expected 3 distinct cache keys, got %d", len(keys))
	}
	if strings.Contains(string(ref.Result), "lane_fallback_reason") {
		t.Fatalf("contended lane run should not degrade: %s", ref.Result)
	}

	// The bus is a single shared medium — zero lane parallelism — so the
	// machine degrades to the serial engine and says why.
	resp, body := postJSON(t, ts.URL+"/v1/sim",
		`{"procs":4,"workload":"queue","tasks":8,"topology":"bus","sim_workers":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bus lane spec: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"lane_fallback_reason": "bus_topology"`) {
		t.Fatalf("bus lane run should report its fallback reason: %s", body)
	}
}
