package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

func TestSimWorkersSpecValidation(t *testing.T) {
	bad := []SimSpec{
		{SimWorkers: -1, IdealNetwork: true},
		{SimWorkers: maxSpecProcs + 1, IdealNetwork: true},
		{SimWorkers: 2}, // lane mode without ideal_network
	}
	for i, s := range bad {
		s := s
		if err := s.Normalize(); err == nil {
			t.Errorf("spec %d (%+v) should not validate", i, s)
		}
	}
	ok := SimSpec{SimWorkers: 8, IdealNetwork: true}
	if err := ok.Normalize(); err != nil {
		t.Fatalf("ideal-network lane spec should validate: %v", err)
	}
}

// TestSimWorkersEndToEnd: the daemon accepts lane-mode specs, rejects
// non-lane-safe ones with a client error, and returns bit-identical results
// at every worker count (under distinct cache keys: the worker count is
// part of the spec).
func TestSimWorkersEndToEnd(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2})
	_ = s

	spec := func(workers int) string {
		return fmt.Sprintf(`{"procs":4,"workload":"queue","grain":32,"tasks":8,"seed":7,
			"ideal_network":true,"sim_workers":%d}`, workers)
	}
	type reply struct {
		Key    string          `json:"key"`
		Result json.RawMessage `json:"result"`
	}
	var ref reply
	keys := map[string]bool{}
	for _, workers := range []int{1, 2, 4} {
		resp, body := postJSON(t, ts.URL+"/v1/sim", spec(workers))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("workers %d: status %d: %s", workers, resp.StatusCode, body)
		}
		var jr reply
		if err := json.Unmarshal(body, &jr); err != nil {
			t.Fatal(err)
		}
		keys[jr.Key] = true
		if ref.Key == "" {
			ref = jr
			continue
		}
		if string(jr.Result) != string(ref.Result) {
			t.Fatalf("workers %d result diverges:\n got %s\nwant %s", workers, jr.Result, ref.Result)
		}
	}
	if len(keys) != 3 {
		t.Fatalf("expected 3 distinct cache keys, got %d", len(keys))
	}

	resp, body := postJSON(t, ts.URL+"/v1/sim",
		`{"procs":4,"workload":"queue","tasks":8,"sim_workers":2}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("contended lane spec: want 400, got %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "ideal_network") {
		t.Fatalf("rejection should name the precondition: %s", body)
	}
}
