package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ssmp/internal/harness"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading body: %v", err)
	}
	return resp, buf.Bytes()
}

// smallSim is a sim spec cheap enough for unit tests.
const smallSim = `{"procs":2,"workload":"queue","grain":32,"tasks":8,"seed":7}`

func TestSimCacheHitSkipsResimulation(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2})

	resp1, body1 := postJSON(t, ts.URL+"/v1/sim", smallSim)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d: %s", resp1.StatusCode, body1)
	}
	resp2, body2 := postJSON(t, ts.URL+"/v1/sim", smallSim)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d: %s", resp2.StatusCode, body2)
	}

	var r1, r2 JobResponse
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first request claims a cache hit")
	}
	if !r2.Cached {
		t.Fatal("second identical request missed the cache")
	}
	if r1.Key != r2.Key {
		t.Fatalf("keys differ: %s vs %s", r1.Key, r2.Key)
	}
	res1, _ := json.Marshal(r1.Result)
	res2, _ := json.Marshal(r2.Result)
	if !bytes.Equal(res1, res2) {
		t.Fatalf("cached payload differs:\n%s\n%s", res1, res2)
	}

	// The counters must agree: one execution, one hit, one miss.
	if st := s.cache.stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if got := s.accepted.Load(); got != 1 {
		t.Fatalf("accepted = %d, want 1 (the hit must not enqueue)", got)
	}
	if got := s.completed.Load(); got != 1 {
		t.Fatalf("completed = %d, want 1", got)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, QueueDepth: 1})

	// Stuff the single worker and the single queue slot with tasks the
	// test controls, so the HTTP request below deterministically finds
	// the pool full.
	release := make(chan struct{})
	var releaseOnce sync.Once
	t.Cleanup(func() { releaseOnce.Do(func() { close(release) }) })
	started := make(chan struct{})
	var wg sync.WaitGroup
	stuff := func(run func(context.Context) (any, error)) {
		tk := &task{ctx: context.Background(), run: run, done: make(chan struct{})}
		if err := s.pool.submit(tk); err != nil {
			t.Fatalf("stuffing task: %v", err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); <-tk.done }()
	}
	stuff(func(context.Context) (any, error) { close(started); <-release; return nil, nil })
	<-started // the worker holds task 1; task 2 below occupies the queue slot
	stuff(func(context.Context) (any, error) { <-release; return nil, nil })

	resp, body := postJSON(t, ts.URL+"/v1/sim", smallSim)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}

	releaseOnce.Do(func() { close(release) })
	wg.Wait()

	// With the pool drained the same job must now be accepted.
	resp2, body2 := postJSON(t, ts.URL+"/v1/sim", smallSim)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("after drain: %d: %s", resp2.StatusCode, body2)
	}
}

func TestPerJobTimeoutCancelsCleanly(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1})

	// A 64-node coarse-grain run takes far longer than 50ms; the
	// deadline must abort it mid-simulation and free the worker.
	big := `{"procs":64,"workload":"queue","grain":512,"tasks":4096,"timeout_ms":50}`
	resp, body := postJSON(t, ts.URL+"/v1/sim", big)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, body)
	}
	if got := s.timedOut.Load(); got != 1 {
		t.Fatalf("timedOut = %d, want 1", got)
	}

	// The single worker must be free again: a small job completes.
	deadline := time.Now().Add(10 * time.Second)
	for s.pool.busy.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker still busy after timeout")
		}
		time.Sleep(time.Millisecond)
	}
	resp2, body2 := postJSON(t, ts.URL+"/v1/sim", smallSim)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-timeout job: %d: %s", resp2.StatusCode, body2)
	}
	// A failed job must not poison the cache.
	if _, ok := s.cache.get((&SimSpec{Procs: 64, Workload: "queue", Grain: 512, Tasks: 4096}).Key()); ok {
		t.Fatal("timed-out job was cached")
	}
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	s := New(Config{Workers: 1})

	release := make(chan struct{})
	tk := &task{
		ctx:  context.Background(),
		run:  func(context.Context) (any, error) { <-release; return "done", nil },
		done: make(chan struct{}),
	}
	if err := s.pool.submit(tk); err != nil {
		t.Fatal(err)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Shutdown must wait for the in-flight task...
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) with a job still in flight", err)
	case <-time.After(100 * time.Millisecond):
	}

	// ...refuse new work meanwhile...
	w := httptest.NewRecorder()
	r := httptest.NewRequest("POST", "/v1/sim", strings.NewReader(smallSim))
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("during drain: status = %d, want 503", w.Code)
	}

	// ...and return once the job finishes.
	close(release)
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after the in-flight job finished")
	}
	select {
	case <-tk.done:
		if tk.err != nil || tk.res != "done" {
			t.Fatalf("drained task: res=%v err=%v", tk.res, tk.err)
		}
	default:
		t.Fatal("Shutdown returned before the in-flight job completed")
	}
}

func TestInflightDedup(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())

	release := make(chan struct{})
	var runs int
	lead := make(chan struct{})
	run := func(context.Context) (any, error) {
		runs++ // single leader: no lock needed, the test asserts runs==1
		close(lead)
		<-release
		return 42, nil
	}

	type outcome struct {
		res    any
		cached bool
		err    error
	}
	results := make(chan outcome, 2)
	go func() {
		res, cached, _, err := s.execute(context.Background(), "k", run)
		results <- outcome{res, cached, err}
	}()
	<-lead // leader is running; the follower below must share, not rerun
	go func() {
		res, cached, _, err := s.execute(context.Background(), "k", run)
		results <- outcome{res, cached, err}
	}()

	// Give the follower a moment to register, then release the leader.
	time.Sleep(50 * time.Millisecond)
	close(release)
	for i := 0; i < 2; i++ {
		o := <-results
		if o.err != nil || o.res != 42 {
			t.Fatalf("outcome %d: %+v", i, o)
		}
	}
	if runs != 1 {
		t.Fatalf("identical concurrent jobs ran %d times, want 1", runs)
	}
}

func TestFigureEndToEnd(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})

	url := ts.URL + "/v1/figure/4?procs=2,4&episodes=2&tasks=12&spawn_prob=0&seed=7"
	resp, body := getJSON(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET figure: %d: %s", resp.StatusCode, body)
	}
	var jr struct {
		Key    string         `json:"key"`
		Cached bool           `json:"cached"`
		Figure harness.Figure `json:"figure"`
	}
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("decoding: %v\n%s", err, body)
	}
	if jr.Figure.Name != "Figure 4" {
		t.Fatalf("figure name = %q", jr.Figure.Name)
	}
	if len(jr.Figure.Series) != 5 {
		t.Fatalf("figure has %d series, want 5", len(jr.Figure.Series))
	}
	for _, series := range jr.Figure.Series {
		if len(series.Points) != 2 {
			t.Fatalf("series %s has %d points, want 2", series.Name, len(series.Points))
		}
	}

	// The served figure must be bit-identical to a direct harness run —
	// the determinism the cache's exactness rests on.
	o := harness.DefaultOptions()
	o.Procs = []int{2, 4}
	o.Episodes = 2
	o.Tasks = 12
	o.SpawnProb = 0
	o.Seed = 7
	want := o.Figure4()
	for i, series := range jr.Figure.Series {
		ws := want.Series[i]
		if series.Name != ws.Name {
			t.Fatalf("series %d name = %q, want %q", i, series.Name, ws.Name)
		}
		for j, p := range series.Points {
			if p != ws.Points[j] {
				t.Fatalf("series %s point %d = %v, want %v", series.Name, j, p, ws.Points[j])
			}
		}
	}

	// Second fetch: served from cache, same payload.
	resp2, body2 := getJSON(t, url)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second GET: %d", resp2.StatusCode)
	}
	var jr2 struct {
		Cached bool           `json:"cached"`
		Figure harness.Figure `json:"figure"`
	}
	if err := json.Unmarshal(body2, &jr2); err != nil {
		t.Fatal(err)
	}
	if !jr2.Cached {
		t.Fatal("second figure fetch missed the cache")
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})

	if resp, body := getJSON(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d: %s", resp.StatusCode, body)
	}

	postJSON(t, ts.URL+"/v1/sim", smallSim)
	postJSON(t, ts.URL+"/v1/sim", smallSim) // cache hit

	resp, body := getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d: %s", resp.StatusCode, body)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("decoding metrics: %v\n%s", err, body)
	}
	if snap.Workers.Count != 2 {
		t.Fatalf("workers = %d, want 2", snap.Workers.Count)
	}
	if snap.Jobs.Completed != 1 {
		t.Fatalf("completed = %d, want 1", snap.Jobs.Completed)
	}
	if snap.Cache.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", snap.Cache.Hits)
	}
	// The latency histogram and message counters must round-trip through
	// the shared metrics JSON (one sample; some simulated messages).
	var lat struct {
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(snap.LatencyMS, &lat); err != nil || lat.Count != 1 {
		t.Fatalf("latency histogram: %v, %s", err, snap.LatencyMS)
	}
	var msgs struct {
		Total uint64 `json:"total"`
	}
	if err := json.Unmarshal(snap.SimMessages, &msgs); err != nil || msgs.Total == 0 {
		t.Fatalf("sim messages: %v, %s", err, snap.SimMessages)
	}
	// Kernel-throughput counters: one executed sim job was sampled.
	if snap.Sim.EventsTotal == 0 {
		t.Fatal("sim events_total = 0 after an executed job")
	}
	if snap.Sim.EventsPerWallSecond <= 0 {
		t.Fatalf("events_per_wall_second = %g, want > 0", snap.Sim.EventsPerWallSecond)
	}
	if snap.Sim.JobsSampled != 1 {
		t.Fatalf("jobs_sampled = %d, want 1", snap.Sim.JobsSampled)
	}
	if snap.Sim.MeanJobAllocs <= 0 {
		t.Fatalf("mean_job_allocs = %g, want > 0", snap.Sim.MeanJobAllocs)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	cases := []struct {
		name, url, body string
	}{
		{"bad json", "/v1/sim", `{"procs":`},
		{"unknown field", "/v1/sim", `{"prcs":8}`},
		{"bad procs", "/v1/sim", `{"procs":3}`},
		{"bad figure", "/v1/figure", `{"figure":9}`},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+c.url, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400: %s", c.name, resp.StatusCode, body)
		}
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/figure/abc"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("non-numeric figure path: %d, want 400", resp.StatusCode)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/figure/4?procs=nope"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad procs query: %d, want 400", resp.StatusCode)
	}
}
