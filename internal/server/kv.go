package server

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"ssmp/internal/kvapp"
	"ssmp/internal/metrics"
	"ssmp/internal/network"
	"ssmp/internal/sim"
	"ssmp/internal/workload"
)

// faultConfig lowers an optional fault block (nil = reliable fabric).
func faultConfig(f *FaultSpec) network.FaultConfig {
	if f == nil {
		return network.FaultConfig{}
	}
	return f.config()
}

// KVSpec is the canonical specification of one key-value service job: the
// kvapp client population plus the machine-level knobs the sim endpoint
// already exposes. Like SimSpec, the normalized struct's JSON encoding is
// the cache key's canonical form.
type KVSpec struct {
	// Procs is the machine size (a power of two).
	Procs int `json:"procs"`
	// Lock is the shard lock manager ("cbl", "mcs", ...); it selects the
	// machine protocol.
	Lock string `json:"lock"`
	// Keys, Shards, Sessions and Ops size the store and its load.
	Keys     int `json:"keys"`
	Shards   int `json:"shards"`
	Sessions int `json:"sessions"`
	Ops      int `json:"ops"`
	// GetFrac and PutFrac split the op mix (remainder CAS); pointers so an
	// explicit 0 is distinguishable from "default".
	GetFrac *float64 `json:"get_frac,omitempty"`
	PutFrac *float64 `json:"put_frac,omitempty"`
	// Theta is the Zipfian popularity skew (0 = uniform).
	Theta *float64 `json:"theta,omitempty"`
	// MeanGap, MeanOff and MeanBurst parameterize each session's bursty
	// arrival process (cycles / cycles / arrivals per burst).
	MeanGap   int64 `json:"mean_gap"`
	MeanOff   int64 `json:"mean_off"`
	MeanBurst int   `json:"mean_burst"`
	// OpenLoop selects open-loop arrivals (default true).
	OpenLoop *bool `json:"open_loop,omitempty"`
	// SubCap bounds the READ-UPDATE subscription set; 0 disables the fast
	// path (pointer so an explicit 0 survives normalization).
	SubCap *int `json:"sub_cap,omitempty"`
	// SubscribeAfter is the fast path's hotness threshold.
	SubscribeAfter int `json:"subscribe_after"`
	// Seed drives all workload randomness.
	Seed *uint64 `json:"seed,omitempty"`
	// Jitter seeds schedule jitter (core.Config.Jitter).
	Jitter uint64 `json:"jitter"`
	// SimWorkers selects the PDES engine (same contract as SimSpec: the
	// contended network is lane-safe, ideal_network not required).
	SimWorkers int `json:"sim_workers,omitempty"`
	// IdealNetwork removes switch contention (ablation).
	IdealNetwork bool `json:"ideal_network"`
	// Faults optionally enables the interconnect fault plane.
	Faults *FaultSpec `json:"faults,omitempty"`
}

// Normalize applies kvapp defaults in place and validates the spec.
func (k *KVSpec) Normalize() error {
	if k.Procs == 0 {
		k.Procs = 16
	}
	def := kvapp.DefaultSpec(max(k.Procs, 2))
	k.Lock = strings.ToLower(k.Lock)
	if k.Lock == "" {
		k.Lock = def.Lock
	}
	if k.Keys == 0 {
		k.Keys = def.Keys
	}
	if k.Shards == 0 {
		k.Shards = def.Shards
	}
	if k.Sessions == 0 {
		k.Sessions = def.Sessions
	}
	if k.Ops == 0 {
		k.Ops = def.Ops
	}
	if k.GetFrac == nil {
		k.GetFrac = &def.GetFrac
	}
	if k.PutFrac == nil {
		k.PutFrac = &def.PutFrac
	}
	if k.Theta == nil {
		k.Theta = &def.Theta
	}
	if k.MeanGap == 0 {
		k.MeanGap = int64(def.Arrival.MeanGap)
	}
	if k.MeanOff == 0 {
		k.MeanOff = int64(def.Arrival.MeanOff)
	}
	if k.MeanBurst == 0 {
		k.MeanBurst = def.Arrival.MeanBurst
	}
	if k.OpenLoop == nil {
		k.OpenLoop = &def.OpenLoop
	}
	if k.SubCap == nil {
		k.SubCap = &def.SubCap
	}
	if k.SubscribeAfter == 0 {
		k.SubscribeAfter = def.SubscribeAfter
	}
	if k.Seed == nil {
		k.Seed = &def.Seed
	}

	if k.Procs > maxSpecProcs {
		return fmt.Errorf("procs must be <= %d, got %d", maxSpecProcs, k.Procs)
	}
	if k.Ops > 1<<16 {
		return fmt.Errorf("ops must be <= %d, got %d", 1<<16, k.Ops)
	}
	if k.Sessions > 256 {
		return fmt.Errorf("sessions must be <= 256, got %d", k.Sessions)
	}
	if k.SimWorkers < 0 || k.SimWorkers > maxSpecProcs {
		return fmt.Errorf("sim_workers must be in [0,%d], got %d", maxSpecProcs, k.SimWorkers)
	}
	if k.Faults != nil {
		fc := k.Faults.config()
		if err := fc.Validate(); err != nil {
			return fmt.Errorf("faults: %w", err)
		}
		if !fc.Enabled() {
			return fmt.Errorf("faults block present but inert (zero seed or all-zero rates); omit it instead")
		}
	}
	// The kvapp spec validates everything else (procs power-of-two, op mix,
	// arrival process, subscription knobs).
	return k.appSpec().Validate()
}

// appSpec lowers the normalized spec to kvapp's form.
func (k *KVSpec) appSpec() kvapp.Spec {
	return kvapp.Spec{
		Procs:    k.Procs,
		Lock:     k.Lock,
		Keys:     k.Keys,
		Shards:   k.Shards,
		Sessions: k.Sessions,
		Ops:      k.Ops,
		GetFrac:  *k.GetFrac,
		PutFrac:  *k.PutFrac,
		Theta:    *k.Theta,
		Arrival: workload.Bursty{
			MeanGap:   sim.Time(k.MeanGap),
			MeanOff:   sim.Time(k.MeanOff),
			MeanBurst: k.MeanBurst,
		},
		OpenLoop:       *k.OpenLoop,
		SubCap:         *k.SubCap,
		SubscribeAfter: k.SubscribeAfter,
		Seed:           *k.Seed,
	}
}

// Key returns the spec's content address. Call Normalize first.
func (k *KVSpec) Key() string { return specKey("kv", k) }

// KVResult is the JSON form of a completed key-value run.
type KVResult struct {
	Cycles uint64 `json:"cycles"`
	kvapp.Counters
	// P50/P99/Mean summarize per-op latency in cycles; Throughput is
	// completed operations per 1000 cycles.
	P50        uint64  `json:"p50_cycles"`
	P99        uint64  `json:"p99_cycles"`
	Mean       float64 `json:"mean_cycles"`
	Throughput float64 `json:"throughput_ops_per_kcycle"`
	// Latency is the merged per-op latency histogram (metrics.Histogram's
	// JSON form).
	Latency *metrics.Histogram `json:"latency"`
	// Oracle is the per-key sequential-consistency verdict. The daemon
	// refuses to cache or return a violating run as a success, so Oracle
	// here always reports a pass; it is included for the record.
	Oracle kvapp.OracleReport `json:"oracle"`
	// Faults reports fault injection and recovery (present only when the
	// spec enabled the fault plane).
	Faults *metrics.FaultCounters `json:"faults,omitempty"`
	// LaneFallback is the machine-readable reason the run degraded to the
	// serial engine despite sim_workers > 0 (same contract as SimResult).
	LaneFallback string `json:"lane_fallback_reason,omitempty"`
}

// run executes the spec. An oracle violation is an error: a run that broke
// sequential consistency must not be cached as a result.
func (k *KVSpec) run(ctx context.Context) (*KVResult, error) {
	res, err := kvapp.Run(ctx, k.appSpec(), kvapp.RunOptions{
		Jitter:       k.Jitter,
		Faults:       faultConfig(k.Faults),
		SimWorkers:   k.SimWorkers,
		IdealNetwork: k.IdealNetwork,
	})
	if err != nil {
		return nil, err
	}
	if err := res.Check(); err != nil {
		return nil, err
	}
	lat := res.All
	out := &KVResult{
		Cycles:       uint64(res.Sim.Cycles),
		Counters:     res.Counters,
		P50:          res.P50(),
		P99:          res.P99(),
		Mean:         res.Mean(),
		Throughput:   res.ThroughputOpsPerKCycle(),
		Latency:      &lat,
		Oracle:       res.Oracle,
		LaneFallback: res.Sim.LaneFallback,
	}
	if k.Faults != nil {
		fc := res.Sim.Faults
		out.Faults = &fc
	}
	return out, nil
}

// handleKV serves POST /v1/kv.
func (s *Server) handleKV(w http.ResponseWriter, r *http.Request) {
	var req struct {
		KVSpec
		TimeoutMS int64 `json:"timeout_ms"`
	}
	if err := decodeBody(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if err := req.KVSpec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	key := req.KVSpec.Key()
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()

	started := time.Now()
	res, cached, status, err := s.execute(ctx, key, func(ctx context.Context) (any, error) {
		out, err := req.KVSpec.run(ctx)
		if err != nil {
			return nil, err
		}
		if out.Faults != nil {
			s.statsMu.Lock()
			s.faults.Add(*out.Faults)
			s.statsMu.Unlock()
		}
		return out, nil
	})
	if err != nil {
		s.jobError(w, r, status, key, err)
		return
	}
	s.logf("ssmpd: kv %s cached=%v elapsed=%s", key[:22], cached, time.Since(started))
	writeJSON(w, http.StatusOK, JobResponse{
		Key:       key,
		Cached:    cached,
		ElapsedMS: time.Since(started).Milliseconds(),
		Result:    res,
	})
}
