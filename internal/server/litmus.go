package server

// The litmus endpoint: POST /v1/litmus cross-validates one litmus test
// (embedded corpus by name, or inline) through the axiomatic enumerator
// and a jitter-seed sweep of the simulator, reusing the daemon's cache,
// dedup, and worker pool; GET /v1/litmus lists the corpus.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"ssmp/internal/litmus"
)

// LitmusSpec is the canonical specification of a litmus job.
type LitmusSpec struct {
	// Name selects an embedded corpus test. Mutually exclusive with Test.
	Name string `json:"name,omitempty"`
	// Test is an inline test in the litmus JSON format. Normalize replaces
	// it with the parsed test's canonical encoding so equivalent inline
	// bodies share a cache key.
	Test json.RawMessage `json:"test,omitempty"`
	// Seeds is how many jitter seeds to sweep (default 64).
	Seeds int `json:"seeds"`

	parsed *litmus.Test
}

// maxLitmusSeeds caps the sweep: each seed is a whole machine run.
const maxLitmusSeeds = 4096

// Normalize applies defaults, resolves the test, and validates.
func (s *LitmusSpec) Normalize() error {
	if s.Seeds == 0 {
		s.Seeds = 64
	}
	if s.Seeds < 1 || s.Seeds > maxLitmusSeeds {
		return fmt.Errorf("seeds must be in [1,%d], got %d", maxLitmusSeeds, s.Seeds)
	}
	switch {
	case s.Name != "" && s.Test != nil:
		return fmt.Errorf("name and test are mutually exclusive")
	case s.Name != "":
		t, err := litmus.Load(s.Name)
		if err != nil {
			return err
		}
		s.parsed = t
	case s.Test != nil:
		t, err := litmus.Parse(s.Test)
		if err != nil {
			return err
		}
		canon, err := json.Marshal(t)
		if err != nil {
			return fmt.Errorf("canonicalizing test: %w", err)
		}
		s.parsed, s.Test = t, canon
	default:
		return fmt.Errorf("need a corpus test name or an inline test")
	}
	return nil
}

// Key returns the spec's content address. Call Normalize first.
func (s *LitmusSpec) Key() string { return specKey("litmus", s) }

// run cross-validates the test.
func (s *LitmusSpec) run(context.Context) (*litmus.Report, error) {
	return litmus.Run(s.parsed, litmus.Seeds(s.Seeds))
}

func (s *Server) handleLitmusPost(w http.ResponseWriter, r *http.Request) {
	var req struct {
		LitmusSpec
		TimeoutMS int64 `json:"timeout_ms"`
	}
	if err := decodeBody(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if err := req.LitmusSpec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	key := req.LitmusSpec.Key()
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()

	started := time.Now()
	res, cached, status, err := s.execute(ctx, key, func(ctx context.Context) (any, error) {
		rep, err := req.LitmusSpec.run(ctx)
		if err != nil {
			return nil, err
		}
		s.litmusExecuted.Add(1)
		s.litmusStates.Add(uint64(rep.States))
		s.litmusBusyNS.Add(rep.EnumNS)
		return rep, nil
	})
	if err != nil {
		s.jobError(w, r, status, key, err)
		return
	}
	s.litmusJobs.Add(1)
	if cached {
		s.litmusCacheHits.Add(1)
	}
	s.logf("ssmpd: litmus %s cached=%v elapsed=%s", key[:22], cached, time.Since(started))
	writeJSON(w, http.StatusOK, JobResponse{
		Key:       key,
		Cached:    cached,
		ElapsedMS: time.Since(started).Milliseconds(),
		Result:    res,
	})
}

// litmusListEntry is one row of GET /v1/litmus.
type litmusListEntry struct {
	Name  string `json:"name"`
	Doc   string `json:"doc"`
	Procs int    `json:"procs"`
}

func (s *Server) handleLitmusList(w http.ResponseWriter, _ *http.Request) {
	tests, err := litmus.Corpus()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "loading corpus: %v", err)
		return
	}
	out := make([]litmusListEntry, 0, len(tests))
	for _, t := range tests {
		out = append(out, litmusListEntry{Name: t.Name, Doc: t.Doc, Procs: len(t.Procs)})
	}
	writeJSON(w, http.StatusOK, map[string]any{"tests": out})
}
