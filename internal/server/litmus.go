package server

// The litmus endpoint: POST /v1/litmus cross-validates litmus tests
// (embedded corpus by name, inline, or a whole corpus batch) through the
// axiomatic enumerator and a jitter-seed sweep of the simulator, reusing
// the daemon's cache, dedup, and worker pool; GET /v1/litmus lists the
// corpus.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"ssmp/internal/litmus"
)

// LitmusSpec is the canonical specification of a litmus job.
type LitmusSpec struct {
	// Name selects an embedded corpus test. Mutually exclusive with Test
	// and Batch.
	Name string `json:"name,omitempty"`
	// Test is an inline test in the litmus JSON format. Normalize replaces
	// it with the parsed test's canonical encoding so equivalent inline
	// bodies share a cache key.
	Test json.RawMessage `json:"test,omitempty"`
	// Batch selects a whole embedded test set — "corpus" (hand-written),
	// "generated" (the farm corpus), or "all" — run as one job through
	// the pool with a per-set summary result. Mutually exclusive with
	// Name and Test.
	Batch string `json:"batch,omitempty"`
	// Seeds is how many jitter seeds to sweep (default 64; batches
	// default to 16 since they multiply it by the set size).
	Seeds int `json:"seeds"`

	parsed *litmus.Test
	batch  []*litmus.Test
}

// maxLitmusSeeds caps the sweep: each seed is a whole machine run.
const maxLitmusSeeds = 4096

// Normalize applies defaults, resolves the test or batch, and validates.
func (s *LitmusSpec) Normalize() error {
	set := 0
	for _, has := range []bool{s.Name != "", s.Test != nil, s.Batch != ""} {
		if has {
			set++
		}
	}
	if set > 1 {
		return fmt.Errorf("name, test, and batch are mutually exclusive")
	}
	if s.Seeds == 0 {
		if s.Batch != "" {
			s.Seeds = 16
		} else {
			s.Seeds = 64
		}
	}
	if s.Seeds < 1 || s.Seeds > maxLitmusSeeds {
		return fmt.Errorf("seeds must be in [1,%d], got %d", maxLitmusSeeds, s.Seeds)
	}
	switch {
	case s.Name != "":
		t, err := litmus.Load(s.Name)
		if err != nil {
			return err
		}
		s.parsed = t
	case s.Test != nil:
		t, err := litmus.Parse(s.Test)
		if err != nil {
			return err
		}
		canon, err := json.Marshal(t)
		if err != nil {
			return fmt.Errorf("canonicalizing test: %w", err)
		}
		s.parsed, s.Test = t, canon
	case s.Batch != "":
		tests, err := loadBatch(s.Batch)
		if err != nil {
			return err
		}
		s.batch = tests
	default:
		return fmt.Errorf("need a corpus test name, an inline test, or a batch")
	}
	return nil
}

// loadBatch resolves a batch selector to its test set.
func loadBatch(name string) ([]*litmus.Test, error) {
	switch name {
	case "corpus":
		return litmus.Corpus()
	case "generated":
		return litmus.Generated()
	case "all":
		hand, err := litmus.Corpus()
		if err != nil {
			return nil, err
		}
		gen, err := litmus.Generated()
		if err != nil {
			return nil, err
		}
		return append(hand, gen...), nil
	default:
		return nil, fmt.Errorf("batch must be corpus, generated, or all, got %q", name)
	}
}

// Key returns the spec's content address. Call Normalize first.
func (s *LitmusSpec) Key() string { return specKey("litmus", s) }

// LitmusBatchRow is one test's summary inside a batch result.
type LitmusBatchRow struct {
	Name           string   `json:"name"`
	Ok             bool     `json:"ok"`
	Allowed        int      `json:"allowed"`
	Observed       int      `json:"observed"`
	States         int      `json:"states"`
	Coverage       []string `json:"coverage,omitempty"`
	Violations     []string `json:"violations,omitempty"`
	AssertFailures []string `json:"assert_failures,omitempty"`
}

// LitmusBatchReport is the result of a batch job.
type LitmusBatchReport struct {
	Batch  string `json:"batch"`
	Total  int    `json:"total"`
	Failed int    `json:"failed"`
	States int    `json:"states"`
	Seeds  int    `json:"seeds"`
	// AxiomCoverage counts tests per §2 axiom family, from the corpus
	// files' stored coverage tags.
	AxiomCoverage map[string]int   `json:"axiom_coverage"`
	EnumNS        int64            `json:"enum_ns"`
	Rows          []LitmusBatchRow `json:"rows"`
}

// run cross-validates the test or batch.
func (s *LitmusSpec) run(ctx context.Context) (any, error) {
	if s.batch == nil {
		return litmus.Run(s.parsed, litmus.Seeds(s.Seeds))
	}
	out := &LitmusBatchReport{Batch: s.Batch, Total: len(s.batch), Seeds: s.Seeds,
		AxiomCoverage: map[string]int{}}
	for _, t := range s.batch {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rep, err := litmus.Run(t, litmus.Seeds(s.Seeds))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", t.Name, err)
		}
		if !rep.Ok() {
			out.Failed++
		}
		out.States += rep.States
		out.EnumNS += rep.EnumNS
		for _, ax := range t.Coverage {
			out.AxiomCoverage[ax]++
		}
		out.Rows = append(out.Rows, LitmusBatchRow{
			Name:           rep.Name,
			Ok:             rep.Ok(),
			Allowed:        len(rep.Allowed),
			Observed:       len(rep.Observed),
			States:         rep.States,
			Coverage:       t.Coverage,
			Violations:     rep.Violations,
			AssertFailures: rep.AssertFailures,
		})
	}
	return out, nil
}

func (s *Server) handleLitmusPost(w http.ResponseWriter, r *http.Request) {
	var req struct {
		LitmusSpec
		TimeoutMS int64 `json:"timeout_ms"`
	}
	if err := decodeBody(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if err := req.LitmusSpec.Normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid spec: %v", err)
		return
	}
	key := req.LitmusSpec.Key()
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout(req.TimeoutMS))
	defer cancel()

	started := time.Now()
	res, cached, status, err := s.execute(ctx, key, func(ctx context.Context) (any, error) {
		out, err := req.LitmusSpec.run(ctx)
		if err != nil {
			return nil, err
		}
		s.litmusExecuted.Add(1)
		switch rep := out.(type) {
		case *litmus.Report:
			s.litmusStates.Add(uint64(rep.States))
			s.litmusBusyNS.Add(rep.EnumNS)
		case *LitmusBatchReport:
			s.litmusStates.Add(uint64(rep.States))
			s.litmusBusyNS.Add(rep.EnumNS)
		}
		return out, nil
	})
	if err != nil {
		s.jobError(w, r, status, key, err)
		return
	}
	s.litmusJobs.Add(1)
	if cached {
		s.litmusCacheHits.Add(1)
	}
	s.logf("ssmpd: litmus %s cached=%v elapsed=%s", key[:22], cached, time.Since(started))
	writeJSON(w, http.StatusOK, JobResponse{
		Key:       key,
		Cached:    cached,
		ElapsedMS: time.Since(started).Milliseconds(),
		Result:    res,
	})
}

// litmusListEntry is one row of GET /v1/litmus.
type litmusListEntry struct {
	Name     string   `json:"name"`
	Doc      string   `json:"doc"`
	Procs    int      `json:"procs"`
	Coverage []string `json:"coverage,omitempty"`
}

func (s *Server) handleLitmusList(w http.ResponseWriter, r *http.Request) {
	set := r.URL.Query().Get("set")
	if set == "" {
		set = "corpus"
	}
	tests, err := loadBatch(set)
	if err != nil {
		writeError(w, http.StatusBadRequest, "loading corpus: %v", err)
		return
	}
	out := make([]litmusListEntry, 0, len(tests))
	for _, t := range tests {
		out = append(out, litmusListEntry{Name: t.Name, Doc: t.Doc, Procs: len(t.Procs), Coverage: t.Coverage})
	}
	writeJSON(w, http.StatusOK, map[string]any{"tests": out})
}
