package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// faultySim is smallSim with the fault plane on.
const faultySim = `{"procs":2,"workload":"queue","grain":32,"tasks":8,"seed":7,
	"faults":{"seed":3,"drop":0.02,"dup":0.02,"delay":0.05}}`

func TestSimWithFaultsReturnsCounters(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2})
	resp, body := postJSON(t, ts.URL+"/v1/sim", faultySim)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var jr struct {
		Key    string     `json:"key"`
		Result *SimResult `json:"result"`
	}
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Result == nil || jr.Result.Faults == nil {
		t.Fatalf("faulted sim result has no faults block: %s", body)
	}
	if !jr.Result.Faults.Any() {
		t.Fatalf("fault counters all zero: %+v", jr.Result.Faults)
	}
	if jr.Result.Faults.AcksSent == 0 {
		t.Fatal("transport not enabled: no acks recorded")
	}

	// The faulted spec must cache under a different key than the
	// fault-free one, and the fault-free result must have no faults block.
	respP, bodyP := postJSON(t, ts.URL+"/v1/sim", smallSim)
	if respP.StatusCode != http.StatusOK {
		t.Fatalf("plain sim status %d: %s", respP.StatusCode, bodyP)
	}
	var jrP struct {
		Key    string     `json:"key"`
		Result *SimResult `json:"result"`
	}
	if err := json.Unmarshal(bodyP, &jrP); err != nil {
		t.Fatal(err)
	}
	if jrP.Key == jr.Key {
		t.Fatal("faulted and fault-free specs share a cache key")
	}
	if jrP.Result.Faults != nil {
		t.Fatalf("fault-free result has a faults block: %+v", jrP.Result.Faults)
	}

	// /metrics aggregates the fault counters across executed jobs.
	respM, bodyM := getJSON(t, ts.URL+"/metrics")
	if respM.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", respM.StatusCode)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(bodyM, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Faults != *jr.Result.Faults {
		t.Fatalf("metrics faults %+v != job faults %+v", snap.Faults, *jr.Result.Faults)
	}
	_ = s
}

func TestSimFaultedRunsAreDeterministic(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, CacheEntries: -1})
	_, body1 := postJSON(t, ts.URL+"/v1/sim", faultySim)
	_, body2 := postJSON(t, ts.URL+"/v1/sim", faultySim)
	var r1, r2 struct {
		Result *SimResult `json:"result"`
	}
	if err := json.Unmarshal(body1, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body2, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Result == nil || r2.Result == nil {
		t.Fatalf("missing results: %s / %s", body1, body2)
	}
	if r1.Result.Cycles != r2.Result.Cycles || *r1.Result.Faults != *r2.Result.Faults {
		t.Fatalf("same faulted spec diverged:\n%+v\n%+v", r1.Result, r2.Result)
	}
}

func TestSimFaultSpecValidation(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	cases := []struct {
		body string
		want string
	}{
		{`{"procs":2,"faults":{"seed":1,"drop":1.5}}`, "probability"},
		{`{"procs":2,"faults":{"seed":1,"dup":-0.1}}`, "probability"},
		{`{"procs":2,"faults":{"seed":0,"drop":0.1}}`, "inert"},
		{`{"procs":2,"faults":{"seed":5}}`, "inert"},
		{`{"procs":2,"faults":{"seed":1,"drop":0.1,"delay_max":-4}}`, "delay_max"},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/sim", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", c.body, resp.StatusCode)
		}
		if !strings.Contains(string(body), c.want) {
			t.Errorf("%s: error %s does not mention %q", c.body, body, c.want)
		}
	}
}

func TestFaultSpecKeyStability(t *testing.T) {
	// Adding the faults field must not shift fault-free cache keys: the
	// canonical JSON of a spec without faults has no faults key at all.
	var s SimSpec
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(enc), "faults") {
		t.Fatalf("fault-free canonical spec mentions faults: %s", enc)
	}
}
