package server

import (
	"encoding/json"
	"net/http"
	"testing"

	"ssmp/internal/litmus"
)

func TestLitmusEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})

	// Corpus listing.
	resp, body := getJSON(t, ts.URL+"/v1/litmus")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/litmus: %d: %s", resp.StatusCode, body)
	}
	var list struct {
		Tests []struct {
			Name string `json:"name"`
			Doc  string `json:"doc"`
		} `json:"tests"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("decoding list: %v", err)
	}
	if len(list.Tests) < 10 {
		t.Fatalf("corpus listing has %d tests, want >= 10", len(list.Tests))
	}

	// Run a corpus test by name.
	resp, body = postJSON(t, ts.URL+"/v1/litmus", `{"name":"sb","seeds":16}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/litmus: %d: %s", resp.StatusCode, body)
	}
	var jr struct {
		Key    string        `json:"key"`
		Cached bool          `json:"cached"`
		Result litmus.Report `json:"result"`
	}
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if !jr.Result.Ok() || jr.Result.Name != "sb" || jr.Result.Seeds != 16 {
		t.Fatalf("unexpected report: %+v", jr.Result)
	}

	// Resubmitting is a cache hit under the same key.
	resp, body = postJSON(t, ts.URL+"/v1/litmus", `{"name":"sb","seeds":16}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/litmus (repeat): %d: %s", resp.StatusCode, body)
	}
	var jr2 struct {
		Key    string `json:"key"`
		Cached bool   `json:"cached"`
	}
	if err := json.Unmarshal(body, &jr2); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if jr2.Key != jr.Key || !jr2.Cached {
		t.Fatalf("expected cache hit under %s, got key %s cached=%v", jr.Key, jr2.Key, jr2.Cached)
	}

	// The metrics endpoint accounts for both requests: one executed job,
	// one cache hit, and a nonzero states/sec figure from the engine.
	resp, body = getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d: %s", resp.StatusCode, body)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	if snap.Litmus.Jobs != 2 {
		t.Errorf("litmus.jobs = %d, want 2", snap.Litmus.Jobs)
	}
	if snap.Litmus.Executed != 1 {
		t.Errorf("litmus.executed = %d, want 1", snap.Litmus.Executed)
	}
	if snap.Litmus.CacheHits != 1 {
		t.Errorf("litmus.cache_hits = %d, want 1", snap.Litmus.CacheHits)
	}
	if snap.Litmus.StatesTotal == 0 || snap.Litmus.StatesTotal != uint64(jr.Result.States) {
		t.Errorf("litmus.states_total = %d, want %d", snap.Litmus.StatesTotal, jr.Result.States)
	}
	if snap.Litmus.StatesPerWallSecond <= 0 {
		t.Errorf("litmus.states_per_wall_second = %v, want > 0", snap.Litmus.StatesPerWallSecond)
	}
}

func TestLitmusInlineTest(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	spec := `{"seeds":8,"test":{
		"name": "inline",
		"procs": [[
			{"op": "write-global", "loc": "x", "val": 1},
			{"op": "flush"},
			{"op": "read-global", "loc": "x"}
		]],
		"must_forbid": ["P0:r0=0"]
	}}`
	resp, body := postJSON(t, ts.URL+"/v1/litmus", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/litmus: %d: %s", resp.StatusCode, body)
	}
	var jr struct {
		Result litmus.Report `json:"result"`
	}
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if !jr.Result.Ok() {
		t.Fatalf("inline test failed: %+v", jr.Result)
	}
}

func TestLitmusBatch(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})

	// Whole hand-written corpus as one job.
	resp, body := postJSON(t, ts.URL+"/v1/litmus", `{"batch":"corpus","seeds":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/litmus batch: %d: %s", resp.StatusCode, body)
	}
	var jr struct {
		Key    string            `json:"key"`
		Cached bool              `json:"cached"`
		Result LitmusBatchReport `json:"result"`
	}
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	rep := jr.Result
	if rep.Batch != "corpus" || rep.Total < 15 || len(rep.Rows) != rep.Total {
		t.Fatalf("unexpected batch report: batch=%q total=%d rows=%d", rep.Batch, rep.Total, len(rep.Rows))
	}
	if rep.Failed != 0 {
		t.Fatalf("batch reported %d failures: %+v", rep.Failed, rep.Rows)
	}
	if rep.Seeds != 4 || rep.States == 0 {
		t.Fatalf("batch bookkeeping: seeds=%d states=%d", rep.Seeds, rep.States)
	}
	for _, ax := range []string{"fifo", "np-synch", "coherence"} {
		if rep.AxiomCoverage[ax] == 0 {
			t.Errorf("batch axiom coverage missing %q: %v", ax, rep.AxiomCoverage)
		}
	}

	// Resubmitting the identical batch is a cache hit.
	resp, body = postJSON(t, ts.URL+"/v1/litmus", `{"batch":"corpus","seeds":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/litmus batch (repeat): %d: %s", resp.StatusCode, body)
	}
	var jr2 struct {
		Key    string `json:"key"`
		Cached bool   `json:"cached"`
	}
	if err := json.Unmarshal(body, &jr2); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	if jr2.Key != jr.Key || !jr2.Cached {
		t.Fatalf("expected batch cache hit under %s, got key %s cached=%v", jr.Key, jr2.Key, jr2.Cached)
	}

	// The generated corpus is listable.
	resp, body = getJSON(t, ts.URL+"/v1/litmus?set=generated")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/litmus?set=generated: %d: %s", resp.StatusCode, body)
	}
	var list struct {
		Tests []struct {
			Name     string   `json:"name"`
			Coverage []string `json:"coverage"`
		} `json:"tests"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("decoding list: %v", err)
	}
	if len(list.Tests) < 200 {
		t.Fatalf("generated listing has %d tests, want >= 200", len(list.Tests))
	}
	for _, e := range list.Tests[:5] {
		if len(e.Coverage) == 0 {
			t.Errorf("%s: generated test listed without coverage tags", e.Name)
		}
	}
}

func TestLitmusBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	for name, body := range map[string]string{
		"no test":       `{}`,
		"both":          `{"name":"sb","test":{"name":"x","procs":[[{"op":"flush"}]]}}`,
		"unknown name":  `{"name":"nope"}`,
		"bad seeds":     `{"name":"sb","seeds":100000}`,
		"invalid test":  `{"test":{"name":"x","procs":[[{"op":"cas","loc":"x"}]]}}`,
		"unknown field": `{"name":"sb","bogus":1}`,
		"bad batch":     `{"batch":"everything"}`,
		"batch + name":  `{"batch":"corpus","name":"sb"}`,
	} {
		resp, b := postJSON(t, ts.URL+"/v1/litmus", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: got %d, want 400: %s", name, resp.StatusCode, b)
		}
	}
}
