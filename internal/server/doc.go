// Package server implements ssmpd, the simulation-as-a-service daemon: an
// HTTP JSON API that runs the repository's deterministic multiprocessor
// simulations on a bounded worker pool behind a content-addressed result
// cache.
//
// The design leans on one property of the simulator: a run is a pure
// function of its specification. The same (machine config, workload, seed)
// produces a bit-identical core.Result, so results can be cached exactly —
// no TTLs, no invalidation — under a key that is the SHA-256 of the
// canonicalized job specification. Identical jobs submitted concurrently
// are deduplicated in flight: one simulation runs, every waiter shares its
// outcome.
//
// Endpoints:
//
//	POST /v1/sim        run one simulation (or serve it from cache)
//	POST /v1/figure     reproduce one paper figure (4-7)
//	GET  /v1/figure/{n} same, with query-parameter overrides
//	GET  /healthz       liveness and drain state
//	GET  /metrics       JSON snapshot: queue, workers, cache, latencies
//
// Backpressure is explicit: when the job queue is full the daemon answers
// 429 with a Retry-After header rather than buffering unboundedly. Per-job
// deadlines propagate into the event loop via core.Machine.RunContext, so
// a timed-out job stops simulating instead of burning a worker. Shutdown
// drains: accepted jobs finish, new ones are refused with 503.
package server
