package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"ssmp/internal/core"
	"ssmp/internal/harness"
	"ssmp/internal/mem"
	"ssmp/internal/metrics"
	"ssmp/internal/network"
	"ssmp/internal/sim"
	"ssmp/internal/workload"
)

// SimSpec is the canonical specification of one simulation job. After
// Normalize, the struct is fully determined (every default applied), so
// its JSON encoding — struct fields marshal in declaration order — is a
// canonical form, and its hash addresses the result exactly: the simulator
// guarantees the same spec produces a bit-identical result.
type SimSpec struct {
	// Procs is the machine size (a power of two).
	Procs int `json:"procs"`
	// Protocol is "cbl" or "wbi".
	Protocol string `json:"protocol"`
	// Consistency is "bc" or "sc" (CBL machine; WBI forces "sc").
	Consistency string `json:"consistency"`
	// Topology is "omega", "mesh", or "bus".
	Topology string `json:"topology"`
	// Workload is "sync" or "queue".
	Workload string `json:"workload"`
	// Grain is the references-per-task granularity.
	Grain int `json:"grain"`
	// Episodes is the sync model's episodes per processor.
	Episodes int `json:"episodes"`
	// Tasks is the work-queue model's initial task count.
	Tasks int `json:"tasks"`
	// SpawnProb is the work-queue model's task-spawn probability
	// (pointer so that an explicit 0 is distinguishable from "default").
	SpawnProb *float64 `json:"spawn_prob,omitempty"`
	// Backoff selects exponential backoff for WBI software locks.
	Backoff bool `json:"backoff"`
	// Seed drives all workload randomness.
	Seed *uint64 `json:"seed,omitempty"`
	// Jitter seeds schedule jitter (core.Config.Jitter); 0 keeps the
	// canonical deterministic schedule.
	Jitter uint64 `json:"jitter"`
	// SimWorkers runs the simulation on the time-windowed parallel engine
	// with this many workers (core.Config.SimWorkers); 0 is the classic
	// serial engine. The contended network is lane-safe (window-barrier
	// port arbitration), so ideal_network is not required; a spec that
	// still cannot use lanes degrades to the serial engine and reports
	// lane_fallback_reason in the result. Results are bit-identical for
	// every value >= 1. omitempty keeps serial specs' cache keys
	// unchanged.
	SimWorkers int `json:"sim_workers,omitempty"`

	// Ablation toggles (see core.Config).
	DirectHandoff bool `json:"direct_handoff"`
	WriteUpdate   bool `json:"write_update"`
	IdealNetwork  bool `json:"ideal_network"`
	DanceHall     bool `json:"dance_hall"`
	DirPointers   int  `json:"dir_pointers"`

	// Faults optionally enables the interconnect fault plane and the
	// fabric's reliable transport (nil = a reliable fabric). A pointer
	// with omitempty keeps fault-free specs' cache keys unchanged.
	Faults *FaultSpec `json:"faults,omitempty"`
}

// FaultSpec is the JSON form of network.FaultConfig: seeded per-link
// drop/duplicate/delay injection.
type FaultSpec struct {
	// Seed drives the fault randomness; it must be nonzero (a zero seed
	// would silently disable the plane — omit the faults block instead).
	Seed uint64 `json:"seed"`
	// Drop, Dup and Delay are per-message probabilities in [0,1).
	Drop  float64 `json:"drop"`
	Dup   float64 `json:"dup"`
	Delay float64 `json:"delay"`
	// DelayMax bounds injected extra delay in cycles (0 = the default).
	DelayMax int64 `json:"delay_max,omitempty"`
}

// config lowers the spec to the network's fault configuration.
func (f *FaultSpec) config() network.FaultConfig {
	return network.FaultConfig{
		Seed:     f.Seed,
		Rates:    network.FaultRates{Drop: f.Drop, Dup: f.Dup, Delay: f.Delay},
		DelayMax: sim.Time(f.DelayMax),
	}
}

// maxSpecProcs caps the accepted machine size: a request is a few hundred
// bytes, but the simulation it names is O(procs · work), and the daemon
// should refuse jobs that cannot plausibly finish within a request
// deadline.
const maxSpecProcs = 128

// Normalize applies defaults in place and validates the spec.
func (s *SimSpec) Normalize() error {
	if s.Procs == 0 {
		s.Procs = 16
	}
	s.Protocol = strings.ToLower(s.Protocol)
	if s.Protocol == "" {
		s.Protocol = "cbl"
	}
	s.Consistency = strings.ToLower(s.Consistency)
	if s.Consistency == "" {
		if s.Protocol == "wbi" {
			s.Consistency = "sc"
		} else {
			s.Consistency = "bc"
		}
	}
	s.Topology = strings.ToLower(s.Topology)
	if s.Topology == "" {
		s.Topology = "omega"
	}
	s.Workload = strings.ToLower(s.Workload)
	if s.Workload == "" {
		s.Workload = "queue"
	}
	if s.Grain == 0 {
		s.Grain = workload.MediumGrain
	}
	if s.Episodes == 0 {
		s.Episodes = 8
	}
	if s.Tasks == 0 {
		s.Tasks = 128
	}
	if s.SpawnProb == nil {
		p := 0.2
		s.SpawnProb = &p
	}
	if s.Seed == nil {
		v := uint64(42)
		s.Seed = &v
	}

	if s.Procs < 2 || s.Procs > maxSpecProcs || s.Procs&(s.Procs-1) != 0 {
		return fmt.Errorf("procs must be a power of two in [2,%d], got %d", maxSpecProcs, s.Procs)
	}
	switch s.Protocol {
	case "cbl", "wbi":
	default:
		return fmt.Errorf("protocol must be cbl or wbi, got %q", s.Protocol)
	}
	switch s.Consistency {
	case "bc", "sc":
	default:
		return fmt.Errorf("consistency must be bc or sc, got %q", s.Consistency)
	}
	if s.Protocol == "wbi" && s.Consistency != "sc" {
		return fmt.Errorf("the wbi machine is always sequentially consistent")
	}
	switch s.Topology {
	case "omega", "mesh", "bus":
	default:
		return fmt.Errorf("topology must be omega, mesh, or bus, got %q", s.Topology)
	}
	switch s.Workload {
	case "sync", "queue":
	default:
		return fmt.Errorf("workload must be sync or queue, got %q", s.Workload)
	}
	if s.Grain < 1 || s.Grain > 65536 {
		return fmt.Errorf("grain must be in [1,65536], got %d", s.Grain)
	}
	if s.Episodes < 1 || s.Episodes > 4096 {
		return fmt.Errorf("episodes must be in [1,4096], got %d", s.Episodes)
	}
	if s.Tasks < 1 || s.Tasks > 1<<20 {
		return fmt.Errorf("tasks must be in [1,%d], got %d", s.Tasks, 1<<20)
	}
	if p := *s.SpawnProb; p < 0 || p >= 1 {
		return fmt.Errorf("spawn_prob must be in [0,1), got %g", p)
	}
	if s.DirPointers < 0 {
		return fmt.Errorf("dir_pointers must be >= 0, got %d", s.DirPointers)
	}
	if s.SimWorkers < 0 || s.SimWorkers > maxSpecProcs {
		return fmt.Errorf("sim_workers must be in [0,%d], got %d", maxSpecProcs, s.SimWorkers)
	}
	if s.Faults != nil {
		if s.Faults.DelayMax < 0 {
			return fmt.Errorf("faults.delay_max must be >= 0, got %d", s.Faults.DelayMax)
		}
		fc := s.Faults.config()
		if err := fc.Validate(); err != nil {
			return fmt.Errorf("faults: %w", err)
		}
		if !fc.Enabled() {
			// Reject no-op fault blocks so "faults off" has exactly one
			// canonical spelling (no faults field) and one cache key.
			return fmt.Errorf("faults block present but inert (zero seed or all-zero rates); omit it instead")
		}
	}
	return nil
}

// Key returns the spec's content address. Call Normalize first.
func (s *SimSpec) Key() string { return specKey("sim", s) }

// config builds the machine configuration the spec names.
func (s *SimSpec) config() core.Config {
	cfg := core.DefaultConfig(s.Procs)
	if s.Protocol == "wbi" {
		cfg.Protocol = core.ProtoWBI
	}
	if s.Consistency == "sc" {
		cfg.Consistency = core.SC
	}
	switch s.Topology {
	case "mesh":
		cfg.Topology = network.TopMesh
	case "bus":
		cfg.Topology = network.TopBus
	}
	cfg.DirectHandoff = s.DirectHandoff
	cfg.WriteUpdate = s.WriteUpdate
	cfg.IdealNetwork = s.IdealNetwork
	cfg.DanceHall = s.DanceHall
	cfg.DirMaxPointers = s.DirPointers
	cfg.Jitter = s.Jitter
	cfg.SimWorkers = s.SimWorkers
	if s.Faults != nil {
		cfg.Faults = s.Faults.config()
	}
	return cfg
}

// SimResult is the JSON form of a completed simulation.
type SimResult struct {
	Cycles uint64 `json:"cycles"`
	// Events is the number of kernel events the simulation executed — the
	// denominator-free measure of simulation work, independent of wall
	// time and host load.
	Events          uint64  `json:"events"`
	Messages        uint64  `json:"messages"`
	MeanNetLatency  float64 `json:"mean_net_latency"`
	MeanNetQueueing float64 `json:"mean_net_queueing"`
	MeanUtilization float64 `json:"mean_utilization"`
	// ByKind breaks Messages down by message kind and cost class
	// (metrics.Collector's JSON form).
	ByKind *metrics.Collector `json:"by_kind"`
	// Faults reports fault injection and transport recovery counters
	// (present only when the spec enabled the fault plane).
	Faults *metrics.FaultCounters `json:"faults,omitempty"`
	// RMR is the run's remote-memory-reference account: every shared
	// reference classified local (served by the issuing node) or remote
	// (crossed the interconnect), plus writebacks, summed over processors.
	RMR *metrics.RMRCounters `json:"rmr,omitempty"`
	// LaneFallback is the machine-readable reason the run degraded to the
	// serial engine despite sim_workers > 0 (e.g. "bus_topology"); absent
	// when lane mode ran or was not requested.
	LaneFallback string `json:"lane_fallback_reason,omitempty"`
}

// run executes the spec on a fresh machine. The returned collector is the
// run's message counters (also referenced from the result), for merging
// into the daemon's aggregate counters.
func (s *SimSpec) run(ctx context.Context) (*SimResult, *metrics.Collector, error) {
	cfg := s.config()
	p := workload.DefaultParams()
	p.Grain = s.Grain
	layout := workload.NewLayout(mem.Geometry{BlockWords: cfg.BlockWords, Nodes: cfg.Nodes}, p)
	var kit workload.SyncKit
	if cfg.Protocol == core.ProtoCBL {
		kit = workload.CBLKit(layout, s.Procs)
	} else {
		kit = workload.WBIKit(layout, s.Procs, s.Backoff)
	}
	var progs []core.Program
	if s.Workload == "sync" {
		progs = workload.SyncModel(s.Procs, s.Episodes, p, layout, kit, *s.Seed)
	} else {
		progs, _ = workload.WorkQueue(s.Procs, s.Tasks, *s.SpawnProb, p, layout, kit, *s.Seed)
	}
	m := core.NewMachine(cfg)
	res, err := m.RunContext(ctx, progs)
	if err != nil {
		return nil, nil, err
	}
	out := &SimResult{
		Cycles:          uint64(res.Cycles),
		Events:          res.Events,
		Messages:        res.Messages,
		MeanNetLatency:  res.MeanNetLatency,
		MeanNetQueueing: res.MeanNetQueueing,
		MeanUtilization: res.MeanUtilization,
		ByKind:          m.Messages(),
		LaneFallback:    res.LaneFallback,
	}
	if s.Faults != nil {
		fc := res.Faults
		out.Faults = &fc
	}
	if res.RMR.Any() {
		rc := res.RMR
		out.RMR = &rc
	}
	return out, m.Messages(), nil
}

// FigureSpec is the canonical specification of a paper-figure job: which
// figure, and the sweep parameters the harness exposes.
type FigureSpec struct {
	// Figure is the paper figure number (4-7).
	Figure int `json:"figure"`
	// Procs is the processor-count sweep.
	Procs []int `json:"procs"`
	// Episodes, Tasks, SpawnProb, Seed override harness defaults.
	Episodes  int      `json:"episodes"`
	Tasks     int      `json:"tasks"`
	SpawnProb *float64 `json:"spawn_prob,omitempty"`
	Seed      *uint64  `json:"seed,omitempty"`
}

// Normalize applies harness defaults in place and validates the spec.
func (f *FigureSpec) Normalize() error {
	def := harness.DefaultOptions()
	if f.Procs == nil {
		f.Procs = def.Procs
	}
	if f.Episodes == 0 {
		f.Episodes = def.Episodes
	}
	if f.Tasks == 0 {
		f.Tasks = def.Tasks
	}
	if f.SpawnProb == nil {
		f.SpawnProb = &def.SpawnProb
	}
	if f.Seed == nil {
		f.Seed = &def.Seed
	}

	if f.Figure < 4 || f.Figure > 7 {
		return fmt.Errorf("figure must be 4-7, got %d", f.Figure)
	}
	if len(f.Procs) == 0 || len(f.Procs) > 16 {
		return fmt.Errorf("procs sweep must have 1-16 entries, got %d", len(f.Procs))
	}
	for _, n := range f.Procs {
		if n < 2 || n > maxSpecProcs || n&(n-1) != 0 {
			return fmt.Errorf("procs entries must be powers of two in [2,%d], got %d", maxSpecProcs, n)
		}
	}
	if f.Episodes < 1 || f.Episodes > 4096 {
		return fmt.Errorf("episodes must be in [1,4096], got %d", f.Episodes)
	}
	if f.Tasks < 1 || f.Tasks > 1<<20 {
		return fmt.Errorf("tasks must be in [1,%d], got %d", f.Tasks, 1<<20)
	}
	if p := *f.SpawnProb; p < 0 || p >= 1 {
		return fmt.Errorf("spawn_prob must be in [0,1), got %g", p)
	}
	return nil
}

// Key returns the spec's content address. Call Normalize first.
func (f *FigureSpec) Key() string { return specKey("figure", f) }

// run reproduces the figure through the harness.
func (f *FigureSpec) run(ctx context.Context) (*harness.Figure, error) {
	o := harness.DefaultOptions()
	o.Procs = f.Procs
	o.Episodes = f.Episodes
	o.Tasks = f.Tasks
	o.SpawnProb = *f.SpawnProb
	o.Seed = *f.Seed
	fig, err := o.WithContext(ctx).FigureByNumber(f.Figure)
	if err != nil {
		return nil, err
	}
	return &fig, nil
}

// specKey hashes a normalized spec into its content address. The kind tag
// keeps differently-typed specs with coincidentally equal encodings apart;
// a version bump belongs here if a spec's canonical form ever changes
// meaning.
func specKey(kind string, spec any) string {
	enc, err := json.Marshal(spec)
	if err != nil {
		panic(fmt.Sprintf("server: canonicalizing %s spec: %v", kind, err))
	}
	sum := sha256.Sum256(append([]byte("ssmpd/v1/"+kind+"\x00"), enc...))
	return "sha256:" + hex.EncodeToString(sum[:])
}
