package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// errQueueFull reports that the bounded job queue has no free slot; the
// HTTP layer translates it into 429 + Retry-After.
var errQueueFull = errors.New("server: job queue full")

// task is one unit of pool work: a closure plus the channel its waiters
// block on. res/err are written once, before done is closed.
type task struct {
	ctx  context.Context
	run  func(context.Context) (any, error)
	res  any
	err  error
	done chan struct{}
}

// pool is a fixed-size worker pool over a bounded queue. Submission never
// blocks: a full queue is an error, which keeps backpressure at the edge
// of the system instead of in unbounded buffering.
type pool struct {
	queue   chan *task
	wg      sync.WaitGroup
	workers int
	busy    atomic.Int64
}

func newPool(workers, depth int) *pool {
	p := &pool{queue: make(chan *task, depth), workers: workers}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for t := range p.queue {
		p.busy.Add(1)
		// A job whose deadline expired while queued is not worth
		// starting; its waiter already gave up.
		if err := t.ctx.Err(); err != nil {
			t.err = err
		} else {
			t.res, t.err = t.run(t.ctx)
		}
		close(t.done)
		p.busy.Add(-1)
	}
}

// submit enqueues a task without blocking.
func (p *pool) submit(t *task) error {
	select {
	case p.queue <- t:
		return nil
	default:
		return errQueueFull
	}
}

// depth returns the number of queued (not yet running) tasks.
func (p *pool) depth() int { return len(p.queue) }

// capacity returns the queue's slot count.
func (p *pool) capacity() int { return cap(p.queue) }

// close stops intake and blocks until the workers finish every queued
// task. The caller must guarantee no submit races close (the Server's
// draining flag does).
func (p *pool) close() {
	close(p.queue)
	p.wg.Wait()
}
