package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
)

// smallKV is a kv spec cheap enough for unit tests.
const smallKV = `{"procs":4,"lock":"cbl","keys":64,"shards":4,"ops":32,"seed":7}`

func TestKVEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})

	resp, body := postJSON(t, ts.URL+"/v1/kv", smallKV)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/kv: %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(jr.Key, "sha256:") {
		t.Fatalf("key %q is not a content address", jr.Key)
	}
	raw, _ := json.Marshal(jr.Result)
	var res KVResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("decoding result: %v", err)
	}
	if res.Ops != 4*32 {
		t.Fatalf("ops=%d, want %d", res.Ops, 4*32)
	}
	if res.Cycles == 0 || res.P99 < res.P50 || res.Throughput <= 0 {
		t.Fatalf("degenerate result: cycles=%d p50=%d p99=%d thr=%g",
			res.Cycles, res.P50, res.P99, res.Throughput)
	}
	if len(res.Oracle.Violations) != 0 {
		t.Fatalf("oracle violations in a successful response: %v", res.Oracle.Violations)
	}

	// Identical spec: cache hit with a bit-identical payload.
	resp2, body2 := postJSON(t, ts.URL+"/v1/kv", smallKV)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d: %s", resp2.StatusCode, body2)
	}
	var jr2 JobResponse
	if err := json.Unmarshal(body2, &jr2); err != nil {
		t.Fatal(err)
	}
	if !jr2.Cached || jr2.Key != jr.Key {
		t.Fatalf("second identical kv request: cached=%v key match=%v", jr2.Cached, jr2.Key == jr.Key)
	}
}

func TestKVWithFaults(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	spec := `{"procs":4,"lock":"mcs","keys":64,"shards":4,"ops":32,
		"faults":{"seed":3,"drop":0.03,"dup":0.03,"delay":0.1}}`
	resp, body := postJSON(t, ts.URL+"/v1/kv", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/kv with faults: %d: %s", resp.StatusCode, body)
	}
	var jr JobResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(jr.Result)
	var res KVResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Faults == nil {
		t.Fatal("fault counters absent from a faulted run")
	}
	if len(res.Oracle.Violations) != 0 {
		t.Fatalf("oracle violations under faults: %v", res.Oracle.Violations)
	}
}

func TestKVSpecValidation(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	bad := []struct {
		name, body, frag string
	}{
		{"procs", `{"procs":3}`, "power of two"},
		{"lock", `{"lock":"nope"}`, "unknown lock"},
		{"mix", `{"get_frac":0.9,"put_frac":0.3}`, "mix"},
		{"workers", `{"sim_workers":-1}`, "sim_workers"},
		{"inert faults", `{"faults":{"seed":0}}`, "inert"},
		{"unknown field", `{"procz":4}`, "unknown field"},
		{"ops cap", `{"ops":100000}`, "ops"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/kv", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), tc.frag) {
				t.Fatalf("error %s does not mention %q", body, tc.frag)
			}
		})
	}
}

// TestKVSpecKeyStability pins the kv cache key's canonical form: defaults
// applied explicitly and defaults applied by normalization address the same
// result, and any parameter change addresses a different one.
func TestKVSpecKeyStability(t *testing.T) {
	a := &KVSpec{Procs: 8}
	if err := a.Normalize(); err != nil {
		t.Fatal(err)
	}
	b := &KVSpec{Procs: 8, Lock: "cbl", Keys: 1024}
	if err := b.Normalize(); err != nil {
		t.Fatal(err)
	}
	if a.Key() != b.Key() {
		t.Fatal("explicit defaults changed the cache key")
	}
	c := &KVSpec{Procs: 8, Lock: "mcs"}
	if err := c.Normalize(); err != nil {
		t.Fatal(err)
	}
	if c.Key() == a.Key() {
		t.Fatal("different lock scheme, same cache key")
	}
}

// TestMetricsLatencySummary pins the satellite: after an executed job,
// GET /metrics reports the wall-latency quantile summary, not just the
// histogram.
func TestMetricsLatencySummary(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2})
	if resp, body := postJSON(t, ts.URL+"/v1/kv", smallKV); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/kv: %d: %s", resp.StatusCode, body)
	}
	resp, body := getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d: %s", resp.StatusCode, body)
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Latency.Count != 1 {
		t.Fatalf("latency count=%d, want 1 executed job", snap.Latency.Count)
	}
	if snap.Latency.P50MS == 0 || snap.Latency.P99MS < snap.Latency.P50MS {
		t.Fatalf("degenerate latency summary: %+v", snap.Latency)
	}
	if snap.Latency.MaxMS > snap.Latency.P99MS {
		t.Fatalf("p99 %d below max %d (quantile must be an upper bound)",
			snap.Latency.P99MS, snap.Latency.MaxMS)
	}
}
