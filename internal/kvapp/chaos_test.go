package kvapp

import (
	"context"
	"testing"

	"ssmp/internal/litmus"
	"ssmp/internal/metrics"
	"ssmp/internal/network"
)

// chaosCorpus is the client-population corpus the soak crosses with the
// fault seeds: both protocols, open and closed loop, read-mostly and
// write-heavy mixes, fast path on and off.
func chaosCorpus() []Spec {
	base := func(lock string) Spec {
		s := DefaultSpec(4)
		s.Lock = lock
		s.Keys = 64
		s.Shards = 4
		s.Ops = 48
		s.SubCap = 8
		return s
	}
	readMostly := base("cbl")
	writeHeavy := base("cbl")
	writeHeavy.GetFrac, writeHeavy.PutFrac = 0.2, 0.5
	closed := base("cbl")
	closed.OpenLoop = false
	noFast := base("cbl")
	noFast.SubCap = 0
	mcs := base("mcs")
	mcsClosed := base("mcs")
	mcsClosed.OpenLoop = false
	mcsClosed.GetFrac, mcsClosed.PutFrac = 0.4, 0.3
	return []Spec{readMostly, writeHeavy, closed, noFast, mcs, mcsClosed}
}

// TestChaosSoak runs the client corpus over a misbehaving interconnect
// (drops, duplicates, delays at the litmus soak's standard rates) across
// >=16 fault seeds, alternating the serial engine and the PDES engine on
// the contended network so the window-barrier arbiter soaks under faults
// too. The reliable transport must keep every run alive, the
// sequential-consistency oracle must hold on every single one, and the
// sweep must actually have injected faults and recovered — on both engines.
func TestChaosSoak(t *testing.T) {
	nSeeds := 16
	if testing.Short() {
		nSeeds = 4
	}
	seeds := litmus.ChaosSeeds(nSeeds)
	rates := litmus.DefaultChaosRates()
	var total [2]metrics.FaultCounters // [serial, pdes]
	runs := 0
	for _, spec := range chaosCorpus() {
		for i, seed := range seeds {
			workers := 0
			if i%2 == 1 {
				workers = 2 // contended network on the lane engine
			}
			res, err := Run(context.Background(), spec, RunOptions{
				Jitter:     seed,
				Faults:     network.FaultConfig{Seed: seed, Rates: rates},
				SimWorkers: workers,
			})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if err := res.Check(); err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			total[i%2].Add(res.Sim.Faults)
			runs++
		}
	}
	for i, name := range []string{"serial", "pdes"} {
		if !total[i].Any() {
			t.Fatalf("chaos soak injected no faults on the %s engine over %d runs", name, runs)
		}
		if total[i].Retries == 0 {
			t.Fatalf("chaos soak exercised no retransmissions on the %s engine over %d runs", name, runs)
		}
	}
}
