package kvapp

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"ssmp/internal/mem"
	"ssmp/internal/workload"
)

func testSpec(procs int, lock string) Spec {
	s := DefaultSpec(procs)
	s.Lock = lock
	s.Keys = 128
	s.Shards = 8
	s.Ops = 160
	s.SubCap = 8
	return s
}

// TestRunOracle runs the service on both machine protocols and requires the
// sequential-consistency oracle to pass with a sensible op accounting.
func TestRunOracle(t *testing.T) {
	for _, lock := range []string{"cbl", "mcs", "ticket"} {
		t.Run(lock, func(t *testing.T) {
			spec := testSpec(4, lock)
			res, err := Run(context.Background(), spec, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.Check(); err != nil {
				t.Fatal(err)
			}
			if want := uint64(spec.Procs * spec.Ops); res.Ops != want {
				t.Fatalf("ops=%d, want %d", res.Ops, want)
			}
			if res.Gets+res.Puts+res.CASes != res.Ops {
				t.Fatalf("op mix %d+%d+%d does not sum to %d",
					res.Gets, res.Puts, res.CASes, res.Ops)
			}
			if res.All.Count() != res.Ops {
				t.Fatalf("latency samples %d, want %d", res.All.Count(), res.Ops)
			}
			if res.Puts == 0 || res.Oracle.WritesChecked == 0 {
				t.Fatalf("no writes exercised (puts=%d checked=%d)", res.Puts, res.Oracle.WritesChecked)
			}
			if res.P99() < res.P50() {
				t.Fatalf("p99 %d < p50 %d", res.P99(), res.P50())
			}
			if res.ThroughputOpsPerKCycle() <= 0 {
				t.Fatal("throughput not positive")
			}
		})
	}
}

// TestFastPathCounters pins the protocol split: on the CBL machine hot keys
// must ride the READ-UPDATE subscription fast path; on the WBI machine the
// subscription machinery must stay cold.
func TestFastPathCounters(t *testing.T) {
	cbl, err := Run(context.Background(), testSpec(4, "cbl"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cbl.Subscribes == 0 || cbl.FastReads == 0 {
		t.Fatalf("cbl: fast path unused (subscribes=%d fast=%d)", cbl.Subscribes, cbl.FastReads)
	}
	// SubscribeAfter warm-up plus SubCap churn keep some gets off the fast
	// path, but the zipf-hot head must land a solid share on it.
	if cbl.FastReads < cbl.Gets/4 {
		t.Fatalf("cbl: zipf-hot gets mostly missed the fast path (fast=%d of %d gets)",
			cbl.FastReads, cbl.Gets)
	}
	// SubCap 8 over 128 keys forces eviction churn.
	if cbl.Unsubscribes == 0 {
		t.Fatalf("cbl: no subscription evictions with SubCap=%d over %d keys", 8, 128)
	}
	mcs, err := Run(context.Background(), testSpec(4, "mcs"), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if mcs.Subscribes != 0 || mcs.FastReads != 0 || mcs.GlobalReads != 0 {
		t.Fatalf("mcs: CBL-only paths used (subscribes=%d fast=%d global=%d)",
			mcs.Subscribes, mcs.FastReads, mcs.GlobalReads)
	}
	if err := cbl.Check(); err != nil {
		t.Fatal(err)
	}
	if err := mcs.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestSeedDeterminism pins the whole run — cycles, latency quantiles,
// counters, summary text — as a pure function of (spec, options).
func TestSeedDeterminism(t *testing.T) {
	spec := testSpec(4, "cbl")
	a, err := Run(context.Background(), spec, RunOptions{Jitter: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), spec, RunOptions{Jitter: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("identical runs diverged:\n%s\nvs\n%s", a.Summary(), b.Summary())
	}
	if a.Sim.Cycles != b.Sim.Cycles || a.Counters != b.Counters {
		t.Fatal("identical runs diverged in cycles or counters")
	}
}

// TestSimWorkersBitIdentical is the acceptance criterion: seed-0 results
// must be bit-identical across SimWorkers settings (serial engine vs PDES
// lanes), which requires every piece of client state to be per-processor.
func TestSimWorkersBitIdentical(t *testing.T) {
	spec := testSpec(8, "cbl")
	spec.Seed = 0
	var base *Result
	for _, workers := range []int{0, 1, 2, 4} {
		res, err := Run(context.Background(), spec, RunOptions{
			SimWorkers:   workers,
			IdealNetwork: true,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := res.Check(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = res
			continue
		}
		if res.Sim.Cycles != base.Sim.Cycles {
			t.Fatalf("workers=%d: cycles %d != serial %d", workers, res.Sim.Cycles, base.Sim.Cycles)
		}
		if res.Counters != base.Counters {
			t.Fatalf("workers=%d: counters diverged from serial:\n%+v\nvs\n%+v",
				workers, res.Counters, base.Counters)
		}
		if res.Summary() != base.Summary() {
			t.Fatalf("workers=%d: summary diverged from serial", workers)
		}
	}
}

// TestSimWorkersBitIdenticalContended runs the KV service on the real
// (contended) network under the PDES engine: results must be oracle-clean
// and bit-identical at every worker count >= 1, and the contention must
// actually register (nonzero queueing). The reference is workers=1 — the
// lane-keyed event order is its own deterministic discipline, distinct from
// the serial engine's — and workers=1 itself must report lane mode, not a
// fallback.
func TestSimWorkersBitIdenticalContended(t *testing.T) {
	spec := testSpec(8, "cbl")
	spec.Seed = 0
	var base *Result
	for _, workers := range []int{1, 2, 4} {
		res, err := Run(context.Background(), spec, RunOptions{SimWorkers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := res.Check(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Sim.LaneFallback != "" {
			t.Fatalf("workers=%d: unexpected lane fallback %q", workers, res.Sim.LaneFallback)
		}
		if base == nil {
			if res.Sim.MeanNetQueueing == 0 {
				t.Fatal("contended run saw no queueing — contention path not exercised")
			}
			base = res
			continue
		}
		if res.Sim.Cycles != base.Sim.Cycles {
			t.Fatalf("workers=%d: cycles %d != workers=1 %d", workers, res.Sim.Cycles, base.Sim.Cycles)
		}
		if res.Sim.MeanNetQueueing != base.Sim.MeanNetQueueing {
			t.Fatalf("workers=%d: queueing %v != workers=1 %v",
				workers, res.Sim.MeanNetQueueing, base.Sim.MeanNetQueueing)
		}
		if res.Counters != base.Counters {
			t.Fatalf("workers=%d: counters diverged from workers=1:\n%+v\nvs\n%+v",
				workers, res.Counters, base.Counters)
		}
		if res.Summary() != base.Summary() {
			t.Fatalf("workers=%d: summary diverged from workers=1", workers)
		}
	}
}

// TestClosedLoop exercises the closed-loop population and the pure-CAS mix.
func TestClosedLoop(t *testing.T) {
	spec := testSpec(4, "cbl")
	spec.OpenLoop = false
	spec.GetFrac, spec.PutFrac = 0.5, 0 // rest CAS
	res, err := Run(context.Background(), spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	if res.CASes == 0 {
		t.Fatal("no CAS ops in a 50% CAS mix")
	}
	if res.Puts != 0 {
		t.Fatalf("puts=%d with PutFrac=0", res.Puts)
	}
}

// TestNoSubscriptions pins SubCap=0 as "fast path off": all CBL gets go
// READ-GLOBAL and the oracle still holds.
func TestNoSubscriptions(t *testing.T) {
	spec := testSpec(4, "cbl")
	spec.SubCap = 0
	res, err := Run(context.Background(), spec, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Fatal(err)
	}
	if res.Subscribes != 0 || res.FastReads != 0 {
		t.Fatalf("SubCap=0 still subscribed (subscribes=%d fast=%d)", res.Subscribes, res.FastReads)
	}
	if res.GlobalReads != res.Gets {
		t.Fatalf("SubCap=0: %d gets but %d global reads", res.Gets, res.GlobalReads)
	}
}

// TestSpecValidate covers the rejection paths.
func TestSpecValidate(t *testing.T) {
	mut := func(f func(*Spec)) Spec {
		s := DefaultSpec(4)
		f(&s)
		return s
	}
	bad := []struct {
		name string
		spec Spec
		frag string
	}{
		{"procs", mut(func(s *Spec) { s.Procs = 3 }), "power of two"},
		{"lock", mut(func(s *Spec) { s.Lock = "nope" }), "unknown lock"},
		{"keys", mut(func(s *Spec) { s.Keys = 0 }), "Keys"},
		{"shards", mut(func(s *Spec) { s.Shards = s.Keys + 1 }), "Shards"},
		{"ops", mut(func(s *Spec) { s.Ops = 0 }), "Ops"},
		{"mix", mut(func(s *Spec) { s.GetFrac = 0.9; s.PutFrac = 0.2 }), "mix"},
		{"theta", mut(func(s *Spec) { s.Theta = -1 }), "Theta"},
		{"arrival", mut(func(s *Spec) { s.Arrival.MeanGap = 0 }), "bursty"},
		{"subscribe", mut(func(s *Spec) { s.SubscribeAfter = 0 }), "SubscribeAfter"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(context.Background(), tc.spec, RunOptions{}); err == nil {
				t.Fatal("invalid spec accepted")
			} else if !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("error %q does not mention %q", err, tc.frag)
			}
		})
	}
	if err := DefaultSpec(4).Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
}

// TestOracleCatches feeds the oracle hand-built histories for every
// violation class it claims to detect — an oracle that cannot fail is not
// evidence.
func TestOracleCatches(t *testing.T) {
	cases := []struct {
		name string
		logs [][]opRec
		frag string
	}{
		{"duplicate write", [][]opRec{{
			{kind: OpPut, key: 1, read: 0, wrote: 1},
			{kind: OpPut, key: 1, read: 0, wrote: 1},
		}}, "written twice"},
		{"gapped writes", [][]opRec{{
			{kind: OpPut, key: 1, read: 0, wrote: 1},
			{kind: OpPut, key: 1, read: 2, wrote: 3},
		}}, "dense range"},
		{"thin air read", [][]opRec{{
			{kind: OpPut, key: 2, read: 0, wrote: 1},
			{kind: OpGet, key: 2, read: 5},
		}}, "thin air"},
		{"backwards view", [][]opRec{
			{{kind: OpPut, key: 3, read: 0, wrote: 1}, {kind: OpPut, key: 3, read: 1, wrote: 2}},
			{{kind: OpGet, key: 3, read: 2}, {kind: OpGet, key: 3, read: 1}},
		}, "backwards"},
		{"key range", [][]opRec{{
			{kind: OpGet, key: 99, read: 0},
		}}, "outside key space"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := checkOracle(8, tc.logs, nil)
			if len(rep.Violations) == 0 {
				t.Fatal("oracle passed a corrupt history")
			}
			if !strings.Contains(rep.Violations[0], tc.frag) {
				t.Fatalf("violation %q does not mention %q", rep.Violations[0], tc.frag)
			}
			if rep.Verdict() == "pass" {
				t.Fatal("verdict pass with violations")
			}
		})
	}

	// Clean history + wrong final memory = flush violation (CBL check).
	logs := [][]opRec{{
		{kind: OpPut, key: 0, read: 0, wrote: 1},
		{kind: OpGet, key: 0, read: 1},
	}}
	rep := checkOracle(8, logs, func(key int) (mem.Word, bool) { return 0, true })
	if len(rep.Violations) == 0 || !strings.Contains(rep.Violations[0], "globally visible") {
		t.Fatalf("stale home memory not caught: %v", rep.Violations)
	}
	rep = checkOracle(8, logs, func(key int) (mem.Word, bool) { return 1, true })
	if len(rep.Violations) != 0 {
		t.Fatalf("clean history rejected: %v", rep.Violations)
	}
	if rep.Verdict() != "pass" {
		t.Fatalf("verdict %q for clean history", rep.Verdict())
	}
}

// TestArrivalScheduleIndependence pins the open-loop invariant: the arrival
// schedule is fixed by the spec alone, so two lock schemes see the same
// offered load (same op counts), even though service times differ.
func TestArrivalScheduleIndependence(t *testing.T) {
	var mixes []string
	for _, lock := range []string{"cbl", "mcs"} {
		spec := testSpec(4, lock)
		res, err := Run(context.Background(), spec, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		mixes = append(mixes, fmt.Sprintf("%d/%d/%d", res.Gets, res.Puts, res.CASes))
	}
	if mixes[0] != mixes[1] {
		t.Fatalf("op mix differs across lock schemes: %s vs %s", mixes[0], mixes[1])
	}
}

// TestZipfReuse double-checks the kvapp hashing spreads shards: with the
// default spec every shard must own at least one key.
func TestShardCoverage(t *testing.T) {
	spec := DefaultSpec(4)
	seen := make(map[int]bool)
	for k := 0; k < spec.Keys; k++ {
		sh := spec.shardOf(k)
		if sh < 0 || sh >= spec.Shards {
			t.Fatalf("key %d hashed to shard %d of %d", k, sh, spec.Shards)
		}
		seen[sh] = true
	}
	if len(seen) != spec.Shards {
		t.Fatalf("only %d of %d shards own keys", len(seen), spec.Shards)
	}
	_ = workload.NewZipf(spec.Keys, spec.Theta) // spec params must be sampler-legal
}
