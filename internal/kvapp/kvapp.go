// Package kvapp is the repository's first application-scale workload: a
// sharded key-value service whose server loops are programs running *inside*
// the simulated multiprocessor, serving a synthetic client population.
//
// Architecture (DESIGN.md §12):
//
//   - Keys hash to home shards; each shard is guarded by a pluggable
//     synczoo lock (the paper's hardware CBL lock, MCS, test-and-set, ...),
//     which also selects the machine protocol, exactly as the zoo benches
//     do.
//   - Every key's current value is a version counter in a memory block of
//     its own; updates are locked read-modify-writes at the shard
//     (READ-GLOBAL + WRITE-GLOBAL inside the critical section, published by
//     the release's CP-Synch flush).
//   - On the CBL machine, reads of hot keys take the paper's READ-UPDATE
//     fast path: the client subscribes the key's block once, and from then
//     on plain READs are local cache hits kept fresh by the home's update
//     propagation — invalidation-free reads, the protocol's design point.
//     Cold keys use READ-GLOBAL (always fresh at memory, no cache fill that
//     could go stale). A bounded per-node subscription set (SubCap) evicts
//     via RESET-UPDATE.
//   - Each processor multiplexes Sessions logical clients, each with its
//     own seeded bursty arrival process and drawing keys from a shared
//     Zipfian popularity law; the op mix is get/put/CAS. Open-loop mode
//     measures latency from the *scheduled* arrival (queueing included);
//     closed-loop mode from the issue instant (pure service time).
//
// All mutable Go-side state is per-processor (client caches, op logs,
// latency histograms), so the workload is lane-safe: results are
// bit-identical at any core.Config.SimWorkers setting, and per-processor
// logs merge deterministically after the run.
//
// Every run is self-verifying: the per-key sequential-consistency oracle
// (oracle.go) checks the recorded operation logs after the machine stops.
package kvapp

import (
	"context"
	"fmt"

	"ssmp/internal/core"
	"ssmp/internal/mem"
	"ssmp/internal/metrics"
	"ssmp/internal/network"
	"ssmp/internal/sim"
	"ssmp/internal/synczoo"
	"ssmp/internal/workload"
)

// OpKind tags a client operation.
type OpKind uint8

const (
	OpGet OpKind = iota
	OpPut
	OpCAS
	numOpKinds
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpCAS:
		return "cas"
	}
	return "op?"
}

// Spec parameterizes the service and its client population. The zero value
// is not usable; start from DefaultSpec.
type Spec struct {
	// Procs is the machine size; every node runs one server/client loop.
	Procs int `json:"procs"`
	// Lock is the synczoo lock algorithm guarding each shard ("cbl",
	// "mcs", "tas", ...). It selects the machine protocol.
	Lock string `json:"lock"`
	// Keys is the key-space size; each key owns one memory block.
	Keys int `json:"keys"`
	// Shards is the number of shard locks keys hash onto.
	Shards int `json:"shards"`
	// Sessions is the number of logical clients multiplexed per processor.
	Sessions int `json:"sessions"`
	// Ops is the number of requests each processor serves.
	Ops int `json:"ops"`
	// GetFrac and PutFrac split the op mix; the remainder is CAS.
	GetFrac float64 `json:"get_frac"`
	PutFrac float64 `json:"put_frac"`
	// Theta is the Zipfian popularity skew (0 = uniform).
	Theta float64 `json:"theta"`
	// Arrival is each session's bursty arrival process.
	Arrival workload.Bursty `json:"arrival"`
	// OpenLoop selects open-loop arrivals (latency includes queueing
	// behind the scheduled arrival); false is closed-loop think time.
	OpenLoop bool `json:"open_loop"`
	// SubCap bounds the per-node READ-UPDATE subscription set (CBL only).
	SubCap int `json:"sub_cap"`
	// SubscribeAfter is the number of accesses before a key is considered
	// hot enough to subscribe (CBL only; >= 1).
	SubscribeAfter int `json:"subscribe_after"`
	// Seed drives all workload randomness.
	Seed uint64 `json:"seed"`
}

// DefaultSpec returns a read-mostly population for the given machine size.
func DefaultSpec(procs int) Spec {
	return Spec{
		Procs:          procs,
		Lock:           "cbl",
		Keys:           1024,
		Shards:         16,
		Sessions:       4,
		Ops:            256,
		GetFrac:        0.80,
		PutFrac:        0.15,
		Theta:          0.99,
		Arrival:        workload.Bursty{MeanGap: 200, MeanOff: 2000, MeanBurst: 8},
		OpenLoop:       true,
		SubCap:         64,
		SubscribeAfter: 2,
		Seed:           42,
	}
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	if s.Procs < 2 || s.Procs&(s.Procs-1) != 0 {
		return fmt.Errorf("kvapp: Procs must be a power of two >= 2, got %d", s.Procs)
	}
	if _, err := synczoo.LockAlgoByKey(s.Lock); err != nil {
		return err
	}
	if s.Keys < 1 || s.Keys > 1<<20 {
		return fmt.Errorf("kvapp: Keys must be in [1,%d], got %d", 1<<20, s.Keys)
	}
	if s.Shards < 1 || s.Shards > s.Keys {
		return fmt.Errorf("kvapp: Shards must be in [1,Keys], got %d", s.Shards)
	}
	if s.Sessions < 1 || s.Ops < 1 {
		return fmt.Errorf("kvapp: Sessions and Ops must be >= 1, got %d/%d", s.Sessions, s.Ops)
	}
	if s.GetFrac < 0 || s.PutFrac < 0 || s.GetFrac+s.PutFrac > 1 {
		return fmt.Errorf("kvapp: op mix fractions must be >= 0 and sum <= 1, got get=%g put=%g", s.GetFrac, s.PutFrac)
	}
	if s.Theta < 0 {
		return fmt.Errorf("kvapp: Theta must be >= 0, got %g", s.Theta)
	}
	if err := s.Arrival.Validate(); err != nil {
		return err
	}
	if s.SubCap < 0 || s.SubscribeAfter < 1 {
		return fmt.Errorf("kvapp: SubCap must be >= 0 and SubscribeAfter >= 1, got %d/%d", s.SubCap, s.SubscribeAfter)
	}
	return nil
}

// RunOptions carry the machine-level knobs a run composes with.
type RunOptions struct {
	// Jitter seeds schedule tie-breaking (core.Config.Jitter).
	Jitter uint64
	// Faults enables the interconnect fault plane (zero = reliable).
	Faults network.FaultConfig
	// SimWorkers selects the PDES lane engine; the contended network is
	// lane-safe (window-barrier port arbitration), so IdealNetwork is not
	// required.
	SimWorkers int
	// IdealNetwork removes switch contention (ablation).
	IdealNetwork bool
	// Horizon overrides the livelock guard (0 = core default).
	Horizon sim.Time
}

// layout is the service's simulated address map: shard locks first (each
// algorithm lays itself out in the arena), then one block per key.
type layout struct {
	locks   []synczoo.Lock
	keyAddr []mem.Addr
}

// shardOf hashes a key to its home shard.
func (s Spec) shardOf(key int) int {
	return int(splitmix(uint64(key)) % uint64(s.Shards))
}

// splitmix is the same mixer the workload streams use.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// build lays the store out in a fresh arena over the machine's geometry.
func (s Spec) build(algo synczoo.LockAlgo, geom mem.Geometry) *layout {
	a := synczoo.NewArena(geom)
	lay := &layout{
		locks:   make([]synczoo.Lock, s.Shards),
		keyAddr: make([]mem.Addr, s.Keys),
	}
	for i := 0; i < s.Shards; i++ {
		lay.locks[i] = algo.New(a, s.Procs).Lock
	}
	for k := 0; k < s.Keys; k++ {
		lay.keyAddr[k] = a.Block()
	}
	return lay
}

// opRec is one logged operation for the oracle: the version read at the
// store and, for updates, the version written.
type opRec struct {
	kind  OpKind
	key   int
	read  mem.Word
	wrote mem.Word // 0 = no write (gets, failed CAS)
}

// Counters summarize what a run's clients did.
type Counters struct {
	Ops      uint64 `json:"ops"`
	Gets     uint64 `json:"gets"`
	Puts     uint64 `json:"puts"`
	CASes    uint64 `json:"cases"`
	CASFails uint64 `json:"cas_fails"`
	// FastReads are gets served by the READ-UPDATE subscription fast path
	// (a plain READ on a subscribed line); GlobalReads are cold-key
	// READ-GLOBALs; Subscribes/Unsubscribes count subscription churn.
	// GuardHits count fast reads whose propagated value lagged a version
	// this client had already observed (served from the newer local copy).
	FastReads    uint64 `json:"fast_reads"`
	GlobalReads  uint64 `json:"global_reads"`
	Subscribes   uint64 `json:"subscribes"`
	Unsubscribes uint64 `json:"unsubscribes"`
	GuardHits    uint64 `json:"guard_hits"`
}

// add merges another counter set.
func (c *Counters) add(o Counters) {
	c.Ops += o.Ops
	c.Gets += o.Gets
	c.Puts += o.Puts
	c.CASes += o.CASes
	c.CASFails += o.CASFails
	c.FastReads += o.FastReads
	c.GlobalReads += o.GlobalReads
	c.Subscribes += o.Subscribes
	c.Unsubscribes += o.Unsubscribes
	c.GuardHits += o.GuardHits
}

// procResult is one processor's slice of the run, filled in by its own
// program goroutine only (lane-safe).
type procResult struct {
	counters Counters
	lat      [numOpKinds]metrics.Histogram
	log      []opRec
}

// Result is a completed run: the simulation result, merged latency
// distributions, counters, and the oracle's verdict.
type Result struct {
	Spec Spec
	Sim  core.Result
	Counters
	// Lat holds the per-op-kind latency distributions (cycles); All merges
	// them.
	Lat [numOpKinds]metrics.Histogram
	All metrics.Histogram
	// Oracle is the per-key sequential-consistency verdict.
	Oracle OracleReport
}

// P50, P99 and Mean summarize the overall latency distribution in cycles.
func (r *Result) P50() uint64   { return r.All.Quantile(0.50) }
func (r *Result) P99() uint64   { return r.All.Quantile(0.99) }
func (r *Result) Mean() float64 { return r.All.Mean() }

// ThroughputOpsPerKCycle is completed operations per thousand cycles.
func (r *Result) ThroughputOpsPerKCycle() float64 {
	if r.Sim.Cycles == 0 {
		return 0
	}
	return float64(r.Ops) * 1000 / float64(r.Sim.Cycles)
}

// Check returns an error when the oracle found a violation.
func (r *Result) Check() error {
	if len(r.Oracle.Violations) > 0 {
		return fmt.Errorf("kvapp: %s p=%d seed=%d: oracle violation: %s",
			r.Spec.Lock, r.Spec.Procs, r.Spec.Seed, r.Oracle.Violations[0])
	}
	return nil
}

// client is one processor's store-facing state. Everything here is local to
// the owning program goroutine.
type client struct {
	spec *Spec
	lay  *layout
	cbl  bool

	subs  map[int]uint64   // subscribed keys → last-use tick (CBL only)
	seen  map[int]int      // get-access counts toward SubscribeAfter
	last  map[int]mem.Word // newest version observed per key
	clock uint64           // LRU clock for subscription eviction

	res *procResult
}

func newClient(spec *Spec, lay *layout, cbl bool, res *procResult) *client {
	return &client{
		spec: spec, lay: lay, cbl: cbl,
		subs: make(map[int]uint64),
		seen: make(map[int]int),
		last: make(map[int]mem.Word),
		res:  res,
	}
}

// observe notes the newest version this client has evidence of for key.
func (c *client) observe(key int, v mem.Word) {
	if v > c.last[key] {
		c.last[key] = v
	}
}

// get reads the key's current version. On the CBL machine hot keys ride the
// READ-UPDATE subscription fast path; cold keys use READ-GLOBAL so no
// unsubscribed cache line can serve stale data forever. On the WBI machine
// a plain read is coherent.
func (c *client) get(p *core.Proc, key int) mem.Word {
	a := c.lay.keyAddr[key]
	c.res.counters.Gets++
	if !c.cbl {
		v := p.Read(a)
		c.observe(key, v)
		return v
	}
	if _, ok := c.subs[key]; ok {
		v := p.Read(a)
		c.res.counters.FastReads++
		if v < c.last[key] {
			// The subscription's cached line lags a version this client
			// already observed (update propagation is asynchronous, a line
			// may have been silently replaced, and the client's own locked
			// updates read fresher versions at the home). The client's
			// newest observation is the fresher answer; monotonicity is
			// preserved.
			v = c.last[key]
			c.res.counters.GuardHits++
		}
		c.clock++
		c.subs[key] = c.clock
		c.observe(key, v)
		return v
	}
	c.seen[key]++
	if c.spec.SubCap > 0 && c.seen[key] >= c.spec.SubscribeAfter {
		if len(c.subs) >= c.spec.SubCap {
			c.evict(p)
		}
		v := p.ReadUpdate(a)
		c.res.counters.Subscribes++
		c.clock++
		c.subs[key] = c.clock
		c.observe(key, v)
		return v
	}
	v := p.ReadGlobal(a)
	c.res.counters.GlobalReads++
	c.observe(key, v)
	return v
}

// evict unsubscribes the least recently used subscription.
func (c *client) evict(p *core.Proc) {
	victim, best := -1, uint64(0)
	for k, use := range c.subs {
		if victim == -1 || use < best || (use == best && k < victim) {
			victim, best = k, use
		}
	}
	p.ResetUpdate(c.lay.keyAddr[victim])
	delete(c.subs, victim)
	c.res.counters.Unsubscribes++
}

// update performs the locked read-modify-write both puts and CASes share:
// acquire the key's shard lock, read the current version fresh from the
// key's home, conditionally write its successor, release (the CP-Synch
// flush publishes the write before the lock moves on). Returns the version
// read and the version written (0 if none).
func (c *client) update(p *core.Proc, key int, decide func(cur mem.Word) (mem.Word, bool)) (mem.Word, mem.Word) {
	a := c.lay.keyAddr[key]
	lock := c.lay.locks[c.spec.shardOf(key)]
	lock.Acquire(p)
	cur := p.ReadGlobal(a)
	next, write := decide(cur)
	if write {
		p.WriteGlobal(a, next)
	}
	lock.Release(p)
	// observe() raises the client's per-key floor, which is also what the
	// fast-path guard clamps to — read-your-writes falls out for free.
	c.observe(key, cur)
	if write {
		c.observe(key, next)
		return cur, next
	}
	return cur, 0
}

// put unconditionally advances the key's version.
func (c *client) put(p *core.Proc, key int) (mem.Word, mem.Word) {
	c.res.counters.Puts++
	return c.update(p, key, func(cur mem.Word) (mem.Word, bool) { return cur + 1, true })
}

// cas advances the version only if it still matches the client's last
// observation (optimistic concurrency against the whole population).
func (c *client) cas(p *core.Proc, key int, expect mem.Word) (mem.Word, mem.Word) {
	c.res.counters.CASes++
	read, wrote := c.update(p, key, func(cur mem.Word) (mem.Word, bool) {
		return cur + 1, cur == expect
	})
	if wrote == 0 {
		c.res.counters.CASFails++
	}
	return read, wrote
}

// Run executes the spec on a fresh machine and checks the oracle. The
// returned error covers machine failures only; oracle violations are
// reported in Result.Oracle (and by Result.Check) so chaos sweeps can
// distinguish "the fabric killed the run" from "the service returned a
// non-sequentially-consistent answer".
func Run(ctx context.Context, spec Spec, opts RunOptions) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	algo, err := synczoo.LockAlgoByKey(spec.Lock)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(spec.Procs)
	cfg.Protocol = algo.Proto
	cfg.Jitter = opts.Jitter
	cfg.Faults = opts.Faults
	cfg.SimWorkers = opts.SimWorkers
	cfg.IdealNetwork = opts.IdealNetwork
	if opts.Horizon > 0 {
		cfg.Horizon = opts.Horizon
	}
	m := core.NewMachine(cfg)
	lay := spec.build(algo, m.Geometry())
	zipf := workload.NewZipf(spec.Keys, spec.Theta)
	cbl := algo.Proto == core.ProtoCBL

	perProc := make([]*procResult, spec.Procs)
	progs := make([]core.Program, spec.Procs)
	for i := 0; i < spec.Procs; i++ {
		i := i
		progs[i] = func(p *core.Proc) {
			res := &procResult{log: make([]opRec, 0, spec.Ops)}
			perProc[i] = res
			c := newClient(&spec, lay, cbl, res)
			ops := workload.NewStream(spec.Seed, uint64(i))
			arr := make([]*workload.Arrivals, spec.Sessions)
			next := make([]sim.Time, spec.Sessions)
			for s := range arr {
				arr[s] = workload.NewArrivals(spec.Arrival, spec.Seed,
					uint64(i)*65536+uint64(s))
				next[s] = arr[s].Next()
			}
			for n := 0; n < spec.Ops; n++ {
				// Serve the session with the earliest pending arrival
				// (ties break to the lowest session id — deterministic).
				s := 0
				for j := 1; j < spec.Sessions; j++ {
					if next[j] < next[s] {
						s = j
					}
				}
				t := next[s]
				if now := p.Now(); now < t {
					p.Think(t - now)
				}
				start := t
				if !spec.OpenLoop {
					// Closed loop: latency excludes the think time.
					start = p.Now()
				}
				key := zipf.Sample(ops)
				u := ops.Float64()
				var rec opRec
				switch {
				case u < spec.GetFrac:
					rec = opRec{kind: OpGet, key: key, read: c.get(p, key)}
				case u < spec.GetFrac+spec.PutFrac:
					r, w := c.put(p, key)
					rec = opRec{kind: OpPut, key: key, read: r, wrote: w}
				default:
					r, w := c.cas(p, key, c.last[key])
					rec = opRec{kind: OpCAS, key: key, read: r, wrote: w}
				}
				end := p.Now()
				res.lat[rec.kind].Observe(uint64(end - start))
				res.log = append(res.log, rec)
				res.counters.Ops++
				if spec.OpenLoop {
					// Open loop: the schedule does not wait for service.
					next[s] = t + arr[s].Next()
				} else {
					next[s] = end + arr[s].Next()
				}
			}
		}
	}

	simRes, err := m.RunContext(ctx, progs)
	if err != nil {
		return nil, fmt.Errorf("kvapp: %s p=%d seed=%d %s: %w",
			spec.Lock, spec.Procs, spec.Seed, opts.Faults, err)
	}

	out := &Result{Spec: spec, Sim: simRes}
	logs := make([][]opRec, spec.Procs)
	for i, pr := range perProc {
		out.Counters.add(pr.counters)
		for k := range pr.lat {
			out.Lat[k].Merge(&pr.lat[k])
			out.All.Merge(&pr.lat[k])
		}
		logs[i] = pr.log
	}
	// On the CBL machine every committed write was published home by the
	// releasing flush, so main memory holds each key's final version; the
	// WBI machine may legitimately leave the newest version dirty in the
	// last writer's cache, so the memory cross-check is CBL-only.
	var final func(key int) (mem.Word, bool)
	if cbl {
		final = func(key int) (mem.Word, bool) { return m.ReadMemory(lay.keyAddr[key]), true }
	}
	out.Oracle = checkOracle(spec.Keys, logs, final)
	return out, nil
}

// Summary renders the run one line per op kind plus the headline numbers.
func (r *Result) Summary() string {
	s := fmt.Sprintf("kv %s procs=%d keys=%d ops=%d: cycles=%d p50=%d p99=%d mean=%.0f thr=%.3f ops/kcycle oracle=%s\n",
		r.Spec.Lock, r.Spec.Procs, r.Spec.Keys, r.Ops, r.Sim.Cycles,
		r.P50(), r.P99(), r.Mean(), r.ThroughputOpsPerKCycle(), r.Oracle.Verdict())
	for k := OpGet; k < numOpKinds; k++ {
		h := &r.Lat[k]
		if h.Count() == 0 {
			continue
		}
		s += fmt.Sprintf("  %-3s n=%-6d p50=%-6d p99=%-6d mean=%.0f\n",
			k, h.Count(), h.Quantile(0.50), h.Quantile(0.99), h.Mean())
	}
	s += fmt.Sprintf("  fast=%d global=%d subs=%d evict=%d guard=%d casfail=%d rmr=%d\n",
		r.FastReads, r.GlobalReads, r.Subscribes, r.Unsubscribes, r.GuardHits, r.CASFails, r.Sim.RMR.Remote)
	return s
}
