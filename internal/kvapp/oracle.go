package kvapp

import (
	"fmt"

	"ssmp/internal/mem"
)

// Per-key sequential-consistency oracle.
//
// The store's structure admits a strong check without a general SC solver.
// Every committed write to a key happens inside that key's shard critical
// section and writes exactly cur+1, so the versions written to a key are
// serialized by the lock: they form the total write order 1, 2, ..., W
// directly. Against that order, a history is per-key sequentially
// consistent iff
//
//  1. each version in 1..W was written exactly once (the critical section
//     really serialized the read-modify-writes — a lost update or a
//     non-atomic RMW shows up as a duplicate or a gap);
//  2. no operation observed a version above the key's write count (values
//     cannot come from the future or from thin air);
//  3. each client's observations of a key are monotonically non-decreasing
//     (once a client sees version v, it never sees v' < v — the
//     read-update fast path, guarded client-side, must never travel
//     backwards);
//  4. on the CBL machine, the key's home memory ends at exactly W: every
//     committed write was made globally visible by the releasing CP-Synch
//     flush. (The WBI machine may leave the newest version dirty in the
//     last writer's cache, so the memory cross-check is protocol-gated.)
//
// Checks 1+2 pin the write order itself; check 3 pins every client's view
// to a point moving forward along it, which for single-word objects with a
// known total write order is exactly per-key sequential consistency.

// OracleReport is the verdict over one run's merged operation logs.
type OracleReport struct {
	// KeysWritten counts keys with at least one committed write.
	KeysWritten int `json:"keys_written"`
	// WritesChecked counts committed writes covered by the density check.
	WritesChecked int `json:"writes_checked"`
	// ReadsChecked counts operations covered by the monotonicity check.
	ReadsChecked int `json:"reads_checked"`
	// Violations holds human-readable findings; empty means the run passed.
	Violations []string `json:"violations,omitempty"`
}

// Verdict renders the report's one-word outcome.
func (r OracleReport) Verdict() string {
	if len(r.Violations) == 0 {
		return "pass"
	}
	return fmt.Sprintf("FAIL(%d)", len(r.Violations))
}

const maxViolations = 8

func (r *OracleReport) violate(format string, args ...any) {
	if len(r.Violations) < maxViolations {
		r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
	}
}

// checkOracle verifies the per-processor operation logs. final, when
// non-nil, reads a key's post-run home memory (CBL machines only).
func checkOracle(keys int, logs [][]opRec, final func(key int) (mem.Word, bool)) OracleReport {
	var rep OracleReport

	// Write order: collect each key's committed versions and check density.
	written := make(map[int][]mem.Word)
	for proc, log := range logs {
		for i, op := range log {
			if op.key < 0 || op.key >= keys {
				rep.violate("proc %d op %d: key %d outside key space [0,%d)", proc, i, op.key, keys)
				continue
			}
			if op.wrote != 0 {
				written[op.key] = append(written[op.key], op.wrote)
			}
		}
	}
	maxVer := make(map[int]mem.Word, len(written))
	for key, vs := range written {
		w := mem.Word(len(vs))
		maxVer[key] = w
		seen := make(map[mem.Word]bool, len(vs))
		for _, v := range vs {
			if seen[v] {
				rep.violate("key %d: version %d written twice (lost update / broken mutual exclusion)", key, v)
			}
			seen[v] = true
			if v < 1 || v > w {
				rep.violate("key %d: wrote version %d outside dense range [1,%d]", key, v, w)
			}
		}
		rep.KeysWritten++
		rep.WritesChecked += len(vs)
	}

	// Client views: reads bounded by the write count, per-(proc,key)
	// monotone. A committed write's own version counts as an observation.
	for proc, log := range logs {
		last := make(map[int]mem.Word)
		for i, op := range log {
			w := maxVer[op.key]
			if op.read > w {
				rep.violate("proc %d op %d (%s key %d): read version %d > write count %d (value from thin air)",
					proc, i, op.kind, op.key, op.read, w)
			}
			if op.read < last[op.key] {
				rep.violate("proc %d op %d (%s key %d): read version %d after observing %d (view moved backwards)",
					proc, i, op.kind, op.key, op.read, last[op.key])
			}
			if op.read > last[op.key] {
				last[op.key] = op.read
			}
			if op.wrote > last[op.key] {
				last[op.key] = op.wrote
			}
			rep.ReadsChecked++
		}
	}

	// Final memory: on CBL every committed write was flushed home.
	if final != nil {
		for key, w := range maxVer {
			if got, ok := final(key); ok && got != w {
				rep.violate("key %d: final home memory %d, want %d (committed write not made globally visible)",
					key, got, w)
			}
		}
	}
	return rep
}
