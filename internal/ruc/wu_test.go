package ruc

import (
	"testing"

	"ssmp/internal/cache"
	"ssmp/internal/mem"
	"ssmp/internal/msg"
)

// wuRig builds a rig with every home in sender-initiated write-update mode.
func wuRig(t testing.TB, n int) *rig {
	r := newRig(t, n)
	for _, h := range r.homes {
		h.WriteUpdateMode = true
	}
	return r
}

func TestWriteUpdateReadMissSubscribes(t *testing.T) {
	r := wuRig(t, 4)
	r.seed(17, 3)
	if got := r.read(t, 1, 17); got != 3 {
		t.Fatalf("read = %d, want 3", got)
	}
	b := r.geom.BlockOf(17)
	subs := r.homes[r.geom.Home(b)].Subscribers(b)
	if len(subs) != 1 || subs[0] != 1 {
		t.Fatalf("subscribers = %v, want implicit [1]", subs)
	}
	// A write-global now updates the reader unsolicited.
	r.writeGlobal(t, 2, 17, 9)
	if got := r.read(t, 1, 17); got != 9 {
		t.Fatalf("reader copy = %d, want 9 (write-update push)", got)
	}
}

func TestWriteUpdateSubscriptionsAccumulate(t *testing.T) {
	// The §4.1 contrast: write-update readers "continue to receive
	// updates even if the line is not actively used", so a writer pays
	// for every past reader; reader-initiated subscriptions only exist
	// where software asked for them.
	countProps := func(wu bool) uint64 {
		var r *rig
		if wu {
			r = wuRig(t, 8)
		} else {
			r = newRig(t, 8)
		}
		a := mem.Addr(16)
		// Seven nodes each read the block once, long ago.
		for n := 1; n < 8; n++ {
			r.read(t, n, a)
		}
		// In the reader-initiated world only node 1 still cares.
		if !wu {
			r.readUpdate(t, 1, a)
		}
		r.f.Coll.Reset()
		for k := 0; k < 10; k++ {
			r.writeGlobal(t, 0, a, mem.Word(k))
		}
		return r.f.Coll.Kind(msg.UpdateProp)
	}
	wu := countProps(true)
	ru := countProps(false)
	if ru >= wu {
		t.Fatalf("reader-initiated props (%d) not below write-update props (%d)", ru, wu)
	}
	if wu < 7*10 {
		t.Fatalf("write-update props = %d, want >= 70 (7 stale readers x 10 writes)", wu)
	}
	if ru != 10 {
		t.Fatalf("reader-initiated props = %d, want 10 (1 subscriber x 10 writes)", ru)
	}
}

func TestWriteUpdateEvictionUnsubscribes(t *testing.T) {
	r := wuRig(t, 4)
	r.nodes[1] = NewNode(r.f, 1, r.geom, cache.New(r.geom, 1, 1))
	r.nodes[1].SetGlobalAckHandler(func(uint64) {})
	a := mem.Addr(17)
	b := r.geom.BlockOf(a)
	r.read(t, 1, a) // implicit subscription
	if len(r.homes[r.geom.Home(b)].Subscribers(b)) != 1 {
		t.Fatal("implicit subscription missing")
	}
	r.read(t, 1, r.geom.BaseAddr(9)) // evicts (and resubscribes to block 9!)
	if subs := r.homes[r.geom.Home(b)].Subscribers(b); len(subs) != 0 {
		t.Fatalf("subscribers after eviction = %v, want none", subs)
	}
}

func TestWriteUpdateWriteAllocateWorks(t *testing.T) {
	r := wuRig(t, 4)
	r.write(t, 2, 17, 5) // write miss allocates via the linking reply
	if got := r.read(t, 2, 17); got != 5 {
		t.Fatalf("read after write = %d, want 5", got)
	}
}
