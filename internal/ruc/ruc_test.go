package ruc

import (
	"testing"
	"testing/quick"

	"ssmp/internal/cache"
	"ssmp/internal/fabric"
	"ssmp/internal/mem"
	"ssmp/internal/msg"
	"ssmp/internal/network"
	"ssmp/internal/sim"
	"ssmp/internal/wbuf"
)

// rig is a minimal multiprocessor wiring nodes and homes over a real
// network, sufficient to drive the protocol without the full machine layer.
type rig struct {
	eng   *sim.Engine
	net   *network.Network
	f     *fabric.Fabric
	geom  mem.Geometry
	nodes []*Node
	homes []*Home
	bufs  []*wbuf.Buffer
}

func newRig(t testing.TB, n int) *rig {
	t.Helper()
	eng := sim.NewEngine()
	nw := network.New(eng, network.DefaultConfig(n))
	f := fabric.New(eng, nw, fabric.DefaultTiming())
	geom := mem.Geometry{BlockWords: 4, Nodes: n}
	r := &rig{eng: eng, net: nw, f: f, geom: geom}
	for i := 0; i < n; i++ {
		node := NewNode(f, i, geom, cache.New(geom, 16, 2))
		home := NewHome(f, i, geom, mem.NewStore(geom))
		buf := wbuf.New(eng, wbuf.Options{}, node.IssueWriteGlobal)
		node.SetGlobalAckHandler(buf.Ack)
		r.nodes = append(r.nodes, node)
		r.homes = append(r.homes, home)
		r.bufs = append(r.bufs, buf)
		i := i
		nw.Attach(i, func(p any) {
			m := p.(*msg.Msg)
			if r.nodes[i].Handles(m.Kind) {
				r.nodes[i].Handle(m)
			} else {
				r.homes[i].Handle(m)
			}
		})
	}
	return r
}

// seed writes a word directly into the owning home's store.
func (r *rig) seed(a mem.Addr, w mem.Word) {
	r.homes[r.geom.Home(r.geom.BlockOf(a))].store.WriteWord(a, w)
}

// memWord reads a word directly from the owning home's store.
func (r *rig) memWord(a mem.Addr) mem.Word {
	return r.homes[r.geom.Home(r.geom.BlockOf(a))].store.ReadWord(a)
}

func (r *rig) run(t testing.TB) {
	t.Helper()
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) read(t testing.TB, node int, a mem.Addr) mem.Word {
	t.Helper()
	var out mem.Word
	got := false
	r.nodes[node].Read(a, func(w mem.Word) { out = w; got = true })
	r.run(t)
	if !got {
		t.Fatalf("node %d read of %d never completed", node, a)
	}
	return out
}

func (r *rig) write(t testing.TB, node int, a mem.Addr, w mem.Word) {
	t.Helper()
	done := false
	r.nodes[node].Write(a, w, func() { done = true })
	r.run(t)
	if !done {
		t.Fatalf("node %d write of %d never completed", node, a)
	}
}

func (r *rig) readUpdate(t testing.TB, node int, a mem.Addr) mem.Word {
	t.Helper()
	var out mem.Word
	got := false
	r.nodes[node].ReadUpdate(a, func(w mem.Word) { out = w; got = true })
	r.run(t)
	if !got {
		t.Fatalf("node %d read-update of %d never completed", node, a)
	}
	return out
}

func (r *rig) writeGlobal(t testing.TB, node int, a mem.Addr, w mem.Word) {
	t.Helper()
	if !r.bufs[node].Add(r.geom.BlockOf(a), r.geom.WordIndex(a), w) {
		t.Fatalf("write buffer rejected write")
	}
	r.run(t)
}

func TestReadFetchesFromHome(t *testing.T) {
	r := newRig(t, 4)
	r.seed(17, 99)
	if got := r.read(t, 2, 17); got != 99 {
		t.Fatalf("read = %d, want 99", got)
	}
	// Second read is a hit: no further network messages.
	before := r.f.Coll.Total()
	if got := r.read(t, 2, 17); got != 99 {
		t.Fatalf("second read = %d, want 99", got)
	}
	if r.f.Coll.Total() != before {
		t.Fatal("cache hit generated network traffic")
	}
}

func TestWriteIsLocalAndDirty(t *testing.T) {
	r := newRig(t, 4)
	r.write(t, 1, 9, 55)
	if got := r.read(t, 1, 9); got != 55 {
		t.Fatalf("read after write = %d, want 55", got)
	}
	// The write is local: memory still has the old (zero) value.
	if r.memWord(9) != 0 {
		t.Fatal("private write reached memory without replacement")
	}
	l := r.nodes[1].cache.Peek(r.geom.BlockOf(9))
	if l == nil || !l.Dirty.Has(r.geom.WordIndex(9)) {
		t.Fatal("dirty bit not set on written word")
	}
}

func TestEvictionWritesBackOnlyDirtyWords(t *testing.T) {
	r := newRig(t, 4)
	// Node 0 uses a small dedicated cache so eviction is easy to force.
	small := NewNode(r.f, 0, r.geom, cache.New(r.geom, 1, 1))
	small.SetGlobalAckHandler(func(uint64) {})
	r.nodes[0] = small

	// Seed block 4 (home node 0: 4 % 4 == 0) with known values.
	base := r.geom.BaseAddr(4)
	for i := 0; i < 4; i++ {
		r.seed(base+mem.Addr(i), mem.Word(100+i))
	}
	// Write word 2 of block 4 privately, then touch another block to evict.
	r.write(t, 0, base+2, 777)
	r.read(t, 0, r.geom.BaseAddr(9)) // maps to the same single set: evicts

	blk := r.homes[r.geom.Home(4)].store.ReadBlock(4)
	want := []mem.Word{100, 101, 777, 103}
	for i := range want {
		if blk[i] != want[i] {
			t.Fatalf("after write-back block = %v, want %v", blk, want)
		}
	}
}

func TestFalseSharingSurvivesConcurrentWriteBacks(t *testing.T) {
	// Two nodes privately write different words of the same block, then
	// both evict. Word-granularity write-back preserves both updates —
	// the paper's false-sharing fix (§3 issue 6).
	r := newRig(t, 4)
	r.nodes[1] = NewNode(r.f, 1, r.geom, cache.New(r.geom, 1, 1))
	r.nodes[2] = NewNode(r.f, 2, r.geom, cache.New(r.geom, 1, 1))
	base := r.geom.BaseAddr(8)
	r.write(t, 1, base+0, 11)
	r.write(t, 2, base+3, 22)
	// Evict both copies.
	r.read(t, 1, r.geom.BaseAddr(16))
	r.read(t, 2, r.geom.BaseAddr(16))
	blk := r.homes[r.geom.Home(8)].store.ReadBlock(8)
	if blk[0] != 11 || blk[3] != 22 {
		t.Fatalf("block = %v, want word0=11 word3=22 (lost update)", blk)
	}
}

func TestReadGlobalBypassesCache(t *testing.T) {
	r := newRig(t, 4)
	r.seed(21, 5)
	r.read(t, 3, 21) // caches the block
	r.seed(21, 6)    // memory changes behind the cache
	if got := r.read(t, 3, 21); got != 5 {
		t.Fatalf("cached read = %d, want stale 5", got)
	}
	var got mem.Word
	r.nodes[3].ReadGlobal(21, func(w mem.Word) { got = w })
	r.run(t)
	if got != 6 {
		t.Fatalf("read-global = %d, want fresh 6", got)
	}
}

func TestWriteGlobalUpdatesMemoryAndAcks(t *testing.T) {
	r := newRig(t, 4)
	r.writeGlobal(t, 2, 13, 44)
	if r.memWord(13) != 44 {
		t.Fatalf("memory word = %d, want 44", r.memWord(13))
	}
	if !r.bufs[2].Empty() {
		t.Fatal("write buffer entry not retired by ack")
	}
}

func TestWriterSeesOwnGlobalWrite(t *testing.T) {
	r := newRig(t, 4)
	r.read(t, 2, 13) // cache the block first
	r.writeGlobal(t, 2, 13, 44)
	if got := r.read(t, 2, 13); got != 44 {
		t.Fatalf("writer's cached copy = %d, want 44", got)
	}
}

func TestFlushBufferWaitsForAcks(t *testing.T) {
	r := newRig(t, 4)
	b := r.geom.BlockOf(13)
	r.bufs[2].Add(b, 1, 7)
	r.bufs[2].Add(b, 2, 8)
	flushed := false
	r.bufs[2].OnEmpty(func() { flushed = true })
	if flushed {
		t.Fatal("flush completed before acks")
	}
	r.run(t)
	if !flushed {
		t.Fatal("flush never completed")
	}
}

func TestReadUpdateSubscribesAndReceivesUpdates(t *testing.T) {
	r := newRig(t, 4)
	r.seed(17, 1)
	if got := r.readUpdate(t, 1, 17); got != 1 {
		t.Fatalf("read-update = %d, want 1", got)
	}
	if subs := r.homes[r.geom.Home(r.geom.BlockOf(17))].Subscribers(r.geom.BlockOf(17)); len(subs) != 1 || subs[0] != 1 {
		t.Fatalf("subscribers = %v, want [1]", subs)
	}
	// Node 3 writes globally; node 1's cached line must be updated.
	r.writeGlobal(t, 3, 17, 2)
	if got := r.read(t, 1, 17); got != 2 {
		t.Fatalf("subscriber read = %d, want propagated 2", got)
	}
	if r.nodes[1].UpdatesApplied == 0 {
		t.Fatal("no propagation recorded")
	}
}

func TestReadUpdateHitWhenAlreadySubscribed(t *testing.T) {
	r := newRig(t, 4)
	r.readUpdate(t, 1, 17)
	before := r.f.Coll.Total()
	r.readUpdate(t, 1, 17)
	if r.f.Coll.Total() != before {
		t.Fatal("re-read-update of subscribed line generated traffic")
	}
}

func TestUpdateChainPropagatesToAllSubscribers(t *testing.T) {
	r := newRig(t, 8)
	a := mem.Addr(20)
	b := r.geom.BlockOf(a)
	for _, n := range []int{1, 2, 3, 5} {
		r.readUpdate(t, n, a)
	}
	subs := r.homes[r.geom.Home(b)].Subscribers(b)
	if len(subs) != 4 {
		t.Fatalf("subscribers = %v", subs)
	}
	// Chain pointers in caches must mirror the home's order.
	for i, n := range subs {
		l := r.nodes[n].cache.Peek(b)
		if l == nil || !l.Update {
			t.Fatalf("node %d missing subscribed line", n)
		}
		wantPrev, wantNext := cache.NoNode, cache.NoNode
		if i > 0 {
			wantPrev = subs[i-1]
		}
		if i < len(subs)-1 {
			wantNext = subs[i+1]
		}
		if l.Prev != wantPrev || l.Next != wantNext {
			t.Fatalf("node %d pointers prev=%d next=%d, want %d/%d", n, l.Prev, l.Next, wantPrev, wantNext)
		}
	}
	r.writeGlobal(t, 0, a, 42)
	for _, n := range []int{1, 2, 3, 5} {
		if got := r.read(t, n, a); got != 42 {
			t.Fatalf("subscriber %d read = %d, want 42", n, got)
		}
	}
}

func TestResetUpdateStopsUpdates(t *testing.T) {
	r := newRig(t, 4)
	a := mem.Addr(17)
	b := r.geom.BlockOf(a)
	r.readUpdate(t, 1, a)
	r.readUpdate(t, 2, a)
	done := false
	r.nodes[1].ResetUpdate(a, func() { done = true })
	r.run(t)
	if !done {
		t.Fatal("reset-update never completed")
	}
	if subs := r.homes[r.geom.Home(b)].Subscribers(b); len(subs) != 1 || subs[0] != 2 {
		t.Fatalf("subscribers after reset = %v, want [2]", subs)
	}
	r.writeGlobal(t, 3, a, 9)
	if got := r.read(t, 1, a); got == 9 {
		t.Fatal("unsubscribed node still received update")
	}
	if got := r.read(t, 2, a); got != 9 {
		t.Fatalf("remaining subscriber read = %d, want 9", got)
	}
}

func TestResetUpdateMiddleSplicesChain(t *testing.T) {
	r := newRig(t, 8)
	a := mem.Addr(20)
	b := r.geom.BlockOf(a)
	for _, n := range []int{1, 2, 3} {
		r.readUpdate(t, n, a)
	}
	// Chain (head first) is [3, 2, 1]; remove the middle node 2.
	r.nodes[2].ResetUpdate(a, func() {})
	r.run(t)
	subs := r.homes[r.geom.Home(b)].Subscribers(b)
	if len(subs) != 2 || subs[0] != 3 || subs[1] != 1 {
		t.Fatalf("subscribers = %v, want [3 1]", subs)
	}
	l3 := r.nodes[3].cache.Peek(b)
	l1 := r.nodes[1].cache.Peek(b)
	if l3.Next != 1 || l1.Prev != 3 {
		t.Fatalf("splice pointers wrong: 3.next=%d 1.prev=%d", l3.Next, l1.Prev)
	}
	r.writeGlobal(t, 0, a, 77)
	if got := r.read(t, 3, a); got != 77 {
		t.Fatalf("head read = %d", got)
	}
	if got := r.read(t, 1, a); got != 77 {
		t.Fatalf("tail read = %d", got)
	}
}

func TestResetUpdateOfUnsubscribedIsNoop(t *testing.T) {
	r := newRig(t, 4)
	before := r.f.Coll.Total()
	done := false
	r.nodes[1].ResetUpdate(33, func() { done = true })
	r.run(t)
	if !done {
		t.Fatal("no-op reset never completed")
	}
	if r.f.Coll.Total() != before {
		t.Fatal("no-op reset generated traffic")
	}
}

func TestEvictionUnsubscribes(t *testing.T) {
	r := newRig(t, 4)
	r.nodes[1] = NewNode(r.f, 1, r.geom, cache.New(r.geom, 1, 1))
	r.nodes[1].SetGlobalAckHandler(func(uint64) {})
	a := mem.Addr(17)
	b := r.geom.BlockOf(a)
	r.readUpdate(t, 1, a)
	if len(r.homes[r.geom.Home(b)].Subscribers(b)) != 1 {
		t.Fatal("subscription missing")
	}
	// Touch another block mapping to the same set: evicts the subscribed
	// line and must unsubscribe.
	r.read(t, 1, r.geom.BaseAddr(9))
	if subs := r.homes[r.geom.Home(b)].Subscribers(b); len(subs) != 0 {
		t.Fatalf("subscribers after eviction = %v, want empty", subs)
	}
}

func TestEvictionOfDirtySubscribedLineWritesBackAndUnsubscribes(t *testing.T) {
	r := newRig(t, 4)
	r.nodes[1] = NewNode(r.f, 1, r.geom, cache.New(r.geom, 1, 1))
	r.nodes[1].SetGlobalAckHandler(func(uint64) {})
	a := mem.Addr(17)
	b := r.geom.BlockOf(a)
	r.readUpdate(t, 1, a)
	r.write(t, 1, a, 123) // dirty the subscribed line locally
	r.read(t, 1, r.geom.BaseAddr(9))
	if r.memWord(a) != 123 {
		t.Fatalf("dirty word not written back: mem=%d", r.memWord(a))
	}
	if subs := r.homes[r.geom.Home(b)].Subscribers(b); len(subs) != 0 {
		t.Fatalf("subscribers after dirty eviction = %v", subs)
	}
}

func TestPropagationMessageCount(t *testing.T) {
	// A write-global to a block with k subscribers costs: 1 C_W request,
	// 1 control ack, and k block propagations (Table 2's write row:
	// C_W + (n-1)||C_B).
	r := newRig(t, 8)
	a := mem.Addr(20)
	for _, n := range []int{1, 2, 3, 5, 6} {
		r.readUpdate(t, n, a)
	}
	r.f.Coll.Reset()
	r.writeGlobal(t, 0, a, 1)
	if got := r.f.Coll.Kind(msg.WriteGlobalReq); got != 1 {
		t.Fatalf("WriteGlobalReq = %d", got)
	}
	if got := r.f.Coll.Kind(msg.WriteGlobalAck); got != 1 {
		t.Fatalf("WriteGlobalAck = %d", got)
	}
	if got := r.f.Coll.Kind(msg.UpdateProp); got != 5 {
		t.Fatalf("UpdateProp = %d, want 5", got)
	}
}

func TestUpdatePreservesLocallyDirtyWords(t *testing.T) {
	r := newRig(t, 4)
	a := r.geom.BaseAddr(r.geom.BlockOf(17)) // word 0 of the block
	r.readUpdate(t, 1, a)
	r.write(t, 1, a+1, 5) // dirty word 1 locally
	r.writeGlobal(t, 2, a, 9)
	if got := r.read(t, 1, a); got != 9 {
		t.Fatalf("clean word = %d, want updated 9", got)
	}
	if got := r.read(t, 1, a+1); got != 5 {
		t.Fatalf("dirty word = %d, want preserved 5", got)
	}
}

// Property: after any sequence of subscribe/unsubscribe operations drains,
// the home mirror and the cache-line pointers describe the same chain, and
// every subscribed line has its update bit set.
func TestQuickChainConsistency(t *testing.T) {
	f := func(ops []uint8) bool {
		r := newRig(t, 8)
		a := mem.Addr(20)
		b := r.geom.BlockOf(a)
		for _, op := range ops {
			node := int(op % 8)
			if (op>>3)%2 == 0 {
				r.nodes[node].ReadUpdate(a, func(mem.Word) {})
			} else {
				r.nodes[node].ResetUpdate(a, func() {})
			}
			if err := r.eng.Run(); err != nil {
				return false
			}
		}
		subs := r.homes[r.geom.Home(b)].Subscribers(b)
		seen := map[int]bool{}
		for i, n := range subs {
			if seen[n] {
				return false // duplicate in chain
			}
			seen[n] = true
			l := r.nodes[n].cache.Peek(b)
			if l == nil || !l.Update {
				return false
			}
			wantPrev, wantNext := cache.NoNode, cache.NoNode
			if i > 0 {
				wantPrev = subs[i-1]
			}
			if i < len(subs)-1 {
				wantNext = subs[i+1]
			}
			if l.Prev != wantPrev || l.Next != wantNext {
				return false
			}
		}
		// Nodes not in the chain must not have the update bit.
		for n := 0; n < 8; n++ {
			if seen[n] {
				continue
			}
			if l := r.nodes[n].cache.Peek(b); l != nil && l.Update {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: concurrent global writes from several nodes to distinct words
// all land in memory, and every subscriber converges to memory's block.
func TestQuickConcurrentGlobalWritesConverge(t *testing.T) {
	f := func(vals [4]uint8) bool {
		r := newRig(t, 8)
		a := r.geom.BaseAddr(8) // block 8, home 0
		for _, n := range []int{1, 2, 3} {
			r.nodes[n].ReadUpdate(a, func(mem.Word) {})
		}
		if err := r.eng.Run(); err != nil {
			return false
		}
		// Four writers update the four words concurrently.
		for i := 0; i < 4; i++ {
			writer := 4 + i%4
			r.bufs[writer].Add(8, i, mem.Word(vals[i])+1)
		}
		if err := r.eng.Run(); err != nil {
			return false
		}
		memBlk := r.homes[0].store.ReadBlock(8)
		for i := 0; i < 4; i++ {
			if memBlk[i] != mem.Word(vals[i])+1 {
				return false
			}
		}
		for _, n := range []int{1, 2, 3} {
			l := r.nodes[n].cache.Peek(8)
			if l == nil {
				return false
			}
			for i := 0; i < 4; i++ {
				if l.Data[i] != memBlk[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPendingCollisionPanics(t *testing.T) {
	r := newRig(t, 4)
	r.nodes[1].Read(100, func(mem.Word) {})
	defer func() {
		if recover() == nil {
			t.Error("second outstanding demand request did not panic")
		}
	}()
	r.nodes[1].Read(200, func(mem.Word) {})
}

func TestIdempotentResubscription(t *testing.T) {
	// A node whose line lost its update bit without the home hearing
	// (e.g. replaced and refetched) re-subscribes; the home must not
	// duplicate it in the chain, and the reply re-links the node to its
	// recorded successor.
	r := newRig(t, 8)
	a := mem.Addr(20)
	b := r.geom.BlockOf(a)
	r.readUpdate(t, 1, a)
	r.readUpdate(t, 2, a) // chain [2, 1]
	// Simulate the lost update bit on node 2's line.
	l := r.nodes[2].cache.Peek(b)
	l.Update = false
	l.ResetPointers()
	r.readUpdate(t, 2, a)
	subs := r.homes[r.geom.Home(b)].Subscribers(b)
	if len(subs) != 2 || subs[0] != 2 || subs[1] != 1 {
		t.Fatalf("subscribers = %v, want [2 1] without duplication", subs)
	}
	l = r.nodes[2].cache.Peek(b)
	if !l.Update || l.Next != 1 {
		t.Fatalf("re-linked line update=%v next=%d, want true/1", l.Update, l.Next)
	}
	// Updates still reach both.
	r.writeGlobal(t, 0, a, 6)
	if got := r.read(t, 2, a); got != 6 {
		t.Fatalf("head read = %d", got)
	}
	if got := r.read(t, 1, a); got != 6 {
		t.Fatalf("tail read = %d", got)
	}
}

func TestWholeLineWriteBackLosesUpdates(t *testing.T) {
	// The negative-space demonstration of §3 issue 6: with the per-word
	// dirty bits disabled, the same interleaving that
	// TestFalseSharingSurvivesConcurrentWriteBacks proves safe silently
	// destroys one node's update.
	r := newRig(t, 4)
	r.nodes[1] = NewNode(r.f, 1, r.geom, cache.New(r.geom, 1, 1))
	r.nodes[2] = NewNode(r.f, 2, r.geom, cache.New(r.geom, 1, 1))
	r.nodes[1].WholeLineWriteBack = true
	r.nodes[2].WholeLineWriteBack = true
	base := r.geom.BaseAddr(8)
	r.write(t, 1, base+0, 11)
	r.write(t, 2, base+3, 22)
	r.read(t, 1, r.geom.BaseAddr(16)) // evict node 1's copy
	r.read(t, 2, r.geom.BaseAddr(16)) // evict node 2's copy (full-line overwrite)
	blk := r.homes[r.geom.Home(8)].store.ReadBlock(8)
	if blk[0] == 11 && blk[3] == 22 {
		t.Fatal("both updates survived; the ablation should have lost one")
	}
	if blk[3] != 22 {
		t.Fatalf("block = %v; the later write-back should at least have landed", blk)
	}
}
