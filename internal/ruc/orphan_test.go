package ruc

import (
	"testing"

	"ssmp/internal/cache"
	"ssmp/internal/mem"
)

// TestOrphanedPropagationDropped: a subscriber whose line is replaced while
// a propagation is in flight drops the orphan instead of crashing or
// forwarding garbage; the home's chain was already spliced by the
// eviction's unsubscribe, so the next write reaches the remaining
// subscribers.
func TestOrphanedPropagationDropped(t *testing.T) {
	r := newRig(t, 4)
	// Node 1 gets a one-line cache so any second block evicts the first.
	r.nodes[1] = NewNode(r.f, 1, r.geom, cache.New(r.geom, 1, 1))
	r.nodes[1].SetGlobalAckHandler(func(uint64) {})

	a := mem.Addr(17) // block 4
	r.readUpdate(t, 1, a)
	r.readUpdate(t, 2, a)
	// Chain is [2, 1] (head first). Fire a global write and, while the
	// propagation is in flight, evict node 1's subscribed line.
	r.bufs[3].Add(r.geom.BlockOf(a), r.geom.WordIndex(a), 9)
	r.nodes[1].Read(r.geom.BaseAddr(9), func(mem.Word) {}) // same set: evicts
	r.run(t)

	// Node 2 (still subscribed) received the update.
	if got := r.read(t, 2, a); got != 9 {
		t.Fatalf("remaining subscriber read = %d, want 9", got)
	}
	// Node 1 was unsubscribed by the eviction.
	b := r.geom.BlockOf(a)
	subs := r.homes[r.geom.Home(b)].Subscribers(b)
	if len(subs) != 1 || subs[0] != 2 {
		t.Fatalf("subscribers = %v, want [2]", subs)
	}
	// A later write still reaches node 2 and only node 2.
	r.writeGlobal(t, 3, a, 11)
	if got := r.read(t, 2, a); got != 11 {
		t.Fatalf("second update lost: read = %d", got)
	}
}

// TestPropagationAfterHeadEviction: evicting the chain *head* must reroute
// propagation to the new head via the home's splice.
func TestPropagationAfterHeadEviction(t *testing.T) {
	r := newRig(t, 4)
	r.nodes[2] = NewNode(r.f, 2, r.geom, cache.New(r.geom, 1, 1))
	r.nodes[2].SetGlobalAckHandler(func(uint64) {})

	a := mem.Addr(17)
	r.readUpdate(t, 1, a)
	r.readUpdate(t, 2, a) // node 2 becomes head
	// Evict the head's line.
	r.nodes[2].Read(r.geom.BaseAddr(9), func(mem.Word) {})
	r.run(t)
	b := r.geom.BlockOf(a)
	subs := r.homes[r.geom.Home(b)].Subscribers(b)
	if len(subs) != 1 || subs[0] != 1 {
		t.Fatalf("subscribers = %v, want [1]", subs)
	}
	r.writeGlobal(t, 3, a, 5)
	if got := r.read(t, 1, a); got != 5 {
		t.Fatalf("tail subscriber read = %d, want 5 after head eviction", got)
	}
}

// TestUpdatesDroppedCounter verifies the drop is observable for diagnosis.
func TestUpdatesDroppedCounter(t *testing.T) {
	r := newRig(t, 4)
	r.nodes[1] = NewNode(r.f, 1, r.geom, cache.New(r.geom, 1, 1))
	r.nodes[1].SetGlobalAckHandler(func(uint64) {})
	a := mem.Addr(17)
	r.readUpdate(t, 1, a)
	r.bufs[3].Add(r.geom.BlockOf(a), r.geom.WordIndex(a), 9)
	r.nodes[1].Read(r.geom.BaseAddr(9), func(mem.Word) {})
	r.run(t)
	// Whether the prop raced the eviction is timing-dependent but
	// deterministic for this configuration; assert the counter matches
	// what actually happened to the line.
	l := r.nodes[1].cache.Peek(r.geom.BlockOf(a))
	if l != nil {
		t.Fatal("subscribed line should have been evicted")
	}
	applied := r.nodes[1].UpdatesApplied
	dropped := r.nodes[1].UpdatesDropped
	if applied+dropped != 1 {
		t.Fatalf("applied=%d dropped=%d, want exactly one propagation outcome", applied, dropped)
	}
}
