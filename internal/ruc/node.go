package ruc

import (
	"fmt"

	"ssmp/internal/cache"
	"ssmp/internal/fabric"
	"ssmp/internal/mem"
	"ssmp/internal/msg"
	"ssmp/internal/wbuf"
)

// Node is the cache-side RUC controller of one processor node. Exactly one
// demand request (read/write miss, read-global, read-update) may be
// outstanding at a time — the processor model is blocking — while
// write-buffer traffic and inbound propagations flow concurrently.
type Node struct {
	f       *fabric.Fabric
	id      int
	geom    mem.Geometry
	cache   *cache.Cache
	station *fabric.Station

	// pendBlock/pendDone hold the single outstanding demand request.
	pendBlock mem.Block
	pendWord  int
	pendDone  func(mem.Word)
	pendKind  msg.Kind

	// onGlobalAck retires write-buffer entries; wired by the machine.
	onGlobalAck func(seq uint64)

	// WholeLineWriteBack disables the paper's per-word dirty bits: a
	// replaced dirty line writes back ALL of its words, recreating the
	// false-sharing lost-update problem of §3 issue 6. Ablation only —
	// with it enabled, two caches writing different words of one block
	// can silently destroy each other's updates.
	WholeLineWriteBack bool

	// UpdatesApplied counts inbound propagations applied to a line.
	UpdatesApplied uint64
	// UpdatesDropped counts propagations that found no line (replaced
	// mid-flight).
	UpdatesDropped uint64
}

// NewNode builds the cache-side controller.
func NewNode(f *fabric.Fabric, id int, geom mem.Geometry, c *cache.Cache) *Node {
	return &Node{f: f, id: id, geom: geom, cache: c, station: fabric.NewStation(f)}
}

// SetGlobalAckHandler wires write-global acknowledgments to the write
// buffer.
func (n *Node) SetGlobalAckHandler(fn func(seq uint64)) { n.onGlobalAck = fn }

// Cache exposes the node's cache (for inspection by tests and the machine).
func (n *Node) Cache() *cache.Cache { return n.cache }

func (n *Node) setPending(k msg.Kind, b mem.Block, word int, done func(mem.Word)) {
	if n.pendDone != nil {
		panic(fmt.Sprintf("ruc: node %d issued %v with %v outstanding", n.id, k, n.pendKind))
	}
	n.pendKind, n.pendBlock, n.pendWord, n.pendDone = k, b, word, done
}

func (n *Node) completePending(k msg.Kind, b mem.Block, w mem.Word) {
	if n.pendDone == nil || n.pendKind != k || n.pendBlock != b {
		panic(fmt.Sprintf("ruc: node %d got %v reply for block %d with no matching request", n.id, k, b))
	}
	done := n.pendDone
	n.pendDone = nil
	done(w)
}

// Read performs the READ primitive: a private read, serviced by the cache
// when possible, fetching the block from its home on a miss. done receives
// the word's value.
func (n *Node) Read(a mem.Addr, done func(mem.Word)) {
	b := n.geom.BlockOf(a)
	wi := n.geom.WordIndex(a)
	if l := n.cache.Lookup(b); l != nil {
		n.f.RMR.LocalHit(n.id)
		w := l.Data[wi]
		n.f.Eng.After(n.f.Time.CacheHit, func() { done(w) })
		return
	}
	n.setPending(msg.ReadMiss, b, wi, done)
	n.f.RMR.RemoteRef(n.id)
	n.f.Send(&msg.Msg{Kind: msg.ReadMiss, Src: n.id, Dst: n.geom.Home(b), Block: b})
}

// Write performs the WRITE primitive: a private write with write-allocate.
// Only the written word's dirty bit is set; no coherence action is taken.
func (n *Node) Write(a mem.Addr, w mem.Word, done func()) {
	b := n.geom.BlockOf(a)
	wi := n.geom.WordIndex(a)
	if l := n.cache.Lookup(b); l != nil {
		n.f.RMR.LocalHit(n.id)
		l.Data[wi] = w
		l.Dirty.Set(wi)
		n.f.Eng.After(n.f.Time.CacheHit, func() { done() })
		return
	}
	n.setPending(msg.ReadMiss, b, wi, func(mem.Word) {
		l := n.cache.Peek(b)
		if l == nil {
			panic("ruc: write-allocate line vanished")
		}
		l.Data[wi] = w
		l.Dirty.Set(wi)
		done()
	})
	n.f.RMR.RemoteRef(n.id)
	n.f.Send(&msg.Msg{Kind: msg.ReadMiss, Src: n.id, Dst: n.geom.Home(b), Block: b})
}

// ReadGlobal performs READ-GLOBAL: reads the word from main memory,
// bypassing the local cache entirely.
func (n *Node) ReadGlobal(a mem.Addr, done func(mem.Word)) {
	b := n.geom.BlockOf(a)
	wi := n.geom.WordIndex(a)
	n.setPending(msg.ReadGlobalReq, b, wi, done)
	n.f.RMR.RemoteRef(n.id)
	n.f.Send(&msg.Msg{Kind: msg.ReadGlobalReq, Src: n.id, Dst: n.geom.Home(b), Block: b, WordIdx: wi})
}

// IssueWriteGlobal transmits one write-buffer entry to the block's home.
// It is installed as the write buffer's send function; the home's
// WriteGlobalAck retires the entry via the handler set with
// SetGlobalAckHandler. If the node caches the block, its own copy is
// updated in place (the writer sees its own write).
func (n *Node) IssueWriteGlobal(e wbuf.Entry) {
	if l := n.cache.Peek(e.Block); l != nil {
		l.Data[e.WordIdx] = e.Word
	}
	n.f.RMR.RemoteRef(n.id)
	n.f.Send(&msg.Msg{
		Kind: msg.WriteGlobalReq, Src: n.id, Dst: n.geom.Home(e.Block),
		Block: e.Block, WordIdx: e.WordIdx, Word: e.Word, Seq: e.Seq,
	})
}

// ReadUpdate performs READ-UPDATE: returns the word and subscribes this
// node to future updates of the block. If the line is already subscribed
// the request is serviced locally (§4.1).
func (n *Node) ReadUpdate(a mem.Addr, done func(mem.Word)) {
	b := n.geom.BlockOf(a)
	wi := n.geom.WordIndex(a)
	if l := n.cache.Lookup(b); l != nil && l.Update {
		n.f.RMR.LocalHit(n.id)
		w := l.Data[wi]
		n.f.Eng.After(n.f.Time.CacheHit, func() { done(w) })
		return
	}
	n.setPending(msg.ReadUpdateReq, b, wi, done)
	n.f.RMR.RemoteRef(n.id)
	n.f.Send(&msg.Msg{Kind: msg.ReadUpdateReq, Src: n.id, Dst: n.geom.Home(b), Block: b})
}

// ResetUpdate performs RESET-UPDATE: cancels this node's subscription. The
// processor does not wait for the home to splice the chain; the local
// update bit clears immediately. Resetting an unsubscribed block is a
// no-op.
func (n *Node) ResetUpdate(a mem.Addr, done func()) {
	b := n.geom.BlockOf(a)
	l := n.cache.Peek(b)
	if l == nil || !l.Update {
		n.f.RMR.LocalHit(n.id)
		n.f.Eng.After(n.f.Time.CacheHit, func() { done() })
		return
	}
	l.Update = false
	n.f.RMR.RemoteRef(n.id)
	n.f.Send(&msg.Msg{Kind: msg.ResetUpdateReq, Src: n.id, Dst: n.geom.Home(b), Block: b})
	n.f.Eng.After(n.f.Time.CacheHit, func() { done() })
}

// install places a received block into the cache, handling the displaced
// victim: dirty words are written back, and a subscribed victim is
// unsubscribed as part of the write-back (or with an explicit reset when
// clean).
func (n *Node) install(b mem.Block, data []mem.Word) *cache.Line {
	l, victim, evicted := n.cache.Allocate(b)
	copy(l.Data, data)
	if evicted {
		home := n.geom.Home(victim.Block)
		switch {
		case victim.Dirty.Any():
			n.f.RMR.Writeback(n.id)
			aux := uint64(0)
			if victim.Update {
				aux = 1 // fold the unsubscribe into the write-back
			}
			mask := victim.Dirty
			if n.WholeLineWriteBack {
				mask = mem.Full(n.geom.BlockWords)
			}
			n.f.Send(&msg.Msg{
				Kind: msg.WriteBack, Src: n.id, Dst: home,
				Block: victim.Block, Data: victim.Data, Mask: mask, Aux: aux,
			})
		case victim.Update:
			n.f.Send(&msg.Msg{Kind: msg.ResetUpdateReq, Src: n.id, Dst: home, Block: victim.Block})
		}
	}
	return l
}

// Handles reports whether the node controller consumes this message kind.
func (n *Node) Handles(k msg.Kind) bool {
	switch k {
	case msg.ReadMissReply, msg.ReadGlobalReply, msg.WriteGlobalAck,
		msg.ReadUpdateReply, msg.UpdateProp, msg.SetPrevPtr, msg.SetNextPtr:
		return true
	}
	return false
}

// Handle processes an inbound message after the cache-directory check
// delay.
func (n *Node) Handle(m *msg.Msg) {
	n.station.Process(func() { n.process(m) })
}

func (n *Node) process(m *msg.Msg) {
	switch m.Kind {
	case msg.ReadMissReply:
		l := n.install(m.Block, m.Data)
		n.completePending(msg.ReadMiss, m.Block, l.Data[n.pendWord])

	case msg.ReadGlobalReply:
		n.completePending(msg.ReadGlobalReq, m.Block, m.Word)

	case msg.WriteGlobalAck:
		if n.onGlobalAck == nil {
			panic("ruc: write-global ack with no handler wired")
		}
		n.onGlobalAck(m.Seq)

	case msg.ReadUpdateReply:
		l := n.cache.Peek(m.Block)
		if l == nil {
			l = n.install(m.Block, m.Data)
		} else {
			// Refresh clean words; locally dirty words are newer
			// from this node's perspective.
			for i := range l.Data {
				if !l.Dirty.Has(i) {
					l.Data[i] = m.Data[i]
				}
			}
		}
		l.Update = true
		l.Prev = cache.NoNode
		l.Next = int(int64(m.Aux)) // previous head, NoNeighbor if none
		// Under the home's sender-initiated write-update mode, a plain
		// read miss is answered with a linking reply too.
		want := msg.ReadUpdateReq
		if n.pendKind == msg.ReadMiss {
			want = msg.ReadMiss
		}
		n.completePending(want, m.Block, l.Data[n.pendWord])

	case msg.UpdateProp:
		l := n.cache.Peek(m.Block)
		if l == nil {
			n.UpdatesDropped++
			return
		}
		for i := range l.Data {
			if !l.Dirty.Has(i) {
				l.Data[i] = m.Data[i]
			}
		}
		n.UpdatesApplied++
		if l.Next != cache.NoNode && l.Next != n.id {
			n.f.Send(&msg.Msg{Kind: msg.UpdateProp, Src: n.id, Dst: l.Next, Block: m.Block, Data: m.Data})
		}

	case msg.SetPrevPtr:
		if l := n.cache.Peek(m.Block); l != nil {
			l.Prev = m.Requester
		}

	case msg.SetNextPtr:
		if l := n.cache.Peek(m.Block); l != nil {
			l.Next = m.Requester
		}

	default:
		panic(fmt.Sprintf("ruc: node %d cannot handle %v", n.id, m.Kind))
	}
}
