// Package ruc implements the paper's reader-initiated update coherence
// protocol (§4.1): the cache-side and home-side controllers for READ, WRITE,
// READ-GLOBAL, WRITE-GLOBAL, READ-UPDATE and RESET-UPDATE.
//
// # Protocol summary
//
// READ and WRITE are treated as uniprocessor cache operations: no coherence
// traffic, per-word dirty bits set on writes, dirty words written back on
// replacement.
//
// READ-GLOBAL bypasses the cache and reads the word from main memory.
//
// WRITE-GLOBAL performs the write at the block's home memory. The home
// merges the word into the backing store, acknowledges the writer (the ack
// retires the write-buffer entry), and — if the block has update
// subscribers — propagates the updated block down the subscriber chain.
//
// READ-UPDATE fetches the block and subscribes the requester: the home
// links the requester at the head of a doubly-linked subscriber list
// threaded through the participating cache lines (prev/next fields), and the
// central-directory queue-pointer tracks the chain. Each WRITE-GLOBAL to the
// block afterwards sends the updated block to the head, and every subscriber
// forwards it to its next neighbour — the paper's dual of write-update,
// where the *reader* decides which lines receive updates.
//
// RESET-UPDATE unsubscribes: the home splices the node out of the chain and
// rewrites the neighbours' pointers (SetPrevPtr/SetNextPtr messages).
// Replacing a subscribed line unsubscribes implicitly (the write-back
// carries an unsubscribe flag).
//
// # Inferred details
//
// The paper elides chain-maintenance corner cases. This implementation makes
// the following choices, all safe under the buffered-consistency model
// (updates are asynchronous; readers that need fresh data synchronize):
//
//   - The home keeps a mirror of the subscriber order. The mirror is the
//     serialization point for splices; propagation itself follows the
//     cache-line next pointers, as in the paper.
//   - A propagation that reaches a node whose line was replaced mid-flight
//     is dropped; the chain was already spliced at the home, so the next
//     write's propagation reaches all live subscribers.
//   - New subscribers are linked at the head (cheapest hardware insertion),
//     so an in-flight propagation may miss a brand-new subscriber; its
//     subscription reply already carried data at least as new.
package ruc
