package ruc

import (
	"fmt"

	"ssmp/internal/fabric"
	"ssmp/internal/mem"
	"ssmp/internal/msg"
)

// Home is the memory-side RUC controller for the blocks homed at one node:
// the backing store plus the central-directory state (the update-subscriber
// chain per block).
type Home struct {
	f       *fabric.Fabric
	id      int
	geom    mem.Geometry
	store   *mem.Store
	station *fabric.Station

	// WriteUpdateMode switches the home to classic sender-initiated
	// write-update (Firefly/Dragon style, the scheme §4.1 contrasts
	// with): every read miss subscribes the reader implicitly and the
	// subscription is "remembered forever until the line is replaced by
	// the reader" — no READ-UPDATE needed, no RESET-UPDATE issued by
	// software. Used to measure the reader-initiated scheme's advantage
	// on phased access patterns.
	WriteUpdateMode bool

	// subs mirrors the subscriber chain per block, head first. The mirror
	// is the serialization point for splices; propagation follows the
	// cache-line pointers.
	subs map[mem.Block][]int

	// Propagations counts update-chain propagations initiated.
	Propagations uint64
}

// NewHome builds the home-side controller over the node's memory module.
func NewHome(f *fabric.Fabric, id int, geom mem.Geometry, store *mem.Store) *Home {
	return &Home{f: f, id: id, geom: geom, store: store, station: fabric.NewStation(f), subs: make(map[mem.Block][]int)}
}

// Store exposes the backing store (tests, machine assembly).
func (h *Home) Store() *mem.Store { return h.store }

// Subscribers returns a copy of the current subscriber chain for a block,
// head first.
func (h *Home) Subscribers(b mem.Block) []int {
	return append([]int(nil), h.subs[b]...)
}

// Handles reports whether the home controller consumes this message kind.
func (h *Home) Handles(k msg.Kind) bool {
	switch k {
	case msg.ReadMiss, msg.WriteBack, msg.ReadGlobalReq, msg.WriteGlobalReq,
		msg.ReadUpdateReq, msg.ResetUpdateReq:
		return true
	}
	return false
}

// Handle processes an inbound message after the central-directory check
// delay; block reads from memory add the memory cycle time.
func (h *Home) Handle(m *msg.Msg) {
	switch m.Kind {
	case msg.ReadMiss, msg.ReadUpdateReq, msg.ReadGlobalReq:
		// These read memory.
		h.station.ProcessAfter(h.f.Time.TMem, func() { h.process(m) })
	default:
		h.station.Process(func() { h.process(m) })
	}
}

func (h *Home) checkHome(b mem.Block) {
	if h.geom.Home(b) != h.id {
		panic(fmt.Sprintf("ruc: block %d handled by wrong home %d", b, h.id))
	}
}

func (h *Home) process(m *msg.Msg) {
	h.checkHome(m.Block)
	switch m.Kind {
	case msg.ReadMiss:
		if h.WriteUpdateMode {
			// Sender-initiated mode: a read miss subscribes the
			// reader implicitly.
			h.subscribe(m)
			return
		}
		h.f.Send(&msg.Msg{
			Kind: msg.ReadMissReply, Src: h.id, Dst: m.Src,
			Block: m.Block, Data: h.store.ReadBlock(m.Block),
		})

	case msg.WriteBack:
		h.store.Merge(m.Block, m.Data, m.Mask)
		if m.Aux == 1 {
			h.unsubscribe(m.Block, m.Src)
		}

	case msg.ReadGlobalReq:
		h.f.Send(&msg.Msg{
			Kind: msg.ReadGlobalReply, Src: h.id, Dst: m.Src,
			Block: m.Block, WordIdx: m.WordIdx,
			Word: h.store.ReadBlock(m.Block)[m.WordIdx],
		})

	case msg.WriteGlobalReq:
		h.store.WriteWord(h.geom.BaseAddr(m.Block)+mem.Addr(m.WordIdx), m.Word)
		// The ack signals that the write is performed at memory; chain
		// propagation proceeds asynchronously (§2: the requester needn't
		// wait for the operation to be globally performed).
		h.f.Send(&msg.Msg{Kind: msg.WriteGlobalAck, Src: h.id, Dst: m.Src, Block: m.Block, Seq: m.Seq})
		if chain := h.subs[m.Block]; len(chain) > 0 {
			h.Propagations++
			data := h.store.ReadBlock(m.Block)
			h.f.Send(&msg.Msg{Kind: msg.UpdateProp, Src: h.id, Dst: chain[0], Block: m.Block, Data: data})
		}

	case msg.ReadUpdateReq:
		h.subscribe(m)

	case msg.ResetUpdateReq:
		h.unsubscribe(m.Block, m.Src)

	default:
		panic(fmt.Sprintf("ruc: home %d cannot handle %v", h.id, m.Kind))
	}
}

// subscribe links the requester at the head of the block's update chain and
// replies with the data (ReadUpdateReply links the node-side pointers).
func (h *Home) subscribe(m *msg.Msg) {
	chain := h.subs[m.Block]
	oldHead := msg.NoNeighbor
	if len(chain) > 0 {
		oldHead = chain[0]
	}
	if contains(chain, m.Src) {
		// Idempotent re-subscription (the node's line lost its update
		// bit without the home hearing, e.g. a replaced line
		// re-subscribing before the reset was processed).
		h.f.Send(&msg.Msg{
			Kind: msg.ReadUpdateReply, Src: h.id, Dst: m.Src,
			Block: m.Block, Data: h.store.ReadBlock(m.Block),
			Aux: uint64(int64(nextOf(chain, m.Src))),
		})
		return
	}
	h.subs[m.Block] = append([]int{m.Src}, chain...)
	h.f.Send(&msg.Msg{
		Kind: msg.ReadUpdateReply, Src: h.id, Dst: m.Src,
		Block: m.Block, Data: h.store.ReadBlock(m.Block),
		Aux: uint64(int64(oldHead)),
	})
	if oldHead != msg.NoNeighbor {
		h.f.Send(&msg.Msg{Kind: msg.SetPrevPtr, Src: h.id, Dst: oldHead, Block: m.Block, Requester: m.Src})
	}
}

// unsubscribe splices a node out of the block's chain and rewrites the
// neighbours' pointers. Unsubscribing an absent node is a no-op (write-back
// and explicit reset can race).
func (h *Home) unsubscribe(b mem.Block, node int) {
	chain := h.subs[b]
	idx := -1
	for i, n := range chain {
		if n == node {
			idx = i
			break
		}
	}
	if idx < 0 {
		return
	}
	prev, next := msg.NoNeighbor, msg.NoNeighbor
	if idx > 0 {
		prev = chain[idx-1]
	}
	if idx < len(chain)-1 {
		next = chain[idx+1]
	}
	chain = append(chain[:idx], chain[idx+1:]...)
	if len(chain) == 0 {
		delete(h.subs, b)
	} else {
		h.subs[b] = chain
	}
	if prev != msg.NoNeighbor {
		h.f.Send(&msg.Msg{Kind: msg.SetNextPtr, Src: h.id, Dst: prev, Block: b, Requester: next})
	}
	if next != msg.NoNeighbor {
		h.f.Send(&msg.Msg{Kind: msg.SetPrevPtr, Src: h.id, Dst: next, Block: b, Requester: prev})
	}
}

func contains(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func nextOf(chain []int, node int) int {
	for i, n := range chain {
		if n == node && i < len(chain)-1 {
			return chain[i+1]
		}
	}
	return msg.NoNeighbor
}
