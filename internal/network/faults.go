package network

// The fault plane: seeded, deterministic message-level fault injection for
// chaos testing. The paper leaves the interconnect "intentionally
// unspecified" (§4); the coherence machinery above it silently assumes
// every message arrives exactly once and, per source/destination pair, in
// order. The fault plane breaks those assumptions on purpose — dropping,
// duplicating, and delaying messages — so that the protocol-level recovery
// machinery (internal/fabric's reliable transport) can be exercised and the
// litmus chaos soak can assert that buffered consistency survives an
// adversarial fabric, not just an adversarial scheduler.
//
// Determinism: every fault decision is a pure function of (Seed, src, dst,
// per-link message index). Each ordered link keeps its own splitmix64
// stream, so the faults a link injects depend only on that link's own
// traffic order — which is itself deterministic — never on unrelated
// traffic elsewhere in the machine. Seed 0 disables the plane entirely and
// leaves the no-fault code path untouched, keeping golden digests
// bit-identical.

import (
	"fmt"

	"ssmp/internal/sim"
)

// FaultRates are per-message fault probabilities on one link.
type FaultRates struct {
	// Drop is the probability a message is silently discarded.
	Drop float64 `json:"drop"`
	// Dup is the probability a message is delivered twice (the second
	// copy trails by a deterministic extra delay).
	Dup float64 `json:"dup"`
	// Delay is the probability a message's delivery is postponed by a
	// deterministic extra delay in [1, DelayMax].
	Delay float64 `json:"delay"`
}

// zero reports whether every rate is zero.
func (r FaultRates) zero() bool { return r.Drop == 0 && r.Dup == 0 && r.Delay == 0 }

func (r FaultRates) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"Drop", r.Drop}, {"Dup", r.Dup}, {"Delay", r.Delay}} {
		if p.v < 0 || p.v >= 1 {
			return fmt.Errorf("network: fault %s probability must be in [0,1), got %g", p.name, p.v)
		}
	}
	return nil
}

// Link is an ordered (source, destination) node pair.
type Link struct {
	Src, Dst int
}

// FaultConfig parameterizes the fault plane. The zero value — and any
// config with Seed 0 — disables it.
type FaultConfig struct {
	// Seed drives all fault randomness (splitmix64, the same discipline
	// as schedule jitter). 0 disables faults regardless of the rates.
	Seed uint64 `json:"seed"`
	// Rates apply to every network link (node-local deliveries that
	// bypass the network are never faulted: the fault plane models the
	// fabric, not the node).
	Rates FaultRates `json:"rates"`
	// DelayMax bounds the extra delay of delayed messages and trailing
	// duplicates, in cycles. 0 means DefaultDelayMax.
	DelayMax sim.Time `json:"delay_max,omitempty"`
	// Links optionally overrides the rates on specific ordered links
	// (e.g. one flaky switch port). Links absent from the map use Rates.
	Links map[Link]FaultRates `json:"-"`
}

// DefaultDelayMax is the extra-delay bound applied when DelayMax is 0.
const DefaultDelayMax sim.Time = 16

// Enabled reports whether the fault plane injects anything: a nonzero seed
// and at least one nonzero rate somewhere.
func (c FaultConfig) Enabled() bool {
	if c.Seed == 0 {
		return false
	}
	if !c.Rates.zero() {
		return true
	}
	for _, r := range c.Links {
		if !r.zero() {
			return true
		}
	}
	return false
}

// Validate reports whether the configuration is usable.
func (c FaultConfig) Validate() error {
	if err := c.Rates.validate(); err != nil {
		return err
	}
	for l, r := range c.Links {
		if err := r.validate(); err != nil {
			return fmt.Errorf("link %d->%d: %w", l.Src, l.Dst, err)
		}
	}
	return nil
}

// String renders the config compactly for error messages, so a failing
// chaos run is reproducible from the message alone.
func (c FaultConfig) String() string {
	if !c.Enabled() {
		return "faults=off"
	}
	s := fmt.Sprintf("faults{seed=%d drop=%g dup=%g delay=%g/%d",
		c.Seed, c.Rates.Drop, c.Rates.Dup, c.Rates.Delay, c.delayMax())
	if len(c.Links) > 0 {
		s += fmt.Sprintf(" +%d link overrides", len(c.Links))
	}
	return s + "}"
}

func (c FaultConfig) delayMax() sim.Time {
	if c.DelayMax == 0 {
		return DefaultDelayMax
	}
	return c.DelayMax
}

// FaultStats counts injected faults.
type FaultStats struct {
	// Dropped is the number of messages discarded.
	Dropped uint64
	// Duplicated is the number of messages delivered twice.
	Duplicated uint64
	// Delayed is the number of messages whose delivery was postponed.
	Delayed uint64
	// DelayCycles is the total extra delay injected (delays plus the lag
	// of trailing duplicates).
	DelayCycles uint64
}

// splitmix64 is the same mixer the schedule-jitter PRNG uses.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// faultPlane is the per-network fault state: one PRNG stream per ordered
// link, advanced once per decision. Stats are sharded by source node so
// that under a parallel (lane-per-node) run each lane touches only its own
// shard; a link's stream is likewise touched only by its source lane.
type faultPlane struct {
	cfg      FaultConfig
	delayMax sim.Time
	rates    []FaultRates // [src*n + dst]
	streams  []uint64     // per-link splitmix64 state
	n        int
	stats    []FaultStats // [src]
}

func newFaultPlane(cfg FaultConfig, nodes int) *faultPlane {
	p := &faultPlane{
		cfg:      cfg,
		delayMax: cfg.delayMax(),
		rates:    make([]FaultRates, nodes*nodes),
		streams:  make([]uint64, nodes*nodes),
		n:        nodes,
		stats:    make([]FaultStats, nodes),
	}
	for s := 0; s < nodes; s++ {
		for d := 0; d < nodes; d++ {
			i := s*nodes + d
			p.rates[i] = cfg.Rates
			if r, ok := cfg.Links[Link{s, d}]; ok {
				p.rates[i] = r
			}
			// Decorrelate the link streams: each starts at an
			// independent point derived from (seed, src, dst).
			p.streams[i] = splitmix64(cfg.Seed ^ splitmix64(uint64(s)<<32|uint64(d)))
		}
	}
	return p
}

// draw advances link i's stream and returns a uniform value in [0,1).
func (p *faultPlane) draw(i int) float64 {
	p.streams[i] = splitmix64(p.streams[i])
	return float64(p.streams[i]>>11) / (1 << 53)
}

// drawDelay returns a deterministic extra delay in [1, delayMax].
func (p *faultPlane) drawDelay(i int) sim.Time {
	p.streams[i] = splitmix64(p.streams[i])
	return 1 + sim.Time(p.streams[i]%uint64(p.delayMax))
}

// verdict is one message's fate.
type verdict struct {
	drop  bool
	extra sim.Time // added to the delivery time (0 = on time)
	dup   bool
	dupAt sim.Time // trailing duplicate's additional lag past delivery
}

// judge decides a message's fate on link src->dst. Exactly three rate draws
// happen per message (plus delay draws as needed), so a link's fault
// sequence depends only on its own message order.
func (p *faultPlane) judge(src, dst int) verdict {
	i := src*p.n + dst
	r := p.rates[i]
	var v verdict
	if u := p.draw(i); u < r.Drop {
		v.drop = true
	}
	if u := p.draw(i); u < r.Delay {
		v.extra = p.drawDelay(i)
	}
	if u := p.draw(i); u < r.Dup {
		v.dup = true
		v.dupAt = p.drawDelay(i)
	}
	st := &p.stats[src]
	if v.drop {
		st.Dropped++
		return verdict{drop: true}
	}
	if v.extra > 0 {
		st.Delayed++
		st.DelayCycles += uint64(v.extra)
	}
	if v.dup {
		st.Duplicated++
		st.DelayCycles += uint64(v.dupAt)
	}
	return v
}

// total sums the per-source shards.
func (p *faultPlane) total() FaultStats {
	var t FaultStats
	for i := range p.stats {
		t.Dropped += p.stats[i].Dropped
		t.Duplicated += p.stats[i].Duplicated
		t.Delayed += p.stats[i].Delayed
		t.DelayCycles += p.stats[i].DelayCycles
	}
	return t
}
