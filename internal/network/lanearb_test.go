package network

import (
	"fmt"
	"testing"

	"ssmp/internal/sim"
)

// Lane-mode arbitration tests: a contended network built with NewParallel
// must resolve switch-port contention at the window barrier with exactly
// the serial engine's acquire-order discipline. For open-loop traffic —
// where every injection (src, dst, words, time) is fixed up front — the
// arbiter's key-ordered replay is the serial execution, so delivery times
// and the full Stats snapshot must match the serial network bit for bit,
// at any worker count.

// arbTrace runs a fixed open-loop injection schedule and returns the
// per-destination delivery-time trace plus the final stats.
type arbShot struct {
	at       sim.Time
	src, dst int
	words    int
}

func arbSchedule(nodes int) []arbShot {
	var shots []arbShot
	for i := 0; i < nodes; i++ {
		// Hot-spot traffic into node 0 plus neighbor traffic: plenty of
		// shared ports/links on both topologies.
		if i != 0 {
			shots = append(shots, arbShot{at: 0, src: i, dst: 0, words: 0})
		}
		shots = append(shots, arbShot{at: 2, src: i, dst: (i + 1) % nodes, words: 4})
		shots = append(shots, arbShot{at: 5, src: i, dst: (i + nodes/2) % nodes, words: 1})
	}
	return shots
}

func arbTraceSerial(t *testing.T, cfg Config) (map[int][]sim.Time, Stats) {
	t.Helper()
	e := sim.NewEngine()
	n := New(e, cfg)
	trace := make(map[int][]sim.Time)
	for i := 0; i < cfg.Nodes; i++ {
		i := i
		n.Attach(i, func(any) { trace[i] = append(trace[i], e.Now()) })
	}
	for _, s := range arbSchedule(cfg.Nodes) {
		s := s
		e.At(s.at, func() { n.Send(s.src, s.dst, s.words, nil) })
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return trace, n.Stats()
}

func arbTraceLanes(t *testing.T, cfg Config, workers int) (map[int][]sim.Time, Stats) {
	t.Helper()
	par := sim.NewParallel(cfg.Nodes)
	n := NewParallel(par, cfg)
	trace := make(map[int][]sim.Time)
	eng := make([]*sim.Engine, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		i := i
		eng[i] = par.Lane(i)
		n.Attach(i, func(any) { trace[i] = append(trace[i], eng[i].Now()) })
	}
	for _, s := range arbSchedule(cfg.Nodes) {
		s := s
		par.Lane(s.src).At(s.at, func() { n.Send(s.src, s.dst, s.words, nil) })
	}
	if err := par.Run(workers); err != nil {
		t.Fatal(err)
	}
	return trace, n.Stats()
}

func TestLaneArbitrationMatchesSerial(t *testing.T) {
	for _, top := range []Topology{TopOmega, TopMesh, TopBus} {
		t.Run(top.String(), func(t *testing.T) {
			cfg := DefaultConfig(8)
			cfg.Topology = top
			wantTrace, wantStats := arbTraceSerial(t, cfg)
			if wantStats.QueueSum == 0 {
				t.Fatal("schedule produced no contention; the test proves nothing")
			}
			for _, w := range []int{1, 2, 8} {
				gotTrace, gotStats := arbTraceLanes(t, cfg, w)
				if fmt.Sprint(gotStats) != fmt.Sprint(wantStats) {
					t.Fatalf("workers=%d stats diverge:\n got %+v\nwant %+v", w, gotStats, wantStats)
				}
				if fmt.Sprint(gotTrace) != fmt.Sprint(wantTrace) {
					t.Fatalf("workers=%d delivery trace diverges:\n got %v\nwant %v", w, gotTrace, wantTrace)
				}
			}
		})
	}
}

// TestLaneArbitrationSerializesSharedPort is the lane-mode twin of
// TestContentionSerializesSharedPort: two same-cycle messages from
// different lanes into one destination share the final-stage output port
// and must serialize, with the queueing charged to QueueSum.
func TestLaneArbitrationSerializesSharedPort(t *testing.T) {
	cfg := DefaultConfig(8)
	par := sim.NewParallel(8)
	n := NewParallel(par, cfg)
	var times []sim.Time
	dstEng := par.Lane(7)
	n.Attach(7, func(any) { times = append(times, dstEng.Now()) })
	for i := 0; i < 7; i++ {
		n.Attach(i, func(any) {})
	}
	par.Lane(0).At(0, func() { n.Send(0, 7, 0, nil) })
	par.Lane(1).At(0, func() { n.Send(1, 7, 0, nil) })
	if err := par.Run(2); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(times))
	}
	if times[0] == times[1] {
		t.Fatalf("contending messages delivered simultaneously at %d", times[0])
	}
	if n.Stats().QueueSum == 0 {
		t.Fatal("expected nonzero queueing delay under contention")
	}
}

// TestLaneArbitrationFaultParity: with the fault plane on, verdicts are
// drawn at Send time from the per-link streams — the same per-link order
// the serial engine draws them in — so fault counters and the delivered
// message set must match the serial run exactly.
func TestLaneArbitrationFaultParity(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.Faults = FaultConfig{Seed: 77, Rates: FaultRates{Drop: 0.2, Dup: 0.2, Delay: 0.3}}
	wantTrace, wantStats := arbTraceSerial(t, cfg)
	wantFaults := wantStats.Faults
	if wantFaults.Dropped+wantFaults.Duplicated+wantFaults.Delayed == 0 {
		t.Fatal("fault plane inert; the test proves nothing")
	}
	for _, w := range []int{1, 4} {
		gotTrace, gotStats := arbTraceLanes(t, cfg, w)
		if fmt.Sprint(gotStats) != fmt.Sprint(wantStats) {
			t.Fatalf("workers=%d stats diverge:\n got %+v\nwant %+v", w, gotStats, wantStats)
		}
		if fmt.Sprint(gotTrace) != fmt.Sprint(wantTrace) {
			t.Fatalf("workers=%d delivery trace diverges:\n got %v\nwant %v", w, gotTrace, wantTrace)
		}
	}
}
