package network

import (
	"testing"
	"testing/quick"

	"ssmp/internal/sim"
)

func meshRig(t testing.TB, nodes int) (*sim.Engine, *Network) {
	t.Helper()
	e := sim.NewEngine()
	cfg := DefaultConfig(nodes)
	cfg.Topology = TopMesh
	n := New(e, cfg)
	return e, n
}

func TestMeshDimensions(t *testing.T) {
	cases := map[int][2]int{
		4:  {2, 2},
		8:  {2, 4}, // rows x cols
		16: {4, 4},
		64: {8, 8},
	}
	for nodes, want := range cases {
		m := newMesh(nodes)
		if m.rows != want[0] || m.cols != want[1] {
			t.Errorf("mesh(%d) = %dx%d, want %dx%d", nodes, m.rows, m.cols, want[0], want[1])
		}
	}
}

func TestMeshCoordsRoundTrip(t *testing.T) {
	m := newMesh(16)
	for n := 0; n < 16; n++ {
		x, y := m.coords(n)
		if m.nodeAt(x, y) != n {
			t.Fatalf("coords round trip failed for %d", n)
		}
	}
}

func TestMeshHops(t *testing.T) {
	m := newMesh(16) // 4x4
	cases := []struct{ src, dst, want int }{
		{0, 1, 1},
		{0, 4, 1},  // next row
		{0, 5, 2},  // diagonal
		{0, 15, 6}, // opposite corner: 3+3
		{5, 5, 0},
	}
	for _, c := range cases {
		if got := m.hops(c.src, c.dst); got != c.want {
			t.Errorf("hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestMeshDeliveryLatencyMatchesDistance(t *testing.T) {
	e, n := meshRig(t, 16)
	var at sim.Time
	for i := 0; i < 16; i++ {
		i := i
		if i == 15 {
			n.Attach(i, func(any) { at = e.Now() })
		} else {
			n.Attach(i, func(any) {})
		}
	}
	n.Send(0, 15, 0, nil) // corner to corner: 6 hops, unit delay
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 6 {
		t.Fatalf("corner-to-corner latency = %d, want 6", at)
	}
}

func TestMeshContentionOnSharedLink(t *testing.T) {
	// Messages 0->3 and 1->3 share the link 2->3 on a 2x2... use 4 nodes
	// (2x2): 0->1 and 2->... XY routing: 0->3 goes east (0->1) then south
	// (1->3); 1->3 goes south (1->3). They share the 1->3 link.
	e, n := meshRig(t, 4)
	var times []sim.Time
	n.Attach(3, func(any) { times = append(times, e.Now()) })
	for i := 0; i < 3; i++ {
		n.Attach(i, func(any) {})
	}
	n.Send(0, 3, 0, nil)
	n.Send(1, 3, 0, nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 || times[0] == times[1] {
		t.Fatalf("shared-link messages delivered at %v, want serialized", times)
	}
	if n.Stats().QueueSum == 0 {
		t.Fatal("no queueing recorded on shared link")
	}
}

// TestMeshIdealIgnoresContention is the mesh twin of
// TestIdealNetworkIgnoresContention: with Ideal set, simultaneous messages
// over the same link all arrive at the uncontended Manhattan latency and no
// queueing is recorded.
func TestMeshIdealIgnoresContention(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig(16)
	cfg.Topology = TopMesh
	cfg.Ideal = true
	n := New(e, cfg)
	var times []sim.Time
	n.Attach(3, func(any) { times = append(times, e.Now()) })
	for i := 0; i < 16; i++ {
		if i != 3 {
			n.Attach(i, func(any) {})
		}
	}
	for src := 0; src < 3; src++ {
		n.Send(src, 3, 0, nil) // all route east along row 0 into node 3
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	m := newMesh(16)
	for src := 0; src < 3; src++ {
		found := false
		for _, at := range times {
			if at == sim.Time(m.hops(src, 3)) {
				found = true
			}
		}
		if !found {
			t.Fatalf("no delivery at node %d's uncontended latency %d (times %v)", src, m.hops(src, 3), times)
		}
	}
	if n.Stats().QueueSum != 0 {
		t.Fatal("ideal mesh recorded queueing")
	}
}

// TestMeshContentionStats is the mesh twin of TestStatsAccounting plus the
// queueing assertion: hops follow Manhattan distance and a saturated link
// shows up in QueueSum / MeanQueueing.
func TestMeshContentionStats(t *testing.T) {
	e, n := meshRig(t, 16)
	for i := 0; i < 16; i++ {
		n.Attach(i, func(any) {})
	}
	n.Send(0, 5, 4, nil) // 2 hops
	n.Send(1, 1, 2, nil) // local bypass
	for src := 0; src < 4; src++ {
		n.Send(src, 15, 0, nil) // hot spot: shared column links
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Messages != 5 || st.Local != 1 || st.Words != 4 {
		t.Fatalf("stats = %+v, want Messages=5 Local=1 Words=4", st)
	}
	m := newMesh(16)
	wantHops := uint64(m.hops(0, 5))
	for src := 0; src < 4; src++ {
		wantHops += uint64(m.hops(src, 15))
	}
	if st.Hops != wantHops {
		t.Fatalf("Hops = %d, want %d", st.Hops, wantHops)
	}
	if st.QueueSum == 0 || st.MeanQueueing() <= 0 {
		t.Fatalf("hot-spot traffic recorded no queueing: %+v", st)
	}
	if st.MeanLatency() <= st.MeanQueueing() {
		t.Fatalf("latency accounting inconsistent: %+v", st)
	}
}

// Property: on the contended mesh every message is still delivered exactly
// once, never earlier than its Manhattan-distance uncontended latency.
func TestQuickMeshContendedDelivery(t *testing.T) {
	f := func(pairs []uint16) bool {
		e := sim.NewEngine()
		cfg := DefaultConfig(16)
		cfg.Topology = TopMesh
		n := New(e, cfg)
		m := newMesh(16)
		floor := map[int]sim.Time{}
		got := map[int]sim.Time{}
		id := 0
		for i := 0; i < 16; i++ {
			n.Attach(i, func(p any) { got[p.(int)] = e.Now() })
		}
		for _, pr := range pairs {
			src := int(pr) & 15
			dst := int(pr>>4) & 15
			if src == dst {
				continue
			}
			n.Send(src, dst, 0, id)
			floor[id] = e.Now() + sim.Time(m.hops(src, dst))
			id++
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(got) != id {
			return false
		}
		for k, at := range got {
			if at < floor[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every message is delivered and the uncontended latency equals
// the Manhattan distance times the hold.
func TestQuickMeshDelivery(t *testing.T) {
	f := func(pairs []uint16) bool {
		e := sim.NewEngine()
		cfg := DefaultConfig(16)
		cfg.Topology = TopMesh
		cfg.Ideal = true // isolate the distance model
		n := New(e, cfg)
		m := newMesh(16)
		want := map[int]sim.Time{}
		got := map[int]sim.Time{}
		id := 0
		for i := 0; i < 16; i++ {
			i := i
			_ = i
			n.Attach(i, func(p any) { got[p.(int)] = e.Now() })
		}
		for _, pr := range pairs {
			src := int(pr) & 15
			dst := int(pr>>4) & 15
			if src == dst {
				continue
			}
			n.Send(src, dst, 0, id)
			want[id] = e.Now() + sim.Time(m.hops(src, dst))
			id++
		}
		if err := e.Run(); err != nil {
			return false
		}
		if len(got) != id {
			return false
		}
		for k, at := range got {
			if at != want[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeshUnderFullMachine(t *testing.T) {
	// Smoke: the whole protocol stack works over the mesh.
	e, n := meshRig(t, 8)
	_ = e
	if n.UncontendedLatency(0) == 0 {
		t.Fatal("mesh uncontended latency zero")
	}
	if TopMesh.String() != "mesh" || TopOmega.String() != "omega" || Topology(9).String() != "topology?" {
		t.Fatal("topology names wrong")
	}
}

func TestBusSerializesEverything(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig(8)
	cfg.Topology = TopBus
	n := New(e, cfg)
	var times []sim.Time
	for i := 0; i < 8; i++ {
		i := i
		n.Attach(i, func(any) { times = append(times, e.Now()) })
		_ = i
	}
	// Four disjoint pairs: on the Ω network these are conflict-free, on
	// the bus they serialize.
	n.Send(0, 1, 0, nil)
	n.Send(2, 3, 0, nil)
	n.Send(4, 5, 0, nil)
	n.Send(6, 7, 0, nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 4 {
		t.Fatalf("delivered %d", len(times))
	}
	want := []sim.Time{1, 2, 3, 4}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("bus delivery times %v, want %v", times, want)
		}
	}
}

func TestBusSaturatesVersusOmega(t *testing.T) {
	run := func(top Topology) sim.Time {
		e := sim.NewEngine()
		cfg := DefaultConfig(16)
		cfg.Topology = top
		n := New(e, cfg)
		var last sim.Time
		for i := 0; i < 16; i++ {
			n.Attach(i, func(any) { last = e.Now() })
		}
		// All-to-one-neighbour traffic: every node sends 8 blocks.
		for i := 0; i < 16; i++ {
			for k := 0; k < 8; k++ {
				n.Send(i, (i+1)%16, 4, nil)
			}
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return last
	}
	bus, omega := run(TopBus), run(TopOmega)
	if bus <= omega*2 {
		t.Fatalf("bus (%d cycles) did not saturate vs omega (%d): the paper's premise", bus, omega)
	}
}

func TestBusTopologyName(t *testing.T) {
	if TopBus.String() != "bus" {
		t.Fatal("bus name wrong")
	}
}
