package network

import (
	"strings"
	"testing"

	"ssmp/internal/sim"
)

func faultedConfig(nodes int, seed uint64, r FaultRates) Config {
	cfg := DefaultConfig(nodes)
	cfg.Faults = FaultConfig{Seed: seed, Rates: r}
	return cfg
}

func TestFaultConfigEnabled(t *testing.T) {
	cases := []struct {
		cfg  FaultConfig
		want bool
	}{
		{FaultConfig{}, false},
		{FaultConfig{Seed: 7}, false},                              // no rates
		{FaultConfig{Rates: FaultRates{Drop: 0.5}}, false},         // seed 0
		{FaultConfig{Seed: 7, Rates: FaultRates{Drop: 0.5}}, true},
		{FaultConfig{Seed: 7, Links: map[Link]FaultRates{{0, 1}: {Dup: 0.5}}}, true},
		{FaultConfig{Seed: 7, Links: map[Link]FaultRates{{0, 1}: {}}}, false},
	}
	for i, c := range cases {
		if got := c.cfg.Enabled(); got != c.want {
			t.Errorf("case %d: Enabled(%+v) = %v, want %v", i, c.cfg, got, c.want)
		}
	}
}

func TestFaultConfigValidate(t *testing.T) {
	ok := FaultConfig{Seed: 1, Rates: FaultRates{Drop: 0.1, Dup: 0.2, Delay: 0.99}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []FaultConfig{
		{Seed: 1, Rates: FaultRates{Drop: 1}},
		{Seed: 1, Rates: FaultRates{Dup: -0.1}},
		{Seed: 1, Rates: FaultRates{Delay: 2}},
		{Seed: 1, Links: map[Link]FaultRates{{2, 3}: {Drop: 1.5}}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, c)
		}
	}
	if err := bad[3].Validate(); err == nil || !strings.Contains(err.Error(), "2->3") {
		t.Errorf("link error should name the link, got %v", bad[3].Validate())
	}
}

func TestFaultConfigString(t *testing.T) {
	if s := (FaultConfig{}).String(); s != "faults=off" {
		t.Errorf("off String = %q", s)
	}
	c := FaultConfig{Seed: 42, Rates: FaultRates{Drop: 0.01, Dup: 0.02, Delay: 0.03}}
	s := c.String()
	for _, want := range []string{"seed=42", "drop=0.01", "dup=0.02", "delay=0.03"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	c.Links = map[Link]FaultRates{{0, 1}: {Drop: 0.5}}
	if s := c.String(); !strings.Contains(s, "1 link override") {
		t.Errorf("String() = %q, missing link-override note", s)
	}
}

// collect runs pairs of (src, dst) control messages through a network and
// returns the per-destination delivery times and final stats.
func collect(t *testing.T, cfg Config, sends [][2]int) ([]sim.Time, Stats) {
	t.Helper()
	e := sim.NewEngine()
	n := New(e, cfg)
	var times []sim.Time
	for i := 0; i < cfg.Nodes; i++ {
		n.Attach(i, func(any) { times = append(times, e.Now()) })
	}
	for _, s := range sends {
		n.Send(s[0], s[1], 0, nil)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	return times, n.Stats()
}

func crossTraffic(nodes, count int) [][2]int {
	var sends [][2]int
	for i := 0; i < count; i++ {
		sends = append(sends, [2]int{i % nodes, (i*5 + 1) % nodes})
	}
	return sends
}

func TestFaultsDeterministicPerSeed(t *testing.T) {
	sends := crossTraffic(8, 200)
	r := FaultRates{Drop: 0.1, Dup: 0.1, Delay: 0.2}
	t1, s1 := collect(t, faultedConfig(8, 99, r), sends)
	t2, s2 := collect(t, faultedConfig(8, 99, r), sends)
	if len(t1) != len(t2) {
		t.Fatalf("same seed delivered %d vs %d messages", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("same seed diverged at delivery %d: %d vs %d", i, t1[i], t2[i])
		}
	}
	if s1.Faults != s2.Faults {
		t.Fatalf("same seed fault stats differ: %+v vs %+v", s1.Faults, s2.Faults)
	}
	t3, s3 := collect(t, faultedConfig(8, 100, r), sends)
	if len(t1) == len(t3) && s1.Faults == s3.Faults {
		same := true
		for i := range t1 {
			if t1[i] != t3[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical executions")
		}
	}
}

func TestFaultsSeedZeroMatchesBaseline(t *testing.T) {
	sends := crossTraffic(8, 100)
	base, bs := collect(t, DefaultConfig(8), sends)
	// Seed 0 disables faults even with rates set.
	zt, zs := collect(t, faultedConfig(8, 0, FaultRates{Drop: 0.5, Dup: 0.5, Delay: 0.5}), sends)
	if len(base) != len(zt) {
		t.Fatalf("seed-0 delivered %d, baseline %d", len(zt), len(base))
	}
	for i := range base {
		if base[i] != zt[i] {
			t.Fatalf("seed-0 diverged from baseline at delivery %d", i)
		}
	}
	if zs.Faults != (FaultStats{}) || bs.Faults != (FaultStats{}) {
		t.Fatalf("fault stats nonzero with faults off: %+v", zs.Faults)
	}
}

func TestFaultsDrop(t *testing.T) {
	sends := crossTraffic(8, 400)
	times, st := collect(t, faultedConfig(8, 7, FaultRates{Drop: 0.25}), sends)
	if st.Faults.Dropped == 0 {
		t.Fatal("no drops at rate 0.25 over 400 messages")
	}
	if uint64(len(times))+st.Faults.Dropped != 400 {
		t.Fatalf("delivered %d + dropped %d != sent 400", len(times), st.Faults.Dropped)
	}
}

func TestFaultsDup(t *testing.T) {
	sends := crossTraffic(8, 400)
	times, st := collect(t, faultedConfig(8, 7, FaultRates{Dup: 0.25}), sends)
	if st.Faults.Duplicated == 0 {
		t.Fatal("no duplicates at rate 0.25 over 400 messages")
	}
	if uint64(len(times)) != 400+st.Faults.Duplicated {
		t.Fatalf("delivered %d, want 400 + %d duplicates", len(times), st.Faults.Duplicated)
	}
}

func TestFaultsDelay(t *testing.T) {
	sends := crossTraffic(8, 400)
	_, st := collect(t, faultedConfig(8, 7, FaultRates{Delay: 0.25}), sends)
	if st.Faults.Delayed == 0 || st.Faults.DelayCycles == 0 {
		t.Fatalf("no delays injected: %+v", st.Faults)
	}
	if st.Faults.DelayCycles < st.Faults.Delayed {
		t.Fatalf("delay cycles %d < delayed count %d (each delay is >= 1 cycle)",
			st.Faults.DelayCycles, st.Faults.Delayed)
	}
	cfg := faultedConfig(8, 7, FaultRates{Delay: 0.25})
	cfg.Faults.DelayMax = 3
	_, st3 := collect(t, cfg, sends)
	if st3.Faults.DelayCycles > 3*st3.Faults.Delayed+uint64(cfg.Faults.DelayMax)*st3.Faults.Duplicated {
		t.Fatalf("DelayMax=3 exceeded: %+v", st3.Faults)
	}
}

func TestFaultsLinkOverride(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Faults = FaultConfig{
		Seed:  11,
		Links: map[Link]FaultRates{{0, 1}: {Drop: 0.9}},
	}
	e := sim.NewEngine()
	n := New(e, cfg)
	got := make([]int, 4)
	for i := 0; i < 4; i++ {
		i := i
		n.Attach(i, func(any) { got[i]++ })
	}
	for i := 0; i < 50; i++ {
		n.Send(0, 1, 0, nil) // faulty link
		n.Send(2, 3, 0, nil) // clean link
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got[3] != 50 {
		t.Fatalf("clean link delivered %d/50", got[3])
	}
	if got[1] == 50 {
		t.Fatal("flaky link with drop=0.9 delivered everything")
	}
	if n.Stats().Faults.Dropped == 0 {
		t.Fatal("no drops recorded on overridden link")
	}
}

func TestFaultsLocalBypassNeverFaulted(t *testing.T) {
	cfg := faultedConfig(4, 13, FaultRates{Drop: 0.99})
	e := sim.NewEngine()
	n := New(e, cfg)
	delivered := 0
	n.Attach(0, func(any) { delivered++ })
	for i := 1; i < 4; i++ {
		n.Attach(i, func(any) {})
	}
	for i := 0; i < 100; i++ {
		n.Send(0, 0, 0, nil)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 100 {
		t.Fatalf("local bypass delivered %d/100 under drop=0.99", delivered)
	}
	if !n.FaultsEnabled() {
		t.Fatal("FaultsEnabled() = false with an enabled config")
	}
	if n.LocalBypass(0, 1) || !n.LocalBypass(2, 2) {
		t.Fatal("LocalBypass misclassifies")
	}
}

func TestFaultPlaneStreamsIndependent(t *testing.T) {
	// A link's fault sequence must depend only on its own traffic: judging
	// extra messages on link A must not change link B's verdicts.
	r := FaultRates{Drop: 0.3, Dup: 0.3, Delay: 0.3}
	cfg := FaultConfig{Seed: 5, Rates: r}
	a := newFaultPlane(cfg, 4)
	b := newFaultPlane(cfg, 4)
	for i := 0; i < 64; i++ {
		a.judge(0, 1) // extra traffic on 0->1 in plane a only
	}
	for i := 0; i < 64; i++ {
		va, vb := a.judge(2, 3), b.judge(2, 3)
		if va != vb {
			t.Fatalf("link 2->3 verdict %d differs after unrelated traffic: %+v vs %+v", i, va, vb)
		}
	}
}
