// Package network models the multistage Ω (omega) interconnection network of
// the paper's evaluation (§5.2): nodes connected through log2(N) stages of
// two-way (2x2) switches with infinite buffering at every switching element.
//
// Contention is modeled at switch output ports: each (stage, line) output is
// a serially-reusable resource, so two messages whose destination-tag routes
// share an output line queue behind each other. Because buffers are
// infinite, messages are only ever delayed, never dropped.
//
// Message cost follows the paper's cost taxonomy: a transaction carrying no
// data (C_R), a word transfer (C_W), an invalidation (C_I) and a block
// transfer (C_B) differ only in the number of flits they occupy on each
// output port. Size is expressed in words; control messages have size 0 and
// occupy one flit.
package network

import (
	"fmt"
	"math/bits"
	"sort"

	"ssmp/internal/sim"
)

// Config parameterizes the network.
type Config struct {
	// Nodes is the number of processor/memory nodes; it must be a power of
	// two and at least 2.
	Nodes int
	// SwitchDelay is the per-stage occupancy, in cycles, of a one-flit
	// message. A message of size w words occupies each port for
	// SwitchDelay * max(1, w) cycles.
	SwitchDelay sim.Time
	// LocalDelay is the latency of a message from a node to its own memory
	// module, which bypasses the network (the memory is distributed among
	// the nodes).
	LocalDelay sim.Time
	// Ideal disables contention: messages take the uncontended pipeline
	// latency regardless of load. Used for ablation studies.
	Ideal bool
	// DanceHall places all memory on the far side of the network (the
	// organization the paper's Table 2 analysis assumes): node-local
	// messages traverse the network like any other instead of using the
	// LocalDelay bypass.
	DanceHall bool
	// Topology selects the interconnect: the paper's Ω network (default)
	// or a 2-D mesh with dimension-ordered routing.
	Topology Topology
	// Faults parameterizes the deterministic fault plane (drop, duplicate,
	// extra delay per link; see faults.go). The zero value — or any config
	// with Seed 0 — disables it, leaving delivery exactly-once and in
	// order and the no-fault code path untouched.
	Faults FaultConfig
}

// DefaultConfig returns the configuration used throughout the paper's
// simulations: unit switch delay and a one-cycle local hop.
func DefaultConfig(nodes int) Config {
	return Config{Nodes: nodes, SwitchDelay: 1, LocalDelay: 1}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Nodes < 2 || c.Nodes&(c.Nodes-1) != 0 {
		return fmt.Errorf("network: Nodes must be a power of two >= 2, got %d", c.Nodes)
	}
	if c.SwitchDelay == 0 {
		return fmt.Errorf("network: SwitchDelay must be positive")
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// Handler receives delivered payloads at a node.
type Handler func(payload any)

// Stats aggregates network-level counters.
type Stats struct {
	Messages   uint64   // messages injected
	Words      uint64   // payload words carried
	Hops       uint64   // stage traversals
	Local      uint64   // node-local deliveries that bypassed the network
	LatencySum sim.Time // sum of injection-to-delivery latencies
	QueueSum   sim.Time // portion of LatencySum due to port contention
	// Faults counts injected faults (all zero with the fault plane off).
	Faults FaultStats
}

// MeanLatency returns the average end-to-end latency per network message.
func (s Stats) MeanLatency() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Messages)
}

// MeanQueueing returns the average queueing delay per network message.
func (s Stats) MeanQueueing() float64 {
	if s.Messages == 0 {
		return 0
	}
	return float64(s.QueueSum) / float64(s.Messages)
}

// Network is the Ω network instance. In the default serial mode it is not
// safe for concurrent use. Built with NewParallel it runs in lane mode:
// every node's sends execute on that node's lane engine, counters are
// sharded by source node, and cross-node deliveries are buffered through
// the coordinator's deterministic window merge (sim.Parallel.Post). With
// contention on (the default), a lane never touches port-occupancy state
// during a window: it records the send (pend) and the coordinator's
// window-barrier arbiter replays all recorded sends in global injection-key
// order, resolving contention exactly as the serial engine's acquire order
// would.
type Network struct {
	cfg      Config
	engine   *sim.Engine
	par      *sim.Parallel // lane mode; nil for the serial engine
	laneEng  []*sim.Engine // [node] lane engines (lane mode only)
	stages   int
	logN     int
	ports    [][]sim.Resource // [stage][line] (Ω topology)
	mesh     *mesh            // mesh topology
	bus      *sim.Resource    // bus topology: the single shared medium
	handlers []Handler
	inbox    []port // per-node typed delivery endpoints
	faults   *faultPlane
	shards   []Stats      // per-source-node counters, summed by Stats()
	pend     [][]pendSend // contended lane mode: per-source deferred sends
	arbScr   []pendSend   // arbitration scratch (reused across windows)
}

// pendSend is one deferred contended send: everything the window-barrier
// arbiter needs to replay the send through the port-occupancy state. The
// injection key (at, jit, src, seq) and the fault verdict are drawn at Send
// time on the source lane, so both are pure functions of that lane's own
// schedule; only the port acquisition — the globally-ordered part — waits
// for the barrier.
type pendSend struct {
	at      sim.Time
	jit     uint64
	seq     uint64
	hold    sim.Time
	src     int32
	dst     int32
	hops    int32
	v       verdict
	payload any
}

// New builds a network over the given engine. It panics on an invalid
// configuration (construction-time misconfiguration is a programming error).
func New(engine *sim.Engine, cfg Config) *Network {
	n := build(cfg)
	n.engine = engine
	return n
}

// NewParallel builds a network in lane mode over a PDES coordinator: node
// i's sends run on lane i, and cross-node deliveries go through the window
// merge. It installs the model lookahead (the minimum cross-node latency)
// on the coordinator.
//
// With contention on, switch-port occupancy is global timestamp-ordered
// state, so it is resolved at the window barrier instead of at Send time:
// sends are recorded per lane and the coordinator's arbiter (SetArbiter)
// replays them in global injection-key order. This is sound because
// senders are fire-and-forget — queueing delay is observable only at the
// destination, which the lookahead invariant keeps behind the window end —
// and contention only ever adds to the uncontended latency that
// MinCrossLatency bounds from below.
func NewParallel(par *sim.Parallel, cfg Config) *Network {
	if par.Lanes() != cfg.Nodes {
		panic(fmt.Sprintf("network: %d lanes for %d nodes", par.Lanes(), cfg.Nodes))
	}
	n := build(cfg)
	n.par = par
	n.laneEng = make([]*sim.Engine, cfg.Nodes)
	for i := range n.laneEng {
		n.laneEng[i] = par.Lane(i)
	}
	if !cfg.Ideal {
		n.pend = make([][]pendSend, cfg.Nodes)
		par.SetArbiter(n.arbitrate)
	}
	par.SetLookahead(n.MinCrossLatency())
	return n
}

func build(cfg Config) *Network {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	logN := bits.TrailingZeros(uint(cfg.Nodes))
	n := &Network{
		cfg:      cfg,
		stages:   logN,
		logN:     logN,
		handlers: make([]Handler, cfg.Nodes),
		inbox:    make([]port, cfg.Nodes),
		shards:   make([]Stats, cfg.Nodes),
	}
	for i := range n.inbox {
		n.inbox[i] = port{n: n, node: i}
	}
	switch cfg.Topology {
	case TopMesh:
		n.mesh = newMesh(cfg.Nodes)
	case TopBus:
		n.bus = &sim.Resource{}
	default:
		n.ports = make([][]sim.Resource, logN)
		for s := range n.ports {
			n.ports[s] = make([]sim.Resource, cfg.Nodes)
		}
	}
	if cfg.Faults.Enabled() {
		n.faults = newFaultPlane(cfg.Faults, cfg.Nodes)
	}
	return n
}

// FaultsEnabled reports whether the fault plane is active, in which case
// delivery is no longer exactly-once or in order and callers need the
// fabric's reliable transport above this network.
func (n *Network) FaultsEnabled() bool { return n.faults != nil }

// LocalBypass reports whether a src->dst message bypasses the network (and
// therefore can never be faulted).
func (n *Network) LocalBypass(src, dst int) bool { return src == dst && !n.cfg.DanceHall }

// Nodes returns the number of nodes.
func (n *Network) Nodes() int { return n.cfg.Nodes }

// Stages returns the number of switch stages (log2 of the node count).
func (n *Network) Stages() int { return n.stages }

// Stats returns a snapshot of the counters, summed across the per-source
// shards. In lane mode call it only between windows (after the run).
func (n *Network) Stats() Stats {
	var s Stats
	for i := range n.shards {
		sh := &n.shards[i]
		s.Messages += sh.Messages
		s.Words += sh.Words
		s.Hops += sh.Hops
		s.Local += sh.Local
		s.LatencySum += sh.LatencySum
		s.QueueSum += sh.QueueSum
	}
	if n.faults != nil {
		s.Faults = n.faults.total()
	}
	return s
}

// Attach registers the delivery handler for a node. Each node must attach
// exactly once before any message addressed to it is delivered.
func (n *Network) Attach(node int, h Handler) {
	if n.handlers[node] != nil {
		panic(fmt.Sprintf("network: node %d attached twice", node))
	}
	n.handlers[node] = h
}

// holdFor returns the per-port occupancy of a message carrying `words`
// payload words.
func (n *Network) holdFor(words int) sim.Time {
	flits := sim.Time(1)
	if words > 1 {
		flits = sim.Time(words)
	}
	return n.cfg.SwitchDelay * flits
}

// route returns the sequence of (stage, line) output ports on the
// destination-tag path from src to dst. In an Ω network the line occupied
// after stage i is formed by shifting destination bits into the source
// address: line_i = ((src << (i+1)) | (dst >> (logN-i-1))) mod N.
func (n *Network) route(src, dst int, lines []int) []int {
	lines = lines[:0]
	for i := 0; i < n.stages; i++ {
		line := ((src << (i + 1)) | (dst >> (n.logN - i - 1))) & (n.cfg.Nodes - 1)
		lines = append(lines, line)
	}
	return lines
}

// Send injects a message of the given payload size (words; 0 for a control
// transaction) from src to dst, delivering it to dst's handler after the
// modeled latency. Node-local messages bypass the network entirely. In lane
// mode Send must be called from src's lane; every counter it touches is
// src's own shard, and cross-lane deliveries route through the coordinator.
func (n *Network) Send(src, dst, words int, payload any) {
	eng := n.engine
	if n.par != nil {
		eng = n.laneEng[src]
	}
	now := eng.Now()
	st := &n.shards[src]
	if src == dst && !n.cfg.DanceHall {
		st.Local++
		n.deliverAt(eng, now+n.cfg.LocalDelay, src, dst, payload)
		return
	}
	st.Messages++
	st.Words += uint64(words)
	hold := n.holdFor(words)

	hops := n.stages
	switch {
	case n.mesh != nil:
		hops = n.mesh.hops(src, dst)
	case n.bus != nil:
		hops = 1 // one bus transaction
	}
	st.Hops += uint64(hops)
	if n.pend != nil && hops > 0 {
		// Contended lane mode: record the send and let the window-barrier
		// arbiter replay it through the port state in global key order.
		// Everything drawn here — fault verdict, injection key — comes from
		// lane-local streams, in the same per-link order the serial engine
		// would draw them. A zero-hop send (DanceHall same-node) acquires
		// nothing and stays on the immediate path below.
		q := pendSend{at: now, hold: hold, src: int32(src), dst: int32(dst), hops: int32(hops), payload: payload}
		if n.faults != nil {
			q.v = n.faults.judge(src, dst)
		}
		q.jit, q.seq = n.par.DrawKey(int32(src))
		n.pend[src] = append(n.pend[src], q)
		return
	}
	var done sim.Time
	switch {
	case n.cfg.Ideal:
		done = now + hold*sim.Time(hops)
	case n.mesh != nil:
		done = n.mesh.traverse(src, dst, now, hold)
	case n.bus != nil:
		done = n.bus.Acquire(now, hold)
	default:
		done = n.sendPath(src, dst, now, hold)
	}
	lat := done - now
	st.LatencySum += lat
	uncontended := hold * sim.Time(hops)
	if lat > uncontended {
		st.QueueSum += lat - uncontended
	}
	if n.faults != nil {
		v := n.faults.judge(src, dst)
		if v.drop {
			return
		}
		done += v.extra
		if v.dup {
			n.deliverAt(eng, done+v.dupAt, src, dst, payload)
		}
	}
	n.deliverAt(eng, done, src, dst, payload)
}

// sendPath walks the destination-tag route acquiring each output port in
// order and returns the delivery completion time.
func (n *Network) sendPath(src, dst int, now, hold sim.Time) sim.Time {
	t := now
	for i := 0; i < n.stages; i++ {
		line := ((src << (i + 1)) | (dst >> (n.logN - i - 1))) & (n.cfg.Nodes - 1)
		t = n.ports[i][line].Acquire(t, hold)
	}
	return t
}

// arbitrate is the coordinator's window-barrier hook in contended lane
// mode. It replays every send the lanes recorded during the window through
// the port-occupancy state in global injection-key order (time, jitter,
// source lane, source sequence) — the same order the serial engine's event
// loop would have acquired the ports in — producing deterministic delivery
// times and queueing stats regardless of worker count. Window start times
// are monotone (every recorded send lies in the window just executed, and
// the next GVT is at or beyond this window's end), so consecutive windows'
// replays are globally time-ordered and the Resource free-times advance
// exactly as they do serially. Deliveries are posted with the key drawn at
// Send time and flow into the same window's merge.
func (n *Network) arbitrate() {
	m := n.arbScr[:0]
	for src := range n.pend {
		m = append(m, n.pend[src]...)
		n.pend[src] = n.pend[src][:0]
	}
	if len(m) == 0 {
		n.arbScr = m
		return
	}
	sort.Slice(m, func(i, j int) bool {
		a, b := &m[i], &m[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.jit != b.jit {
			return a.jit < b.jit
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for i := range m {
		q := &m[i]
		src, dst := int(q.src), int(q.dst)
		var done sim.Time
		switch {
		case n.mesh != nil:
			done = n.mesh.traverse(src, dst, q.at, q.hold)
		case n.bus != nil:
			done = n.bus.Acquire(q.at, q.hold)
		default:
			done = n.sendPath(src, dst, q.at, q.hold)
		}
		st := &n.shards[src]
		lat := done - q.at
		st.LatencySum += lat
		uncontended := q.hold * sim.Time(q.hops)
		if lat > uncontended {
			st.QueueSum += lat - uncontended
		}
		// The fault verdict was drawn at Send time; a dropped message still
		// occupied its ports and counted toward latency, as it does on the
		// serial path.
		if !q.v.drop {
			done += q.v.extra
			if q.v.dup {
				n.postArbitrated(q, done+q.v.dupAt)
			}
			n.postArbitrated(q, done)
		}
		q.payload = nil
	}
	n.arbScr = m[:0]
}

// postArbitrated posts one arbitrated delivery through the coordinator,
// reusing the injection key drawn at Send time (a trailing duplicate shares
// the key but lands at a strictly later time, so the pair still orders
// deterministically).
func (n *Network) postArbitrated(q *pendSend, t sim.Time) {
	if n.handlers[q.dst] == nil {
		panic(fmt.Sprintf("network: no handler attached at node %d", q.dst))
	}
	n.par.PostKeyed(q.src, q.dst, t, q.jit, q.seq, &n.inbox[q.dst], q.payload)
}

// port is a per-node delivery endpoint implementing sim.Receiver, so message
// delivery schedules a typed event instead of allocating a closure per
// message.
type port struct {
	n    *Network
	node int
}

// OnDeliver hands the payload to the node's handler.
func (p *port) OnDeliver(payload any) { p.n.handlers[p.node](payload) }

// deliverAt schedules the delivery event. In serial mode everything goes on
// the single engine. In lane mode a same-node delivery stays on the source
// lane (it is invisible to other lanes), while a cross-node delivery is
// posted through the coordinator's window merge — that is the only path by
// which one lane's execution affects another's schedule.
func (n *Network) deliverAt(eng *sim.Engine, t sim.Time, src, dst int, payload any) {
	if n.handlers[dst] == nil {
		panic(fmt.Sprintf("network: no handler attached at node %d", dst))
	}
	if n.par != nil && src != dst {
		n.par.Post(int32(src), int32(dst), t, &n.inbox[dst], payload)
		return
	}
	eng.AtDeliver(t, &n.inbox[dst], payload)
}

// UncontendedLatency returns the latency a message of the given size would
// experience on an empty network (t_nw in the paper's cost model). For the
// Ω network every pair is log2(N) stages apart; for the mesh the average
// Manhattan distance (rows+cols)/2 is used as the representative figure.
func (n *Network) UncontendedLatency(words int) sim.Time {
	hops := n.stages
	switch {
	case n.mesh != nil:
		hops = (n.mesh.rows + n.mesh.cols) / 2
	case n.bus != nil:
		hops = 1
	}
	return n.holdFor(words) * sim.Time(hops)
}

// MinCrossLatency returns the minimum modeled latency of any message
// between two *different* nodes: a one-flit control message over the
// shortest route (every pair is log2 N stages apart on the Ω network; the
// shortest mesh route is one hop between neighbors; the bus is always one
// transaction). This is the PDES lookahead — contention, fault-plane extra
// delay, and larger payloads only ever add to it, so no cross-lane effect
// can land sooner. Node-local bypass traffic is exempt (it never crosses a
// lane) and does not bound the window.
func (n *Network) MinCrossLatency() sim.Time {
	hops := n.stages
	if n.mesh != nil || n.bus != nil {
		hops = 1
	}
	la := n.holdFor(0) * sim.Time(hops)
	if la < 1 {
		la = 1
	}
	return la
}

// PortUtilization returns the mean utilization across all switch output
// ports over the given horizon.
func (n *Network) PortUtilization(horizon sim.Time) float64 {
	if horizon == 0 {
		return 0
	}
	var busy sim.Time
	var count int
	if n.mesh != nil {
		busy, count = n.mesh.busy()
	}
	if n.bus != nil {
		busy += n.bus.Busy
		count++
	}
	for s := range n.ports {
		for l := range n.ports[s] {
			busy += n.ports[s][l].Busy
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(busy) / float64(horizon) / float64(count)
}
