package network

import (
	"testing"
	"testing/quick"

	"ssmp/internal/sim"
)

func mk(t testing.TB, nodes int) (*sim.Engine, *Network) {
	t.Helper()
	e := sim.NewEngine()
	n := New(e, DefaultConfig(nodes))
	return e, n
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{Nodes: 2, SwitchDelay: 1}, true},
		{Config{Nodes: 64, SwitchDelay: 1}, true},
		{Config{Nodes: 0, SwitchDelay: 1}, false},
		{Config{Nodes: 1, SwitchDelay: 1}, false},
		{Config{Nodes: 3, SwitchDelay: 1}, false},
		{Config{Nodes: 48, SwitchDelay: 1}, false},
		{Config{Nodes: 8, SwitchDelay: 0}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with bad config did not panic")
		}
	}()
	New(sim.NewEngine(), Config{Nodes: 3, SwitchDelay: 1})
}

func TestStages(t *testing.T) {
	for nodes, want := range map[int]int{2: 1, 4: 2, 8: 3, 64: 6, 1024: 10} {
		_, n := mk(t, nodes)
		if n.Stages() != want {
			t.Errorf("Stages(%d nodes) = %d, want %d", nodes, n.Stages(), want)
		}
	}
}

func TestDeliveryReachesHandler(t *testing.T) {
	e, n := mk(t, 8)
	got := make([]any, 0, 1)
	for i := 0; i < 8; i++ {
		i := i
		n.Attach(i, func(p any) {
			if i == 5 {
				got = append(got, p)
			} else {
				t.Errorf("payload delivered to wrong node %d", i)
			}
		})
	}
	n.Send(2, 5, 0, "hello")
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "hello" {
		t.Fatalf("delivered %v, want [hello]", got)
	}
}

func TestUncontendedLatency(t *testing.T) {
	e, n := mk(t, 16) // 4 stages, unit switch delay
	var at sim.Time
	for i := 0; i < 16; i++ {
		i := i
		n.Attach(i, func(any) { at = e.Now() })
		_ = i
	}
	n.Send(0, 9, 0, nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 4 {
		t.Fatalf("control message latency = %d, want 4 (one cycle per stage)", at)
	}
	if n.UncontendedLatency(0) != 4 {
		t.Fatalf("UncontendedLatency(0) = %d, want 4", n.UncontendedLatency(0))
	}
	if n.UncontendedLatency(4) != 16 {
		t.Fatalf("UncontendedLatency(4) = %d, want 16", n.UncontendedLatency(4))
	}
}

func TestBlockMessagesAreHeavier(t *testing.T) {
	e, n := mk(t, 8)
	var ctl, blk sim.Time
	n.Attach(1, func(any) { ctl = e.Now() })
	n.Attach(2, func(any) { blk = e.Now() })
	for i := 0; i < 8; i++ {
		if i != 1 && i != 2 {
			n.Attach(i, func(any) {})
		}
	}
	n.Send(0, 1, 0, nil) // control
	e.RunUntil(1000)
	start := e.Now()
	n.Send(0, 2, 4, nil) // 4-word block
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ctl != 3 {
		t.Fatalf("control latency = %d, want 3", ctl)
	}
	if blk-start != 12 {
		t.Fatalf("block latency = %d, want 12 (4 flits x 3 stages)", blk-start)
	}
}

func TestLocalBypass(t *testing.T) {
	e, n := mk(t, 4)
	var at sim.Time
	n.Attach(0, func(any) { at = e.Now() })
	for i := 1; i < 4; i++ {
		n.Attach(i, func(any) {})
	}
	n.Send(0, 0, 4, nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 1 {
		t.Fatalf("local delivery at %d, want LocalDelay=1", at)
	}
	st := n.Stats()
	if st.Local != 1 || st.Messages != 0 {
		t.Fatalf("stats = %+v, want Local=1 Messages=0", st)
	}
}

func TestContentionSerializesSharedPort(t *testing.T) {
	// Two simultaneous messages to the same destination must share the
	// final-stage output port and therefore serialize.
	e, n := mk(t, 8)
	var times []sim.Time
	n.Attach(7, func(any) { times = append(times, e.Now()) })
	for i := 0; i < 7; i++ {
		n.Attach(i, func(any) {})
	}
	n.Send(0, 7, 0, nil)
	n.Send(1, 7, 0, nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(times) != 2 {
		t.Fatalf("delivered %d messages, want 2", len(times))
	}
	if times[0] == times[1] {
		t.Fatalf("contending messages delivered simultaneously at %d", times[0])
	}
	st := n.Stats()
	if st.QueueSum == 0 {
		t.Fatal("expected nonzero queueing delay under contention")
	}
}

func TestIdealNetworkIgnoresContention(t *testing.T) {
	e := sim.NewEngine()
	cfg := DefaultConfig(8)
	cfg.Ideal = true
	n := New(e, cfg)
	var times []sim.Time
	n.Attach(7, func(any) { times = append(times, e.Now()) })
	for i := 0; i < 7; i++ {
		n.Attach(i, func(any) {})
	}
	for src := 0; src < 4; src++ {
		n.Send(src, 7, 0, nil)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for _, at := range times {
		if at != 3 {
			t.Fatalf("ideal delivery at %d, want 3 for all", at)
		}
	}
	if n.Stats().QueueSum != 0 {
		t.Fatal("ideal network recorded queueing")
	}
}

func TestAttachTwicePanics(t *testing.T) {
	_, n := mk(t, 4)
	n.Attach(0, func(any) {})
	defer func() {
		if recover() == nil {
			t.Error("double Attach did not panic")
		}
	}()
	n.Attach(0, func(any) {})
}

func TestMissingHandlerPanics(t *testing.T) {
	_, n := mk(t, 4)
	defer func() {
		if recover() == nil {
			t.Error("send to unattached node did not panic")
		}
	}()
	n.Send(1, 2, 0, nil)
}

func TestRouteProperties(t *testing.T) {
	// For every (src, dst) pair the route has exactly logN hops, every
	// line index is in range, and the final line equals the destination
	// (destination-tag routing invariant).
	_, n := mk(t, 32)
	var buf []int
	for src := 0; src < 32; src++ {
		for dst := 0; dst < 32; dst++ {
			buf = n.route(src, dst, buf)
			if len(buf) != 5 {
				t.Fatalf("route(%d,%d) has %d hops, want 5", src, dst, len(buf))
			}
			for _, l := range buf {
				if l < 0 || l >= 32 {
					t.Fatalf("route(%d,%d) line %d out of range", src, dst, l)
				}
			}
			if buf[len(buf)-1] != dst {
				t.Fatalf("route(%d,%d) ends at line %d, want %d", src, dst, buf[len(buf)-1], dst)
			}
		}
	}
}

func TestRouteUniquePaths(t *testing.T) {
	// The Ω network is a unique-path network: two messages between the
	// same pair always take the same route.
	_, n := mk(t, 16)
	a := append([]int(nil), n.route(3, 11, nil)...)
	b := append([]int(nil), n.route(3, 11, nil)...)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("route is not deterministic")
		}
	}
}

// Property: messages are always delivered, exactly once each, and delivery
// time is at least the uncontended latency.
func TestQuickDeliveryComplete(t *testing.T) {
	f := func(pairs []uint16) bool {
		e := sim.NewEngine()
		n := New(e, DefaultConfig(16))
		delivered := 0
		for i := 0; i < 16; i++ {
			n.Attach(i, func(any) { delivered++ })
		}
		sent := 0
		for _, p := range pairs {
			src := int(p) & 15
			dst := int(p>>4) & 15
			n.Send(src, dst, int(p>>8)&3, nil)
			sent++
		}
		if err := e.Run(); err != nil {
			return false
		}
		return delivered == sent
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	e, n := mk(t, 8)
	for i := 0; i < 8; i++ {
		n.Attach(i, func(any) {})
	}
	n.Send(0, 1, 4, nil)
	n.Send(2, 3, 0, nil)
	n.Send(4, 4, 2, nil) // local
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.Messages != 2 {
		t.Errorf("Messages = %d, want 2", st.Messages)
	}
	if st.Words != 4 {
		t.Errorf("Words = %d, want 4", st.Words)
	}
	if st.Local != 1 {
		t.Errorf("Local = %d, want 1", st.Local)
	}
	if st.Hops != 6 {
		t.Errorf("Hops = %d, want 6", st.Hops)
	}
	if st.MeanLatency() <= 0 {
		t.Error("MeanLatency should be positive")
	}
}

func TestPortUtilization(t *testing.T) {
	e, n := mk(t, 4)
	for i := 0; i < 4; i++ {
		n.Attach(i, func(any) {})
	}
	n.Send(0, 3, 0, nil)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	u := n.PortUtilization(e.Now())
	if u <= 0 || u > 1 {
		t.Fatalf("PortUtilization = %v, want in (0,1]", u)
	}
	if n.PortUtilization(0) != 0 {
		t.Fatal("PortUtilization(0) should be 0")
	}
}

func BenchmarkSendThrough64Nodes(b *testing.B) {
	e := sim.NewEngine()
	n := New(e, DefaultConfig(64))
	for i := 0; i < 64; i++ {
		n.Attach(i, func(any) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Send(i&63, (i*7)&63, 4, nil)
		if i%1024 == 1023 {
			_ = e.Run()
		}
	}
	_ = e.Run()
}

func TestStatsAndAccessors(t *testing.T) {
	_, n := mk(t, 8)
	if n.Nodes() != 8 {
		t.Fatal("Nodes wrong")
	}
	var s Stats
	if s.MeanLatency() != 0 || s.MeanQueueing() != 0 {
		t.Fatal("empty stats nonzero")
	}
}
