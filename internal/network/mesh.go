package network

// 2-D mesh topology support. The paper's machine description leaves the
// interconnection network "intentionally unspecified" (§4); its evaluation
// uses the Ω network (§5.2). The mesh lets the scalability results be
// re-checked on a second, lower-bisection topology: nodes sit on a
// rows x cols grid (dimensions the closest powers of two), packets route
// dimension-ordered (X then Y), and every directed link is a contended
// resource, as the Ω switch ports are.

import "ssmp/internal/sim"

// Topology selects the interconnect.
type Topology uint8

const (
	// TopOmega is the paper's multistage Ω network (default).
	TopOmega Topology = iota
	// TopMesh is a 2-D mesh with dimension-ordered routing.
	TopMesh
	// TopBus is a single shared bus: every message serializes on one
	// resource. The paper's §1 motivation — "a bus is not a scalable
	// interconnection network" — made runnable.
	TopBus
)

// String names the topology.
func (t Topology) String() string {
	switch t {
	case TopOmega:
		return "omega"
	case TopMesh:
		return "mesh"
	case TopBus:
		return "bus"
	}
	return "topology?"
}

// mesh holds the mesh-specific state.
type mesh struct {
	rows, cols int
	// links[node][dir] is the directed link leaving node in direction
	// dir: 0 east (+x), 1 west (-x), 2 south (+y), 3 north (-y).
	links [][4]sim.Resource
}

func newMesh(nodes int) *mesh {
	// Split the log2 as evenly as possible: 16 -> 4x4, 32 -> 8x4.
	logN := 0
	for 1<<uint(logN) < nodes {
		logN++
	}
	rows := 1 << uint(logN/2)
	cols := nodes / rows
	return &mesh{rows: rows, cols: cols, links: make([][4]sim.Resource, nodes)}
}

func (m *mesh) coords(node int) (x, y int) { return node % m.cols, node / m.cols }

func (m *mesh) nodeAt(x, y int) int { return y*m.cols + x }

// hops returns the Manhattan distance between two nodes.
func (m *mesh) hops(src, dst int) int {
	sx, sy := m.coords(src)
	dx, dy := m.coords(dst)
	return abs(sx-dx) + abs(sy-dy)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// traverse walks the XY route acquiring each directed link; it returns the
// delivery completion time.
func (m *mesh) traverse(src, dst int, now, hold sim.Time) sim.Time {
	t := now
	x, y := m.coords(src)
	dx, dy := m.coords(dst)
	for x != dx {
		dir, nx := 0, x+1
		if dx < x {
			dir, nx = 1, x-1
		}
		t = m.links[m.nodeAt(x, y)][dir].Acquire(t, hold)
		x = nx
	}
	for y != dy {
		dir, ny := 2, y+1
		if dy < y {
			dir, ny = 3, y-1
		}
		t = m.links[m.nodeAt(x, y)][dir].Acquire(t, hold)
		y = ny
	}
	return t
}

// busy sums link occupancy for utilization reporting.
func (m *mesh) busy() (total sim.Time, count int) {
	for i := range m.links {
		for d := 0; d < 4; d++ {
			total += m.links[i][d].Busy
			count++
		}
	}
	return total, count
}
