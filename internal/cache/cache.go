// Package cache models the per-node private cache of the paper's machine
// (§4, Figure 2a). Every cache directory entry carries, beyond the usual
// tag/state, the fields the paper adds:
//
//   - per-word dirty bits d1..dk, so only dirty words are written back on
//     replacement (eliminating the false-sharing lost-update problem);
//   - an update bit, set by READ-UPDATE, marking the line as a subscriber to
//     reader-initiated coherence;
//   - a lock field plus prev/next pointers, used both for the update
//     subscriber list and for the distributed lock queue (the two uses are
//     mutually exclusive per block, discriminated by the central directory's
//     usage bit).
//
// The package also provides the small fully-associative lock cache of §4.3:
// lock lines must never be evicted while they participate in a queue, so
// they live in a dedicated structure whose capacity is a managed hardware
// resource.
package cache

import (
	"fmt"

	"ssmp/internal/mem"
	"ssmp/internal/msg"
)

// NoNode is the nil value for Prev/Next node pointers.
const NoNode = -1

// Line is one cache line plus its cache-directory entry.
type Line struct {
	// Block is the memory block cached here (the tag).
	Block mem.Block
	// Valid reports whether the line holds live data.
	Valid bool
	// Data is the line's contents (BlockWords words).
	Data []mem.Word
	// Dirty is the per-word dirty bitmap (d1..dk in Figure 2a).
	Dirty mem.DirtyMask
	// Update is the update bit: the line subscribes to reader-initiated
	// updates.
	Update bool
	// Excl marks exclusive ownership (used by the WBI baseline protocol;
	// the paper's own protocol does not need an exclusive state).
	Excl bool

	// Mode is the lock field: the mode held or requested on this line.
	Mode msg.LockMode
	// Held reports whether the lock grant has arrived (false = waiting).
	Held bool
	// Prev and Next are the node ids of this line's neighbours in the
	// distributed linked list (update subscribers or lock queue).
	Prev, Next int

	lru uint64
}

// ResetPointers clears the linked-list fields.
func (l *Line) ResetPointers() { l.Prev, l.Next = NoNode, NoNode }

// Stats counts cache events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// DirtyEvictions counts evictions that required a write-back.
	DirtyEvictions uint64
}

// Cache is a set-associative cache with LRU replacement within a set.
//
// Set storage is allocated lazily, on the first Allocate that touches a
// set: a machine builds one cache per node, so a 1024-node machine with
// the default 512x2 geometry would otherwise zero a million Line structs
// (~100 MB) up front — by far the dominant cost of machine construction —
// while most workloads touch a handful of sets per node. Untouched sets
// behave exactly like sets full of invalid lines, so the laziness is
// invisible to the protocol.
type Cache struct {
	geom  mem.Geometry
	sets  int
	ways  int
	lines [][]Line // indexed by set; nil until the set is first allocated
	tick  uint64
	stats Stats
}

// New builds a cache of sets x ways lines. Sets must be a power of two.
func New(geom mem.Geometry, sets, ways int) *Cache {
	if sets < 1 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache: sets must be a power of two, got %d", sets))
	}
	if ways < 1 {
		panic(fmt.Sprintf("cache: ways must be >= 1, got %d", ways))
	}
	return &Cache{geom: geom, sets: sets, ways: ways, lines: make([][]Line, sets)}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Capacity returns the total number of lines.
func (c *Cache) Capacity() int { return c.sets * c.ways }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// set returns block b's set, or nil if the set has never been allocated
// (equivalent to a set full of invalid lines).
func (c *Cache) set(b mem.Block) []Line {
	return c.lines[int(uint64(b)&uint64(c.sets-1))]
}

// setAlloc returns block b's set, materializing it on first touch. One
// backing array holds all of the set's line data, keeping it to two
// allocations per set ever touched.
func (c *Cache) setAlloc(b mem.Block) []Line {
	s := int(uint64(b) & uint64(c.sets-1))
	set := c.lines[s]
	if set == nil {
		set = make([]Line, c.ways)
		backing := make([]mem.Word, c.ways*c.geom.BlockWords)
		for i := range set {
			set[i].ResetPointers()
			set[i].Data = backing[i*c.geom.BlockWords : (i+1)*c.geom.BlockWords : (i+1)*c.geom.BlockWords]
		}
		c.lines[s] = set
	}
	return set
}

// Lookup returns the line holding block b, counting a hit or miss and
// refreshing LRU state. It returns nil on a miss.
func (c *Cache) Lookup(b mem.Block) *Line {
	set := c.set(b)
	for i := range set {
		if set[i].Valid && set[i].Block == b {
			c.stats.Hits++
			c.tick++
			set[i].lru = c.tick
			return &set[i]
		}
	}
	c.stats.Misses++
	return nil
}

// Peek returns the line holding block b without touching statistics or LRU
// state. It returns nil if the block is not cached.
func (c *Cache) Peek(b mem.Block) *Line {
	set := c.set(b)
	for i := range set {
		if set[i].Valid && set[i].Block == b {
			return &set[i]
		}
	}
	return nil
}

// Victim describes a line displaced by Allocate. The caller is responsible
// for writing back dirty words and unsubscribing an update line.
type Victim struct {
	Block  mem.Block
	Data   []mem.Word
	Dirty  mem.DirtyMask
	Update bool
}

// Allocate returns a line for block b, evicting the LRU way if the set is
// full. The returned line is valid, tagged with b, and zero-filled; the
// caller populates Data. If an eviction displaced live data, evicted is true
// and victim describes it (victim.Data is a copy and safe to retain).
//
// Allocate panics if b is already cached: the caller must Lookup first.
func (c *Cache) Allocate(b mem.Block) (line *Line, victim Victim, evicted bool) {
	set := c.setAlloc(b)
	var pick *Line
	for i := range set {
		if set[i].Valid && set[i].Block == b {
			panic(fmt.Sprintf("cache: Allocate of already-cached block %d", b))
		}
		switch {
		case !set[i].Valid:
			// An invalid way is always the preferred victim.
			if pick == nil || pick.Valid {
				pick = &set[i]
			}
		case pick == nil || (pick.Valid && set[i].lru < pick.lru):
			pick = &set[i]
		}
	}
	if pick.Valid {
		evicted = true
		c.stats.Evictions++
		if pick.Dirty.Any() {
			c.stats.DirtyEvictions++
		}
		victim = Victim{
			Block:  pick.Block,
			Data:   append([]mem.Word(nil), pick.Data...),
			Dirty:  pick.Dirty,
			Update: pick.Update,
		}
	}
	c.tick++
	data := pick.Data
	for i := range data {
		data[i] = 0
	}
	*pick = Line{Block: b, Valid: true, Data: data, Prev: NoNode, Next: NoNode, lru: c.tick}
	return pick, victim, evicted
}

// Invalidate drops block b from the cache, returning the line's final state
// (for write-back decisions) and whether it was present.
func (c *Cache) Invalidate(b mem.Block) (Victim, bool) {
	set := c.set(b)
	for i := range set {
		if set[i].Valid && set[i].Block == b {
			v := Victim{
				Block:  b,
				Data:   append([]mem.Word(nil), set[i].Data...),
				Dirty:  set[i].Dirty,
				Update: set[i].Update,
			}
			set[i].Valid = false
			set[i].Dirty = 0
			set[i].Update = false
			set[i].Mode = msg.LockNone
			set[i].Held = false
			set[i].ResetPointers()
			return v, true
		}
	}
	return Victim{}, false
}

// ForEach calls fn for every valid line, in set order.
func (c *Cache) ForEach(fn func(*Line)) {
	for _, set := range c.lines {
		for i := range set {
			if set[i].Valid {
				fn(&set[i])
			}
		}
	}
}

// LockCache is the small fully-associative cache dedicated to lock variables
// (§4.3). Lines participating in a lock queue are pinned: they are never
// evicted, and allocation fails when every slot is pinned. The paper treats
// capacity as a compile-time-managed hardware resource; we surface
// exhaustion as an error so callers can model a conservative mapping.
type LockCache struct {
	geom  mem.Geometry
	lines []Line
	tick  uint64
	stats Stats
}

// NewLockCache builds a lock cache with the given number of entries.
func NewLockCache(geom mem.Geometry, entries int) *LockCache {
	if entries < 1 {
		panic(fmt.Sprintf("cache: lock cache entries must be >= 1, got %d", entries))
	}
	lc := &LockCache{geom: geom, lines: make([]Line, entries)}
	backing := make([]mem.Word, entries*geom.BlockWords)
	for i := range lc.lines {
		lc.lines[i].ResetPointers()
		lc.lines[i].Data = backing[i*geom.BlockWords : (i+1)*geom.BlockWords : (i+1)*geom.BlockWords]
	}
	return lc
}

// Capacity returns the number of entries.
func (lc *LockCache) Capacity() int { return len(lc.lines) }

// InUse returns the number of live entries.
func (lc *LockCache) InUse() int {
	n := 0
	for i := range lc.lines {
		if lc.lines[i].Valid {
			n++
		}
	}
	return n
}

// Stats returns a snapshot of the counters.
func (lc *LockCache) Stats() Stats { return lc.stats }

// Lookup returns the lock line for block b, or nil.
func (lc *LockCache) Lookup(b mem.Block) *Line {
	for i := range lc.lines {
		if lc.lines[i].Valid && lc.lines[i].Block == b {
			lc.stats.Hits++
			lc.tick++
			lc.lines[i].lru = lc.tick
			return &lc.lines[i]
		}
	}
	lc.stats.Misses++
	return nil
}

// ErrLockCacheFull is returned when every lock-cache entry is pinned by an
// active lock. The paper's position is that software maps locks to this
// hardware resource conservatively so this never happens; surfacing it as an
// error lets tests and experiments probe the boundary.
var ErrLockCacheFull = fmt.Errorf("cache: lock cache full")

// Allocate returns a fresh line for block b. Because every valid lock line
// is by definition participating in a queue (or holding a lock), no eviction
// is possible: Allocate returns ErrLockCacheFull when all entries are live.
func (lc *LockCache) Allocate(b mem.Block) (*Line, error) {
	var pick *Line
	for i := range lc.lines {
		if lc.lines[i].Valid {
			if lc.lines[i].Block == b {
				panic(fmt.Sprintf("cache: lock-cache Allocate of live block %d", b))
			}
			continue
		}
		if pick == nil {
			pick = &lc.lines[i]
		}
	}
	if pick == nil {
		return nil, ErrLockCacheFull
	}
	lc.tick++
	data := pick.Data
	for i := range data {
		data[i] = 0
	}
	*pick = Line{Block: b, Valid: true, Data: data, Prev: NoNode, Next: NoNode, lru: lc.tick}
	return pick, nil
}

// Release frees the entry for block b (after the lock is fully released and
// any dirty words written back). Releasing an absent block is a no-op.
func (lc *LockCache) Release(b mem.Block) {
	for i := range lc.lines {
		if lc.lines[i].Valid && lc.lines[i].Block == b {
			lc.lines[i].Valid = false
			lc.lines[i].Dirty = 0
			lc.lines[i].Mode = msg.LockNone
			lc.lines[i].Held = false
			lc.lines[i].ResetPointers()
			return
		}
	}
}
