package cache

import (
	"testing"
	"testing/quick"

	"ssmp/internal/mem"
	"ssmp/internal/msg"
)

var g = mem.Geometry{BlockWords: 4, Nodes: 8}

func TestNewValidation(t *testing.T) {
	for _, bad := range []func(){
		func() { New(g, 3, 2) },
		func() { New(g, 0, 2) },
		func() { New(g, 4, 0) },
		func() { NewLockCache(g, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid construction did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := New(g, 4, 2)
	if c.Lookup(5) != nil {
		t.Fatal("lookup of empty cache hit")
	}
	l, _, ev := c.Allocate(5)
	if ev {
		t.Fatal("allocation in empty cache evicted")
	}
	l.Data[1] = 42
	got := c.Lookup(5)
	if got == nil || got.Data[1] != 42 {
		t.Fatal("lookup after allocate missed or lost data")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit 1 miss", st)
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	c := New(g, 4, 2)
	c.Allocate(5)
	c.Peek(5)
	c.Peek(6)
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("Peek affected stats: %+v", st)
	}
}

func TestAllocateSameBlockPanics(t *testing.T) {
	c := New(g, 4, 2)
	c.Allocate(5)
	defer func() {
		if recover() == nil {
			t.Error("double allocate did not panic")
		}
	}()
	c.Allocate(5)
}

func TestLRUEviction(t *testing.T) {
	c := New(g, 1, 2) // one set, two ways
	c.Allocate(10)
	c.Allocate(20)
	c.Lookup(10) // 10 is now MRU; 20 is LRU
	_, v, ev := c.Allocate(30)
	if !ev || v.Block != 20 {
		t.Fatalf("evicted %v (ev=%v), want block 20", v.Block, ev)
	}
	if c.Peek(10) == nil || c.Peek(30) == nil || c.Peek(20) != nil {
		t.Fatal("cache contents wrong after eviction")
	}
}

func TestEvictionReportsDirtyAndUpdate(t *testing.T) {
	c := New(g, 1, 1)
	l, _, _ := c.Allocate(7)
	l.Data[2] = 99
	l.Dirty.Set(2)
	l.Update = true
	_, v, ev := c.Allocate(8)
	if !ev {
		t.Fatal("no eviction")
	}
	if !v.Dirty.Has(2) || v.Data[2] != 99 || !v.Update {
		t.Fatalf("victim = %+v, want dirty word 2 = 99 and update bit", v)
	}
	st := c.Stats()
	if st.Evictions != 1 || st.DirtyEvictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVictimDataIsACopy(t *testing.T) {
	c := New(g, 1, 1)
	l, _, _ := c.Allocate(7)
	l.Data[0] = 1
	nl, v, _ := c.Allocate(8)
	nl.Data[0] = 777
	if v.Data[0] != 1 {
		t.Fatal("victim data aliases the reused line")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(g, 4, 2)
	l, _, _ := c.Allocate(5)
	l.Dirty.Set(0)
	l.Data[0] = 11
	v, ok := c.Invalidate(5)
	if !ok || v.Data[0] != 11 || !v.Dirty.Has(0) {
		t.Fatalf("Invalidate = %+v %v", v, ok)
	}
	if c.Peek(5) != nil {
		t.Fatal("block still present after invalidate")
	}
	if _, ok := c.Invalidate(5); ok {
		t.Fatal("second invalidate reported present")
	}
}

func TestInvalidateClearsLockState(t *testing.T) {
	c := New(g, 4, 2)
	l, _, _ := c.Allocate(5)
	l.Mode = msg.LockWrite
	l.Held = true
	l.Next = 3
	c.Invalidate(5)
	l2, _, _ := c.Allocate(5)
	if l2.Mode != msg.LockNone || l2.Held || l2.Next != NoNode {
		t.Fatal("stale lock state after invalidate+reallocate")
	}
}

func TestAllocatedLineZeroFilled(t *testing.T) {
	c := New(g, 1, 1)
	l, _, _ := c.Allocate(1)
	l.Data[3] = 5
	c.Allocate(2) // evicts and reuses the line's backing array
	l2 := c.Peek(2)
	for i, w := range l2.Data {
		if w != 0 {
			t.Fatalf("reused line word %d = %d, want 0", i, w)
		}
	}
}

func TestForEach(t *testing.T) {
	c := New(g, 4, 2)
	c.Allocate(1)
	c.Allocate(2)
	c.Allocate(3)
	c.Invalidate(2)
	seen := map[mem.Block]bool{}
	c.ForEach(func(l *Line) { seen[l.Block] = true })
	if len(seen) != 2 || !seen[1] || !seen[3] {
		t.Fatalf("ForEach visited %v", seen)
	}
}

func TestSetsAreIndependent(t *testing.T) {
	c := New(g, 4, 1)
	// Blocks 0..3 map to distinct sets; filling one set must not evict
	// blocks in another.
	for b := mem.Block(0); b < 4; b++ {
		if _, _, ev := c.Allocate(b); ev {
			t.Fatalf("allocating block %d evicted", b)
		}
	}
	// Block 4 maps to set 0 and must evict exactly block 0.
	_, v, ev := c.Allocate(4)
	if !ev || v.Block != 0 {
		t.Fatalf("evicted %v, want block 0", v.Block)
	}
}

// Property: a cache never holds two lines for the same block, and never
// holds more lines than its capacity.
func TestQuickCacheInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(g, 4, 2)
		for _, op := range ops {
			b := mem.Block(op % 32)
			switch (op >> 8) % 3 {
			case 0:
				if c.Lookup(b) == nil {
					c.Allocate(b)
				}
			case 1:
				c.Lookup(b)
			case 2:
				c.Invalidate(b)
			}
			seen := map[mem.Block]int{}
			count := 0
			c.ForEach(func(l *Line) { seen[l.Block]++; count++ })
			if count > c.Capacity() {
				return false
			}
			for _, n := range seen {
				if n > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLockCacheAllocateAndRelease(t *testing.T) {
	lc := NewLockCache(g, 2)
	a, err := lc.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	a.Mode = msg.LockWrite
	if _, err := lc.Allocate(2); err != nil {
		t.Fatal(err)
	}
	if lc.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", lc.InUse())
	}
	if _, err := lc.Allocate(3); err != ErrLockCacheFull {
		t.Fatalf("Allocate on full = %v, want ErrLockCacheFull", err)
	}
	lc.Release(1)
	if lc.InUse() != 1 {
		t.Fatalf("InUse after release = %d", lc.InUse())
	}
	if _, err := lc.Allocate(3); err != nil {
		t.Fatalf("Allocate after release = %v", err)
	}
}

func TestLockCacheLookup(t *testing.T) {
	lc := NewLockCache(g, 4)
	l, _ := lc.Allocate(9)
	l.Data[0] = 5
	got := lc.Lookup(9)
	if got == nil || got.Data[0] != 5 {
		t.Fatal("lock cache lookup failed")
	}
	if lc.Lookup(10) != nil {
		t.Fatal("lookup of absent lock hit")
	}
}

func TestLockCacheReleaseAbsentIsNoop(t *testing.T) {
	lc := NewLockCache(g, 2)
	lc.Release(42) // must not panic
	if lc.InUse() != 0 {
		t.Fatal("release of absent block changed occupancy")
	}
}

func TestLockCacheDoubleAllocatePanics(t *testing.T) {
	lc := NewLockCache(g, 2)
	lc.Allocate(1)
	defer func() {
		if recover() == nil {
			t.Error("double lock-cache allocate did not panic")
		}
	}()
	lc.Allocate(1)
}

func TestLockCacheReleaseClearsState(t *testing.T) {
	lc := NewLockCache(g, 1)
	l, _ := lc.Allocate(1)
	l.Mode = msg.LockRead
	l.Held = true
	l.Next = 5
	l.Dirty.Set(1)
	lc.Release(1)
	l2, err := lc.Allocate(1)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Mode != msg.LockNone || l2.Held || l2.Next != NoNode || l2.Dirty.Any() {
		t.Fatalf("stale state after release: %+v", l2)
	}
}

func TestAccessors(t *testing.T) {
	c := New(g, 4, 2)
	if c.Sets() != 4 || c.Ways() != 2 || c.Capacity() != 8 {
		t.Fatal("geometry accessors wrong")
	}
	lc := NewLockCache(g, 3)
	lc.Lookup(1) // miss
	if lc.Stats().Misses != 1 {
		t.Fatal("lock cache stats wrong")
	}
}
