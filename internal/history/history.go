// Package history records per-processor memory operations with their
// real-time intervals and checks each address's history for
// linearizability — the formal version of the coherence guarantee the WBI
// machine makes and the buffered-consistency machine deliberately does not
// (§2 of the paper).
//
// The checker treats each address as an atomic read/write register. An
// operation occupies the interval [Start, End] of simulated time; a history
// is linearizable if every operation can be assigned a linearization point
// inside its interval such that the resulting sequence is a legal register
// history (every read returns the most recently written value).
//
// The implementation is the classic Wing & Gong backtracking search over
// minimal operations, adequate for the test-sized histories the machine
// produces. Histories of distinct addresses are checked independently
// (coherence is a per-location property).
package history

import (
	"fmt"
	"sort"

	"ssmp/internal/mem"
	"ssmp/internal/sim"
)

// Op is one recorded memory operation.
type Op struct {
	// Proc is the issuing processor.
	Proc int
	// Write marks a write (or the write half of an RMW).
	Write bool
	// RMW marks an atomic read-modify-write; Value is the value written,
	// Prev the value read.
	RMW bool
	// Addr is the word address.
	Addr mem.Addr
	// Value is the value written (writes) or returned (reads).
	Value mem.Word
	// Prev is the value an RMW observed.
	Prev mem.Word
	// Start and End bound the operation in simulated time.
	Start, End sim.Time
}

func (o Op) String() string {
	switch {
	case o.RMW:
		return fmt.Sprintf("P%d RMW a%d %d->%d [%d,%d]", o.Proc, o.Addr, o.Prev, o.Value, o.Start, o.End)
	case o.Write:
		return fmt.Sprintf("P%d W a%d=%d [%d,%d]", o.Proc, o.Addr, o.Value, o.Start, o.End)
	default:
		return fmt.Sprintf("P%d R a%d=%d [%d,%d]", o.Proc, o.Addr, o.Value, o.Start, o.End)
	}
}

// Recorder accumulates operations. It is single-threaded like the
// simulation itself.
type Recorder struct {
	ops []Op
}

// Record appends one operation.
func (r *Recorder) Record(op Op) { r.ops = append(r.ops, op) }

// Ops returns the recorded operations.
func (r *Recorder) Ops() []Op { return r.ops }

// Len returns the number of recorded operations.
func (r *Recorder) Len() int { return len(r.ops) }

// CheckLinearizable verifies every address's history independently,
// assuming the addressed words start at initial value 0. It returns nil if
// all histories are linearizable, or an error naming the first address that
// is not.
func (r *Recorder) CheckLinearizable() error {
	byAddr := map[mem.Addr][]Op{}
	for _, op := range r.ops {
		byAddr[op.Addr] = append(byAddr[op.Addr], op)
	}
	addrs := make([]mem.Addr, 0, len(byAddr))
	for a := range byAddr {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		if !linearizable(byAddr[a]) {
			return fmt.Errorf("history: address %d not linearizable (%d ops)", a, len(byAddr[a]))
		}
	}
	return nil
}

// linearizable runs the Wing-Gong search on one address's history.
func linearizable(ops []Op) bool {
	// Sort by start time for a stable exploration order.
	ops = append([]Op(nil), ops...)
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Start != ops[j].Start {
			return ops[i].Start < ops[j].Start
		}
		return ops[i].End < ops[j].End
	})
	done := make([]bool, len(ops))
	memo := make(map[string]bool)
	return search(ops, done, 0, len(ops), memo)
}

// key encodes (done set, current value) for memoization.
func stateKey(done []bool, val mem.Word) string {
	b := make([]byte, 0, len(done)+9)
	for _, d := range done {
		if d {
			b = append(b, '1')
		} else {
			b = append(b, '0')
		}
	}
	b = append(b, '|')
	for i := 0; i < 8; i++ {
		b = append(b, byte(val>>(8*i)))
	}
	return string(b)
}

// search tries to linearize the remaining operations given the register
// currently holds val. An operation is "minimal" (eligible to linearize
// next) if no other pending operation ended before it started.
func search(ops []Op, done []bool, val mem.Word, remaining int, memo map[string]bool) bool {
	if remaining == 0 {
		return true
	}
	k := stateKey(done, val)
	if v, ok := memo[k]; ok {
		return v
	}
	// The earliest end among pending ops bounds minimality: a pending op
	// is minimal iff its Start <= that minimum End.
	minEnd := sim.Infinity
	for i, op := range ops {
		if !done[i] && op.End < minEnd {
			minEnd = op.End
		}
	}
	ok := false
	for i, op := range ops {
		if done[i] || op.Start > minEnd {
			continue
		}
		// Try linearizing op next.
		var next mem.Word
		legal := false
		switch {
		case op.RMW:
			if op.Prev == val {
				next, legal = op.Value, true
			}
		case op.Write:
			next, legal = op.Value, true
		default: // read
			if op.Value == val {
				next, legal = val, true
			}
		}
		if !legal {
			continue
		}
		done[i] = true
		if search(ops, done, next, remaining-1, memo) {
			done[i] = false
			ok = true
			break
		}
		done[i] = false
	}
	memo[k] = ok
	return ok
}
