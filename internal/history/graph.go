package history

// Bridge to the axiomatic checker: a recorded history converts into a
// bccheck execution graph, so the linearizability checker and the
// buffered-consistency checker share event plumbing (and a violating run
// can be rendered the same way in both worlds).

import (
	"ssmp/internal/bccheck"
	"ssmp/internal/sim"
)

// Graph converts the recorded history into a bccheck execution graph.
// blockWords is the machine's block size, splitting each word address into
// bccheck's (block, word) locations. Plain reads and writes map to
// OpRead/OpWrite; RMWs keep their read/write halves in one event. An
// operation whose End is sim.Infinity never completed and is marked
// Pending.
func (r *Recorder) Graph(blockWords int) *bccheck.Graph {
	return GraphOps(r.ops, blockWords)
}

// GraphOps is Graph for a raw operation slice.
func GraphOps(ops []Op, blockWords int) *bccheck.Graph {
	if blockWords < 1 {
		blockWords = 1
	}
	g := &bccheck.Graph{Events: make([]bccheck.GEvent, 0, len(ops))}
	for _, op := range ops {
		ev := bccheck.GEvent{
			Proc: op.Proc,
			Loc: bccheck.Loc{
				Block: int(uint64(op.Addr) / uint64(blockWords)),
				Word:  int(uint64(op.Addr) % uint64(blockWords)),
			},
			Value: uint64(op.Value),
			Prev:  uint64(op.Prev),
			RMW:   op.RMW,
			Start: uint64(op.Start),
			End:   uint64(op.End),
		}
		switch {
		case op.RMW:
			ev.Op = bccheck.OpWrite
		case op.Write:
			ev.Op = bccheck.OpWrite
		default:
			ev.Op = bccheck.OpRead
		}
		if op.End == sim.Infinity {
			ev.Pending = true
		}
		g.Events = append(g.Events, ev)
	}
	return g
}
