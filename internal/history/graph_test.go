package history

import (
	"strings"
	"testing"

	"ssmp/internal/bccheck"
	"ssmp/internal/sim"
)

func TestSinglePendingOpLinearizable(t *testing.T) {
	// An operation that never completed (End = ∞) overlaps everything after
	// its start; a lone pending write is trivially linearizable.
	check(t, []Op{{Proc: 0, Write: true, Addr: 1, Value: 5, Start: 10, End: sim.Infinity}}, true)
	// A pending write can explain a later read of its value...
	check(t, []Op{
		{Proc: 0, Write: true, Addr: 1, Value: 5, Start: 10, End: sim.Infinity},
		rd(1, 1, 5, 100, 110),
	}, true)
	// ...but not a read of a value never written.
	check(t, []Op{
		{Proc: 0, Write: true, Addr: 1, Value: 5, Start: 10, End: sim.Infinity},
		rd(1, 1, 9, 100, 110),
	}, false)
}

func TestOverlappingSameValueWrites(t *testing.T) {
	// Two overlapping writes of the same value: any order works, and reads
	// of that value are legal during and after.
	check(t, []Op{
		w(0, 1, 5, 0, 20),
		w(1, 1, 5, 10, 30),
		rd(0, 1, 5, 15, 25),
		rd(1, 1, 5, 40, 50),
	}, true)
	// A stale zero after both completed is still a violation.
	check(t, []Op{
		w(0, 1, 5, 0, 20),
		w(1, 1, 5, 10, 30),
		rd(0, 1, 0, 40, 50),
	}, false)
}

func TestGraphConversion(t *testing.T) {
	r := &Recorder{}
	r.Record(w(0, 5, 7, 0, 10))                                                      // block 1 word 1 at blockWords=4
	r.Record(rd(1, 5, 7, 20, 30))                                                    //
	r.Record(rmw(1, 6, 0, 1, 40, 50))                                                //
	r.Record(Op{Proc: 0, Write: true, Addr: 5, Value: 9, Start: 60, End: sim.Infinity}) // pending

	g := r.Graph(4)
	if len(g.Events) != 4 {
		t.Fatalf("want 4 events, got %d", len(g.Events))
	}
	if g.Events[0].Loc != (bccheck.Loc{Block: 1, Word: 1}) {
		t.Errorf("addr 5 with blockWords 4: loc %+v", g.Events[0].Loc)
	}
	if !g.Events[3].Pending {
		t.Error("End=Infinity op not marked pending")
	}
	rf := g.RF()
	if rf[1] != 0 {
		t.Errorf("read should read-from event 0, got %d", rf[1])
	}
	if rf[2] != -1 {
		t.Errorf("RMW of initial 0 should read-from initial, got %d", rf[2])
	}
	s := g.String()
	if !strings.Contains(s, "∞") {
		t.Errorf("pending op should render ∞:\n%s", s)
	}
}
