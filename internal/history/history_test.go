package history

import (
	"testing"

	"ssmp/internal/mem"
	"ssmp/internal/sim"
)

func w(proc int, a mem.Addr, v mem.Word, s, e uint64) Op {
	return Op{Proc: proc, Write: true, Addr: a, Value: v, Start: sim.Time(s), End: sim.Time(e)}
}

func rd(proc int, a mem.Addr, v mem.Word, s, e uint64) Op {
	return Op{Proc: proc, Addr: a, Value: v, Start: sim.Time(s), End: sim.Time(e)}
}

func rmw(proc int, a mem.Addr, prev, v mem.Word, s, e uint64) Op {
	return Op{Proc: proc, Write: true, RMW: true, Addr: a, Prev: prev, Value: v, Start: sim.Time(s), End: sim.Time(e)}
}

func check(t *testing.T, ops []Op, want bool) {
	t.Helper()
	r := &Recorder{}
	for _, op := range ops {
		r.Record(op)
	}
	err := r.CheckLinearizable()
	if want && err != nil {
		t.Fatalf("expected linearizable, got %v", err)
	}
	if !want && err == nil {
		t.Fatal("expected violation, got linearizable")
	}
}

func TestSequentialHistoryLinearizable(t *testing.T) {
	check(t, []Op{
		w(0, 1, 5, 0, 10),
		rd(1, 1, 5, 20, 30),
		w(1, 1, 7, 40, 50),
		rd(0, 1, 7, 60, 70),
	}, true)
}

func TestInitialZeroRead(t *testing.T) {
	check(t, []Op{rd(0, 1, 0, 0, 5)}, true)
	check(t, []Op{rd(0, 1, 3, 0, 5)}, false)
}

func TestStaleReadViolates(t *testing.T) {
	// The write completed strictly before the read started, yet the read
	// returned the old value.
	check(t, []Op{
		w(0, 1, 5, 0, 10),
		rd(1, 1, 0, 20, 30),
	}, false)
}

func TestConcurrentOverlapAllowsEitherOrder(t *testing.T) {
	// The read overlaps the write: either value is legal.
	check(t, []Op{
		w(0, 1, 5, 10, 30),
		rd(1, 1, 0, 5, 20),
	}, true)
	check(t, []Op{
		w(0, 1, 5, 10, 30),
		rd(1, 1, 5, 5, 35),
	}, true)
}

func TestLostUpdateViolates(t *testing.T) {
	// Two sequential RMW increments must both take effect.
	check(t, []Op{
		rmw(0, 1, 0, 1, 0, 10),
		rmw(1, 1, 0, 1, 20, 30), // claims to have seen 0 after the first completed
	}, false)
	check(t, []Op{
		rmw(0, 1, 0, 1, 0, 10),
		rmw(1, 1, 1, 2, 20, 30),
	}, true)
}

func TestConcurrentRMWsSerialize(t *testing.T) {
	// Overlapping RMWs: some order must explain both.
	check(t, []Op{
		rmw(0, 1, 0, 1, 0, 30),
		rmw(1, 1, 1, 2, 5, 25),
	}, true)
	// Both claiming to have seen 0 cannot serialize.
	check(t, []Op{
		rmw(0, 1, 0, 1, 0, 30),
		rmw(1, 1, 0, 1, 5, 25),
	}, false)
}

func TestAddressesIndependent(t *testing.T) {
	// A violation on one address is reported even when another is fine.
	check(t, []Op{
		w(0, 1, 5, 0, 10),
		rd(1, 1, 5, 20, 30),
		w(0, 2, 9, 0, 10),
		rd(1, 2, 0, 20, 30), // stale on address 2
	}, false)
}

func TestWriteOrderAmbiguityResolvedByRead(t *testing.T) {
	// Two overlapping writes then a read: the read pins the winner.
	check(t, []Op{
		w(0, 1, 5, 0, 20),
		w(1, 1, 7, 10, 30),
		rd(0, 1, 5, 40, 50), // 5 won: 7 must have linearized first
	}, true)
	check(t, []Op{
		w(0, 1, 5, 0, 20),
		w(1, 1, 7, 10, 30),
		rd(0, 1, 7, 40, 50),
	}, true)
	check(t, []Op{
		w(0, 1, 5, 0, 20),
		w(1, 1, 7, 10, 30),
		rd(0, 1, 9, 40, 50), // value never written
	}, false)
}

func TestEmptyHistory(t *testing.T) {
	r := &Recorder{}
	if err := r.CheckLinearizable(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatal("empty recorder has ops")
	}
}

func TestOpString(t *testing.T) {
	if s := w(0, 1, 5, 0, 10).String(); s == "" {
		t.Fatal("empty write string")
	}
	if s := rd(0, 1, 5, 0, 10).String(); s == "" {
		t.Fatal("empty read string")
	}
	if s := rmw(0, 1, 0, 1, 0, 10).String(); s == "" {
		t.Fatal("empty rmw string")
	}
}

func TestRecorderOps(t *testing.T) {
	r := &Recorder{}
	r.Record(w(0, 1, 5, 0, 10))
	if len(r.Ops()) != 1 || !r.Ops()[0].Write {
		t.Fatal("Ops accessor wrong")
	}
}
