package wbuf

import (
	"testing"
	"testing/quick"

	"ssmp/internal/mem"
	"ssmp/internal/sim"
)

func TestImmediateIssue(t *testing.T) {
	e := sim.NewEngine()
	var sent []Entry
	b := New(e, Options{}, func(en Entry) { sent = append(sent, en) })
	if !b.Add(3, 1, 42) {
		t.Fatal("Add on unbounded buffer returned false")
	}
	if len(sent) != 1 || sent[0].Block != 3 || sent[0].WordIdx != 1 || sent[0].Word != 42 {
		t.Fatalf("sent = %+v", sent)
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (in flight)", b.Len())
	}
	b.Ack(sent[0].Seq)
	if !b.Empty() {
		t.Fatal("buffer not empty after ack")
	}
}

func TestFlushWaitsForAllAcks(t *testing.T) {
	e := sim.NewEngine()
	var sent []Entry
	b := New(e, Options{}, func(en Entry) { sent = append(sent, en) })
	b.Add(1, 0, 1)
	b.Add(2, 0, 2)
	b.Add(3, 0, 3)
	flushed := false
	b.OnEmpty(func() { flushed = true })
	if flushed {
		t.Fatal("flush completed with writes outstanding")
	}
	b.Ack(sent[0].Seq)
	b.Ack(sent[1].Seq)
	if flushed {
		t.Fatal("flush completed with one write outstanding")
	}
	b.Ack(sent[2].Seq)
	if !flushed {
		t.Fatal("flush did not complete after final ack")
	}
}

func TestFlushOnEmptyBufferIsImmediate(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, Options{}, func(Entry) {})
	done := false
	b.OnEmpty(func() { done = true })
	if !done {
		t.Fatal("OnEmpty on empty buffer did not fire immediately")
	}
	if b.Stats().Flushes != 1 {
		t.Fatalf("Flushes = %d, want 1", b.Stats().Flushes)
	}
}

func TestBoundedBufferStalls(t *testing.T) {
	e := sim.NewEngine()
	var sent []Entry
	b := New(e, Options{Capacity: 2}, func(en Entry) { sent = append(sent, en) })
	if !b.Add(1, 0, 1) || !b.Add(2, 0, 2) {
		t.Fatal("adds under capacity failed")
	}
	if b.Add(3, 0, 3) {
		t.Fatal("Add on full buffer succeeded")
	}
	var resumed bool
	b.OnSpace(func() { resumed = true })
	if resumed {
		t.Fatal("OnSpace fired while full")
	}
	b.Ack(sent[0].Seq)
	if !resumed {
		t.Fatal("OnSpace did not fire after ack")
	}
	if !b.Add(3, 0, 3) {
		t.Fatal("Add after space freed failed")
	}
}

func TestOnSpaceImmediateWhenNotFull(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, Options{Capacity: 2}, func(Entry) {})
	fired := false
	b.OnSpace(func() { fired = true })
	if !fired {
		t.Fatal("OnSpace on non-full buffer did not fire immediately")
	}
}

func TestIssueDelayPacesIssues(t *testing.T) {
	e := sim.NewEngine()
	var times []sim.Time
	b := New(e, Options{IssueDelay: 10}, func(Entry) { times = append(times, e.Now()) })
	b.Add(1, 0, 1)
	b.Add(2, 0, 2)
	b.Add(3, 0, 3)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []sim.Time{0, 10, 20}
	if len(times) != 3 {
		t.Fatalf("issued %d, want 3", len(times))
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("issue times %v, want %v", times, want)
		}
	}
}

func TestCoalesceMergesQueuedWrites(t *testing.T) {
	e := sim.NewEngine()
	var sent []Entry
	b := New(e, Options{IssueDelay: 10, Coalesce: true}, func(en Entry) { sent = append(sent, en) })
	b.Add(1, 0, 100) // issues immediately
	b.Add(2, 1, 200) // queued (issue slot at t=10)
	b.Add(2, 1, 201) // coalesces with queued entry
	b.Add(2, 2, 300) // different word: no coalesce
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sent) != 3 {
		t.Fatalf("sent %d entries, want 3", len(sent))
	}
	if sent[1].Word != 201 {
		t.Fatalf("coalesced value = %d, want 201", sent[1].Word)
	}
	if b.Stats().Coalesced != 1 {
		t.Fatalf("Coalesced = %d, want 1", b.Stats().Coalesced)
	}
}

func TestCoalesceDoesNotMergeInflight(t *testing.T) {
	e := sim.NewEngine()
	var sent []Entry
	b := New(e, Options{Coalesce: true}, func(en Entry) { sent = append(sent, en) })
	b.Add(1, 0, 100) // issued immediately: in flight, not coalescible
	b.Add(1, 0, 101)
	if len(sent) != 2 {
		t.Fatalf("sent %d entries, want 2 (in-flight writes must not coalesce)", len(sent))
	}
}

func TestAckUnknownPanics(t *testing.T) {
	e := sim.NewEngine()
	b := New(e, Options{}, func(Entry) {})
	defer func() {
		if recover() == nil {
			t.Error("Ack with nothing in flight did not panic")
		}
	}()
	b.Ack(7)
}

func TestNilSendPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil send did not panic")
		}
	}()
	New(sim.NewEngine(), Options{}, nil)
}

func TestMaxDepth(t *testing.T) {
	e := sim.NewEngine()
	var sent []Entry
	b := New(e, Options{}, func(en Entry) { sent = append(sent, en) })
	for i := 0; i < 5; i++ {
		b.Add(mem.Block(i), 0, 0)
	}
	for _, en := range sent {
		b.Ack(en.Seq)
	}
	if b.Stats().MaxDepth != 5 {
		t.Fatalf("MaxDepth = %d, want 5", b.Stats().MaxDepth)
	}
}

// Property: every added write is eventually issued exactly once (without
// coalescing), and after acking all issues the buffer is empty and all
// flush waiters have fired.
func TestQuickConservation(t *testing.T) {
	f := func(writes []uint16, delay uint8) bool {
		e := sim.NewEngine()
		var sent []Entry
		b := New(e, Options{IssueDelay: sim.Time(delay % 5)}, func(en Entry) { sent = append(sent, en) })
		for _, w := range writes {
			if !b.Add(mem.Block(w%7), int(w%4), mem.Word(w)) {
				return false
			}
		}
		flushed := false
		b.OnEmpty(func() { flushed = true })
		if err := e.Run(); err != nil {
			return false
		}
		if len(sent) != len(writes) {
			return false
		}
		for _, en := range sent {
			b.Ack(en.Seq)
		}
		return b.Empty() && flushed
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with a bounded buffer, Len never exceeds capacity.
func TestQuickCapacityRespected(t *testing.T) {
	f := func(ops []uint8) bool {
		e := sim.NewEngine()
		var sent []Entry
		b := New(e, Options{Capacity: 3}, func(en Entry) { sent = append(sent, en) })
		for _, op := range ops {
			if op%2 == 0 {
				b.Add(mem.Block(op), 0, 0)
			} else if len(sent) > 0 && b.Len() > 0 {
				b.Ack(sent[0].Seq)
				sent = sent[1:]
			}
			if b.Len() > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
