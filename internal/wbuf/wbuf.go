// Package wbuf models the per-node write buffer of the paper's architecture
// (§4.2). WRITE-GLOBAL requests are buffered here immediately so the
// processor never stalls on the network; the buffer issues them as the
// interconnect allows, retires entries as acknowledgments arrive from main
// memory, and implements FLUSH-BUFFER by notifying a waiter once every
// buffered write has been globally performed.
//
// The number of outstanding entries implicitly implements the pending-
// operation counter of Adve and Hill that the paper cites (§3 issue 2).
//
// The paper's simulations assume an infinite buffer; a finite capacity and a
// bounded issue rate are available as ablation knobs (a finite buffer stalls
// Add; a nonzero issue delay opens a window in which writes to the same word
// can coalesce).
package wbuf

import (
	"fmt"

	"ssmp/internal/mem"
	"ssmp/internal/sim"
)

// Entry is one buffered global write.
type Entry struct {
	// Seq matches the write to its acknowledgment.
	Seq uint64
	// Block and WordIdx locate the written word.
	Block   mem.Block
	WordIdx int
	// Word is the value written.
	Word mem.Word
}

// Options configures a Buffer.
type Options struct {
	// Capacity bounds the number of entries (queued + in flight);
	// 0 means unbounded (the paper's assumption).
	Capacity int
	// IssueDelay is the minimum spacing, in cycles, between issues to the
	// network; 0 issues immediately on Add.
	IssueDelay sim.Time
	// Coalesce merges a new write with a queued (not yet issued) write to
	// the same word instead of enqueueing a second entry.
	Coalesce bool
}

// Stats counts buffer activity.
type Stats struct {
	Enqueued  uint64
	Issued    uint64
	Acked     uint64
	Coalesced uint64
	Flushes   uint64
	// MaxDepth is the high-water mark of outstanding entries.
	MaxDepth int
}

// Buffer is the write buffer. It is driven entirely from the simulation
// event loop and is not safe for concurrent use.
type Buffer struct {
	eng      *sim.Engine
	opts     Options
	send     func(Entry)
	queued   []Entry
	inflight int
	pumpSet  bool
	nextSlot sim.Time
	seq      uint64
	empty    []func()
	space    []func()
	stats    Stats
}

// New builds a buffer. send is invoked (from the event loop) each time an
// entry is issued to the network; the owner must later call Ack with the
// entry's Seq when the memory acknowledgment arrives.
func New(eng *sim.Engine, opts Options, send func(Entry)) *Buffer {
	if send == nil {
		panic("wbuf: nil send")
	}
	if opts.Capacity < 0 {
		panic(fmt.Sprintf("wbuf: negative capacity %d", opts.Capacity))
	}
	return &Buffer{eng: eng, opts: opts, send: send}
}

// Len returns the number of outstanding entries (queued plus unacked).
func (b *Buffer) Len() int { return len(b.queued) + b.inflight }

// Empty reports whether every buffered write has been globally performed.
func (b *Buffer) Empty() bool { return b.Len() == 0 }

// Stats returns a snapshot of the counters.
func (b *Buffer) Stats() Stats { return b.stats }

// Full reports whether a bounded buffer has no room for another entry.
func (b *Buffer) Full() bool {
	return b.opts.Capacity > 0 && b.Len() >= b.opts.Capacity
}

// Add buffers a global write. It reports false when a bounded buffer is
// full, in which case the caller should register an OnSpace waiter and
// retry. On success the write will be issued to the network, immediately or
// as the issue rate allows.
func (b *Buffer) Add(block mem.Block, wordIdx int, w mem.Word) bool {
	if b.Full() {
		return false
	}
	if b.opts.Coalesce {
		for i := range b.queued {
			if b.queued[i].Block == block && b.queued[i].WordIdx == wordIdx {
				b.queued[i].Word = w
				b.stats.Coalesced++
				return true
			}
		}
	}
	b.seq++
	b.queued = append(b.queued, Entry{Seq: b.seq, Block: block, WordIdx: wordIdx, Word: w})
	b.stats.Enqueued++
	if d := b.Len(); d > b.stats.MaxDepth {
		b.stats.MaxDepth = d
	}
	b.pump()
	return true
}

// pump issues queued entries honoring the issue delay.
func (b *Buffer) pump() {
	if b.pumpSet || len(b.queued) == 0 {
		return
	}
	now := b.eng.Now()
	if b.opts.IssueDelay == 0 || b.nextSlot <= now {
		b.issueHead()
		return
	}
	b.pumpSet = true
	b.eng.At(b.nextSlot, func() {
		b.pumpSet = false
		if len(b.queued) > 0 {
			b.issueHead()
		}
	})
}

func (b *Buffer) issueHead() {
	e := b.queued[0]
	b.queued = b.queued[1:]
	b.inflight++
	b.stats.Issued++
	b.nextSlot = b.eng.Now() + b.opts.IssueDelay
	b.send(e)
	b.pump()
}

// Ack retires an issued entry. Acking with an unknown sequence panics: it is
// a protocol bug.
func (b *Buffer) Ack(seq uint64) {
	if b.inflight == 0 {
		panic(fmt.Sprintf("wbuf: Ack(%d) with nothing in flight", seq))
	}
	b.inflight--
	b.stats.Acked++
	if b.Empty() {
		waiters := b.empty
		b.empty = nil
		for _, fn := range waiters {
			fn()
		}
	}
	if !b.Full() && len(b.space) > 0 {
		waiters := b.space
		b.space = nil
		for _, fn := range waiters {
			fn()
		}
	}
}

// OnEmpty invokes fn once the buffer is empty — immediately if it already
// is. This is the FLUSH-BUFFER primitive's wait condition.
func (b *Buffer) OnEmpty(fn func()) {
	b.stats.Flushes++
	if b.Empty() {
		fn()
		return
	}
	b.empty = append(b.empty, fn)
}

// OnSpace invokes fn once the buffer has room — immediately if it already
// does. Only meaningful for bounded buffers.
func (b *Buffer) OnSpace(fn func()) {
	if !b.Full() {
		fn()
		return
	}
	b.space = append(b.space, fn)
}
