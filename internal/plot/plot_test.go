package plot

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"ssmp/internal/metrics"
)

func series(name string, pts ...float64) *metrics.Series {
	s := &metrics.Series{Name: name}
	for i := 0; i+1 < len(pts); i += 2 {
		s.Add(pts[i], pts[i+1])
	}
	return s
}

func TestSVGBasicStructure(t *testing.T) {
	out := SVG(Options{Title: "Figure 4", XLabel: "procs", YLabel: "cycles"},
		[]*metrics.Series{
			series("CBL", 2, 100, 4, 180, 8, 300),
			series("WBI", 2, 120, 4, 400, 8, 1600),
		})
	for _, want := range []string{"<svg", "</svg>", "Figure 4", "CBL", "WBI", "polyline", "procs", "cycles"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Fatalf("polylines = %d, want 2", got)
	}
	if got := strings.Count(out, "<circle"); got != 6 {
		t.Fatalf("markers = %d, want 6", got)
	}
}

func TestSVGEscapesMarkup(t *testing.T) {
	out := SVG(Options{Title: "a<b & c>d"}, []*metrics.Series{series("s<1>", 1, 1)})
	if strings.Contains(out, "a<b") || strings.Contains(out, "s<1>") {
		t.Fatal("markup not escaped")
	}
	if !strings.Contains(out, "a&lt;b &amp; c&gt;d") {
		t.Fatal("escaped title missing")
	}
}

func TestSVGEmptySeries(t *testing.T) {
	out := SVG(Options{Title: "empty"}, nil)
	if !strings.Contains(out, "<svg") || !strings.Contains(out, "</svg>") {
		t.Fatal("empty chart did not render axes")
	}
}

func TestLogScaleFallsBackOnNonPositive(t *testing.T) {
	out := SVG(Options{LogY: true}, []*metrics.Series{series("s", 1, 0, 2, 5)})
	if !strings.Contains(out, "<polyline") {
		t.Fatal("chart with zero value failed under requested log scale")
	}
}

func TestScalePosMonotonic(t *testing.T) {
	for _, log := range []bool{false, true} {
		s := scale{min: 1, max: 1000, log: log, lo: 0, hi: 100}
		prev := math.Inf(-1)
		for _, v := range []float64{1, 3, 10, 100, 999} {
			p := s.pos(v)
			if p <= prev {
				t.Fatalf("log=%v: pos not monotonic at %v", log, v)
			}
			prev = p
		}
	}
}

func TestTicksCoverRange(t *testing.T) {
	s := scale{min: 0, max: 137}
	ts := s.ticks()
	if len(ts) < 3 {
		t.Fatalf("too few ticks: %v", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("ticks not increasing: %v", ts)
		}
	}
	slog := scale{min: 2, max: 64000, log: true}
	lt := slog.ticks()
	if len(lt) < 3 {
		t.Fatalf("log ticks: %v", lt)
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{
		5:         "5",
		1500:      "1.5k",
		2_000_000: "2M",
		0.5:       "0.5",
	}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%v) = %q, want %q", v, got, want)
		}
	}
}

// Property: every data point maps inside the plot area.
func TestQuickPointsInsideCanvas(t *testing.T) {
	f := func(raw []uint16) bool {
		s := &metrics.Series{Name: "q"}
		for i, r := range raw {
			s.Add(float64(i+1), float64(r))
		}
		opt := Options{W: 640, H: 420}
		out := SVG(opt, []*metrics.Series{s})
		return strings.Contains(out, "</svg>") &&
			!strings.Contains(out, "NaN") && !strings.Contains(out, "Inf")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
