// Package plot renders the harness's figure series as self-contained SVG
// line charts — standard library only — so the reproduced figures can be
// viewed next to the paper's. Axes are linear or logarithmic, tick values
// are chosen from a 1-2-5 ladder, and each series gets a distinct stroke
// and a legend entry.
package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ssmp/internal/metrics"
)

// Options configure a chart.
type Options struct {
	Title  string
	XLabel string
	YLabel string
	// W and H are the canvas size in pixels (defaults 640x420).
	W, H int
	// LogX/LogY select logarithmic axes (useful for the paper's
	// power-of-two processor sweeps and blow-up curves).
	LogX, LogY bool
}

// palette holds distinguishable series strokes.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#17becf", "#7f7f7f",
}

type scale struct {
	min, max float64
	log      bool
	lo, hi   float64 // pixel range
}

func (s scale) pos(v float64) float64 {
	a, b, x := s.min, s.max, v
	if s.log {
		a, b, x = math.Log10(a), math.Log10(b), math.Log10(v)
	}
	if b == a {
		return (s.lo + s.hi) / 2
	}
	return s.lo + (x-a)/(b-a)*(s.hi-s.lo)
}

// ticks returns tick values on a 1-2-5 ladder (or decades for log scales).
func (s scale) ticks() []float64 {
	if s.log {
		var out []float64
		for d := math.Floor(math.Log10(s.min)); d <= math.Ceil(math.Log10(s.max)); d++ {
			v := math.Pow(10, d)
			if v >= s.min/1.001 && v <= s.max*1.001 {
				out = append(out, v)
			}
		}
		return out
	}
	span := s.max - s.min
	if span <= 0 {
		return []float64{s.min}
	}
	raw := span / 5
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	step := mag
	switch {
	case raw/mag > 5:
		step = 10 * mag
	case raw/mag > 2:
		step = 5 * mag
	case raw/mag > 1:
		step = 2 * mag
	}
	var out []float64
	for v := math.Ceil(s.min/step) * step; v <= s.max*1.0001; v += step {
		out = append(out, v)
	}
	return out
}

func fmtTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1_000_000:
		return fmt.Sprintf("%gM", v/1_000_000)
	case av >= 1_000:
		return fmt.Sprintf("%gk", v/1_000)
	default:
		return fmt.Sprintf("%g", v)
	}
}

// SVG renders the series as one chart. Series with no points are skipped;
// an entirely empty chart still renders axes.
func SVG(opt Options, series []*metrics.Series) string {
	if opt.W == 0 {
		opt.W = 640
	}
	if opt.H == 0 {
		opt.H = 420
	}
	const (
		padL, padR, padT, padB = 70, 160, 40, 50
	)

	// Collect extents.
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Points {
			xMin, xMax = math.Min(xMin, p.X), math.Max(xMax, p.X)
			yMin, yMax = math.Min(yMin, p.Y), math.Max(yMax, p.Y)
		}
	}
	if math.IsInf(xMin, 1) { // no data
		xMin, xMax, yMin, yMax = 0, 1, 0, 1
	}
	if opt.LogY && yMin <= 0 {
		opt.LogY = false
	}
	if opt.LogX && xMin <= 0 {
		opt.LogX = false
	}
	if !opt.LogY {
		yMin = math.Min(yMin, 0)
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	xs := scale{min: xMin, max: xMax, log: opt.LogX, lo: padL, hi: float64(opt.W - padR)}
	ys := scale{min: yMin, max: yMax, log: opt.LogY, lo: float64(opt.H - padB), hi: padT}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", opt.W, opt.H)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", opt.W, opt.H)
	fmt.Fprintf(&b, `<text x="%d" y="22" font-size="15" font-weight="bold">%s</text>`+"\n", padL, esc(opt.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		padL, opt.H-padB, opt.W-padR, opt.H-padB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		padL, padT, padL, opt.H-padB)

	for _, v := range xs.ticks() {
		x := xs.pos(v)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			x, opt.H-padB, x, opt.H-padB+5)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" text-anchor="middle">%s</text>`+"\n",
			x, opt.H-padB+20, fmtTick(v))
	}
	for _, v := range ys.ticks() {
		y := ys.pos(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			padL-5, y, padL, y)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" text-anchor="end" dy="4">%s</text>`+"\n",
			padL-8, y, fmtTick(v))
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			padL, y, opt.W-padR, y)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
		(padL+opt.W-padR)/2, opt.H-12, esc(opt.XLabel))
	fmt.Fprintf(&b, `<text x="16" y="%d" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		(padT+opt.H-padB)/2, (padT+opt.H-padB)/2, esc(opt.YLabel))

	// Series.
	li := 0
	for si, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		pts := append([]metrics.Point(nil), s.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		color := palette[si%len(palette)]
		var poly strings.Builder
		for i, p := range pts {
			if i > 0 {
				poly.WriteByte(' ')
			}
			fmt.Fprintf(&poly, "%.1f,%.1f", xs.pos(p.X), ys.pos(p.Y))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			poly.String(), color)
		for _, p := range pts {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				xs.pos(p.X), ys.pos(p.Y), color)
		}
		// Legend entry.
		ly := padT + 18*li
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			opt.W-padR+12, ly, opt.W-padR+36, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" dy="4">%s</text>`+"\n",
			opt.W-padR+42, ly, esc(s.Name))
		li++
	}

	b.WriteString("</svg>\n")
	return b.String()
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
