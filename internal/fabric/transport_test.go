package fabric

import (
	"testing"

	"ssmp/internal/mem"
	"ssmp/internal/msg"
	"ssmp/internal/network"
	"ssmp/internal/sim"
)

// mkTransport builds a fabric with the reliable transport over a (possibly
// faulty) network and attaches a recording handler to every node.
func mkTransport(t *testing.T, nodes int, faults network.FaultConfig) (*sim.Engine, *Fabric, [][]*msg.Msg) {
	t.Helper()
	eng := sim.NewEngine()
	cfg := network.DefaultConfig(nodes)
	cfg.Faults = faults
	nw := network.New(eng, cfg)
	f := New(eng, nw, DefaultTiming())
	f.EnableTransport(TransportConfig{})
	got := make([][]*msg.Msg, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		f.Attach(i, func(m *msg.Msg) { got[i] = append(got[i], m) })
	}
	return eng, f, got
}

// checkFIFO asserts node dst received exactly blocks 0..count-1 from src, in
// order (senders stamp the send index into Block).
func checkFIFO(t *testing.T, got []*msg.Msg, src, count int) {
	t.Helper()
	n := 0
	for _, m := range got {
		if m.Src != src {
			continue
		}
		if int(m.Block) != n {
			t.Fatalf("from node %d: message %d has block %d — lost, duplicated or reordered", src, n, m.Block)
		}
		n++
	}
	if n != count {
		t.Fatalf("from node %d: delivered %d messages, want %d", src, n, count)
	}
}

func TestTransportPassthroughNoFaults(t *testing.T) {
	eng, f, got := mkTransport(t, 4, network.FaultConfig{})
	const count = 20
	for i := 0; i < count; i++ {
		f.Send(&msg.Msg{Kind: msg.LockReq, Src: 0, Dst: 2, Block: mem.Block(i)})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	checkFIFO(t, got[2], 0, count)
	retries, dup, reord, acks := f.TransportStats()
	if retries != 0 || dup != 0 || reord != 0 {
		t.Fatalf("recovery counters nonzero on a clean network: %d/%d/%d", retries, dup, reord)
	}
	if acks != count {
		t.Fatalf("acksSent = %d, want %d", acks, count)
	}
}

func TestTransportSurvivesDrops(t *testing.T) {
	faults := network.FaultConfig{Seed: 3, Rates: network.FaultRates{Drop: 0.3}}
	eng, f, got := mkTransport(t, 4, faults)
	const count = 60
	for i := 0; i < count; i++ {
		f.Send(&msg.Msg{Kind: msg.LockReq, Src: 0, Dst: 2, Block: mem.Block(i)})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	checkFIFO(t, got[2], 0, count)
	fc := f.FaultCounters()
	if fc.Dropped == 0 {
		t.Fatal("fault plane dropped nothing at rate 0.3")
	}
	if fc.Retries == 0 {
		t.Fatal("drops recovered without any retransmission")
	}
}

func TestTransportSuppressesDuplicates(t *testing.T) {
	faults := network.FaultConfig{Seed: 3, Rates: network.FaultRates{Dup: 0.4}}
	eng, f, got := mkTransport(t, 4, faults)
	const count = 60
	for i := 0; i < count; i++ {
		f.Send(&msg.Msg{Kind: msg.LockReq, Src: 0, Dst: 2, Block: mem.Block(i)})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	checkFIFO(t, got[2], 0, count)
	fc := f.FaultCounters()
	if fc.Duplicated == 0 {
		t.Fatal("fault plane duplicated nothing at rate 0.4")
	}
	if fc.DupSuppressed == 0 {
		t.Fatal("duplicates reached the protocol layer unsuppressed")
	}
}

func TestTransportRestoresFIFOUnderDelay(t *testing.T) {
	// Large random delays make later messages overtake earlier ones; the
	// holdback buffer must restore injection order.
	faults := network.FaultConfig{Seed: 9, Rates: network.FaultRates{Delay: 0.5}, DelayMax: 64}
	eng, f, got := mkTransport(t, 4, faults)
	const count = 60
	for i := 0; i < count; i++ {
		f.Send(&msg.Msg{Kind: msg.LockReq, Src: 0, Dst: 2, Block: mem.Block(i)})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	checkFIFO(t, got[2], 0, count)
	fc := f.FaultCounters()
	if fc.Delayed == 0 {
		t.Fatal("fault plane delayed nothing at rate 0.5")
	}
	if fc.Reordered == 0 {
		t.Fatal("expected at least one held-back (reordered) message under 64-cycle delays")
	}
}

func TestTransportFullChaosAllLinks(t *testing.T) {
	faults := network.FaultConfig{
		Seed:     17,
		Rates:    network.FaultRates{Drop: 0.15, Dup: 0.15, Delay: 0.25},
		DelayMax: 48,
	}
	eng, f, got := mkTransport(t, 4, faults)
	const count = 40
	// Bidirectional traffic on several links, including the ack paths.
	for i := 0; i < count; i++ {
		f.Send(&msg.Msg{Kind: msg.LockReq, Src: 0, Dst: 2, Block: mem.Block(i)})
		f.Send(&msg.Msg{Kind: msg.LockGrant, Src: 2, Dst: 0, Block: mem.Block(i)})
		f.Send(&msg.Msg{Kind: msg.UpdateProp, Src: 1, Dst: 3, Block: mem.Block(i),
			Data: []mem.Word{mem.Word(i)}})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	checkFIFO(t, got[2], 0, count)
	checkFIFO(t, got[0], 2, count)
	checkFIFO(t, got[3], 1, count)
	// Payloads must survive retransmission cloning intact.
	for _, m := range got[3] {
		if len(m.Data) != 1 || m.Data[0] != mem.Word(m.Block) {
			t.Fatalf("payload corrupted: block %d data %v", m.Block, m.Data)
		}
	}
	fc := f.FaultCounters()
	if !fc.Any() {
		t.Fatal("no fault activity recorded under full chaos")
	}
	if fc.Dropped == 0 || fc.Retries == 0 {
		t.Fatalf("chaos run did not exercise the retry path: %+v", fc)
	}
}

func TestTransportLocalBypassUntracked(t *testing.T) {
	faults := network.FaultConfig{Seed: 5, Rates: network.FaultRates{Drop: 0.9}}
	eng, f, got := mkTransport(t, 4, faults)
	const count = 25
	for i := 0; i < count; i++ {
		f.Send(&msg.Msg{Kind: msg.LockReq, Src: 1, Dst: 1, Block: mem.Block(i)})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	checkFIFO(t, got[1], 1, count)
	for _, m := range got[1] {
		if m.XSeq != 0 {
			t.Fatalf("local bypass message got sequence %d, want untracked", m.XSeq)
		}
	}
	if _, _, _, acks := f.TransportStats(); acks != 0 {
		t.Fatalf("local bypass generated %d acks", acks)
	}
}

func TestTransportBackoffIsBounded(t *testing.T) {
	cfg := TransportConfig{RTO: 8, RTOMax: 32}.withDefaults()
	if cfg.RTO != 8 || cfg.RTOMax != 32 {
		t.Fatalf("withDefaults clobbered explicit values: %+v", cfg)
	}
	d := TransportConfig{}.withDefaults()
	if d != DefaultTransportConfig() {
		t.Fatalf("zero config = %+v, want defaults %+v", d, DefaultTransportConfig())
	}
	inverted := TransportConfig{RTO: 2048}.withDefaults()
	if inverted.RTOMax < inverted.RTO {
		t.Fatalf("RTOMax %d < RTO %d after withDefaults", inverted.RTOMax, inverted.RTO)
	}

	// Under a persistently lossy link, the retransmit interval must grow to
	// RTOMax and stay there: count retries over a fixed horizon and bound
	// them by horizon/RTO (unbounded backoff would be far fewer).
	faults := network.FaultConfig{Seed: 21, Rates: network.FaultRates{Drop: 0.8}}
	eng, f, got := mkTransport(t, 4, faults)
	f.xp.cfg = TransportConfig{RTO: 8, RTOMax: 32}
	f.Send(&msg.Msg{Kind: msg.LockReq, Src: 0, Dst: 2})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got[2]) != 1 {
		t.Fatalf("delivered %d copies, want 1", len(got[2]))
	}
	retries, _, _, _ := f.TransportStats()
	if retries == 0 {
		t.Fatal("drop=0.8 link delivered without retries")
	}
	// With the message eventually acked the queue drains; the engine must
	// not be left with orphan timers extending the run.
	if eng.Pending() != 0 {
		t.Fatalf("engine left %d pending events after drain", eng.Pending())
	}
}
