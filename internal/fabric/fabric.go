// Package fabric wires the protocol controllers to the interconnection
// network: it stamps and counts every message, applies the paper's timing
// parameters (t_D for a directory check, t_m for a main-memory block access),
// and provides the per-node service resources that serialize directory
// processing.
package fabric

import (
	"ssmp/internal/metrics"
	"ssmp/internal/msg"
	"ssmp/internal/network"
	"ssmp/internal/sim"
)

// Timing holds the machine's latency parameters in cycles, named after the
// paper's cost-model symbols (§5.1, Table 4).
type Timing struct {
	// CacheHit is the cost of a cache hit (one cache cycle).
	CacheHit sim.Time
	// TDir is t_D: the time to check the central directory or a cache
	// directory.
	TDir sim.Time
	// TMem is t_m: the main-memory cycle time for reading a block
	// (Table 4: 4 cache cycles).
	TMem sim.Time
}

// DefaultTiming returns the Table 4 parameter values.
func DefaultTiming() Timing {
	return Timing{CacheHit: 1, TDir: 1, TMem: 4}
}

// Fabric bundles the engine, the network, the timing parameters, and the
// global message collector.
type Fabric struct {
	Eng  *sim.Engine
	Net  *network.Network
	Time Timing
	Coll *metrics.Collector
	// RMR attributes each shared reference — classified local vs remote by
	// the cache-side protocol controllers at their hit/miss decision points
	// — to the issuing processor.
	RMR *metrics.RMRAccount
	// OnSend, when set, observes every message at injection time (message
	// tracing / debugging). It must not mutate the message.
	OnSend func(*msg.Msg)
	// xp is the reliable transport, enabled alongside the network's fault
	// plane (see transport.go); nil otherwise.
	xp *transport
}

// New builds a fabric over an engine and network.
func New(eng *sim.Engine, net *network.Network, t Timing) *Fabric {
	return &Fabric{Eng: eng, Net: net, Time: t, Coll: &metrics.Collector{}, RMR: metrics.NewRMRAccount(net.Nodes())}
}

// View returns a per-node fabric bound to one lane engine of a parallel
// (PDES) run. The view shares the network, the timing parameters, and the
// RMR account with the root fabric — RMR rows are per-processor and only
// ever written by the owning node's lane — but owns its message collector
// and, once EnableTransport is called on it, its own reliable-transport
// instance (a node's transport touches only the sender state of its
// outgoing links and the receiver state of its incoming ones, and acks
// always land back on the sending node's view). Per-view collectors are
// merged into the root after the run; sums are order-independent, so the
// merged totals are identical at any worker count.
func (f *Fabric) View(eng *sim.Engine) *Fabric {
	return &Fabric{Eng: eng, Net: f.Net, Time: f.Time, Coll: &metrics.Collector{}, RMR: f.RMR}
}

// Send counts and transmits a message. The message's Words() determine its
// network occupancy. With the reliable transport enabled, the message is
// tracked for acknowledgment and retransmission before injection.
func (f *Fabric) Send(m *msg.Msg) {
	if f.xp != nil && m.Kind != msg.NetAck && !f.Net.LocalBypass(m.Src, m.Dst) {
		f.xp.track(m)
	}
	f.sendRaw(m)
}

// sendRaw counts and injects without transport tracking: first
// transmissions, retransmissions (each is real traffic and counts as such),
// and acks all pass through here.
func (f *Fabric) sendRaw(m *msg.Msg) {
	f.Coll.Count(m.Kind)
	if f.OnSend != nil {
		f.OnSend(m)
	}
	f.Net.Send(m.Src, m.Dst, m.Words(), m)
}

// Attach registers node's protocol dispatch with the network, interposing
// the reliable transport when it is enabled. Components that attach through
// the fabric get exactly-once, per-link-FIFO delivery whether or not the
// fault plane is active.
func (f *Fabric) Attach(node int, h func(*msg.Msg)) {
	if f.xp == nil {
		f.Net.Attach(node, func(p any) { h(p.(*msg.Msg)) })
		return
	}
	f.Net.Attach(node, func(p any) { f.xp.receive(node, p.(*msg.Msg), h) })
}

// Station is a per-node message-processing front end: incoming messages are
// serialized through a directory-check resource (t_D each) before their
// handler runs. Both cache directories and the central directory use one.
type Station struct {
	f   *Fabric
	res sim.Resource
}

// NewStation returns a station on the fabric.
func NewStation(f *Fabric) *Station { return &Station{f: f} }

// Process schedules fn after the station's directory-check delay, honoring
// queueing at the directory.
func (s *Station) Process(fn func()) {
	done := s.res.Acquire(s.f.Eng.Now(), s.f.Time.TDir)
	s.f.Eng.At(done, fn)
}

// ProcessAfter schedules fn after the directory check plus an extra delay
// (e.g. t_m for a memory block read). The station is occupied for the whole
// duration: the directory and its memory module service one transaction at
// a time.
func (s *Station) ProcessAfter(extra sim.Time, fn func()) {
	done := s.res.Acquire(s.f.Eng.Now(), s.f.Time.TDir+extra)
	s.f.Eng.At(done, fn)
}

// Busy returns the cycles the station has been occupied.
func (s *Station) Busy() sim.Time { return s.res.Busy }
