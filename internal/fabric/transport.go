package fabric

// The reliable transport: the protocol-level recovery machinery that makes
// the machine survive the interconnect fault plane (network.Config.Faults).
//
// The coherence and lock protocols above the fabric assume the network
// delivers every message exactly once and, per ordered (src, dst) pair, in
// injection order — both properties the fault-free network provides (a
// link's messages serialize through the same port chain) and the fault
// plane deliberately breaks. Rather than teaching every directory, RUC
// subscriber-list, and CBL waiter-queue handler to tolerate loss,
// duplication, and reordering individually — a per-handler audit that would
// have to be redone for every new message kind — the fabric restores
// exactly-once, per-link FIFO delivery underneath all of them, the way a
// real machine's network interface does:
//
//   - every protocol message carries a per-link sequence number (Msg.XSeq);
//   - the receiver acknowledges each arrival with a NetAck (fire-and-forget,
//     itself subject to faults);
//   - the sender retransmits unacknowledged messages on a timeout with
//     bounded exponential backoff (RTO doubling up to RTOMax; attempts are
//     unbounded — with drop probability < 1 delivery is almost-surely
//     eventual, and the machine's horizon guards the pathological case);
//   - the receiver delivers ls == expected immediately, suppresses
//     ls < expected as an already-delivered duplicate (re-acking it, which
//     repairs a lost ack), and holds back ls > expected until the gap
//     fills, restoring FIFO.
//
// Duplicate suppression is what keeps duplicated directory, RUC-propagation
// and CBL-grant messages from corrupting subscriber and waiter lists: a
// second UpdateProp or LockGrant never reaches the controller at all.
//
// Determinism: timers are simulation events, sequence numbers are assigned
// in injection order, and the fault plane is seeded — so a (config, fault
// seed) pair names one exact execution, reproducible bit-for-bit.

import (
	"ssmp/internal/mem"
	"ssmp/internal/metrics"
	"ssmp/internal/msg"
	"ssmp/internal/sim"
)

// TransportConfig parameterizes the reliable transport.
type TransportConfig struct {
	// RTO is the initial retransmit timeout in cycles. It should exceed a
	// loaded round trip (network transit + directory queueing + the ack's
	// return transit); too small merely costs spurious retransmissions,
	// which duplicate suppression absorbs.
	RTO sim.Time
	// RTOMax caps the exponential backoff.
	RTOMax sim.Time
}

// DefaultTransportConfig returns the retry parameters used when the fault
// plane is enabled: an RTO of 64 cycles (several uncontended round trips at
// Table 4 timings) backing off to 1024.
func DefaultTransportConfig() TransportConfig {
	return TransportConfig{RTO: 64, RTOMax: 1024}
}

func (c TransportConfig) withDefaults() TransportConfig {
	d := DefaultTransportConfig()
	if c.RTO == 0 {
		c.RTO = d.RTO
	}
	if c.RTOMax < c.RTO {
		c.RTOMax = max(c.RTO, d.RTOMax)
	}
	return c
}

// pendKey identifies an unacknowledged message: its link and sequence.
type pendKey struct {
	link int // src*nodes + dst
	ls   uint64
}

// outstanding is one transport-tracked message awaiting its ack.
type outstanding struct {
	m     *msg.Msg
	rto   sim.Time
	timer sim.Handle
}

// transport is the per-fabric reliable-delivery state.
type transport struct {
	f   *Fabric
	cfg TransportConfig
	n   int

	nextLS  []uint64 // sender: last sequence issued per link
	expect  []uint64 // receiver: last sequence delivered per link
	hold    []map[uint64]*msg.Msg
	pending map[pendKey]*outstanding

	retries       uint64
	dupSuppressed uint64
	reordered     uint64
	acksSent      uint64
}

// EnableTransport activates the reliable transport. It must be called
// before any Attach or Send. A zero config field takes its default.
func (f *Fabric) EnableTransport(cfg TransportConfig) {
	n := f.Net.Nodes()
	f.xp = &transport{
		f:       f,
		cfg:     cfg.withDefaults(),
		n:       n,
		nextLS:  make([]uint64, n*n),
		expect:  make([]uint64, n*n),
		hold:    make([]map[uint64]*msg.Msg, n*n),
		pending: make(map[pendKey]*outstanding),
	}
}

// TransportStats reports the transport's recovery counters (zero when the
// transport is disabled).
func (f *Fabric) TransportStats() (retries, dupSuppressed, reordered, acksSent uint64) {
	if f.xp == nil {
		return 0, 0, 0, 0
	}
	return f.xp.retries, f.xp.dupSuppressed, f.xp.reordered, f.xp.acksSent
}

// FaultCounters combines the network's injection counters with the
// transport's recovery counters into the shared metrics form.
func (f *Fabric) FaultCounters() metrics.FaultCounters {
	fs := f.Net.Stats().Faults
	c := metrics.FaultCounters{
		Dropped:     fs.Dropped,
		Duplicated:  fs.Duplicated,
		Delayed:     fs.Delayed,
		DelayCycles: uint64(fs.DelayCycles),
	}
	c.Retries, c.DupSuppressed, c.Reordered, c.AcksSent = f.TransportStats()
	return c
}

// track assigns m its per-link sequence number and arms the retransmit
// timer. Node-local bypass messages are exempt: they cannot be faulted.
func (t *transport) track(m *msg.Msg) {
	li := m.Src*t.n + m.Dst
	t.nextLS[li]++
	m.XSeq = t.nextLS[li]
	o := &outstanding{m: m, rto: t.cfg.RTO}
	k := pendKey{li, m.XSeq}
	t.pending[k] = o
	o.timer = t.f.Eng.After(o.rto, func() { t.retransmit(k) })
}

// retransmit fires when a tracked message's ack has not arrived within its
// RTO: a fresh copy is reinjected and the timer re-armed with doubled
// (capped) timeout. A spurious retransmission — the original was merely
// slow, not lost — is harmless: the receiver suppresses it as a duplicate.
func (t *transport) retransmit(k pendKey) {
	o, ok := t.pending[k]
	if !ok {
		return // acked in the same cycle the timer fired
	}
	t.retries++
	clone := *o.m
	if len(o.m.Data) > 0 {
		// The receiver of the original copy owns its Data; the clone
		// must not alias a slice another node may now be holding.
		clone.Data = append([]mem.Word(nil), o.m.Data...)
	}
	t.f.sendRaw(&clone)
	if o.rto < t.cfg.RTOMax {
		o.rto *= 2
		if o.rto > t.cfg.RTOMax {
			o.rto = t.cfg.RTOMax
		}
	}
	o.timer = t.f.Eng.After(o.rto, func() { t.retransmit(k) })
}

// sendAck acknowledges sequence ls on link src->node. Acks are untracked
// and themselves subject to faults; a lost ack is repaired when the
// retransmitted original is suppressed and re-acked.
func (t *transport) sendAck(node, src int, ls uint64) {
	t.acksSent++
	t.f.sendRaw(&msg.Msg{Kind: msg.NetAck, Src: node, Dst: src, XSeq: ls})
}

// ack retires the pending entry a NetAck names, cancelling its retransmit
// timer. Acks for already-retired sequences (duplicated or stale acks) are
// ignored.
func (t *transport) ack(a *msg.Msg) {
	k := pendKey{a.Dst*t.n + a.Src, a.XSeq}
	if o, ok := t.pending[k]; ok {
		o.timer.Cancel()
		delete(t.pending, k)
	}
}

// receive is the receiver-side transport: ack processing, duplicate
// suppression, and per-link FIFO reassembly. h is the node's protocol
// dispatch.
func (t *transport) receive(node int, m *msg.Msg, h func(*msg.Msg)) {
	if m.Kind == msg.NetAck {
		t.ack(m)
		return
	}
	if m.XSeq == 0 {
		// Node-local bypass messages are untracked and unfaultable.
		h(m)
		return
	}
	li := m.Src*t.n + node
	ls := m.XSeq
	t.sendAck(node, m.Src, ls)
	switch {
	case ls <= t.expect[li]:
		// Already delivered (a fault-plane duplicate, or a
		// retransmission whose original got through). The re-ack above
		// stops the sender's timer if the first ack was lost.
		t.dupSuppressed++
	case ls == t.expect[li]+1:
		t.expect[li] = ls
		h(m)
		// Drain any held successors the gap was blocking.
		for {
			nm, ok := t.hold[li][t.expect[li]+1]
			if !ok {
				return
			}
			delete(t.hold[li], t.expect[li]+1)
			t.expect[li]++
			h(nm)
		}
	default:
		// Early: a predecessor is still missing (dropped or delayed).
		// Hold this message until the sender's retransmission fills the
		// gap, preserving the link's FIFO order.
		if t.hold[li] == nil {
			t.hold[li] = make(map[uint64]*msg.Msg)
		}
		if _, dup := t.hold[li][ls]; dup {
			t.dupSuppressed++
			return
		}
		t.hold[li][ls] = m
		t.reordered++
	}
}
