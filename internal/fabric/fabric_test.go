package fabric

import (
	"testing"

	"ssmp/internal/msg"
	"ssmp/internal/network"
	"ssmp/internal/sim"
)

func TestSendCountsAndDelivers(t *testing.T) {
	eng := sim.NewEngine()
	nw := network.New(eng, network.DefaultConfig(4))
	f := New(eng, nw, DefaultTiming())
	var got *msg.Msg
	for i := 0; i < 4; i++ {
		i := i
		nw.Attach(i, func(p any) {
			if i == 2 {
				got = p.(*msg.Msg)
			}
		})
	}
	f.Send(&msg.Msg{Kind: msg.LockReq, Src: 0, Dst: 2})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Kind != msg.LockReq {
		t.Fatal("message not delivered")
	}
	if f.Coll.Kind(msg.LockReq) != 1 {
		t.Fatal("message not counted")
	}
}

func TestStationSerializes(t *testing.T) {
	eng := sim.NewEngine()
	nw := network.New(eng, network.DefaultConfig(2))
	f := New(eng, nw, Timing{CacheHit: 1, TDir: 3, TMem: 4})
	s := NewStation(f)
	var times []sim.Time
	s.Process(func() { times = append(times, eng.Now()) })
	s.Process(func() { times = append(times, eng.Now()) })
	s.ProcessAfter(4, func() { times = append(times, eng.Now()) })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// t_D = 3: first at 3, second queued to 6, third at 9+4=13.
	want := []sim.Time{3, 6, 13}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
	// Occupancy: 3 + 3 + (3+4): the memory read holds the station.
	if s.Busy() != 13 {
		t.Fatalf("Busy = %d, want 13", s.Busy())
	}
}

func TestDefaultTimingMatchesTable4(t *testing.T) {
	tm := DefaultTiming()
	if tm.CacheHit != 1 || tm.TDir != 1 || tm.TMem != 4 {
		t.Fatalf("DefaultTiming = %+v, want 1/1/4 per Table 4", tm)
	}
}
