package wbi

import (
	"testing"

	"ssmp/internal/mem"
	"ssmp/internal/msg"
)

// limitedRig caps every home's directory pointers.
func limitedRig(t testing.TB, n, maxPtrs int) *rig {
	r := newRig(t, n)
	for _, h := range r.homes {
		h.MaxPointers = maxPtrs
	}
	return r
}

func TestLimitedDirectoryOverflowsToBroadcast(t *testing.T) {
	r := limitedRig(t, 8, 2)
	r.seed(17, 1)
	b := r.geom.BlockOf(17)
	home := r.homes[r.geom.Home(b)]
	// Two readers fit in the pointer set.
	r.read(t, 1, 17)
	r.read(t, 2, 17)
	if home.BroadcastMode(b) {
		t.Fatal("broadcast bit set below the pointer limit")
	}
	// A third overflows.
	r.read(t, 3, 17)
	if !home.BroadcastMode(b) {
		t.Fatal("broadcast bit not set on overflow")
	}
	// A write must now invalidate every other node (7 Invs), not 3.
	r.f.Coll.Reset()
	r.write(t, 0, 17, 2)
	if got := r.f.Coll.Kind(msg.Inv); got != 7 {
		t.Fatalf("Inv count = %d, want 7 (broadcast)", got)
	}
	if home.Broadcasts != 1 {
		t.Fatalf("Broadcasts = %d, want 1", home.Broadcasts)
	}
	// Correctness preserved: all stale copies gone, fresh reads see 2.
	for _, n := range []int{1, 2, 3} {
		if got := r.read(t, n, 17); got != 2 {
			t.Fatalf("node %d read = %d, want 2", n, got)
		}
	}
	// The directory recovered: the writer is the exclusive owner.
	if home.Owner(b) != -1 && home.BroadcastMode(b) {
		t.Fatal("broadcast bit not cleared by the exclusive transfer")
	}
}

func TestLimitedDirectoryCorrectUnderRMWContention(t *testing.T) {
	// The atomic-counter torture test with an overflowing directory.
	r := limitedRig(t, 8, 1)
	const k = 15
	for n := 0; n < 8; n++ {
		n := n
		remaining := k
		var again func()
		again = func() {
			remaining--
			if remaining > 0 {
				r.nodes[n].RMW(17, func(w mem.Word) mem.Word { return w + 1 }, func(mem.Word) { again() })
			}
		}
		r.nodes[n].RMW(17, func(w mem.Word) mem.Word { return w + 1 }, func(mem.Word) { again() })
	}
	r.run(t)
	if got := r.read(t, 0, 17); got != 8*k {
		t.Fatalf("counter = %d, want %d", got, 8*k)
	}
}

func TestFullMapUnaffectedByDefault(t *testing.T) {
	r := newRig(t, 8) // MaxPointers = 0: full map
	r.seed(17, 1)
	for n := 1; n < 8; n++ {
		r.read(t, n, 17)
	}
	b := r.geom.BlockOf(17)
	if r.homes[r.geom.Home(b)].BroadcastMode(b) {
		t.Fatal("full map overflowed")
	}
	r.f.Coll.Reset()
	r.write(t, 0, 17, 2)
	if got := r.f.Coll.Kind(msg.Inv); got != 7 {
		t.Fatalf("Inv count = %d, want 7 exact sharers", got)
	}
}
