package wbi

import (
	"fmt"

	"ssmp/internal/cache"
	"ssmp/internal/fabric"
	"ssmp/internal/mem"
	"ssmp/internal/msg"
)

// pending tracks the node's single outstanding coherence transaction.
type pending struct {
	isX      bool // GetX (write/RMW) vs GetS (read)
	block    mem.Block
	wordIdx  int
	apply    func(old mem.Word) mem.Word // nil for reads
	done     func(mem.Word)
	needAcks int
	gotAcks  int
	dataIn   bool
	data     []mem.Word
	excl     bool
	// poisoned marks a read whose reply was overtaken by an invalidation
	// (the Inv was sent after the directory recorded us as a sharer but
	// before the delayed data reply left the home). The read completes
	// with the — legally stale — value, but the line is not retained, so
	// the next read fetches fresh data.
	poisoned bool
	// buffered holds forwarded requests that arrived while this
	// transaction was still in flight; they are served on completion.
	buffered []*msg.Msg
}

func (p *pending) complete() bool {
	return p.dataIn && p.gotAcks == p.needAcks
}

// wbEntry is an in-flight write-back: the data is retained until the home
// acknowledges, so forwarded requests can still be served.
type wbEntry struct {
	data []mem.Word
}

// Node is the cache-side WBI controller of one processor node.
type Node struct {
	f       *fabric.Fabric
	id      int
	geom    mem.Geometry
	cache   *cache.Cache
	station *fabric.Station
	pend    *pending
	wb      map[mem.Block]wbEntry

	// Invalidations counts Inv messages received (storm visibility).
	Invalidations uint64
}

// NewNode builds the cache-side WBI controller.
func NewNode(f *fabric.Fabric, id int, geom mem.Geometry, c *cache.Cache) *Node {
	return &Node{f: f, id: id, geom: geom, cache: c, station: fabric.NewStation(f), wb: make(map[mem.Block]wbEntry)}
}

// Cache exposes the node's cache.
func (n *Node) Cache() *cache.Cache { return n.cache }

// Read performs a coherent read: a hit in S or M is local; a miss issues
// GetS.
func (n *Node) Read(a mem.Addr, done func(mem.Word)) {
	b := n.geom.BlockOf(a)
	wi := n.geom.WordIndex(a)
	if l := n.cache.Lookup(b); l != nil {
		n.f.RMR.LocalHit(n.id)
		w := l.Data[wi]
		n.f.Eng.After(n.f.Time.CacheHit, func() { done(w) })
		return
	}
	n.start(&pending{block: b, wordIdx: wi, done: done})
}

// Write performs a strongly-consistent coherent write: a hit in M is local;
// otherwise the node acquires exclusive ownership (invalidating all other
// copies) and stalls until the transaction completes.
func (n *Node) Write(a mem.Addr, w mem.Word, done func()) {
	b := n.geom.BlockOf(a)
	wi := n.geom.WordIndex(a)
	if l := n.cache.Lookup(b); l != nil && l.Excl {
		n.f.RMR.LocalHit(n.id)
		l.Data[wi] = w
		l.Dirty.Set(wi)
		n.f.Eng.After(n.f.Time.CacheHit, func() { done() })
		return
	}
	n.start(&pending{
		isX: true, block: b, wordIdx: wi,
		apply: func(mem.Word) mem.Word { return w },
		done:  func(mem.Word) { done() },
	})
}

// RMW performs an atomic read-modify-write: the node acquires exclusive
// ownership, applies op to the addressed word, and returns the *old* value.
// This is the fetch-and-Φ style primitive software locks are built from.
func (n *Node) RMW(a mem.Addr, op func(mem.Word) mem.Word, done func(old mem.Word)) {
	b := n.geom.BlockOf(a)
	wi := n.geom.WordIndex(a)
	if l := n.cache.Lookup(b); l != nil && l.Excl {
		n.f.RMR.LocalHit(n.id)
		old := l.Data[wi]
		l.Data[wi] = op(old)
		l.Dirty.Set(wi)
		n.f.Eng.After(n.f.Time.CacheHit, func() { done(old) })
		return
	}
	n.start(&pending{isX: true, block: b, wordIdx: wi, apply: op, done: done})
}

func (n *Node) start(p *pending) {
	if n.pend != nil {
		panic(fmt.Sprintf("wbi: node %d issued a request with one outstanding", n.id))
	}
	n.pend = p
	n.f.RMR.RemoteRef(n.id)
	kind := msg.GetS
	if p.isX {
		kind = msg.GetX
	}
	n.f.Send(&msg.Msg{Kind: kind, Src: n.id, Dst: n.geom.Home(p.block), Block: p.block})
}

// install places the completed transaction's block into the cache and
// finishes the pending operation.
func (n *Node) finish() {
	p := n.pend
	if p.poisoned {
		// Complete the read without installing the superseded line.
		n.pend = nil
		p.done(p.data[p.wordIdx])
		return
	}
	var l *cache.Line
	if existing := n.cache.Peek(p.block); existing != nil {
		// Upgrade: the line was already present in S.
		l = existing
		copy(l.Data, p.data)
	} else {
		l = n.installBlock(p.block, p.data)
	}
	l.Excl = p.excl
	old := l.Data[p.wordIdx]
	if p.apply != nil {
		l.Data[p.wordIdx] = p.apply(old)
		l.Dirty.Set(p.wordIdx)
	}
	buffered := p.buffered
	n.pend = nil
	done := p.done
	done(old)
	// Serve forwarded requests that queued behind the acquisition.
	for _, m := range buffered {
		n.process(m)
	}
}

func (n *Node) installBlock(b mem.Block, data []mem.Word) *cache.Line {
	l, victim, evicted := n.cache.Allocate(b)
	copy(l.Data, data)
	if evicted && victim.Dirty.Any() {
		n.evictDirty(victim)
	}
	return l
}

// evictDirty issues a PutX for a dirty victim, retaining the data until the
// home acknowledges so forwarded requests can be served meanwhile.
func (n *Node) evictDirty(v cache.Victim) {
	n.f.RMR.Writeback(n.id)
	n.wb[v.Block] = wbEntry{data: v.Data}
	n.f.Send(&msg.Msg{
		Kind: msg.PutX, Src: n.id, Dst: n.geom.Home(v.Block),
		Block: v.Block, Data: v.Data, Mask: v.Dirty,
	})
}

// Handles reports whether the node controller consumes this message kind.
func (n *Node) Handles(k msg.Kind) bool {
	switch k {
	case msg.DataS, msg.DataX, msg.Inv, msg.InvAck, msg.FwdGetS, msg.FwdGetX,
		msg.OwnerData, msg.PutAck:
		return true
	}
	return false
}

// Handle processes an inbound message after the cache-directory check.
func (n *Node) Handle(m *msg.Msg) {
	n.station.Process(func() { n.process(m) })
}

func (n *Node) process(m *msg.Msg) {
	switch m.Kind {
	case msg.DataS, msg.OwnerData:
		p := n.pend
		if p == nil || p.block != m.Block {
			panic(fmt.Sprintf("wbi: node %d data reply for %d without request", n.id, m.Block))
		}
		p.dataIn = true
		p.data = m.Data
		// OwnerData answers both FwdGetS and FwdGetX; exclusivity
		// follows the pending request's kind.
		p.excl = p.isX
		if p.complete() {
			n.finish()
		}

	case msg.DataX:
		p := n.pend
		if p == nil || p.block != m.Block || !p.isX {
			panic(fmt.Sprintf("wbi: node %d DataX for %d without GetX", n.id, m.Block))
		}
		p.dataIn = true
		p.data = m.Data
		p.excl = true
		p.needAcks = m.Acks
		if p.complete() {
			n.finish()
		}

	case msg.InvAck:
		p := n.pend
		if p == nil || p.block != m.Block {
			panic(fmt.Sprintf("wbi: node %d stray InvAck for %d", n.id, m.Block))
		}
		p.gotAcks++
		if p.complete() {
			n.finish()
		}

	case msg.Inv:
		n.Invalidations++
		n.cache.Invalidate(m.Block) // silent even if dirty: invalidator's copy supersedes
		if p := n.pend; p != nil && p.block == m.Block && !p.isX {
			// The in-flight read reply is already superseded.
			p.poisoned = true
		}
		n.f.Send(&msg.Msg{Kind: msg.InvAck, Src: n.id, Dst: m.Requester, Block: m.Block})

	case msg.FwdGetS:
		n.serveFwd(m, false)

	case msg.FwdGetX:
		n.serveFwd(m, true)

	case msg.PutAck:
		delete(n.wb, m.Block)

	default:
		panic(fmt.Sprintf("wbi: node %d cannot handle %v", n.id, m.Kind))
	}
}

// serveFwd supplies a forwarded requester from the owned line, the
// write-back buffer, or — if the acquisition is itself still in flight —
// buffers the request until it completes.
func (n *Node) serveFwd(m *msg.Msg, exclusive bool) {
	if l := n.cache.Peek(m.Block); l != nil && l.Excl {
		data := append([]mem.Word(nil), l.Data...)
		if exclusive {
			n.cache.Invalidate(m.Block)
		} else {
			l.Excl = false
			l.Dirty = 0
			// Downgrade updates memory so the directory can serve
			// future readers.
			n.f.Send(&msg.Msg{Kind: msg.OwnerDataMem, Src: n.id, Dst: n.geom.Home(m.Block), Block: m.Block, Data: data, Mask: mem.Full(n.geom.BlockWords)})
		}
		n.f.Send(&msg.Msg{Kind: msg.OwnerData, Src: n.id, Dst: m.Requester, Block: m.Block, Data: data})
		return
	}
	if e, ok := n.wb[m.Block]; ok {
		if !exclusive {
			n.f.Send(&msg.Msg{Kind: msg.OwnerDataMem, Src: n.id, Dst: n.geom.Home(m.Block), Block: m.Block, Data: e.data, Mask: mem.Full(n.geom.BlockWords), Aux: 1})
		}
		n.f.Send(&msg.Msg{Kind: msg.OwnerData, Src: n.id, Dst: m.Requester, Block: m.Block, Data: e.data})
		return
	}
	if p := n.pend; p != nil && p.block == m.Block {
		p.buffered = append(p.buffered, m)
		return
	}
	panic(fmt.Sprintf("wbi: node %d forwarded %v for %d it does not own", n.id, m.Kind, m.Block))
}
