package wbi

import (
	"testing"
	"testing/quick"

	"ssmp/internal/cache"
	"ssmp/internal/fabric"
	"ssmp/internal/mem"
	"ssmp/internal/msg"
	"ssmp/internal/network"
	"ssmp/internal/sim"
)

type rig struct {
	eng   *sim.Engine
	f     *fabric.Fabric
	geom  mem.Geometry
	nodes []*Node
	homes []*Home
}

func newRig(t testing.TB, n int) *rig {
	t.Helper()
	eng := sim.NewEngine()
	nw := network.New(eng, network.DefaultConfig(n))
	f := fabric.New(eng, nw, fabric.DefaultTiming())
	geom := mem.Geometry{BlockWords: 4, Nodes: n}
	r := &rig{eng: eng, f: f, geom: geom}
	for i := 0; i < n; i++ {
		r.nodes = append(r.nodes, NewNode(f, i, geom, cache.New(geom, 16, 2)))
		r.homes = append(r.homes, NewHome(f, i, geom, mem.NewStore(geom)))
		i := i
		nw.Attach(i, func(p any) {
			m := p.(*msg.Msg)
			if r.homes[i].Handles(m.Kind) {
				r.homes[i].Handle(m)
			} else {
				r.nodes[i].Handle(m)
			}
		})
	}
	return r
}

func (r *rig) run(t testing.TB) {
	t.Helper()
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func (r *rig) seed(a mem.Addr, w mem.Word) {
	r.homes[r.geom.Home(r.geom.BlockOf(a))].store.WriteWord(a, w)
}

func (r *rig) read(t testing.TB, node int, a mem.Addr) mem.Word {
	t.Helper()
	var out mem.Word
	got := false
	r.nodes[node].Read(a, func(w mem.Word) { out = w; got = true })
	r.run(t)
	if !got {
		t.Fatalf("node %d read never completed", node)
	}
	return out
}

func (r *rig) write(t testing.TB, node int, a mem.Addr, w mem.Word) {
	t.Helper()
	done := false
	r.nodes[node].Write(a, w, func() { done = true })
	r.run(t)
	if !done {
		t.Fatalf("node %d write never completed", node)
	}
}

func TestReadMissFromMemory(t *testing.T) {
	r := newRig(t, 4)
	r.seed(17, 7)
	if got := r.read(t, 2, 17); got != 7 {
		t.Fatalf("read = %d, want 7", got)
	}
	// Hit on re-read: no extra traffic.
	before := r.f.Coll.Total()
	r.read(t, 2, 17)
	if r.f.Coll.Total() != before {
		t.Fatal("read hit generated traffic")
	}
}

func TestWriteThenRemoteRead(t *testing.T) {
	r := newRig(t, 4)
	r.write(t, 1, 17, 42)
	if got := r.read(t, 2, 17); got != 42 {
		t.Fatalf("remote read after write = %d, want 42", got)
	}
	// The forward downgraded the owner and updated memory.
	b := r.geom.BlockOf(17)
	if r.homes[r.geom.Home(b)].Owner(b) != -1 {
		t.Fatal("owner not cleared after downgrade")
	}
	if r.homes[r.geom.Home(b)].store.ReadWord(17) != 42 {
		t.Fatal("memory not updated on downgrade")
	}
}

func TestUpgradeInvalidatesSharers(t *testing.T) {
	r := newRig(t, 8)
	r.seed(17, 1)
	for _, n := range []int{1, 2, 3, 4} {
		r.read(t, n, 17)
	}
	r.f.Coll.Reset()
	r.write(t, 1, 17, 2)
	// Three other sharers must be invalidated.
	if got := r.f.Coll.Kind(msg.Inv); got != 3 {
		t.Fatalf("Inv count = %d, want 3", got)
	}
	if got := r.f.Coll.Kind(msg.InvAck); got != 3 {
		t.Fatalf("InvAck count = %d, want 3", got)
	}
	for _, n := range []int{2, 3, 4} {
		if l := r.nodes[n].cache.Peek(r.geom.BlockOf(17)); l != nil {
			t.Fatalf("node %d still caches invalidated block", n)
		}
	}
	// Invalidated sharers re-read the new value.
	if got := r.read(t, 3, 17); got != 2 {
		t.Fatalf("re-read = %d, want 2", got)
	}
}

func TestWriteMissWithOwnerForwards(t *testing.T) {
	r := newRig(t, 4)
	r.write(t, 1, 17, 5)
	r.write(t, 2, 17, 6) // ownership transfers 1 -> 2
	b := r.geom.BlockOf(17)
	if got := r.homes[r.geom.Home(b)].Owner(b); got != 2 {
		t.Fatalf("owner = %d, want 2", got)
	}
	if l := r.nodes[1].cache.Peek(b); l != nil {
		t.Fatal("old owner still caches the block")
	}
	if got := r.read(t, 3, 17); got != 6 {
		t.Fatalf("read = %d, want 6", got)
	}
}

func TestRMWReturnsOldValueAtomically(t *testing.T) {
	r := newRig(t, 4)
	r.seed(17, 10)
	var old mem.Word
	r.nodes[1].RMW(17, func(w mem.Word) mem.Word { return w + 1 }, func(o mem.Word) { old = o })
	r.run(t)
	if old != 10 {
		t.Fatalf("RMW old = %d, want 10", old)
	}
	if got := r.read(t, 2, 17); got != 11 {
		t.Fatalf("value after RMW = %d, want 11", got)
	}
}

func TestConcurrentRMWNeverLosesIncrements(t *testing.T) {
	r := newRig(t, 8)
	const k = 20
	inc := func(w mem.Word) mem.Word { return w + 1 }
	for n := 0; n < 8; n++ {
		n := n
		remaining := k
		var pump func(mem.Word)
		pump = func(mem.Word) {
			remaining--
			if remaining > 0 {
				r.nodes[n].RMW(17, inc, pump)
			}
		}
		r.nodes[n].RMW(17, inc, pump)
	}
	r.run(t)
	if got := r.read(t, 0, 17); got != 8*k {
		t.Fatalf("counter = %d, want %d (lost RMW under contention)", got, 8*k)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	r := newRig(t, 4)
	r.nodes[1] = NewNode(r.f, 1, r.geom, cache.New(r.geom, 1, 1))
	r.write(t, 1, 17, 9)
	r.read(t, 1, r.geom.BaseAddr(9)) // evicts the dirty line
	b := r.geom.BlockOf(17)
	if got := r.homes[r.geom.Home(b)].store.ReadWord(17); got != 9 {
		t.Fatalf("memory after eviction = %d, want 9", got)
	}
	if got := r.homes[r.geom.Home(b)].Owner(b); got != -1 {
		t.Fatalf("owner after PutX = %d, want -1", got)
	}
	if len(r.nodes[1].wb) != 0 {
		t.Fatal("write-back buffer not drained by PutAck")
	}
}

func TestReadAfterOwnEvictionWaitsForWriteBack(t *testing.T) {
	// The owner evicts a dirty line and immediately re-reads it: the home
	// queues the GetS until the PutX lands, then serves fresh data.
	r := newRig(t, 4)
	r.nodes[1] = NewNode(r.f, 1, r.geom, cache.New(r.geom, 1, 1))
	r.write(t, 1, 17, 9)
	r.read(t, 1, r.geom.BaseAddr(9)) // evict
	if got := r.read(t, 1, 17); got != 9 {
		t.Fatalf("re-read after eviction = %d, want 9", got)
	}
}

func TestForwardedReadServedFromWriteBackBuffer(t *testing.T) {
	// Node 1 owns dirty data, evicts (PutX in flight), and before the
	// write-back lands node 2's read is forwarded to node 1, which must
	// serve from its write-back buffer.
	r := newRig(t, 4)
	r.nodes[1] = NewNode(r.f, 1, r.geom, cache.New(r.geom, 1, 1))
	r.write(t, 1, 17, 9)
	// Trigger eviction and the remote read in the same cycle so the
	// forward races the PutX.
	evictDone, readDone := false, false
	var got mem.Word
	r.nodes[1].Read(r.geom.BaseAddr(9), func(mem.Word) { evictDone = true })
	r.nodes[2].Read(17, func(w mem.Word) { got = w; readDone = true })
	r.run(t)
	if !evictDone || !readDone {
		t.Fatal("operations never completed")
	}
	if got != 9 {
		t.Fatalf("raced read = %d, want 9", got)
	}
}

func TestInvalidationStormScalesWithSharers(t *testing.T) {
	// The WBI cost the paper highlights: invalidation traffic grows with
	// the number of sharers (Table 3's O(n^2) parallel-lock behaviour).
	for _, n := range []int{4, 8, 16} {
		r := newRig(t, n)
		r.seed(17, 0)
		for i := 1; i < n; i++ {
			r.read(t, i, 17)
		}
		r.f.Coll.Reset()
		r.write(t, 0, 17, 1)
		if got := int(r.f.Coll.Kind(msg.Inv)); got != n-1 {
			t.Fatalf("n=%d: Inv = %d, want %d", n, got, n-1)
		}
	}
}

func TestSpinLockOnRMW(t *testing.T) {
	// A test-and-set spin lock built from RMW: the WBI software baseline.
	r := newRig(t, 4)
	lockA := mem.Addr(17)
	countA := mem.Addr(33) // different block
	const k = 5
	var acquire func(node int, cont func())
	acquire = func(node int, cont func()) {
		r.nodes[node].RMW(lockA, func(w mem.Word) mem.Word { return 1 }, func(old mem.Word) {
			if old == 0 {
				cont() // acquired
				return
			}
			acquire(node, cont) // spin
		})
	}
	release := func(node int, cont func()) {
		r.nodes[node].Write(lockA, 0, cont)
	}
	for n := 0; n < 4; n++ {
		n := n
		remaining := k
		var loop func()
		loop = func() {
			if remaining == 0 {
				return
			}
			remaining--
			acquire(n, func() {
				r.nodes[n].Read(countA, func(v mem.Word) {
					r.nodes[n].Write(countA, v+1, func() {
						release(n, loop)
					})
				})
			})
		}
		loop()
	}
	r.run(t)
	if got := r.read(t, 0, countA); got != 4*k {
		t.Fatalf("lock-protected counter = %d, want %d", got, 4*k)
	}
}

// Property: concurrent atomic increments from random nodes are never lost.
func TestQuickRMWConservation(t *testing.T) {
	f := func(nodes []uint8) bool {
		r := newRig(t, 8)
		for _, nn := range nodes {
			node := int(nn % 8)
			r.nodes[node].RMW(17, func(w mem.Word) mem.Word { return w + 1 }, func(mem.Word) {})
			// Interleave: sometimes let the system drain, sometimes
			// pile requests up across nodes.
			if nn%3 == 0 {
				if err := r.eng.Run(); err != nil {
					return false
				}
			} else if r.nodes[node].pend != nil {
				// A node can have only one outstanding request;
				// drain before reusing it.
				if err := r.eng.Run(); err != nil {
					return false
				}
			}
		}
		if err := r.eng.Run(); err != nil {
			return false
		}
		var got mem.Word
		r.nodes[0].Read(17, func(w mem.Word) { got = w })
		if err := r.eng.Run(); err != nil {
			return false
		}
		return got == mem.Word(len(nodes))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: after arbitrary reads/writes drain, every cached copy of a
// block equals memory unless a single exclusive owner exists.
func TestQuickCoherenceInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		r := newRig(t, 4)
		for _, op := range ops {
			node := int(op % 4)
			a := mem.Addr((op >> 2) % 8) // words within two blocks
			if (op>>8)%2 == 0 {
				r.nodes[node].Read(a, func(mem.Word) {})
			} else {
				r.nodes[node].Write(a, mem.Word(op), func() {})
			}
			if err := r.eng.Run(); err != nil {
				return false
			}
		}
		for b := mem.Block(0); b < 2; b++ {
			home := r.homes[r.geom.Home(b)]
			owner := home.Owner(b)
			memBlk := home.store.ReadBlock(b)
			for n := 0; n < 4; n++ {
				l := r.nodes[n].cache.Peek(b)
				if l == nil {
					continue
				}
				if l.Excl && n != owner {
					return false // two exclusives or wrong owner
				}
				if !l.Excl {
					for i := range memBlk {
						if l.Data[i] != memBlk[i] {
							return false // stale shared copy
						}
					}
				}
			}
			if owner >= 0 {
				l := r.nodes[owner].cache.Peek(b)
				if l == nil || !l.Excl {
					return false // directory points at non-owner
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
