package wbi

import (
	"testing"

	"ssmp/internal/mem"
)

// TestReadInvalidateRaceDoesNotStrandStaleCopy is the regression test for
// the poisoned-read race: the home records a reader as a sharer before its
// delayed data reply leaves, so an invalidation triggered by a concurrent
// writer can overtake the reply. The reader may legally return the old
// value once, but it must not retain the superseded line (a stranded stale
// copy makes spin loops live-lock).
func TestReadInvalidateRaceDoesNotStrandStaleCopy(t *testing.T) {
	r := newRig(t, 4)
	r.seed(17, 1)
	// A second sharer guarantees the writer's upgrade sends
	// invalidations.
	r.read(t, 2, 17)

	var got mem.Word
	readDone, writeDone := false, false
	r.nodes[1].Read(17, func(w mem.Word) { got = w; readDone = true })
	r.nodes[3].Write(17, 2, func() { writeDone = true })
	r.run(t)
	if !readDone || !writeDone {
		t.Fatal("operations incomplete")
	}
	if got != 1 && got != 2 {
		t.Fatalf("racing read = %d, want 1 or 2 (either serialization)", got)
	}
	// The crucial property: node 1 must now observe the new value — its
	// racing copy must not have been retained.
	if v := r.read(t, 1, 17); v != 2 {
		t.Fatalf("post-race read = %d, want 2 (stale copy stranded)", v)
	}
}

// TestSpinnerObservesReleaseEventually drives the exact pattern that
// exposed the race: spinners on a cached word must all observe a write.
func TestSpinnerObservesReleaseEventually(t *testing.T) {
	r := newRig(t, 8)
	r.seed(17, 1)
	observed := make([]bool, 8)
	for n := 1; n < 8; n++ {
		n := n
		var spin func(mem.Word)
		spin = func(w mem.Word) {
			if w == 0 {
				observed[n] = true
				return
			}
			r.nodes[n].Read(17, spin)
		}
		r.nodes[n].Read(17, spin)
	}
	// Writer clears the word while the spinners hammer it.
	r.eng.After(20, func() {
		r.nodes[0].Write(17, 0, func() {})
	})
	r.eng.SetHorizon(1_000_000)
	if err := r.eng.Run(); err != nil {
		t.Fatalf("spinners live-locked: %v", err)
	}
	for n := 1; n < 8; n++ {
		if !observed[n] {
			t.Fatalf("spinner %d never observed the release", n)
		}
	}
}
