// Package wbi implements the write-back invalidation (WBI) cache protocol
// the paper evaluates against (§5): an MSI protocol with a central full-map
// directory, in the style of Archibald & Baer's multiprocessor model and the
// DASH-like forwarding optimizations.
//
//   - A read miss (GetS) is serviced from memory, or forwarded to the dirty
//     owner, which supplies the requester and updates memory.
//   - A write miss or upgrade (GetX) invalidates every other copy; the
//     requester collects invalidation acknowledgments directly from the
//     sharers and proceeds once the data and all acks have arrived. Writes
//     are strongly consistent: the processor stalls until the transaction
//     completes (the paper's WBI runs do not employ buffered consistency).
//   - An atomic read-modify-write (RMW) acquires exclusive ownership and
//     mutates the line in the cache — the primitive from which software
//     spin locks are built, and the source of the invalidation storms the
//     paper's Figures 4 and 5 exhibit under lock contention.
//
// Races the implementation handles explicitly: late write-backs (a PutX
// from a node that has already lost ownership is acknowledged but its stale
// data discarded), forwarded requests arriving at a node whose line is in
// the write-back buffer (served from the buffer), forwarded requests
// arriving at a node whose own acquisition is still in flight (buffered and
// served after completion), and invalidations crossing an in-flight upgrade.
package wbi
