package wbi

import (
	"fmt"
	"sort"

	"ssmp/internal/fabric"
	"ssmp/internal/mem"
	"ssmp/internal/msg"
)

// dirEntry is the central directory's state for one block.
type dirEntry struct {
	owner   int          // exclusive owner, -1 if none
	sharers map[int]bool // shared copies (superset: silent S evictions leave stale bits)
	// broadcast is the limited-directory overflow bit (Dir-i-B): the
	// pointer set overflowed, so an exclusive request must invalidate by
	// broadcast.
	broadcast bool
	// busy marks a read-forward in flight (awaiting the owner's memory
	// update); requests queue behind it.
	busy  bool
	waitQ []*msg.Msg
}

// Home is the directory-side WBI controller for the blocks homed at one
// node.
type Home struct {
	f       *fabric.Fabric
	id      int
	geom    mem.Geometry
	store   *mem.Store
	station *fabric.Station
	dir     map[mem.Block]*dirEntry

	// MaxPointers caps the per-block sharer pointer count (the Dir-i-B
	// limited directory the paper's directory-scalability discussion
	// refers to, citing Stenström's survey). When the pointer set would
	// overflow, the entry degrades to a broadcast bit and an exclusive
	// request invalidates every node. 0 means a full map.
	MaxPointers int

	// InvSent counts invalidations issued (storm visibility);
	// Broadcasts counts overflow invalidation rounds.
	InvSent    uint64
	Broadcasts uint64
}

// NewHome builds the directory-side WBI controller over the node's memory
// module.
func NewHome(f *fabric.Fabric, id int, geom mem.Geometry, store *mem.Store) *Home {
	return &Home{f: f, id: id, geom: geom, store: store, station: fabric.NewStation(f), dir: make(map[mem.Block]*dirEntry)}
}

// Store exposes the backing store.
func (h *Home) Store() *mem.Store { return h.store }

func (h *Home) entry(b mem.Block) *dirEntry {
	e, ok := h.dir[b]
	if !ok {
		e = &dirEntry{owner: -1, sharers: make(map[int]bool)}
		h.dir[b] = e
	}
	return e
}

// Owner returns the current exclusive owner of a block, or -1.
func (h *Home) Owner(b mem.Block) int { return h.entry(b).owner }

// Sharers returns the directory's (inclusive) sharer set for a block, in
// ascending node order.
func (h *Home) Sharers(b mem.Block) []int {
	e := h.entry(b)
	var out []int
	for n := range e.sharers {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Handles reports whether the home controller consumes this message kind.
func (h *Home) Handles(k msg.Kind) bool {
	switch k {
	case msg.GetS, msg.GetX, msg.PutX, msg.OwnerDataMem:
		return true
	}
	return false
}

// Handle processes an inbound message after the central-directory check.
func (h *Home) Handle(m *msg.Msg) {
	h.station.Process(func() { h.process(m) })
}

// addSharer records a sharer pointer, degrading to the broadcast bit on
// limited-directory overflow.
func (h *Home) addSharer(e *dirEntry, n int) {
	if e.broadcast {
		return
	}
	e.sharers[n] = true
	if h.MaxPointers > 0 && len(e.sharers) > h.MaxPointers {
		e.broadcast = true
		e.sharers = make(map[int]bool)
	}
}

func (h *Home) process(m *msg.Msg) {
	if h.geom.Home(m.Block) != h.id {
		panic(fmt.Sprintf("wbi: block %d handled by wrong home %d", m.Block, h.id))
	}
	switch m.Kind {
	case msg.GetS, msg.GetX:
		e := h.entry(m.Block)
		if e.busy || e.owner == m.Src {
			// A forward is in flight, or the requester's own
			// write-back hasn't arrived yet: queue and retry when
			// the state settles.
			e.waitQ = append(e.waitQ, m)
			return
		}
		if m.Kind == msg.GetS {
			h.gets(e, m)
		} else {
			h.getx(e, m)
		}

	case msg.PutX:
		e := h.entry(m.Block)
		if e.owner == m.Src {
			h.store.Merge(m.Block, m.Data, m.Mask)
			e.owner = -1
		}
		// A PutX from a stale owner raced with an ownership transfer;
		// its data is superseded and discarded.
		h.f.Send(&msg.Msg{Kind: msg.PutAck, Src: h.id, Dst: m.Src, Block: m.Block})
		h.drain(e)

	case msg.OwnerDataMem:
		// Owner downgraded (served a forwarded read): memory becomes
		// current, ownership dissolves into sharing.
		e := h.entry(m.Block)
		h.store.Merge(m.Block, m.Data, m.Mask)
		if e.owner == m.Src {
			if m.Aux == 1 {
				// The owner served from its write-back buffer
				// and retains no copy.
				delete(e.sharers, m.Src)
			} else {
				h.addSharer(e, m.Src)
			}
			e.owner = -1
		}
		e.busy = false
		h.drain(e)

	default:
		panic(fmt.Sprintf("wbi: home %d cannot handle %v", h.id, m.Kind))
	}
}

// gets services a read request with the directory not busy and the
// requester not the stale owner.
func (h *Home) gets(e *dirEntry, m *msg.Msg) {
	if e.owner >= 0 {
		// Forward to the dirty owner; it supplies the requester and
		// updates memory. The directory is busy until the memory
		// update arrives.
		e.busy = true
		h.addSharer(e, m.Src)
		h.f.Send(&msg.Msg{Kind: msg.FwdGetS, Src: h.id, Dst: e.owner, Block: m.Block, Requester: m.Src})
		return
	}
	h.addSharer(e, m.Src)
	b := m.Block
	src := m.Src
	h.f.Eng.After(h.f.Time.TMem, func() {
		h.f.Send(&msg.Msg{Kind: msg.DataS, Src: h.id, Dst: src, Block: b, Data: h.store.ReadBlock(b)})
	})
}

// getx services an exclusive request.
func (h *Home) getx(e *dirEntry, m *msg.Msg) {
	if e.owner >= 0 {
		// Ownership transfers through the current owner.
		h.f.Send(&msg.Msg{Kind: msg.FwdGetX, Src: h.id, Dst: e.owner, Block: m.Block, Requester: m.Src})
		e.owner = m.Src
		return
	}
	// Invalidate every shared copy; acks flow directly to the requester.
	acks := 0
	if e.broadcast {
		// Overflowed limited directory: invalidate by broadcast.
		h.Broadcasts++
		for n := 0; n < h.geom.Nodes; n++ {
			if n == m.Src {
				continue
			}
			acks++
			h.InvSent++
			h.f.Send(&msg.Msg{Kind: msg.Inv, Src: h.id, Dst: n, Block: m.Block, Requester: m.Src})
		}
	} else {
		// Deterministic invalidation order: map iteration order would
		// otherwise leak into network timing.
		sharers := make([]int, 0, len(e.sharers))
		for n := range e.sharers {
			sharers = append(sharers, n)
		}
		sort.Ints(sharers)
		for _, n := range sharers {
			if n == m.Src {
				continue
			}
			acks++
			h.InvSent++
			h.f.Send(&msg.Msg{Kind: msg.Inv, Src: h.id, Dst: n, Block: m.Block, Requester: m.Src})
		}
	}
	e.broadcast = false
	e.sharers = make(map[int]bool)
	e.owner = m.Src
	b := m.Block
	src := m.Src
	h.f.Eng.After(h.f.Time.TMem, func() {
		h.f.Send(&msg.Msg{Kind: msg.DataX, Src: h.id, Dst: src, Block: b, Data: h.store.ReadBlock(b), Acks: acks})
	})
}

// drain retries queued requests after a state change.
func (h *Home) drain(e *dirEntry) {
	if e.busy || len(e.waitQ) == 0 {
		return
	}
	q := e.waitQ
	e.waitQ = nil
	for i, m := range q {
		if e.busy || e.owner == m.Src {
			// Still blocked: requeue the remainder in order.
			e.waitQ = append(e.waitQ, q[i:]...)
			return
		}
		if m.Kind == msg.GetS {
			h.gets(e, m)
		} else {
			h.getx(e, m)
		}
	}
}

// BroadcastMode reports whether the block's directory entry has overflowed
// to broadcast invalidation (tests and diagnostics).
func (h *Home) BroadcastMode(b mem.Block) bool { return h.entry(b).broadcast }
