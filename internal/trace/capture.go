package trace

import (
	"fmt"

	"ssmp/internal/core"
)

// Capture attaches a recorder to a machine (before Run) and returns a
// builder whose Trace() yields the run's primitive stream as a replayable
// trace — the capture half of the capture/replay workflow the paper's
// trace-driven-simulation future work implies.
//
// Caveats, by construction of the trace format: RMW operations are
// normalized to fetch-and-add (exact for counters and test-and-set
// acquisition from a free lock), and data-dependent control flow in the
// original programs is flattened into the sequence that actually executed —
// replaying on a machine with different timing may therefore represent a
// slightly different program behaviour, which is inherent to trace-driven
// simulation.
func Capture(m *core.Machine) *Builder {
	b := &Builder{t: &Trace{Procs: make([][]Event, m.Config().Nodes)}}
	m.OnOp(func(r core.OpRecord) {
		ev, ok := convert(r)
		if !ok {
			return
		}
		b.t.Procs[r.Proc] = append(b.t.Procs[r.Proc], ev)
	})
	return b
}

// Builder accumulates captured events.
type Builder struct {
	t *Trace
}

// Trace returns the captured trace (valid after the run completes).
func (b *Builder) Trace() *Trace { return b.t }

// convert maps a core.OpRecord to a trace Event.
func convert(r core.OpRecord) (Event, bool) {
	switch r.Kind {
	case core.OpRead:
		return Event{Op: OpRead, Addr: r.Addr}, true
	case core.OpWrite:
		return Event{Op: OpWrite, Addr: r.Addr, Val: uint64(r.Value)}, true
	case core.OpReadGlobal:
		return Event{Op: OpReadGlobal, Addr: r.Addr}, true
	case core.OpWriteGlobal:
		return Event{Op: OpWriteGlobal, Addr: r.Addr, Val: uint64(r.Value)}, true
	case core.OpReadUpdate:
		return Event{Op: OpReadUpdate, Addr: r.Addr}, true
	case core.OpResetUpdate:
		return Event{Op: OpResetUpdate, Addr: r.Addr}, true
	case core.OpFlush:
		return Event{Op: OpFlush}, true
	case core.OpReadLock:
		return Event{Op: OpReadLock, Addr: r.Addr}, true
	case core.OpWriteLock:
		return Event{Op: OpWriteLock, Addr: r.Addr}, true
	case core.OpUnlock:
		return Event{Op: OpUnlock, Addr: r.Addr}, true
	case core.OpBarrier:
		return Event{Op: OpBarrier, Addr: r.Addr, Val: uint64(r.Participants)}, true
	case core.OpThink:
		return Event{Op: OpThink, Val: uint64(r.Cycles)}, true
	case core.OpPrivate:
		return Event{Op: OpPrivate, Write: r.Write, Hit: r.Hit}, true
	case core.OpRMW:
		return Event{Op: OpRMW, Addr: r.Addr, Val: uint64(r.Delta)}, true
	}
	panic(fmt.Sprintf("trace: unknown op kind %d", r.Kind))
}
