package trace

import (
	"fmt"
	"math/rand/v2"

	"ssmp/internal/mem"
)

// SynthParams parameterize Synthesize.
type SynthParams struct {
	// Procs is the number of processor sections.
	Procs int
	// Events is the number of events per processor.
	Events int
	// SharedRatio, ReadRatio and HitRatio follow the sync workload model
	// (Table 4).
	SharedRatio float64
	ReadRatio   float64
	HitRatio    float64
	// LockEvery inserts a lock/unlock critical section every LockEvery
	// events (0 disables locks).
	LockEvery int
	// Seed drives the generator.
	Seed uint64
	// WBI emits RMW-based synchronization instead of CBL lock primitives
	// so the trace replays on the WBI machine.
	WBI bool
}

// DefaultSynthParams mirrors the sync workload model's Table 4 settings.
func DefaultSynthParams(procs int) SynthParams {
	return SynthParams{
		Procs:       procs,
		Events:      200,
		SharedRatio: 0.03,
		ReadRatio:   0.85,
		HitRatio:    0.95,
		LockEvery:   40,
		Seed:        42,
	}
}

// Synthesize generates a probabilistic trace in the spirit of the sync
// workload model, suitable for exercising the trace-driven path without a
// captured application trace. Shared data lives in blocks 0..31; the lock
// variable in block 256.
func Synthesize(p SynthParams) (*Trace, error) {
	if p.Procs < 1 || p.Events < 1 {
		return nil, fmt.Errorf("trace: Procs and Events must be positive, got %d/%d", p.Procs, p.Events)
	}
	if p.SharedRatio < 0 || p.SharedRatio > 1 || p.ReadRatio < 0 || p.ReadRatio > 1 ||
		p.HitRatio < 0 || p.HitRatio > 1 {
		return nil, fmt.Errorf("trace: ratios must be in [0,1]")
	}
	const (
		sharedBlocks = 32
		blockWords   = 4
		lockAddr     = 256 * blockWords
	)
	t := &Trace{Procs: make([][]Event, p.Procs)}
	for i := 0; i < p.Procs; i++ {
		rng := rand.New(rand.NewPCG(p.Seed, uint64(i)))
		evs := make([]Event, 0, p.Events+p.Events/8)
		for e := 0; e < p.Events; e++ {
			if p.LockEvery > 0 && e > 0 && e%p.LockEvery == 0 {
				if p.WBI {
					// Test-and-set style: one RMW models the
					// acquire attempt; the release is a write.
					evs = append(evs,
						Event{Op: OpRMW, Addr: lockAddr, Val: 1},
						Event{Op: OpThink, Val: 20},
						Event{Op: OpWrite, Addr: lockAddr, Val: 0},
					)
				} else {
					evs = append(evs,
						Event{Op: OpWriteLock, Addr: lockAddr},
						Event{Op: OpThink, Val: 20},
						Event{Op: OpUnlock, Addr: lockAddr},
					)
				}
				continue
			}
			read := rng.Float64() < p.ReadRatio
			if rng.Float64() < p.SharedRatio {
				a := uint64(rng.IntN(sharedBlocks * blockWords))
				if read {
					evs = append(evs, Event{Op: OpRead, Addr: mem.Addr(a)})
				} else if p.WBI {
					evs = append(evs, Event{Op: OpWrite, Addr: mem.Addr(a), Val: uint64(e)})
				} else {
					evs = append(evs, Event{Op: OpWriteGlobal, Addr: mem.Addr(a), Val: uint64(e)})
				}
				continue
			}
			evs = append(evs, Event{Op: OpPrivate, Write: !read, Hit: rng.Float64() < p.HitRatio})
		}
		if !p.WBI {
			evs = append(evs, Event{Op: OpFlush})
		}
		t.Procs[i] = evs
	}
	return t, nil
}
