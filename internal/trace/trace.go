// Package trace implements trace-driven simulation, the evaluation
// alternative the paper names as future work (§6): a compact text format
// for per-processor memory-reference traces, a writer and parser for it,
// and a replayer that turns traces into machine programs.
//
// Format: line-oriented, '#' comments, a `proc <id>` header starting each
// processor's section, then one event per line:
//
//	r <addr>          private read
//	w <addr> <val>    private write
//	rg <addr>         read-global
//	wg <addr> <val>   write-global
//	ru <addr>         read-update
//	xu <addr>         reset-update
//	fl                flush-buffer
//	rl <addr>         read-lock
//	wl <addr>         write-lock
//	ul <addr>         unlock
//	bar <addr> <n>    barrier with n participants
//	think <cycles>    local computation
//	priv <r|w> <h|m>  modeled private reference (hit/miss)
//	rmw <addr> <add>  atomic fetch-and-add (WBI machine)
//
// Lock, update, barrier and flush events require the matching machine
// protocol, exactly as the live primitives do.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ssmp/internal/core"
	"ssmp/internal/mem"
	"ssmp/internal/sim"
)

// Op enumerates trace event kinds.
type Op uint8

// Trace event kinds.
const (
	OpRead Op = iota
	OpWrite
	OpReadGlobal
	OpWriteGlobal
	OpReadUpdate
	OpResetUpdate
	OpFlush
	OpReadLock
	OpWriteLock
	OpUnlock
	OpBarrier
	OpThink
	OpPrivate
	OpRMW
)

var opNames = map[Op]string{
	OpRead: "r", OpWrite: "w", OpReadGlobal: "rg", OpWriteGlobal: "wg",
	OpReadUpdate: "ru", OpResetUpdate: "xu", OpFlush: "fl",
	OpReadLock: "rl", OpWriteLock: "wl", OpUnlock: "ul",
	OpBarrier: "bar", OpThink: "think", OpPrivate: "priv", OpRMW: "rmw",
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()

// Event is one trace record.
type Event struct {
	Op   Op
	Addr mem.Addr
	// Val is the written value, RMW addend, barrier participant count, or
	// think duration.
	Val uint64
	// Write and Hit qualify OpPrivate events.
	Write, Hit bool
}

// Trace is a per-processor event list.
type Trace struct {
	// Procs[i] is processor i's event sequence.
	Procs [][]Event
}

// Write renders the trace in the text format.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, evs := range t.Procs {
		fmt.Fprintf(bw, "proc %d\n", i)
		for _, e := range evs {
			name := opNames[e.Op]
			switch e.Op {
			case OpRead, OpReadGlobal, OpReadUpdate, OpResetUpdate,
				OpReadLock, OpWriteLock, OpUnlock:
				fmt.Fprintf(bw, "%s %d\n", name, e.Addr)
			case OpWrite, OpWriteGlobal, OpRMW:
				fmt.Fprintf(bw, "%s %d %d\n", name, e.Addr, e.Val)
			case OpBarrier:
				fmt.Fprintf(bw, "%s %d %d\n", name, e.Addr, e.Val)
			case OpFlush:
				fmt.Fprintf(bw, "%s\n", name)
			case OpThink:
				fmt.Fprintf(bw, "%s %d\n", name, e.Val)
			case OpPrivate:
				rw, hm := "r", "m"
				if e.Write {
					rw = "w"
				}
				if e.Hit {
					hm = "h"
				}
				fmt.Fprintf(bw, "%s %s %s\n", name, rw, hm)
			default:
				return fmt.Errorf("trace: unknown op %d", e.Op)
			}
		}
	}
	return bw.Flush()
}

// Parse reads a trace from the text format.
func Parse(r io.Reader) (*Trace, error) {
	t := &Trace{}
	cur := -1
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "proc" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace:%d: malformed proc header", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 {
				return nil, fmt.Errorf("trace:%d: bad proc id %q", lineNo, fields[1])
			}
			for len(t.Procs) <= id {
				t.Procs = append(t.Procs, nil)
			}
			cur = id
			continue
		}
		if cur < 0 {
			return nil, fmt.Errorf("trace:%d: event before proc header", lineNo)
		}
		op, ok := opByName[fields[0]]
		if !ok {
			return nil, fmt.Errorf("trace:%d: unknown op %q", lineNo, fields[0])
		}
		ev := Event{Op: op}
		argN := func(i int) (uint64, error) {
			if i >= len(fields) {
				return 0, fmt.Errorf("trace:%d: missing argument", lineNo)
			}
			return strconv.ParseUint(fields[i], 10, 64)
		}
		var err error
		var v uint64
		switch op {
		case OpRead, OpReadGlobal, OpReadUpdate, OpResetUpdate,
			OpReadLock, OpWriteLock, OpUnlock:
			v, err = argN(1)
			ev.Addr = mem.Addr(v)
		case OpWrite, OpWriteGlobal, OpRMW, OpBarrier:
			v, err = argN(1)
			ev.Addr = mem.Addr(v)
			if err == nil {
				ev.Val, err = argN(2)
			}
		case OpThink:
			ev.Val, err = argN(1)
		case OpFlush:
		case OpPrivate:
			if len(fields) != 3 {
				return nil, fmt.Errorf("trace:%d: priv needs r|w h|m", lineNo)
			}
			switch fields[1] {
			case "r":
			case "w":
				ev.Write = true
			default:
				return nil, fmt.Errorf("trace:%d: priv mode %q", lineNo, fields[1])
			}
			switch fields[2] {
			case "m":
			case "h":
				ev.Hit = true
			default:
				return nil, fmt.Errorf("trace:%d: priv outcome %q", lineNo, fields[2])
			}
		}
		if err != nil {
			return nil, fmt.Errorf("trace:%d: %v", lineNo, err)
		}
		t.Procs[cur] = append(t.Procs[cur], ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Programs turns the trace into machine programs (one per processor; nil
// for processors without a section). The machine must have at least
// len(Procs) nodes.
func (t *Trace) Programs(nodes int) ([]core.Program, error) {
	if len(t.Procs) > nodes {
		return nil, fmt.Errorf("trace: %d processor sections for %d nodes", len(t.Procs), nodes)
	}
	progs := make([]core.Program, nodes)
	for i, evs := range t.Procs {
		if len(evs) == 0 {
			continue
		}
		evs := evs
		progs[i] = func(p *core.Proc) {
			for _, e := range evs {
				replay(p, e)
			}
		}
	}
	return progs, nil
}

func replay(p *core.Proc, e Event) {
	switch e.Op {
	case OpRead:
		p.Read(e.Addr)
	case OpWrite:
		p.Write(e.Addr, mem.Word(e.Val))
	case OpReadGlobal:
		p.ReadGlobal(e.Addr)
	case OpWriteGlobal:
		p.WriteGlobal(e.Addr, mem.Word(e.Val))
	case OpReadUpdate:
		p.ReadUpdate(e.Addr)
	case OpResetUpdate:
		p.ResetUpdate(e.Addr)
	case OpFlush:
		p.FlushBuffer()
	case OpReadLock:
		p.ReadLock(e.Addr)
	case OpWriteLock:
		p.WriteLock(e.Addr)
	case OpUnlock:
		p.Unlock(e.Addr)
	case OpBarrier:
		p.Barrier(e.Addr, int(e.Val))
	case OpThink:
		p.Think(sim.Time(e.Val))
	case OpPrivate:
		p.PrivateRef(e.Write, e.Hit)
	case OpRMW:
		p.RMW(e.Addr, func(w mem.Word) mem.Word { return w + mem.Word(e.Val) })
	default:
		panic(fmt.Sprintf("trace: unknown op %d", e.Op))
	}
}
